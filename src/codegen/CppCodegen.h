//===- CppCodegen.h - SDFG to C++ source emission -----------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a self-contained C++ translation unit from an SDFG, mirroring
/// DaCe's code generator: transients are allocated according to their
/// storage class (heap / stack / register), states become labeled blocks
/// driven by goto-encoded interstate edges, maps become loop nests, and
/// tasklets become scalar expressions. The pipeline's experiments run on the
/// interpreter (see DESIGN.md); this backend exists so downstream users can
/// compile SDFGs natively, and is validated by tests that compile and run
/// the generated code when a host compiler is available.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_CODEGEN_CPPCODEGEN_H
#define DCIR_CODEGEN_CPPCODEGEN_H

#include "sdfg/SDFG.h"
#include "support/Diagnostics.h"

#include <string>

namespace dcir {
namespace codegen {

/// Emits a C++ translation unit defining
/// `extern "C" void <name>(<args>, <symbols>)`. Arrays pass as `T*`,
/// scalars as `T*` (in-out), symbols as `long long`. Returns an empty
/// string on failure.
std::string emitCpp(const sdfg::SDFG &G, DiagnosticEngine &Diags);

} // namespace codegen
} // namespace dcir

#endif // DCIR_CODEGEN_CPPCODEGEN_H
