//===- CppCodegen.h - SDFG to C++ source emission -----------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a self-contained C++ translation unit from an SDFG, mirroring
/// DaCe's code generator: transients are allocated according to their
/// storage class (heap / stack / register), states become labeled blocks
/// driven by goto-encoded interstate edges, maps become loop nests, and
/// tasklets become scalar expressions. The pipeline's experiments run on the
/// interpreter (see DESIGN.md); this backend exists so downstream users can
/// compile SDFGs natively, and is validated by tests that compile and run
/// the generated code when a host compiler is available.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_CODEGEN_CPPCODEGEN_H
#define DCIR_CODEGEN_CPPCODEGEN_H

#include "sdfg/SDFG.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace dcir {
namespace codegen {

/// The call contract shared by the emitter and the native execution engine:
/// the typed entry point takes the SDFG's non-transient containers in
/// `Args` order (arrays and scalars both pass as `T*`), followed by the
/// free symbols in `FreeSymbols` order as `long long` values. Symbols
/// assigned on interstate edges are SDFG-internal and never appear.
struct CallSignature {
  std::vector<std::string> Args;
  std::vector<std::string> FreeSymbols; // Sorted, deterministic.
};

/// Computes the deterministic call signature of \p G's generated entry.
CallSignature callSignature(const sdfg::SDFG &G);

/// The compact argument-binding descriptor embedded in every generated
/// artifact as `extern "C" const char *<entry>__dcir_signature()`:
/// `entry(name:dtype,...|sym,...)` in callSignature order. The native
/// engine compares the artifact's descriptor against the expectation for
/// the graph it is about to bind buffers to, turning a stale or colliding
/// cache entry into an actionable diagnostic instead of pointers passed
/// into the wrong argument slots.
std::string abiSignature(const sdfg::SDFG &G);

/// The stable per-map label shared by the profiling hook and schedule
/// overrides: `s<state-id>:<param,...>` — the same string the
/// `__dcir_profile` rows report, so measured rows key schedule decisions
/// directly.
std::string mapScopeLabel(const sdfg::State &S, const sdfg::MapEntry &Entry);

/// A per-map schedule decision, produced by measurement (src/tune/) rather
/// than the static grain heuristic. `Auto` defers to the heuristic;
/// `Serial` suppresses the work-sharing pragma; `Parallel` forces it,
/// bypassing the grain gate (the measurement already proved profitability).
enum class MapSchedulePolicy { Auto, Serial, Parallel };

struct MapSchedule {
  MapSchedulePolicy Policy = MapSchedulePolicy::Auto;
  /// For Parallel: strip-mine the outermost dimension by this factor at
  /// emission time (0/1 = no tiling). The work-sharing pragma moves to the
  /// tile loop, coarsening fork/join grain without re-running passes.
  unsigned Tile = 0;
};

/// Schedule overrides keyed by mapScopeLabel(). Maps absent from the table
/// keep Auto behavior.
using MapSchedules = std::map<std::string, MapSchedule>;

/// How one conjunct of a speculation guard is evaluated at runtime.
/// Mirrors analysis::GuardTermKind — the api layer converts synthesized
/// analysis::Guard objects into this emission-side vocabulary so codegen
/// stays independent of the analyzer (the analyzer checks codegen's
/// output; codegen must not link against its checker).
enum class SpecGuardKind {
  SymCond,     ///< Evaluate Cond as a C++ expression; nonzero passes.
  PtrDisjoint, ///< Byte-interval overlap test between containers A and B.
  Inspector    ///< Pre-loop over Param's range reading Index[IndexExpr]:
               ///< passes when every value is in [0, extent(Target)) and
               ///< no value repeats.
};

/// One conjunct of a speculation guard (see SpecGuardKind for which
/// fields apply).
struct SpecGuardTerm {
  SpecGuardKind K = SpecGuardKind::SymCond;
  sym::SymExpr Cond;      ///< SymCond: the residual predicate.
  std::string A, B;       ///< PtrDisjoint: the container pair.
  std::string Index;      ///< Inspector: index container.
  sym::SymExpr IndexExpr; ///< Inspector: subscript into Index per binding.
  std::string Param;      ///< Inspector: the driving map parameter.
  std::string Target;     ///< Inspector: the indirectly written container.
};

/// The guard of one multi-versioned map scope: the conjunction of Terms,
/// evaluated once per scope entry. All terms pass -> the parallel
/// emission runs; any term fails -> the original serial order runs.
struct SpeculationGuard {
  std::vector<SpecGuardTerm> Terms;
};

/// Guards keyed by mapScopeLabel(). A top-level scope with an entry is
/// emitted twice behind a runtime branch; a scope carrying
/// MapEntry::Speculative with *no* entry is forced serial — an unproven
/// conversion never runs parallel unguarded.
using SpeculativeMaps = std::map<std::string, SpeculationGuard>;

/// Emission options. ParallelMaps turns top-level map scopes into OpenMP
/// work-sharing loops: `#pragma omp parallel for` (with `collapse(n)` over
/// the rectangular prefix of multi-parameter maps), `reduction(op:var)`
/// for WCR updates of transient scalars, and atomic/critical fallbacks for
/// WCR updates of array cells that may be shared between threads. Every
/// pragma is guarded by `#ifdef _OPENMP`, so the same translation unit
/// compiles warning-free with and without -fopenmp.
struct CodegenOptions {
  bool ParallelMaps = false;
  /// Maps whose statically-known iteration count (entry parameters times
  /// nested maps) falls below this stay serial: a work-sharing region
  /// entered once per surrounding sequential-loop trip costs more than it
  /// parallelizes. The symbolic case is explicit: an extent the emitter
  /// cannot evaluate is *refused* inside sequential state-machine loops
  /// (the re-entry cost cannot be justified) and *annotated* on one-shot
  /// regions — the pragma is kept, the emitted source carries a
  /// `dcir-grain:` marker, and CodegenInfo::GrainUnproven counts it, so
  /// shape specialization can prove the decision either way.
  unsigned MinParallelWork = 256;
  /// The same gate for maps *inside* sequential state-machine loops,
  /// which re-pay the fork/join on every trip: a region entered
  /// thousands of times needs orders of magnitude more proven work per
  /// entry before the pragma wins anything (a ~10us fork against ~ns
  /// iterations). Specialization routinely proves such extents constant,
  /// so without the higher bar it would "win" the proof and then lose
  /// 10x wall-clock to region re-entry.
  unsigned MinInLoopParallelWork = 1u << 16;
  /// Wrap every emitted map scope with monotonic-clock timing and
  /// trip-count recording into a static atomic table, read back through
  /// an `extern "C" long long <entry>__dcir_profile(void *out, long long
  /// cap)` hook (see obs/MapProfile.h for the row layout). Off by
  /// default, and then nothing is emitted — the default translation unit
  /// stays byte-identical, so the JIT cache key (a hash of the source)
  /// only forks when profiling is on.
  bool ProfileMaps = false;
  /// With ProfileMaps, instrument only top-level (MapDepth == 0) scopes.
  /// Nested-scope wrappers put monotonic-clock calls inside parallel-region
  /// inner loops, inflating the per-map numbers the tuner feeds on; the
  /// tuner's measuring artifacts set this, the debugging opt-ins keep the
  /// full picture.
  bool ProfileTopMapsOnly = false;
  /// Measured per-map schedule decisions (see MapSchedules above). Applied
  /// to top-level scopes only; changes the emitted source, so the JIT
  /// cache key forks exactly like ProfileMaps.
  MapSchedules Schedules;
  /// Debug emission mode: wrap every per-dimension subscript term in a
  /// `dcir_bc(index, extent, container)` range assert that prints the
  /// violation to stderr and aborts. Off by default, and then nothing is
  /// emitted (byte-identical source, no cache-key fork); on, the cache
  /// key forks exactly like ProfileMaps. $DCIR_CHECK_BOUNDS=1 enables it
  /// through the native engine.
  bool CheckBounds = false;
  /// Runtime-guarded multi-versioning (see SpeculativeMaps). Non-empty
  /// changes the emitted source — and its aliasing contract: the entry
  /// parameters lose their `__restrict__` qualification (a failing
  /// PtrDisjoint guard means the caller *did* bind overlapping buffers,
  /// and the serial fallback must execute correctly under that aliasing),
  /// and parallel-region bodies stay inline instead of outlined into
  /// restrict-qualified functions. Guard outcomes are counted per scope
  /// in a static atomic table read back through `extern "C" long long
  /// <entry>__dcir_speculation(void *out, long long cap)` (rows of
  /// {const char *name; long long pass; long long fail;}).
  SpeculativeMaps Speculative;
};

/// What the emitter produced (filled when requested).
struct CodegenInfo {
  unsigned ParallelMapsEmitted = 0; // Map scopes with a work-sharing pragma.
  unsigned Reductions = 0;          // reduction(...) clause entries.
  unsigned AtomicUpdates = 0;       // WCR writes lowered to atomic/critical.
  unsigned MapsProfiled = 0;        // Map scopes wrapped by ProfileMaps.
  /// Pragmas emitted on an *unproven* work estimate (symbolic extents the
  /// grain heuristic could not evaluate; the `dcir-grain:` marker in the
  /// source). Zero on fully-specialized graphs.
  unsigned GrainUnproven = 0;
  /// Map scopes whose schedule came from a CodegenOptions::Schedules
  /// override (forced serial, forced parallel, or emission-time tile).
  unsigned ScheduledMaps = 0;
  /// Subscript terms wrapped by CheckBounds instrumentation.
  unsigned BoundsChecks = 0;
  /// Top-level scopes multi-versioned behind a runtime guard
  /// (CodegenOptions::Speculative entries that matched a scope).
  unsigned SpeculativeGuards = 0;
  /// Speculative scopes (MapEntry::Speculative) forced serial because no
  /// guard covered them — the unproven-conversion safety net.
  unsigned SpeculativeSerialized = 0;
};

/// Emits a C++ translation unit defining
/// `extern "C" void <name>(<args>, <symbols>)` (see callSignature), plus a
/// uniform-ABI trampoline `extern "C" void <name>__dcir_call(void **args,
/// const long long *symbols)` that unpacks pointers/symbols in signature
/// order — the entry point the JIT engine resolves via dlsym — and a
/// `<name>__dcir_set_threads(long long)` hook (a no-op without OpenMP).
/// The output is self-contained and compiles warning-free under
/// -Wall -Wextra, with or without -fopenmp. Returns an empty string on
/// failure.
std::string emitCpp(const sdfg::SDFG &G, DiagnosticEngine &Diags,
                    const CodegenOptions &Opts = CodegenOptions(),
                    CodegenInfo *Info = nullptr);

} // namespace codegen
} // namespace dcir

#endif // DCIR_CODEGEN_CPPCODEGEN_H
