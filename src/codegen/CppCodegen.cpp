//===- CppCodegen.cpp ---------------------------------------------------------------===//

#include "codegen/CppCodegen.h"

#include "sdfgopt/Utils.h" // subsetsDisjointAcrossParam (WCR placement).

#include <algorithm>
#include <set>
#include <sstream>

using namespace dcir;
using namespace dcir::codegen;
using namespace dcir::sdfg;
using sym::SymExpr;

namespace {

std::string cType(DType T) {
  switch (T) {
  case DType::I64:
    return "long long";
  case DType::F32:
    return "float";
  case DType::F64:
    return "double";
  }
  return "double";
}

/// Renders a symbolic expression as C++ (floord/mod become helper calls).
std::string cExpr(const SymExpr &E) {
  using sym::ExprKind;
  std::ostringstream OS;
  switch (E.kind()) {
  case ExprKind::Constant:
    OS << E.constantValue() << "LL";
    break;
  case ExprKind::Symbol:
    OS << E.symbolName();
    break;
  case ExprKind::Add: {
    OS << "(";
    bool First = true;
    for (const SymExpr &T : E.operands()) {
      if (!First)
        OS << " + ";
      OS << cExpr(T);
      First = false;
    }
    OS << ")";
    break;
  }
  case ExprKind::Mul: {
    OS << "(";
    bool First = true;
    for (const SymExpr &T : E.operands()) {
      if (!First)
        OS << " * ";
      OS << cExpr(T);
      First = false;
    }
    OS << ")";
    break;
  }
  case ExprKind::FloorDiv:
    OS << "dcir_floord(" << cExpr(E.operands()[0]) << ", "
       << cExpr(E.operands()[1]) << ")";
    break;
  case ExprKind::Mod:
    OS << "dcir_mod(" << cExpr(E.operands()[0]) << ", "
       << cExpr(E.operands()[1]) << ")";
    break;
  case ExprKind::Min:
  case ExprKind::Max: {
    std::string Fn = E.kind() == ExprKind::Min ? "dcir_min" : "dcir_max";
    std::string Acc = cExpr(E.operands()[0]);
    for (size_t I = 1; I < E.operands().size(); ++I)
      Acc = Fn + "(" + Acc + ", " + cExpr(E.operands()[I]) + ")";
    OS << Acc;
    break;
  }
  case ExprKind::Eq:
    OS << "(" << cExpr(E.operands()[0]) << " == " << cExpr(E.operands()[1])
       << ")";
    break;
  case ExprKind::Ne:
    OS << "(" << cExpr(E.operands()[0]) << " != " << cExpr(E.operands()[1])
       << ")";
    break;
  case ExprKind::Lt:
    OS << "(" << cExpr(E.operands()[0]) << " < " << cExpr(E.operands()[1])
       << ")";
    break;
  case ExprKind::Le:
    OS << "(" << cExpr(E.operands()[0]) << " <= " << cExpr(E.operands()[1])
       << ")";
    break;
  case ExprKind::And: {
    OS << "(";
    bool First = true;
    for (const SymExpr &T : E.operands()) {
      if (!First)
        OS << " && ";
      OS << cExpr(T);
      First = false;
    }
    OS << ")";
    break;
  }
  case ExprKind::Or: {
    OS << "(";
    bool First = true;
    for (const SymExpr &T : E.operands()) {
      if (!First)
        OS << " || ";
      OS << cExpr(T);
      First = false;
    }
    OS << ")";
    break;
  }
  case ExprKind::Not:
    OS << "(!" << cExpr(E.operands()[0]) << ")";
    break;
  }
  return OS.str();
}

class Emitter {
public:
  Emitter(const SDFG &G, DiagnosticEngine &Diags, const CodegenOptions &Opts,
          CodegenInfo *Info)
      : G(G), Diags(Diags), Opts(Opts), Info(Info),
        Sig(codegen::callSignature(G)) {
    // States inside sequential state-machine loops re-enter their
    // parallel regions once per trip; the grain heuristic treats them
    // more strictly than one-shot states.
    if (Opts.ParallelMaps)
      for (const sdfgopt::LoopRegion &L : sdfgopt::findLoops(G))
        LoopStates.insert(L.BodyStates.begin(), L.BodyStates.end());
    // Map-private scalars are declared inside their scope's loop nest
    // (per-iteration, thread-private under a work-sharing pragma), not at
    // function scope.
    for (const auto &S : G.states())
      for (const auto &N : S->nodes())
        if (const auto *ME = dyn_cast<MapEntry>(N.get()))
          PrivateScalars.insert(ME->PrivateData.begin(),
                                ME->PrivateData.end());
  }

  std::string run() {
    emitPrelude();
    emitSignature();
    OS << " {\n";
    emitAllocations();
    if (const sdfg::State *Start = G.getStartState())
      OS << "  goto state_" << Start->getId() << ";\n";
    emitStateMachine();
    emitDeallocations();
    OS << "}\n";
    emitTrampoline();
    if (Failed)
      return std::string();
    if (Info)
      Info->MapsProfiled = ProfLabels.size();
    // The profile and speculation tables must precede the entry function
    // that updates them, but their row counts are only known after the
    // body is emitted — hence the separate prelude stream. Without
    // ProfileMaps/Speculative the concatenation is byte-identical to the
    // historical single-stream output.
    return Prelude.str() + profileTable() + specTable() + BodyFns.str() +
           OS.str();
  }

private:
  /// How a WCR write is lowered inside the current parallel region.
  ///   Plain      pinned to the outermost parameter; no thread ever shares
  ///              the cell, the ordinary read-modify-write is correct.
  ///   Reduction  transient scalar in a reduction(...) clause.
  ///   Hoisted    param-free target cell: accumulate into a thread-private
  ///              local carried by a reduction clause, combine into the
  ///              cell once after the loop nest (DaCe's WCR lowering).
  ///   Atomic /   per-update synchronization for everything else.
  ///   Critical
  enum class WcrLowering { Plain, Reduction, Hoisted, Atomic, Critical };

  const SDFG &G;
  DiagnosticEngine &Diags;
  CodegenOptions Opts;
  CodegenInfo *Info;
  codegen::CallSignature Sig;
  std::ostringstream Prelude;
  std::ostringstream OS;
  bool Failed = false;
  unsigned TempCounter = 0;
  unsigned MapDepth = 0;
  /// States belonging to a sequential state-machine loop body.
  std::set<int> LoopStates;
  /// Scalars private to some map scope (declared in-scope, not at
  /// function scope).
  std::set<std::string> PrivateScalars;
  /// Private scalars already declared by an enclosing scope during the
  /// current emission (nested scopes must not re-declare).
  std::set<std::string> ActivePrivate;
  /// Set by the last planParallelRegionImpl when the region was
  /// parallelized on an *unproven* (symbolic) work estimate; drives the
  /// `dcir-grain:` annotation and the GrainUnproven counter.
  bool GrainUnproven = false;
  /// Schedule override state for the scope currently being planned (set by
  /// emitMapScope from Opts.Schedules, top-level scopes only).
  /// ForceParallel bypasses the grain gate — the measurement already
  /// proved profitability; the correctness analysis still runs in full.
  /// TileOverride >= 2 strip-mines the outermost dimension at emission
  /// time, so the pragma lands on the tile loop (collapse forced to 1).
  bool ForceParallel = false;
  unsigned TileOverride = 0;
  /// Collapse depth chosen by the last successful planParallelRegionImpl
  /// (the number of loop headers the work-sharing pragma owns).
  size_t LastCollapse = 1;
  /// Outlined parallel-region bodies (static functions emitted between
  /// the prelude and the entry function). See emitMapScope: GCC's OpenMP
  /// outlining loses the parameters' __restrict__ qualification, which
  /// costs the hot loops their vectorization; outlining the body
  /// ourselves into a function with fresh restrict-qualified pointer
  /// parameters hands the optimizer the same aliasing facts the serial
  /// emission enjoys.
  std::ostringstream BodyFns;
  unsigned BodyFnCounter = 0;
  /// Per-parallel-region WCR placement, keyed by edge address (stable:
  /// emission never mutates the graph). Empty outside parallel regions.
  std::map<const DataflowEdge *, WcrLowering> WcrPlan;
  /// Hoisted-reduction accumulator variable per WCR edge.
  std::map<const DataflowEdge *, std::string> WcrVar;
  unsigned RedCounter = 0;
  /// One label per profiled map scope ("s<state>:<params>"), in emission
  /// order — the rows of the generated profile table (ProfileMaps only).
  std::vector<std::string> ProfLabels;
  /// One label per multi-versioned scope, in emission order — the rows of
  /// the generated speculation pass/fail table (Speculative only).
  std::vector<std::string> SpecLabels;
  /// Which branch of a multi-versioned scope is being emitted: 0 outside
  /// speculation, 1 the guard-pass (parallel) branch, 2 the guard-fail
  /// (serial) branch. Keeps emitMapScope from re-dispatching into
  /// emitSpeculativeScope while emitting the branches.
  int SpecEmit = 0;

  void emitPrelude() {
    Prelude << "// Generated by the DCIR SDFG C++ code generator.\n"
            << "#include <cmath>\n#include <cstdlib>\n#include <limits>\n";
    if (Opts.ProfileMaps || !Opts.Speculative.empty())
      Prelude << "#include <atomic>\n";
    if (Opts.ProfileMaps)
      Prelude << "#include <chrono>\n";
    if (Opts.CheckBounds)
      Prelude << "#include <cstdio>\n";
    Prelude
       << "#ifdef _OPENMP\n#include <omp.h>\n#endif\n\n"
       << "static inline long long dcir_floord(long long a, long long b) {\n"
       << "  long long q = a / b;\n"
       << "  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;\n"
       << "  return q;\n}\n"
       << "static inline long long dcir_mod(long long a, long long b) {\n"
       << "  return a - dcir_floord(a, b) * b;\n}\n"
       << "template <typename T> static inline T dcir_min(T a, T b) "
          "{ return a < b ? a : b; }\n"
       << "template <typename T> static inline T dcir_max(T a, T b) "
          "{ return a > b ? a : b; }\n\n";
    // Byte-interval overlap test for PtrDisjoint guard terms. Compared as
    // integers: relational operators on pointers into distinct objects
    // are unspecified, and "do these two allocations overlap" is exactly
    // the cross-object question.
    if (!Opts.Speculative.empty())
      Prelude
          << "static inline bool dcir_disjoint(const void *a, long long an,\n"
          << "                                 const void *b, long long bn) {\n"
          << "  unsigned long long ap = reinterpret_cast<unsigned long long>(a);\n"
          << "  unsigned long long bp = reinterpret_cast<unsigned long long>(b);\n"
          << "  return ap + static_cast<unsigned long long>(an) <= bp ||\n"
          << "         bp + static_cast<unsigned long long>(bn) <= ap;\n}\n\n";
    if (Opts.CheckBounds)
      Prelude
          << "static inline long long dcir_bc(long long i, long long n,\n"
          << "                                const char *a) {\n"
          << "  if (i < 0 || i >= n) {\n"
          << "    std::fprintf(stderr, \"dcir: bounds violation: %s[%lld] "
             "with extent %lld\\n\",\n"
          << "                 a, i, n);\n"
          << "    std::abort();\n"
          << "  }\n"
          << "  return i;\n}\n\n";
  }

  /// The typed entry-point signature, in callSignature order. Parameters
  /// are [[maybe_unused]]: dead-code elimination may leave a container or
  /// symbol unreferenced, and the output must stay -Wall -Wextra clean.
  /// Pointers are __restrict__-qualified: distinct SDFG containers are
  /// distinct allocations by construction (the engine binds one buffer per
  /// container, and memlets always name the container they move), so no
  /// two parameters may alias — which lets the host compiler vectorize
  /// map loops it would otherwise serialize. Speculative artifacts drop
  /// the qualifier: a PtrDisjoint guard exists precisely because the
  /// caller *may* bind overlapping buffers, and the serial fallback must
  /// stay correct when it does — restrict would make that UB before the
  /// guard ever ran.
  void emitSignature() {
    const char *Restrict =
        Opts.Speculative.empty() ? " *__restrict__ " : " *";
    OS << "extern \"C\" void " << G.getName() << "(";
    bool First = true;
    for (const std::string &Arg : Sig.Args) {
      if (!First)
        OS << ", ";
      // Scalar containers are spilled into typed shadow locals at entry
      // (see emitAllocations): symbolic expressions — interstate
      // conditions, range bounds — reference the container by name, and a
      // bare pointer there would not compile. The parameter is renamed so
      // the local can own the name.
      OS << "[[maybe_unused]] " << cType(G.desc(Arg).Ty) << Restrict
         << Arg;
      if (G.desc(Arg).K == DataDesc::Kind::Scalar)
        OS << "__dcir_param";
      First = false;
    }
    for (const std::string &Sym : Sig.FreeSymbols) {
      if (!First)
        OS << ", ";
      OS << "[[maybe_unused]] long long " << Sym << "_in";
      First = false;
    }
    OS << ")";
  }

  void emitAllocations() {
    // Free symbols come from parameters; assigned symbols are locals.
    std::set<std::string> Free(Sig.FreeSymbols.begin(),
                               Sig.FreeSymbols.end());
    for (const std::string &Sym : G.symbols()) {
      if (Free.count(Sym))
        OS << "  [[maybe_unused]] long long " << Sym << " = " << Sym
           << "_in;\n";
      else
        OS << "  [[maybe_unused]] long long " << Sym << " = 0;\n";
    }
    // Non-transient scalars arrive as pointers but participate in symbolic
    // expressions by name (loop bounds, interstate conditions): load them
    // into typed shadow locals here and write them back at exit.
    for (const auto &[Name, D] : G.descs())
      if (!D.Transient && D.K == DataDesc::Kind::Scalar)
        OS << "  [[maybe_unused]] " << cType(D.Ty) << " " << Name << " = *"
           << Name << "__dcir_param;\n";
    for (const auto &[Name, D] : G.descs()) {
      if (!D.Transient)
        continue;
      switch (D.K) {
      case DataDesc::Kind::Scalar:
        if (!PrivateScalars.count(Name))
          OS << "  [[maybe_unused]] " << cType(D.Ty) << " " << Name
             << " = 0;\n";
        break;
      case DataDesc::Kind::Array: {
        SymExpr Size = D.totalSize();
        if (D.StorageKind == Storage::Stack && Size.isConstant()) {
          OS << "  [[maybe_unused]] " << cType(D.Ty) << " " << Name << "["
             << Size.constantValue() << "] = {};\n";
        } else {
          OS << "  " << cType(D.Ty) << " *" << Name << " = new "
             << cType(D.Ty) << "[" << cExpr(Size) << "]();\n";
        }
        break;
      }
      case DataDesc::Kind::Stream:
        Diags.error("C++ codegen does not support stream containers yet");
        Failed = true;
        break;
      }
    }
  }

  /// The uniform-ABI trampoline the JIT engine resolves: pointers and
  /// symbol values arrive as untyped arrays in callSignature order.
  void emitTrampoline() {
    OS << "\nextern \"C\" void " << G.getName()
       << "__dcir_call([[maybe_unused]] void **dcir_args, "
          "[[maybe_unused]] const long long *dcir_syms) {\n"
       << "  " << G.getName() << "(";
    bool First = true;
    for (size_t I = 0; I < Sig.Args.size(); ++I) {
      if (!First)
        OS << ", ";
      OS << "static_cast<" << cType(G.desc(Sig.Args[I]).Ty)
         << " *>(dcir_args[" << I << "])";
      First = false;
    }
    for (size_t I = 0; I < Sig.FreeSymbols.size(); ++I) {
      if (!First)
        OS << ", ";
      OS << "dcir_syms[" << I << "]";
      First = false;
    }
    OS << ");\n}\n";
    // Thread-count hook resolved (optionally) by the engine alongside the
    // call trampoline; keeps the `<entry>__dcir_call` ABI unchanged.
    // n > 0 pins the calling thread's count; n <= 0 restores the runtime
    // default captured at the first call — so an invocation that pinned a
    // count cannot leak its ICV into later default-count invocations
    // running on the same (possibly pooled) thread.
    OS << "\nextern \"C\" void " << G.getName()
       << "__dcir_set_threads([[maybe_unused]] long long n) {\n"
       << "#ifdef _OPENMP\n"
       << "  static const int dcir_default_threads = omp_get_max_threads();\n"
       << "  omp_set_num_threads(n > 0 ? static_cast<int>(n)\n"
       << "                            : dcir_default_threads);\n"
       << "#endif\n}\n";
    // Argument-binding descriptor: lets the engine verify a resolved
    // artifact matches the container table it is binding buffers for.
    OS << "\nextern \"C\" const char *" << G.getName()
       << "__dcir_signature() {\n  return \"" << abiSignature(G)
       << "\";\n}\n";
    // Per-map profile readback (ProfileMaps artifacts only): null out
    // returns the row count, else up to cap rows are snapshot-copied.
    // The row layout mirrors obs::MapProfileABIEntry.
    if (Opts.ProfileMaps) {
      OS << "\nextern \"C\" long long " << G.getName()
         << "__dcir_profile([[maybe_unused]] void *dcir_out, "
            "[[maybe_unused]] long long dcir_cap) {\n"
         << "  const long long dcir_n = " << ProfLabels.size() << "LL;\n"
         << "  if (!dcir_out)\n    return dcir_n;\n";
      if (!ProfLabels.empty())
        OS << "  struct DcirMapProfSnap {\n"
           << "    const char *name;\n"
           << "    long long calls;\n    long long ns;\n"
           << "    long long trips;\n  };\n"
           << "  DcirMapProfSnap *dcir_rows = "
              "static_cast<DcirMapProfSnap *>(dcir_out);\n"
           << "  for (long long dcir_i = 0; dcir_i < dcir_n && dcir_i < "
              "dcir_cap; ++dcir_i) {\n"
           << "    dcir_rows[dcir_i].name = dcir_prof[dcir_i].name;\n"
           << "    dcir_rows[dcir_i].calls = "
              "dcir_prof[dcir_i].calls.load(std::memory_order_relaxed);\n"
           << "    dcir_rows[dcir_i].ns = "
              "dcir_prof[dcir_i].ns.load(std::memory_order_relaxed);\n"
           << "    dcir_rows[dcir_i].trips = "
              "dcir_prof[dcir_i].trips.load(std::memory_order_relaxed);\n"
           << "  }\n";
      OS << "  return dcir_n;\n}\n";
    }
    // Speculation outcome readback (multi-versioned artifacts only): null
    // out returns the row count, else up to cap rows are snapshot-copied.
    // Row layout: {const char *name; long long pass; long long fail;}
    // (exec::SpeculationABIEntry).
    if (!Opts.Speculative.empty()) {
      OS << "\nextern \"C\" long long " << G.getName()
         << "__dcir_speculation([[maybe_unused]] void *dcir_out, "
            "[[maybe_unused]] long long dcir_cap) {\n"
         << "  const long long dcir_n = " << SpecLabels.size() << "LL;\n"
         << "  if (!dcir_out)\n    return dcir_n;\n";
      if (!SpecLabels.empty())
        OS << "  struct DcirSpecSnap {\n"
           << "    const char *name;\n"
           << "    long long pass;\n    long long fail;\n  };\n"
           << "  DcirSpecSnap *dcir_rows = "
              "static_cast<DcirSpecSnap *>(dcir_out);\n"
           << "  for (long long dcir_i = 0; dcir_i < dcir_n && dcir_i < "
              "dcir_cap; ++dcir_i) {\n"
           << "    dcir_rows[dcir_i].name = dcir_spec[dcir_i].name;\n"
           << "    dcir_rows[dcir_i].pass = "
              "dcir_spec[dcir_i].pass.load(std::memory_order_relaxed);\n"
           << "    dcir_rows[dcir_i].fail = "
              "dcir_spec[dcir_i].fail.load(std::memory_order_relaxed);\n"
           << "  }\n";
      OS << "  return dcir_n;\n}\n";
    }
  }

  /// The static per-map profile table (between the prelude and the entry
  /// function: the scopes update it, the readback hook snapshots it).
  /// Empty unless ProfileMaps emitted at least one row.
  std::string profileTable() const {
    if (ProfLabels.empty())
      return std::string();
    std::ostringstream T;
    T << "namespace {\n"
      << "struct DcirMapProf {\n"
      << "  const char *name;\n"
      << "  std::atomic<long long> calls;\n"
      << "  std::atomic<long long> ns;\n"
      << "  std::atomic<long long> trips;\n"
      << "};\n"
      << "DcirMapProf dcir_prof[" << ProfLabels.size() << "] = {\n";
    for (const std::string &L : ProfLabels)
      T << "    {\"" << L << "\", {0}, {0}, {0}},\n";
    T << "};\n} // namespace\n\n";
    return T.str();
  }

  /// The static per-scope speculation outcome table (guard evaluations
  /// update it, the `__dcir_speculation` hook snapshots it). Empty unless
  /// at least one scope was multi-versioned.
  std::string specTable() const {
    if (SpecLabels.empty())
      return std::string();
    std::ostringstream T;
    T << "namespace {\n"
      << "struct DcirSpec {\n"
      << "  const char *name;\n"
      << "  std::atomic<long long> pass;\n"
      << "  std::atomic<long long> fail;\n"
      << "};\n"
      << "DcirSpec dcir_spec[" << SpecLabels.size() << "] = {\n";
    for (const std::string &L : SpecLabels)
      T << "    {\"" << L << "\", {0}, {0}},\n";
    T << "};\n} // namespace\n\n";
    return T.str();
  }

  /// Opens the profiling wrapper of a map scope: starts the clock and
  /// evaluates the scope's per-entry trip count. Returns the row index.
  /// Trips multiply the extents of the dimensions that do not reference a
  /// sibling parameter of the same entry (those are in scope only inside
  /// the nest — e.g. an intra-tile strip bound by its tile parameter), so
  /// a tiled map reports its tile count. Evaluated once per scope entry,
  /// outside any work-sharing pragma.
  unsigned emitProfileEnter(const State &S, const MapEntry *Entry,
                            const std::string &Pad) {
    unsigned Idx = ProfLabels.size();
    ProfLabels.push_back(codegen::mapScopeLabel(S, *Entry));
    std::set<std::string> Own(Entry->Params.begin(), Entry->Params.end());
    std::string Trips;
    for (size_t D = 0; D < Entry->Ranges.size(); ++D) {
      const sym::SymRange &R = Entry->Ranges[D];
      std::set<std::string> Syms;
      R.collectSymbols(Syms);
      bool UsesSibling = false;
      for (const std::string &Sy : Syms)
        if (Own.count(Sy))
          UsesSibling = true;
      if (UsesSibling)
        continue;
      std::string Step = R.Step ? cExpr(R.Step) : "1LL";
      std::string T = "dcir_max(0LL, ((" + cExpr(R.End) + ") - (" +
                      cExpr(R.Begin) + ") + (" + Step + ") - 1) / (" +
                      Step + "))";
      Trips = Trips.empty() ? T : Trips + " * " + T;
    }
    if (Trips.empty())
      Trips = "1LL";
    OS << Pad << "{ // dcir map profile " << Idx << "\n"
       << Pad << "auto dcir_prof_t" << Idx
       << " = std::chrono::steady_clock::now();\n"
       << Pad << "long long dcir_prof_n" << Idx << " = " << Trips << ";\n";
    return Idx;
  }

  /// Closes the profiling wrapper: folds elapsed time, one call, and the
  /// trip count into the scope's table row (relaxed — concurrent
  /// invocations of the artifact may race benignly on the counters).
  void emitProfileExit(unsigned Idx, const std::string &Pad) {
    OS << Pad << "dcir_prof[" << Idx
       << "].ns.fetch_add(std::chrono::duration_cast<"
          "std::chrono::nanoseconds>(std::chrono::steady_clock::now() - "
          "dcir_prof_t"
       << Idx << ").count(), std::memory_order_relaxed);\n"
       << Pad << "dcir_prof[" << Idx
       << "].calls.fetch_add(1, std::memory_order_relaxed);\n"
       << Pad << "dcir_prof[" << Idx << "].trips.fetch_add(dcir_prof_n"
       << Idx << ", std::memory_order_relaxed);\n"
       << Pad << "}\n";
  }

  void emitDeallocations() {
    // Persist scalar-container shadow locals (the entry's outputs may be
    // scalars).
    for (const auto &[Name, D] : G.descs())
      if (!D.Transient && D.K == DataDesc::Kind::Scalar)
        OS << "  *" << Name << "__dcir_param = " << Name << ";\n";
    for (const auto &[Name, D] : G.descs())
      if (D.Transient && D.K == DataDesc::Kind::Array &&
          !(D.StorageKind == Storage::Stack && D.totalSize().isConstant()))
        OS << "  delete[] " << Name << ";\n";
  }

  std::string access(const std::string &Data, const sym::SymSubset &Subset) {
    const DataDesc &D = G.desc(Data);
    std::string Ref = Data;
    // Scalars — transient locals and the shadow locals of non-transient
    // scalar parameters alike — are plain named variables here.
    if (D.K == DataDesc::Kind::Scalar)
      return Ref;
    // Row-major linearization.
    std::ostringstream Idx;
    Idx << Ref << "[";
    if (Subset.rank() == 0) {
      Idx << "0";
    } else {
      std::string Lin;
      for (size_t I = 0; I < Subset.rank(); ++I) {
        std::string Term = cExpr(Subset.dim(I).Begin);
        if (Opts.CheckBounds && I < D.Shape.size()) {
          Term = "dcir_bc(" + Term + ", " + cExpr(D.Shape[I]) + ", \"" +
                 Data + "\")";
          if (Info)
            ++Info->BoundsChecks;
        }
        if (Lin.empty())
          Lin = Term;
        else
          Lin = "(" + Lin + ") * (" + cExpr(D.Shape[I]) + ") + " + Term;
      }
      Idx << Lin;
    }
    Idx << "]";
    return Idx.str();
  }

  std::string texpr(const TExpr &E,
                    const std::map<std::string, std::string> &Conns) {
    switch (E.K) {
    case TExpr::Kind::ConstI:
      return std::to_string(E.I) + "LL";
    case TExpr::Kind::ConstF: {
      std::ostringstream V;
      V.precision(17);
      V << E.F;
      std::string S = V.str();
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos)
        S += ".0";
      return S;
    }
    case TExpr::Kind::Input: {
      auto It = Conns.find(E.Name);
      if (It == Conns.end()) {
        Diags.error("codegen: unconnected tasklet input '" + E.Name + "'");
        Failed = true;
        return "0";
      }
      return It->second;
    }
    case TExpr::Kind::Sym:
      return cExpr(E.Sym);
    case TExpr::Kind::Op:
      break;
    }
    auto C = [&](size_t I) { return texpr(E.Children[I], Conns); };
    const std::string &Op = E.Name;
    static const std::map<std::string, std::string> Infix = {
        {"add", "+"}, {"sub", "-"}, {"mul", "*"}, {"div", "/"},
        {"rem", "%"}, {"and", "&"}, {"or", "|"},  {"xor", "^"},
        {"shl", "<<"}, {"shr", ">>"}, {"lt", "<"}, {"le", "<="},
        {"gt", ">"}, {"ge", ">="}, {"eq", "=="}, {"ne", "!="}};
    auto It = Infix.find(Op);
    if (It != Infix.end())
      return "(" + C(0) + " " + It->second + " " + C(1) + ")";
    if (Op == "neg")
      return "(-" + C(0) + ")";
    if (Op == "not")
      return "(!" + C(0) + ")";
    if (Op == "min")
      return "dcir_min(" + C(0) + ", " + C(1) + ")";
    if (Op == "max")
      return "dcir_max(" + C(0) + ", " + C(1) + ")";
    if (Op == "select")
      return "(" + C(0) + " ? " + C(1) + " : " + C(2) + ")";
    if (Op == "sitofp")
      return "(double)(" + C(0) + ")";
    if (Op == "fptosi")
      return "(long long)(" + C(0) + ")";
    if (Op == "extf")
      return "(double)(" + C(0) + ")";
    if (Op == "truncf")
      return "(float)(" + C(0) + ")";
    if (Op == "pow")
      return "std::pow(" + C(0) + ", " + C(1) + ")";
    // Unary libm.
    return "std::" + Op + "(" + C(0) + ")";
  }

  void emitTasklet(const State &S, const Tasklet *T, int Indent) {
    std::string Pad(Indent, ' ');
    // Bind input connectors.
    std::map<std::string, std::string> Conns;
    for (const auto *E : S.inEdges(T)) {
      if (E->M.isEmpty()) {
        if (!E->SrcConn.empty() && !E->DstConn.empty())
          Conns[E->DstConn] =
              "v" + std::to_string(E->Src) + "_" + E->SrcConn;
        continue;
      }
      Conns[E->DstConn] = access(E->M.Data, E->M.Subset);
    }
    // Compute outputs into temps (value edges may consume them later).
    // Outputs nothing consumes are skipped: tasklet expressions are pure,
    // and a dead temp would trip -Wunused-variable.
    std::set<std::string> Consumed;
    for (const auto *E : S.outEdges(T))
      if (!E->SrcConn.empty())
        Consumed.insert(E->SrcConn);
    for (const auto &[Conn, Code] : T->Code) {
      if (!Consumed.count(Conn))
        continue;
      std::string Temp = "v" + std::to_string(T->getId()) + "_" + Conn;
      OS << Pad << cType(Code.Ty) << " " << Temp << " = "
         << texpr(Code, Conns) << ";\n";
    }
    // Write through out edges.
    for (const auto *E : S.outEdges(T)) {
      if (E->M.isEmpty())
        continue;
      std::string Temp = "v" + std::to_string(T->getId()) + "_" + E->SrcConn;
      std::string Dst = access(E->M.Data, E->M.Subset);
      if (E->M.Wcr.empty()) {
        OS << Pad << Dst << " = " << Temp << ";\n";
        continue;
      }
      // WCR update. Inside a parallel region the region analysis decided
      // how to synchronize this edge; elsewhere (and for updates proven
      // private to one thread) the plain read-modify-write suffices.
      auto PlanIt = WcrPlan.find(E);
      WcrLowering L =
          PlanIt == WcrPlan.end() ? WcrLowering::Plain : PlanIt->second;
      if (L == WcrLowering::Hoisted)
        Dst = WcrVar.at(E); // Thread-private accumulator.
      if (L == WcrLowering::Atomic)
        OS << "#ifdef _OPENMP\n#pragma omp atomic\n#endif\n";
      else if (L == WcrLowering::Critical)
        OS << "#ifdef _OPENMP\n#pragma omp critical\n#endif\n";
      if (E->M.Wcr == "add")
        OS << Pad << Dst << " += " << Temp << ";\n";
      else if (E->M.Wcr == "mul")
        OS << Pad << Dst << " *= " << Temp << ";\n";
      else if (E->M.Wcr == "min")
        OS << Pad << "{ " << Dst << " = dcir_min(" << Dst << ", " << Temp
           << "); }\n";
      else if (E->M.Wcr == "max")
        OS << Pad << "{ " << Dst << " = dcir_max(" << Dst << ", " << Temp
           << "); }\n";
    }
  }

  void emitCopy(const State &S, const DataflowEdge &E, int Indent) {
    std::string Pad(Indent, ' ');
    const auto *DstA = cast<AccessNode>(S.getNode(E.Dst));
    std::string Iv = "c" + std::to_string(TempCounter++);
    // Element-wise loop nest over the subset.
    int Depth = 0;
    std::vector<std::string> Ivs;
    for (size_t D = 0; D < E.M.Subset.rank(); ++D) {
      std::string V = Iv + "_" + std::to_string(D);
      Ivs.push_back(V);
      OS << Pad << std::string(Depth * 2, ' ') << "for (long long " << V
         << " = " << cExpr(E.M.Subset.dim(D).Begin) << "; " << V << " < "
         << cExpr(E.M.Subset.dim(D).End) << "; ++" << V << ")\n";
      ++Depth;
    }
    std::vector<sym::SymExpr> Point;
    for (const std::string &V : Ivs)
      Point.push_back(SymExpr::symbol(V));
    sym::SymSubset At = sym::SymSubset::element(Point);
    OS << Pad << std::string(Depth * 2, ' ')
       << access(DstA->getData(), At) << " = " << access(E.M.Data, At)
       << ";\n";
  }

  /// The WCR edges whose destination (or routed write) lies within the
  /// scope node set: the updates a work-sharing pragma must synchronize.
  std::vector<const DataflowEdge *>
  wcrEdgesIn(const State &S, const std::set<int> &Scope, int ExitId) const {
    std::vector<const DataflowEdge *> Out;
    for (const auto &E : S.edges())
      if (!E.M.isEmpty() && !E.M.Wcr.empty() &&
          (Scope.count(E.Dst) || E.Dst == ExitId))
        Out.push_back(&E);
    return Out;
  }

  /// Decides whether the map scope can carry a work-sharing pragma, and
  /// with which clauses. Returns false to emit the scope serially. On
  /// success fills WcrPlan/WcrVar for the scope's WCR edges, \p Clauses
  /// with the collapse/reduction text, \p Decls with accumulator
  /// declarations to emit before the pragma, and \p Combines with the
  /// post-loop statements folding hoisted accumulators into their cells.
  bool planParallelRegion(const State &S, const MapEntry *Entry,
                          const std::set<int> &Scope, std::string &Clauses,
                          std::string &Decls, std::string &Combines,
                          const std::string &Pad) {
    bool Ok = planParallelRegionImpl(S, Entry, Scope, Clauses, Decls,
                                     Combines, Pad);
    if (!Ok) {
      // A partially filled plan must not leak into the serial emission of
      // this scope (a Hoisted entry would reference an undeclared
      // accumulator) or into later scopes.
      WcrPlan.clear();
      WcrVar.clear();
    }
    return Ok;
  }

  bool planParallelRegionImpl(const State &S, const MapEntry *Entry,
                              const std::set<int> &Scope,
                              std::string &Clauses, std::string &Decls,
                              std::string &Combines,
                              const std::string &Pad) {
    // Every map parameter in the region (this scope and nested ones).
    std::set<std::string> AllParams(Entry->Params.begin(),
                                    Entry->Params.end());
    for (int Id : Scope)
      if (const auto *ME = dyn_cast<MapEntry>(S.getNode(Id)))
        AllParams.insert(ME->Params.begin(), ME->Params.end());

    // Grain check: too little work per region entry and the pragma only
    // measures its own fork/join overhead. The symbolic case is explicit:
    // inside a sequential loop the region re-enters every trip, so the
    // work must be *proven* large — an unevaluable (symbolic or
    // trip-dependent) extent is refused there. A one-shot region pays its
    // overhead once, so an unproven estimate keeps the pragma but is
    // *annotated* (GrainUnproven + the `dcir-grain:` source marker);
    // specializing the symbols turns the estimate into a constant and the
    // decision into a proof, in either direction.
    // Tiled maps stay fully accounted: a tile dimension contributes its
    // trip count divided by the (step-sized) tile, and its intra strip
    // contributes the strip length, so the product is the true total.
    GrainUnproven = false;
    if (!ForceParallel) {
      std::uint64_t Work = 1;
      bool Unknown = false;
      auto Extent = [&](const MapEntry &ME, size_t D,
                        const std::map<size_t, sdfgopt::IntraTileDim>
                            &Intra) {
        if (auto It = Intra.find(D); It != Intra.end())
          return std::uint64_t(It->second.Extent);
        const sym::SymRange &R = ME.Ranges[D];
        SymExpr N = SymExpr::sub(R.End, R.Begin);
        if (!N.isConstant()) {
          Unknown = true;
          return std::uint64_t(1);
        }
        std::int64_t Step = 1;
        if (R.Step) {
          if (!R.Step.isConstant() || R.Step.constantValue() <= 0) {
            Unknown = true;
            return std::uint64_t(1);
          }
          Step = R.Step.constantValue();
        }
        std::int64_t V = (N.constantValue() + Step - 1) / Step;
        return std::uint64_t(V > 0 ? V : 0);
      };
      auto AddScope = [&](const MapEntry &ME) {
        std::map<size_t, sdfgopt::IntraTileDim> Intra =
            sdfgopt::intraTileDims(ME);
        for (size_t D = 0; D < ME.Ranges.size(); ++D)
          Work *= Extent(ME, D, Intra);
      };
      AddScope(*Entry);
      for (int Id : Scope)
        if (const auto *ME = dyn_cast<MapEntry>(S.getNode(Id)))
          AddScope(*ME);
      const bool InLoop = LoopStates.count(S.getId()) > 0;
      if (InLoop && (Unknown || Work < Opts.MinInLoopParallelWork))
        return false; // Refuse: per-trip overhead, unproven or small work.
      if (!InLoop && !Unknown && Work < Opts.MinParallelWork)
        return false; // Proven small.
      GrainUnproven = !InLoop && Unknown;
    }

    std::vector<const DataflowEdge *> Wcr =
        wcrEdgesIn(S, Scope, Entry->ExitId);

    // Scalars privatized into this region (this scope or a nested one):
    // each iteration owns a fresh in-scope instance, so writes to them
    // are thread-private by construction.
    std::set<std::string> RegionPrivate(Entry->PrivateData.begin(),
                                        Entry->PrivateData.end());
    for (int Id : Scope)
      if (const auto *ME = dyn_cast<MapEntry>(S.getNode(Id)))
        RegionPrivate.insert(ME->PrivateData.begin(),
                             ME->PrivateData.end());

    // Non-WCR writes to non-private scalar containers are shared-variable
    // races under a work-sharing loop (the C backend keeps such transients
    // at function scope); maps produced by the auto-parallelizer never
    // contain them, but hand-built or frontend graphs might.
    for (const auto &E : S.edges()) {
      if (E.M.isEmpty() || !E.M.Wcr.empty())
        continue;
      const auto *DstA = dyn_cast<AccessNode>(S.getNode(E.Dst));
      const bool InScope = Scope.count(E.Dst) || E.Dst == Entry->ExitId;
      if (!InScope)
        continue;
      const std::string *Target = nullptr;
      if (DstA)
        Target = &DstA->getData();
      else if (isa<MapExit>(S.getNode(E.Dst)))
        Target = &E.M.Data;
      if (Target && G.desc(*Target).K == DataDesc::Kind::Scalar &&
          !RegionPrivate.count(*Target))
        return false;
    }

    // Place each WCR update. Reductions (privatized by the clause) and
    // atomics are safe under any collapse depth; only a "plain" update —
    // one proven pinned to the thread partition, so it never crosses
    // threads — requires collapse(1), because a collapsed schedule may
    // split one outer iteration across threads. Under collapse(1) the
    // partition is the first parameter's value; an intra-tile parameter
    // whose strips are disjoint across its (pinned) tile parameter pins
    // just as well — equal values imply the same tile, hence the same
    // thread — which is what keeps gemm's outer nest atomics-free after
    // tile-maps splits `i` into `i__tile`/`i`.
    const std::set<std::string> Pinned =
        sdfgopt::threadPinnedParams(*Entry);
    // Constant trip counts (a specialization dividend) let the pinning
    // proof bound linearized offsets like `N*i + j` — see
    // subsetsDisjointAcrossParam.
    const std::map<std::string, std::pair<std::int64_t, std::int64_t>>
        ParamBounds = sdfgopt::mapParamBounds(S);
    auto PartitionDisjoint = [&](const sym::SymSubset &A,
                                 const sym::SymSubset &B) {
      for (const std::string &P : Pinned) {
        std::set<std::string> Others = AllParams;
        Others.erase(P);
        if (sdfgopt::subsetsDisjointAcrossParam(A, B, P, Others,
                                                &ParamBounds))
          return true;
      }
      return false;
    };
    std::map<std::string, std::string> ReductionOps; // var -> op
    struct Hoist {
      const DataflowEdge *E;
      std::string Var, Op;
      DType Ty;
    };
    std::vector<Hoist> Hoists;
    bool AnyPlain = false;
    for (const DataflowEdge *E : Wcr) {
      const std::string &Op = E->M.Wcr;
      if (Op != "add" && Op != "mul" && Op != "min" && Op != "max")
        return false;
      const Node *DstN = S.getNode(E->Dst);
      const std::string &Data = isa<AccessNode>(DstN)
                                    ? cast<AccessNode>(DstN)->getData()
                                    : E->M.Data;
      const DataDesc &D = G.desc(Data);
      // Any plain read of a reduction target inside the region would
      // observe partial sums (or, with a clause, the op identity).
      // Reads come directly off an access node or routed through a map
      // entry (the translator's representation).
      auto ReadInRegion = [&] {
        for (const auto &E2 : S.edges())
          if (!E2.M.isEmpty() && E2.M.Data == Data && E2.M.Wcr.empty() &&
              (isa<AccessNode>(S.getNode(E2.Src)) ||
               isa<MapEntry>(S.getNode(E2.Src))) &&
              (Scope.count(E2.Dst) || E2.Dst == Entry->ExitId))
            return true;
        return false;
      };
      if (D.K == DataDesc::Kind::Scalar && D.Transient) {
        // An OpenMP reduction: private per-thread copies, combined once.
        auto It = ReductionOps.find(Data);
        if (It != ReductionOps.end() && It->second != Op)
          return false; // Two ops on one variable: no single clause.
        if (ReadInRegion())
          return false;
        ReductionOps[Data] = Op;
        WcrPlan[E] = WcrLowering::Reduction;
        continue;
      }
      // Plain (non-WCR) subsets of this container moved inside the
      // region. A converted outer nest may legally mix them with WCR
      // updates (e.g. gemm: the beta-scale read/write plus the k-loop's
      // accumulation), but then every plain access must be pinned to the
      // same outermost-parameter partition as the update — otherwise a
      // neighbouring thread could observe partial sums, which no clause
      // or atomic can repair, and the region must stay serial.
      std::vector<const sym::SymSubset *> Plains;
      for (const auto &E2 : S.edges()) {
        if (E2.M.isEmpty() || !E2.M.Wcr.empty())
          continue;
        const bool InRegion = Scope.count(E2.Src) || Scope.count(E2.Dst) ||
                              E2.Dst == Entry->ExitId;
        if (!InRegion)
          continue;
        const auto *DstA2 = dyn_cast<AccessNode>(S.getNode(E2.Dst));
        if (E2.M.Data == Data || (DstA2 && DstA2->getData() == Data))
          Plains.push_back(&E2.M.Subset);
      }
      auto PinnedVsPlains = [&] {
        for (const sym::SymSubset *Sub : Plains)
          if (!PartitionDisjoint(E->M.Subset, *Sub))
            return false;
        return true;
      };
      // A target cell invariant across every region parameter is a pure
      // single-cell reduction: accumulate into a thread-private local and
      // fold it in once after the loops, instead of an atomic per update.
      std::set<std::string> SubsetSyms;
      E->M.Subset.collectSymbols(SubsetSyms);
      bool UsesParam = false;
      for (const std::string &Sym : SubsetSyms)
        if (AllParams.count(Sym))
          UsesParam = true;
      if (!UsesParam) {
        if (ReadInRegion() || !Plains.empty())
          return false;
        std::string Var = "dcir_red" + std::to_string(RedCounter++);
        Hoists.push_back({E, Var, Op, D.Ty});
        WcrPlan[E] = WcrLowering::Hoisted;
        WcrVar[E] = Var;
        continue;
      }
      // Plain lowering must also be disjoint from every *other* WCR write
      // to the same container: two individually-injective updates (A[i]
      // and A[i+1]) still collide across neighbouring threads.
      auto DisjointFromPeers = [&] {
        for (const DataflowEdge *E2 : Wcr) {
          if (E2 == E)
            continue;
          const Node *Dst2 = S.getNode(E2->Dst);
          const std::string &Data2 = isa<AccessNode>(Dst2)
                                         ? cast<AccessNode>(Dst2)->getData()
                                         : E2->M.Data;
          if (Data2 != Data)
            continue;
          if (!PartitionDisjoint(E->M.Subset, E2->M.Subset))
            return false;
        }
        return true;
      };
      if (PartitionDisjoint(E->M.Subset, E->M.Subset) &&
          DisjointFromPeers() && PinnedVsPlains()) {
        WcrPlan[E] = WcrLowering::Plain;
        AnyPlain = true;
        continue;
      }
      if (!Plains.empty())
        return false; // Partial sums would be visible to plain accesses.
      WcrPlan[E] = (Op == "min" || Op == "max") ? WcrLowering::Critical
                                                : WcrLowering::Atomic;
    }

    // Rectangular collapse depth: the prefix of dimensions whose ranges
    // reference no map parameter.
    size_t Collapse = 1;
    if (!AnyPlain && TileOverride < 2) {
      while (Collapse < Entry->Params.size()) {
        const sym::SymRange &R = Entry->Ranges[Collapse];
        std::set<std::string> Syms;
        R.collectSymbols(Syms);
        bool UsesParam = false;
        for (const std::string &Sym : Syms)
          if (AllParams.count(Sym))
            UsesParam = true;
        if (UsesParam)
          break;
        ++Collapse;
      }
    }

    auto OpSym = [](const std::string &Op) {
      return Op == "add"   ? "+"
             : Op == "mul" ? "*"
             : Op == "min" ? "min"
                           : "max";
    };
    LastCollapse = Collapse;

    std::ostringstream C, DeclOS, CombineOS;
    if (Collapse > 1)
      C << " collapse(" << Collapse << ")";
    for (const auto &[Var, Op] : ReductionOps)
      C << " reduction(" << OpSym(Op) << ":" << Var << ")";
    for (const Hoist &H : Hoists) {
      C << " reduction(" << OpSym(H.Op) << ":" << H.Var << ")";
      std::string T = cType(H.Ty);
      std::string Identity = H.Op == "add"   ? "0"
                             : H.Op == "mul" ? "1"
                             : H.Op == "min"
                                 ? "std::numeric_limits<" + T + ">::max()"
                                 : "std::numeric_limits<" + T +
                                       ">::lowest()";
      DeclOS << Pad << T << " " << H.Var << " = " << Identity << ";\n";
      const Node *DstN = S.getNode(H.E->Dst);
      const std::string &Data = isa<AccessNode>(DstN)
                                    ? cast<AccessNode>(DstN)->getData()
                                    : H.E->M.Data;
      std::string Cell = access(Data, H.E->M.Subset);
      if (H.Op == "add")
        CombineOS << Pad << Cell << " += " << H.Var << ";\n";
      else if (H.Op == "mul")
        CombineOS << Pad << Cell << " *= " << H.Var << ";\n";
      else
        CombineOS << Pad << Cell << " = dcir_" << H.Op << "(" << Cell
                  << ", " << H.Var << ");\n";
    }
    Clauses = C.str();
    Decls = DeclOS.str();
    Combines = CombineOS.str();
    if (Info) {
      Info->Reductions += ReductionOps.size() + Hoists.size();
      for (const auto &[E, L] : WcrPlan)
        if (L == WcrLowering::Atomic || L == WcrLowering::Critical)
          ++Info->AtomicUpdates;
    }
    return true;
  }

  /// Emits the evaluation of one guard term into the flag variable
  /// \p Ok. SymCond and PtrDisjoint are single expressions; Inspector is
  /// a pre-loop predicated on Ok still holding (earlier terms are cheaper
  /// and may already have failed the guard).
  void emitGuardTerm(const SpecGuardTerm &T, const MapEntry *Entry,
                     const std::string &Ok, unsigned ScopeIdx,
                     unsigned TermIdx, const std::string &Pad) {
    switch (T.K) {
    case SpecGuardKind::SymCond:
      OS << Pad << Ok << " = " << Ok << " && (" << cExpr(T.Cond) << ");\n";
      return;
    case SpecGuardKind::PtrDisjoint: {
      auto Ptr = [&](const std::string &N) {
        const DataDesc &D = G.desc(N);
        if (D.K != DataDesc::Kind::Scalar)
          return N;
        // Non-transient scalars arrive as pointers (renamed so the typed
        // shadow local owns the name); transient scalars are locals.
        return D.Transient ? "&" + N : N + "__dcir_param";
      };
      auto Bytes = [&](const std::string &N) {
        const DataDesc &D = G.desc(N);
        std::string Sz = "(long long)sizeof(" + cType(D.Ty) + ")";
        if (D.K != DataDesc::Kind::Scalar)
          Sz += " * (" + cExpr(D.totalSize()) + ")";
        return Sz;
      };
      OS << Pad << Ok << " = " << Ok << " && dcir_disjoint(" << Ptr(T.A)
         << ", " << Bytes(T.A) << ", " << Ptr(T.B) << ", " << Bytes(T.B)
         << ");\n";
      return;
    }
    case SpecGuardKind::Inspector:
      break;
    }
    // Inspector: replay Index[IndexExpr] over Param's range; every value
    // must land in [0, extent(Target)) and never repeat — distinct
    // iterations then write distinct, in-bounds cells of Target. The mark
    // array is one byte per Target cell, calloc'd per evaluation; an
    // allocation failure conservatively fails the guard.
    size_t PIdx = 0;
    for (size_t D = 0; D < Entry->Params.size(); ++D)
      if (Entry->Params[D] == T.Param)
        PIdx = D;
    const sym::SymRange &R = Entry->Ranges[PIdx];
    const DataDesc &TD = G.desc(T.Target);
    std::string Ext = TD.Shape.empty() ? "1LL" : cExpr(TD.Shape[0]);
    std::string Tag =
        std::to_string(ScopeIdx) + "_" + std::to_string(TermIdx);
    std::string Seen = "dcir_seen" + Tag;
    std::string ExtV = "dcir_ext" + Tag;
    std::vector<sym::SymExpr> Point{T.IndexExpr};
    sym::SymSubset At = sym::SymSubset::element(Point);
    OS << Pad << "if (" << Ok << ") { // inspect " << T.Index << " -> "
       << T.Target << "\n"
       << Pad << "  long long " << ExtV << " = " << Ext << ";\n"
       << Pad << "  unsigned char *" << Seen
       << " = static_cast<unsigned char *>(std::calloc(\n"
       << Pad << "      " << ExtV << " > 0 ? " << ExtV << " : 1, 1));\n"
       << Pad << "  if (!" << Seen << ")\n"
       << Pad << "    " << Ok << " = false;\n"
       << Pad << "  else {\n"
       << Pad << "    for (long long " << T.Param << " = "
       << cExpr(R.Begin) << "; " << T.Param << " < " << cExpr(R.End)
       << "; " << T.Param << " += " << (R.Step ? cExpr(R.Step) : "1")
       << ") {\n"
       << Pad << "      long long dcir_iv = (long long)"
       << access(T.Index, At) << ";\n"
       << Pad << "      if (dcir_iv < 0 || dcir_iv >= " << ExtV << " || "
       << Seen << "[dcir_iv]) {\n"
       << Pad << "        " << Ok << " = false;\n"
       << Pad << "        break;\n"
       << Pad << "      }\n"
       << Pad << "      " << Seen << "[dcir_iv] = 1;\n"
       << Pad << "    }\n"
       << Pad << "    std::free(" << Seen << ");\n"
       << Pad << "  }\n"
       << Pad << "}\n";
  }

  /// Multi-versions one top-level scope behind its synthesized guard:
  /// evaluate the conjunction once per scope entry, count the outcome in
  /// the speculation table, then branch between the parallel and the
  /// original serial emission. Both branches are full re-emissions of the
  /// same scope — the guard-fail branch with the pragma decision forced
  /// off, so the fallback preserves the original sequential order.
  void emitSpeculativeScope(const State &S, const MapEntry *Entry,
                            const std::vector<Node *> &Order,
                            std::set<int> &Done, int Indent,
                            const SpeculationGuard &Guard) {
    std::string Pad(Indent, ' ');
    unsigned Idx = SpecLabels.size();
    SpecLabels.push_back(codegen::mapScopeLabel(S, *Entry));
    if (Info)
      ++Info->SpeculativeGuards;
    std::string Ok = "dcir_spec_ok" + std::to_string(Idx);
    OS << Pad << "bool " << Ok << " = true;\n";
    for (size_t TI = 0; TI < Guard.Terms.size(); ++TI)
      emitGuardTerm(Guard.Terms[TI], Entry, Ok, Idx, unsigned(TI), Pad);
    OS << Pad << "if (" << Ok << ")\n"
       << Pad << "  dcir_spec[" << Idx
       << "].pass.fetch_add(1, std::memory_order_relaxed);\n"
       << Pad << "else\n"
       << Pad << "  dcir_spec[" << Idx
       << "].fail.fetch_add(1, std::memory_order_relaxed);\n";
    OS << Pad << "if (" << Ok << ") {\n";
    {
      // Both branches emit the same node set; the first works on a copy
      // of Done so the second sees every scope node unemitted again.
      std::set<int> DoneCopy = Done;
      SpecEmit = 1;
      emitMapScope(S, Entry, Order, DoneCopy, Indent + 2);
    }
    OS << Pad << "} else {\n";
    SpecEmit = 2;
    emitMapScope(S, Entry, Order, Done, Indent + 2);
    SpecEmit = 0;
    OS << Pad << "}\n";
  }

  void emitMapScope(const State &S, const MapEntry *Entry,
                    const std::vector<Node *> &Order, std::set<int> &Done,
                    int Indent) {
    // Runtime-guarded multi-versioning: a top-level scope with a
    // synthesized guard dispatches to the dual emission. Scopes carrying
    // MapEntry::Speculative that no guard covers fall through and are
    // forced serial below — an unproven conversion never runs parallel
    // unguarded.
    if (MapDepth == 0 && SpecEmit == 0 && !Opts.Speculative.empty()) {
      auto It = Opts.Speculative.find(codegen::mapScopeLabel(S, *Entry));
      if (It != Opts.Speculative.end()) {
        emitSpeculativeScope(S, Entry, Order, Done, Indent, It->second);
        return;
      }
    }
    std::string Pad(Indent, ' ');
    std::set<int> Scope = S.scopeNodes(*Entry);
    Done.insert(Entry->ExitId);

    // Opt-in per-map profiling wraps the whole scope — declarations,
    // pragma, loops and combines — so the row times exactly what one
    // scope entry costs. ProfileTopMapsOnly keeps the clock out of
    // nested scopes, whose wrappers would otherwise run inside
    // parallel-region inner loops and inflate the per-map numbers the
    // tuner consumes.
    const bool Prof =
        Opts.ProfileMaps && (!Opts.ProfileTopMapsOnly || MapDepth == 0);
    unsigned ProfIdx = 0;
    if (Prof)
      ProfIdx = emitProfileEnter(S, Entry, Pad);

    // Measured schedule override for this scope, if any (top-level only —
    // the same scopes the pragma decision applies to).
    MapSchedule Sched;
    if (MapDepth == 0 && !Opts.Schedules.empty()) {
      auto It = Opts.Schedules.find(codegen::mapScopeLabel(S, *Entry));
      if (It != Opts.Schedules.end() &&
          It->second.Policy != MapSchedulePolicy::Auto) {
        Sched = It->second;
        if (Info)
          ++Info->ScheduledMaps;
      }
    }
    // Guard-fail branches re-emit the original serial order; speculative
    // conversions outside a guard-pass branch never run parallel (their
    // safety was never proven — that is what Speculative records).
    const bool SpecSerial =
        SpecEmit == 2 || (Entry->Speculative && SpecEmit != 1);
    if (Info && MapDepth == 0 && Entry->Speculative && SpecEmit == 0)
      ++Info->SpeculativeSerialized;
    const bool ForceSerial =
        Sched.Policy == MapSchedulePolicy::Serial || SpecSerial;
    ForceParallel = Sched.Policy == MapSchedulePolicy::Parallel;
    TileOverride = ForceParallel ? Sched.Tile : 0;

    // A work-sharing pragma goes on outermost scopes only (no nested
    // parallelism); the region plan decides synchronization for WCR.
    bool Parallel = false;
    std::string Clauses, Decls, Combines;
    if (Opts.ParallelMaps && MapDepth == 0 && !Entry->Params.empty() &&
        !ForceSerial &&
        planParallelRegion(S, Entry, Scope, Clauses, Decls, Combines,
                           Pad)) {
      Parallel = true;
      if (GrainUnproven) {
        OS << Pad << "// dcir-grain: unproven symbolic work estimate "
                     "(one-shot region; specialize symbols to prove)\n";
        if (Info)
          ++Info->GrainUnproven;
      }
      OS << Decls << "#ifdef _OPENMP\n#pragma omp parallel for" << Clauses
         << "\n#endif\n";
      if (Info)
        ++Info->ParallelMapsEmitted;
    }
    // Emission-time strip-mine (measured schedules only): the pragma'd
    // loop walks tile origins and an intra loop walks the strip under the
    // original parameter name, coarsening fork/join grain by the tile
    // factor without re-running passes. Plain-pinned WCR stays sound:
    // equal pinned values land in the same tile, hence the same thread.
    const unsigned Tile = (Parallel && TileOverride >= 2) ? TileOverride : 0;
    ForceParallel = false;
    TileOverride = 0;
    // Reduction-free parallel regions are outlined into a static body
    // function called from the work-sharing loop. The compiler's own
    // region outlining routes the entry's pointers through a shared-data
    // struct, losing their __restrict__ qualification — and with it the
    // vectorization of the region's inner loops. A named function with
    // fresh restrict-qualified parameters restores the aliasing facts.
    // Regions with reduction clauses stay inline: the clause must name a
    // variable of the enclosing region, not a callee parameter.
    // Speculative artifacts never outline: the body functions re-qualify
    // every container __restrict__, re-asserting the aliasing contract
    // the artifact as a whole dropped (see emitSignature).
    const bool Outline = Parallel && Decls.empty() && Combines.empty() &&
                         Clauses.find("reduction") == std::string::npos &&
                         Opts.Speculative.empty();
    // The pragma owns the collapsed loop-header prefix; everything below
    // it belongs to the (possibly outlined) body.
    const size_t Split =
        Outline ? std::min(LastCollapse, Entry->Params.size())
                : Entry->Params.size();
    auto ForHeader = [&](std::ostream &Out, const std::string &Base,
                         size_t D, int Depth) {
      Out << Base << std::string(Depth * 2, ' ') << "for (long long "
          << Entry->Params[D] << " = " << cExpr(Entry->Ranges[D].Begin)
          << "; " << Entry->Params[D] << " < "
          << cExpr(Entry->Ranges[D].End) << "; " << Entry->Params[D]
          << " += "
          << (Entry->Ranges[D].Step ? cExpr(Entry->Ranges[D].Step) : "1")
          << ") {\n";
    };
    auto TileHeaders = [&](std::ostream &Out, const std::string &Base,
                           int &Depth) {
      const std::string &P = Entry->Params[0];
      const sym::SymRange &R = Entry->Ranges[0];
      std::string St = R.Step ? cExpr(R.Step) : "1";
      std::string Stride = std::to_string(Tile) + "LL * (" + St + ")";
      Out << Base << std::string(Depth * 2, ' ') << "for (long long " << P
          << "__tune = " << cExpr(R.Begin) << "; " << P << "__tune < "
          << cExpr(R.End) << "; " << P << "__tune += " << Stride << ") {\n";
      ++Depth;
      Out << Base << std::string(Depth * 2, ' ') << "for (long long " << P
          << " = " << P << "__tune; " << P << " < dcir_min<long long>(" << P
          << "__tune + " << Stride << ", " << cExpr(R.End) << "); " << P
          << " += " << St << ") {\n";
      ++Depth;
    };
    ++MapDepth;
    int Depth = 0;
    for (size_t D = 0; D < Split; ++D) {
      if (D == 0 && Tile)
        TileHeaders(OS, Pad, Depth);
      else
        ForHeader(OS, Pad, D, Depth++);
    }
    std::string BodyPad = Pad;
    std::ostringstream Scratch; // Holds the main stream while outlining.
    std::string FnName, FnParams;
    if (Outline) {
      FnName = "dcir_body_" + std::to_string(BodyFnCounter++);
      std::string FnArgs;
      std::set<std::string> Taken;
      auto AddParam = [&](const std::string &Decl, const std::string &Name) {
        if (!Taken.insert(Name).second)
          return;
        if (!FnParams.empty()) {
          FnParams += ", ";
          FnArgs += ", ";
        }
        FnParams += Decl;
        FnArgs += Name;
      };
      // The work-shared loop variables, by value; then every entry-scope
      // container and symbol under its own name, so the body text is
      // identical to the inline emission. [[maybe_unused]] keeps
      // unreferenced captures -Wall -Wextra clean; scalars pass by value
      // (a parallel region refuses non-private scalar writes), arrays as
      // restrict pointers (distinct containers are distinct allocations).
      for (size_t D = 0; D < Split; ++D)
        AddParam("long long " + Entry->Params[D], Entry->Params[D]);
      for (const auto &[Name, DD] : G.descs()) {
        if (DD.K == DataDesc::Kind::Scalar) {
          if (!PrivateScalars.count(Name))
            AddParam("[[maybe_unused]] " + cType(DD.Ty) + " " + Name, Name);
        } else {
          AddParam("[[maybe_unused]] " + cType(DD.Ty) + " *__restrict__ " +
                       Name,
                   Name);
        }
      }
      for (const std::string &Sym : G.symbols())
        AddParam("[[maybe_unused]] long long " + Sym, Sym);
      OS << Pad << std::string(Depth * 2, ' ') << FnName << "(" << FnArgs
         << ");\n";
      for (int D = Depth; D > 0; --D)
        OS << Pad << std::string((D - 1) * 2, ' ') << "}\n";
      // The body emits into a scratch stream and lands in BodyFns.
      OS.swap(Scratch);
      Depth = 0;
      BodyPad = "  ";
    }
    for (size_t D = Split; D < Entry->Params.size(); ++D)
      ForHeader(OS, BodyPad, D, Depth++);
    // Privatized scalars live inside the loop nest: one fresh instance
    // per iteration, thread-private under the work-sharing pragma. An
    // enclosing scope that already declared the name covers nested
    // scopes (the nest runs serially within one outer iteration).
    std::vector<std::string> Declared;
    for (const std::string &P : Entry->PrivateData) {
      if (ActivePrivate.count(P))
        continue;
      ActivePrivate.insert(P);
      Declared.push_back(P);
      OS << BodyPad << std::string(Depth * 2, ' ') << "[[maybe_unused]] "
         << cType(G.desc(P).Ty) << " " << P << " = 0;\n";
    }
    const int BodyIndent = int(BodyPad.size()) + Depth * 2;
    for (Node *N : Order)
      if (Scope.count(N->getId()))
        emitNode(S, N, Done, BodyIndent);
    for (int D = Depth; D > 0; --D)
      OS << BodyPad << std::string((D - 1) * 2, ' ') << "}\n";
    if (Outline) {
      std::string Body = OS.str();
      OS.swap(Scratch); // Restore the main stream.
      BodyFns << "static void " << FnName << "(" << FnParams << ") {\n"
              << Body << "}\n\n";
    }
    for (const std::string &P : Declared)
      ActivePrivate.erase(P);
    --MapDepth;
    if (Parallel) {
      OS << Combines;
      WcrPlan.clear();
      WcrVar.clear();
    }
    if (Prof)
      emitProfileExit(ProfIdx, Pad);
  }

  void emitNode(const State &S, Node *N, std::set<int> &Done, int Indent) {
    if (Done.count(N->getId()))
      return;
    Done.insert(N->getId());
    if (const auto *T = dyn_cast<Tasklet>(N)) {
      emitTasklet(S, T, Indent);
      return;
    }
    if (const auto *A = dyn_cast<AccessNode>(N)) {
      for (const auto *E : S.outEdges(A))
        if (isa<AccessNode>(S.getNode(E->Dst)) && !E->M.isEmpty())
          emitCopy(S, *E, Indent);
      return;
    }
    if (const auto *ME = dyn_cast<MapEntry>(N)) {
      std::vector<Node *> Order = S.topologicalOrder();
      emitMapScope(S, ME, Order, Done, Indent);
      return;
    }
  }

  void emitStateMachine() {
    // A label nothing jumps to would trip -Wunused-label; emit labels only
    // for goto targets (the start state and interstate-edge destinations).
    std::set<int> Targeted;
    if (const sdfg::State *Start = G.getStartState())
      Targeted.insert(Start->getId());
    for (const auto &E : G.interstateEdges())
      Targeted.insert(E.Dst);
    for (const auto &S : G.states()) {
      // Brace the body: declarations between labels must not be jumped
      // over at function scope.
      if (Targeted.count(S->getId()))
        OS << "state_" << S->getId() << ": {\n";
      else
        OS << "  {\n";
      std::set<int> Done;
      for (Node *N : S->topologicalOrder())
        emitNode(*S, N, Done, 2);
      OS << "  }\n";
      // Transitions.
      bool First = true;
      for (const auto *E : G.outEdges(S.get())) {
        std::string Pad = "  ";
        if (E->Condition) {
          OS << "  " << (First ? "if" : "else if") << " ("
             << cExpr(E->Condition) << ") {\n";
          Pad = "    ";
        } else if (!First) {
          OS << "  else {\n";
          Pad = "    ";
        }
        for (const auto &[Name, V] : E->Assignments)
          OS << Pad << Name << " = " << cExpr(V) << ";\n";
        OS << Pad << "goto state_" << E->Dst << ";\n";
        if (E->Condition || !First)
          OS << "  }\n";
        First = false;
        if (!E->Condition)
          break; // Unconditional edge terminates the chain.
      }
      OS << "  goto sdfg_end;\n";
    }
    OS << "sdfg_end:;\n";
  }
};

} // namespace

dcir::codegen::CallSignature
dcir::codegen::callSignature(const SDFG &G) {
  CallSignature Sig;
  Sig.Args = G.args();
  // Symbols assigned on interstate edges are SDFG-internal locals; the
  // remainder are free parameters (sizes). std::set iteration keeps the
  // order sorted and deterministic.
  std::set<std::string> Assigned;
  for (const auto &E : G.interstateEdges())
    for (const auto &[Name, V] : E.Assignments)
      Assigned.insert(Name);
  for (const std::string &Sym : G.symbols())
    if (!Assigned.count(Sym))
      Sig.FreeSymbols.push_back(Sym);
  return Sig;
}

std::string dcir::codegen::mapScopeLabel(const sdfg::State &S,
                                         const sdfg::MapEntry &Entry) {
  std::string Label = "s" + std::to_string(S.getId()) + ":";
  for (size_t D = 0; D < Entry.Params.size(); ++D)
    Label += (D ? "," : "") + Entry.Params[D];
  return Label;
}

std::string dcir::codegen::abiSignature(const SDFG &G) {
  CallSignature Sig = callSignature(G);
  std::string S = G.getName() + "(";
  bool First = true;
  for (const std::string &Arg : Sig.Args) {
    if (!First)
      S += ",";
    S += Arg + ":" + dtypeName(G.desc(Arg).Ty);
    First = false;
  }
  S += "|";
  First = true;
  for (const std::string &Sym : Sig.FreeSymbols) {
    if (!First)
      S += ",";
    S += Sym;
    First = false;
  }
  S += ")";
  return S;
}

std::string dcir::codegen::emitCpp(const SDFG &G, DiagnosticEngine &Diags,
                                   const CodegenOptions &Opts,
                                   CodegenInfo *Info) {
  Emitter E(G, Diags, Opts, Info);
  return E.run();
}
