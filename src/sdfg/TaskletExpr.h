//===- TaskletExpr.h - the tasklet expression language -------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code carried by SDFG tasklets. DCIR-produced tasklets hold one small
/// expression per output connector (the paper's "raising MLIR tasklets to
/// Python tasklets", §5.2), which keeps them analyzable: passes can inspect
/// and split them. Tasklets marked *opaque* (produced by the DaCe-C-frontend
/// stand-in) carry the same representation but passes must treat them as
/// indivisible black boxes — exactly the limitation Fig. 7 of the paper
/// demonstrates on syrk.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SDFG_TASKLETEXPR_H
#define DCIR_SDFG_TASKLETEXPR_H

#include "symbolic/SymExpr.h"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace dcir {
namespace sdfg {

/// Element types of SDFG data.
enum class DType { I64, F32, F64 };

/// Size in bytes of one element.
inline size_t dtypeSize(DType T) { return T == DType::F32 ? 4 : 8; }
std::string dtypeName(DType T);

/// One node of a tasklet expression tree.
struct TExpr {
  enum class Kind { ConstI, ConstF, Input, Sym, Op } K = Kind::ConstI;
  std::int64_t I = 0;       // ConstI payload.
  double F = 0.0;           // ConstF payload.
  std::string Name;         // Input: connector name. Op: operator name.
  sym::SymExpr Sym;         // Sym payload (evaluated against symbols).
  DType Ty = DType::I64;    // Result type.
  std::vector<TExpr> Children;

  static TExpr constI(std::int64_t V);
  static TExpr constF(double V, DType Ty = DType::F64);
  static TExpr input(std::string Conn, DType Ty);
  /// A symbolic expression evaluated against the symbol environment (loop
  /// indices, sizes) at execution time.
  static TExpr symbolic(sym::SymExpr E);
  /// Operator names: add sub mul div rem and or xor shl shr min max neg
  /// lt le eq ne sqrt exp log pow fabs sin cos tanh sitofp fptosi extf
  /// truncf select (3 children) not.
  static TExpr op(std::string Op, std::vector<TExpr> Children, DType Ty);

  /// Inserts every referenced input connector into \p Out.
  void collectInputs(std::set<std::string> &Out) const;

  /// Renders as pythonic code ("_a + _b * 2"), as DaCe would show it.
  std::string str() const;

  /// Structural equality.
  bool equals(const TExpr &O) const;

  /// Returns a copy with input connectors renamed via \p From -> \p To.
  TExpr renameInput(const std::string &From, const std::string &To) const;
};

/// A runtime scalar used by the interpreter and WCR evaluation.
struct RtVal {
  DType Ty = DType::I64;
  std::int64_t I = 0;
  double F = 0.0;

  static RtVal makeI(std::int64_t V) { return {DType::I64, V, 0.0}; }
  static RtVal makeF(double V, DType Ty = DType::F64) { return {Ty, 0, V}; }
  double asF() const { return Ty == DType::I64 ? double(I) : F; }
  std::int64_t asI() const {
    return Ty == DType::I64 ? I : std::int64_t(F);
  }
  bool truthy() const { return Ty == DType::I64 ? I != 0 : F != 0.0; }
};

/// Applies a WCR combiner ("add", "mul", "min", "max") to (Old, New).
RtVal applyWcr(const std::string &Wcr, RtVal Old, RtVal New);

} // namespace sdfg
} // namespace dcir

#endif // DCIR_SDFG_TASKLETEXPR_H
