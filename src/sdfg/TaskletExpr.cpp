//===- TaskletExpr.cpp -----------------------------------------------------------===//

#include "sdfg/TaskletExpr.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace dcir;
using namespace dcir::sdfg;

std::string dcir::sdfg::dtypeName(DType T) {
  switch (T) {
  case DType::I64:
    return "i64";
  case DType::F32:
    return "f32";
  case DType::F64:
    return "f64";
  }
  return "?";
}

TExpr TExpr::constI(std::int64_t V) {
  TExpr E;
  E.K = Kind::ConstI;
  E.I = V;
  E.Ty = DType::I64;
  return E;
}

TExpr TExpr::constF(double V, DType Ty) {
  TExpr E;
  E.K = Kind::ConstF;
  E.F = V;
  E.Ty = Ty;
  return E;
}

TExpr TExpr::input(std::string Conn, DType Ty) {
  TExpr E;
  E.K = Kind::Input;
  E.Name = std::move(Conn);
  E.Ty = Ty;
  return E;
}

TExpr TExpr::symbolic(sym::SymExpr E) {
  TExpr Out;
  Out.K = Kind::Sym;
  Out.Sym = std::move(E);
  Out.Ty = DType::I64;
  return Out;
}

TExpr TExpr::op(std::string Op, std::vector<TExpr> Children, DType Ty) {
  TExpr E;
  E.K = Kind::Op;
  E.Name = std::move(Op);
  E.Children = std::move(Children);
  E.Ty = Ty;
  return E;
}

void TExpr::collectInputs(std::set<std::string> &Out) const {
  if (K == Kind::Input) {
    Out.insert(Name);
    return;
  }
  for (const TExpr &C : Children)
    C.collectInputs(Out);
}

std::string TExpr::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::ConstI:
    OS << I;
    break;
  case Kind::ConstF:
    OS << F;
    break;
  case Kind::Input:
    OS << Name;
    break;
  case Kind::Sym:
    OS << "sym(" << Sym.str() << ")";
    break;
  case Kind::Op: {
    static const char *Infix[][2] = {
        {"add", "+"}, {"sub", "-"}, {"mul", "*"}, {"div", "/"},
        {"rem", "%"}, {"lt", "<"},  {"le", "<="}, {"eq", "=="},
        {"ne", "!="}, {"and", "&"}, {"or", "|"},  {"xor", "^"},
        {"shl", "<<"}, {"shr", ">>"}};
    const char *Sym = nullptr;
    for (auto &Row : Infix)
      if (Name == Row[0])
        Sym = Row[1];
    if (Sym && Children.size() == 2) {
      OS << "(" << Children[0].str() << " " << Sym << " "
         << Children[1].str() << ")";
      break;
    }
    OS << Name << "(";
    for (size_t I2 = 0; I2 < Children.size(); ++I2) {
      if (I2 != 0)
        OS << ", ";
      OS << Children[I2].str();
    }
    OS << ")";
    break;
  }
  }
  return OS.str();
}

bool TExpr::equals(const TExpr &O) const {
  if (K != O.K || Ty != O.Ty)
    return false;
  switch (K) {
  case Kind::ConstI:
    return I == O.I;
  case Kind::ConstF:
    return F == O.F;
  case Kind::Input:
    return Name == O.Name;
  case Kind::Sym:
    return Sym.equals(O.Sym);
  case Kind::Op:
    break;
  }
  if (Name != O.Name || Children.size() != O.Children.size())
    return false;
  for (size_t I2 = 0; I2 < Children.size(); ++I2)
    if (!Children[I2].equals(O.Children[I2]))
      return false;
  return true;
}

TExpr TExpr::renameInput(const std::string &From, const std::string &To) const {
  TExpr Out = *this;
  if (K == Kind::Input) {
    if (Name == From)
      Out.Name = To;
    return Out;
  }
  for (TExpr &C : Out.Children)
    C = C.renameInput(From, To);
  return Out;
}

RtVal dcir::sdfg::applyWcr(const std::string &Wcr, RtVal Old, RtVal New) {
  assert(!Wcr.empty() && "applyWcr with empty combiner");
  bool FloatMode = Old.Ty != DType::I64 || New.Ty != DType::I64;
  if (Wcr == "add") {
    if (FloatMode)
      return RtVal::makeF(Old.asF() + New.asF(),
                          Old.Ty == DType::I64 ? New.Ty : Old.Ty);
    return RtVal::makeI(Old.I + New.I);
  }
  if (Wcr == "mul") {
    if (FloatMode)
      return RtVal::makeF(Old.asF() * New.asF(),
                          Old.Ty == DType::I64 ? New.Ty : Old.Ty);
    return RtVal::makeI(Old.I * New.I);
  }
  if (Wcr == "min") {
    if (FloatMode)
      return RtVal::makeF(std::min(Old.asF(), New.asF()),
                          Old.Ty == DType::I64 ? New.Ty : Old.Ty);
    return RtVal::makeI(std::min(Old.I, New.I));
  }
  if (Wcr == "max") {
    if (FloatMode)
      return RtVal::makeF(std::max(Old.asF(), New.asF()),
                          Old.Ty == DType::I64 ? New.Ty : Old.Ty);
    return RtVal::makeI(std::max(Old.I, New.I));
  }
  assert(false && "unknown WCR combiner");
  return New;
}
