//===- SDFG.h - Stateful Dataflow Multigraphs -----------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SDFG IR (Ben-Nun et al., SC'19), reimplemented in C++: a control-flow
/// state machine whose states are acyclic dataflow multigraphs. Data
/// containers and data movement (memlets with symbolic subsets) are separate
/// from computation (tasklets); interstate edges carry symbolic conditions
/// and assignments, enabling constant-time reasoning about data-dependent
/// control flow (paper §2.2).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SDFG_SDFG_H
#define DCIR_SDFG_SDFG_H

#include "sdfg/TaskletExpr.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "symbolic/SymRange.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dcir {
namespace sdfg {

//===----------------------------------------------------------------------===//
// Data descriptors
//===----------------------------------------------------------------------===//

/// Where a container's storage lives (paper §6.3: the memory pre-allocation
/// pass promotes heap arrays to stack/register storage).
enum class Storage { Heap, Stack, Register };

/// A named data container: array (symbolic shape), scalar, or stream.
struct DataDesc {
  enum class Kind { Array, Scalar, Stream };

  Kind K = Kind::Array;
  std::string Name;
  DType Ty = DType::F64;
  std::vector<sym::SymExpr> Shape; // Array only; scalars/streams are empty.
  /// Transient containers are managed (allocated/freed) by the SDFG itself;
  /// non-transients are the SDFG's inputs and outputs.
  bool Transient = true;
  Storage StorageKind = Storage::Heap;

  /// Total element count (1 for scalars).
  sym::SymExpr totalSize() const;
  size_t rank() const { return Shape.size(); }
};

//===----------------------------------------------------------------------===//
// Dataflow nodes
//===----------------------------------------------------------------------===//

enum class NodeKind { Access, Tasklet, MapEntry, MapExit };

class Node {
public:
  virtual ~Node() = default;
  NodeKind getKind() const { return K; }
  int getId() const { return Id; }

protected:
  Node(NodeKind K, int Id) : K(K), Id(Id) {}

private:
  friend class State;
  NodeKind K;
  int Id;
};

/// A point where a data container is read or written within a state.
class AccessNode : public Node {
public:
  AccessNode(int Id, std::string Data)
      : Node(NodeKind::Access, Id), Data(std::move(Data)) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Access;
  }
  const std::string &getData() const { return Data; }
  void setData(std::string D) { Data = std::move(D); }

private:
  std::string Data;
};

/// An encapsulated unit of computation. Each output connector carries one
/// expression over the input connectors. Opaque tasklets (from the DaCe C
/// frontend stand-in) must not be inspected by passes.
class Tasklet : public Node {
public:
  Tasklet(int Id, std::string Label)
      : Node(NodeKind::Tasklet, Id), Label(std::move(Label)) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::Tasklet;
  }

  std::string Label;
  std::vector<std::string> InConns;
  std::vector<std::string> OutConns;
  /// Output connector -> expression.
  std::map<std::string, TExpr> Code;
  /// Black-box flag: set by the direct C-to-SDFG frontend. Analyzable
  /// passes (LICM-like motion, splitting) must skip opaque tasklets.
  bool Opaque = false;

  bool hasInConn(const std::string &C) const;
  bool hasOutConn(const std::string &C) const;
};

/// Opens a parametric-parallel scope (paper Table 1, sdfg.map).
class MapEntry : public Node {
public:
  MapEntry(int Id, std::vector<std::string> Params,
           std::vector<sym::SymRange> Ranges)
      : Node(NodeKind::MapEntry, Id), Params(std::move(Params)),
        Ranges(std::move(Ranges)) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::MapEntry;
  }

  std::vector<std::string> Params;
  std::vector<sym::SymRange> Ranges;
  int ExitId = -1; // Paired MapExit.
  /// Transient scalars private to each iteration binding of this scope
  /// (scalar privatization: LICM-hoisted temporaries sunk back into the
  /// loop body). The interpreter rebinds them per iteration; the C++
  /// backend declares them inside the scope's loop nest, which makes them
  /// thread-private under a work-sharing pragma.
  std::vector<std::string> PrivateData;
  /// Converted without a disjointness proof (the speculate-maps pass).
  /// The backend must never emit a work-sharing pragma for a speculative
  /// scope unless a synthesized runtime guard selects the parallel
  /// version (CodegenOptions::SpeculativeMaps); ungarded speculative
  /// scopes are emitted serial — the original loop nest — regardless of
  /// any schedule override.
  bool Speculative = false;

  bool isPrivate(const std::string &Name) const {
    for (const std::string &P : PrivateData)
      if (P == Name)
        return true;
    return false;
  }
};

/// Closes a parametric-parallel scope.
class MapExit : public Node {
public:
  explicit MapExit(int Id) : Node(NodeKind::MapExit, Id) {}
  static bool classof(const Node *N) {
    return N->getKind() == NodeKind::MapExit;
  }
  int EntryId = -1;
};

//===----------------------------------------------------------------------===//
// Memlets and edges
//===----------------------------------------------------------------------===//

/// Explicit data movement: which subset of which container moves along an
/// edge, optionally combining via a write-conflict-resolution function.
struct Memlet {
  std::string Data;       // Empty: pure ordering dependency (no data).
  sym::SymSubset Subset;
  std::string Wcr;        // "", "add", "mul", "min", "max".

  bool isEmpty() const { return Data.empty(); }
  /// Number of elements moved.
  sym::SymExpr volume() const { return Subset.volume(); }
  std::string str() const;
};

/// A dataflow multigraph edge between node connectors.
struct DataflowEdge {
  int Src = -1;
  std::string SrcConn; // Empty for access nodes.
  int Dst = -1;
  std::string DstConn;
  Memlet M;
};

//===----------------------------------------------------------------------===//
// State
//===----------------------------------------------------------------------===//

/// An acyclic dataflow multigraph.
class State {
public:
  State(std::string Name, int Id) : Name(std::move(Name)), Id(Id) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  int getId() const { return Id; }

  AccessNode *addAccess(const std::string &Data);
  Tasklet *addTasklet(const std::string &Label);
  std::pair<MapEntry *, MapExit *>
  addMap(std::vector<std::string> Params, std::vector<sym::SymRange> Ranges);

  /// Adds an edge; connectors may be empty (access nodes, ordering edges).
  void connect(Node *Src, const std::string &SrcConn, Node *Dst,
               const std::string &DstConn, Memlet M);

  Node *getNode(int Id) const;
  const std::vector<std::unique_ptr<Node>> &nodes() const { return Nodes; }
  const std::vector<DataflowEdge> &edges() const { return Edges; }
  std::vector<DataflowEdge> &edges() { return Edges; }

  std::vector<const DataflowEdge *> inEdges(const Node *N) const;
  std::vector<const DataflowEdge *> outEdges(const Node *N) const;

  /// Removes a node and every incident edge.
  void eraseNode(Node *N);

  /// Kahn topological order; asserts on cycles (validate() reports them).
  std::vector<Node *> topologicalOrder() const;

  /// The interior of \p Entry's scope: nodes reachable from the entry
  /// without crossing the paired exit, excluding the entry and the exit
  /// themselves. The single scope-membership rule shared by the
  /// interpreter, the code generator, the optimizer, and the verifier.
  std::set<int> scopeNodes(const MapEntry &Entry) const;

  /// Copies every node and edge of \p Other into this state, returning the
  /// mapping from \p Other's node ids to the new nodes (state fusion).
  std::map<int, Node *> absorb(const State &Other);

  /// True when the dataflow graph contains no cycle.
  bool isAcyclic() const;

  /// Number of non-access nodes (quick "is there computation" test).
  size_t numComputeNodes() const;

  /// A deep copy preserving node ids exactly (unlike absorb, which
  /// renumbers); the backbone of SDFG::clone.
  std::unique_ptr<State> clone() const;

private:
  std::string Name;
  int Id;
  int NextNodeId = 0;
  std::vector<std::unique_ptr<Node>> Nodes;
  std::vector<DataflowEdge> Edges;
};

//===----------------------------------------------------------------------===//
// SDFG
//===----------------------------------------------------------------------===//

/// An interstate edge of the state machine.
struct InterstateEdge {
  int Src = -1;
  int Dst = -1;
  /// Null condition means "always taken". May reference symbols and (by
  /// name) integer scalar containers.
  sym::SymExpr Condition;
  std::vector<std::pair<std::string, sym::SymExpr>> Assignments;
};

/// The stateful dataflow multigraph.
class SDFG {
public:
  explicit SDFG(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  /// Renames the graph (and with it the generated entry point — shape
  /// specialization gives each variant a distinct native symbol).
  void setName(std::string N) { Name = std::move(N); }

  /// A deep copy of the whole graph: descriptors, symbols, states (node
  /// and state ids preserved exactly), interstate edges. The copy shares
  /// nothing with the original; specialization mutates clones, never the
  /// graph a Program is serving.
  std::unique_ptr<SDFG> clone() const;

  //===--------------------------------------------------------------------===
  // Containers and symbols
  //===--------------------------------------------------------------------===

  DataDesc &addArray(const std::string &Name, DType Ty,
                     std::vector<sym::SymExpr> Shape, bool Transient = true);
  DataDesc &addScalar(const std::string &Name, DType Ty,
                      bool Transient = true);
  DataDesc &addStream(const std::string &Name, DType Ty);
  bool hasData(const std::string &Name) const { return Descs.count(Name); }
  DataDesc &desc(const std::string &Name);
  const DataDesc &desc(const std::string &Name) const;
  void removeData(const std::string &Name) { Descs.erase(Name); }
  const std::map<std::string, DataDesc> &descs() const { return Descs; }
  std::map<std::string, DataDesc> &descs() { return Descs; }

  void addSymbol(const std::string &Name) { Symbols.insert(Name); }
  const std::set<std::string> &symbols() const { return Symbols; }
  std::set<std::string> &symbols() { return Symbols; }

  /// Ordered names of non-transient containers: the SDFG call signature.
  std::vector<std::string> &args() { return ArgNames; }
  const std::vector<std::string> &args() const { return ArgNames; }

  //===--------------------------------------------------------------------===
  // States and interstate edges
  //===--------------------------------------------------------------------===

  State *addState(const std::string &Name);
  State *getState(int Id) const;
  State *findState(const std::string &Name) const;
  const std::vector<std::unique_ptr<State>> &states() const { return States; }
  void eraseState(State *S);

  void addInterstateEdge(State *Src, State *Dst, InterstateEdge E);
  void addInterstateEdge(State *Src, State *Dst) {
    addInterstateEdge(Src, Dst, InterstateEdge());
  }
  std::vector<InterstateEdge> &interstateEdges() { return IEdges; }
  const std::vector<InterstateEdge> &interstateEdges() const {
    return IEdges;
  }
  std::vector<const InterstateEdge *> outEdges(const State *S) const;
  std::vector<const InterstateEdge *> inEdges(const State *S) const;

  void setStartState(State *S) { StartId = S->getId(); }
  State *getStartState() const { return getState(StartId); }

  //===--------------------------------------------------------------------===
  // Validation and debugging
  //===--------------------------------------------------------------------===

  /// Structural validation: dangling names, rank mismatches, cyclic states,
  /// symbolic out-of-bounds subsets where provable (paper §1: "bounds
  /// analysis"). Returns false and reports through \p Diags on failure.
  bool validate(DiagnosticEngine &Diags) const;

  /// Multi-line human-readable dump.
  std::string str() const;

  /// A fresh name with the given prefix, unique among containers/symbols.
  std::string freshName(const std::string &Prefix);

private:
  std::string Name;
  std::map<std::string, DataDesc> Descs;
  std::set<std::string> Symbols;
  std::vector<std::string> ArgNames;
  std::vector<std::unique_ptr<State>> States;
  std::vector<InterstateEdge> IEdges;
  int StartId = -1;
  int NextStateId = 0;
  unsigned NameCounter = 0;
};

} // namespace sdfg
} // namespace dcir

#endif // DCIR_SDFG_SDFG_H
