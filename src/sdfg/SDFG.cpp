//===- SDFG.cpp --------------------------------------------------------------------===//

#include "sdfg/SDFG.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace dcir;
using namespace dcir::sdfg;
using sym::SymExpr;

//===----------------------------------------------------------------------===//
// DataDesc
//===----------------------------------------------------------------------===//

SymExpr DataDesc::totalSize() const {
  SymExpr N = SymExpr::constant(1);
  for (const SymExpr &D : Shape)
    N = SymExpr::mul(N, D);
  return N;
}

//===----------------------------------------------------------------------===//
// Tasklet
//===----------------------------------------------------------------------===//

bool Tasklet::hasInConn(const std::string &C) const {
  return std::find(InConns.begin(), InConns.end(), C) != InConns.end();
}

bool Tasklet::hasOutConn(const std::string &C) const {
  return std::find(OutConns.begin(), OutConns.end(), C) != OutConns.end();
}

//===----------------------------------------------------------------------===//
// Memlet
//===----------------------------------------------------------------------===//

std::string Memlet::str() const {
  if (isEmpty())
    return "(empty)";
  std::ostringstream OS;
  OS << Data << Subset.str();
  if (!Wcr.empty())
    OS << " (wcr: " << Wcr << ")";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// State
//===----------------------------------------------------------------------===//

AccessNode *State::addAccess(const std::string &Data) {
  Nodes.push_back(std::make_unique<AccessNode>(NextNodeId++, Data));
  return cast<AccessNode>(Nodes.back().get());
}

Tasklet *State::addTasklet(const std::string &Label) {
  Nodes.push_back(std::make_unique<Tasklet>(NextNodeId++, Label));
  return cast<Tasklet>(Nodes.back().get());
}

std::pair<MapEntry *, MapExit *>
State::addMap(std::vector<std::string> Params,
              std::vector<sym::SymRange> Ranges) {
  Nodes.push_back(std::make_unique<MapEntry>(NextNodeId++, std::move(Params),
                                             std::move(Ranges)));
  auto *Entry = cast<MapEntry>(Nodes.back().get());
  Nodes.push_back(std::make_unique<MapExit>(NextNodeId++));
  auto *Exit = cast<MapExit>(Nodes.back().get());
  Entry->ExitId = Exit->getId();
  Exit->EntryId = Entry->getId();
  return {Entry, Exit};
}

void State::connect(Node *Src, const std::string &SrcConn, Node *Dst,
                    const std::string &DstConn, Memlet M) {
  assert(Src && Dst && "null node in connect");
  DataflowEdge E;
  E.Src = Src->getId();
  E.SrcConn = SrcConn;
  E.Dst = Dst->getId();
  E.DstConn = DstConn;
  E.M = std::move(M);
  Edges.push_back(std::move(E));
}

Node *State::getNode(int Id) const {
  for (const auto &N : Nodes)
    if (N->getId() == Id)
      return N.get();
  return nullptr;
}

std::vector<const DataflowEdge *> State::inEdges(const Node *N) const {
  std::vector<const DataflowEdge *> Out;
  for (const auto &E : Edges)
    if (E.Dst == N->getId())
      Out.push_back(&E);
  return Out;
}

std::vector<const DataflowEdge *> State::outEdges(const Node *N) const {
  std::vector<const DataflowEdge *> Out;
  for (const auto &E : Edges)
    if (E.Src == N->getId())
      Out.push_back(&E);
  return Out;
}

void State::eraseNode(Node *N) {
  int Id = N->getId();
  Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                             [&](const DataflowEdge &E) {
                               return E.Src == Id || E.Dst == Id;
                             }),
              Edges.end());
  Nodes.erase(std::remove_if(Nodes.begin(), Nodes.end(),
                             [&](const std::unique_ptr<Node> &P) {
                               return P.get() == N;
                             }),
              Nodes.end());
}

std::vector<Node *> State::topologicalOrder() const {
  std::map<int, int> InDegree;
  for (const auto &N : Nodes)
    InDegree[N->getId()] = 0;
  for (const auto &E : Edges)
    ++InDegree[E.Dst];
  std::vector<Node *> Ready, Order;
  for (const auto &N : Nodes)
    if (InDegree[N->getId()] == 0)
      Ready.push_back(N.get());
  // Stable: lower node ids first, for deterministic execution order.
  auto byId = [](Node *A, Node *B) { return A->getId() > B->getId(); };
  std::sort(Ready.begin(), Ready.end(), byId);
  while (!Ready.empty()) {
    Node *N = Ready.back();
    Ready.pop_back();
    Order.push_back(N);
    for (const auto &E : Edges) {
      if (E.Src != N->getId())
        continue;
      if (--InDegree[E.Dst] == 0) {
        Ready.push_back(getNode(E.Dst));
        std::sort(Ready.begin(), Ready.end(), byId);
      }
    }
  }
  assert(Order.size() == Nodes.size() && "cycle in state dataflow graph");
  return Order;
}

std::set<int> State::scopeNodes(const MapEntry &Entry) const {
  std::set<int> Scope;
  std::vector<int> Work = {Entry.getId()};
  while (!Work.empty()) {
    int Id = Work.back();
    Work.pop_back();
    for (const auto &E : Edges) {
      if (E.Src != Id || E.Dst == Entry.ExitId)
        continue;
      if (Scope.insert(E.Dst).second)
        Work.push_back(E.Dst);
    }
  }
  Scope.erase(Entry.getId());
  return Scope;
}

std::map<int, Node *> State::absorb(const State &Other) {
  std::map<int, Node *> Map;
  for (const auto &N : Other.nodes()) {
    if (const auto *A = dyn_cast<AccessNode>(N.get())) {
      Map[N->getId()] = addAccess(A->getData());
      continue;
    }
    if (const auto *T = dyn_cast<Tasklet>(N.get())) {
      Tasklet *NewT = addTasklet(T->Label);
      NewT->InConns = T->InConns;
      NewT->OutConns = T->OutConns;
      NewT->Code = T->Code;
      NewT->Opaque = T->Opaque;
      Map[N->getId()] = NewT;
      continue;
    }
    if (const auto *ME = dyn_cast<MapEntry>(N.get())) {
      // Entry/exit pairing restored after both exist.
      auto *NewE = new MapEntry(NextNodeId++, ME->Params, ME->Ranges);
      NewE->PrivateData = ME->PrivateData;
      NewE->Speculative = ME->Speculative;
      Nodes.push_back(std::unique_ptr<Node>(NewE));
      Map[N->getId()] = NewE;
      continue;
    }
    auto *NewX = new MapExit(NextNodeId++);
    Nodes.push_back(std::unique_ptr<Node>(NewX));
    Map[N->getId()] = NewX;
  }
  // Restore map pairings.
  for (const auto &N : Other.nodes()) {
    if (const auto *ME = dyn_cast<MapEntry>(N.get())) {
      auto *NewE = cast<MapEntry>(Map[N->getId()]);
      NewE->ExitId = Map[ME->ExitId]->getId();
      cast<MapExit>(Map[ME->ExitId])->EntryId = NewE->getId();
    }
  }
  for (const DataflowEdge &E : Other.edges()) {
    DataflowEdge NewE = E;
    NewE.Src = Map[E.Src]->getId();
    NewE.Dst = Map[E.Dst]->getId();
    Edges.push_back(std::move(NewE));
  }
  return Map;
}

bool State::isAcyclic() const {
  std::map<int, int> InDegree;
  for (const auto &N : Nodes)
    InDegree[N->getId()] = 0;
  for (const auto &E : Edges)
    ++InDegree[E.Dst];
  std::vector<int> Ready;
  for (const auto &[Id, Deg] : InDegree)
    if (Deg == 0)
      Ready.push_back(Id);
  size_t Visited = 0;
  while (!Ready.empty()) {
    int Id = Ready.back();
    Ready.pop_back();
    ++Visited;
    for (const auto &E : Edges)
      if (E.Src == Id && --InDegree[E.Dst] == 0)
        Ready.push_back(E.Dst);
  }
  return Visited == Nodes.size();
}

size_t State::numComputeNodes() const {
  size_t N = 0;
  for (const auto &Node : Nodes)
    if (!isa<AccessNode>(Node.get()))
      ++N;
  return N;
}

std::unique_ptr<State> State::clone() const {
  auto Out = std::make_unique<State>(Name, Id);
  Out->NextNodeId = NextNodeId;
  for (const auto &N : Nodes) {
    if (const auto *A = dyn_cast<AccessNode>(N.get())) {
      Out->Nodes.push_back(
          std::make_unique<AccessNode>(A->getId(), A->getData()));
      continue;
    }
    if (const auto *T = dyn_cast<Tasklet>(N.get())) {
      auto NewT = std::make_unique<Tasklet>(T->getId(), T->Label);
      NewT->InConns = T->InConns;
      NewT->OutConns = T->OutConns;
      NewT->Code = T->Code;
      NewT->Opaque = T->Opaque;
      Out->Nodes.push_back(std::move(NewT));
      continue;
    }
    if (const auto *ME = dyn_cast<MapEntry>(N.get())) {
      auto NewE =
          std::make_unique<MapEntry>(ME->getId(), ME->Params, ME->Ranges);
      NewE->ExitId = ME->ExitId;
      NewE->PrivateData = ME->PrivateData;
      NewE->Speculative = ME->Speculative;
      Out->Nodes.push_back(std::move(NewE));
      continue;
    }
    const auto *MX = cast<MapExit>(N.get());
    auto NewX = std::make_unique<MapExit>(MX->getId());
    NewX->EntryId = MX->EntryId;
    Out->Nodes.push_back(std::move(NewX));
  }
  Out->Edges = Edges; // Edges are value types keyed by (preserved) ids.
  return Out;
}

//===----------------------------------------------------------------------===//
// SDFG
//===----------------------------------------------------------------------===//

DataDesc &SDFG::addArray(const std::string &Name, DType Ty,
                         std::vector<SymExpr> Shape, bool Transient) {
  assert(!Descs.count(Name) && "duplicate data descriptor");
  DataDesc D;
  D.K = DataDesc::Kind::Array;
  D.Name = Name;
  D.Ty = Ty;
  D.Shape = std::move(Shape);
  D.Transient = Transient;
  auto &Ref = Descs[Name] = std::move(D);
  if (!Transient)
    ArgNames.push_back(Name);
  return Ref;
}

DataDesc &SDFG::addScalar(const std::string &Name, DType Ty, bool Transient) {
  assert(!Descs.count(Name) && "duplicate data descriptor");
  DataDesc D;
  D.K = DataDesc::Kind::Scalar;
  D.Name = Name;
  D.Ty = Ty;
  D.Transient = Transient;
  D.StorageKind = Storage::Register;
  auto &Ref = Descs[Name] = std::move(D);
  if (!Transient)
    ArgNames.push_back(Name);
  return Ref;
}

DataDesc &SDFG::addStream(const std::string &Name, DType Ty) {
  assert(!Descs.count(Name) && "duplicate data descriptor");
  DataDesc D;
  D.K = DataDesc::Kind::Stream;
  D.Name = Name;
  D.Ty = Ty;
  return Descs[Name] = std::move(D);
}

DataDesc &SDFG::desc(const std::string &Name) {
  auto It = Descs.find(Name);
  assert(It != Descs.end() && "unknown data descriptor");
  return It->second;
}

const DataDesc &SDFG::desc(const std::string &Name) const {
  auto It = Descs.find(Name);
  assert(It != Descs.end() && "unknown data descriptor");
  return It->second;
}

std::unique_ptr<SDFG> SDFG::clone() const {
  auto Out = std::make_unique<SDFG>(Name);
  Out->Descs = Descs;
  Out->Symbols = Symbols;
  Out->ArgNames = ArgNames;
  for (const auto &S : States)
    Out->States.push_back(S->clone());
  Out->IEdges = IEdges;
  Out->StartId = StartId;
  Out->NextStateId = NextStateId;
  Out->NameCounter = NameCounter;
  return Out;
}

State *SDFG::addState(const std::string &Name) {
  States.push_back(std::make_unique<State>(Name, NextStateId++));
  if (StartId < 0)
    StartId = States.back()->getId();
  return States.back().get();
}

State *SDFG::getState(int Id) const {
  for (const auto &S : States)
    if (S->getId() == Id)
      return S.get();
  return nullptr;
}

State *SDFG::findState(const std::string &Name) const {
  for (const auto &S : States)
    if (S->getName() == Name)
      return S.get();
  return nullptr;
}

void SDFG::eraseState(State *S) {
  int Id = S->getId();
  IEdges.erase(std::remove_if(IEdges.begin(), IEdges.end(),
                              [&](const InterstateEdge &E) {
                                return E.Src == Id || E.Dst == Id;
                              }),
               IEdges.end());
  States.erase(std::remove_if(States.begin(), States.end(),
                              [&](const std::unique_ptr<State> &P) {
                                return P.get() == S;
                              }),
               States.end());
}

void SDFG::addInterstateEdge(State *Src, State *Dst, InterstateEdge E) {
  E.Src = Src->getId();
  E.Dst = Dst->getId();
  IEdges.push_back(std::move(E));
}

std::vector<const InterstateEdge *> SDFG::outEdges(const State *S) const {
  std::vector<const InterstateEdge *> Out;
  for (const auto &E : IEdges)
    if (E.Src == S->getId())
      Out.push_back(&E);
  return Out;
}

std::vector<const InterstateEdge *> SDFG::inEdges(const State *S) const {
  std::vector<const InterstateEdge *> Out;
  for (const auto &E : IEdges)
    if (E.Dst == S->getId())
      Out.push_back(&E);
  return Out;
}

std::string SDFG::freshName(const std::string &Prefix) {
  while (true) {
    std::string Candidate = Prefix + "_" + std::to_string(NameCounter++);
    if (!Descs.count(Candidate) && !Symbols.count(Candidate))
      return Candidate;
  }
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

bool SDFG::validate(DiagnosticEngine &Diags) const {
  unsigned Before = Diags.errorCount();
  if (!getStartState() && !States.empty())
    Diags.error("SDFG '" + Name + "' has no start state");
  for (const auto &E : IEdges) {
    if (!getState(E.Src) || !getState(E.Dst))
      Diags.error("interstate edge references a missing state");
  }
  // Access-site index for the map-private scope check, built once (the
  // check runs after every pass under verify-each; rescanning the whole
  // graph per private scalar would be quadratic).
  bool AnyPrivate = false;
  for (const auto &S : States)
    for (const auto &N : S->nodes())
      if (const auto *ME = dyn_cast<MapEntry>(N.get()))
        if (!ME->PrivateData.empty())
          AnyPrivate = true;
  std::map<std::string, std::vector<std::pair<const State *, int>>>
      AccessSites;
  if (AnyPrivate)
    for (const auto &S : States)
      for (const auto &N : S->nodes())
        if (const auto *A = dyn_cast<AccessNode>(N.get()))
          AccessSites[A->getData()].push_back({S.get(), A->getId()});
  for (const auto &S : States) {
    if (!S->isAcyclic()) {
      Diags.error("state '" + S->getName() + "' has a dataflow cycle");
      continue;
    }
    for (const auto &N : S->nodes()) {
      if (const auto *A = dyn_cast<AccessNode>(N.get())) {
        if (!Descs.count(A->getData()))
          Diags.error("state '" + S->getName() +
                      "': access node references unknown container '" +
                      A->getData() + "'");
      }
      if (const auto *ME = dyn_cast<MapEntry>(N.get())) {
        if (ME->PrivateData.empty())
          continue;
        // A private scalar's accesses must stay within the scope — the
        // backend only declares the scalar inside this scope's loop nest.
        std::set<int> Scope = S->scopeNodes(*ME);
        for (const std::string &P : ME->PrivateData) {
          auto It = Descs.find(P);
          if (It == Descs.end()) {
            Diags.error("state '" + S->getName() +
                        "': map privatizes unknown container '" + P + "'");
            continue;
          }
          if (It->second.K != DataDesc::Kind::Scalar ||
              !It->second.Transient) {
            Diags.error("state '" + S->getName() + "': map-private '" + P +
                        "' must be a transient scalar");
            continue;
          }
          auto Sites = AccessSites.find(P);
          if (Sites == AccessSites.end())
            continue;
          for (const auto &[S2, NodeId] : Sites->second)
            if (S2 != S.get() || !Scope.count(NodeId))
              Diags.error("state '" + S2->getName() + "': map-private '" +
                          P + "' is accessed outside its scope");
        }
      }
      if (const auto *T = dyn_cast<Tasklet>(N.get())) {
        for (const auto &[OutConn, Expr] : T->Code) {
          if (!T->hasOutConn(OutConn))
            Diags.error("tasklet '" + T->Label +
                        "' assigns to unknown connector '" + OutConn + "'");
          std::set<std::string> Ins;
          Expr.collectInputs(Ins);
          for (const std::string &In : Ins)
            if (!T->hasInConn(In))
              Diags.error("tasklet '" + T->Label +
                          "' reads unknown connector '" + In + "'");
        }
      }
    }
    for (const auto &E : S->edges()) {
      if (!S->getNode(E.Src) || !S->getNode(E.Dst)) {
        Diags.error("state '" + S->getName() +
                    "': edge references missing node");
        continue;
      }
      if (E.M.isEmpty())
        continue;
      auto DescIt = Descs.find(E.M.Data);
      if (DescIt == Descs.end()) {
        Diags.error("state '" + S->getName() + "': memlet references "
                    "unknown container '" + E.M.Data + "'");
        continue;
      }
      const DataDesc &D = DescIt->second;
      if ((D.K == DataDesc::Kind::Array && E.M.Subset.rank() != D.rank()) ||
          E.M.Subset.rank() > D.rank()) {
        // Excess dimensions linearize into memory the container does not
        // own, for every kind — scalars (rank 0) included. Name the
        // access-node endpoint: that is the node a user must fix.
        std::string At;
        for (int Id : {E.Src, E.Dst})
          if (const auto *A = dyn_cast<AccessNode>(S->getNode(Id)))
            if (A->getData() == E.M.Data)
              At = " at access node " + std::to_string(Id) + " ('" +
                   A->getData() + "')";
        Diags.error("state '" + S->getName() + "': memlet " + E.M.str() +
                    " rank " + std::to_string(E.M.Subset.rank()) +
                    " mismatches container rank " + std::to_string(D.rank()) +
                    At);
        continue;
      }
      // Symbolic bounds check where provable (paper §1: bounds analysis).
      for (size_t Dim = 0; Dim < E.M.Subset.rank() && Dim < D.Shape.size();
           ++Dim) {
        SymExpr End = E.M.Subset.dim(Dim).End;
        auto Proof = SymExpr::le(End, D.Shape[Dim]).tryProve();
        if (Proof && !*Proof)
          Diags.error("state '" + S->getName() + "': memlet " + E.M.str() +
                      " provably exceeds container bound " +
                      D.Shape[Dim].str() + " in dimension " +
                      std::to_string(Dim));
      }
    }
  }
  return Diags.errorCount() == Before;
}

//===----------------------------------------------------------------------===//
// Dump
//===----------------------------------------------------------------------===//

std::string SDFG::str() const {
  std::ostringstream OS;
  OS << "sdfg " << Name << " {\n";
  for (const std::string &Sym : Symbols)
    OS << "  symbol " << Sym << "\n";
  for (const auto &[DName, D] : Descs) {
    OS << "  " << (D.K == DataDesc::Kind::Array
                       ? "array"
                       : (D.K == DataDesc::Kind::Scalar ? "scalar"
                                                        : "stream"))
       << " " << DName << " : " << dtypeName(D.Ty);
    if (D.K == DataDesc::Kind::Array) {
      OS << " [";
      for (size_t I = 0; I < D.Shape.size(); ++I) {
        if (I != 0)
          OS << ", ";
        OS << D.Shape[I].str();
      }
      OS << "]";
    }
    if (D.Transient)
      OS << " transient";
    switch (D.StorageKind) {
    case Storage::Heap:
      break;
    case Storage::Stack:
      OS << " stack";
      break;
    case Storage::Register:
      OS << " register";
      break;
    }
    OS << "\n";
  }
  for (const auto &S : States) {
    OS << "  state " << S->getName() << " (#" << S->getId() << ")"
       << (S.get() == getStartState() ? " [start]" : "") << " {\n";
    for (const auto &N : S->nodes()) {
      OS << "    ";
      if (const auto *A = dyn_cast<AccessNode>(N.get()))
        OS << "n" << A->getId() << ": access " << A->getData();
      else if (const auto *T = dyn_cast<Tasklet>(N.get())) {
        OS << "n" << T->getId() << ": tasklet " << T->Label;
        if (T->Opaque)
          OS << " (opaque)";
        for (const auto &[Out, Expr] : T->Code)
          OS << " | " << Out << " = " << Expr.str();
      } else if (const auto *ME = dyn_cast<MapEntry>(N.get())) {
        OS << "n" << ME->getId() << ": map [";
        for (size_t I = 0; I < ME->Params.size(); ++I) {
          if (I != 0)
            OS << ", ";
          OS << ME->Params[I] << "=" << ME->Ranges[I].str();
        }
        OS << "]";
        for (size_t I = 0; I < ME->PrivateData.size(); ++I)
          OS << (I == 0 ? " private(" : ", ") << ME->PrivateData[I];
        if (!ME->PrivateData.empty())
          OS << ")";
        if (ME->Speculative)
          OS << " speculative";
      } else {
        OS << "n" << N->getId() << ": map exit";
      }
      OS << "\n";
    }
    for (const auto &E : S->edges()) {
      OS << "    n" << E.Src;
      if (!E.SrcConn.empty())
        OS << ":" << E.SrcConn;
      OS << " -> n" << E.Dst;
      if (!E.DstConn.empty())
        OS << ":" << E.DstConn;
      OS << " [" << E.M.str() << "]\n";
    }
    OS << "  }\n";
  }
  for (const auto &E : IEdges) {
    OS << "  " << getState(E.Src)->getName() << " -> "
       << getState(E.Dst)->getName();
    if (E.Condition)
      OS << " if (" << E.Condition.str() << ")";
    for (const auto &[K, V] : E.Assignments)
      OS << " {" << K << " = " << V.str() << "}";
    OS << "\n";
  }
  OS << "}\n";
  return OS.str();
}
