//===- SDFGInterp.cpp --------------------------------------------------------------===//

#include "interp/SDFGInterp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace dcir;
using namespace dcir::interp;
using namespace dcir::sdfg;
using sym::SymExpr;

//===----------------------------------------------------------------------===//
// Tasklet expression evaluation
//===----------------------------------------------------------------------===//

RtVal dcir::interp::evalTExpr(
    const TExpr &E, const std::function<RtVal(const std::string &)> &Input,
    const std::function<std::int64_t(const sym::SymExpr &)> &SymResolver,
    MathMode Mode) {
  switch (E.K) {
  case TExpr::Kind::ConstI:
    return RtVal::makeI(E.I);
  case TExpr::Kind::ConstF:
    return RtVal::makeF(E.F, E.Ty);
  case TExpr::Kind::Input:
    return Input(E.Name);
  case TExpr::Kind::Sym:
    return RtVal::makeI(SymResolver(E.Sym));
  case TExpr::Kind::Op:
    break;
  }
  auto child = [&](size_t I) {
    return evalTExpr(E.Children[I], Input, SymResolver, Mode);
  };
  const std::string &Op = E.Name;
  bool FloatRes = E.Ty != DType::I64;

  if (Op == "add")
    return FloatRes ? RtVal::makeF(child(0).asF() + child(1).asF(), E.Ty)
                    : RtVal::makeI(child(0).asI() + child(1).asI());
  if (Op == "sub")
    return FloatRes ? RtVal::makeF(child(0).asF() - child(1).asF(), E.Ty)
                    : RtVal::makeI(child(0).asI() - child(1).asI());
  if (Op == "mul")
    return FloatRes ? RtVal::makeF(child(0).asF() * child(1).asF(), E.Ty)
                    : RtVal::makeI(child(0).asI() * child(1).asI());
  if (Op == "div") {
    if (FloatRes)
      return RtVal::makeF(child(0).asF() / child(1).asF(), E.Ty);
    std::int64_t D = child(1).asI();
    return RtVal::makeI(D == 0 ? 0 : child(0).asI() / D);
  }
  if (Op == "rem") {
    std::int64_t D = child(1).asI();
    return RtVal::makeI(D == 0 ? 0 : child(0).asI() % D);
  }
  if (Op == "neg")
    return FloatRes ? RtVal::makeF(-child(0).asF(), E.Ty)
                    : RtVal::makeI(-child(0).asI());
  if (Op == "min")
    return FloatRes
               ? RtVal::makeF(std::min(child(0).asF(), child(1).asF()), E.Ty)
               : RtVal::makeI(std::min(child(0).asI(), child(1).asI()));
  if (Op == "max")
    return FloatRes
               ? RtVal::makeF(std::max(child(0).asF(), child(1).asF()), E.Ty)
               : RtVal::makeI(std::max(child(0).asI(), child(1).asI()));
  if (Op == "and")
    return RtVal::makeI(child(0).asI() & child(1).asI());
  if (Op == "or")
    return RtVal::makeI(child(0).asI() | child(1).asI());
  if (Op == "xor")
    return RtVal::makeI(child(0).asI() ^ child(1).asI());
  if (Op == "shl")
    return RtVal::makeI(child(0).asI() << child(1).asI());
  if (Op == "shr")
    return RtVal::makeI(child(0).asI() >> child(1).asI());
  if (Op == "not")
    return RtVal::makeI(child(0).truthy() ? 0 : 1);

  // Comparisons: float comparison when either child is floating.
  if (Op == "lt" || Op == "le" || Op == "eq" || Op == "ne" || Op == "gt" ||
      Op == "ge") {
    RtVal A = child(0), B = child(1);
    bool Fp = A.Ty != DType::I64 || B.Ty != DType::I64;
    bool R;
    if (Fp) {
      double X = A.asF(), Y = B.asF();
      R = Op == "lt"   ? X < Y
          : Op == "le" ? X <= Y
          : Op == "eq" ? X == Y
          : Op == "ne" ? X != Y
          : Op == "gt" ? X > Y
                       : X >= Y;
    } else {
      std::int64_t X = A.asI(), Y = B.asI();
      R = Op == "lt"   ? X < Y
          : Op == "le" ? X <= Y
          : Op == "eq" ? X == Y
          : Op == "ne" ? X != Y
          : Op == "gt" ? X > Y
                       : X >= Y;
    }
    return RtVal::makeI(R ? 1 : 0);
  }
  if (Op == "select")
    return child(0).truthy() ? child(1) : child(2);

  // Casts.
  if (Op == "sitofp")
    return RtVal::makeF(static_cast<double>(child(0).asI()), E.Ty);
  if (Op == "fptosi")
    return RtVal::makeI(static_cast<std::int64_t>(child(0).asF()));
  if (Op == "extf")
    return RtVal::makeF(child(0).asF(), DType::F64);
  if (Op == "truncf")
    return RtVal::makeF(
        static_cast<double>(static_cast<float>(child(0).asF())), DType::F32);

  // Math calls.
  bool Vec = Mode == MathMode::Vectorized;
  if (Op == "sqrt")
    return RtVal::makeF(std::sqrt(child(0).asF()), E.Ty);
  if (Op == "exp")
    return RtVal::makeF(Vec ? fastExp(child(0).asF())
                            : std::exp(child(0).asF()),
                        E.Ty);
  if (Op == "log")
    return RtVal::makeF(Vec ? fastLog(child(0).asF())
                            : std::log(child(0).asF()),
                        E.Ty);
  if (Op == "pow")
    return RtVal::makeF(std::pow(child(0).asF(), child(1).asF()), E.Ty);
  if (Op == "fabs")
    return RtVal::makeF(std::fabs(child(0).asF()), E.Ty);
  if (Op == "sin")
    return RtVal::makeF(std::sin(child(0).asF()), E.Ty);
  if (Op == "cos")
    return RtVal::makeF(std::cos(child(0).asF()), E.Ty);
  if (Op == "tanh")
    return RtVal::makeF(std::tanh(child(0).asF()), E.Ty);

  assert(false && "unknown tasklet operator");
  return RtVal::makeI(0);
}

//===----------------------------------------------------------------------===//
// SDFGInterpreter
//===----------------------------------------------------------------------===//

BufferPtr SDFGInterpreter::buffer(const std::string &Name) {
  auto It = Buffers.find(Name);
  if (It != Buffers.end())
    return It->second;
  // Lazily allocate a transient container.
  const DataDesc &D = G.desc(Name);
  assert(D.Transient && "non-transient container was not bound");
  std::vector<std::int64_t> Shape;
  for (const SymExpr &S : D.Shape)
    Shape.push_back(evalSym(S, SymEnv));
  BufferPtr B = Buffer::create(D.Ty, Shape);
  switch (D.StorageKind) {
  case Storage::Heap:
    ++Stats.HeapAllocs;
    break;
  case Storage::Stack:
    ++Stats.StackAllocs;
    break;
  case Storage::Register:
    ++Stats.RegisterAllocs;
    break;
  }
  Stats.BytesAllocated += B->numElements() * dtypeSize(B->Ty);
  Buffers[Name] = B;
  return B;
}

RtVal SDFGInterpreter::readScalar(const std::string &Name) {
  BufferPtr B = buffer(Name);
  return B->read(0);
}

std::int64_t
SDFGInterpreter::evalSym(const SymExpr &E,
                         const std::map<std::string, std::int64_t> &Env) {
  auto Direct = E.evaluate(Env);
  if (Direct)
    return *Direct;
  // Fall back: resolve missing symbols from integer scalar containers
  // (DaCe's interstate edges may reference scalar data).
  std::set<std::string> Free;
  E.collectSymbols(Free);
  std::map<std::string, std::int64_t> Extended = Env;
  for (const std::string &Name : Free) {
    if (Extended.count(Name))
      continue;
    if (G.hasData(Name) && G.desc(Name).K == DataDesc::Kind::Scalar) {
      Extended[Name] = readScalar(Name).asI();
      continue;
    }
    std::fprintf(stderr, "fatal: unresolved symbol '%s' in '%s'\n",
                 Name.c_str(), E.str().c_str());
    std::abort();
  }
  auto V = E.evaluate(Extended);
  if (!V) {
    std::fprintf(stderr, "fatal: expression '%s' did not evaluate\n",
                 E.str().c_str());
    std::abort();
  }
  return *V;
}

std::vector<std::int64_t>
SDFGInterpreter::evalIndices(const sym::SymSubset &Subset,
                             const std::map<std::string, std::int64_t> &Env) {
  std::vector<std::int64_t> Idx;
  Idx.reserve(Subset.rank());
  for (size_t D = 0; D < Subset.rank(); ++D)
    Idx.push_back(evalSym(Subset.dim(D).Begin, Env));
  return Idx;
}

const std::vector<const InterstateEdge *> &
SDFGInterpreter::interstateOut(const State *S) {
  if (!IsOutBuilt) {
    for (const auto &E : G.interstateEdges())
      IsOutCache[E.Src].push_back(&E);
    IsOutBuilt = true;
  }
  return IsOutCache[S->getId()];
}

void SDFGInterpreter::run() {
  if (G.states().empty())
    return;
  const State *Current = G.getStartState();
  [[maybe_unused]] std::uint64_t Guard = 0;
  while (Current) {
    ++Guard;
    assert(Guard < (1ull << 40) && "state machine iteration bound");
    executeState(*Current);
    // Take the first out edge whose condition holds.
    const State *Next = nullptr;
    for (const InterstateEdge *E : interstateOut(Current)) {
      bool Taken = true;
      if (E->Condition)
        Taken = evalSym(E->Condition, SymEnv) != 0;
      if (!Taken)
        continue;
      // Assignments apply sequentially in list order (scalar-to-symbol
      // promotion prepends assignments that later entries on the same edge
      // consume).
      for (const auto &[Name, Expr] : E->Assignments)
        SymEnv[Name] = evalSym(Expr, SymEnv);
      Next = G.getState(E->Dst);
      ++Stats.StateTransitions;
      break;
    }
    Current = Next;
  }
}

const SDFGInterpreter::StateCache &
SDFGInterpreter::cacheFor(const State &S) {
  auto It = Caches.find(&S);
  if (It != Caches.end())
    return It->second;
  StateCache C;
  C.Order = S.topologicalOrder();
  for (const auto &E : S.edges()) {
    C.Out[E.Src].push_back(&E);
    C.In[E.Dst].push_back(&E);
  }
  return Caches.emplace(&S, std::move(C)).first->second;
}

void SDFGInterpreter::executeState(const State &S) {
  const StateCache &C = cacheFor(S);
  ValueCache Values;
  executeNodes(S, C.Order, SymEnv, Values);
}

void SDFGInterpreter::executeNodes(const State &S,
                                   const std::vector<Node *> &Order,
                                   std::map<std::string, std::int64_t> &Env,
                                   ValueCache &Values) {
  std::set<int> Consumed; // Nodes already run inside a map scope.
  for (Node *N : Order) {
    if (Consumed.count(N->getId()))
      continue;
    if (const auto *T = dyn_cast<Tasklet>(N)) {
      executeTasklet(S, T, Env, Values);
      continue;
    }
    if (const auto *A = dyn_cast<AccessNode>(N)) {
      // Access-to-access edges are copies.
      auto OutIt = cacheFor(S).Out.find(A->getId());
      if (OutIt != cacheFor(S).Out.end())
        for (const DataflowEdge *E : OutIt->second)
          if (isa<AccessNode>(S.getNode(E->Dst)) && !E->M.isEmpty())
            executeCopy(S, *E, Env);
      continue;
    }
    if (const auto *ME = dyn_cast<MapEntry>(N)) {
      executeMap(S, ME, Env, Consumed);
      continue;
    }
    // MapExit handled by its entry.
  }
}

static std::uint64_t countTExprOps(const TExpr &E) {
  std::uint64_t N = E.K == TExpr::Kind::Op ? 1 : 0;
  for (const TExpr &C : E.Children)
    N += countTExprOps(C);
  return N;
}

void SDFGInterpreter::executeTasklet(
    const State &S, const Tasklet *T,
    std::map<std::string, std::int64_t> &Env, ValueCache &Values) {
  ++Stats.TaskletsExecuted;
  {
    auto It = TaskletOpCount.find(T);
    if (It == TaskletOpCount.end()) {
      std::uint64_t N = 0;
      for (const auto &[Conn, Code] : T->Code)
        N += countTExprOps(Code);
      It = TaskletOpCount.emplace(T, N).first;
    }
    Stats.OpsExecuted += It->second;
  }
  const StateCache &C = cacheFor(S);
  // Gather inputs.
  std::map<std::string, RtVal> Inputs;
  static const std::vector<const DataflowEdge *> None;
  auto InIt = C.In.find(T->getId());
  for (const DataflowEdge *E : InIt == C.In.end() ? None : InIt->second) {
    if (E->M.isEmpty()) {
      if (!E->SrcConn.empty() && !E->DstConn.empty()) {
        // Direct value edge from another tasklet.
        auto It = Values.find({E->Src, E->SrcConn});
        assert(It != Values.end() && "value edge source not yet executed");
        Inputs[E->DstConn] = It->second;
      }
      continue;
    }
    BufferPtr B = buffer(E->M.Data);
    std::vector<std::int64_t> Idx = evalIndices(E->M.Subset, Env);
    Inputs[E->DstConn] = B->readAt(Idx);
    ++Stats.Loads;
    Stats.BytesMoved += dtypeSize(B->Ty);
  }
  auto Input = [&](const std::string &Conn) -> RtVal {
    auto It = Inputs.find(Conn);
    assert(It != Inputs.end() && "tasklet read an unconnected input");
    return It->second;
  };
  // Evaluate each output and write through the out edges.
  auto SymResolver = [&](const sym::SymExpr &E2) {
    return evalSym(E2, Env);
  };
  std::map<std::string, RtVal> Outputs;
  for (const auto &[Conn, Expr] : T->Code) {
    Outputs[Conn] = evalTExpr(Expr, Input, SymResolver, Mode);
    Values[{T->getId(), Conn}] = Outputs[Conn];
  }
  auto OutIt = C.Out.find(T->getId());
  for (const DataflowEdge *E : OutIt == C.Out.end() ? None : OutIt->second) {
    if (E->M.isEmpty())
      continue;
    auto It = Outputs.find(E->SrcConn);
    assert(It != Outputs.end() && "unconnected tasklet output");
    BufferPtr B = buffer(E->M.Data);
    std::vector<std::int64_t> Idx = evalIndices(E->M.Subset, Env);
    RtVal V = It->second;
    if (!E->M.Wcr.empty())
      V = applyWcr(E->M.Wcr, B->readAt(Idx), V);
    B->writeAt(Idx, V);
    ++Stats.Stores;
    Stats.BytesMoved += dtypeSize(B->Ty);
  }
}

void SDFGInterpreter::executeCopy(const State &S, const DataflowEdge &E,
                                  std::map<std::string, std::int64_t> &Env) {
  // The memlet names the source container and the copied subset; data lands
  // at the same indices of the destination access node's container.
  const auto *DstNode = cast<AccessNode>(S.getNode(E.Dst));
  BufferPtr Src = buffer(E.M.Data);
  BufferPtr Dst = buffer(DstNode->getData());
  // Iterate the (rectangular) subset.
  size_t Rank = E.M.Subset.rank();
  std::vector<std::int64_t> Begin(Rank), End(Rank), Step(Rank);
  for (size_t D = 0; D < Rank; ++D) {
    const sym::SymRange &R = E.M.Subset.dim(D);
    Begin[D] = evalSym(R.Begin, Env);
    End[D] = evalSym(R.End, Env);
    Step[D] = R.Step ? evalSym(R.Step, Env) : 1;
    assert(Step[D] > 0 && "copy subset requires positive steps");
  }
  std::vector<std::int64_t> Idx = Begin;
  std::uint64_t Elems = 0;
  while (true) {
    bool InRange = true;
    for (size_t D = 0; D < Rank; ++D)
      if (Idx[D] >= End[D])
        InRange = false;
    if (Rank == 0) {
      Dst->write(0, Src->read(0));
      ++Elems;
      break;
    }
    if (InRange) {
      RtVal V = Src->readAt(Idx);
      if (!E.M.Wcr.empty())
        V = applyWcr(E.M.Wcr, Dst->readAt(Idx), V);
      Dst->writeAt(Idx, V);
      ++Elems;
    }
    // Advance odometer.
    size_t D = Rank;
    while (D > 0) {
      --D;
      Idx[D] += Step[D];
      if (Idx[D] < End[D])
        break;
      if (D == 0)
        goto done;
      Idx[D] = Begin[D];
    }
    if (Rank == 0)
      break;
  }
done:
  Stats.Loads += Elems;
  Stats.Stores += Elems;
  Stats.BytesMoved += 2 * Elems * dtypeSize(Src->Ty);
}

void SDFGInterpreter::executeMap(const State &S, const MapEntry *Entry,
                                 std::map<std::string, std::int64_t> &Env,
                                 std::set<int> &Consumed) {
  std::set<int> Scope = S.scopeNodes(*Entry);
  for (int Id : Scope)
    Consumed.insert(Id);
  Consumed.insert(Entry->ExitId);

  // Topological order restricted to the scope.
  std::vector<Node *> ScopeOrder;
  for (Node *N : S.topologicalOrder())
    if (Scope.count(N->getId()))
      ScopeOrder.push_back(N);

  // Iterate the parametric domain. Ranges of inner dimensions may
  // reference outer parameters (non-rectangular maps, e.g. triangular
  // iteration spaces from loop-to-map conversion, or the derived
  // intra-tile strips `[i__tile, min(i__tile + T, e))` the tile-maps
  // pass emits), so each dimension's bounds are evaluated under the
  // bindings of the dimensions outside it — tile dimensions simply
  // step by T, and the strip's min() end evaluates per tile binding.
  size_t Rank = Entry->Params.size();
  if (Rank == 0)
    return;
  // Map-private transients get scope-local storage rebound (and zeroed,
  // matching the native backend's in-scope `= 0` declaration) per
  // iteration binding, so no value can leak between iterations; the
  // previous binding is restored when the scope finishes.
  std::vector<std::pair<std::string, BufferPtr>> SavedPrivate;
  std::vector<std::pair<std::string, BufferPtr>> PrivateBufs;
  for (const std::string &P : Entry->PrivateData) {
    auto It = Buffers.find(P);
    SavedPrivate.push_back({P, It == Buffers.end() ? nullptr : It->second});
    const DataDesc &D = G.desc(P);
    BufferPtr B = Buffer::create(D.Ty, {});
    PrivateBufs.push_back({P, B});
    Buffers[P] = B;
  }
  std::map<std::string, std::int64_t> Inner = Env;
  auto IterateDim = [&](auto &&Self, size_t D) -> void {
    if (D == Rank) {
      ++Stats.MapIterations;
      for (auto &[P, B] : PrivateBufs) {
        std::fill(B->F.begin(), B->F.end(), 0.0);
        std::fill(B->I.begin(), B->I.end(), 0);
      }
      ValueCache ScopeValues;
      executeNodes(S, ScopeOrder, Inner, ScopeValues);
      return;
    }
    std::int64_t Begin = evalSym(Entry->Ranges[D].Begin, Inner);
    std::int64_t End = evalSym(Entry->Ranges[D].End, Inner);
    std::int64_t Step =
        Entry->Ranges[D].Step ? evalSym(Entry->Ranges[D].Step, Inner) : 1;
    assert(Step > 0 && "map requires positive steps");
    for (std::int64_t V = Begin; V < End; V += Step) {
      Inner[Entry->Params[D]] = V;
      Self(Self, D + 1);
    }
  };
  IterateDim(IterateDim, 0);
  for (auto &[P, Old] : SavedPrivate) {
    if (Old)
      Buffers[P] = Old;
    else
      Buffers.erase(P);
  }
}
