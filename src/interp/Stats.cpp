//===- Stats.cpp --------------------------------------------------------------------===//

#include "interp/Stats.h"

#include <sstream>

using namespace dcir;

std::string interp::ExecutionStats::str() const {
  std::ostringstream OS;
  OS << "ops=" << OpsExecuted << " tasklets=" << TaskletsExecuted
     << " loads=" << Loads << " stores=" << Stores
     << " bytes_moved=" << BytesMoved << " heap_allocs=" << HeapAllocs
     << " stack_allocs=" << StackAllocs
     << " register_allocs=" << RegisterAllocs
     << " bytes_allocated=" << BytesAllocated
     << " state_transitions=" << StateTransitions
     << " map_iterations=" << MapIterations
     << " parallel_maps=" << ParallelMapsEmitted;
  return OS.str();
}
