//===- SDFGInterp.h - SDFG execution engine ---------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes SDFGs directly: the state machine walks interstate edges whose
/// symbolic conditions/assignments are evaluated against a symbol
/// environment; each state's dataflow graph runs in topological order; map
/// scopes iterate their parametric domain. It is the counter-exact engine
/// behind exec::InterpEngine; exec::NativeJitEngine provides the DaCe-style
/// codegen + native compilation path instead (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_INTERP_SDFGINTERP_H
#define DCIR_INTERP_SDFGINTERP_H

#include "interp/Buffer.h"
#include "interp/FastMath.h"
#include "interp/Stats.h"
#include "sdfg/SDFG.h"

#include <functional>
#include <map>

namespace dcir {
namespace interp {

/// Evaluates a tasklet expression; \p Input resolves connector names and
/// \p SymResolver evaluates symbolic subexpressions (loop indices, sizes).
sdfg::RtVal
evalTExpr(const sdfg::TExpr &E,
          const std::function<sdfg::RtVal(const std::string &)> &Input,
          const std::function<std::int64_t(const sym::SymExpr &)> &SymResolver,
          MathMode Mode);

/// Interprets one SDFG.
class SDFGInterpreter {
public:
  explicit SDFGInterpreter(const sdfg::SDFG &G,
                           MathMode Mode = MathMode::Precise)
      : G(G), Mode(Mode) {}

  /// Provides the buffer for a non-transient container.
  void bind(const std::string &Name, BufferPtr B) { Buffers[Name] = B; }
  /// Sets a free symbol's value before running.
  void setSymbol(const std::string &Name, std::int64_t V) {
    SymEnv[Name] = V;
  }

  /// Runs from the start state until the state machine halts.
  void run();

  /// Reads a scalar container's current value (for checksums).
  sdfg::RtVal readScalar(const std::string &Name);
  /// Returns the buffer backing \p Name (allocating transients on demand).
  BufferPtr buffer(const std::string &Name);

  ExecutionStats &stats() { return Stats; }
  const std::map<std::string, std::int64_t> &symbols() const {
    return SymEnv;
  }

private:
  /// Values produced by tasklets flowing over direct value edges
  /// (tasklet-to-tasklet, empty memlet with connectors).
  using ValueCache = std::map<std::pair<int, std::string>, sdfg::RtVal>;

  /// Cached per-state adjacency and topological order (states execute many
  /// times inside loops; recomputing per execution dominates otherwise).
  struct StateCache {
    std::vector<sdfg::Node *> Order;
    std::map<int, std::vector<const sdfg::DataflowEdge *>> In, Out;
  };
  const StateCache &cacheFor(const sdfg::State &S);

  /// Interstate adjacency, built once per run.
  const std::vector<const sdfg::InterstateEdge *> &
  interstateOut(const sdfg::State *S);

  void executeState(const sdfg::State &S);
  void executeNodes(const sdfg::State &S,
                    const std::vector<sdfg::Node *> &Order,
                    std::map<std::string, std::int64_t> &Env,
                    ValueCache &Values);
  void executeTasklet(const sdfg::State &S, const sdfg::Tasklet *T,
                      std::map<std::string, std::int64_t> &Env,
                      ValueCache &Values);
  void executeCopy(const sdfg::State &S, const sdfg::DataflowEdge &E,
                   std::map<std::string, std::int64_t> &Env);
  void executeMap(const sdfg::State &S, const sdfg::MapEntry *Entry,
                  std::map<std::string, std::int64_t> &Env,
                  std::set<int> &Consumed);

  /// Evaluates a symbolic expression against symbols, map parameters, and
  /// (fallback) integer scalar containers.
  std::int64_t evalSym(const sym::SymExpr &E,
                       const std::map<std::string, std::int64_t> &Env);

  std::vector<std::int64_t>
  evalIndices(const sym::SymSubset &Subset,
              const std::map<std::string, std::int64_t> &Env);

  const sdfg::SDFG &G;
  MathMode Mode;
  ExecutionStats Stats;
  std::map<std::string, BufferPtr> Buffers;
  std::map<std::string, std::int64_t> SymEnv;
  std::map<const sdfg::State *, StateCache> Caches;
  std::map<int, std::vector<const sdfg::InterstateEdge *>> IsOutCache;
  bool IsOutBuilt = false;
  /// Per-tasklet scalar-operation counts (for the work counter).
  std::map<const sdfg::Tasklet *, std::uint64_t> TaskletOpCount;
};

} // namespace interp
} // namespace dcir

#endif // DCIR_INTERP_SDFGINTERP_H
