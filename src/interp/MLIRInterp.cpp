//===- MLIRInterp.cpp -------------------------------------------------------------===//

#include "interp/MLIRInterp.h"

#include "dialects/Arith.h"
#include "dialects/Func.h"
#include "dialects/MathDialect.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"

#include <cmath>

using namespace dcir;
using namespace dcir::interp;
using namespace dcir::ir;
using sdfg::DType;
using sdfg::RtVal;

namespace {

DType dtypeOf(Type T) {
  if (T.isFloat())
    return T.dyn<FloatType>()->getWidth() == 32 ? DType::F32 : DType::F64;
  return DType::I64;
}

std::int64_t floorOrTruncDiv(std::int64_t A, std::int64_t B) {
  // C semantics: truncation toward zero.
  return B == 0 ? 0 : A / B;
}

} // namespace

MValue &MLIRInterpreter::value(Value *V, Env &E) {
  auto It = E.find(V);
  assert(It != E.end() && "use of unevaluated value");
  return It->second;
}

std::vector<MValue> MLIRInterpreter::call(const std::string &FuncName,
                                          std::vector<MValue> Args) {
  Operation *Func = lookupFunction(Module, FuncName);
  assert(Func && "unknown function");
  Block &Body = func::getFunctionBody(Func);
  assert(Body.getNumArguments() == Args.size() && "argument count mismatch");
  Env E;
  for (size_t I = 0; I < Args.size(); ++I)
    E[Body.getArgument(I)] = Args[I];
  auto Result = executeBlock(Body, E, nullptr);
  return Result ? *Result : std::vector<MValue>{};
}

std::optional<std::vector<MValue>>
MLIRInterpreter::executeBlock(Block &B, Env &E, MValue *CondOut) {
  for (auto &Op : B) {
    bool StopBlock = false;
    auto Ret = executeOp(Op.get(), E, CondOut, StopBlock);
    if (Ret)
      return Ret;
    if (StopBlock)
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::vector<MValue>>
MLIRInterpreter::executeOp(Operation *Op, Env &E, MValue *CondOut,
                           bool &StopBlock) {
  const std::string &Name = Op->getName();
  ++Stats.OpsExecuted;

  //===--------------------------------------------------------------------===
  // Terminators and control flow
  //===--------------------------------------------------------------------===
  if (Name == func::kReturnOp) {
    std::vector<MValue> Out;
    for (size_t I = 0; I < Op->getNumOperands(); ++I)
      Out.push_back(value(Op->getOperand(I), E));
    return Out;
  }
  if (Name == scf::kYieldOp)
    return std::nullopt;
  if (Name == scf::kConditionOp) {
    assert(CondOut && "scf.condition outside scf.while");
    *CondOut = value(Op->getOperand(0), E);
    StopBlock = true;
    return std::nullopt;
  }
  if (Name == scf::kForOp) {
    std::int64_t Lb = value(Op->getOperand(0), E).S.asI();
    std::int64_t Ub = value(Op->getOperand(1), E).S.asI();
    std::int64_t Step = value(Op->getOperand(2), E).S.asI();
    assert(Step > 0 && "scf.for requires a positive step");
    Block &Body = scf::getForBody(Op);
    for (std::int64_t Iv = Lb; Iv < Ub; Iv += Step) {
      E[Body.getArgument(0)] = MValue::scalarI(Iv);
      auto Ret = executeBlock(Body, E, nullptr);
      assert(!Ret && "return inside scf.for body");
      (void)Ret;
    }
    return std::nullopt;
  }
  if (Name == scf::kIfOp) {
    bool Cond = value(Op->getOperand(0), E).S.truthy();
    Region &R = Op->getRegion(Cond ? 0 : 1);
    if (!R.empty()) {
      auto Ret = executeBlock(R.front(), E, nullptr);
      assert(!Ret && "return inside scf.if body");
      (void)Ret;
    }
    return std::nullopt;
  }
  if (Name == scf::kWhileOp) {
    Block &Before = Op->getRegion(0).front();
    Block &After = Op->getRegion(1).front();
    // Guard against diverging loops in experiments.
    for (std::uint64_t Iter = 0;; ++Iter) {
      assert(Iter < (1ull << 40) && "scf.while iteration bound exceeded");
      MValue Cond;
      executeBlock(Before, E, &Cond);
      if (!Cond.S.truthy())
        break;
      auto Ret = executeBlock(After, E, nullptr);
      assert(!Ret && "return inside scf.while body");
      (void)Ret;
    }
    return std::nullopt;
  }
  if (Name == func::kCallOp) {
    std::vector<MValue> Args;
    for (size_t I = 0; I < Op->getNumOperands(); ++I)
      Args.push_back(value(Op->getOperand(I), E));
    std::vector<MValue> Results =
        call(Op->getAttr("callee").asString(), std::move(Args));
    assert(Results.size() == Op->getNumResults() &&
           "callee result count mismatch");
    for (size_t I = 0; I < Op->getNumResults(); ++I)
      E[Op->getResult(I)] = Results[I];
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===
  // Memory
  //===--------------------------------------------------------------------===
  if (Name == memref::kAllocOp || Name == memref::kAllocaOp) {
    const auto *MT = Op->getResult(0)->getType().dyn<MemRefType>();
    std::vector<std::int64_t> Shape;
    size_t DynIdx = 0;
    for (std::int64_t D : MT->getShape()) {
      if (D == MemRefType::kDynamic)
        Shape.push_back(value(Op->getOperand(DynIdx++), E).S.asI());
      else
        Shape.push_back(D);
    }
    BufferPtr B = Buffer::create(dtypeOf(MT->getElementType()), Shape);
    if (Name == memref::kAllocOp)
      ++Stats.HeapAllocs;
    else
      ++Stats.StackAllocs;
    Stats.BytesAllocated += B->numElements() * dtypeSize(B->Ty);
    E[Op->getResult(0)] = MValue::buffer(B);
    return std::nullopt;
  }
  if (Name == memref::kDeallocOp) {
    value(Op->getOperand(0), E).B->Freed = true;
    return std::nullopt;
  }
  if (Name == memref::kLoadOp) {
    BufferPtr B = value(Op->getOperand(0), E).B;
    std::vector<std::int64_t> Idx;
    for (size_t I = 1; I < Op->getNumOperands(); ++I)
      Idx.push_back(value(Op->getOperand(I), E).S.asI());
    RtVal V = B->readAt(Idx);
    ++Stats.Loads;
    Stats.BytesMoved += dtypeSize(B->Ty);
    MValue M;
    M.S = V;
    E[Op->getResult(0)] = M;
    return std::nullopt;
  }
  if (Name == memref::kStoreOp) {
    RtVal V = value(Op->getOperand(0), E).S;
    BufferPtr B = value(Op->getOperand(1), E).B;
    std::vector<std::int64_t> Idx;
    for (size_t I = 2; I < Op->getNumOperands(); ++I)
      Idx.push_back(value(Op->getOperand(I), E).S.asI());
    B->writeAt(Idx, V);
    ++Stats.Stores;
    Stats.BytesMoved += dtypeSize(B->Ty);
    return std::nullopt;
  }
  if (Name == memref::kCopyOp) {
    BufferPtr Src = value(Op->getOperand(0), E).B;
    BufferPtr Dst = value(Op->getOperand(1), E).B;
    size_t N = Src->numElements();
    assert(N == Dst->numElements() && "memref.copy size mismatch");
    for (size_t I = 0; I < N; ++I)
      Dst->write(I, Src->read(I));
    Stats.Loads += N;
    Stats.Stores += N;
    Stats.BytesMoved += 2 * N * dtypeSize(Src->Ty);
    return std::nullopt;
  }
  if (Name == memref::kDimOp) {
    BufferPtr B = value(Op->getOperand(0), E).B;
    std::int64_t D = value(Op->getOperand(1), E).S.asI();
    E[Op->getResult(0)] = MValue::scalarI(B->Shape[D]);
    return std::nullopt;
  }

  //===--------------------------------------------------------------------===
  // Scalar computation
  //===--------------------------------------------------------------------===
  E[Op->getResult(0)] = evalScalarOp(Op, E);
  return std::nullopt;
}

MValue MLIRInterpreter::evalScalarOp(Operation *Op, Env &E) {
  const std::string &Name = Op->getName();
  if (Name == arith::kConstantOp) {
    Attribute V = Op->getAttr("value");
    switch (V.getKind()) {
    case AttrKind::Integer:
      return MValue::scalarI(V.asInt());
    case AttrKind::Bool:
      return MValue::scalarI(V.asBool() ? 1 : 0);
    case AttrKind::Float:
      return MValue::scalarF(V.asFloat(),
                             dtypeOf(Op->getResult(0)->getType()));
    default:
      assert(false && "bad constant attribute");
      return MValue::scalarI(0);
    }
  }
  auto operand = [&](size_t I) { return value(Op->getOperand(I), E).S; };

  // Integer binaries.
  if (Name == arith::kAddIOp)
    return MValue::scalarI(operand(0).asI() + operand(1).asI());
  if (Name == arith::kSubIOp)
    return MValue::scalarI(operand(0).asI() - operand(1).asI());
  if (Name == arith::kMulIOp)
    return MValue::scalarI(operand(0).asI() * operand(1).asI());
  if (Name == arith::kDivSIOp)
    return MValue::scalarI(floorOrTruncDiv(operand(0).asI(), operand(1).asI()));
  if (Name == arith::kRemSIOp) {
    std::int64_t B = operand(1).asI();
    return MValue::scalarI(B == 0 ? 0 : operand(0).asI() % B);
  }
  if (Name == arith::kAndIOp)
    return MValue::scalarI(operand(0).asI() & operand(1).asI());
  if (Name == arith::kOrIOp)
    return MValue::scalarI(operand(0).asI() | operand(1).asI());
  if (Name == arith::kXorIOp)
    return MValue::scalarI(operand(0).asI() ^ operand(1).asI());
  if (Name == arith::kShLIOp)
    return MValue::scalarI(operand(0).asI() << operand(1).asI());
  if (Name == arith::kShRSIOp)
    return MValue::scalarI(operand(0).asI() >> operand(1).asI());
  if (Name == arith::kMaxSIOp)
    return MValue::scalarI(std::max(operand(0).asI(), operand(1).asI()));
  if (Name == arith::kMinSIOp)
    return MValue::scalarI(std::min(operand(0).asI(), operand(1).asI()));

  // Float binaries.
  DType FT = dtypeOf(Op->getResult(0)->getType());
  if (Name == arith::kAddFOp)
    return MValue::scalarF(operand(0).asF() + operand(1).asF(), FT);
  if (Name == arith::kSubFOp)
    return MValue::scalarF(operand(0).asF() - operand(1).asF(), FT);
  if (Name == arith::kMulFOp)
    return MValue::scalarF(operand(0).asF() * operand(1).asF(), FT);
  if (Name == arith::kDivFOp)
    return MValue::scalarF(operand(0).asF() / operand(1).asF(), FT);
  if (Name == arith::kNegFOp)
    return MValue::scalarF(-operand(0).asF(), FT);
  if (Name == arith::kMaxFOp)
    return MValue::scalarF(std::max(operand(0).asF(), operand(1).asF()), FT);
  if (Name == arith::kMinFOp)
    return MValue::scalarF(std::min(operand(0).asF(), operand(1).asF()), FT);

  // Comparisons.
  if (Name == arith::kCmpIOp) {
    const std::string &P = Op->getAttr("predicate").asString();
    std::int64_t A = operand(0).asI(), B = operand(1).asI();
    bool R = P == "eq"    ? A == B
             : P == "ne"  ? A != B
             : P == "slt" ? A < B
             : P == "sle" ? A <= B
             : P == "sgt" ? A > B
                          : A >= B;
    return MValue::scalarI(R ? 1 : 0);
  }
  if (Name == arith::kCmpFOp) {
    const std::string &P = Op->getAttr("predicate").asString();
    double A = operand(0).asF(), B = operand(1).asF();
    bool R = P == "oeq"   ? A == B
             : P == "one" ? A != B
             : P == "olt" ? A < B
             : P == "ole" ? A <= B
             : P == "ogt" ? A > B
                          : A >= B;
    return MValue::scalarI(R ? 1 : 0);
  }
  if (Name == arith::kSelectOp)
    return operand(0).truthy() ? value(Op->getOperand(1), E)
                               : value(Op->getOperand(2), E);

  // Casts.
  if (Name == arith::kIndexCastOp)
    return MValue::scalarI(operand(0).asI());
  if (Name == arith::kSIToFPOp)
    return MValue::scalarF(static_cast<double>(operand(0).asI()), FT);
  if (Name == arith::kFPToSIOp)
    return MValue::scalarI(static_cast<std::int64_t>(operand(0).asF()));
  if (Name == arith::kExtFOp)
    return MValue::scalarF(operand(0).asF(), DType::F64);
  if (Name == arith::kTruncFOp)
    return MValue::scalarF(
        static_cast<double>(static_cast<float>(operand(0).asF())),
        DType::F32);

  // Math dialect.
  bool Vec = Mode == MathMode::Vectorized;
  if (Name == math::kSqrtOp)
    return MValue::scalarF(std::sqrt(operand(0).asF()), FT);
  if (Name == math::kExpOp)
    return MValue::scalarF(Vec ? fastExp(operand(0).asF())
                               : std::exp(operand(0).asF()),
                           FT);
  if (Name == math::kLogOp)
    return MValue::scalarF(Vec ? fastLog(operand(0).asF())
                               : std::log(operand(0).asF()),
                           FT);
  if (Name == math::kPowOp)
    return MValue::scalarF(std::pow(operand(0).asF(), operand(1).asF()), FT);
  if (Name == math::kFAbsOp)
    return MValue::scalarF(std::fabs(operand(0).asF()), FT);
  if (Name == math::kSinOp)
    return MValue::scalarF(std::sin(operand(0).asF()), FT);
  if (Name == math::kCosOp)
    return MValue::scalarF(std::cos(operand(0).asF()), FT);
  if (Name == math::kTanhOp)
    return MValue::scalarF(std::tanh(operand(0).asF()), FT);

  assert(false && "unsupported operation in interpreter");
  return MValue::scalarI(0);
}
