//===- Buffer.h - runtime data buffers ------------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef DCIR_INTERP_BUFFER_H
#define DCIR_INTERP_BUFFER_H

#include "sdfg/TaskletExpr.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

namespace dcir {
namespace interp {

/// A runtime array: row-major storage of int64 or double elements.
struct Buffer {
  sdfg::DType Ty = sdfg::DType::F64;
  std::vector<std::int64_t> Shape;
  std::vector<double> F;
  std::vector<std::int64_t> I;
  bool Freed = false;

  static std::shared_ptr<Buffer> create(sdfg::DType Ty,
                                        std::vector<std::int64_t> Shape) {
    auto B = std::make_shared<Buffer>();
    B->Ty = Ty;
    B->Shape = std::move(Shape);
    size_t N = B->numElements();
    if (Ty == sdfg::DType::I64)
      B->I.assign(N, 0);
    else
      B->F.assign(N, 0.0);
    return B;
  }

  size_t numElements() const {
    size_t N = 1;
    for (std::int64_t D : Shape)
      N *= static_cast<size_t>(D);
    return N;
  }

  size_t rank() const { return Shape.size(); }

  /// Row-major linearization; asserts bounds.
  size_t linearize(const std::vector<std::int64_t> &Idx) const {
    assert(Idx.size() == Shape.size() && "index rank mismatch");
    size_t Lin = 0;
    for (size_t D = 0; D < Idx.size(); ++D) {
      assert(Idx[D] >= 0 && Idx[D] < Shape[D] && "index out of bounds");
      Lin = Lin * static_cast<size_t>(Shape[D]) +
            static_cast<size_t>(Idx[D]);
    }
    return Lin;
  }

  sdfg::RtVal read(size_t Lin) const {
    assert(!Freed && "use after free");
    if (Ty == sdfg::DType::I64)
      return sdfg::RtVal::makeI(I[Lin]);
    return sdfg::RtVal::makeF(F[Lin], Ty);
  }

  void write(size_t Lin, sdfg::RtVal V) {
    assert(!Freed && "use after free");
    if (Ty == sdfg::DType::I64)
      I[Lin] = V.asI();
    else
      F[Lin] = Ty == sdfg::DType::F32
                   ? static_cast<double>(static_cast<float>(V.asF()))
                   : V.asF();
  }

  sdfg::RtVal readAt(const std::vector<std::int64_t> &Idx) const {
    return read(linearize(Idx));
  }
  void writeAt(const std::vector<std::int64_t> &Idx, sdfg::RtVal V) {
    write(linearize(Idx), V);
  }
};

using BufferPtr = std::shared_ptr<Buffer>;

} // namespace interp
} // namespace dcir

#endif // DCIR_INTERP_BUFFER_H
