//===- MLIRInterp.h - reference interpreter for the MLIR dialects -----------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes modules in the func/scf/arith/math/memref dialects. This is the
/// uniform "machine" all control-centric pipelines run on, replacing the
/// paper's native compilation; relative runtimes therefore reflect the work
/// each pipeline's optimizations leave behind (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_INTERP_MLIRINTERP_H
#define DCIR_INTERP_MLIRINTERP_H

#include "interp/Buffer.h"
#include "interp/FastMath.h"
#include "interp/Stats.h"
#include "ir/IR.h"

#include <map>
#include <optional>
#include <vector>

namespace dcir {
namespace interp {

/// A runtime value: a scalar or a buffer reference.
struct MValue {
  bool IsBuffer = false;
  sdfg::RtVal S;
  BufferPtr B;

  static MValue scalarI(std::int64_t V) {
    MValue M;
    M.S = sdfg::RtVal::makeI(V);
    return M;
  }
  static MValue scalarF(double V, sdfg::DType Ty = sdfg::DType::F64) {
    MValue M;
    M.S = sdfg::RtVal::makeF(V, Ty);
    return M;
  }
  static MValue buffer(BufferPtr B) {
    MValue M;
    M.IsBuffer = true;
    M.B = std::move(B);
    return M;
  }
};

/// Interprets functions of a verified module.
class MLIRInterpreter {
public:
  explicit MLIRInterpreter(ir::Operation *Module,
                           MathMode Mode = MathMode::Precise)
      : Module(Module), Mode(Mode) {}

  /// Calls \p FuncName with \p Args; returns the function results.
  /// Asserts on malformed IR (run the verifier first).
  std::vector<MValue> call(const std::string &FuncName,
                           std::vector<MValue> Args);

  ExecutionStats &stats() { return Stats; }

private:
  using Env = std::map<ir::Value *, MValue>;

  /// Executes a block; returns values if a func.return was reached, or the
  /// scf.condition operand via \p CondOut when one terminated the block.
  std::optional<std::vector<MValue>> executeBlock(ir::Block &B, Env &E,
                                                  MValue *CondOut);
  std::optional<std::vector<MValue>> executeOp(ir::Operation *Op, Env &E,
                                               MValue *CondOut,
                                               bool &StopBlock);
  MValue evalScalarOp(ir::Operation *Op, Env &E);
  MValue &value(ir::Value *V, Env &E);

  ir::Operation *Module;
  MathMode Mode;
  ExecutionStats Stats;
};

} // namespace interp
} // namespace dcir

#endif // DCIR_INTERP_MLIRINTERP_H
