//===- Stats.h - execution accounting -------------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter-side stand-in for PAPI counters (paper §7.1): both
/// execution engines count the quantities the paper's optimizations change —
/// work executed, data moved, memory allocated per storage class.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_INTERP_STATS_H
#define DCIR_INTERP_STATS_H

#include <cstdint>
#include <string>

namespace dcir {
namespace interp {

struct ExecutionStats {
  std::uint64_t OpsExecuted = 0;       // MLIR ops or tasklets.
  std::uint64_t TaskletsExecuted = 0;  // SDFG only.
  std::uint64_t Loads = 0;
  std::uint64_t Stores = 0;
  std::uint64_t BytesMoved = 0;
  std::uint64_t HeapAllocs = 0;
  std::uint64_t StackAllocs = 0;
  std::uint64_t RegisterAllocs = 0;
  std::uint64_t BytesAllocated = 0;
  std::uint64_t StateTransitions = 0;  // SDFG only.
  std::uint64_t MapIterations = 0;     // SDFG only.
  /// Map scopes the native backend emitted with an OpenMP work-sharing
  /// pragma (0 for interpreter runs: the interpreter executes maps
  /// sequentially regardless).
  std::uint64_t ParallelMapsEmitted = 0;

  void merge(const ExecutionStats &O) {
    OpsExecuted += O.OpsExecuted;
    TaskletsExecuted += O.TaskletsExecuted;
    Loads += O.Loads;
    Stores += O.Stores;
    BytesMoved += O.BytesMoved;
    HeapAllocs += O.HeapAllocs;
    StackAllocs += O.StackAllocs;
    RegisterAllocs += O.RegisterAllocs;
    BytesAllocated += O.BytesAllocated;
    StateTransitions += O.StateTransitions;
    MapIterations += O.MapIterations;
    ParallelMapsEmitted += O.ParallelMapsEmitted;
  }

  std::string str() const;
};

} // namespace interp
} // namespace dcir

#endif // DCIR_INTERP_STATS_H
