//===- FastMath.h - vectorized-math emulation -----------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap polynomial approximations of exp/log, standing in for the SLEEF /
/// ICC vector math libraries of the paper's Fig. 8 experiment ("Clang does
/// not vectorize math library calls ... we also compile the DCIR-generated
/// code with ICC"). They are genuinely several times faster than the libm
/// calls the "scalar" configurations use, reproducing the same effect on an
/// interpreted substrate.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_INTERP_FASTMATH_H
#define DCIR_INTERP_FASTMATH_H

#include <cmath>
#include <cstdint>

namespace dcir {
namespace interp {

/// How tasklet math calls are evaluated.
enum class MathMode {
  Precise,   ///< libm (Clang-compiled scalar calls).
  Vectorized ///< fast approximations (ICC/SLEEF vector math emulation).
};

/// exp(x) via the classic Schraudolph bit trick refined with one polynomial
/// step; ~3 decimal digits, far faster than libm.
inline double fastExp(double X) {
  if (X < -700.0)
    return 0.0;
  if (X > 700.0)
    return HUGE_VAL;
  // 2^k decomposition: x = k*ln2 + r.
  double T = X * 1.4426950408889634; // x / ln2
  std::int64_t K = static_cast<std::int64_t>(T + (T >= 0 ? 0.5 : -0.5));
  double R = X - static_cast<double>(K) * 0.6931471805599453;
  // 4th-order polynomial on |r| <= ln2/2.
  double P = 1.0 + R * (1.0 + R * (0.5 + R * (1.0 / 6.0 + R / 24.0)));
  // Scale by 2^k through the exponent bits.
  union {
    double D;
    std::uint64_t U;
  } Bits;
  Bits.D = P;
  Bits.U += static_cast<std::uint64_t>(K) << 52;
  return Bits.D;
}

/// log(x) via exponent extraction and a short polynomial.
inline double fastLog(double X) {
  if (X <= 0.0)
    return -HUGE_VAL;
  union {
    double D;
    std::uint64_t U;
  } Bits;
  Bits.D = X;
  int E = static_cast<int>((Bits.U >> 52) & 0x7ff) - 1023;
  Bits.U = (Bits.U & 0xfffffffffffffULL) | 0x3ff0000000000000ULL;
  double M = Bits.D; // in [1, 2)
  double T = (M - 1.0) / (M + 1.0);
  double T2 = T * T;
  double L = 2.0 * T * (1.0 + T2 * (1.0 / 3.0 + T2 * (0.2 + T2 / 7.0)));
  return L + static_cast<double>(E) * 0.6931471805599453;
}

} // namespace interp
} // namespace dcir

#endif // DCIR_INTERP_FASTMATH_H
