//===- SymExpr.h - Symbolic integer/boolean expressions -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable symbolic expression trees, the stand-in for the SymPy engine the
/// DaCe framework uses. Expressions are canonicalized on construction
/// (constant folding, flattening, expansion of products over sums, collection
/// of like terms), so structural equality after construction is a reliable
/// equivalence test for the affine expressions that dominate memlet subsets,
/// array shapes, and interstate edge conditions.
///
/// Following DaCe, free symbols are assumed to denote positive integers
/// (array sizes, loop trip counts) unless a weaker assumption is requested.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SYMBOLIC_SYMEXPR_H
#define DCIR_SYMBOLIC_SYMEXPR_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dcir {
namespace sym {

/// Discriminator for expression nodes.
enum class ExprKind {
  Constant,
  Symbol,
  Add,      // n-ary sum
  Mul,      // n-ary product, leading constant factor if != 1
  FloorDiv, // binary, floor semantics
  Mod,      // binary, floor (Euclidean for positive divisor) semantics
  Min,      // n-ary
  Max,      // n-ary
  Eq,
  Ne,
  Lt,
  Le,
  And, // n-ary
  Or,  // n-ary
  Not
};

/// What may be assumed about every free symbol when proving facts.
enum class SymbolAssumption {
  Unknown,     ///< Nothing known.
  NonNegative, ///< Every symbol is >= 0.
  Positive     ///< Every symbol is >= 1 (DaCe default for sizes).
};

class SymExpr;
namespace detail {
struct ExprNode {
  ExprKind Kind;
  std::int64_t Value = 0; // Constant payload.
  std::string Name;       // Symbol payload.
  std::vector<SymExpr> Ops;
};
/// Internal: wraps a pre-canonicalized node. Used by the implementation only.
SymExpr makeExpr(ExprNode N);
} // namespace detail

/// Value-semantics handle to an immutable, canonicalized expression node.
/// A default-constructed SymExpr is "null" and must not be used in algebra;
/// it signals "absent" (e.g. an interstate edge without a condition).
class SymExpr {
public:
  SymExpr() = default;

  //===--------------------------------------------------------------------===
  // Construction (all factories canonicalize).
  //===--------------------------------------------------------------------===

  static SymExpr constant(std::int64_t Value);
  static SymExpr symbol(std::string Name);
  static SymExpr add(SymExpr L, SymExpr R);
  static SymExpr sub(SymExpr L, SymExpr R);
  static SymExpr mul(SymExpr L, SymExpr R);
  static SymExpr negate(SymExpr E);
  static SymExpr floorDiv(SymExpr L, SymExpr R);
  static SymExpr mod(SymExpr L, SymExpr R);
  static SymExpr min(SymExpr L, SymExpr R);
  static SymExpr max(SymExpr L, SymExpr R);
  static SymExpr eq(SymExpr L, SymExpr R);
  static SymExpr ne(SymExpr L, SymExpr R);
  static SymExpr lt(SymExpr L, SymExpr R);
  static SymExpr le(SymExpr L, SymExpr R);
  static SymExpr gt(SymExpr L, SymExpr R) { return lt(R, L); }
  static SymExpr ge(SymExpr L, SymExpr R) { return le(R, L); }
  static SymExpr logicalAnd(SymExpr L, SymExpr R);
  static SymExpr logicalOr(SymExpr L, SymExpr R);
  static SymExpr logicalNot(SymExpr E);
  static SymExpr trueExpr() { return constant(1); }
  static SymExpr falseExpr() { return constant(0); }

  //===--------------------------------------------------------------------===
  // Inspection.
  //===--------------------------------------------------------------------===

  bool isNull() const { return !Node; }
  explicit operator bool() const { return !isNull(); }

  ExprKind kind() const;
  bool isConstant() const { return Node && kind() == ExprKind::Constant; }
  /// Returns the payload of a Constant node; asserts otherwise.
  std::int64_t constantValue() const;
  /// Returns true iff this is the constant \p Value.
  bool isConstantValue(std::int64_t Value) const {
    return isConstant() && constantValue() == Value;
  }
  bool isSymbol() const { return Node && kind() == ExprKind::Symbol; }
  const std::string &symbolName() const;
  const std::vector<SymExpr> &operands() const;
  /// True for Eq/Ne/Lt/Le/And/Or/Not nodes.
  bool isBooleanKind() const;

  /// Structural equality. Canonicalization makes this an effective
  /// equivalence check for affine expressions.
  bool equals(const SymExpr &Other) const;

  /// Deterministic rendering, also usable as a canonical key.
  std::string str() const;

  /// Inserts every free symbol name into \p Out.
  void collectSymbols(std::set<std::string> &Out) const;
  /// Returns true if the symbol \p Name occurs free in this expression.
  bool usesSymbol(const std::string &Name) const;

  //===--------------------------------------------------------------------===
  // Rewriting and analysis.
  //===--------------------------------------------------------------------===

  /// Substitutes symbols by expressions (simultaneous) and re-simplifies.
  SymExpr substitute(const std::map<std::string, SymExpr> &Map) const;

  /// Substitutes concrete symbol values and constant-folds (symbols absent
  /// from \p Env stay symbolic) — the shape-specialization entry point.
  SymExpr
  substituteValues(const std::map<std::string, std::int64_t> &Env) const;

  /// Fully evaluates given concrete symbol values. Returns nullopt if a
  /// symbol is missing from \p Env.
  std::optional<std::int64_t>
  evaluate(const std::map<std::string, std::int64_t> &Env) const;

  /// Attempts to prove this (boolean or integer-as-boolean) expression
  /// definitely true or definitely false under \p Assume. Returns nullopt
  /// when undecidable.
  std::optional<bool>
  tryProve(SymbolAssumption Assume = SymbolAssumption::Positive) const;

  /// Attempts to prove `this >= 0` / `this > 0` for integer expressions.
  bool proveNonNegative(
      SymbolAssumption Assume = SymbolAssumption::Positive) const;
  bool
  provePositive(SymbolAssumption Assume = SymbolAssumption::Positive) const;

  /// Rebuilds the expression bottom-up, re-running Min/Max dominance
  /// elimination under \p Assume. Constructors only fold what holds
  /// unconditionally; consumers operating in an assumption regime (e.g.
  /// memlet propagation under positive sizes) call this explicitly.
  SymExpr simplifyUnder(SymbolAssumption Assume) const;

  /// Decomposes this expression as `A * Name + B` where neither A nor B
  /// mentions \p Name. Only succeeds on (expanded) expressions polynomial
  /// of degree <= 1 in \p Name. Returns false on failure.
  bool linearIn(const std::string &Name, SymExpr &A, SymExpr &B) const;

  /// For an Eq node linear in \p Name with unit (or -1) coefficient,
  /// returns the solved value of \p Name. E.g. solving `x + 2 == N` for x
  /// yields `N - 2`.
  std::optional<SymExpr> solveFor(const std::string &Name) const;

private:
  friend SymExpr detail::makeExpr(detail::ExprNode N);
  explicit SymExpr(std::shared_ptr<const detail::ExprNode> N)
      : Node(std::move(N)) {}
  static SymExpr makeNode(detail::ExprNode N);
  static SymExpr makeAdd(std::vector<SymExpr> Terms);
  static SymExpr makeMul(std::vector<SymExpr> Factors);
  static SymExpr makeMinMax(ExprKind K, std::vector<SymExpr> Ops,
                            SymbolAssumption Assume = SymbolAssumption::Unknown);
  static SymExpr makeAndOr(ExprKind K, std::vector<SymExpr> Ops);
  static SymExpr makeCmp(ExprKind K, SymExpr L, SymExpr R);

  std::shared_ptr<const detail::ExprNode> Node;
};

/// Convenience arithmetic operators.
inline SymExpr operator+(const SymExpr &L, const SymExpr &R) {
  return SymExpr::add(L, R);
}
inline SymExpr operator-(const SymExpr &L, const SymExpr &R) {
  return SymExpr::sub(L, R);
}
inline SymExpr operator*(const SymExpr &L, const SymExpr &R) {
  return SymExpr::mul(L, R);
}
inline SymExpr operator-(const SymExpr &E) { return SymExpr::negate(E); }

} // namespace sym
} // namespace dcir

#endif // DCIR_SYMBOLIC_SYMEXPR_H
