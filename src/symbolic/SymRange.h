//===- SymRange.h - Symbolic ranges and multidimensional subsets ----------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-dimension half-open ranges `[Begin, End) : Step` with symbolic bounds,
/// and multidimensional subsets built from them. These model SDFG memlet
/// subsets: the exact region of a data container an edge moves.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SYMBOLIC_SYMRANGE_H
#define DCIR_SYMBOLIC_SYMRANGE_H

#include "symbolic/SymExpr.h"

#include <string>
#include <vector>

namespace dcir {
namespace sym {

/// One dimension of a subset: the half-open interval [Begin, End) visited
/// with stride Step (Step defaults to 1).
struct SymRange {
  SymExpr Begin;
  SymExpr End;
  SymExpr Step;

  SymRange() = default;
  SymRange(SymExpr B, SymExpr E)
      : Begin(std::move(B)), End(std::move(E)), Step(SymExpr::constant(1)) {}
  SymRange(SymExpr B, SymExpr E, SymExpr S)
      : Begin(std::move(B)), End(std::move(E)), Step(std::move(S)) {}

  /// A single index `[I, I+1)`.
  static SymRange index(SymExpr I);

  /// Number of elements visited: ceil((End - Begin) / Step).
  SymExpr numElements() const;

  /// True when the range visits exactly one element.
  bool isSingleElement() const;

  bool equals(const SymRange &Other) const;
  SymRange substitute(const std::map<std::string, SymExpr> &Map) const;
  /// Constant-folds concrete symbol values into all three bounds.
  SymRange
  substituteValues(const std::map<std::string, std::int64_t> &Env) const;
  void collectSymbols(std::set<std::string> &Out) const;

  /// Rendering "begin:end" or "begin:end:step"; single elements as "i".
  std::string str() const;
};

/// A rectangular multidimensional subset (one SymRange per dimension).
class SymSubset {
public:
  SymSubset() = default;
  explicit SymSubset(std::vector<SymRange> Ranges) : Dims(std::move(Ranges)) {}

  /// A subset covering `[0, Shape[d])` in every dimension.
  static SymSubset full(const std::vector<SymExpr> &Shape);
  /// A single-element subset at the given indices.
  static SymSubset element(const std::vector<SymExpr> &Indices);

  size_t rank() const { return Dims.size(); }
  bool empty() const { return Dims.empty(); }
  const SymRange &dim(size_t I) const { return Dims[I]; }
  SymRange &dim(size_t I) { return Dims[I]; }
  const std::vector<SymRange> &ranges() const { return Dims; }

  /// Total number of elements (product over dimensions).
  SymExpr volume() const;

  /// True when every dimension selects exactly one element.
  bool isSingleElement() const;
  /// For a single-element subset, the index expressions per dimension.
  std::vector<SymExpr> elementIndices() const;

  bool equals(const SymSubset &Other) const;

  /// Conservative: returns true only when this subset *provably* covers
  /// \p Other in every dimension (unit steps assumed for proofs).
  bool contains(const SymSubset &Other,
                SymbolAssumption Assume = SymbolAssumption::Positive) const;

  /// Conservative overlap test: returns false only when the two subsets are
  /// provably disjoint in some dimension; true otherwise.
  bool mayOverlap(const SymSubset &Other,
                  SymbolAssumption Assume = SymbolAssumption::Positive) const;

  /// The per-dimension bounding hull `[min(begins), max(ends))`.
  SymSubset unionHull(const SymSubset &Other) const;

  SymSubset substitute(const std::map<std::string, SymExpr> &Map) const;
  /// Constant-folds concrete symbol values into every dimension.
  SymSubset
  substituteValues(const std::map<std::string, std::int64_t> &Env) const;
  void collectSymbols(std::set<std::string> &Out) const;

  /// Replaces every occurrence of the iteration symbol \p Name, which ranges
  /// over \p Iter, by its extreme values — producing the subset covered over
  /// the whole iteration. Only exact for expressions affine in \p Name; when
  /// a bound is not affine in \p Name, that dimension is widened to
  /// \p FallbackShape (pass the container shape). This is DaCe's memlet
  /// propagation.
  SymSubset propagateOver(const std::string &Name, const SymRange &Iter,
                          const std::vector<SymExpr> &FallbackShape) const;

  /// Rendering "[r0, r1, ...]".
  std::string str() const;

private:
  std::vector<SymRange> Dims;
};

} // namespace sym
} // namespace dcir

#endif // DCIR_SYMBOLIC_SYMRANGE_H
