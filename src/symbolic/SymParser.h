//===- SymParser.h - Textual symbolic expression parser --------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the string form of symbolic expressions: the `sym("2*N")` payloads
/// of the sdfg dialect (the paper encodes symbolic sizes as strings because
/// MLIR disallows arbitrary expression syntax in types, §3.1), interstate
/// edge conditions, and assignment right-hand sides.
///
/// Grammar (precedence climbing):
///   or:    and ("or" and)*
///   and:   not ("and" not)*
///   not:   "not" not | cmp
///   cmp:   addsub (("=="|"!="|"<"|"<="|">"|">=") addsub)?
///   addsub: muldiv (("+"|"-") muldiv)*
///   muldiv: unary (("*"|"/"|"%") unary)*
///   unary: "-" unary | atom
///   atom:  integer | identifier | call | "(" or ")"
///   call:  ("min"|"max"|"floord"|"mod") "(" or "," or ")"
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SYMBOLIC_SYMPARSER_H
#define DCIR_SYMBOLIC_SYMPARSER_H

#include "symbolic/SymExpr.h"

#include <string_view>

namespace dcir {
namespace sym {

/// Parses \p Text into an expression. Returns a null SymExpr on malformed
/// input and, when \p ErrorMessage is non-null, stores a description there.
SymExpr parseSymExpr(std::string_view Text,
                     std::string *ErrorMessage = nullptr);

} // namespace sym
} // namespace dcir

#endif // DCIR_SYMBOLIC_SYMPARSER_H
