//===- SymRange.cpp --------------------------------------------------------===//

#include "symbolic/SymRange.h"

#include <cassert>
#include <sstream>

using namespace dcir;
using namespace dcir::sym;

SymRange SymRange::index(SymExpr I) {
  SymExpr End = SymExpr::add(I, SymExpr::constant(1));
  return SymRange(std::move(I), std::move(End));
}

SymExpr SymRange::numElements() const {
  assert(Begin && End && "incomplete range");
  SymExpr Extent = SymExpr::sub(End, Begin);
  if (!Step || Step.isConstantValue(1))
    return Extent;
  // ceil(extent / step) == floor((extent + step - 1) / step)
  SymExpr Num = SymExpr::add(Extent, SymExpr::sub(Step, SymExpr::constant(1)));
  return SymExpr::floorDiv(Num, Step);
}

bool SymRange::isSingleElement() const {
  return numElements().isConstantValue(1);
}

bool SymRange::equals(const SymRange &Other) const {
  if (!Begin.equals(Other.Begin) || !End.equals(Other.End))
    return false;
  SymExpr S1 = Step ? Step : SymExpr::constant(1);
  SymExpr S2 = Other.Step ? Other.Step : SymExpr::constant(1);
  return S1.equals(S2);
}

SymRange
SymRange::substitute(const std::map<std::string, SymExpr> &Map) const {
  SymRange R;
  R.Begin = Begin.substitute(Map);
  R.End = End.substitute(Map);
  R.Step = Step ? Step.substitute(Map) : Step;
  return R;
}

SymRange SymRange::substituteValues(
    const std::map<std::string, std::int64_t> &Env) const {
  SymRange R;
  R.Begin = Begin ? Begin.substituteValues(Env) : Begin;
  R.End = End ? End.substituteValues(Env) : End;
  R.Step = Step ? Step.substituteValues(Env) : Step;
  return R;
}

void SymRange::collectSymbols(std::set<std::string> &Out) const {
  if (Begin)
    Begin.collectSymbols(Out);
  if (End)
    End.collectSymbols(Out);
  if (Step)
    Step.collectSymbols(Out);
}

std::string SymRange::str() const {
  if (isSingleElement())
    return Begin.str();
  std::ostringstream OS;
  OS << Begin.str() << ":" << End.str();
  if (Step && !Step.isConstantValue(1))
    OS << ":" << Step.str();
  return OS.str();
}

//===----------------------------------------------------------------------===//
// SymSubset
//===----------------------------------------------------------------------===//

SymSubset SymSubset::full(const std::vector<SymExpr> &Shape) {
  std::vector<SymRange> Dims;
  Dims.reserve(Shape.size());
  for (const SymExpr &S : Shape)
    Dims.push_back(SymRange(SymExpr::constant(0), S));
  return SymSubset(std::move(Dims));
}

SymSubset SymSubset::element(const std::vector<SymExpr> &Indices) {
  std::vector<SymRange> Dims;
  Dims.reserve(Indices.size());
  for (const SymExpr &I : Indices)
    Dims.push_back(SymRange::index(I));
  return SymSubset(std::move(Dims));
}

SymExpr SymSubset::volume() const {
  SymExpr V = SymExpr::constant(1);
  for (const SymRange &R : Dims)
    V = SymExpr::mul(V, R.numElements());
  return V;
}

bool SymSubset::isSingleElement() const {
  for (const SymRange &R : Dims)
    if (!R.isSingleElement())
      return false;
  return true;
}

std::vector<SymExpr> SymSubset::elementIndices() const {
  assert(isSingleElement() && "not a single-element subset");
  std::vector<SymExpr> Out;
  Out.reserve(Dims.size());
  for (const SymRange &R : Dims)
    Out.push_back(R.Begin);
  return Out;
}

bool SymSubset::equals(const SymSubset &Other) const {
  if (Dims.size() != Other.Dims.size())
    return false;
  for (size_t I = 0; I < Dims.size(); ++I)
    if (!Dims[I].equals(Other.Dims[I]))
      return false;
  return true;
}

bool SymSubset::contains(const SymSubset &Other,
                         SymbolAssumption Assume) const {
  if (Dims.size() != Other.Dims.size())
    return false;
  for (size_t I = 0; I < Dims.size(); ++I) {
    const SymRange &A = Dims[I];
    const SymRange &B = Other.Dims[I];
    // A.Begin <= B.Begin and B.End <= A.End, both provable.
    if (!SymExpr::sub(B.Begin, A.Begin).proveNonNegative(Assume))
      return false;
    if (!SymExpr::sub(A.End, B.End).proveNonNegative(Assume))
      return false;
  }
  return true;
}

bool SymSubset::mayOverlap(const SymSubset &Other,
                           SymbolAssumption Assume) const {
  if (Dims.size() != Other.Dims.size())
    return true; // Shape confusion: be conservative.
  for (size_t I = 0; I < Dims.size(); ++I) {
    const SymRange &A = Dims[I];
    const SymRange &B = Other.Dims[I];
    // Provably disjoint in this dimension if A.End <= B.Begin or
    // B.End <= A.Begin.
    if (SymExpr::sub(B.Begin, A.End).proveNonNegative(Assume))
      return false;
    if (SymExpr::sub(A.Begin, B.End).proveNonNegative(Assume))
      return false;
  }
  return true;
}

SymSubset SymSubset::unionHull(const SymSubset &Other) const {
  assert(Dims.size() == Other.Dims.size() && "rank mismatch in unionHull");
  std::vector<SymRange> Out;
  Out.reserve(Dims.size());
  for (size_t I = 0; I < Dims.size(); ++I) {
    SymExpr Begin = SymExpr::min(Dims[I].Begin, Other.Dims[I].Begin);
    SymExpr End = SymExpr::max(Dims[I].End, Other.Dims[I].End);
    Out.push_back(SymRange(std::move(Begin), std::move(End)));
  }
  return SymSubset(std::move(Out));
}

SymSubset
SymSubset::substitute(const std::map<std::string, SymExpr> &Map) const {
  std::vector<SymRange> Out;
  Out.reserve(Dims.size());
  for (const SymRange &R : Dims)
    Out.push_back(R.substitute(Map));
  return SymSubset(std::move(Out));
}

SymSubset SymSubset::substituteValues(
    const std::map<std::string, std::int64_t> &Env) const {
  std::vector<SymRange> Out;
  Out.reserve(Dims.size());
  for (const SymRange &R : Dims)
    Out.push_back(R.substituteValues(Env));
  return SymSubset(std::move(Out));
}

void SymSubset::collectSymbols(std::set<std::string> &Out) const {
  for (const SymRange &R : Dims)
    R.collectSymbols(Out);
}

SymSubset SymSubset::propagateOver(const std::string &Name,
                                   const SymRange &Iter,
                                   const std::vector<SymExpr> &FallbackShape) const {
  assert(FallbackShape.size() == Dims.size() &&
         "fallback shape rank mismatch");
  // The iteration visits Name in [Iter.Begin, Iter.End); its last value for
  // unit step is Iter.End - 1.
  SymExpr First = Iter.Begin;
  SymExpr Last = SymExpr::sub(Iter.End, SymExpr::constant(1));

  std::vector<SymRange> Out;
  Out.reserve(Dims.size());
  for (size_t I = 0; I < Dims.size(); ++I) {
    const SymRange &R = Dims[I];
    if (!R.Begin.usesSymbol(Name) && !R.End.usesSymbol(Name)) {
      Out.push_back(R);
      continue;
    }
    SymExpr AB, BB, AE, BE;
    bool BeginAffine = R.Begin.linearIn(Name, AB, BB);
    bool EndAffine = R.End.linearIn(Name, AE, BE);
    if (!BeginAffine || !EndAffine) {
      // Not affine in the iterator: widen to the whole dimension.
      Out.push_back(SymRange(SymExpr::constant(0), FallbackShape[I]));
      continue;
    }
    std::map<std::string, SymExpr> AtFirst = {{Name, First}};
    std::map<std::string, SymExpr> AtLast = {{Name, Last}};
    SymExpr BeginFirst = R.Begin.substitute(AtFirst);
    SymExpr BeginLast = R.Begin.substitute(AtLast);
    SymExpr EndFirst = R.End.substitute(AtFirst);
    SymExpr EndLast = R.End.substitute(AtLast);
    // Monotonicity depends on the sign of the coefficient; min/max handles
    // both directions. Propagation operates in DaCe's positive-sizes
    // regime, so re-simplify dominance under that assumption (the
    // assumption-free constructors keep both operands).
    SymExpr NewBegin = SymExpr::min(BeginFirst, BeginLast)
                           .simplifyUnder(SymbolAssumption::Positive);
    SymExpr NewEnd = SymExpr::max(EndFirst, EndLast)
                         .simplifyUnder(SymbolAssumption::Positive);
    Out.push_back(SymRange(std::move(NewBegin), std::move(NewEnd)));
  }
  return SymSubset(std::move(Out));
}

std::string SymSubset::str() const {
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Dims[I].str();
  }
  OS << "]";
  return OS.str();
}
