//===- SymExpr.cpp - Symbolic expression canonicalization -----------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "symbolic/SymExpr.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace dcir;
using namespace dcir::sym;

//===----------------------------------------------------------------------===//
// Node plumbing
//===----------------------------------------------------------------------===//

SymExpr SymExpr::makeNode(detail::ExprNode N) {
  return SymExpr(std::make_shared<const detail::ExprNode>(std::move(N)));
}

SymExpr dcir::sym::detail::makeExpr(detail::ExprNode N) {
  return SymExpr::makeNode(std::move(N));
}

ExprKind SymExpr::kind() const {
  assert(Node && "kind() on null SymExpr");
  return Node->Kind;
}

std::int64_t SymExpr::constantValue() const {
  assert(isConstant() && "not a constant");
  return Node->Value;
}

const std::string &SymExpr::symbolName() const {
  assert(isSymbol() && "not a symbol");
  return Node->Name;
}

const std::vector<SymExpr> &SymExpr::operands() const {
  assert(Node && "operands() on null SymExpr");
  return Node->Ops;
}

bool SymExpr::isBooleanKind() const {
  if (!Node)
    return false;
  switch (Node->Kind) {
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Not:
    return true;
  default:
    return false;
  }
}

SymExpr SymExpr::constant(std::int64_t Value) {
  detail::ExprNode N;
  N.Kind = ExprKind::Constant;
  N.Value = Value;
  return makeNode(std::move(N));
}

SymExpr SymExpr::symbol(std::string Name) {
  assert(!Name.empty() && "symbol requires a name");
  detail::ExprNode N;
  N.Kind = ExprKind::Symbol;
  N.Name = std::move(Name);
  return makeNode(std::move(N));
}

//===----------------------------------------------------------------------===//
// Term decomposition helpers
//===----------------------------------------------------------------------===//

namespace {

/// A canonical additive term: integer coefficient times an optional monomial
/// (null monomial means a pure constant term).
struct Term {
  std::int64_t Coeff = 0;
  SymExpr Mono; // Never Constant, never Add, never carries a leading const.
};

} // namespace

/// Builds a canonical Mul node from a coefficient and canonical, sorted,
/// non-constant factors. Handles the degenerate cases.
static SymExpr buildMulNode(std::int64_t Coeff, std::vector<SymExpr> Factors) {
  if (Coeff == 0 || Factors.empty())
    return SymExpr::constant(Coeff);
  if (Coeff == 1 && Factors.size() == 1)
    return Factors.front();
  detail::ExprNode N;
  N.Kind = ExprKind::Mul;
  if (Coeff != 1)
    N.Ops.push_back(SymExpr::constant(Coeff));
  for (SymExpr &F : Factors)
    N.Ops.push_back(std::move(F));
  if (N.Ops.size() == 1)
    return N.Ops.front();
  return detail::makeExpr(std::move(N));
}

/// Splits an expression into (coefficient, monomial).
static Term decomposeTerm(const SymExpr &E) {
  if (E.isConstant())
    return {E.constantValue(), SymExpr()};
  if (E.kind() == ExprKind::Mul) {
    const auto &Ops = E.operands();
    if (!Ops.empty() && Ops.front().isConstant()) {
      std::vector<SymExpr> Rest(Ops.begin() + 1, Ops.end());
      return {Ops.front().constantValue(), buildMulNode(1, std::move(Rest))};
    }
  }
  return {1, E};
}

static SymExpr buildTermExpr(const Term &T) {
  if (!T.Mono)
    return SymExpr::constant(T.Coeff);
  if (T.Mono.kind() == ExprKind::Mul) {
    std::vector<SymExpr> Factors(T.Mono.operands().begin(),
                                 T.Mono.operands().end());
    return buildMulNode(T.Coeff, std::move(Factors));
  }
  return buildMulNode(T.Coeff, {T.Mono});
}

//===----------------------------------------------------------------------===//
// Addition
//===----------------------------------------------------------------------===//

SymExpr SymExpr::makeAdd(std::vector<SymExpr> Terms) {
  // Flatten nested sums and collect like terms keyed by the monomial's
  // canonical rendering.
  std::int64_t ConstSum = 0;
  std::vector<std::pair<std::string, Term>> Collected;
  auto addTerm = [&](const SymExpr &E) {
    Term T = decomposeTerm(E);
    if (!T.Mono) {
      ConstSum += T.Coeff;
      return;
    }
    std::string Key = T.Mono.str();
    for (auto &Entry : Collected) {
      if (Entry.first == Key) {
        Entry.second.Coeff += T.Coeff;
        return;
      }
    }
    Collected.push_back({std::move(Key), T});
  };
  for (const SymExpr &E : Terms) {
    assert(E && "null operand in add");
    if (E.kind() == ExprKind::Add) {
      for (const SymExpr &Sub : E.operands())
        addTerm(Sub);
    } else {
      addTerm(E);
    }
  }
  std::sort(Collected.begin(), Collected.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  std::vector<SymExpr> Out;
  for (auto &Entry : Collected)
    if (Entry.second.Coeff != 0)
      Out.push_back(buildTermExpr(Entry.second));
  if (ConstSum != 0 || Out.empty())
    Out.push_back(constant(ConstSum));
  if (Out.size() == 1)
    return Out.front();
  detail::ExprNode N;
  N.Kind = ExprKind::Add;
  N.Ops = std::move(Out);
  return makeNode(std::move(N));
}

SymExpr SymExpr::add(SymExpr L, SymExpr R) {
  assert(L && R && "null operand in add");
  return makeAdd({std::move(L), std::move(R)});
}

SymExpr SymExpr::negate(SymExpr E) { return mul(constant(-1), std::move(E)); }

SymExpr SymExpr::sub(SymExpr L, SymExpr R) {
  return add(std::move(L), negate(std::move(R)));
}

//===----------------------------------------------------------------------===//
// Multiplication
//===----------------------------------------------------------------------===//

/// Multiplies two expressions neither of which is an Add.
static SymExpr mulNonSum(const SymExpr &A, const SymExpr &B) {
  std::int64_t Coeff = 1;
  std::vector<SymExpr> Factors;
  auto absorb = [&](const SymExpr &E) {
    if (E.isConstant()) {
      Coeff *= E.constantValue();
      return;
    }
    if (E.kind() == ExprKind::Mul) {
      for (const SymExpr &F : E.operands()) {
        if (F.isConstant())
          Coeff *= F.constantValue();
        else
          Factors.push_back(F);
      }
      return;
    }
    Factors.push_back(E);
  };
  absorb(A);
  absorb(B);
  if (Coeff == 0)
    return SymExpr::constant(0);
  std::sort(Factors.begin(), Factors.end(),
            [](const SymExpr &X, const SymExpr &Y) { return X.str() < Y.str(); });
  return buildMulNode(Coeff, std::move(Factors));
}

/// Multiplies with distribution of products over sums (bounded).
static SymExpr mulPair(const SymExpr &A, const SymExpr &B) {
  size_t TermsA = A.kind() == ExprKind::Add ? A.operands().size() : 1;
  size_t TermsB = B.kind() == ExprKind::Add ? B.operands().size() : 1;
  if (TermsA * TermsB > 64) // Guard against blowup; keep unexpanded.
    return mulNonSum(A, B);
  if (A.kind() == ExprKind::Add) {
    SymExpr Acc = SymExpr::constant(0);
    for (const SymExpr &T : A.operands())
      Acc = SymExpr::add(Acc, mulPair(T, B));
    return Acc;
  }
  if (B.kind() == ExprKind::Add)
    return mulPair(B, A);
  return mulNonSum(A, B);
}

SymExpr SymExpr::makeMul(std::vector<SymExpr> Factors) {
  assert(!Factors.empty());
  SymExpr Acc = Factors.front();
  for (size_t I = 1; I < Factors.size(); ++I)
    Acc = mulPair(Acc, Factors[I]);
  return Acc;
}

SymExpr SymExpr::mul(SymExpr L, SymExpr R) {
  assert(L && R && "null operand in mul");
  return mulPair(L, R);
}

//===----------------------------------------------------------------------===//
// Division / modulo
//===----------------------------------------------------------------------===//

static std::int64_t floorDivI64(std::int64_t A, std::int64_t B) {
  std::int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

static std::int64_t floorModI64(std::int64_t A, std::int64_t B) {
  return A - floorDivI64(A, B) * B;
}

SymExpr SymExpr::floorDiv(SymExpr L, SymExpr R) {
  assert(L && R);
  if (R.isConstantValue(1))
    return L;
  if (L.isConstantValue(0))
    return L;
  if (L.isConstant() && R.isConstant() && R.constantValue() != 0)
    return constant(floorDivI64(L.constantValue(), R.constantValue()));
  if (L.equals(R) && R.provePositive())
    return constant(1);
  // (c1*x + c2*y + ...) / c where c divides every coefficient.
  if (R.isConstant() && R.constantValue() > 0) {
    std::int64_t C = R.constantValue();
    std::vector<SymExpr> TermList;
    if (L.kind() == ExprKind::Add)
      TermList = L.operands();
    else
      TermList = {L};
    bool AllDivisible = true;
    std::vector<SymExpr> Quotients;
    for (const SymExpr &T : TermList) {
      Term Tm = decomposeTerm(T);
      if (Tm.Coeff % C != 0) {
        AllDivisible = false;
        break;
      }
      Tm.Coeff /= C;
      Quotients.push_back(buildTermExpr(Tm));
    }
    if (AllDivisible && !Quotients.empty()) {
      SymExpr Acc = Quotients.front();
      for (size_t I = 1; I < Quotients.size(); ++I)
        Acc = add(Acc, Quotients[I]);
      return Acc;
    }
  }
  detail::ExprNode N;
  N.Kind = ExprKind::FloorDiv;
  N.Ops = {std::move(L), std::move(R)};
  return makeNode(std::move(N));
}

SymExpr SymExpr::mod(SymExpr L, SymExpr R) {
  assert(L && R);
  if (R.isConstantValue(1))
    return constant(0);
  if (L.isConstant() && R.isConstant() && R.constantValue() != 0)
    return constant(floorModI64(L.constantValue(), R.constantValue()));
  if (L.equals(R))
    return constant(0);
  if (R.isConstant() && R.constantValue() > 0) {
    std::int64_t C = R.constantValue();
    std::vector<SymExpr> TermList;
    if (L.kind() == ExprKind::Add)
      TermList = L.operands();
    else
      TermList = {L};
    bool AllDivisible = true;
    for (const SymExpr &T : TermList) {
      if (decomposeTerm(T).Coeff % C != 0) {
        AllDivisible = false;
        break;
      }
    }
    if (AllDivisible)
      return constant(0);
  }
  detail::ExprNode N;
  N.Kind = ExprKind::Mod;
  N.Ops = {std::move(L), std::move(R)};
  return makeNode(std::move(N));
}

//===----------------------------------------------------------------------===//
// Min / max
//===----------------------------------------------------------------------===//

SymExpr SymExpr::makeMinMax(ExprKind K, std::vector<SymExpr> Ops,
                            SymbolAssumption Assume) {
  // Flatten and deduplicate.
  std::vector<SymExpr> Flat;
  bool HaveConst = false;
  std::int64_t ConstVal = 0;
  auto absorb = [&](const SymExpr &E) {
    if (E.isConstant()) {
      if (!HaveConst) {
        HaveConst = true;
        ConstVal = E.constantValue();
      } else {
        ConstVal = K == ExprKind::Min ? std::min(ConstVal, E.constantValue())
                                      : std::max(ConstVal, E.constantValue());
      }
      return;
    }
    for (const SymExpr &F : Flat)
      if (F.equals(E))
        return;
    Flat.push_back(E);
  };
  for (const SymExpr &E : Ops) {
    if (E.kind() == K) {
      for (const SymExpr &Sub : E.operands())
        absorb(Sub);
    } else {
      absorb(E);
    }
  }
  if (HaveConst)
    Flat.push_back(constant(ConstVal));
  // Pairwise dominance elimination: in a Min, drop B if A <= B is provable.
  for (size_t I = 0; I < Flat.size(); ++I) {
    for (size_t J = 0; J < Flat.size(); ++J) {
      if (I == J)
        continue;
      SymExpr Diff = sub(Flat[J], Flat[I]); // >= 0 means Flat[I] <= Flat[J].
      // Construction folds under Unknown only: a constructed expression
      // may later be evaluated (or proven) under weaker assumptions than
      // the Positive default — e.g. runtime guard conditions where
      // max(s, -s) with a signed scalar s must NOT fold to s. Consumers
      // in an assumption regime re-simplify via simplifyUnder().
      if (Diff.proveNonNegative(Assume)) {
        // Flat[I] <= Flat[J]: Min keeps I (drop J), Max keeps J (drop I).
        size_t Drop = K == ExprKind::Min ? J : I;
        Flat.erase(Flat.begin() + Drop);
        I = static_cast<size_t>(-1); // Restart scan.
        break;
      }
    }
  }
  if (Flat.size() == 1)
    return Flat.front();
  std::sort(Flat.begin(), Flat.end(),
            [](const SymExpr &X, const SymExpr &Y) { return X.str() < Y.str(); });
  detail::ExprNode N;
  N.Kind = K;
  N.Ops = std::move(Flat);
  return makeNode(std::move(N));
}

SymExpr SymExpr::min(SymExpr L, SymExpr R) {
  assert(L && R);
  return makeMinMax(ExprKind::Min, {std::move(L), std::move(R)});
}

SymExpr SymExpr::max(SymExpr L, SymExpr R) {
  assert(L && R);
  return makeMinMax(ExprKind::Max, {std::move(L), std::move(R)});
}

//===----------------------------------------------------------------------===//
// Comparisons and booleans
//===----------------------------------------------------------------------===//

SymExpr SymExpr::makeCmp(ExprKind K, SymExpr L, SymExpr R) {
  SymExpr D = sub(L, R);
  if (D.isConstant()) {
    std::int64_t V = D.constantValue();
    bool Result = false;
    switch (K) {
    case ExprKind::Eq:
      Result = V == 0;
      break;
    case ExprKind::Ne:
      Result = V != 0;
      break;
    case ExprKind::Lt:
      Result = V < 0;
      break;
    case ExprKind::Le:
      Result = V <= 0;
      break;
    default:
      assert(false && "not a comparison");
    }
    return constant(Result ? 1 : 0);
  }
  detail::ExprNode N;
  N.Kind = K;
  N.Ops = {std::move(L), std::move(R)};
  return makeNode(std::move(N));
}

SymExpr SymExpr::eq(SymExpr L, SymExpr R) {
  return makeCmp(ExprKind::Eq, std::move(L), std::move(R));
}
SymExpr SymExpr::ne(SymExpr L, SymExpr R) {
  return makeCmp(ExprKind::Ne, std::move(L), std::move(R));
}
SymExpr SymExpr::lt(SymExpr L, SymExpr R) {
  return makeCmp(ExprKind::Lt, std::move(L), std::move(R));
}
SymExpr SymExpr::le(SymExpr L, SymExpr R) {
  return makeCmp(ExprKind::Le, std::move(L), std::move(R));
}

SymExpr SymExpr::makeAndOr(ExprKind K, std::vector<SymExpr> Ops) {
  bool IsAnd = K == ExprKind::And;
  std::vector<SymExpr> Flat;
  for (const SymExpr &E : Ops) {
    std::vector<SymExpr> Children =
        E.kind() == K ? E.operands() : std::vector<SymExpr>{E};
    for (const SymExpr &C : Children) {
      if (C.isConstant()) {
        bool V = C.constantValue() != 0;
        if (IsAnd && !V)
          return falseExpr();
        if (!IsAnd && V)
          return trueExpr();
        continue; // Identity element; drop.
      }
      bool Dup = false;
      for (const SymExpr &F : Flat)
        if (F.equals(C))
          Dup = true;
      if (!Dup)
        Flat.push_back(C);
    }
  }
  if (Flat.empty())
    return IsAnd ? trueExpr() : falseExpr();
  if (Flat.size() == 1)
    return Flat.front();
  detail::ExprNode N;
  N.Kind = K;
  N.Ops = std::move(Flat);
  return makeNode(std::move(N));
}

SymExpr SymExpr::logicalAnd(SymExpr L, SymExpr R) {
  assert(L && R);
  return makeAndOr(ExprKind::And, {std::move(L), std::move(R)});
}

SymExpr SymExpr::logicalOr(SymExpr L, SymExpr R) {
  assert(L && R);
  return makeAndOr(ExprKind::Or, {std::move(L), std::move(R)});
}

SymExpr SymExpr::logicalNot(SymExpr E) {
  assert(E);
  if (E.isConstant())
    return constant(E.constantValue() != 0 ? 0 : 1);
  switch (E.kind()) {
  case ExprKind::Not:
    return E.operands()[0];
  case ExprKind::Eq:
    return makeCmp(ExprKind::Ne, E.operands()[0], E.operands()[1]);
  case ExprKind::Ne:
    return makeCmp(ExprKind::Eq, E.operands()[0], E.operands()[1]);
  case ExprKind::Lt: // not (a < b)  ==  b <= a
    return makeCmp(ExprKind::Le, E.operands()[1], E.operands()[0]);
  case ExprKind::Le: // not (a <= b)  ==  b < a
    return makeCmp(ExprKind::Lt, E.operands()[1], E.operands()[0]);
  default:
    break;
  }
  detail::ExprNode N;
  N.Kind = ExprKind::Not;
  N.Ops = {std::move(E)};
  return makeNode(std::move(N));
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

bool SymExpr::equals(const SymExpr &Other) const {
  if (Node == Other.Node)
    return true;
  if (!Node || !Other.Node)
    return false;
  if (Node->Kind != Other.Node->Kind)
    return false;
  switch (Node->Kind) {
  case ExprKind::Constant:
    return Node->Value == Other.Node->Value;
  case ExprKind::Symbol:
    return Node->Name == Other.Node->Name;
  default:
    break;
  }
  if (Node->Ops.size() != Other.Node->Ops.size())
    return false;
  for (size_t I = 0; I < Node->Ops.size(); ++I)
    if (!Node->Ops[I].equals(Other.Node->Ops[I]))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {
int precedence(ExprKind K) {
  switch (K) {
  case ExprKind::Or:
    return 1;
  case ExprKind::And:
    return 2;
  case ExprKind::Not:
    return 3;
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
    return 4;
  case ExprKind::Add:
    return 5;
  case ExprKind::Mul:
    return 6;
  default:
    return 7;
  }
}
} // namespace

static void printExpr(const SymExpr &E, std::ostringstream &OS, int Parent);

static void printChild(const SymExpr &E, std::ostringstream &OS, int Parent) {
  int P = precedence(E.kind());
  if (P < Parent) {
    OS << "(";
    printExpr(E, OS, 0);
    OS << ")";
  } else {
    printExpr(E, OS, P);
  }
}

static void printExpr(const SymExpr &E, std::ostringstream &OS, int Parent) {
  switch (E.kind()) {
  case ExprKind::Constant:
    OS << E.constantValue();
    return;
  case ExprKind::Symbol:
    OS << E.symbolName();
    return;
  case ExprKind::Add: {
    bool First = true;
    for (const SymExpr &T : E.operands()) {
      std::ostringstream TS;
      printChild(T, TS, 5);
      std::string S = TS.str();
      if (First) {
        OS << S;
        First = false;
      } else if (!S.empty() && S[0] == '-') {
        OS << " - " << S.substr(1);
      } else {
        OS << " + " << S;
      }
    }
    return;
  }
  case ExprKind::Mul: {
    const auto &Ops = E.operands();
    size_t Start = 0;
    if (Ops.front().isConstantValue(-1) && Ops.size() > 1) {
      OS << "-";
      Start = 1;
    }
    bool First = true;
    for (size_t I = Start; I < Ops.size(); ++I) {
      if (!First)
        OS << "*";
      printChild(Ops[I], OS, 6);
      First = false;
    }
    return;
  }
  case ExprKind::FloorDiv:
    OS << "floord(";
    printExpr(E.operands()[0], OS, 0);
    OS << ", ";
    printExpr(E.operands()[1], OS, 0);
    OS << ")";
    return;
  case ExprKind::Mod:
    OS << "mod(";
    printExpr(E.operands()[0], OS, 0);
    OS << ", ";
    printExpr(E.operands()[1], OS, 0);
    OS << ")";
    return;
  case ExprKind::Min:
  case ExprKind::Max: {
    OS << (E.kind() == ExprKind::Min ? "min(" : "max(");
    bool First = true;
    for (const SymExpr &T : E.operands()) {
      if (!First)
        OS << ", ";
      printExpr(T, OS, 0);
      First = false;
    }
    OS << ")";
    return;
  }
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le: {
    printChild(E.operands()[0], OS, 5);
    switch (E.kind()) {
    case ExprKind::Eq:
      OS << " == ";
      break;
    case ExprKind::Ne:
      OS << " != ";
      break;
    case ExprKind::Lt:
      OS << " < ";
      break;
    default:
      OS << " <= ";
      break;
    }
    printChild(E.operands()[1], OS, 5);
    return;
  }
  case ExprKind::And:
  case ExprKind::Or: {
    bool First = true;
    for (const SymExpr &T : E.operands()) {
      if (!First)
        OS << (E.kind() == ExprKind::And ? " and " : " or ");
      printChild(T, OS, precedence(E.kind()) + 1);
      First = false;
    }
    return;
  }
  case ExprKind::Not:
    OS << "not ";
    printChild(E.operands()[0], OS, 4);
    return;
  }
}

std::string SymExpr::str() const {
  if (!Node)
    return "<null>";
  std::ostringstream OS;
  printExpr(*this, OS, 0);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Symbol collection / substitution / evaluation
//===----------------------------------------------------------------------===//

void SymExpr::collectSymbols(std::set<std::string> &Out) const {
  if (!Node)
    return;
  if (isSymbol()) {
    Out.insert(symbolName());
    return;
  }
  if (isConstant())
    return;
  for (const SymExpr &Op : operands())
    Op.collectSymbols(Out);
}

bool SymExpr::usesSymbol(const std::string &Name) const {
  if (!Node)
    return false;
  if (isSymbol())
    return symbolName() == Name;
  if (isConstant())
    return false;
  for (const SymExpr &Op : operands())
    if (Op.usesSymbol(Name))
      return true;
  return false;
}

SymExpr SymExpr::substitute(const std::map<std::string, SymExpr> &Map) const {
  if (!Node)
    return *this;
  switch (kind()) {
  case ExprKind::Constant:
    return *this;
  case ExprKind::Symbol: {
    auto It = Map.find(symbolName());
    return It == Map.end() ? *this : It->second;
  }
  default:
    break;
  }
  std::vector<SymExpr> NewOps;
  NewOps.reserve(operands().size());
  for (const SymExpr &Op : operands())
    NewOps.push_back(Op.substitute(Map));
  switch (kind()) {
  case ExprKind::Add:
    return makeAdd(std::move(NewOps));
  case ExprKind::Mul:
    return makeMul(std::move(NewOps));
  case ExprKind::FloorDiv:
    return floorDiv(NewOps[0], NewOps[1]);
  case ExprKind::Mod:
    return mod(NewOps[0], NewOps[1]);
  case ExprKind::Min:
    return makeMinMax(ExprKind::Min, std::move(NewOps));
  case ExprKind::Max:
    return makeMinMax(ExprKind::Max, std::move(NewOps));
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
    return makeCmp(kind(), NewOps[0], NewOps[1]);
  case ExprKind::And:
  case ExprKind::Or:
    return makeAndOr(kind(), std::move(NewOps));
  case ExprKind::Not:
    return logicalNot(NewOps[0]);
  default:
    assert(false && "unhandled kind in substitute");
    return *this;
  }
}

SymExpr SymExpr::simplifyUnder(SymbolAssumption Assume) const {
  if (!Node || isConstant() || isSymbol())
    return *this;
  std::vector<SymExpr> NewOps;
  NewOps.reserve(operands().size());
  for (const SymExpr &Op : operands())
    NewOps.push_back(Op.simplifyUnder(Assume));
  switch (kind()) {
  case ExprKind::Add:
    return makeAdd(std::move(NewOps));
  case ExprKind::Mul:
    return makeMul(std::move(NewOps));
  case ExprKind::FloorDiv:
    return floorDiv(NewOps[0], NewOps[1]);
  case ExprKind::Mod:
    return mod(NewOps[0], NewOps[1]);
  case ExprKind::Min:
  case ExprKind::Max:
    return makeMinMax(kind(), std::move(NewOps), Assume);
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
    return makeCmp(kind(), NewOps[0], NewOps[1]);
  case ExprKind::And:
  case ExprKind::Or:
    return makeAndOr(kind(), std::move(NewOps));
  case ExprKind::Not:
    return logicalNot(NewOps[0]);
  default:
    assert(false && "unhandled kind in simplifyUnder");
    return *this;
  }
}

SymExpr SymExpr::substituteValues(
    const std::map<std::string, std::int64_t> &Env) const {
  if (!Node)
    return *this;
  // Only build constants for symbols that actually occur: substitute()
  // re-simplifies bottom-up, so the result is fully constant-folded.
  std::set<std::string> Used;
  collectSymbols(Used);
  std::map<std::string, SymExpr> Map;
  for (const std::string &S : Used) {
    auto It = Env.find(S);
    if (It != Env.end())
      Map.emplace(S, SymExpr::constant(It->second));
  }
  if (Map.empty())
    return *this;
  return substitute(Map);
}

std::optional<std::int64_t>
SymExpr::evaluate(const std::map<std::string, std::int64_t> &Env) const {
  if (!Node)
    return std::nullopt;
  switch (kind()) {
  case ExprKind::Constant:
    return constantValue();
  case ExprKind::Symbol: {
    auto It = Env.find(symbolName());
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  default:
    break;
  }
  std::vector<std::int64_t> Vals;
  Vals.reserve(operands().size());
  for (const SymExpr &Op : operands()) {
    auto V = Op.evaluate(Env);
    if (!V)
      return std::nullopt;
    Vals.push_back(*V);
  }
  switch (kind()) {
  case ExprKind::Add: {
    std::int64_t S = 0;
    for (std::int64_t V : Vals)
      S += V;
    return S;
  }
  case ExprKind::Mul: {
    std::int64_t P = 1;
    for (std::int64_t V : Vals)
      P *= V;
    return P;
  }
  case ExprKind::FloorDiv:
    if (Vals[1] == 0)
      return std::nullopt;
    return floorDivI64(Vals[0], Vals[1]);
  case ExprKind::Mod:
    if (Vals[1] == 0)
      return std::nullopt;
    return floorModI64(Vals[0], Vals[1]);
  case ExprKind::Min:
    return *std::min_element(Vals.begin(), Vals.end());
  case ExprKind::Max:
    return *std::max_element(Vals.begin(), Vals.end());
  case ExprKind::Eq:
    return Vals[0] == Vals[1] ? 1 : 0;
  case ExprKind::Ne:
    return Vals[0] != Vals[1] ? 1 : 0;
  case ExprKind::Lt:
    return Vals[0] < Vals[1] ? 1 : 0;
  case ExprKind::Le:
    return Vals[0] <= Vals[1] ? 1 : 0;
  case ExprKind::And: {
    for (std::int64_t V : Vals)
      if (V == 0)
        return 0;
    return 1;
  }
  case ExprKind::Or: {
    for (std::int64_t V : Vals)
      if (V != 0)
        return 1;
    return 0;
  }
  case ExprKind::Not:
    return Vals[0] == 0 ? 1 : 0;
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Positivity analysis and proving
//===----------------------------------------------------------------------===//

/// A conservative lower bound for sums: constants count exactly, monomials
/// of nonnegative factors count their minimum (coeff * 1 per positive
/// symbol under the Positive assumption). Returns nullopt when unbounded
/// below (negative coefficients on symbolic terms).
static std::optional<std::int64_t> termLowerBound(const SymExpr &E,
                                                  SymbolAssumption Assume) {
  if (E.isConstant())
    return E.constantValue();
  if (Assume == SymbolAssumption::Unknown)
    return std::nullopt;
  std::int64_t SymbolMin = Assume == SymbolAssumption::Positive ? 1 : 0;
  if (E.isSymbol())
    return SymbolMin;
  if (E.kind() == ExprKind::Mul) {
    std::int64_t Coeff = 1;
    std::int64_t Min = 1;
    for (const SymExpr &F : E.operands()) {
      if (F.isConstant()) {
        Coeff *= F.constantValue();
        continue;
      }
      if (!F.proveNonNegative(Assume))
        return std::nullopt;
      Min *= SymbolMin;
    }
    if (Coeff < 0)
      return std::nullopt;
    return Coeff * Min;
  }
  if (E.proveNonNegative(Assume))
    return 0;
  return std::nullopt;
}

bool SymExpr::proveNonNegative(SymbolAssumption Assume) const {
  if (!Node)
    return false;
  switch (kind()) {
  case ExprKind::Constant:
    return constantValue() >= 0;
  case ExprKind::Symbol:
    return Assume != SymbolAssumption::Unknown;
  case ExprKind::Add: {
    std::int64_t Lb = 0;
    for (const SymExpr &Op : operands()) {
      auto T = termLowerBound(Op, Assume);
      if (!T)
        return false;
      Lb += *T;
    }
    return Lb >= 0;
  }
  case ExprKind::Mul: {
    for (const SymExpr &Op : operands())
      if (!Op.proveNonNegative(Assume))
        return false;
    return true;
  }
  case ExprKind::FloorDiv:
    return operands()[0].proveNonNegative(Assume) &&
           operands()[1].provePositive(Assume);
  case ExprKind::Mod:
    // Floor-mod sign follows the divisor.
    return operands()[1].provePositive(Assume);
  case ExprKind::Min: {
    for (const SymExpr &Op : operands())
      if (!Op.proveNonNegative(Assume))
        return false;
    return true;
  }
  case ExprKind::Max: {
    for (const SymExpr &Op : operands())
      if (Op.proveNonNegative(Assume))
        return true;
    return false;
  }
  // Boolean results are 0/1.
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Lt:
  case ExprKind::Le:
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Not:
    return true;
  }
  return false;
}

bool SymExpr::provePositive(SymbolAssumption Assume) const {
  if (!Node)
    return false;
  switch (kind()) {
  case ExprKind::Constant:
    return constantValue() > 0;
  case ExprKind::Symbol:
    return Assume == SymbolAssumption::Positive;
  case ExprKind::Add: {
    std::int64_t Lb = 0;
    for (const SymExpr &Op : operands()) {
      auto T = termLowerBound(Op, Assume);
      if (!T)
        return false;
      Lb += *T;
    }
    return Lb >= 1;
  }
  case ExprKind::Mul: {
    for (const SymExpr &Op : operands())
      if (!Op.provePositive(Assume))
        return false;
    return true;
  }
  case ExprKind::FloorDiv:
    // floor(l / r) >= 1 iff l >= r (for positive r).
    return operands()[1].provePositive(Assume) &&
           sub(operands()[0], operands()[1]).proveNonNegative(Assume);
  case ExprKind::Min: {
    for (const SymExpr &Op : operands())
      if (!Op.provePositive(Assume))
        return false;
    return true;
  }
  case ExprKind::Max: {
    for (const SymExpr &Op : operands())
      if (Op.provePositive(Assume))
        return true;
    return false;
  }
  default:
    return false;
  }
}

std::optional<bool> SymExpr::tryProve(SymbolAssumption Assume) const {
  if (!Node)
    return std::nullopt;
  switch (kind()) {
  case ExprKind::Constant:
    return constantValue() != 0;
  case ExprKind::Eq: {
    SymExpr D = sub(operands()[0], operands()[1]);
    if (D.isConstant())
      return D.constantValue() == 0;
    if (D.provePositive(Assume) || negate(D).provePositive(Assume))
      return false;
    return std::nullopt;
  }
  case ExprKind::Ne: {
    auto EqResult =
        makeCmp(ExprKind::Eq, operands()[0], operands()[1]).tryProve(Assume);
    if (!EqResult)
      return std::nullopt;
    return !*EqResult;
  }
  case ExprKind::Lt: {
    SymExpr D = sub(operands()[1], operands()[0]);
    if (D.provePositive(Assume))
      return true;
    if (negate(D).proveNonNegative(Assume))
      return false;
    return std::nullopt;
  }
  case ExprKind::Le: {
    SymExpr D = sub(operands()[1], operands()[0]);
    if (D.proveNonNegative(Assume))
      return true;
    if (negate(D).provePositive(Assume))
      return false;
    return std::nullopt;
  }
  case ExprKind::And: {
    bool AllTrue = true;
    for (const SymExpr &Op : operands()) {
      auto R = Op.tryProve(Assume);
      if (R && !*R)
        return false;
      if (!R)
        AllTrue = false;
    }
    if (AllTrue)
      return true;
    return std::nullopt;
  }
  case ExprKind::Or: {
    bool AllFalse = true;
    for (const SymExpr &Op : operands()) {
      auto R = Op.tryProve(Assume);
      if (R && *R)
        return true;
      if (!R)
        AllFalse = false;
    }
    if (AllFalse)
      return false;
    return std::nullopt;
  }
  case ExprKind::Not: {
    auto R = operands()[0].tryProve(Assume);
    if (!R)
      return std::nullopt;
    return !*R;
  }
  default: {
    // Integer used as boolean: nonzero means true.
    if (provePositive(Assume) || negate(*this).provePositive(Assume))
      return true;
    return std::nullopt;
  }
  }
}

//===----------------------------------------------------------------------===//
// Linear decomposition and solving
//===----------------------------------------------------------------------===//

bool SymExpr::linearIn(const std::string &Name, SymExpr &A, SymExpr &B) const {
  if (!Node)
    return false;
  if (!usesSymbol(Name)) {
    A = constant(0);
    B = *this;
    return true;
  }
  std::vector<SymExpr> TermList;
  if (kind() == ExprKind::Add)
    TermList = operands();
  else
    TermList = {*this};

  SymExpr CoefAcc = constant(0);
  SymExpr RestAcc = constant(0);
  for (const SymExpr &T : TermList) {
    if (!T.usesSymbol(Name)) {
      RestAcc = add(RestAcc, T);
      continue;
    }
    Term Tm = decomposeTerm(T);
    if (!Tm.Mono)
      return false; // Constant cannot use the symbol; unreachable.
    if (Tm.Mono.isSymbol() && Tm.Mono.symbolName() == Name) {
      CoefAcc = add(CoefAcc, constant(Tm.Coeff));
      continue;
    }
    if (Tm.Mono.kind() != ExprKind::Mul)
      return false; // Symbol occurs inside floordiv/mod/min/max.
    int Degree = 0;
    std::vector<SymExpr> Others;
    for (const SymExpr &F : Tm.Mono.operands()) {
      if (F.isSymbol() && F.symbolName() == Name) {
        ++Degree;
        continue;
      }
      if (F.usesSymbol(Name))
        return false; // Nested occurrence.
      Others.push_back(F);
    }
    if (Degree != 1)
      return false;
    CoefAcc = add(CoefAcc, buildMulNode(Tm.Coeff, std::move(Others)));
  }
  A = CoefAcc;
  B = RestAcc;
  return true;
}

std::optional<SymExpr> SymExpr::solveFor(const std::string &Name) const {
  if (!Node || kind() != ExprKind::Eq)
    return std::nullopt;
  SymExpr D = sub(operands()[0], operands()[1]);
  SymExpr A, B;
  if (!D.linearIn(Name, A, B))
    return std::nullopt;
  if (!A.isConstant())
    return std::nullopt;
  std::int64_t Coef = A.constantValue();
  if (Coef == 0)
    return std::nullopt;
  // A*x + B == 0  =>  x == -B / A.
  if (Coef == 1)
    return negate(B);
  if (Coef == -1)
    return B;
  if (B.isConstant() && B.constantValue() % Coef == 0)
    return constant(-B.constantValue() / Coef);
  return std::nullopt;
}
