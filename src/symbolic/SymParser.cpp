//===- SymParser.cpp --------------------------------------------------------===//

#include "symbolic/SymParser.h"

#include <cctype>
#include <cstdlib>
#include <string>

using namespace dcir;
using namespace dcir::sym;

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  SymExpr run(std::string *ErrorMessage) {
    SymExpr E = parseOr();
    skipSpace();
    if (E && Pos != Text.size())
      fail("trailing characters after expression");
    if (!Error.empty()) {
      if (ErrorMessage)
        *ErrorMessage = Error;
      return SymExpr();
    }
    return E;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  std::string Error;

  void fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at offset " + std::to_string(Pos);
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(std::string_view Tok) {
    skipSpace();
    if (Text.substr(Pos, Tok.size()) != Tok)
      return false;
    // Keywords must not glue onto identifier characters.
    if (std::isalpha(static_cast<unsigned char>(Tok[0]))) {
      size_t After = Pos + Tok.size();
      if (After < Text.size() &&
          (std::isalnum(static_cast<unsigned char>(Text[After])) ||
           Text[After] == '_'))
        return false;
    }
    Pos += Tok.size();
    return true;
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  SymExpr parseOr() {
    SymExpr L = parseAnd();
    if (!L)
      return L;
    while (consume("or")) {
      SymExpr R = parseAnd();
      if (!R)
        return R;
      L = SymExpr::logicalOr(L, R);
    }
    return L;
  }

  SymExpr parseAnd() {
    SymExpr L = parseNot();
    if (!L)
      return L;
    while (consume("and")) {
      SymExpr R = parseNot();
      if (!R)
        return R;
      L = SymExpr::logicalAnd(L, R);
    }
    return L;
  }

  SymExpr parseNot() {
    if (consume("not")) {
      SymExpr E = parseNot();
      if (!E)
        return E;
      return SymExpr::logicalNot(E);
    }
    return parseCmp();
  }

  SymExpr parseCmp() {
    SymExpr L = parseAddSub();
    if (!L)
      return L;
    skipSpace();
    if (consume("=="))
      return withRhs(L, [](SymExpr A, SymExpr B) { return SymExpr::eq(A, B); });
    if (consume("!="))
      return withRhs(L, [](SymExpr A, SymExpr B) { return SymExpr::ne(A, B); });
    if (consume("<="))
      return withRhs(L, [](SymExpr A, SymExpr B) { return SymExpr::le(A, B); });
    if (consume(">="))
      return withRhs(L, [](SymExpr A, SymExpr B) { return SymExpr::ge(A, B); });
    if (consume("<"))
      return withRhs(L, [](SymExpr A, SymExpr B) { return SymExpr::lt(A, B); });
    if (consume(">"))
      return withRhs(L, [](SymExpr A, SymExpr B) { return SymExpr::gt(A, B); });
    return L;
  }

  template <typename Fn> SymExpr withRhs(SymExpr L, Fn Combine) {
    SymExpr R = parseAddSub();
    if (!R)
      return R;
    return Combine(L, R);
  }

  SymExpr parseAddSub() {
    SymExpr L = parseMulDiv();
    if (!L)
      return L;
    while (true) {
      skipSpace();
      if (consume("+")) {
        SymExpr R = parseMulDiv();
        if (!R)
          return R;
        L = SymExpr::add(L, R);
      } else if (peek() == '-' && Text.substr(Pos, 2) != "->") {
        ++Pos;
        SymExpr R = parseMulDiv();
        if (!R)
          return R;
        L = SymExpr::sub(L, R);
      } else {
        return L;
      }
    }
  }

  SymExpr parseMulDiv() {
    SymExpr L = parseUnary();
    if (!L)
      return L;
    while (true) {
      skipSpace();
      if (consume("*")) {
        SymExpr R = parseUnary();
        if (!R)
          return R;
        L = SymExpr::mul(L, R);
      } else if (consume("/")) {
        SymExpr R = parseUnary();
        if (!R)
          return R;
        L = SymExpr::floorDiv(L, R);
      } else if (consume("%")) {
        SymExpr R = parseUnary();
        if (!R)
          return R;
        L = SymExpr::mod(L, R);
      } else {
        return L;
      }
    }
  }

  SymExpr parseUnary() {
    skipSpace();
    if (consume("-")) {
      SymExpr E = parseUnary();
      if (!E)
        return E;
      return SymExpr::negate(E);
    }
    return parseAtom();
  }

  SymExpr parseAtom() {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("unexpected end of expression");
      return SymExpr();
    }
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      SymExpr E = parseOr();
      if (!E)
        return E;
      if (!consume(")")) {
        fail("expected ')'");
        return SymExpr();
      }
      return E;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      std::int64_t Value =
          std::strtoll(std::string(Text.substr(Start, Pos - Start)).c_str(),
                       nullptr, 10);
      return SymExpr::constant(Value);
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      std::string Name(Text.substr(Start, Pos - Start));
      if (Name == "min" || Name == "max" || Name == "floord" ||
          Name == "mod") {
        if (!consume("(")) {
          fail("expected '(' after " + Name);
          return SymExpr();
        }
        SymExpr A = parseOr();
        if (!A)
          return A;
        if (!consume(",")) {
          fail("expected ',' in " + Name);
          return SymExpr();
        }
        SymExpr B = parseOr();
        if (!B)
          return B;
        if (!consume(")")) {
          fail("expected ')' to close " + Name);
          return SymExpr();
        }
        if (Name == "min")
          return SymExpr::min(A, B);
        if (Name == "max")
          return SymExpr::max(A, B);
        if (Name == "floord")
          return SymExpr::floorDiv(A, B);
        return SymExpr::mod(A, B);
      }
      if (Name == "true")
        return SymExpr::trueExpr();
      if (Name == "false")
        return SymExpr::falseExpr();
      return SymExpr::symbol(std::move(Name));
    }
    fail(std::string("unexpected character '") + C + "'");
    return SymExpr();
  }
};

} // namespace

SymExpr dcir::sym::parseSymExpr(std::string_view Text,
                                std::string *ErrorMessage) {
  Parser P(Text);
  return P.run(ErrorMessage);
}
