//===- StringUtils.h - Small string helpers -------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef DCIR_SUPPORT_STRINGUTILS_H
#define DCIR_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace dcir {

/// Splits \p Text at every occurrence of \p Sep (the separator is dropped).
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Strips ASCII whitespace from both ends.
std::string_view trimString(std::string_view Text);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Reads an entire file into a string. Returns false on I/O failure.
bool readFileToString(const std::string &Path, std::string &Out);

} // namespace dcir

#endif // DCIR_SUPPORT_STRINGUTILS_H
