//===- StringUtils.cpp ----------------------------------------------------===//

#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace dcir;

std::vector<std::string> dcir::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find(Sep, Start);
    if (End == std::string_view::npos) {
      Parts.emplace_back(Text.substr(Start));
      break;
    }
    Parts.emplace_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Parts;
}

std::string_view dcir::trimString(std::string_view Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool dcir::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string dcir::joinStrings(const std::vector<std::string> &Parts,
                              std::string_view Sep) {
  std::ostringstream OS;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      OS << Sep;
    OS << Parts[I];
  }
  return OS.str();
}

bool dcir::readFileToString(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream OS;
  OS << In.rdbuf();
  Out = OS.str();
  return true;
}
