//===- Diagnostics.h - Source locations and diagnostic engine ------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting shared by the C frontend, the IR parser, and verifiers.
/// The project builds without exceptions; fallible components report through
/// a DiagnosticEngine and return null/false on failure.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SUPPORT_DIAGNOSTICS_H
#define DCIR_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace dcir {

/// A 1-based line/column position inside a named buffer.
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const;
};

/// Severity of a reported diagnostic.
enum class DiagSeverity { Error, Warning, Note };

/// One reported message with its position.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics emitted during a fallible phase (parsing,
/// verification, conversion). Callers inspect hasErrors() afterwards.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace dcir

#endif // DCIR_SUPPORT_DIAGNOSTICS_H
