//===- Casting.h - Kind-based isa/cast/dyn_cast helpers ------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-style RTTI replacement. A class hierarchy participates by
/// providing `static bool classof(const Base *)` on each derived class; the
/// templates below then provide `isa<>`, `cast<>` and `dyn_cast<>` without
/// enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SUPPORT_CASTING_H
#define DCIR_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace dcir {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  if (!Val || !isa<To>(Val))
    return nullptr;
  return static_cast<To *>(Val);
}

/// Downcast that returns null when the dynamic type does not match (const).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  if (!Val || !isa<To>(Val))
    return nullptr;
  return static_cast<const To *>(Val);
}

} // namespace dcir

#endif // DCIR_SUPPORT_CASTING_H
