//===- Type.cpp ------------------------------------------------------------===//

#include "ir/Type.h"

#include <cassert>
#include <sstream>

using namespace dcir;
using namespace dcir::ir;

TypeKind Type::getKind() const {
  assert(Impl && "getKind() on null type");
  return Impl->getKind();
}

sym::SymExpr SdfgArrayType::getNumElements() const {
  sym::SymExpr N = sym::SymExpr::constant(1);
  for (const sym::SymExpr &D : Shape)
    N = sym::SymExpr::mul(N, D);
  return N;
}

std::string Type::str() const {
  if (!Impl)
    return "<<null-type>>";
  std::ostringstream OS;
  switch (Impl->getKind()) {
  case TypeKind::Integer:
    OS << "i" << cast<IntegerType>(Impl)->getWidth();
    break;
  case TypeKind::Float:
    OS << "f" << cast<FloatType>(Impl)->getWidth();
    break;
  case TypeKind::Index:
    OS << "index";
    break;
  case TypeKind::MemRef: {
    const auto *M = cast<MemRefType>(Impl);
    OS << "memref<";
    for (std::int64_t D : M->getShape()) {
      if (D == MemRefType::kDynamic)
        OS << "?";
      else
        OS << D;
      OS << "x";
    }
    OS << M->getElementType().str() << ">";
    break;
  }
  case TypeKind::SdfgArray: {
    const auto *A = cast<SdfgArrayType>(Impl);
    OS << "!sdfg.array<";
    for (const sym::SymExpr &D : A->getShape()) {
      if (D.isConstant())
        OS << D.constantValue();
      else
        OS << "sym(\"" << D.str() << "\")";
      OS << "x";
    }
    OS << A->getElementType().str() << ">";
    break;
  }
  case TypeKind::SdfgStream: {
    const auto *S = cast<SdfgStreamType>(Impl);
    OS << "!sdfg.stream<" << S->getElementType().str() << ">";
    break;
  }
  case TypeKind::Function: {
    const auto *F = cast<FunctionType>(Impl);
    OS << "(";
    const auto &Ins = F->getInputs();
    for (size_t I = 0; I < Ins.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Ins[I].str();
    }
    OS << ") -> (";
    const auto &Outs = F->getResults();
    for (size_t I = 0; I < Outs.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Outs[I].str();
    }
    OS << ")";
    break;
  }
  }
  return OS.str();
}
