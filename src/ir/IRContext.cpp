//===- IRContext.cpp ---------------------------------------------------------===//

#include "ir/IRContext.h"

#include <cassert>

using namespace dcir;
using namespace dcir::ir;

IRContext::IRContext() = default;
IRContext::~IRContext() = default;

Type IRContext::uniqueType(std::unique_ptr<TypeStorage> Storage) {
  std::string Key = Type(Storage.get()).str();
  auto It = TypeUniquer.find(Key);
  if (It != TypeUniquer.end())
    return Type(It->second.get());
  const TypeStorage *Raw = Storage.get();
  TypeUniquer.emplace(std::move(Key), std::move(Storage));
  return Type(Raw);
}

Type IRContext::getIntegerType(unsigned Width) {
  return uniqueType(std::make_unique<IntegerType>(Width));
}

Type IRContext::getFloatType(unsigned Width) {
  assert((Width == 32 || Width == 64) && "only f32/f64 supported");
  return uniqueType(std::make_unique<FloatType>(Width));
}

Type IRContext::getIndexType() {
  return uniqueType(std::make_unique<IndexType>());
}

Type IRContext::getMemRefType(Type Elem, std::vector<std::int64_t> Shape) {
  assert(Elem.isScalar() && "memref elements must be scalar");
  return uniqueType(std::make_unique<MemRefType>(Elem, std::move(Shape)));
}

Type IRContext::getSdfgArrayType(Type Elem,
                                 std::vector<sym::SymExpr> Shape) {
  assert(Elem.isScalar() && "sdfg.array elements must be scalar");
  return uniqueType(std::make_unique<SdfgArrayType>(Elem, std::move(Shape)));
}

Type IRContext::getSdfgStreamType(Type Elem) {
  assert(Elem.isScalar() && "sdfg.stream elements must be scalar");
  return uniqueType(std::make_unique<SdfgStreamType>(Elem));
}

Type IRContext::getFunctionType(std::vector<Type> Inputs,
                                std::vector<Type> Results) {
  return uniqueType(
      std::make_unique<FunctionType>(std::move(Inputs), std::move(Results)));
}

void IRContext::registerOp(OpDefinition Def) {
  assert(!Def.Name.empty() && "op definition requires a name");
  [[maybe_unused]] auto Inserted =
      OpRegistry.emplace(Def.Name, std::move(Def));
  assert(Inserted.second && "duplicate op registration");
}

const OpDefinition *IRContext::lookupOp(const std::string &Name) const {
  auto It = OpRegistry.find(Name);
  return It == OpRegistry.end() ? nullptr : &It->second;
}
