//===- Verifier.h - Structural and per-op IR verification -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_VERIFIER_H
#define DCIR_IR_VERIFIER_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

namespace dcir {
namespace ir {

/// Verifies SSA visibility (defs precede uses; isolated regions see nothing
/// from above), terminator placement, region counts, and runs registered
/// per-op verifiers. Returns true when \p Root verifies cleanly.
bool verify(Operation *Root, DiagnosticEngine &Diags);

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_VERIFIER_H
