//===- Attribute.cpp --------------------------------------------------------===//

#include "ir/Attribute.h"

#include <cassert>
#include <iomanip>
#include <sstream>

using namespace dcir;
using namespace dcir::ir;

namespace dcir {
namespace ir {
namespace detail {
struct AttrFactory {
  static Attribute make(AttrStorage Storage) {
    return Attribute(
        std::make_shared<const AttrStorage>(std::move(Storage)));
  }
};
} // namespace detail
} // namespace ir
} // namespace dcir

static Attribute makeAttr(detail::AttrStorage Storage) {
  return detail::AttrFactory::make(std::move(Storage));
}

Attribute Attribute::getInt(std::int64_t Value) {
  detail::AttrStorage S;
  S.Kind = AttrKind::Integer;
  S.IntValue = Value;
  return makeAttr(std::move(S));
}

Attribute Attribute::getFloat(double Value) {
  detail::AttrStorage S;
  S.Kind = AttrKind::Float;
  S.FloatValue = Value;
  return makeAttr(std::move(S));
}

Attribute Attribute::getBool(bool Value) {
  detail::AttrStorage S;
  S.Kind = AttrKind::Bool;
  S.BoolValue = Value;
  return makeAttr(std::move(S));
}

Attribute Attribute::getString(std::string Value) {
  detail::AttrStorage S;
  S.Kind = AttrKind::String;
  S.StringValue = std::move(Value);
  return makeAttr(std::move(S));
}

Attribute Attribute::getType(Type Value) {
  detail::AttrStorage S;
  S.Kind = AttrKind::TypeAttr;
  S.TypeValue = Value;
  return makeAttr(std::move(S));
}

Attribute Attribute::getSymExpr(sym::SymExpr Value) {
  detail::AttrStorage S;
  S.Kind = AttrKind::SymExpr;
  S.SymValue = std::move(Value);
  return makeAttr(std::move(S));
}

Attribute Attribute::getSymSubset(sym::SymSubset Value) {
  detail::AttrStorage S;
  S.Kind = AttrKind::SymSubset;
  S.SubsetValue = std::move(Value);
  return makeAttr(std::move(S));
}

Attribute Attribute::getArray(std::vector<Attribute> Values) {
  detail::AttrStorage S;
  S.Kind = AttrKind::Array;
  S.ArrayValue = std::move(Values);
  return makeAttr(std::move(S));
}

Attribute Attribute::getUnit() {
  detail::AttrStorage S;
  S.Kind = AttrKind::Unit;
  return makeAttr(std::move(S));
}

AttrKind Attribute::getKind() const {
  assert(Impl && "getKind() on null attribute");
  return Impl->Kind;
}

std::int64_t Attribute::asInt() const {
  assert(getKind() == AttrKind::Integer && "not an integer attribute");
  return Impl->IntValue;
}

double Attribute::asFloat() const {
  assert(getKind() == AttrKind::Float && "not a float attribute");
  return Impl->FloatValue;
}

bool Attribute::asBool() const {
  assert(getKind() == AttrKind::Bool && "not a bool attribute");
  return Impl->BoolValue;
}

const std::string &Attribute::asString() const {
  assert(getKind() == AttrKind::String && "not a string attribute");
  return Impl->StringValue;
}

Type Attribute::asType() const {
  assert(getKind() == AttrKind::TypeAttr && "not a type attribute");
  return Impl->TypeValue;
}

const sym::SymExpr &Attribute::asSymExpr() const {
  assert(getKind() == AttrKind::SymExpr && "not a symbolic attribute");
  return Impl->SymValue;
}

const sym::SymSubset &Attribute::asSymSubset() const {
  assert(getKind() == AttrKind::SymSubset && "not a subset attribute");
  return Impl->SubsetValue;
}

const std::vector<Attribute> &Attribute::asArray() const {
  assert(getKind() == AttrKind::Array && "not an array attribute");
  return Impl->ArrayValue;
}

bool Attribute::equals(const Attribute &Other) const {
  if (Impl == Other.Impl)
    return true;
  if (!Impl || !Other.Impl)
    return false;
  if (Impl->Kind != Other.Impl->Kind)
    return false;
  return str() == Other.str();
}

static void escapeInto(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\';
    OS << C;
  }
}

std::string Attribute::str() const {
  if (!Impl)
    return "<<null-attr>>";
  std::ostringstream OS;
  switch (Impl->Kind) {
  case AttrKind::Integer:
    OS << Impl->IntValue;
    break;
  case AttrKind::Float:
    OS << std::setprecision(17) << Impl->FloatValue;
    if (OS.str().find('.') == std::string::npos &&
        OS.str().find('e') == std::string::npos &&
        OS.str().find("inf") == std::string::npos &&
        OS.str().find("nan") == std::string::npos)
      OS << ".0";
    break;
  case AttrKind::Bool:
    OS << (Impl->BoolValue ? "true" : "false");
    break;
  case AttrKind::String:
    OS << '"';
    escapeInto(OS, Impl->StringValue);
    OS << '"';
    break;
  case AttrKind::TypeAttr:
    OS << Impl->TypeValue.str();
    break;
  case AttrKind::SymExpr:
    OS << "sym(\"" << Impl->SymValue.str() << "\")";
    break;
  case AttrKind::SymSubset:
    OS << "subset(\"" << Impl->SubsetValue.str() << "\")";
    break;
  case AttrKind::Array: {
    OS << "[";
    for (size_t I = 0; I < Impl->ArrayValue.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Impl->ArrayValue[I].str();
    }
    OS << "]";
    break;
  }
  case AttrKind::Unit:
    OS << "unit";
    break;
  }
  return OS.str();
}
