//===- Verifier.cpp -----------------------------------------------------------===//

#include "ir/Verifier.h"

#include <set>

using namespace dcir;
using namespace dcir::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(DiagnosticEngine &Diags) : Diags(Diags) {}

  bool verifyOp(Operation *Op, std::set<Value *> &Visible) {
    bool Ok = true;
    // Operand visibility.
    for (size_t I = 0; I < Op->getNumOperands(); ++I) {
      if (!Visible.count(Op->getOperand(I))) {
        Diags.error(Op->getLoc(), "operand #" + std::to_string(I) + " of '" +
                                      Op->getName() +
                                      "' is not visible at its use");
        Ok = false;
      }
    }
    const OpDefinition *Def = Op->getDefinition();
    if (Def && Def->NumRegions >= 0 &&
        Op->getNumRegions() != static_cast<size_t>(Def->NumRegions)) {
      Diags.error(Op->getLoc(),
                  "'" + Op->getName() + "' expects " +
                      std::to_string(Def->NumRegions) + " region(s), has " +
                      std::to_string(Op->getNumRegions()));
      Ok = false;
    }
    // Recurse into regions.
    bool Isolated = Def && Def->IsIsolatedFromAbove;
    for (size_t R = 0; R < Op->getNumRegions(); ++R) {
      std::set<Value *> Inner;
      if (!Isolated)
        Inner = Visible;
      if (!verifyRegion(Op->getRegion(R), Inner))
        Ok = false;
    }
    // Per-op verifier runs after structure checks.
    if (Def && Def->Verify && !Def->Verify(Op, Diags))
      Ok = false;
    // Results become visible to subsequent ops.
    for (size_t I = 0; I < Op->getNumResults(); ++I)
      Visible.insert(Op->getResult(I));
    return Ok;
  }

  bool verifyRegion(Region &R, std::set<Value *> &Visible) {
    bool Ok = true;
    for (size_t BI = 0; BI < R.getNumBlocks(); ++BI) {
      Block *B = R.getBlock(BI);
      std::set<Value *> BlockVisible = Visible;
      for (size_t I = 0; I < B->getNumArguments(); ++I)
        BlockVisible.insert(B->getArgument(I));
      for (auto &Op : *B) {
        // Terminators may only appear last.
        if (Op->isTerminator() && Op.get() != B->back()) {
          Diags.error(Op->getLoc(), "terminator '" + Op->getName() +
                                        "' is not the last operation in its "
                                        "block");
          Ok = false;
        }
        if (!verifyOp(Op.get(), BlockVisible))
          Ok = false;
      }
    }
    return Ok;
  }

private:
  DiagnosticEngine &Diags;
};

} // namespace

bool dcir::ir::verify(Operation *Root, DiagnosticEngine &Diags) {
  VerifierImpl V(Diags);
  std::set<Value *> Visible;
  unsigned Before = Diags.errorCount();
  V.verifyOp(Root, Visible);
  return Diags.errorCount() == Before;
}
