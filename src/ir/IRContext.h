//===- IRContext.h - Type uniquing and operation registry -----------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IRContext owns all uniqued types and the registry of known operations
/// (the "dialects"). Every IR entity is created against a context; contexts
/// are not thread-safe and are intended to live for a whole compilation.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_IRCONTEXT_H
#define DCIR_IR_IRCONTEXT_H

#include "ir/Type.h"
#include "support/Diagnostics.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace dcir {
namespace ir {

class Operation;

/// Registered metadata for one operation name (e.g. "arith.addi").
/// Dialects add one OpDefinition per op; generic passes consult the traits.
struct OpDefinition {
  std::string Name;
  /// Terminators must appear last in their block.
  bool IsTerminator = false;
  /// Pure ops have no side effects and can be CSE'd/DCE'd freely.
  bool IsPure = false;
  /// Regions of isolated ops may not reference values defined outside
  /// (func.func, sdfg.sdfg, sdfg.tasklet).
  bool IsIsolatedFromAbove = false;
  /// Number of regions the op must carry (-1: any).
  int NumRegions = 0;
  /// Optional structural/type verifier; reports through the engine and
  /// returns false on failure.
  std::function<bool(Operation *, DiagnosticEngine &)> Verify;
};

/// Owns uniqued types and the op registry.
class IRContext {
public:
  IRContext();
  ~IRContext();
  IRContext(const IRContext &) = delete;
  IRContext &operator=(const IRContext &) = delete;

  //===--------------------------------------------------------------------===
  // Types
  //===--------------------------------------------------------------------===

  Type getIntegerType(unsigned Width);
  Type getI1Type() { return getIntegerType(1); }
  Type getI32Type() { return getIntegerType(32); }
  Type getI64Type() { return getIntegerType(64); }
  Type getFloatType(unsigned Width);
  Type getF32Type() { return getFloatType(32); }
  Type getF64Type() { return getFloatType(64); }
  Type getIndexType();
  Type getMemRefType(Type Elem, std::vector<std::int64_t> Shape);
  Type getSdfgArrayType(Type Elem, std::vector<sym::SymExpr> Shape);
  Type getSdfgStreamType(Type Elem);
  Type getFunctionType(std::vector<Type> Inputs, std::vector<Type> Results);

  //===--------------------------------------------------------------------===
  // Operation registry
  //===--------------------------------------------------------------------===

  /// Registers an operation definition; asserts on duplicates.
  void registerOp(OpDefinition Def);
  /// Returns the definition for \p Name, or null if unregistered.
  const OpDefinition *lookupOp(const std::string &Name) const;

  /// Returns a fresh integer for naming (symbols, temporaries).
  unsigned nextUniqueId() { return UniqueId++; }

private:
  Type uniqueType(std::unique_ptr<TypeStorage> Storage);

  std::unordered_map<std::string, std::unique_ptr<TypeStorage>> TypeUniquer;
  std::map<std::string, OpDefinition> OpRegistry;
  unsigned UniqueId = 0;
};

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_IRCONTEXT_H
