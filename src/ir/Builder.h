//===- Builder.h - Operation construction helper ---------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpBuilder tracks an insertion point inside a block and creates operations
/// there, mirroring mlir::OpBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_BUILDER_H
#define DCIR_IR_BUILDER_H

#include "ir/IR.h"

namespace dcir {
namespace ir {

/// Creates operations at a movable insertion point.
class OpBuilder {
public:
  explicit OpBuilder(IRContext &Ctx) : Ctx(Ctx) {}

  IRContext &getContext() { return Ctx; }

  /// Inserts subsequent ops at the end of \p B.
  void setInsertionPointToEnd(Block *B) {
    InsertBlock = B;
    InsertBeforeOp = nullptr;
  }
  /// Inserts subsequent ops immediately before \p Op.
  void setInsertionPoint(Operation *Op) {
    InsertBlock = Op->getParentBlock();
    InsertBeforeOp = Op;
  }
  /// Inserts subsequent ops immediately after \p Op.
  void setInsertionPointAfter(Operation *Op) {
    InsertBlock = Op->getParentBlock();
    InsertBeforeOp = Op->getNextInBlock();
  }

  Block *getInsertionBlock() const { return InsertBlock; }

  /// Creates and inserts an operation at the current point.
  Operation *create(std::string Name, SourceLoc Loc,
                    std::vector<Value *> Operands,
                    std::vector<Type> ResultTypes,
                    Operation::AttrMap Attrs = {}, unsigned NumRegions = 0) {
    Operation *Op =
        Operation::create(Ctx, std::move(Name), Loc, std::move(Operands),
                          std::move(ResultTypes), std::move(Attrs),
                          NumRegions);
    insert(Op);
    return Op;
  }

  /// Inserts an already-created detached operation at the current point.
  void insert(Operation *Op) {
    assert(InsertBlock && "no insertion point set");
    if (InsertBeforeOp)
      InsertBlock->insertBefore(Op, InsertBeforeOp);
    else
      InsertBlock->push_back(Op);
  }

private:
  IRContext &Ctx;
  Block *InsertBlock = nullptr;
  Operation *InsertBeforeOp = nullptr;
};

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_BUILDER_H
