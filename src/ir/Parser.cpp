//===- Parser.cpp --------------------------------------------------------------===//

#include "ir/Parser.h"

#include "support/StringUtils.h"
#include "symbolic/SymParser.h"
#include "symbolic/SymRange.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace dcir;
using namespace dcir::ir;

namespace {

enum class TokKind {
  Ident,
  ValueId, // %name
  Integer,
  FloatLit,
  String,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Colon,
  Comma,
  Equal,
  Arrow,
  Caret,
  Bang,
  Minus,
  Eof,
  Error
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  SourceLoc Loc;
};

class Lexer {
public:
  Lexer(std::string_view Text) : Text(Text) {}

  const Token &peek() {
    if (!Buffered) {
      Next = lexOne();
      Buffered = true;
    }
    return Next;
  }

  Token take() {
    const Token &T = peek();
    Token Out = T;
    Buffered = false;
    return Out;
  }

  SourceLoc loc() const { return {Line, Col}; }

  /// Consumes raw characters until the matching closer for an already
  /// consumed '<'. Quotes are respected; nesting of <> is tracked.
  std::string scanBalancedAngle() {
    assert(!Buffered && "cannot raw-scan with a buffered token");
    std::string Out;
    int Depth = 1;
    bool InString = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (InString) {
        if (C == '\\' && Pos + 1 < Text.size()) {
          Out += C;
          advance();
          Out += Text[Pos];
          advance();
          continue;
        }
        if (C == '"')
          InString = false;
      } else if (C == '"') {
        InString = true;
      } else if (C == '<') {
        ++Depth;
      } else if (C == '>') {
        --Depth;
        if (Depth == 0) {
          advance();
          return Out;
        }
      }
      Out += C;
      advance();
    }
    return Out; // Unterminated; parser reports the error.
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  int Line = 1, Col = 1;
  Token Next;
  bool Buffered = false;

  void advance() {
    if (Pos < Text.size()) {
      if (Text[Pos] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++Pos;
    }
  }

  void skipSpaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          advance();
        continue;
      }
      break;
    }
  }

  Token lexOne() {
    skipSpaceAndComments();
    Token T;
    T.Loc = {Line, Col};
    if (Pos >= Text.size()) {
      T.Kind = TokKind::Eof;
      return T;
    }
    char C = Text[Pos];
    auto single = [&](TokKind K) {
      T.Kind = K;
      T.Text = std::string(1, C);
      advance();
      return T;
    };
    switch (C) {
    case '(':
      return single(TokKind::LParen);
    case ')':
      return single(TokKind::RParen);
    case '{':
      return single(TokKind::LBrace);
    case '}':
      return single(TokKind::RBrace);
    case '[':
      return single(TokKind::LBracket);
    case ']':
      return single(TokKind::RBracket);
    case '<':
      return single(TokKind::Less);
    case '>':
      return single(TokKind::Greater);
    case ':':
      return single(TokKind::Colon);
    case ',':
      return single(TokKind::Comma);
    case '=':
      return single(TokKind::Equal);
    case '^':
      return single(TokKind::Caret);
    case '!':
      return single(TokKind::Bang);
    default:
      break;
    }
    if (C == '-') {
      if (Pos + 1 < Text.size() && Text[Pos + 1] == '>') {
        advance();
        advance();
        T.Kind = TokKind::Arrow;
        T.Text = "->";
        return T;
      }
      return single(TokKind::Minus);
    }
    if (C == '%') {
      advance();
      std::string Name;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_')) {
        Name += Text[Pos];
        advance();
      }
      T.Kind = TokKind::ValueId;
      T.Text = std::move(Name);
      return T;
    }
    if (C == '"') {
      advance();
      std::string S;
      while (Pos < Text.size() && Text[Pos] != '"') {
        if (Text[Pos] == '\\' && Pos + 1 < Text.size()) {
          advance();
          S += Text[Pos];
          advance();
          continue;
        }
        S += Text[Pos];
        advance();
      }
      if (Pos < Text.size())
        advance(); // closing quote
      T.Kind = TokKind::String;
      T.Text = std::move(S);
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Num;
      bool IsFloat = false;
      while (Pos < Text.size()) {
        char D = Text[Pos];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          Num += D;
          advance();
          continue;
        }
        if (D == '.' || D == 'e' || D == 'E' ||
            ((D == '+' || D == '-') && !Num.empty() &&
             (Num.back() == 'e' || Num.back() == 'E'))) {
          IsFloat = true;
          Num += D;
          advance();
          continue;
        }
        break;
      }
      T.Kind = IsFloat ? TokKind::FloatLit : TokKind::Integer;
      T.Text = std::move(Num);
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Id;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_' || Text[Pos] == '.')) {
        Id += Text[Pos];
        advance();
      }
      T.Kind = TokKind::Ident;
      T.Text = std::move(Id);
      return T;
    }
    T.Kind = TokKind::Error;
    T.Text = std::string(1, C);
    advance();
    return T;
  }
};

/// Splits \p Text at top-level occurrences of \p Sep (parentheses, brackets,
/// and quotes suppress splitting).
std::vector<std::string> splitTopLevel(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  std::string Cur;
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (InString) {
      Cur += C;
      if (C == '\\' && I + 1 < Text.size()) {
        Cur += Text[++I];
        continue;
      }
      if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"') {
      InString = true;
      Cur += C;
      continue;
    }
    if (C == '(' || C == '[' || C == '<')
      ++Depth;
    if (C == ')' || C == ']' || C == '>')
      --Depth;
    if (C == Sep && Depth == 0) {
      Parts.push_back(Cur);
      Cur.clear();
      continue;
    }
    Cur += C;
  }
  Parts.push_back(Cur);
  return Parts;
}

class IRParser {
public:
  IRParser(std::string_view Text, IRContext &Ctx, DiagnosticEngine &Diags)
      : Lex(Text), Ctx(Ctx), Diags(Diags) {}

  Operation *parseTopLevel() {
    Operation *Op = parseOperation();
    if (!Op)
      return nullptr;
    if (Lex.peek().Kind != TokKind::Eof) {
      error("expected end of input after top-level operation");
      Operation::eraseDetached(Op);
      return nullptr;
    }
    return Op;
  }

  Type parseTypePublic() { return parseType(); }

private:
  Lexer Lex;
  IRContext &Ctx;
  DiagnosticEngine &Diags;
  std::map<std::string, Value *> ValueMap;
  bool Failed = false;

  void error(const std::string &Message) {
    if (!Failed)
      Diags.error(Lex.loc(), Message);
    Failed = true;
  }

  bool expect(TokKind K, const char *What) {
    if (Lex.peek().Kind != K) {
      error(std::string("expected ") + What + ", found '" + Lex.peek().Text +
            "'");
      return false;
    }
    Lex.take();
    return true;
  }

  //===------------------------------------------------------------------===//
  // Types
  //===------------------------------------------------------------------===//

  Type parseScalarTypeFromString(std::string_view S) {
    std::string T(trimString(S));
    if (T == "index")
      return Ctx.getIndexType();
    if (T.size() >= 2 && T[0] == 'i') {
      bool AllDigits = true;
      for (size_t I = 1; I < T.size(); ++I)
        if (!std::isdigit(static_cast<unsigned char>(T[I])))
          AllDigits = false;
      if (AllDigits)
        return Ctx.getIntegerType(
            static_cast<unsigned>(std::strtoul(T.c_str() + 1, nullptr, 10)));
    }
    if (T == "f32")
      return Ctx.getF32Type();
    if (T == "f64")
      return Ctx.getF64Type();
    return Type();
  }

  /// Parses the body of memref<...>: "?x100xf64".
  Type parseMemRefBody(const std::string &Body) {
    std::vector<std::string> Parts = splitTopLevel(Body, 'x');
    if (Parts.empty()) {
      error("empty memref body");
      return Type();
    }
    Type Elem = parseScalarTypeFromString(Parts.back());
    if (!Elem) {
      error("invalid memref element type '" + Parts.back() + "'");
      return Type();
    }
    std::vector<std::int64_t> Shape;
    for (size_t I = 0; I + 1 < Parts.size(); ++I) {
      std::string D(trimString(Parts[I]));
      if (D == "?") {
        Shape.push_back(MemRefType::kDynamic);
        continue;
      }
      char *EndPtr = nullptr;
      std::int64_t V = std::strtoll(D.c_str(), &EndPtr, 10);
      if (!EndPtr || *EndPtr != '\0') {
        error("invalid memref dimension '" + D + "'");
        return Type();
      }
      Shape.push_back(V);
    }
    return Ctx.getMemRefType(Elem, std::move(Shape));
  }

  /// Parses the body of !sdfg.array<...>: `sym("N")x4xf64`.
  Type parseSdfgArrayBody(const std::string &Body) {
    std::vector<std::string> Parts = splitTopLevel(Body, 'x');
    if (Parts.empty()) {
      error("empty sdfg.array body");
      return Type();
    }
    Type Elem = parseScalarTypeFromString(Parts.back());
    if (!Elem) {
      error("invalid sdfg.array element type '" + Parts.back() + "'");
      return Type();
    }
    std::vector<sym::SymExpr> Shape;
    for (size_t I = 0; I + 1 < Parts.size(); ++I) {
      std::string D(trimString(Parts[I]));
      if (startsWith(D, "sym(")) {
        // sym("expr")
        size_t Open = D.find('"');
        size_t Close = D.rfind('"');
        if (Open == std::string::npos || Close <= Open) {
          error("malformed sym(...) dimension '" + D + "'");
          return Type();
        }
        std::string ErrMsg;
        sym::SymExpr E =
            sym::parseSymExpr(D.substr(Open + 1, Close - Open - 1), &ErrMsg);
        if (!E) {
          error("invalid symbolic dimension: " + ErrMsg);
          return Type();
        }
        Shape.push_back(E);
        continue;
      }
      char *EndPtr = nullptr;
      std::int64_t V = std::strtoll(D.c_str(), &EndPtr, 10);
      if (!EndPtr || *EndPtr != '\0' || D.empty()) {
        error("invalid sdfg.array dimension '" + D + "'");
        return Type();
      }
      Shape.push_back(sym::SymExpr::constant(V));
    }
    return Ctx.getSdfgArrayType(Elem, std::move(Shape));
  }

  Type parseType() {
    const Token &T = Lex.peek();
    if (T.Kind == TokKind::Ident) {
      std::string Name = Lex.take().Text;
      if (Name == "memref") {
        if (!expect(TokKind::Less, "'<' after memref"))
          return Type();
        std::string Body = Lex.scanBalancedAngle();
        return parseMemRefBody(Body);
      }
      Type Scalar = parseScalarTypeFromString(Name);
      if (Scalar)
        return Scalar;
      error("unknown type '" + Name + "'");
      return Type();
    }
    if (T.Kind == TokKind::Bang) {
      Lex.take();
      if (Lex.peek().Kind != TokKind::Ident) {
        error("expected dialect type name after '!'");
        return Type();
      }
      std::string Name = Lex.take().Text;
      if (!expect(TokKind::Less, "'<' in dialect type"))
        return Type();
      std::string Body = Lex.scanBalancedAngle();
      if (Name == "sdfg.array")
        return parseSdfgArrayBody(Body);
      if (Name == "sdfg.stream") {
        Type Elem = parseScalarTypeFromString(Body);
        if (!Elem) {
          error("invalid stream element type '" + Body + "'");
          return Type();
        }
        return Ctx.getSdfgStreamType(Elem);
      }
      error("unknown dialect type '!" + Name + "'");
      return Type();
    }
    if (T.Kind == TokKind::LParen) {
      // Function type: (types) -> (types)
      std::vector<Type> Ins, Outs;
      if (!parseTypeList(Ins))
        return Type();
      if (!expect(TokKind::Arrow, "'->' in function type"))
        return Type();
      if (!parseTypeList(Outs))
        return Type();
      return Ctx.getFunctionType(std::move(Ins), std::move(Outs));
    }
    error("expected a type, found '" + T.Text + "'");
    return Type();
  }

  bool parseTypeList(std::vector<Type> &Out) {
    if (!expect(TokKind::LParen, "'('"))
      return false;
    if (Lex.peek().Kind == TokKind::RParen) {
      Lex.take();
      return true;
    }
    while (true) {
      Type T = parseType();
      if (!T)
        return false;
      Out.push_back(T);
      if (Lex.peek().Kind == TokKind::Comma) {
        Lex.take();
        continue;
      }
      return expect(TokKind::RParen, "')'");
    }
  }

  //===------------------------------------------------------------------===//
  // Attributes
  //===------------------------------------------------------------------===//

  Attribute parseAttr() {
    const Token &T = Lex.peek();
    switch (T.Kind) {
    case TokKind::Minus: {
      Lex.take();
      const Token &N = Lex.peek();
      if (N.Kind == TokKind::Integer) {
        std::int64_t V = std::strtoll(Lex.take().Text.c_str(), nullptr, 10);
        return Attribute::getInt(-V);
      }
      if (N.Kind == TokKind::FloatLit) {
        double V = std::strtod(Lex.take().Text.c_str(), nullptr);
        return Attribute::getFloat(-V);
      }
      error("expected number after '-'");
      return Attribute();
    }
    case TokKind::Integer:
      return Attribute::getInt(
          std::strtoll(Lex.take().Text.c_str(), nullptr, 10));
    case TokKind::FloatLit:
      return Attribute::getFloat(std::strtod(Lex.take().Text.c_str(), nullptr));
    case TokKind::String:
      return Attribute::getString(Lex.take().Text);
    case TokKind::LBracket: {
      Lex.take();
      std::vector<Attribute> Elems;
      if (Lex.peek().Kind == TokKind::RBracket) {
        Lex.take();
        return Attribute::getArray({});
      }
      while (true) {
        Attribute A = parseAttr();
        if (!A)
          return Attribute();
        Elems.push_back(A);
        if (Lex.peek().Kind == TokKind::Comma) {
          Lex.take();
          continue;
        }
        if (!expect(TokKind::RBracket, "']'"))
          return Attribute();
        return Attribute::getArray(std::move(Elems));
      }
    }
    case TokKind::Bang:
    case TokKind::LParen: {
      Type Ty = parseType();
      if (!Ty)
        return Attribute();
      return Attribute::getType(Ty);
    }
    case TokKind::Ident: {
      const std::string &Name = T.Text;
      if (Name == "true") {
        Lex.take();
        return Attribute::getBool(true);
      }
      if (Name == "false") {
        Lex.take();
        return Attribute::getBool(false);
      }
      if (Name == "unit") {
        Lex.take();
        return Attribute::getUnit();
      }
      if (Name == "sym") {
        Lex.take();
        if (!expect(TokKind::LParen, "'(' after sym"))
          return Attribute();
        if (Lex.peek().Kind != TokKind::String) {
          error("expected string inside sym(...)");
          return Attribute();
        }
        std::string Body = Lex.take().Text;
        if (!expect(TokKind::RParen, "')' after sym"))
          return Attribute();
        std::string ErrMsg;
        sym::SymExpr E = sym::parseSymExpr(Body, &ErrMsg);
        if (!E) {
          error("invalid symbolic expression: " + ErrMsg);
          return Attribute();
        }
        return Attribute::getSymExpr(E);
      }
      if (Name == "subset") {
        Lex.take();
        if (!expect(TokKind::LParen, "'(' after subset"))
          return Attribute();
        if (Lex.peek().Kind != TokKind::String) {
          error("expected string inside subset(...)");
          return Attribute();
        }
        std::string Body = Lex.take().Text;
        if (!expect(TokKind::RParen, "')' after subset"))
          return Attribute();
        sym::SymSubset Subset;
        if (!parseSubsetString(Body, Subset))
          return Attribute();
        return Attribute::getSymSubset(Subset);
      }
      // Otherwise assume a type attribute.
      Type Ty = parseType();
      if (!Ty)
        return Attribute();
      return Attribute::getType(Ty);
    }
    default:
      error("expected an attribute value, found '" + T.Text + "'");
      return Attribute();
    }
  }

  bool parseSubsetString(const std::string &Body, sym::SymSubset &Out) {
    std::string_view Inner = trimString(Body);
    if (Inner.size() < 2 || Inner.front() != '[' || Inner.back() != ']') {
      error("subset must be of the form [ranges]");
      return false;
    }
    Inner = Inner.substr(1, Inner.size() - 2);
    std::vector<sym::SymRange> Ranges;
    if (trimString(Inner).empty()) {
      Out = sym::SymSubset(std::move(Ranges));
      return true;
    }
    for (const std::string &RangeText : splitTopLevel(Inner, ',')) {
      std::vector<std::string> Parts = splitTopLevel(RangeText, ':');
      auto parsePart = [&](const std::string &P) -> sym::SymExpr {
        std::string ErrMsg;
        sym::SymExpr E = sym::parseSymExpr(trimString(P), &ErrMsg);
        if (!E)
          error("invalid range expression: " + ErrMsg);
        return E;
      };
      if (Parts.size() == 1) {
        sym::SymExpr I = parsePart(Parts[0]);
        if (!I)
          return false;
        Ranges.push_back(sym::SymRange::index(I));
      } else if (Parts.size() == 2 || Parts.size() == 3) {
        sym::SymExpr B = parsePart(Parts[0]);
        sym::SymExpr E = parsePart(Parts[1]);
        if (!B || !E)
          return false;
        if (Parts.size() == 3) {
          sym::SymExpr S = parsePart(Parts[2]);
          if (!S)
            return false;
          Ranges.push_back(sym::SymRange(B, E, S));
        } else {
          Ranges.push_back(sym::SymRange(B, E));
        }
      } else {
        error("invalid range '" + RangeText + "'");
        return false;
      }
    }
    Out = sym::SymSubset(std::move(Ranges));
    return true;
  }

  //===------------------------------------------------------------------===//
  // Operations
  //===------------------------------------------------------------------===//

  Operation *parseOperation() {
    // Optional results.
    std::vector<std::string> ResultNames;
    if (Lex.peek().Kind == TokKind::ValueId) {
      while (true) {
        ResultNames.push_back(Lex.take().Text);
        if (Lex.peek().Kind == TokKind::Comma) {
          Lex.take();
          continue;
        }
        break;
      }
      if (!expect(TokKind::Equal, "'=' after result list"))
        return nullptr;
    }
    if (Lex.peek().Kind != TokKind::Ident) {
      error("expected operation name");
      return nullptr;
    }
    SourceLoc Loc = Lex.peek().Loc;
    std::string OpName = Lex.take().Text;
    // Operands.
    std::vector<Value *> Operands;
    if (Lex.peek().Kind == TokKind::ValueId) {
      while (true) {
        std::string Name = Lex.take().Text;
        auto It = ValueMap.find(Name);
        if (It == ValueMap.end()) {
          error("use of undefined value '%" + Name + "'");
          return nullptr;
        }
        Operands.push_back(It->second);
        if (Lex.peek().Kind == TokKind::Comma) {
          Lex.take();
          continue;
        }
        break;
      }
    }
    // Attributes.
    Operation::AttrMap Attrs;
    if (Lex.peek().Kind == TokKind::LBrace) {
      // Distinguish an attribute dict from a region: a dict starts with
      // `ident =`. Regions may only appear after the type signature, so any
      // '{' here is a dict.
      Lex.take();
      if (Lex.peek().Kind != TokKind::RBrace) {
        while (true) {
          if (Lex.peek().Kind != TokKind::Ident) {
            error("expected attribute name");
            return nullptr;
          }
          std::string Key = Lex.take().Text;
          if (!expect(TokKind::Equal, "'=' after attribute name"))
            return nullptr;
          Attribute Val = parseAttr();
          if (!Val)
            return nullptr;
          Attrs[Key] = Val;
          if (Lex.peek().Kind == TokKind::Comma) {
            Lex.take();
            continue;
          }
          break;
        }
      }
      if (!expect(TokKind::RBrace, "'}' after attributes"))
        return nullptr;
    }
    // Type signature.
    if (!expect(TokKind::Colon, "':' before type signature"))
      return nullptr;
    std::vector<Type> OperandTypes, ResultTypes;
    if (!parseTypeList(OperandTypes))
      return nullptr;
    if (!expect(TokKind::Arrow, "'->' in type signature"))
      return nullptr;
    if (!parseTypeList(ResultTypes))
      return nullptr;
    if (OperandTypes.size() != Operands.size()) {
      error("operand count mismatch in type signature of '" + OpName + "'");
      return nullptr;
    }
    if (ResultTypes.size() != ResultNames.size()) {
      error("result count mismatch in type signature of '" + OpName + "'");
      return nullptr;
    }
    Operation *Op = Operation::create(Ctx, OpName, Loc, Operands, ResultTypes,
                                      std::move(Attrs), 0);
    for (size_t I = 0; I < ResultNames.size(); ++I) {
      if (ValueMap.count(ResultNames[I])) {
        error("redefinition of value '%" + ResultNames[I] + "'");
        Operation::eraseDetached(Op);
        return nullptr;
      }
      ValueMap[ResultNames[I]] = Op->getResult(I);
    }
    // Regions.
    while (Lex.peek().Kind == TokKind::LBrace) {
      Lex.take();
      Region *R = Op->addRegion();
      if (!parseRegionBody(*R)) {
        Operation::eraseDetached(Op);
        return nullptr;
      }
    }
    return Op;
  }

  bool parseRegionBody(Region &R) {
    Block *Current = nullptr;
    while (true) {
      TokKind K = Lex.peek().Kind;
      if (K == TokKind::RBrace) {
        Lex.take();
        return true;
      }
      if (K == TokKind::Eof) {
        error("unexpected end of input inside region");
        return false;
      }
      if (K == TokKind::Caret) {
        Lex.take();
        Current = R.addBlock();
        if (!expect(TokKind::LParen, "'(' in block header"))
          return false;
        if (Lex.peek().Kind != TokKind::RParen) {
          while (true) {
            if (Lex.peek().Kind != TokKind::ValueId) {
              error("expected block argument name");
              return false;
            }
            std::string Name = Lex.take().Text;
            if (!expect(TokKind::Colon, "':' after block argument"))
              return false;
            Type Ty = parseType();
            if (!Ty)
              return false;
            BlockArgument *Arg = Current->addArgument(Ty);
            if (ValueMap.count(Name)) {
              error("redefinition of value '%" + Name + "'");
              return false;
            }
            ValueMap[Name] = Arg;
            if (Lex.peek().Kind == TokKind::Comma) {
              Lex.take();
              continue;
            }
            break;
          }
        }
        if (!expect(TokKind::RParen, "')' in block header"))
          return false;
        if (!expect(TokKind::Colon, "':' after block header"))
          return false;
        continue;
      }
      if (!Current)
        Current = R.addBlock();
      Operation *Op = parseOperation();
      if (!Op)
        return false;
      Current->push_back(Op);
    }
  }
};

} // namespace

Operation *dcir::ir::parseSourceString(std::string_view Text, IRContext &Ctx,
                                       DiagnosticEngine &Diags) {
  IRParser P(Text, Ctx, Diags);
  Operation *Op = P.parseTopLevel();
  if (Diags.hasErrors() && Op) {
    Operation::eraseDetached(Op);
    return nullptr;
  }
  return Op;
}

Type dcir::ir::parseTypeString(std::string_view Text, IRContext &Ctx,
                               DiagnosticEngine &Diags) {
  IRParser P(Text, Ctx, Diags);
  return P.parseTypePublic();
}
