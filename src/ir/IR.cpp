//===- IR.cpp ----------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::ir;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

Operation *Value::getDefiningOp() const {
  if (const auto *R = dyn_cast<OpResult>(this))
    return R->getOwner();
  return nullptr;
}

void Value::removeUser(Operation *Op) {
  auto It = std::find(Users.begin(), Users.end(), Op);
  assert(It != Users.end() && "removing a non-user");
  Users.erase(It);
}

void Value::replaceAllUsesWith(Value *Other) {
  assert(Other != this && "self-replacement");
  while (!Users.empty()) {
    Operation *User = Users.back();
    User->replaceUsesOfWith(this, Other);
  }
}

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

Operation *Operation::create(IRContext &Ctx, std::string Name, SourceLoc Loc,
                             std::vector<Value *> Operands,
                             std::vector<Type> ResultTypes, AttrMap Attrs,
                             unsigned NumRegions) {
  auto *Op = new Operation(Ctx, std::move(Name), Loc);
  for (Value *V : Operands) {
    assert(V && "null operand");
    Op->Operands.push_back(V);
    V->addUser(Op);
  }
  for (size_t I = 0; I < ResultTypes.size(); ++I)
    Op->Results.push_back(std::make_unique<OpResult>(
        Op, static_cast<unsigned>(I), ResultTypes[I]));
  Op->Attrs = std::move(Attrs);
  for (unsigned I = 0; I < NumRegions; ++I)
    Op->addRegion();
  return Op;
}

/// Recursively severs every operand use-link below (and including) this op,
/// making destruction order-independent.
static void dropAllReferences(Operation *Op);

Operation::~Operation() { ::dropAllReferences(this); }

static void dropAllReferences(Operation *Op) {
  for (size_t R = 0; R < Op->getNumRegions(); ++R)
    for (auto &BlockPtr : Op->getRegion(R).getBlocks())
      for (auto &Nested : *BlockPtr)
        dropAllReferences(Nested.get());
  while (Op->getNumOperands() > 0)
    Op->eraseOperand(Op->getNumOperands() - 1);
}

void Operation::setOperand(size_t I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Operation::appendOperand(Value *V) {
  assert(V && "null operand");
  Operands.push_back(V);
  V->addUser(this);
}

void Operation::eraseOperand(size_t I) {
  assert(I < Operands.size() && "operand index out of range");
  Operands[I]->removeUser(this);
  Operands.erase(Operands.begin() + I);
}

void Operation::replaceUsesOfWith(Value *From, Value *To) {
  for (size_t I = 0; I < Operands.size(); ++I)
    if (Operands[I] == From)
      setOperand(I, To);
}

bool Operation::allResultsUnused() const {
  for (const auto &R : Results)
    if (!R->useEmpty())
      return false;
  return true;
}

Attribute Operation::getAttr(const std::string &Key) const {
  auto It = Attrs.find(Key);
  return It == Attrs.end() ? Attribute() : It->second;
}

Region *Operation::addRegion() {
  Regions.push_back(std::make_unique<Region>(this));
  return Regions.back().get();
}

Operation *Operation::getParentOp() const {
  return ParentBlock ? ParentBlock->getParentOp() : nullptr;
}

void Operation::erase() {
  assert(allResultsUnused() && "erasing an operation with live uses");
  if (!ParentBlock) {
    delete this;
    return;
  }
  std::unique_ptr<Operation> Self = removeFromBlock();
  // Self's destructor runs at scope end.
}

std::unique_ptr<Operation> Operation::removeFromBlock() {
  assert(ParentBlock && "not in a block");
  std::unique_ptr<Operation> Self = std::move(*SelfIt);
  ParentBlock->Ops.erase(SelfIt);
  ParentBlock = nullptr;
  return Self;
}

void Operation::eraseDetached(Operation *Op) {
  assert(!Op->ParentBlock && "operation is attached to a block");
  delete Op;
}

void Operation::moveBefore(Operation *Other) {
  assert(ParentBlock && Other->ParentBlock && "both ops must be in blocks");
  Block *Dst = Other->ParentBlock;
  Dst->Ops.splice(Other->SelfIt, ParentBlock->Ops, SelfIt);
  ParentBlock = Dst;
}

Operation *Operation::getNextInBlock() const {
  if (!ParentBlock)
    return nullptr;
  auto It = SelfIt;
  ++It;
  return It == ParentBlock->Ops.end() ? nullptr : It->get();
}

Operation *Operation::getPrevInBlock() const {
  if (!ParentBlock || SelfIt == ParentBlock->Ops.begin())
    return nullptr;
  auto It = SelfIt;
  --It;
  return It->get();
}

bool Operation::isDescendantOf(const Operation *Ancestor) const {
  for (Operation *P = getParentOp(); P; P = P->getParentOp())
    if (P == Ancestor)
      return true;
  return false;
}

void Operation::walk(const std::function<void(Operation *)> &Fn) {
  for (auto &R : Regions)
    for (auto &B : R->getBlocks())
      for (auto &Op : *B)
        Op->walk(Fn);
  Fn(this);
}

void Operation::walkPreOrder(const std::function<void(Operation *)> &Fn) {
  Fn(this);
  for (auto &R : Regions)
    for (auto &B : R->getBlocks())
      for (auto &Op : *B)
        Op->walkPreOrder(Fn);
}

Operation *Operation::clone(std::map<Value *, Value *> &Mapping) const {
  std::vector<Value *> NewOperands;
  NewOperands.reserve(Operands.size());
  for (Value *V : Operands) {
    auto It = Mapping.find(V);
    NewOperands.push_back(It == Mapping.end() ? V : It->second);
  }
  std::vector<Type> ResultTypes;
  ResultTypes.reserve(Results.size());
  for (const auto &R : Results)
    ResultTypes.push_back(R->getType());
  Operation *New = Operation::create(Ctx, Name, Loc, std::move(NewOperands),
                                     std::move(ResultTypes), Attrs, 0);
  for (size_t I = 0; I < Results.size(); ++I)
    Mapping[Results[I].get()] = New->getResult(I);
  for (const auto &R : Regions) {
    Region *NewRegion = New->addRegion();
    for (const auto &B : R->getBlocks()) {
      Block *NewBlock = NewRegion->addBlock();
      for (size_t I = 0; I < B->getNumArguments(); ++I) {
        BlockArgument *NewArg =
            NewBlock->addArgument(B->getArgument(I)->getType());
        Mapping[B->getArgument(I)] = NewArg;
      }
      for (const auto &Op : *B)
        NewBlock->push_back(Op->clone(Mapping));
    }
  }
  return New;
}

//===----------------------------------------------------------------------===//
// Block
//===----------------------------------------------------------------------===//

Operation *Block::getParentOp() const {
  return ParentRegion ? ParentRegion->getParentOp() : nullptr;
}

BlockArgument *Block::addArgument(Type Ty) {
  Args.push_back(std::make_unique<BlockArgument>(
      this, static_cast<unsigned>(Args.size()), Ty));
  return Args.back().get();
}

void Block::eraseArgument(size_t I) {
  assert(I < Args.size() && "argument index out of range");
  assert(Args[I]->useEmpty() && "erasing an argument with live uses");
  Args.erase(Args.begin() + I);
  // Reindex the remaining arguments.
  for (size_t J = I; J < Args.size(); ++J)
    Args[J]->Index = static_cast<unsigned>(J);
}

Operation *Block::getTerminator() const {
  if (Ops.empty())
    return nullptr;
  Operation *Last = Ops.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

void Block::push_back(Operation *Op) {
  assert(!Op->ParentBlock && "operation already in a block");
  Ops.push_back(std::unique_ptr<Operation>(Op));
  Op->ParentBlock = this;
  Op->SelfIt = std::prev(Ops.end());
}

void Block::insertBefore(Operation *Op, Operation *Before) {
  assert(!Op->ParentBlock && "operation already in a block");
  assert(Before->ParentBlock == this && "insertion point not in this block");
  auto It = Ops.insert(Before->SelfIt, std::unique_ptr<Operation>(Op));
  Op->ParentBlock = this;
  Op->SelfIt = It;
}

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

Block *Region::addBlock() {
  Blocks.push_back(std::make_unique<Block>(this));
  return Blocks.back().get();
}

Block &Region::getOrCreateEntryBlock() {
  if (Blocks.empty())
    addBlock();
  return *Blocks.front();
}

//===----------------------------------------------------------------------===//
// Module helpers
//===----------------------------------------------------------------------===//

Operation *dcir::ir::createModule(IRContext &Ctx) {
  Operation *Module = Operation::create(Ctx, kModuleOpName, SourceLoc(), {},
                                        {}, {}, /*NumRegions=*/1);
  Module->getRegion(0).addBlock();
  return Module;
}

Operation *dcir::ir::lookupFunction(Operation *Module,
                                    const std::string &Name) {
  assert(Module->getName() == kModuleOpName && "not a module");
  for (auto &Op : Module->getRegion(0).front()) {
    if (Op->getName() != "func.func")
      continue;
    Attribute SymName = Op->getAttr("sym_name");
    if (SymName && SymName.asString() == Name)
      return Op.get();
  }
  return nullptr;
}
