//===- Attribute.h - Constant op metadata ---------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attributes attach compile-time-constant metadata to operations: literal
/// values, names, types, and — specific to the sdfg dialect — symbolic
/// expressions and subsets.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_ATTRIBUTE_H
#define DCIR_IR_ATTRIBUTE_H

#include "ir/Type.h"
#include "symbolic/SymRange.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dcir {
namespace ir {

/// Discriminator for attribute payloads.
enum class AttrKind {
  Integer,
  Float,
  Bool,
  String,
  TypeAttr,
  SymExpr,
  SymSubset,
  Array,
  Unit
};

class Attribute;

namespace detail {
struct AttrStorage {
  AttrKind Kind;
  std::int64_t IntValue = 0;
  double FloatValue = 0.0;
  bool BoolValue = false;
  std::string StringValue;
  Type TypeValue;
  sym::SymExpr SymValue;
  sym::SymSubset SubsetValue;
  std::vector<Attribute> ArrayValue;
};
struct AttrFactory;
} // namespace detail

/// Immutable value-semantics attribute handle. A default-constructed
/// Attribute is null, meaning "absent".
class Attribute {
public:
  Attribute() = default;

  static Attribute getInt(std::int64_t Value);
  static Attribute getFloat(double Value);
  static Attribute getBool(bool Value);
  static Attribute getString(std::string Value);
  static Attribute getType(Type Value);
  static Attribute getSymExpr(sym::SymExpr Value);
  static Attribute getSymSubset(sym::SymSubset Value);
  static Attribute getArray(std::vector<Attribute> Values);
  static Attribute getUnit();

  bool isNull() const { return !Impl; }
  explicit operator bool() const { return Impl != nullptr; }
  AttrKind getKind() const;

  std::int64_t asInt() const;
  double asFloat() const;
  bool asBool() const;
  const std::string &asString() const;
  Type asType() const;
  const sym::SymExpr &asSymExpr() const;
  const sym::SymSubset &asSymSubset() const;
  const std::vector<Attribute> &asArray() const;

  bool equals(const Attribute &Other) const;

  /// Canonical textual rendering used by the printer (and as a CSE key).
  std::string str() const;

private:
  friend struct detail::AttrFactory;
  explicit Attribute(std::shared_ptr<const detail::AttrStorage> Impl)
      : Impl(std::move(Impl)) {}
  std::shared_ptr<const detail::AttrStorage> Impl;
};

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_ATTRIBUTE_H
