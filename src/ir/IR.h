//===- IR.h - Values, operations, blocks, regions --------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core SSA IR structures mirroring MLIR: a module is an Operation holding a
/// Region of Blocks; Blocks hold Operations; Operations use Values (results
/// of other operations or block arguments) and may themselves carry nested
/// Regions. Use-def chains support replace-all-uses-with and liveness-style
/// queries needed by the control-centric passes.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_IR_H
#define DCIR_IR_IR_H

#include "ir/Attribute.h"
#include "ir/IRContext.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dcir {
namespace ir {

class Block;
class Operation;
class Region;

/// An SSA value: either an operation result or a block argument.
class Value {
public:
  enum class ValueKind { OpResult, BlockArg };

  virtual ~Value() = default;

  ValueKind getValueKind() const { return Kind; }
  Type getType() const { return Ty; }
  void setType(Type T) { Ty = T; }

  /// The operation defining this value, or null for block arguments.
  Operation *getDefiningOp() const;

  /// All operations currently using this value (with multiplicity).
  const std::vector<Operation *> &getUsers() const { return Users; }
  bool useEmpty() const { return Users.empty(); }
  bool hasOneUse() const { return Users.size() == 1; }
  size_t getNumUses() const { return Users.size(); }

  /// Rewrites every use of this value to use \p Other instead.
  void replaceAllUsesWith(Value *Other);

protected:
  Value(ValueKind Kind, Type Ty) : Kind(Kind), Ty(Ty) {}

private:
  friend class Operation;
  void addUser(Operation *Op) { Users.push_back(Op); }
  void removeUser(Operation *Op);

  ValueKind Kind;
  Type Ty;
  std::vector<Operation *> Users;
};

/// A value produced by an operation.
class OpResult : public Value {
public:
  OpResult(Operation *Owner, unsigned Index, Type Ty)
      : Value(ValueKind::OpResult, Ty), Owner(Owner), Index(Index) {}
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::OpResult;
  }

  Operation *getOwner() const { return Owner; }
  unsigned getResultIndex() const { return Index; }

private:
  Operation *Owner;
  unsigned Index;
};

/// A value carried by a block (function/region entry arguments).
class BlockArgument : public Value {
public:
  BlockArgument(Block *Owner, unsigned Index, Type Ty)
      : Value(ValueKind::BlockArg, Ty), Owner(Owner), Index(Index) {}
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::BlockArg;
  }

  Block *getOwner() const { return Owner; }
  unsigned getArgIndex() const { return Index; }

private:
  friend class Block;
  Block *Owner;
  unsigned Index;
};

/// A generic operation: name, operands, results, attributes, nested regions.
class Operation {
public:
  using AttrMap = std::map<std::string, Attribute>;

  /// Creates a detached operation. Ownership passes to the block on insert;
  /// detached operations must be deleted with eraseDetached().
  static Operation *create(IRContext &Ctx, std::string Name, SourceLoc Loc,
                           std::vector<Value *> Operands,
                           std::vector<Type> ResultTypes, AttrMap Attrs,
                           unsigned NumRegions);

  ~Operation();

  IRContext &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }
  SourceLoc getLoc() const { return Loc; }

  //===--------------------------------------------------------------------===
  // Operands
  //===--------------------------------------------------------------------===

  size_t getNumOperands() const { return Operands.size(); }
  Value *getOperand(size_t I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  const std::vector<Value *> &getOperands() const { return Operands; }
  void setOperand(size_t I, Value *V);
  void appendOperand(Value *V);
  void eraseOperand(size_t I);
  /// Replaces every operand equal to \p From with \p To.
  void replaceUsesOfWith(Value *From, Value *To);

  //===--------------------------------------------------------------------===
  // Results
  //===--------------------------------------------------------------------===

  size_t getNumResults() const { return Results.size(); }
  OpResult *getResult(size_t I) const {
    assert(I < Results.size() && "result index out of range");
    return Results[I].get();
  }
  /// True if no result of this op has any use.
  bool allResultsUnused() const;

  //===--------------------------------------------------------------------===
  // Attributes
  //===--------------------------------------------------------------------===

  Attribute getAttr(const std::string &Key) const;
  bool hasAttr(const std::string &Key) const { return bool(getAttr(Key)); }
  void setAttr(const std::string &Key, Attribute Value) {
    Attrs[Key] = std::move(Value);
  }
  void removeAttr(const std::string &Key) { Attrs.erase(Key); }
  const AttrMap &getAttrs() const { return Attrs; }

  //===--------------------------------------------------------------------===
  // Regions and position
  //===--------------------------------------------------------------------===

  size_t getNumRegions() const { return Regions.size(); }
  Region &getRegion(size_t I) {
    assert(I < Regions.size() && "region index out of range");
    return *Regions[I];
  }
  const Region &getRegion(size_t I) const { return *Regions[I]; }
  Region *addRegion();

  Block *getParentBlock() const { return ParentBlock; }
  /// The operation owning the region this op lives in (null at top level).
  Operation *getParentOp() const;

  /// Removes this op from its block and deletes it. All results must be
  /// unused.
  void erase();
  /// Removes this op from its block without deleting it; the caller owns it.
  std::unique_ptr<Operation> removeFromBlock();
  /// Deletes a detached (never inserted / removed) operation.
  static void eraseDetached(Operation *Op);

  /// Moves this operation immediately before \p Other (same or different
  /// block).
  void moveBefore(Operation *Other);

  /// The next/previous operation in the parent block (null at the ends).
  Operation *getNextInBlock() const;
  Operation *getPrevInBlock() const;

  /// Returns true if \p Ancestor is a proper ancestor (region-wise) of this.
  bool isDescendantOf(const Operation *Ancestor) const;

  /// Post-order walk over this op and every nested op (children first).
  void walk(const std::function<void(Operation *)> &Fn);
  /// Pre-order walk (parents first).
  void walkPreOrder(const std::function<void(Operation *)> &Fn);

  /// Deep-clones this operation (detached). \p Mapping maps original values
  /// to clones; operands not present map to themselves (uses of values
  /// defined above the clone root).
  Operation *clone(std::map<Value *, Value *> &Mapping) const;

  /// Registered definition, or null for unregistered names.
  const OpDefinition *getDefinition() const {
    return Ctx.lookupOp(Name);
  }
  bool isPure() const {
    const OpDefinition *Def = getDefinition();
    return Def && Def->IsPure;
  }
  bool isTerminator() const {
    const OpDefinition *Def = getDefinition();
    return Def && Def->IsTerminator;
  }

private:
  friend class Block;
  Operation(IRContext &Ctx, std::string Name, SourceLoc Loc)
      : Ctx(Ctx), Name(std::move(Name)), Loc(Loc) {}

  IRContext &Ctx;
  std::string Name;
  SourceLoc Loc;
  std::vector<Value *> Operands;
  std::vector<std::unique_ptr<OpResult>> Results;
  AttrMap Attrs;
  std::vector<std::unique_ptr<Region>> Regions;

  Block *ParentBlock = nullptr;
  std::list<std::unique_ptr<Operation>>::iterator SelfIt;
};

/// A straight-line list of operations with entry arguments.
class Block {
public:
  using OpList = std::list<std::unique_ptr<Operation>>;

  explicit Block(Region *Parent) : ParentRegion(Parent) {}
  ~Block() = default;

  Region *getParentRegion() const { return ParentRegion; }
  /// The operation owning the parent region (null for detached blocks).
  Operation *getParentOp() const;

  //===--------------------------------------------------------------------===
  // Arguments
  //===--------------------------------------------------------------------===

  BlockArgument *addArgument(Type Ty);
  size_t getNumArguments() const { return Args.size(); }
  BlockArgument *getArgument(size_t I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }
  /// Erases argument \p I; it must be unused.
  void eraseArgument(size_t I);

  //===--------------------------------------------------------------------===
  // Operations
  //===--------------------------------------------------------------------===

  bool empty() const { return Ops.empty(); }
  size_t size() const { return Ops.size(); }
  OpList::iterator begin() { return Ops.begin(); }
  OpList::iterator end() { return Ops.end(); }
  OpList::const_iterator begin() const { return Ops.begin(); }
  OpList::const_iterator end() const { return Ops.end(); }
  Operation *front() const { return Ops.front().get(); }
  Operation *back() const { return Ops.back().get(); }
  /// The trailing terminator, or null when the block is empty or its last op
  /// is not a registered terminator.
  Operation *getTerminator() const;

  /// Appends \p Op (taking ownership).
  void push_back(Operation *Op);
  /// Inserts \p Op before \p Before (taking ownership).
  void insertBefore(Operation *Op, Operation *Before);

private:
  friend class Operation;
  Region *ParentRegion;
  std::vector<std::unique_ptr<BlockArgument>> Args;
  OpList Ops;
};

/// A list of blocks owned by an operation.
class Region {
public:
  explicit Region(Operation *Parent) : ParentOp(Parent) {}

  Operation *getParentOp() const { return ParentOp; }

  bool empty() const { return Blocks.empty(); }
  size_t getNumBlocks() const { return Blocks.size(); }
  Block &front() { return *Blocks.front(); }
  const Block &front() const { return *Blocks.front(); }
  Block *getBlock(size_t I) const { return Blocks[I].get(); }
  std::vector<std::unique_ptr<Block>> &getBlocks() { return Blocks; }

  /// Appends a fresh empty block.
  Block *addBlock();

  /// Ensures a single entry block exists and returns it.
  Block &getOrCreateEntryBlock();

private:
  Operation *ParentOp;
  std::vector<std::unique_ptr<Block>> Blocks;
};

//===----------------------------------------------------------------------===//
// Module helpers
//===----------------------------------------------------------------------===//

/// The reserved name of the top-level module operation.
inline const char *kModuleOpName = "builtin.module";

/// Creates an empty module (an operation with one region, one block).
Operation *createModule(IRContext &Ctx);

/// Looks up a func.func by symbol name inside \p Module (null if missing).
Operation *lookupFunction(Operation *Module, const std::string &Name);

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_IR_H
