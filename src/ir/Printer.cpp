//===- Printer.cpp -----------------------------------------------------------===//

#include "ir/Printer.h"

#include <map>
#include <sstream>

using namespace dcir;
using namespace dcir::ir;

namespace {

class Printer {
public:
  std::string print(Operation *Op) {
    printOp(Op, 0);
    return OS.str();
  }

private:
  std::ostringstream OS;
  std::map<const Value *, std::string> Names;
  unsigned NextResult = 0;
  unsigned NextArg = 0;

  const std::string &nameOf(const Value *V) {
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string Name;
    if (V->getValueKind() == Value::ValueKind::BlockArg)
      Name = "%arg" + std::to_string(NextArg++);
    else
      Name = "%" + std::to_string(NextResult++);
    return Names.emplace(V, std::move(Name)).first->second;
  }

  void indent(int Depth) {
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }

  void printOp(Operation *Op, int Depth) {
    indent(Depth);
    // Results.
    for (size_t I = 0; I < Op->getNumResults(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << nameOf(Op->getResult(I));
    }
    if (Op->getNumResults() > 0)
      OS << " = ";
    OS << Op->getName();
    // Operands.
    for (size_t I = 0; I < Op->getNumOperands(); ++I) {
      OS << (I == 0 ? " " : ", ");
      OS << nameOf(Op->getOperand(I));
    }
    // Attributes (std::map iteration is sorted, so output is deterministic).
    if (!Op->getAttrs().empty()) {
      OS << " {";
      bool First = true;
      for (const auto &[Key, Val] : Op->getAttrs()) {
        if (!First)
          OS << ", ";
        OS << Key << " = " << Val.str();
        First = false;
      }
      OS << "}";
    }
    // Type signature.
    OS << " : (";
    for (size_t I = 0; I < Op->getNumOperands(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Op->getOperand(I)->getType().str();
    }
    OS << ") -> (";
    for (size_t I = 0; I < Op->getNumResults(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Op->getResult(I)->getType().str();
    }
    OS << ")";
    // Regions.
    for (size_t R = 0; R < Op->getNumRegions(); ++R) {
      OS << " {\n";
      printRegion(Op->getRegion(R), Depth + 1);
      indent(Depth);
      OS << "}";
    }
    OS << "\n";
  }

  void printRegion(Region &R, int Depth) {
    for (size_t BI = 0; BI < R.getNumBlocks(); ++BI) {
      Block *B = R.getBlock(BI);
      bool NeedHeader = BI > 0 || B->getNumArguments() > 0;
      if (NeedHeader) {
        indent(Depth - 1);
        OS << "^(";
        for (size_t I = 0; I < B->getNumArguments(); ++I) {
          if (I != 0)
            OS << ", ";
          BlockArgument *Arg = B->getArgument(I);
          OS << nameOf(Arg) << ": " << Arg->getType().str();
        }
        OS << "):\n";
      }
      for (auto &Op : *B)
        printOp(Op.get(), Depth);
    }
  }
};

} // namespace

std::string dcir::ir::printOperation(Operation *Op) {
  Printer P;
  return P.print(Op);
}
