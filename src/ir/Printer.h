//===- Printer.h - Textual IR emission --------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders operations in a uniform generic syntax that the companion parser
/// (Parser.h) accepts verbatim, giving exact round-trips:
///
///   %0, %1 = dialect.op %a, %b {attr = value} : (i32, i32) -> (i32, i32) {
///     ... regions ...
///   }
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_PRINTER_H
#define DCIR_IR_PRINTER_H

#include "ir/IR.h"

#include <string>

namespace dcir {
namespace ir {

/// Prints \p Op (typically a module) and everything nested inside it.
std::string printOperation(Operation *Op);

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_PRINTER_H
