//===- Parser.h - Textual IR parsing -----------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the uniform generic syntax produced by Printer.h, enabling exact
/// print/parse round-trips for tests and textual pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_PARSER_H
#define DCIR_IR_PARSER_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace dcir {
namespace ir {

/// Parses one top-level operation (typically a builtin.module). Returns null
/// on failure with diagnostics in \p Diags. The caller owns the result.
Operation *parseSourceString(std::string_view Text, IRContext &Ctx,
                             DiagnosticEngine &Diags);

/// Parses a type in printer syntax ("memref<?x4xf64>", "!sdfg.array<...>").
/// Returns a null Type on failure.
Type parseTypeString(std::string_view Text, IRContext &Ctx,
                     DiagnosticEngine &Diags);

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_PARSER_H
