//===- Type.h - Uniqued IR types ------------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of the miniature MLIR layer: integers, floats, index,
/// memrefs with (possibly dynamic) shapes, function types, and the sdfg
/// dialect's symbolically-sized array and stream types (§3.1 of the paper).
/// Type instances are uniqued inside an IRContext, so handle equality is
/// pointer equality.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_IR_TYPE_H
#define DCIR_IR_TYPE_H

#include "support/Casting.h"
#include "symbolic/SymExpr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dcir {
namespace ir {

class IRContext;

/// Discriminator for TypeStorage subclasses.
enum class TypeKind {
  Integer,
  Float,
  Index,
  MemRef,
  SdfgArray,
  SdfgStream,
  Function
};

/// Base class of all uniqued type payloads. Instances live in (and are owned
/// by) an IRContext.
class TypeStorage {
public:
  explicit TypeStorage(TypeKind Kind) : Kind(Kind) {}
  virtual ~TypeStorage() = default;

  TypeKind getKind() const { return Kind; }

private:
  TypeKind Kind;
};

/// Lightweight value handle to a uniqued TypeStorage.
class Type {
public:
  Type() = default;
  explicit Type(const TypeStorage *Impl) : Impl(Impl) {}

  bool isNull() const { return !Impl; }
  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const Type &Other) const { return Impl == Other.Impl; }
  bool operator!=(const Type &Other) const { return Impl != Other.Impl; }

  TypeKind getKind() const;
  const TypeStorage *getImpl() const { return Impl; }

  template <typename T> const T *dyn() const { return dyn_cast<T>(Impl); }
  template <typename T> bool isa() const {
    return Impl && dcir::isa<T>(Impl);
  }

  bool isInteger() const { return Impl && getKind() == TypeKind::Integer; }
  bool isFloat() const { return Impl && getKind() == TypeKind::Float; }
  bool isIndex() const { return Impl && getKind() == TypeKind::Index; }
  bool isMemRef() const { return Impl && getKind() == TypeKind::MemRef; }
  bool isSdfgArray() const { return Impl && getKind() == TypeKind::SdfgArray; }
  bool isFunction() const { return Impl && getKind() == TypeKind::Function; }
  /// True for integer/float/index: values that fit in a machine scalar.
  bool isScalar() const { return isInteger() || isFloat() || isIndex(); }

  /// Canonical rendering ("i32", "memref<?x100xf64>", ...). Also used as the
  /// uniquing key.
  std::string str() const;

private:
  const TypeStorage *Impl = nullptr;
};

/// Fixed-width signless integer type (i1, i8, i32, i64).
class IntegerType : public TypeStorage {
public:
  explicit IntegerType(unsigned Width)
      : TypeStorage(TypeKind::Integer), Width(Width) {}
  static bool classof(const TypeStorage *T) {
    return T->getKind() == TypeKind::Integer;
  }
  unsigned getWidth() const { return Width; }

private:
  unsigned Width;
};

/// IEEE float type (f32 or f64).
class FloatType : public TypeStorage {
public:
  explicit FloatType(unsigned Width)
      : TypeStorage(TypeKind::Float), Width(Width) {}
  static bool classof(const TypeStorage *T) {
    return T->getKind() == TypeKind::Float;
  }
  unsigned getWidth() const { return Width; }

private:
  unsigned Width;
};

/// Target-width index type used for sizes and subscripts.
class IndexType : public TypeStorage {
public:
  IndexType() : TypeStorage(TypeKind::Index) {}
  static bool classof(const TypeStorage *T) {
    return T->getKind() == TypeKind::Index;
  }
};

/// A memory reference with element type and shape; kDynamic encodes `?`.
class MemRefType : public TypeStorage {
public:
  static constexpr std::int64_t kDynamic = -1;

  MemRefType(Type Elem, std::vector<std::int64_t> Shape)
      : TypeStorage(TypeKind::MemRef), Elem(Elem), Shape(std::move(Shape)) {}
  static bool classof(const TypeStorage *T) {
    return T->getKind() == TypeKind::MemRef;
  }

  Type getElementType() const { return Elem; }
  const std::vector<std::int64_t> &getShape() const { return Shape; }
  size_t getRank() const { return Shape.size(); }
  bool hasDynamicDim() const {
    for (std::int64_t D : Shape)
      if (D == kDynamic)
        return true;
    return false;
  }

private:
  Type Elem;
  std::vector<std::int64_t> Shape;
};

/// The sdfg dialect's array type: shape dimensions are symbolic expressions
/// (`!sdfg.array<sym("2*N") x i32>`), enabling parametric size verification
/// (paper Fig. 3).
class SdfgArrayType : public TypeStorage {
public:
  SdfgArrayType(Type Elem, std::vector<sym::SymExpr> Shape)
      : TypeStorage(TypeKind::SdfgArray), Elem(Elem),
        Shape(std::move(Shape)) {}
  static bool classof(const TypeStorage *T) {
    return T->getKind() == TypeKind::SdfgArray;
  }

  Type getElementType() const { return Elem; }
  const std::vector<sym::SymExpr> &getShape() const { return Shape; }
  size_t getRank() const { return Shape.size(); }
  /// The total element count as a symbolic expression.
  sym::SymExpr getNumElements() const;

private:
  Type Elem;
  std::vector<sym::SymExpr> Shape;
};

/// The sdfg dialect's FIFO stream type.
class SdfgStreamType : public TypeStorage {
public:
  explicit SdfgStreamType(Type Elem)
      : TypeStorage(TypeKind::SdfgStream), Elem(Elem) {}
  static bool classof(const TypeStorage *T) {
    return T->getKind() == TypeKind::SdfgStream;
  }
  Type getElementType() const { return Elem; }

private:
  Type Elem;
};

/// Function signature type.
class FunctionType : public TypeStorage {
public:
  FunctionType(std::vector<Type> Inputs, std::vector<Type> Results)
      : TypeStorage(TypeKind::Function), Inputs(std::move(Inputs)),
        Results(std::move(Results)) {}
  static bool classof(const TypeStorage *T) {
    return T->getKind() == TypeKind::Function;
  }

  const std::vector<Type> &getInputs() const { return Inputs; }
  const std::vector<Type> &getResults() const { return Results; }

private:
  std::vector<Type> Inputs;
  std::vector<Type> Results;
};

} // namespace ir
} // namespace dcir

#endif // DCIR_IR_TYPE_H
