//===- Analysis.h - independent static soundness analyzer ---------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent static soundness analyzer over SDFGs (see DESIGN.md,
/// "Static soundness analysis"). It re-derives, from memlets and ranges
/// alone, three judgments the optimizer's own transformations rely on:
///
///   1. Race freedom per map scope: write-write and read-write conflict
///      detection across map parameters, using this module's own
///      interval/stride subset-overlap prover — any map the checker cannot
///      independently prove safe is flagged (and demotable to a serial
///      schedule by the compile gate).
///   2. Bounds safety: every memlet subset checked symbolically against
///      its container's declared shape, under bounds derived for map
///      parameters and sequential state-machine loop variables. Provable
///      out-of-bounds accesses are errors; unprovable ones are warnings.
///   3. Definite initialization: reads of transient containers that are
///      not dominated by a write (container granularity; the backends
///      zero-initialize transients, so these are warnings, not errors).
///
/// Independence rule: this module must not call into sdfgopt::Utils (or
/// any other optimizer proof helper). The optimizer proves legality to
/// justify a transformation; this analyzer re-proves safety of the
/// *result* with separately written machinery, so a prover bug cannot
/// vouch for itself. Only the IR (sdfg/) and the symbolic algebra layer
/// (symbolic/) are shared — they are the statement being checked, not the
/// proof.
///
/// Findings are structured records exported as text and JSON; the JSON
/// shape is part of the tooling ABI (bench artifacts and CI parse it).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_ANALYSIS_ANALYSIS_H
#define DCIR_ANALYSIS_ANALYSIS_H

#include "sdfg/SDFG.h"

#include <string>
#include <vector>

namespace dcir {
namespace analysis {

enum class Severity { Warning, Error };

/// What a finding is about. Race* and PrivateScalarEscape findings carry
/// the map label of the scope that could not be proven safe;
/// OutOfBounds/BoundsUnproven/RankMismatch carry the offending subset and
/// the declared shape; UninitializedRead names the reading access node.
enum class Kind {
  RaceWriteWrite,      ///< Two writes not provably disjoint across params.
  RaceReadWrite,       ///< A read and a write not provably disjoint.
  PrivateScalarEscape, ///< Privatized scalar read before any in-scope write.
  OutOfBounds,         ///< Subset provably outside the declared shape.
  BoundsUnproven,      ///< Subset not provably inside the declared shape.
  RankMismatch,        ///< Subset rank exceeds the container's rank.
  UninitializedRead    ///< Transient read not dominated by a write.
};

const char *severityName(Severity S);
const char *kindName(Kind K);

/// One structured finding. All location fields are optional ("" / -1 when
/// not applicable); Message is always set and human-readable.
struct Finding {
  Severity Sev = Severity::Warning;
  Kind K = Kind::BoundsUnproven;
  std::string State;     ///< State name ("" for graph-level findings).
  int Node = -1;         ///< Dataflow node id within State (-1 = none).
  std::string Map;       ///< Map scope label "s<state-id>:<param,...>".
  std::string Container; ///< Container the finding is about.
  std::string Subset;    ///< Offending subset, rendered.
  std::string Shape;     ///< Declared shape, rendered.
  std::string Message;   ///< Human-readable one-liner.

  /// One JSON object: {"severity":..,"kind":..,"state":..,"node":..,
  /// "map":..,"container":..,"subset":..,"shape":..,"message":..}.
  std::string json() const;
};

/// How one conjunct of a synthesized guard is checked at runtime.
enum class GuardTermKind {
  SymCond,     ///< Residual symbolic predicate over in-scope symbols.
  PtrDisjoint, ///< Byte-interval overlap test between two containers.
  Inspector    ///< Pre-loop over an index array: all values in range
               ///< and pairwise distinct.
};

const char *guardTermKindName(GuardTermKind K);

/// One conjunct of a synthesized runtime guard. Which fields are
/// meaningful depends on K:
///   SymCond      Cond — nonzero at the map's entry point means the
///                residual condition the static proof was missing holds.
///   PtrDisjoint  A, B — the two containers whose storage must not
///                overlap (the frontend's restrict contract, demoted from
///                assumption to runtime check for speculative scopes).
///   Inspector    Index / IndexExpr / Param / Target — run Param over the
///                map range, read Index[IndexExpr] each iteration, and
///                pass only if every value lies in [0, extent(Target))
///                and no value repeats (distinct iterations then write
///                distinct cells of Target).
struct GuardTerm {
  GuardTermKind K = GuardTermKind::SymCond;
  sym::SymExpr Cond;      ///< SymCond: the residual predicate.
  std::string A, B;       ///< PtrDisjoint: container pair.
  std::string Index;      ///< Inspector: index container.
  sym::SymExpr IndexExpr; ///< Inspector: subscript into Index per binding.
  std::string Param;      ///< Inspector: the driving map parameter.
  std::string Target;     ///< Inspector: the indirectly written container.

  /// Human-readable rendering ("k < 1 && -1 < k", "disjoint(A, B)",
  /// "inspect idx[i] -> out").
  std::string text() const;
  /// {"kind":..,"cond":..} / {"kind":..,"a":..,"b":..} /
  /// {"kind":..,"index":..,"index_expr":..,"param":..,"target":..}.
  std::string json() const;
};

/// A synthesized runtime guard for one map scope: the conjunction of
/// Terms implies the safety property the static analysis could not prove,
/// so codegen may multi-version the scope — parallel when every term
/// passes, the original serial order otherwise. Covered=false records a
/// scope whose failure reasons are not all expressible as runtime checks
/// (e.g. a value-dependent cross-iteration dependence); such scopes stay
/// in the demotion set and the guard object only carries the diagnosis.
struct Guard {
  std::string Map;   ///< analysis::mapLabel of the guarded scope.
  std::string State; ///< State name.
  bool Speculative = false; ///< Scope came from speculate-maps.
  bool Covered = false;     ///< Terms fully cover the failure reasons.
  /// Failure-reason taxonomy (why the static proof failed): any of
  /// "indirect-subscript", "symbolic-stride", "unknown-sign-or-trip",
  /// "may-overlap-containers", "scalar-dependence", "private-escape",
  /// "unproven-dependence".
  std::vector<std::string> Reasons;
  std::vector<GuardTerm> Terms; ///< Conjunction; all must pass.

  /// One-line human-readable rendering.
  std::string text() const;
  /// {"map":..,"state":..,"speculative":..,"covered":..,
  ///  "reasons":[..],"terms":[..]}.
  std::string json() const;
};

/// The outcome of one analysis (or of several, via append()).
struct AnalysisResult {
  std::vector<Finding> Findings;
  /// Labels (codegen::mapScopeLabel format) of map scopes the race
  /// analysis could not prove safe — the compile gate's demotion set.
  std::vector<std::string> UnprovenMaps;
  /// Synthesized runtime guards (see Guard), one per unproven or
  /// speculative map scope, filled by synthesizeGuards().
  std::vector<Guard> Guards;
  /// Deferred caller obligations: bounds comparisons against opaque
  /// extent symbols (shape symbols nothing in the graph relates to
  /// anything else) that become the binding contract instead of
  /// warnings — e.g. "C: requires s_2 >= ni*nj". Rendered strings; also
  /// exported in json().
  std::vector<std::string> Assumptions;

  unsigned errors() const;
  unsigned warnings() const;
  bool clean() const { return Findings.empty(); }
  /// True when any finding is a provable out-of-bounds error — the one
  /// class the Error gate refuses to compile (demotion cannot repair it).
  bool hasProvenOob() const;

  void append(AnalysisResult &&Other);

  /// Multi-line human-readable report ("" when clean).
  std::string text() const;
  /// {"findings":[...],"errors":N,"warnings":M,"unproven_maps":[...],
  ///  "guards":[...],"assumptions":[...]}.
  std::string json() const;
};

/// Judgment 1: race freedom of every map scope (see file comment).
AnalysisResult checkRaces(const sdfg::SDFG &G);

/// Judgment 2: bounds safety of every memlet subset, including the
/// rank-mismatch structural check.
AnalysisResult checkBounds(const sdfg::SDFG &G);

/// Judgment 3: definite initialization of transients.
AnalysisResult checkInitialization(const sdfg::SDFG &G);

/// Guard synthesis (see Guard): for every map scope that is in
/// \p R.UnprovenMaps or carries MapEntry::Speculative, re-derives *why*
/// the disjointness proof failed and, where expressible, a sound residual
/// runtime check, appended to R.Guards. Proven speculative scopes still
/// get a guard carrying only the PtrDisjoint restrict-contract terms
/// (their proof assumed containers do not alias; speculation makes that
/// assumption checkable instead of assumed).
void synthesizeGuards(const sdfg::SDFG &G, AnalysisResult &R);

/// All three judgments, concatenated, plus guard synthesis.
AnalysisResult analyze(const sdfg::SDFG &G);

/// The analyzer's own rendering of a map scope label. Kept structurally
/// identical to codegen::mapScopeLabel ("s<state-id>:<param,...>") so the
/// gate can key MapSchedule demotions off findings without including
/// codegen here — asserted equal by tests.
std::string mapLabel(const sdfg::State &S, const sdfg::MapEntry &E);

} // namespace analysis
} // namespace dcir

#endif // DCIR_ANALYSIS_ANALYSIS_H
