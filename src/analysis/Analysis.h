//===- Analysis.h - independent static soundness analyzer ---------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent static soundness analyzer over SDFGs (see DESIGN.md,
/// "Static soundness analysis"). It re-derives, from memlets and ranges
/// alone, three judgments the optimizer's own transformations rely on:
///
///   1. Race freedom per map scope: write-write and read-write conflict
///      detection across map parameters, using this module's own
///      interval/stride subset-overlap prover — any map the checker cannot
///      independently prove safe is flagged (and demotable to a serial
///      schedule by the compile gate).
///   2. Bounds safety: every memlet subset checked symbolically against
///      its container's declared shape, under bounds derived for map
///      parameters and sequential state-machine loop variables. Provable
///      out-of-bounds accesses are errors; unprovable ones are warnings.
///   3. Definite initialization: reads of transient containers that are
///      not dominated by a write (container granularity; the backends
///      zero-initialize transients, so these are warnings, not errors).
///
/// Independence rule: this module must not call into sdfgopt::Utils (or
/// any other optimizer proof helper). The optimizer proves legality to
/// justify a transformation; this analyzer re-proves safety of the
/// *result* with separately written machinery, so a prover bug cannot
/// vouch for itself. Only the IR (sdfg/) and the symbolic algebra layer
/// (symbolic/) are shared — they are the statement being checked, not the
/// proof.
///
/// Findings are structured records exported as text and JSON; the JSON
/// shape is part of the tooling ABI (bench artifacts and CI parse it).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_ANALYSIS_ANALYSIS_H
#define DCIR_ANALYSIS_ANALYSIS_H

#include "sdfg/SDFG.h"

#include <string>
#include <vector>

namespace dcir {
namespace analysis {

enum class Severity { Warning, Error };

/// What a finding is about. Race* and PrivateScalarEscape findings carry
/// the map label of the scope that could not be proven safe;
/// OutOfBounds/BoundsUnproven/RankMismatch carry the offending subset and
/// the declared shape; UninitializedRead names the reading access node.
enum class Kind {
  RaceWriteWrite,      ///< Two writes not provably disjoint across params.
  RaceReadWrite,       ///< A read and a write not provably disjoint.
  PrivateScalarEscape, ///< Privatized scalar read before any in-scope write.
  OutOfBounds,         ///< Subset provably outside the declared shape.
  BoundsUnproven,      ///< Subset not provably inside the declared shape.
  RankMismatch,        ///< Subset rank exceeds the container's rank.
  UninitializedRead    ///< Transient read not dominated by a write.
};

const char *severityName(Severity S);
const char *kindName(Kind K);

/// One structured finding. All location fields are optional ("" / -1 when
/// not applicable); Message is always set and human-readable.
struct Finding {
  Severity Sev = Severity::Warning;
  Kind K = Kind::BoundsUnproven;
  std::string State;     ///< State name ("" for graph-level findings).
  int Node = -1;         ///< Dataflow node id within State (-1 = none).
  std::string Map;       ///< Map scope label "s<state-id>:<param,...>".
  std::string Container; ///< Container the finding is about.
  std::string Subset;    ///< Offending subset, rendered.
  std::string Shape;     ///< Declared shape, rendered.
  std::string Message;   ///< Human-readable one-liner.

  /// One JSON object: {"severity":..,"kind":..,"state":..,"node":..,
  /// "map":..,"container":..,"subset":..,"shape":..,"message":..}.
  std::string json() const;
};

/// The outcome of one analysis (or of several, via append()).
struct AnalysisResult {
  std::vector<Finding> Findings;
  /// Labels (codegen::mapScopeLabel format) of map scopes the race
  /// analysis could not prove safe — the compile gate's demotion set.
  std::vector<std::string> UnprovenMaps;

  unsigned errors() const;
  unsigned warnings() const;
  bool clean() const { return Findings.empty(); }
  /// True when any finding is a provable out-of-bounds error — the one
  /// class the Error gate refuses to compile (demotion cannot repair it).
  bool hasProvenOob() const;

  void append(AnalysisResult &&Other);

  /// Multi-line human-readable report ("" when clean).
  std::string text() const;
  /// {"findings":[...],"errors":N,"warnings":M,"unproven_maps":[...]}.
  std::string json() const;
};

/// Judgment 1: race freedom of every map scope (see file comment).
AnalysisResult checkRaces(const sdfg::SDFG &G);

/// Judgment 2: bounds safety of every memlet subset, including the
/// rank-mismatch structural check.
AnalysisResult checkBounds(const sdfg::SDFG &G);

/// Judgment 3: definite initialization of transients.
AnalysisResult checkInitialization(const sdfg::SDFG &G);

/// All three judgments, concatenated.
AnalysisResult analyze(const sdfg::SDFG &G);

/// The analyzer's own rendering of a map scope label. Kept structurally
/// identical to codegen::mapScopeLabel ("s<state-id>:<param,...>") so the
/// gate can key MapSchedule demotions off findings without including
/// codegen here — asserted equal by tests.
std::string mapLabel(const sdfg::State &S, const sdfg::MapEntry &E);

} // namespace analysis
} // namespace dcir

#endif // DCIR_ANALYSIS_ANALYSIS_H
