//===- Analysis.cpp - independent static soundness analyzer -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the three soundness judgments (races, bounds,
/// definite initialization). See Analysis.h for the contract and the
/// independence-from-optimizer rule; nothing here may include sdfgopt
/// headers.
///
/// The proving core is a small symbolic interval engine:
///
///   boundExpr(E, Env, upper)  valid symbolic lower/upper bounds of E when
///                             every Env symbol ranges over its interval
///                             (several candidates, each independently
///                             sound; Min/Max fan out).
///   dimsDisjointAcross(q)     per-dimension stride test: both subsets'
///                             dimension d reduces to c*q + [lo, hi] with
///                             the same constant c != 0; distinct q
///                             bindings then differ by multiples of
///                             |c|*step(q), so proving that magnitude
///                             clears both offset gaps proves disjointness
///                             for every pair of distinct q values.
///   proveDisjointAcross(P)    recursion over the active parameter set:
///                             pick q, prove some dimension disjoint
///                             across q while the remaining parameters
///                             vary freely over their ranges (covers every
///                             iteration pair differing in q), then
///                             recurse on the rest with q held equal (a
///                             plain shared symbol) to cover pairs that
///                             agree on q.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "support/Casting.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>

using namespace dcir;
using namespace dcir::analysis;
using sym::SymExpr;
using sym::SymRange;
using sym::SymSubset;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

const char *analysis::severityName(Severity S) {
  return S == Severity::Error ? "error" : "warning";
}

const char *analysis::kindName(Kind K) {
  switch (K) {
  case Kind::RaceWriteWrite:
    return "race-write-write";
  case Kind::RaceReadWrite:
    return "race-read-write";
  case Kind::PrivateScalarEscape:
    return "private-scalar-escape";
  case Kind::OutOfBounds:
    return "out-of-bounds";
  case Kind::BoundsUnproven:
    return "bounds-unproven";
  case Kind::RankMismatch:
    return "rank-mismatch";
  case Kind::UninitializedRead:
    return "uninitialized-read";
  }
  return "unknown";
}

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string Finding::json() const {
  std::ostringstream OS;
  OS << "{\"severity\": \"" << severityName(Sev) << "\", \"kind\": \""
     << kindName(K) << "\", \"state\": \"" << jsonEscape(State)
     << "\", \"node\": " << Node << ", \"map\": \"" << jsonEscape(Map)
     << "\", \"container\": \"" << jsonEscape(Container)
     << "\", \"subset\": \"" << jsonEscape(Subset) << "\", \"shape\": \""
     << jsonEscape(Shape) << "\", \"message\": \"" << jsonEscape(Message)
     << "\"}";
  return OS.str();
}

const char *analysis::guardTermKindName(GuardTermKind K) {
  switch (K) {
  case GuardTermKind::SymCond:
    return "sym-cond";
  case GuardTermKind::PtrDisjoint:
    return "ptr-disjoint";
  case GuardTermKind::Inspector:
    return "inspector";
  }
  return "unknown";
}

std::string GuardTerm::text() const {
  switch (K) {
  case GuardTermKind::SymCond:
    return Cond ? Cond.str() : "true";
  case GuardTermKind::PtrDisjoint:
    return "disjoint(" + A + ", " + B + ")";
  case GuardTermKind::Inspector:
    return "inspect " + Index + "[" + (IndexExpr ? IndexExpr.str() : "?") +
           "] over " + Param + " -> distinct in-range cells of " + Target;
  }
  return "?";
}

std::string GuardTerm::json() const {
  std::ostringstream OS;
  OS << "{\"kind\": \"" << guardTermKindName(K) << "\"";
  switch (K) {
  case GuardTermKind::SymCond:
    OS << ", \"cond\": \"" << jsonEscape(Cond ? Cond.str() : "true") << "\"";
    break;
  case GuardTermKind::PtrDisjoint:
    OS << ", \"a\": \"" << jsonEscape(A) << "\", \"b\": \"" << jsonEscape(B)
       << "\"";
    break;
  case GuardTermKind::Inspector:
    OS << ", \"index\": \"" << jsonEscape(Index) << "\", \"index_expr\": \""
       << jsonEscape(IndexExpr ? IndexExpr.str() : "") << "\", \"param\": \""
       << jsonEscape(Param) << "\", \"target\": \"" << jsonEscape(Target)
       << "\"";
    break;
  }
  OS << "}";
  return OS.str();
}

std::string Guard::text() const {
  std::ostringstream OS;
  OS << "map " << Map << ": "
     << (Covered ? "guarded" : "unguarded (demoted)");
  if (!Reasons.empty()) {
    OS << " [";
    for (size_t I = 0; I < Reasons.size(); ++I)
      OS << (I ? ", " : "") << Reasons[I];
    OS << "]";
  }
  for (size_t I = 0; I < Terms.size(); ++I)
    OS << (I ? " && " : ": ") << Terms[I].text();
  return OS.str();
}

std::string Guard::json() const {
  std::ostringstream OS;
  OS << "{\"map\": \"" << jsonEscape(Map) << "\", \"state\": \""
     << jsonEscape(State) << "\", \"speculative\": "
     << (Speculative ? "true" : "false")
     << ", \"covered\": " << (Covered ? "true" : "false")
     << ", \"reasons\": [";
  for (size_t I = 0; I < Reasons.size(); ++I)
    OS << (I ? ", " : "") << "\"" << jsonEscape(Reasons[I]) << "\"";
  OS << "], \"terms\": [";
  for (size_t I = 0; I < Terms.size(); ++I)
    OS << (I ? ", " : "") << Terms[I].json();
  OS << "]}";
  return OS.str();
}

unsigned AnalysisResult::errors() const {
  unsigned N = 0;
  for (const Finding &F : Findings)
    N += F.Sev == Severity::Error;
  return N;
}

unsigned AnalysisResult::warnings() const {
  unsigned N = 0;
  for (const Finding &F : Findings)
    N += F.Sev == Severity::Warning;
  return N;
}

bool AnalysisResult::hasProvenOob() const {
  for (const Finding &F : Findings)
    if (F.K == Kind::OutOfBounds && F.Sev == Severity::Error)
      return true;
  return false;
}

void AnalysisResult::append(AnalysisResult &&Other) {
  for (Finding &F : Other.Findings)
    Findings.push_back(std::move(F));
  for (std::string &M : Other.UnprovenMaps)
    if (std::find(UnprovenMaps.begin(), UnprovenMaps.end(), M) ==
        UnprovenMaps.end())
      UnprovenMaps.push_back(std::move(M));
  for (Guard &G : Other.Guards)
    Guards.push_back(std::move(G));
  for (std::string &A : Other.Assumptions)
    if (std::find(Assumptions.begin(), Assumptions.end(), A) ==
        Assumptions.end())
      Assumptions.push_back(std::move(A));
}

std::string AnalysisResult::text() const {
  std::ostringstream OS;
  for (const Finding &F : Findings) {
    OS << severityName(F.Sev) << ": [" << kindName(F.K) << "] " << F.Message;
    if (!F.State.empty())
      OS << " (state " << F.State
         << (F.Map.empty() ? "" : ", map " + F.Map) << ")";
    OS << "\n";
  }
  return OS.str();
}

std::string AnalysisResult::json() const {
  std::ostringstream OS;
  OS << "{\"findings\": [";
  for (size_t I = 0; I < Findings.size(); ++I)
    OS << (I ? ", " : "") << Findings[I].json();
  OS << "], \"errors\": " << errors() << ", \"warnings\": " << warnings()
     << ", \"unproven_maps\": [";
  for (size_t I = 0; I < UnprovenMaps.size(); ++I)
    OS << (I ? ", " : "") << "\"" << jsonEscape(UnprovenMaps[I]) << "\"";
  OS << "], \"guards\": [";
  for (size_t I = 0; I < Guards.size(); ++I)
    OS << (I ? ", " : "") << Guards[I].json();
  OS << "], \"assumptions\": [";
  for (size_t I = 0; I < Assumptions.size(); ++I)
    OS << (I ? ", " : "") << "\"" << jsonEscape(Assumptions[I]) << "\"";
  OS << "]}";
  return OS.str();
}

std::string analysis::mapLabel(const sdfg::State &S,
                               const sdfg::MapEntry &E) {
  std::string L = "s" + std::to_string(S.getId()) + ":";
  for (size_t I = 0; I < E.Params.size(); ++I)
    L += (I ? "," : "") + E.Params[I];
  return L;
}

//===----------------------------------------------------------------------===//
// The symbolic interval engine
//===----------------------------------------------------------------------===//

namespace {

/// A symbol known to range over [Lo, Hi] (both inclusive). Each side is
/// a *set* of simultaneous bounds — every element independently holds —
/// because a loop variable routinely has both a constant bound from its
/// initialization and a symbolic one from its guard, and collapsing to
/// one loses whichever the next join or assignment-kill needed. Empty
/// means unbounded on that side. By convention a constant bound, if
/// present, is the first element (at most one is kept: the tightest).
struct Interval {
  std::vector<SymExpr> Lo;
  std::vector<SymExpr> Hi;

  bool empty() const { return Lo.empty() && Hi.empty(); }
};

using BoundEnv = std::map<std::string, Interval>;

constexpr unsigned kMaxCandidates = 8;
constexpr unsigned kMaxDepth = 8;

/// Valid symbolic bounds of \p E when every BoundEnv symbol ranges over
/// its interval. Every returned expression is independently a sound bound
/// (callers may try each); empty means no bound could be derived. \p Upper
/// selects the direction. Symbols absent from \p Env are left symbolic
/// (they are fixed-but-unknown, which is exactly what a bound over them
/// means). \p Assume governs the side-proofs the derivation itself needs
/// (e.g. factor non-negativity for products): the static prover runs in
/// the positive-sizes regime, guard synthesis must pass Unknown so a
/// bound never silently depends on an assumption the runtime check is
/// there to replace.
std::vector<SymExpr>
boundExpr(const SymExpr &E, const BoundEnv &Env, bool Upper,
          sym::SymbolAssumption Assume = sym::SymbolAssumption::Positive,
          unsigned Depth = 0);

/// Cross product helper: combines per-operand candidate lists with \p F,
/// capping the result.
std::vector<SymExpr>
combine(const std::vector<std::vector<SymExpr>> &PerOp,
        const std::function<SymExpr(const std::vector<SymExpr> &)> &F) {
  std::vector<SymExpr> Out;
  std::set<std::string> Seen;
  std::vector<size_t> Idx(PerOp.size(), 0);
  for (const auto &Ops : PerOp)
    if (Ops.empty())
      return Out;
  while (true) {
    std::vector<SymExpr> Pick;
    Pick.reserve(PerOp.size());
    for (size_t I = 0; I < PerOp.size(); ++I)
      Pick.push_back(PerOp[I][Idx[I]]);
    // Duplicate combos (two env bounds resolving to the same constant)
    // would exhaust the candidate cap before a cancelling symbolic combo
    // like -i + (i + 1) - 1 is ever enumerated.
    if (SymExpr R = F(Pick); R && Seen.insert(R.str()).second)
      Out.push_back(R);
    if (Out.size() >= kMaxCandidates)
      return Out;
    size_t I = 0;
    for (; I < PerOp.size(); ++I) {
      if (++Idx[I] < PerOp[I].size())
        break;
      Idx[I] = 0;
    }
    if (I == PerOp.size())
      return Out;
  }
}

std::vector<SymExpr> boundExpr(const SymExpr &E, const BoundEnv &Env,
                               bool Upper, sym::SymbolAssumption Assume,
                               unsigned Depth) {
  if (!E || Depth > kMaxDepth)
    return {};
  switch (E.kind()) {
  case sym::ExprKind::Constant:
    return {E};
  case sym::ExprKind::Symbol: {
    auto It = Env.find(E.symbolName());
    if (It == Env.end())
      return {E};
    const std::vector<SymExpr> &Bs = Upper ? It->second.Hi : It->second.Lo;
    // Bounds may themselves mention enclosing env symbols (a tiled map's
    // intra parameter is bounded by its tile parameter); resolve those
    // too, with this symbol removed to guard against cycles.
    BoundEnv Inner = Env;
    Inner.erase(E.symbolName());
    std::vector<SymExpr> Out;
    std::set<std::string> Seen;
    for (const SymExpr &B : Bs)
      for (const SymExpr &C : boundExpr(B, Inner, Upper, Assume, Depth + 1)) {
        if (Seen.insert(C.str()).second)
          Out.push_back(C);
        if (Out.size() + 1 >= kMaxCandidates)
          break;
      }
    // The symbol is trivially its own bound; keeping it as a candidate
    // lets sibling operands cancel it (e.g. lower(i - j - 1) with
    // j <= i - 1 proves >= 0 only via the symbolic i).
    Out.push_back(E);
    return Out;
  }
  case sym::ExprKind::Add: {
    std::vector<std::vector<SymExpr>> PerOp;
    for (const SymExpr &Op : E.operands())
      PerOp.push_back(boundExpr(Op, Env, Upper, Assume, Depth + 1));
    return combine(PerOp, [](const std::vector<SymExpr> &Ops) {
      SymExpr S = Ops[0];
      for (size_t I = 1; I < Ops.size(); ++I)
        S = S + Ops[I];
      return S;
    });
  }
  case sym::ExprKind::Mul: {
    // Split a leading constant factor; flip direction when negative.
    const auto &Ops = E.operands();
    if (!Ops.empty() && Ops[0].isConstant()) {
      std::int64_t C = Ops[0].constantValue();
      SymExpr Rest;
      for (size_t I = 1; I < Ops.size(); ++I)
        Rest = Rest ? Rest * Ops[I] : Ops[I];
      if (!Rest)
        return {E};
      std::vector<SymExpr> Inner =
          boundExpr(Rest, Env, C >= 0 ? Upper : !Upper, Assume, Depth + 1);
      std::vector<SymExpr> Out;
      for (const SymExpr &B : Inner)
        Out.push_back(SymExpr::constant(C) * B);
      return Out;
    }
    // A product of provably non-negative factors is monotone in each:
    // lower(E) = product of factor lowers, upper(E) = product of factor
    // uppers (0 <= L_i <= V_i <= U_i gives prod L_i <= prod V_i <=
    // prod U_i). This is what relates a flattened subscript like
    // `i*nj + j` to its row-major extent: with `0 <= i < ni` and
    // `0 <= j < nj` in the env, upper(i*nj) = (ni-1)*nj and lower = 0.
    {
      std::vector<std::vector<SymExpr>> Factors;
      bool AllNonNeg = true;
      for (const SymExpr &Op : E.operands()) {
        std::vector<SymExpr> NonNeg;
        for (const SymExpr &L :
             boundExpr(Op, Env, /*Upper=*/false, Assume, Depth + 1))
          if (auto P = SymExpr::ge(L, SymExpr::constant(0)).tryProve(Assume);
              P && *P)
            NonNeg.push_back(L);
        if (NonNeg.empty()) {
          AllNonNeg = false;
          break;
        }
        if (Upper) {
          std::vector<SymExpr> Hi =
              boundExpr(Op, Env, Upper, Assume, Depth + 1);
          if (Hi.empty()) {
            AllNonNeg = false;
            break;
          }
          Factors.push_back(std::move(Hi));
        } else {
          Factors.push_back(std::move(NonNeg));
        }
      }
      if (AllNonNeg)
        return combine(Factors, [](const std::vector<SymExpr> &Ops) {
          SymExpr S = Ops[0];
          for (size_t I = 1; I < Ops.size(); ++I)
            S = S * Ops[I];
          return S;
        });
    }
    // Otherwise: sound only when no factor uses an env symbol (then E is
    // its own bound).
    std::set<std::string> Syms;
    E.collectSymbols(Syms);
    for (const std::string &S : Syms)
      if (Env.count(S))
        return {};
    return {E};
  }
  case sym::ExprKind::Min:
  case sym::ExprKind::Max: {
    const bool IsMin = E.kind() == sym::ExprKind::Min;
    // Shrinking side: any single operand's bound is valid (min(a,b) <= a).
    if (Upper == IsMin) {
      std::vector<SymExpr> Out;
      for (const SymExpr &Op : E.operands()) {
        for (const SymExpr &B : boundExpr(Op, Env, Upper, Assume, Depth + 1)) {
          Out.push_back(B);
          if (Out.size() >= kMaxCandidates)
            return Out;
        }
      }
      return Out;
    }
    // Growing side: need a bound that covers every operand.
    std::vector<std::vector<SymExpr>> PerOp;
    for (const SymExpr &Op : E.operands())
      PerOp.push_back(boundExpr(Op, Env, Upper, Assume, Depth + 1));
    return combine(PerOp, [&](const std::vector<SymExpr> &Ops) {
      SymExpr S = Ops[0];
      for (size_t I = 1; I < Ops.size(); ++I)
        S = IsMin ? SymExpr::min(S, Ops[I]) : SymExpr::max(S, Ops[I]);
      return S;
    });
  }
  case sym::ExprKind::FloorDiv: {
    const SymExpr &Num = E.operands()[0], &Den = E.operands()[1];
    if (!Den.provePositive(Assume))
      return {};
    // Monotone in the numerator for a positive divisor.
    std::vector<SymExpr> Out;
    for (const SymExpr &B : boundExpr(Num, Env, Upper, Assume, Depth + 1))
      Out.push_back(SymExpr::floorDiv(B, Den));
    return Out;
  }
  case sym::ExprKind::Mod: {
    const SymExpr &Den = E.operands()[1];
    if (!Den.provePositive(Assume))
      return {};
    // Euclidean remainder for a positive divisor: always in [0, den-1].
    return Upper ? std::vector<SymExpr>{Den - SymExpr::constant(1)}
                 : std::vector<SymExpr>{SymExpr::constant(0)};
  }
  default:
    return {};
  }
}

/// Proves `L <= R` for some candidate pair (each candidate is a sound
/// bound, so any success suffices).
bool proveLeAny(const std::vector<SymExpr> &Ls,
                const std::vector<SymExpr> &Rs) {
  for (const SymExpr &L : Ls)
    for (const SymExpr &R : Rs)
      if (auto P = SymExpr::le(L, R).tryProve())
        if (*P)
          return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Race freedom
//===----------------------------------------------------------------------===//

/// One access collected from a map scope.
struct ScopeAccess {
  SymSubset Subset;
  bool Write = false;
  bool Wcr = false;
  int Node = -1; // Representative endpoint node id.
};

/// An active map parameter: its range plus the constant stride distinct
/// bindings differ by (1 when the step is symbolic but provably >= 1).
struct ActiveParam {
  std::string Name;
  SymRange Range;
  std::int64_t Stride = 1;
};

/// The per-dimension stride test (see file comment): both ranges reduce
/// to c*q + [lo, hi] with the same constant c != 0 under \p Vary, and
/// |c|*stride(q) provably clears both offset gaps.
bool dimDisjointAcross(const SymRange &A, const SymRange &B,
                       const ActiveParam &Q, const BoundEnv &Vary) {
  // Inclusive symbolic interval of each range over the varying params
  // (q itself stays symbolic).
  auto Decompose = [&](const SymExpr &Bound, bool Upper, SymExpr &Coeff,
                       std::vector<SymExpr> &Offsets) {
    for (const SymExpr &Cand : boundExpr(Bound, Vary, Upper)) {
      SymExpr C, D;
      if (!Cand.linearIn(Q.Name, C, D) || !C || !C.isConstant() ||
          C.constantValue() == 0)
        continue;
      // The offset must not mention q or any still-varying param.
      std::set<std::string> Syms;
      if (D)
        D.collectSymbols(Syms);
      bool Bad = Syms.count(Q.Name) != 0;
      for (const std::string &S : Syms)
        if (Vary.count(S))
          Bad = true;
      if (Bad)
        continue;
      if (Coeff && !Coeff.equals(C))
        continue; // All four decompositions must share one coefficient.
      Coeff = C;
      Offsets.push_back(D ? D : SymExpr::constant(0));
      return true;
    }
    return false;
  };

  SymExpr Coeff;
  std::vector<SymExpr> ALo, AHi, BLo, BHi;
  const SymExpr One = SymExpr::constant(1);
  if (!Decompose(A.Begin, /*Upper=*/false, Coeff, ALo) ||
      !Decompose(A.End - One, /*Upper=*/true, Coeff, AHi) ||
      !Decompose(B.Begin, /*Upper=*/false, Coeff, BLo) ||
      !Decompose(B.End - One, /*Upper=*/true, Coeff, BHi))
    return false;

  std::int64_t C = Coeff.constantValue();
  std::int64_t M = (C < 0 ? -C : C) * Q.Stride;
  // Distinct q bindings differ by a nonzero multiple of stride(q), so the
  // two intervals' offsets differ by a multiple of M. They are disjoint
  // for every such pair iff M exceeds both directed gaps:
  //   M > hi(A) - lo(B)   and   M > hi(B) - lo(A).
  const SymExpr MEx = SymExpr::constant(M);
  auto Gt = [](const SymExpr &L, const SymExpr &R) {
    auto P = SymExpr::gt(L, R).tryProve();
    return P && *P;
  };
  return Gt(MEx, AHi[0] - BLo[0]) && Gt(MEx, BHi[0] - ALo[0]);
}

/// The recursion over active params (see file comment). \p ParamRanges
/// carries every parameter (active or enclosing/nested) for widening.
bool proveDisjointAcross(const SymSubset &A, const SymSubset &B,
                         std::vector<ActiveParam> Active,
                         const BoundEnv &AllParams) {
  if (Active.empty())
    return true; // Identical bindings: same iteration, no race.
  if (A.rank() != B.rank() || A.rank() == 0)
    return false; // Rank-0 (scalar) or malformed: nothing separates.
  for (size_t QI = 0; QI < Active.size(); ++QI) {
    const ActiveParam &Q = Active[QI];
    // Everything except q varies freely over its bounds.
    BoundEnv Vary = AllParams;
    Vary.erase(Q.Name);
    bool DimSeparates = false;
    for (size_t D = 0; D < A.rank() && !DimSeparates; ++D)
      DimSeparates = dimDisjointAcross(A.dim(D), B.dim(D), Q, Vary);
    if (!DimSeparates)
      continue;
    // Pairs differing in q are covered; recurse with q held equal (it
    // becomes a plain shared symbol) for pairs agreeing on q.
    std::vector<ActiveParam> Rest = Active;
    Rest.erase(Rest.begin() + static_cast<long>(QI));
    BoundEnv RestEnv = AllParams;
    RestEnv.erase(Q.Name);
    if (proveDisjointAcross(A, B, std::move(Rest), RestEnv))
      return true;
  }
  return false;
}

/// The inclusive interval of a map range, as a BoundEnv entry. The upper
/// bound keeps End-1 symbolic; boundExpr's Min handling peels
/// `min(tile+T, n) - 1` style bounds during widening.
Interval rangeInterval(const SymRange &R) {
  Interval I;
  if (R.Begin)
    I.Lo.push_back(R.Begin);
  if (R.End) {
    I.Hi.push_back(R.End - SymExpr::constant(1));
    // A strided range never reaches End-1 unless Step divides the extent:
    // its true maximum is Begin + floor((End-1-Begin)/Step)*Step. Without
    // this, a tile loop `t=0:64:32` appears to reach 63 and the intra
    // parameter `i=t:t+32` apparently overruns the container.
    if (R.Begin && R.Step && R.Step.isConstant() &&
        R.Step.constantValue() > 1)
      I.Hi.push_back(R.Begin +
                     SymExpr::floorDiv(R.End - SymExpr::constant(1) - R.Begin,
                                       R.Step) *
                         R.Step);
  }
  return I;
}

/// Collects every memlet incident to \p Entry's scope interior, classified
/// as read and/or write of its container.
std::map<std::string, std::vector<ScopeAccess>>
collectScopeAccesses(const sdfg::State &S, const sdfg::MapEntry &Entry,
                     const std::set<int> &Scope) {
  std::map<std::string, std::vector<ScopeAccess>> Acc;
  const int EntryId = Entry.getId(), ExitId = Entry.ExitId;
  auto InScope = [&](int Id) { return Scope.count(Id) != 0; };
  for (const sdfg::DataflowEdge &E : S.edges()) {
    if (E.M.isEmpty())
      continue;
    const bool SrcIn = InScope(E.Src) || E.Src == EntryId;
    const bool DstIn = InScope(E.Dst) || E.Dst == ExitId;
    if (!SrcIn || !DstIn)
      continue; // Outside (or crossing out of) the scope.
    const sdfg::Node *Src = S.getNode(E.Src);
    const sdfg::Node *Dst = S.getNode(E.Dst);
    bool Read = false, Write = false;
    if (isa<sdfg::Tasklet>(Dst))
      Read = true;
    if (auto *A = dyn_cast<sdfg::AccessNode>(Src))
      if (A->getData() == E.M.Data)
        Read = true;
    if (isa<sdfg::MapEntry>(Src))
      Read = true;
    if (isa<sdfg::Tasklet>(Src))
      Write = true;
    if (auto *A = dyn_cast<sdfg::AccessNode>(Dst))
      if (A->getData() == E.M.Data)
        Write = true;
    if (isa<sdfg::MapExit>(Dst))
      Write = true;
    if (!Read && !Write)
      continue;
    ScopeAccess SA;
    SA.Subset = E.M.Subset;
    SA.Wcr = !E.M.Wcr.empty();
    SA.Node = E.Src;
    if (Write) {
      SA.Write = true;
      Acc[E.M.Data].push_back(SA);
    }
    if (Read && !SA.Wcr) {
      ScopeAccess RA = SA;
      RA.Write = false;
      Acc[E.M.Data].push_back(RA);
    }
  }
  return Acc;
}

/// True when \p E's trip space provably holds at most one iteration
/// binding (a single-iteration map cannot race with itself).
bool singleIteration(const sdfg::MapEntry &E) {
  for (const SymRange &R : E.Ranges) {
    SymExpr N = R.numElements();
    if (!N || !N.isConstant() || N.constantValue() > 1)
      return false;
  }
  return true;
}

void checkMapScope(const sdfg::SDFG &G, const sdfg::State &S,
                   const sdfg::MapEntry &Entry, AnalysisResult &Res) {
  const std::set<int> Scope = S.scopeNodes(Entry);
  const std::string Label = analysis::mapLabel(S, Entry);
  if (singleIteration(Entry))
    return;

  // Active params: this scope's own. All params of nested maps inside the
  // scope vary freely (two distinct outer bindings run the entire inner
  // space concurrently).
  std::vector<ActiveParam> Active;
  BoundEnv AllParams;
  for (size_t I = 0; I < Entry.Params.size(); ++I) {
    ActiveParam P;
    P.Name = Entry.Params[I];
    P.Range = I < Entry.Ranges.size() ? Entry.Ranges[I] : SymRange();
    if (P.Range.Step && P.Range.Step.isConstant() &&
        P.Range.Step.constantValue() > 1)
      P.Stride = P.Range.Step.constantValue();
    Active.push_back(P);
    AllParams[P.Name] = rangeInterval(P.Range);
  }
  for (int Id : Scope)
    if (auto *Inner = dyn_cast<sdfg::MapEntry>(S.getNode(Id)))
      for (size_t I = 0; I < Inner->Params.size(); ++I)
        if (I < Inner->Ranges.size())
          AllParams[Inner->Params[I]] = rangeInterval(Inner->Ranges[I]);

  auto Flag = [&](Kind K, Severity Sev, const std::string &Container,
                  const std::string &Subset, const std::string &Msg) {
    Finding F;
    F.Sev = Sev;
    F.K = K;
    F.State = S.getName();
    F.Node = Entry.getId();
    F.Map = Label;
    F.Container = Container;
    F.Subset = Subset;
    F.Message = Msg;
    Res.Findings.push_back(F);
    if (std::find(Res.UnprovenMaps.begin(), Res.UnprovenMaps.end(), Label) ==
        Res.UnprovenMaps.end())
      Res.UnprovenMaps.push_back(Label);
  };

  auto Accesses = collectScopeAccesses(S, Entry, Scope);
  for (const auto &KV : Accesses) {
    const std::string &Data = KV.first;
    if (!G.hasData(Data))
      continue;
    const sdfg::DataDesc &D = G.desc(Data);
    if (D.K == sdfg::DataDesc::Kind::Stream)
      continue;
    const std::vector<ScopeAccess> &As = KV.second;
    bool AnyWrite = false;
    for (const ScopeAccess &A : As)
      AnyWrite |= A.Write;
    if (!AnyWrite)
      continue; // Read-only containers cannot race.

    // Scalars (and rank-0 subsets): every iteration touches the same
    // cell, so a plain (non-WCR) write races unless the scalar is
    // privatized to the iteration.
    if (D.K == sdfg::DataDesc::Kind::Scalar) {
      if (Entry.isPrivate(Data))
        continue; // Per-iteration copy; the escape check runs separately.
      for (const ScopeAccess &A : As)
        if (A.Write && !A.Wcr) {
          Flag(Kind::RaceWriteWrite, Severity::Error, Data, "[]",
               "scalar '" + Data +
                   "' written without write-conflict resolution in "
                   "parallel map scope " +
                   Label);
          break;
        }
      continue;
    }

    // Arrays: every (write, write/read) pair must be provably disjoint
    // across distinct iteration bindings. WCR-WCR pairs commute through
    // the conflict resolution and are exempt; WCR-read and WCR-plain
    // pairs are not (a read may observe a partial resolution).
    bool Flagged = false;
    for (size_t I = 0; I < As.size() && !Flagged; ++I) {
      if (!As[I].Write)
        continue;
      for (size_t J = 0; J < As.size() && !Flagged; ++J) {
        // Reads *before* the write in edge order still pair with it;
        // only the (write, write) mirror of an already-examined pair is
        // redundant.
        if (J < I && As[J].Write)
          continue;
        const ScopeAccess &W = As[I], &O = As[J];
        if (!O.Write && O.Node == W.Node && O.Subset.equals(W.Subset))
          ; // Same-edge read+write of one cell still needs the proof.
        if (W.Wcr && O.Wcr)
          continue;
        if (!O.Write && O.Subset.equals(W.Subset) && !W.Wcr) {
          // A plain read of exactly the cells this binding writes is the
          // in-iteration read-modify-write idiom; the cross-binding case
          // is covered by the W-W pair (I == J) below.
          if (I != J)
            continue;
        }
        if (proveDisjointAcross(W.Subset, O.Subset, Active, AllParams))
          continue;
        // Not provable. Distinguish a definite same-cell conflict (the
        // subsets ignore every active parameter, e.g. a dropped WCR on a
        // reduction target) from mere incompleteness. A privatized
        // scalar in a subset (an index loaded from an array, the
        // indirect-subscript idiom) varies per binding even though no
        // parameter appears, so it counts as varying too.
        bool UsesVarying = false;
        std::set<std::string> Syms;
        W.Subset.collectSymbols(Syms);
        O.Subset.collectSymbols(Syms);
        for (const ActiveParam &P : Active)
          UsesVarying |= Syms.count(P.Name) != 0;
        for (const std::string &Pv : Entry.PrivateData)
          UsesVarying |= Syms.count(Pv) != 0;
        const bool Definite =
            !UsesVarying && W.Subset.mayOverlap(O.Subset) && !W.Wcr && !O.Wcr;
        Kind K = O.Write ? Kind::RaceWriteWrite : Kind::RaceReadWrite;
        Flag(K, Definite ? Severity::Error : Severity::Warning, Data,
             W.Subset.str(),
             std::string(O.Write ? "write-write" : "read-write") +
                 " conflict on '" + Data + "' (" + W.Subset.str() +
                 (O.Write ? " vs " : " written vs ") + O.Subset.str() +
                 " read) not provably disjoint across map parameters of " +
                 Label);
        Flagged = true;
      }
    }
  }

  // Privatized-scalar escape re-check: each private scalar must be
  // written before it is read within the scope (otherwise an iteration
  // observes another binding's — or no — value, contradicting the
  // privatization claim).
  if (!Entry.PrivateData.empty()) {
    std::vector<sdfg::Node *> Topo = S.topologicalOrder();
    std::map<int, size_t> Pos;
    for (size_t I = 0; I < Topo.size(); ++I)
      Pos[Topo[I]->getId()] = I;
    for (const std::string &P : Entry.PrivateData) {
      long FirstWrite = -1, FirstRead = -1;
      int ReadNode = -1;
      for (int Id : Scope) {
        auto *A = dyn_cast<sdfg::AccessNode>(S.getNode(Id));
        if (!A || A->getData() != P)
          continue;
        const long At = static_cast<long>(Pos[Id]);
        // Ordering-only access nodes (every outgoing memlet empty) do
        // not read the value; they exist to sequence the subset users
        // after the defining write.
        bool ValueRead = false;
        for (const sdfg::DataflowEdge *OE : S.outEdges(A))
          ValueRead |= !OE->M.isEmpty();
        if (!S.inEdges(A).empty() &&
            (FirstWrite < 0 || At < FirstWrite))
          FirstWrite = At;
        if (ValueRead && S.inEdges(A).empty() &&
            (FirstRead < 0 || At < FirstRead)) {
          FirstRead = At;
          ReadNode = Id;
        }
      }
      if (FirstRead >= 0 && (FirstWrite < 0 || FirstWrite > FirstRead)) {
        Flag(Kind::PrivateScalarEscape, Severity::Warning, P, "[]",
             "privatized scalar '" + P +
                 "' is read before any in-scope write in map " + Label +
                 " (node " + std::to_string(ReadNode) + ")");
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Guard synthesis (speculative parallelization)
//===----------------------------------------------------------------------===//
//
// For a map scope the disjointness prover gives up on, the *shape* of the
// failure usually admits a residual runtime check:
//
//   condDimDisjoint    the symbolic analogue of dimDisjointAcross — the
//                      coefficient of q may stay symbolic, and the
//                      magnitude/gap comparisons become the condition
//                      instead of a proof obligation. C == 0 is covered:
//                      the magnitude is then 0 and the test fails.
//   extentSeparation   whole-footprint separation (some dimension's
//                      intervals never meet), ORed in as an alternative.
//   matchInspector     the indirect-subscript idiom out[idx[i]]: replay
//                      the index array before the loop — all values in
//                      range and pairwise distinct implies distinct
//                      bindings touch distinct cells.
//
// Soundness direction: a synthesized condition must IMPLY the safety the
// prover was missing; when in doubt the guard fails at runtime and the
// scope runs in its original serial order.

/// Outcome of a conditional-disjointness derivation. Ok=false: no
/// runtime-checkable condition exists. Ok=true with a null Cond:
/// disjointness needs no runtime check at this level.
struct CondResult {
  bool Ok = false;
  SymExpr Cond; // Null = no check needed.
};

SymExpr andConds(const SymExpr &A, const SymExpr &B) {
  if (!A)
    return B;
  if (!B)
    return A;
  return SymExpr::logicalAnd(A, B);
}

SymExpr orConds(const SymExpr &A, const SymExpr &B) {
  if (!A)
    return B;
  if (!B)
    return A;
  return SymExpr::logicalOr(A, B);
}

/// The runtime analogue of dimDisjointAcross: both dimension ranges
/// decompose as C*q + offset under one shared — possibly symbolic —
/// coefficient C; distinct q bindings then differ by C*stride(q)*dq with
/// |dq| >= 1, so
///   max(C, -C)*stride > hi(A) - lo(B)  &&  max(C, -C)*stride > hi(B) - lo(A)
/// implies the intervals of any two distinct bindings never meet. A
/// symbolic stride that is 0 at runtime makes the magnitude 0 and the
/// test (correctly) fail. Statically-true conjuncts are dropped; a
/// statically-false one means this dimension can never separate.
/// \p SymbolicStride reports whether C was non-constant (taxonomy).
CondResult condDimDisjoint(const SymRange &A, const SymRange &B,
                           const ActiveParam &Q, const BoundEnv &Vary,
                           bool &SymbolicStride) {
  auto Decompose = [&](const SymExpr &Bound, bool Upper, SymExpr &Coeff,
                       std::vector<SymExpr> &Offsets) {
    // Assumption-free bounds only (unlike the static prover's Decompose):
    // the derivation feeds a runtime condition, which must hold for the
    // very symbol values the positive-sizes regime excludes.
    for (const SymExpr &Cand :
         boundExpr(Bound, Vary, Upper, sym::SymbolAssumption::Unknown)) {
      SymExpr C, D;
      if (!Cand.linearIn(Q.Name, C, D) || !C)
        continue;
      if (C.isConstant() && C.constantValue() == 0)
        continue;
      // Neither the coefficient nor the offset may mention q or any
      // still-varying parameter.
      std::set<std::string> Syms;
      C.collectSymbols(Syms);
      if (D)
        D.collectSymbols(Syms);
      bool Bad = Syms.count(Q.Name) != 0;
      for (const std::string &S : Syms)
        if (Vary.count(S))
          Bad = true;
      if (Bad)
        continue;
      if (Coeff && !Coeff.equals(C))
        continue; // One shared coefficient across all four decompositions.
      Coeff = C;
      Offsets.push_back(D ? D : SymExpr::constant(0));
      return true;
    }
    return false;
  };

  CondResult R;
  SymExpr Coeff;
  std::vector<SymExpr> ALo, AHi, BLo, BHi;
  const SymExpr One = SymExpr::constant(1);
  if (!Decompose(A.Begin, /*Upper=*/false, Coeff, ALo) ||
      !Decompose(A.End - One, /*Upper=*/true, Coeff, AHi) ||
      !Decompose(B.Begin, /*Upper=*/false, Coeff, BLo) ||
      !Decompose(B.End - One, /*Upper=*/true, Coeff, BHi))
    return R;

  const SymExpr M = SymExpr::max(Coeff, SymExpr::negate(Coeff)) *
                    SymExpr::constant(Q.Stride);
  SymExpr Cond;
  for (const SymExpr &Gap : {AHi[0] - BLo[0], BHi[0] - ALo[0]}) {
    SymExpr C = SymExpr::gt(M, Gap);
    // Conjuncts may be dropped only when true with NO symbol assumptions:
    // the guard exists precisely because the positivity defaults the
    // static prover enjoys do not hold for runtime scalars (s = 0 must
    // fail this very check).
    if (auto P = C.tryProve(sym::SymbolAssumption::Unknown)) {
      if (*P)
        continue; // Unconditionally true: no runtime cost.
      return R;   // Unconditionally false: never separates.
    }
    if (Cond && Cond.equals(C))
      continue; // Identical second gap (self-pair).
    Cond = andConds(Cond, C);
  }
  if (!Coeff.isConstant())
    SymbolicStride = true;
  R.Ok = true;
  R.Cond = Cond;
  return R;
}

/// The runtime analogue of proveDisjointAcross: same recursion over the
/// active parameters, with the static prover preferred at every level
/// (its successes cost nothing at runtime) and conditions conjoined
/// across levels.
CondResult condDisjointAcross(const SymSubset &A, const SymSubset &B,
                              std::vector<ActiveParam> Active,
                              const BoundEnv &AllParams,
                              bool &SymbolicStride) {
  CondResult R;
  if (Active.empty()) {
    R.Ok = true;
    return R;
  }
  if (A.rank() != B.rank() || A.rank() == 0)
    return R;
  for (size_t QI = 0; QI < Active.size(); ++QI) {
    const ActiveParam &Q = Active[QI];
    BoundEnv Vary = AllParams;
    Vary.erase(Q.Name);
    for (size_t D = 0; D < A.rank(); ++D) {
      CondResult DimC;
      if (dimDisjointAcross(A.dim(D), B.dim(D), Q, Vary))
        DimC.Ok = true; // Proven: null condition.
      else
        DimC = condDimDisjoint(A.dim(D), B.dim(D), Q, Vary, SymbolicStride);
      if (!DimC.Ok)
        continue;
      std::vector<ActiveParam> Rest = Active;
      Rest.erase(Rest.begin() + static_cast<long>(QI));
      BoundEnv RestEnv = AllParams;
      RestEnv.erase(Q.Name);
      CondResult RestC;
      if (proveDisjointAcross(A, B, Rest, RestEnv))
        RestC.Ok = true;
      else
        RestC = condDisjointAcross(A, B, std::move(Rest), RestEnv,
                                   SymbolicStride);
      if (!RestC.Ok)
        continue;
      R.Ok = true;
      R.Cond = andConds(DimC.Cond, RestC.Cond);
      return R;
    }
  }
  return R;
}

/// Whole-footprint separation: over the entire iteration space (all
/// parameters widened to their ranges), some dimension's intervals never
/// meet — hi(A) < lo(B) || hi(B) < lo(A). A valid alternative to the
/// per-binding stride condition (ORed with it): if the footprints never
/// intersect, no two accesses conflict at all. Null when no dimension
/// yields both bounds.
SymExpr extentSeparation(const SymSubset &A, const SymSubset &B,
                         const BoundEnv &AllParams) {
  if (A.rank() != B.rank())
    return SymExpr();
  SymExpr Or;
  const SymExpr One = SymExpr::constant(1);
  for (size_t D = 0; D < A.rank(); ++D) {
    const SymRange &RA = A.dim(D), &RB = B.dim(D);
    if (!RA.Begin || !RA.End || !RB.Begin || !RB.End)
      continue;
    // Assumption-free bounds: a footprint bound derived under the
    // positive-sizes regime could validate the separation test for
    // exactly the runtime values that violate it.
    const auto U = sym::SymbolAssumption::Unknown;
    std::vector<SymExpr> ALo = boundExpr(RA.Begin, AllParams, false, U);
    std::vector<SymExpr> AHi = boundExpr(RA.End - One, AllParams, true, U);
    std::vector<SymExpr> BLo = boundExpr(RB.Begin, AllParams, false, U);
    std::vector<SymExpr> BHi = boundExpr(RB.End - One, AllParams, true, U);
    if (ALo.empty() || AHi.empty() || BLo.empty() || BHi.empty())
      continue;
    for (const SymExpr &C :
         {SymExpr::lt(AHi[0], BLo[0]), SymExpr::lt(BHi[0], ALo[0])}) {
      // Assumption-free proofs only (see condDimDisjoint): a separation
      // that relies on symbol positivity must stay a runtime check.
      if (auto P = C.tryProve(sym::SymbolAssumption::Unknown)) {
        if (*P)
          return SymExpr::trueExpr(); // Unconditionally separated.
        continue;                     // Unconditionally impossible: drop.
      }
      Or = orConds(Or, C);
    }
  }
  return Or;
}

/// The indirect-subscript inspector pattern for container \p Data:
/// every in-scope access of Data is the same rank-1 single-element
/// subset [L] for one privatized scalar L whose sole in-scope definition
/// is a non-opaque identity tasklet reading Index[IndexExpr], the index
/// container is not written in the scope, and the scope has a single map
/// parameter. The runtime inspector then replays Index over the range:
/// every value in [0, extent(Data)) and pairwise distinct implies
/// distinct bindings touch distinct, in-bounds cells of Data.
bool matchInspector(const sdfg::SDFG &G, const sdfg::State &S,
                    const sdfg::MapEntry &Entry, const std::set<int> &Scope,
                    const std::string &Data,
                    const std::vector<ScopeAccess> &As,
                    const std::map<std::string, std::vector<ScopeAccess>> &Acc,
                    GuardTerm &Out) {
  if (Entry.Params.size() != 1 || Entry.Ranges.size() != 1 || As.empty())
    return false;
  // One shared [L] subset, L privatized.
  const SymSubset &Sub = As.front().Subset;
  if (Sub.rank() != 1)
    return false;
  const SymRange &R0 = Sub.dim(0);
  if (!R0.Begin || !R0.End || !R0.Begin.isSymbol())
    return false;
  if (auto P = SymExpr::eq(R0.End, R0.Begin + SymExpr::constant(1)).tryProve();
      !P || !*P)
    return false;
  const std::string L = R0.Begin.symbolName();
  if (!Entry.isPrivate(L))
    return false;
  for (const ScopeAccess &A : As)
    if (!A.Subset.equals(Sub))
      return false;
  // L's sole in-scope definition: identity tasklet fed by one non-empty
  // read of an index container.
  const sdfg::DataflowEdge *Def = nullptr;
  for (const sdfg::DataflowEdge &E : S.edges()) {
    if (E.M.isEmpty() || E.M.Data != L)
      continue;
    auto *Dst = dyn_cast<sdfg::AccessNode>(S.getNode(E.Dst));
    if (!Dst || Dst->getData() != L || !Scope.count(E.Dst))
      continue;
    if (Def)
      return false; // More than one write.
    Def = &E;
  }
  if (!Def || !Scope.count(Def->Src))
    return false;
  auto *T = dyn_cast<sdfg::Tasklet>(S.getNode(Def->Src));
  if (!T || T->Opaque || T->Code.size() != 1 ||
      T->Code.begin()->second.K != sdfg::TExpr::Kind::Input)
    return false;
  const sdfg::DataflowEdge *In = nullptr;
  for (const sdfg::DataflowEdge *E : S.inEdges(T)) {
    if (E->M.isEmpty())
      continue;
    if (In)
      return false;
    In = E;
  }
  if (!In || In->M.Subset.rank() != 1)
    return false;
  auto *IdxNode = dyn_cast<sdfg::AccessNode>(S.getNode(In->Src));
  if (!IdxNode || IdxNode->getData() != In->M.Data)
    return false;
  const SymRange &IR = In->M.Subset.dim(0);
  if (!IR.Begin || !IR.End)
    return false;
  if (auto P = SymExpr::eq(IR.End, IR.Begin + SymExpr::constant(1)).tryProve();
      !P || !*P)
    return false;
  // The subscript must be a function of the binding alone: no privatized
  // scalars (another indirect level would make the replay diverge).
  std::set<std::string> Syms;
  IR.Begin.collectSymbols(Syms);
  for (const std::string &Pv : Entry.PrivateData)
    if (Syms.count(Pv))
      return false;
  // The index container must not be written in the scope, and must be a
  // rank-1 array distinct from the target.
  if (In->M.Data == Data || !G.hasData(In->M.Data))
    return false;
  auto AIt = Acc.find(In->M.Data);
  if (AIt != Acc.end())
    for (const ScopeAccess &A : AIt->second)
      if (A.Write)
        return false;
  const sdfg::DataDesc &TD = G.desc(Data);
  if (TD.K != sdfg::DataDesc::Kind::Array || TD.rank() != 1)
    return false;
  Out.K = GuardTermKind::Inspector;
  Out.Index = In->M.Data;
  Out.IndexExpr = IR.Begin;
  Out.Param = Entry.Params[0];
  Out.Target = Data;
  return true;
}

/// Synthesizes the guard object for one scope (see Guard). \p Unproven
/// says the race analysis flagged it; speculative-but-proven scopes get
/// only the restrict-contract PtrDisjoint terms.
void synthesizeScopeGuard(const sdfg::SDFG &G, const sdfg::State &S,
                          const sdfg::MapEntry &Entry, bool Unproven,
                          AnalysisResult &Res) {
  Guard Gd;
  Gd.Map = analysis::mapLabel(S, Entry);
  Gd.State = S.getName();
  Gd.Speculative = Entry.Speculative;
  Gd.Covered = true;

  const std::set<int> Scope = S.scopeNodes(Entry);
  std::vector<ActiveParam> Active;
  BoundEnv AllParams;
  for (size_t I = 0; I < Entry.Params.size(); ++I) {
    ActiveParam P;
    P.Name = Entry.Params[I];
    P.Range = I < Entry.Ranges.size() ? Entry.Ranges[I] : SymRange();
    if (P.Range.Step && P.Range.Step.isConstant() &&
        P.Range.Step.constantValue() > 1)
      P.Stride = P.Range.Step.constantValue();
    Active.push_back(P);
    AllParams[P.Name] = rangeInterval(P.Range);
  }
  for (int Id : Scope)
    if (auto *Inner = dyn_cast<sdfg::MapEntry>(S.getNode(Id)))
      for (size_t I = 0; I < Inner->Params.size(); ++I)
        if (I < Inner->Ranges.size())
          AllParams[Inner->Params[I]] = rangeInterval(Inner->Ranges[I]);

  auto Reason = [&](const char *Rs) {
    if (std::find(Gd.Reasons.begin(), Gd.Reasons.end(), Rs) ==
        Gd.Reasons.end())
      Gd.Reasons.push_back(Rs);
  };
  auto AddTerm = [&](const GuardTerm &T) {
    const std::string Txt = T.text();
    for (const GuardTerm &Have : Gd.Terms)
      if (Have.text() == Txt)
        return;
    Gd.Terms.push_back(T);
  };

  auto Acc = collectScopeAccesses(S, Entry, Scope);
  if (Unproven && !singleIteration(Entry)) {
    for (const auto &KV : Acc) {
      const std::string &Data = KV.first;
      if (!G.hasData(Data))
        continue;
      const sdfg::DataDesc &D = G.desc(Data);
      if (D.K == sdfg::DataDesc::Kind::Stream)
        continue;
      const std::vector<ScopeAccess> &As = KV.second;
      bool AnyWrite = false;
      for (const ScopeAccess &A : As)
        AnyWrite |= A.Write;
      if (!AnyWrite)
        continue;

      if (D.K == sdfg::DataDesc::Kind::Scalar) {
        if (Entry.isPrivate(Data))
          continue;
        for (const ScopeAccess &A : As)
          if (A.Write && !A.Wcr) {
            // A cross-iteration scalar dependence has no residual check:
            // the conflict is on the value itself.
            Reason("scalar-dependence");
            Gd.Covered = false;
            break;
          }
        continue;
      }

      // Mirror checkMapScope's pair enumeration to find exactly the
      // unproven pairs the scope was flagged for.
      std::vector<std::pair<size_t, size_t>> Bad;
      for (size_t I = 0; I < As.size(); ++I) {
        if (!As[I].Write)
          continue;
        for (size_t J = 0; J < As.size(); ++J) {
          if (J < I && As[J].Write)
            continue; // Mirror of an already-examined write-write pair.
          const ScopeAccess &W = As[I], &O = As[J];
          if (W.Wcr && O.Wcr)
            continue;
          if (!O.Write && O.Subset.equals(W.Subset) && !W.Wcr && I != J)
            continue; // In-iteration read-modify-write idiom.
          if (proveDisjointAcross(W.Subset, O.Subset, Active, AllParams))
            continue;
          Bad.push_back({I, J});
        }
      }
      if (Bad.empty())
        continue;

      // Indirect subscripts (privatized scalars in the subsets) route to
      // the inspector; its distinctness property covers every pair of
      // the single shared subset at once.
      bool AnyIdx = false;
      for (const auto &IJ : Bad) {
        std::set<std::string> Syms;
        As[IJ.first].Subset.collectSymbols(Syms);
        As[IJ.second].Subset.collectSymbols(Syms);
        for (const std::string &Pv : Entry.PrivateData)
          AnyIdx |= Syms.count(Pv) != 0;
      }
      if (AnyIdx) {
        GuardTerm T;
        if (matchInspector(G, S, Entry, Scope, Data, As, Acc, T)) {
          Reason("indirect-subscript");
          AddTerm(T);
        } else {
          Reason("indirect-subscript");
          Gd.Covered = false;
        }
        continue;
      }

      for (const auto &IJ : Bad) {
        const ScopeAccess &W = As[IJ.first], &O = As[IJ.second];
        bool SymbolicStride = false;
        CondResult CR = condDisjointAcross(W.Subset, O.Subset, Active,
                                           AllParams, SymbolicStride);
        SymExpr Ext = extentSeparation(W.Subset, O.Subset, AllParams);
        SymExpr Cond;
        if (CR.Ok && CR.Cond)
          Cond = orConds(CR.Cond, Ext);
        else if (Ext)
          Cond = Ext;
        if (!Cond) {
          Reason("unproven-dependence");
          Gd.Covered = false;
          continue;
        }
        Reason(SymbolicStride ? "symbolic-stride" : "unknown-sign-or-trip");
        GuardTerm T;
        T.K = GuardTermKind::SymCond;
        T.Cond = Cond;
        AddTerm(T);
      }
    }

    // The private-scalar escape property has no runtime analogue either:
    // a read-before-write private observes garbage, not a checkable
    // overlap.
    if (!Entry.PrivateData.empty()) {
      std::vector<sdfg::Node *> Topo = S.topologicalOrder();
      std::map<int, size_t> Pos;
      for (size_t I = 0; I < Topo.size(); ++I)
        Pos[Topo[I]->getId()] = I;
      for (const std::string &P : Entry.PrivateData) {
        long FirstWrite = -1, FirstRead = -1;
        for (int Id : Scope) {
          auto *A = dyn_cast<sdfg::AccessNode>(S.getNode(Id));
          if (!A || A->getData() != P)
            continue;
          const long At = static_cast<long>(Pos[Id]);
          bool ValueRead = false;
          for (const sdfg::DataflowEdge *OE : S.outEdges(A))
            ValueRead |= !OE->M.isEmpty();
          if (!S.inEdges(A).empty() && (FirstWrite < 0 || At < FirstWrite))
            FirstWrite = At;
          if (ValueRead && S.inEdges(A).empty() &&
              (FirstRead < 0 || At < FirstRead))
            FirstRead = At;
        }
        if (FirstRead >= 0 && (FirstWrite < 0 || FirstWrite > FirstRead)) {
          Reason("private-escape");
          Gd.Covered = false;
        }
      }
    }
  }

  // Restrict-contract residual for speculative scopes: the frontend maps
  // each pointer parameter to its own container and the proofs above
  // assume distinct containers never alias. A proven-but-speculative
  // scope keeps exactly that assumption as its runtime check; an
  // unproven one gets it in addition to the terms above.
  if (Entry.Speculative) {
    std::vector<std::string> Written, Touched;
    for (const auto &KV : Acc) {
      if (!G.hasData(KV.first))
        continue;
      const sdfg::DataDesc &D = G.desc(KV.first);
      if (D.Transient || D.K == sdfg::DataDesc::Kind::Stream)
        continue;
      bool W = false;
      for (const ScopeAccess &A : KV.second)
        W |= A.Write;
      Touched.push_back(KV.first);
      if (W)
        Written.push_back(KV.first);
    }
    bool AnyPair = false;
    for (const std::string &W : Written)
      for (const std::string &O : Touched) {
        if (O == W)
          continue;
        GuardTerm T;
        T.K = GuardTermKind::PtrDisjoint;
        // Canonical order keeps (A,B) and (B,A) one term.
        T.A = std::min(W, O);
        T.B = std::max(W, O);
        AddTerm(T);
        AnyPair = true;
      }
    if (AnyPair)
      Reason("may-overlap-containers");
  }

  Res.Guards.push_back(std::move(Gd));
}

//===----------------------------------------------------------------------===//
// Interstate flow (symbol bounds, feasible paths, definite writes)
//===----------------------------------------------------------------------===//

/// Map scope chains per node: the innermost-to-outermost MapEntry ids each
/// node sits under.
std::map<int, std::vector<const sdfg::MapEntry *>>
scopeChains(const sdfg::State &S) {
  std::map<int, std::vector<const sdfg::MapEntry *>> Chains;
  for (const auto &N : S.nodes()) {
    if (auto *E = dyn_cast<sdfg::MapEntry>(N.get())) {
      for (int Id : S.scopeNodes(*E))
        Chains[Id].push_back(E);
    }
  }
  return Chains;
}

/// Per-state symbol facts: Lo <= s (inclusive) and s < Hi (exclusive),
/// derived by a forward meet-over-paths pass over the state machine. Facts
/// start at top (unvisited) and only shrink, so the fixpoint terminates.
struct SymFacts {
  std::map<std::string, Interval> F; // Hi stored *exclusive* here.
  bool Visited = false;
};

/// Cap on how many simultaneous bounds one side of an Interval keeps.
/// (Deliberately NOT encoded as min/max SymExpr composites: the min/max
/// factories run dominance elimination under the positive-symbol
/// assumption, which would silently fold away the constant component a
/// later assignment-kill or path join depends on.)
constexpr unsigned kMaxBoundTerms = 3;

/// Conjoin \p New onto the bound set: everything in the set holds, so
/// keep both (constants collapse to the tighter one, kept at the front;
/// the term count is capped).
void addBound(std::vector<SymExpr> &Set, const SymExpr &New, bool Upper) {
  if (!New)
    return;
  if (New.isConstant()) {
    if (!Set.empty() && Set.front().isConstant()) {
      if ((New.constantValue() < Set.front().constantValue()) == Upper)
        Set.front() = New;
      return;
    }
    Set.insert(Set.begin(), New);
    return;
  }
  for (const SymExpr &B : Set)
    if (B.equals(New))
      return;
  if (Set.size() < kMaxBoundTerms)
    Set.push_back(New);
}

/// Remove the bounds that mention \p Sym. Dropping elements of a
/// conjunction only weakens it, so the remainder is still sound.
void stripBound(std::vector<SymExpr> &Set, const std::string &Sym) {
  for (auto It = Set.begin(); It != Set.end();)
    It = It->usesSymbol(Sym) ? Set.erase(It) : It + 1;
}

/// Join of two bound sets of the same polarity: the strongest
/// conjunction implied by *both* sides. Symbolic bounds survive when
/// present on both sides; constant bounds survive as their hull (max of
/// uppers, min of lows — each side implies its own constant, and the
/// hull is implied by either).
std::vector<SymExpr> joinBound(const std::vector<SymExpr> &A,
                               const std::vector<SymExpr> &B, bool Upper) {
  std::vector<SymExpr> Out;
  SymExpr CA, CB;
  for (const SymExpr &T : A) {
    if (T.isConstant()) {
      if (!CA || (T.constantValue() < CA.constantValue()) == Upper)
        CA = T;
      continue;
    }
    for (const SymExpr &U : B)
      if (!U.isConstant() && T.equals(U)) {
        addBound(Out, T, Upper);
        break;
      }
  }
  for (const SymExpr &U : B)
    if (U.isConstant())
      if (!CB || (U.constantValue() < CB.constantValue()) == Upper)
        CB = U;
  if (CA && CB) {
    const bool TakeB = (CB.constantValue() > CA.constantValue()) == Upper;
    addBound(Out, TakeB ? CB : CA, Upper);
  }
  return Out;
}

bool sameBounds(const std::vector<SymExpr> &A, const std::vector<SymExpr> &B) {
  if (A.size() != B.size())
    return false;
  for (const SymExpr &T : A) {
    bool Found = false;
    for (const SymExpr &U : B)
      Found |= T.equals(U);
    if (!Found)
      return false;
  }
  return true;
}

/// Converts exclusive-Hi facts into the inclusive BoundEnv boundExpr
/// expects.
BoundEnv inclusiveEnv(const std::map<std::string, Interval> &F) {
  BoundEnv Env;
  for (const auto &KV : F) {
    Interval E;
    E.Lo = KV.second.Lo;
    for (const SymExpr &H : KV.second.Hi)
      E.Hi.push_back(H - SymExpr::constant(1));
    Env[KV.first] = E;
  }
  return Env;
}

/// addBound plus the constant resolution of a symbolic bound through the
/// current facts: a guard `addi <= j` under `addi in [1, ...)` also
/// records the constant `1 <= j` — the form contradictory() can compare.
/// Without this, triangular and symbolically-bounded loops keep purely
/// symbolic intervals and their zero-trip exit edges are never refuted.
void addBoundResolved(std::vector<SymExpr> &Set, const SymExpr &New,
                      bool Upper, const std::map<std::string, Interval> &F) {
  addBound(Set, New, Upper);
  if (!New || New.isConstant() || F.empty())
    return;
  for (const SymExpr &C : boundExpr(New, inclusiveEnv(F), Upper))
    if (C.isConstant())
      addBound(Set, C, Upper);
}

void applyCondition(const SymExpr &C, std::map<std::string, Interval> &F,
                    unsigned Depth = 0) {
  if (!C || Depth > 4)
    return;
  switch (C.kind()) {
  case sym::ExprKind::And:
    for (const SymExpr &Op : C.operands())
      applyCondition(Op, F, Depth + 1);
    return;
  case sym::ExprKind::Lt:
  case sym::ExprKind::Le: {
    const SymExpr &L = C.operands()[0], &R = C.operands()[1];
    const bool Lt = C.kind() == sym::ExprKind::Lt;
    if (L.isSymbol() && !R.usesSymbol(L.symbolName())) {
      Interval &I = F[L.symbolName()];
      addBoundResolved(I.Hi, Lt ? R : R + SymExpr::constant(1),
                       /*Upper=*/true, F);
    }
    if (R.isSymbol() && !L.usesSymbol(R.symbolName())) {
      Interval &I = F[R.symbolName()];
      addBoundResolved(I.Lo, Lt ? L + SymExpr::constant(1) : L,
                       /*Upper=*/false, F);
    }
    return;
  }
  case sym::ExprKind::Eq: {
    const SymExpr &L = C.operands()[0], &R = C.operands()[1];
    if (L.isSymbol() && !R.usesSymbol(L.symbolName())) {
      Interval &I = F[L.symbolName()];
      addBoundResolved(I.Lo, R, /*Upper=*/false, F);
      addBoundResolved(I.Hi, R + SymExpr::constant(1), /*Upper=*/true, F);
    } else if (R.isSymbol() && !L.usesSymbol(R.symbolName())) {
      Interval &I = F[R.symbolName()];
      addBoundResolved(I.Lo, L, /*Upper=*/false, F);
      addBoundResolved(I.Hi, L + SymExpr::constant(1), /*Upper=*/true, F);
    }
    return;
  }
  default:
    return;
  }
}

void applyAssignment(const std::string &Sym, const SymExpr &Rhs,
                     std::map<std::string, Interval> &F,
                     const BoundEnv *Scalars,
                     const std::set<std::string> &DataSyms) {
  // Bound components mentioning the reassigned symbol are stale; strip
  // just those (the rest of the conjunction still holds).
  for (auto It = F.begin(); It != F.end();) {
    stripBound(It->second.Lo, Sym);
    stripBound(It->second.Hi, Sym);
    if (It->second.empty())
      It = F.erase(It);
    else
      ++It;
  }
  Interval Old;
  auto It = F.find(Sym);
  if (It != F.end()) {
    Old = It->second;
    F.erase(It);
  }
  if (!Rhs)
    return;
  SymExpr A, B;
  if (!Rhs.usesSymbol(Sym)) {
    // A right-hand side naming a data container (an interstate scalar
    // load) is not a stable expression — the container may be rewritten
    // while the fact lives on — so it must never enter stored bounds.
    // Constant range knowledge about the container's *content* (from the
    // scalar-range pass) substitutes for it.
    std::set<std::string> Syms;
    Rhs.collectSymbols(Syms);
    bool MentionsData = false;
    for (const std::string &Name : Syms)
      MentionsData |= DataSyms.count(Name) != 0;
    Interval I;
    if (!MentionsData) {
      // The symbolic pair plus its constant resolution through the
      // current facts: `j = i` under `i in [0, 24)` records the
      // constants [0, 24) for j alongside `[i, i+1)`. A triangular
      // loop's zero-trip exit (`j = i; ... if (24 <= j)`) is only
      // refutable through the constant form.
      addBoundResolved(I.Lo, Rhs, /*Upper=*/false, F);
      addBoundResolved(I.Hi, Rhs + SymExpr::constant(1), /*Upper=*/true, F);
    } else if (Scalars && !Scalars->empty()) {
      for (const SymExpr &C : boundExpr(Rhs, *Scalars, /*Upper=*/false))
        if (C.isConstant())
          addBound(I.Lo, C, /*Upper=*/false);
      for (const SymExpr &C :
           boundExpr(Rhs + SymExpr::constant(1), *Scalars, /*Upper=*/true))
        if (C.isConstant())
          addBound(I.Hi, C, /*Upper=*/true);
    }
    if (!I.empty())
      F[Sym] = I;
  } else if (Rhs.linearIn(Sym, A, B) && A && A.isConstantValue(1) && B &&
             B.isConstant()) {
    // s = s + c: a nonnegative step preserves lower bounds, a
    // nonpositive one preserves upper bounds.
    Interval New;
    if (B.constantValue() >= 0)
      New.Lo = Old.Lo;
    else
      New.Hi = Old.Hi;
    if (!New.empty())
      F[Sym] = New;
  }
}

bool sameFacts(const std::map<std::string, Interval> &A,
               const std::map<std::string, Interval> &B) {
  if (A.size() != B.size())
    return false;
  auto AIt = A.begin(), BIt = B.begin();
  for (; AIt != A.end(); ++AIt, ++BIt) {
    if (AIt->first != BIt->first)
      return false;
    const Interval &X = AIt->second, &Y = BIt->second;
    if (!sameBounds(X.Lo, Y.Lo) || !sameBounds(X.Hi, Y.Hi))
      return false;
  }
  return true;
}

/// Renders a bound set for debug output.
std::string boundsStr(const std::vector<SymExpr> &Bs) {
  if (Bs.empty())
    return "?";
  std::string S;
  for (size_t I = 0; I < Bs.size(); ++I)
    S += (I ? "&" : "") + Bs[I].str();
  return S;
}

/// Pointwise join: a fact survives in \p In only if present (after
/// joining) on the \p Out side too.
void joinFactsInto(std::map<std::string, Interval> &In,
                   const std::map<std::string, Interval> &Out) {
  for (auto It = In.begin(); It != In.end();) {
    auto OIt = Out.find(It->first);
    Interval J;
    if (OIt != Out.end()) {
      J.Lo = joinBound(It->second.Lo, OIt->second.Lo, /*Upper=*/false);
      J.Hi = joinBound(It->second.Hi, OIt->second.Hi, /*Upper=*/true);
    }
    if (J.empty())
      It = In.erase(It);
    else {
      It->second = std::move(J);
      ++It;
    }
  }
}

/// An empty constant interval means the fact set describes no execution:
/// the path that produced it cannot actually be taken. (This is how a
/// zero-trip-guarded loop's exit edge is refuted for the entry path —
/// `i = 0` against condition `N <= i`.)
bool contradictory(const std::map<std::string, Interval> &F) {
  for (const auto &KV : F) {
    const Interval &I = KV.second;
    if (!I.Lo.empty() && I.Lo.front().isConstant() && !I.Hi.empty() &&
        I.Hi.front().isConstant() &&
        I.Lo.front().constantValue() >= I.Hi.front().constantValue())
      return true; // Hi is exclusive: lo >= hi is empty.
  }
  return false;
}

/// True when [Begin, End) provably holds at least one element for every
/// binding of the enclosing parameters in \p Env. A min-clamped end peels
/// per operand (min(a, b) > x iff a > x and b > x), so a tiled intra
/// range `t : min(n, t + T)` proves nonempty by cancellation (t + T - t)
/// on one side and by the tile parameter's interval (n - t >= 1) on the
/// other.
bool provablyNonEmpty(const SymExpr &Begin, const SymExpr &End,
                      const BoundEnv &Env, unsigned Depth = 0) {
  if (!Begin || !End)
    return false;
  if (End.kind() == sym::ExprKind::Min && Depth <= kMaxDepth) {
    for (const SymExpr &Op : End.operands())
      if (!provablyNonEmpty(Begin, Op, Env, Depth + 1))
        return false;
    return true;
  }
  for (const SymExpr &Lo : boundExpr(End - Begin, Env, /*Upper=*/false))
    if (auto P = SymExpr::ge(Lo, SymExpr::constant(1)).tryProve())
      if (*P)
        return true;
  return false;
}

/// True when every map scope enclosing \p Node provably runs at least one
/// iteration (so the node's effect definitely happens when the state
/// executes). Ranges may mention enclosing parameters; emptiness is
/// checked under every sibling parameter's interval, which is sound
/// because each interval over-approximates the bindings that occur.
bool definiteNode(
    const std::map<int, std::vector<const sdfg::MapEntry *>> &Chains,
    int Node) {
  auto CIt = Chains.find(Node);
  if (CIt == Chains.end())
    return true;
  BoundEnv Env;
  for (const sdfg::MapEntry *ME : CIt->second)
    for (size_t I = 0; I < ME->Params.size(); ++I)
      if (I < ME->Ranges.size())
        Env[ME->Params[I]] = rangeInterval(ME->Ranges[I]);
  for (const sdfg::MapEntry *ME : CIt->second)
    for (const SymRange &R : ME->Ranges) {
      SymExpr N = R.numElements();
      if (N && N.isConstant()) {
        if (N.constantValue() < 1)
          return false;
        continue;
      }
      if (!provablyNonEmpty(R.Begin, R.End, Env))
        return false;
    }
  return true;
}

/// Containers definitely written when \p S executes: an edge into one of
/// their access nodes (every materialized write ends at an access node)
/// that is not hidden inside a possibly-empty map scope.
std::set<std::string> writesIn(const sdfg::State &S) {
  auto Chains = scopeChains(S);
  std::set<std::string> W;
  for (const sdfg::DataflowEdge &E : S.edges()) {
    if (E.M.isEmpty())
      continue;
    auto *A = dyn_cast<sdfg::AccessNode>(S.getNode(E.Dst));
    if (A && definiteNode(Chains, E.Dst))
      W.insert(A->getData());
  }
  return W;
}

/// Converts a tasklet expression to a symbolic one where possible:
/// integer constants, symbolic leaves, and +/-/* over those. Anything
/// touching an input connector or float arithmetic is not representable
/// (null result).
SymExpr texprToSym(const sdfg::TExpr &E) {
  using TK = sdfg::TExpr::Kind;
  switch (E.K) {
  case TK::ConstI:
    return SymExpr::constant(E.I);
  case TK::Sym:
    return E.Sym;
  case TK::Op: {
    if (E.Children.size() != 2 ||
        (E.Name != "add" && E.Name != "sub" && E.Name != "mul"))
      return SymExpr();
    SymExpr A = texprToSym(E.Children[0]);
    SymExpr B = texprToSym(E.Children[1]);
    if (!A || !B)
      return SymExpr();
    return E.Name == "add" ? A + B : E.Name == "sub" ? A - B : A * B;
  }
  default:
    return SymExpr();
  }
}

/// Flow facts that hold at a destination state's *entry* when control
/// arrives via one particular interstate edge.
struct EdgeFlow {
  std::map<std::string, Interval> F;
  std::set<std::string> Defs; // Containers written on every such path.
  bool Visited = false;
};

/// The converged whole-graph answer.
struct FlowInfo {
  std::map<int, SymFacts> States; // Symbol facts at state entry.
  std::map<int, std::set<std::string>> DefIn; // Definitely written.
  std::set<int> Reached;
  bool Converged = false;
};

/// The inclusive BoundEnv a state's interstate facts induce (SymFacts
/// store exclusive upper bounds).
BoundEnv entryEnv(const std::map<int, SymFacts> &Facts,
                  const sdfg::State &S) {
  BoundEnv Base;
  auto FIt = Facts.find(S.getId());
  if (FIt != Facts.end() && FIt->second.Visited)
    for (const auto &KV : FIt->second.F) {
      Interval I;
      I.Lo = KV.second.Lo;
      for (const SymExpr &H : KV.second.Hi)
        I.Hi.push_back(H - SymExpr::constant(1));
      Base[KV.first] = I;
    }
  return Base;
}

/// Forward pass to fixpoint at *edge* granularity. Each round recomputes
/// every edge's facts from scratch: the source state's entry is taken as
/// the set of per-predecessor-edge fact classes (not their join), the
/// edge's condition is applied to each class separately, and classes it
/// refutes contribute nothing — one level of path sensitivity, enough to
/// see that a loop's exit edge is unreachable before the first
/// iteration. Surviving classes are then joined, so only a *converged*
/// solution is a sound meet-over-paths answer; if the round cap is hit
/// first, everything is discarded and callers fall back to conservative
/// behavior. \p ScalarOut optionally supplies per-state constant ranges
/// of scalar containers (for interstate scalar loads).
FlowInfo flowFacts(const sdfg::SDFG &G,
                   const std::map<int, BoundEnv> *ScalarOut) {
  FlowInfo R;
  sdfg::State *Start = G.getStartState();
  if (!Start)
    return R;
  const std::vector<sdfg::InterstateEdge> &Edges = G.interstateEdges();

  std::map<int, std::vector<size_t>> InEdges;
  for (size_t I = 0; I < Edges.size(); ++I)
    InEdges[Edges[I].Dst].push_back(I);

  std::set<std::string> DataSyms;
  for (const auto &KV : G.descs())
    DataSyms.insert(KV.first);

  std::map<int, std::set<std::string>> Writes;
  for (const auto &SP : G.states())
    Writes[SP->getId()] = writesIn(*SP);

  std::vector<EdgeFlow> EF(Edges.size());
  const std::map<std::string, Interval> EmptyF;
  const std::set<std::string> EmptyD;
  const unsigned MaxRounds =
      4 * static_cast<unsigned>(G.states().size() + Edges.size()) + 8;
  bool Converged = false;
  for (unsigned Round = 0; Round < MaxRounds && !Converged; ++Round) {
    bool Changed = false;
    for (size_t I = 0; I < Edges.size(); ++I) {
      const sdfg::InterstateEdge &E = Edges[I];
      // Entry fact classes of the source state, kept separate.
      std::vector<std::pair<const std::map<std::string, Interval> *,
                            const std::set<std::string> *>>
          Contribs;
      if (E.Src == Start->getId())
        Contribs.push_back({&EmptyF, &EmptyD});
      auto PIt = InEdges.find(E.Src);
      if (PIt != InEdges.end())
        for (size_t P : PIt->second)
          if (EF[P].Visited)
            Contribs.push_back({&EF[P].F, &EF[P].Defs});

      const BoundEnv *Scal = nullptr;
      if (ScalarOut) {
        auto SIt = ScalarOut->find(E.Src);
        if (SIt != ScalarOut->end())
          Scal = &SIt->second;
      }
      std::map<std::string, Interval> NewF;
      std::set<std::string> NewD;
      bool Any = false;
      for (const auto &C : Contribs) {
        std::map<std::string, Interval> F = *C.first;
        applyCondition(E.Condition, F);
        if (contradictory(F))
          continue; // This path class cannot take the edge.
        for (const auto &A : E.Assignments)
          applyAssignment(A.first, A.second, F, Scal, DataSyms);
        std::set<std::string> D = *C.second;
        const std::set<std::string> &W = Writes[E.Src];
        D.insert(W.begin(), W.end());
        if (!Any) {
          NewF = std::move(F);
          NewD = std::move(D);
          Any = true;
          continue;
        }
        joinFactsInto(NewF, F);
        for (auto It = NewD.begin(); It != NewD.end();)
          It = D.count(*It) ? std::next(It) : NewD.erase(It);
      }
      if (!Any) {
        if (EF[I].Visited) { // Facts shifted and re-refuted it: retract.
          EF[I] = EdgeFlow();
          Changed = true;
        }
        continue;
      }
      if (!EF[I].Visited || !sameFacts(EF[I].F, NewF) ||
          EF[I].Defs != NewD) {
        if (const char *Dbg = std::getenv("DCIR_ANALYSIS_DEBUG"))
          if (std::atoi(Dbg) >= 2) {
            std::fprintf(stderr, "round %u edge %d->%d:", Round, E.Src,
                         E.Dst);
            for (const auto &KV : NewF)
              std::fprintf(stderr, " %s in [%s, %s)", KV.first.c_str(),
                           boundsStr(KV.second.Lo).c_str(),
                           boundsStr(KV.second.Hi).c_str());
            std::fprintf(stderr, "\n");
          }
        EF[I].Visited = true;
        EF[I].F = std::move(NewF);
        EF[I].Defs = std::move(NewD);
        Changed = true;
      }
    }
    Converged = !Changed;
  }
  if (!Converged)
    return R; // Claim nothing: a non-fixpoint answer may be too strong.

  R.Converged = true;
  R.Reached.insert(Start->getId());
  R.States[Start->getId()].Visited = true;
  R.DefIn[Start->getId()];
  for (const auto &SP : G.states()) {
    const int Id = SP->getId();
    if (Id == Start->getId())
      continue;
    std::map<std::string, Interval> F;
    std::set<std::string> D;
    bool Any = false;
    auto PIt = InEdges.find(Id);
    if (PIt != InEdges.end())
      for (size_t P : PIt->second) {
        if (!EF[P].Visited)
          continue;
        if (!Any) {
          F = EF[P].F;
          D = EF[P].Defs;
          Any = true;
          continue;
        }
        joinFactsInto(F, EF[P].F);
        for (auto It = D.begin(); It != D.end();)
          It = EF[P].Defs.count(*It) ? std::next(It) : D.erase(It);
      }
    if (!Any)
      continue; // Unreachable.
    R.Reached.insert(Id);
    SymFacts &SF = R.States[Id];
    SF.Visited = true;
    SF.F = std::move(F);
    R.DefIn[Id] = std::move(D);
  }
  return R;
}

/// Per-state constant value ranges of scalar containers at *state exit*
/// (which is when interstate assignments read them). A write whose value
/// reduces to a constant interval under the writing state's facts
/// contributes it; any other write makes the content unknown. Ranges
/// join as constant hulls (may-analysis), and a container absent on any
/// incoming path is unknown.
std::map<int, BoundEnv> scalarRanges(const sdfg::SDFG &G,
                                     const FlowInfo &Flow) {
  std::map<int, BoundEnv> Out;
  sdfg::State *Start = G.getStartState();
  if (!Start || !Flow.Converged)
    return Out;

  struct ScalarEffect {
    bool Seen = false;
    bool Kill = false;     // Some write's value is not representable.
    bool Definite = true;  // Every write executes when the state runs.
    Interval I;            // Hull of written values (inclusive).
  };
  std::map<int, std::map<std::string, ScalarEffect>> Effects;
  bool AnyEffect = false;
  for (const auto &SP : G.states()) {
    const sdfg::State &S = *SP;
    BoundEnv Base = entryEnv(Flow.States, S);
    auto Chains = scopeChains(S);
    for (const sdfg::DataflowEdge &E : S.edges()) {
      if (E.M.isEmpty())
        continue;
      auto *A = dyn_cast<sdfg::AccessNode>(S.getNode(E.Dst));
      if (!A || !G.hasData(A->getData()))
        continue;
      if (G.desc(A->getData()).K != sdfg::DataDesc::Kind::Scalar)
        continue;
      ScalarEffect &Eff = Effects[S.getId()][A->getData()];
      AnyEffect = true;
      SymExpr V;
      if (E.M.Wcr.empty()) // WCR combines with the old value: unknown.
        if (auto *T = dyn_cast<sdfg::Tasklet>(S.getNode(E.Src))) {
          auto CIt = T->Code.find(E.SrcConn);
          if (CIt != T->Code.end())
            V = texprToSym(CIt->second);
        }
      Interval VI;
      if (V) {
        BoundEnv Env = Base;
        auto ChIt = Chains.find(E.Dst);
        if (ChIt != Chains.end())
          for (const sdfg::MapEntry *ME : ChIt->second)
            for (size_t PI = 0; PI < ME->Params.size(); ++PI)
              if (PI < ME->Ranges.size())
                Env[ME->Params[PI]] = rangeInterval(ME->Ranges[PI]);
        for (const SymExpr &C : boundExpr(V, Env, /*Upper=*/false))
          if (C.isConstant())
            addBound(VI.Lo, C, /*Upper=*/false);
        for (const SymExpr &C : boundExpr(V, Env, /*Upper=*/true))
          if (C.isConstant())
            addBound(VI.Hi, C, /*Upper=*/true);
      }
      if (VI.Lo.empty() || VI.Hi.empty()) {
        Eff.Kill = true;
      } else if (!Eff.Seen) {
        Eff.I = VI;
      } else {
        Eff.I.Lo = joinBound(Eff.I.Lo, VI.Lo, /*Upper=*/false);
        Eff.I.Hi = joinBound(Eff.I.Hi, VI.Hi, /*Upper=*/true);
      }
      Eff.Seen = true;
      Eff.Definite &= definiteNode(Chains, E.Dst);
    }
  }
  if (!AnyEffect)
    return Out; // Nothing to track; spare the caller a second fixpoint.

  std::map<int, std::vector<const sdfg::InterstateEdge *>> Preds;
  for (const sdfg::InterstateEdge &E : G.interstateEdges())
    Preds[E.Dst].push_back(&E);
  std::map<int, bool> Visited;
  const unsigned MaxRounds =
      4 * static_cast<unsigned>(G.states().size() +
                                G.interstateEdges().size()) +
      8;
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    bool Changed = false;
    for (const auto &SP : G.states()) {
      const int Id = SP->getId();
      BoundEnv In;
      bool Any = false;
      if (Id == Start->getId()) {
        Any = true; // Entry: contents unknown, In stays empty.
      } else {
        auto PIt = Preds.find(Id);
        if (PIt != Preds.end())
          for (const sdfg::InterstateEdge *E : PIt->second) {
            if (!Visited[E->Src])
              continue;
            const BoundEnv &P = Out[E->Src];
            if (!Any) {
              In = P;
              Any = true;
              continue;
            }
            for (auto It = In.begin(); It != In.end();) {
              auto OIt = P.find(It->first);
              if (OIt == P.end()) {
                It = In.erase(It);
                continue;
              }
              It->second.Lo =
                  joinBound(It->second.Lo, OIt->second.Lo, /*Upper=*/false);
              It->second.Hi =
                  joinBound(It->second.Hi, OIt->second.Hi, /*Upper=*/true);
              if (It->second.Lo.empty() || It->second.Hi.empty())
                It = In.erase(It);
              else
                ++It;
            }
          }
      }
      if (!Any)
        continue;
      auto EIt = Effects.find(Id);
      if (EIt != Effects.end())
        for (const auto &KV : EIt->second) {
          const ScalarEffect &Eff = KV.second;
          if (Eff.Kill) {
            In.erase(KV.first);
          } else if (Eff.Definite) {
            In[KV.first] = Eff.I;
          } else {
            // May or may not have run: hull with the incoming value, or
            // unknown if that was unknown.
            auto It = In.find(KV.first);
            if (It != In.end()) {
              It->second.Lo =
                  joinBound(It->second.Lo, Eff.I.Lo, /*Upper=*/false);
              It->second.Hi =
                  joinBound(It->second.Hi, Eff.I.Hi, /*Upper=*/true);
              if (It->second.Lo.empty() || It->second.Hi.empty())
                In.erase(It);
            }
          }
        }
      if (!Visited[Id] || !sameFacts(Out[Id], In)) {
        Visited[Id] = true;
        Out[Id] = std::move(In);
        Changed = true;
      }
    }
    if (!Changed)
      return Out;
  }
  Out.clear(); // Round cap hit: claim nothing.
  return Out;
}

/// The full interstate analysis: facts, then scalar content ranges under
/// those facts, then facts again with the ranges feeding interstate
/// scalar loads.
FlowInfo computeFlow(const sdfg::SDFG &G) {
  FlowInfo F1 = flowFacts(G, nullptr);
  if (!F1.Converged)
    return F1;
  std::map<int, BoundEnv> SR = scalarRanges(G, F1);
  if (SR.empty())
    return F1;
  FlowInfo F2 = flowFacts(G, &SR);
  return F2.Converged ? F2 : F1;
}

//===----------------------------------------------------------------------===//
// Bounds safety
//===----------------------------------------------------------------------===//

/// Attained extreme values of enclosing map parameters: a map executes
/// *every* binding of its range, so for a parameter with constant bounds
/// the first and last attained values are definitely executed — unlike
/// interstate facts, which only bound what values are possible.
using AttainedMap = std::map<std::string, std::pair<std::int64_t, std::int64_t>>;

/// All variants of \p X with each attained parameter it uses pinned to its
/// first or last executed value (cross product, capped at 4 parameters).
/// Each result is the index expression of an access that definitely
/// executes, so a violation proved on any one of them is a violation of
/// the whole scope.
std::vector<SymExpr> attainedVariants(const SymExpr &X,
                                      const AttainedMap &Attained) {
  std::vector<SymExpr> Out{X};
  unsigned Used = 0;
  for (const auto &KV : Attained) {
    if (!X.usesSymbol(KV.first) || ++Used > 4)
      continue;
    std::vector<SymExpr> Next;
    for (const SymExpr &V : Out) {
      Next.push_back(V.substituteValues({{KV.first, KV.second.first}}));
      if (KV.second.second != KV.second.first)
        Next.push_back(V.substituteValues({{KV.first, KV.second.second}}));
    }
    Out = std::move(Next);
  }
  return Out;
}

/// Every symbol the graph references anywhere *outside* container shape
/// declarations: memlet subsets, map ranges, tasklet code, interstate
/// conditions and assignments (targets and right-hand sides). A shape
/// symbol absent from this set is "opaque": nothing in the program
/// relates it to anything else, so no prover — however complete — could
/// compare a subscript against it. The frontend mints such symbols for
/// dynamic memref extents (s_0, s_1, ...); the comparison is a *caller
/// binding contract*, not a program property.
std::set<std::string> nonShapeSymbols(const sdfg::SDFG &G) {
  std::set<std::string> Out;
  std::function<void(const sdfg::TExpr &)> WalkT =
      [&](const sdfg::TExpr &T) {
        if (T.K == sdfg::TExpr::Kind::Sym && T.Sym)
          T.Sym.collectSymbols(Out);
        for (const sdfg::TExpr &C : T.Children)
          WalkT(C);
      };
  auto WalkRange = [&](const SymRange &R) {
    if (R.Begin)
      R.Begin.collectSymbols(Out);
    if (R.End)
      R.End.collectSymbols(Out);
    if (R.Step)
      R.Step.collectSymbols(Out);
  };
  for (const auto &SP : G.states()) {
    const sdfg::State &S = *SP;
    for (const sdfg::DataflowEdge &E : S.edges())
      for (size_t D = 0; D < E.M.Subset.rank(); ++D)
        WalkRange(E.M.Subset.dim(D));
    for (const auto &N : S.nodes()) {
      if (auto *ME = dyn_cast<sdfg::MapEntry>(N.get()))
        for (const SymRange &R : ME->Ranges)
          WalkRange(R);
      if (auto *T = dyn_cast<sdfg::Tasklet>(N.get()))
        for (const auto &KV : T->Code)
          WalkT(KV.second);
    }
  }
  for (const sdfg::InterstateEdge &IE : G.interstateEdges()) {
    if (IE.Condition)
      IE.Condition.collectSymbols(Out);
    for (const auto &A : IE.Assignments) {
      Out.insert(A.first);
      if (A.second)
        A.second.collectSymbols(Out);
    }
  }
  return Out;
}

void checkEdgeBounds(const sdfg::SDFG &G, const sdfg::State &S,
                     const sdfg::DataflowEdge &E, const BoundEnv &Env,
                     const AttainedMap &Attained,
                     const std::set<std::string> &NonShapeSyms,
                     AnalysisResult &Res) {
  const sdfg::DataDesc &D = G.desc(E.M.Data);
  auto Flag = [&](Kind K, Severity Sev, const std::string &Msg) {
    Finding F;
    F.Sev = Sev;
    F.K = K;
    F.State = S.getName();
    F.Node = E.Dst;
    F.Container = E.M.Data;
    F.Subset = E.M.Subset.str();
    if (D.K == sdfg::DataDesc::Kind::Array) {
      F.Shape = "[";
      for (size_t I = 0; I < D.Shape.size(); ++I)
        F.Shape += (I ? ", " : "") + D.Shape[I].str();
      F.Shape += "]";
    }
    F.Message = Msg;
    Res.Findings.push_back(F);
  };

  // Rank check first (mirrors — independently — the validate() rule): a
  // subset with more dimensions than the container declares linearizes
  // into memory the container does not own.
  if (E.M.Subset.rank() > D.rank()) {
    Flag(Kind::RankMismatch, Severity::Error,
         "memlet subset " + E.M.Subset.str() + " has rank " +
             std::to_string(E.M.Subset.rank()) + " but container '" +
             E.M.Data + "' declares rank " + std::to_string(D.rank()));
    return;
  }
  if (D.K != sdfg::DataDesc::Kind::Array)
    return;

  for (size_t Dim = 0; Dim < E.M.Subset.rank(); ++Dim) {
    const SymRange &R = E.M.Subset.dim(Dim);
    if (!R.Begin || !R.End)
      continue;
    // An empty range accesses nothing.
    if (auto P = SymExpr::ge(R.Begin, R.End).tryProve())
      if (*P)
        continue;
    const SymExpr &Extent = D.Shape[Dim];
    const std::vector<SymExpr> Zero{SymExpr::constant(0)};
    const std::vector<SymExpr> Ext{Extent};
    std::vector<SymExpr> BeginLo = boundExpr(R.Begin, Env, /*Upper=*/false);
    std::vector<SymExpr> EndHi = boundExpr(R.End, Env, /*Upper=*/true);
    const bool LowOk = proveLeAny(Zero, BeginLo);
    const bool HighOk = proveLeAny(EndHi, Ext);
    if (LowOk && HighOk)
      continue;
    // Provable violation? The *least* the subset reaches is below zero,
    // or the least its end reaches already exceeds the extent. Plain
    // element-wise bounding can never prove a loop's last trip overruns
    // (the first trip is in bounds), so map parameters are additionally
    // pinned to their attained extremes: those bindings definitely
    // execute, and one provably-bad binding convicts the scope.
    bool ProvenLow = false, ProvenHigh = false;
    for (const SymExpr &V : attainedVariants(R.Begin, Attained))
      for (const SymExpr &Hi : boundExpr(V, Env, /*Upper=*/true))
        if (auto P = SymExpr::lt(Hi, SymExpr::constant(0)).tryProve())
          ProvenLow |= *P;
    for (const SymExpr &V : attainedVariants(R.End, Attained))
      for (const SymExpr &Lo : boundExpr(V, Env, /*Upper=*/false))
        if (auto P = SymExpr::gt(Lo, Extent).tryProve())
          ProvenHigh |= *P;
    const std::string Where =
        "dimension " + std::to_string(Dim) + " of '" + E.M.Data + "' (" +
        R.str() + " vs extent " + Extent.str() + ")";
    if (ProvenLow || ProvenHigh) {
      Flag(Kind::OutOfBounds, Severity::Error,
           "subset provably out of bounds in " + Where);
      return; // One finding per memlet keeps reports readable.
    }
    // Deferred caller obligation: when only the upper comparison fails
    // and the extent is an opaque shape symbol (see nonShapeSymbols),
    // the derived subscript bound *is* the binding contract — record it
    // as an assumption instead of warning. Under shape specialization
    // both sides become constants and the comparison runs for real.
    if (LowOk && !HighOk && !EndHi.empty() && Extent.isSymbol() &&
        !NonShapeSyms.count(Extent.symbolName())) {
      // Prefer a candidate expressed over container names (the caller's
      // own parameters): "s_2 >= ni*nj" reads as a contract,
      // "s_2 >= muli_9 + nj" (promoted flow temporaries) does not.
      SymExpr Best = EndHi.front();
      for (const SymExpr &Cand : EndHi) {
        std::set<std::string> Syms;
        Cand.collectSymbols(Syms);
        bool AllParams = true;
        for (const std::string &Sy : Syms)
          AllParams &= G.hasData(Sy);
        if (AllParams) {
          Best = Cand;
          break;
        }
      }
      const std::string Obl = E.M.Data + ": requires " + Extent.str() +
                              " >= " + Best.str() + " (opaque extent)";
      if (std::find(Res.Assumptions.begin(), Res.Assumptions.end(), Obl) ==
          Res.Assumptions.end())
        Res.Assumptions.push_back(Obl);
      continue; // Remaining dimensions still get checked.
    }
    Flag(Kind::BoundsUnproven, Severity::Warning,
         "cannot prove subset within bounds in " + Where);
    return; // One finding per memlet keeps reports readable.
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

AnalysisResult analysis::checkRaces(const sdfg::SDFG &G) {
  AnalysisResult Res;
  for (const auto &SP : G.states()) {
    const sdfg::State &S = *SP;
    for (const auto &N : S.nodes())
      if (auto *E = dyn_cast<sdfg::MapEntry>(N.get()))
        checkMapScope(G, S, *E, Res);
  }
  return Res;
}

AnalysisResult analysis::checkBounds(const sdfg::SDFG &G) {
  AnalysisResult Res;
  FlowInfo Flow = computeFlow(G);
  const std::set<std::string> NonShapeSyms = nonShapeSymbols(G);
  for (const auto &SP : G.states()) {
    const sdfg::State &S = *SP;
    auto Chains = scopeChains(S);
    // Base environment: interstate facts (exclusive his -> inclusive).
    BoundEnv Base = entryEnv(Flow.States, S);
    if (std::getenv("DCIR_ANALYSIS_DEBUG")) {
      std::fprintf(stderr, "facts %s:", S.getName().c_str());
      for (const auto &KV : Base)
        std::fprintf(stderr, " %s in [%s, %s]", KV.first.c_str(),
                     boundsStr(KV.second.Lo).c_str(),
                     boundsStr(KV.second.Hi).c_str());
      std::fprintf(stderr, "\n");
    }
    for (const sdfg::DataflowEdge &E : S.edges()) {
      if (E.M.isEmpty() || !G.hasData(E.M.Data))
        continue;
      BoundEnv Env = Base;
      AttainedMap Attained;
      auto CIt = Chains.find(E.Dst);
      if (CIt == Chains.end())
        CIt = Chains.find(E.Src);
      if (CIt != Chains.end())
        for (const sdfg::MapEntry *ME : CIt->second)
          for (size_t I = 0; I < ME->Params.size(); ++I) {
            if (I >= ME->Ranges.size())
              continue;
            const SymRange &R = ME->Ranges[I];
            Env[ME->Params[I]] = rangeInterval(R);
            // Constant, non-empty, positive-step range: its first and
            // last values are definitely attained by the map.
            if (R.Begin && R.End && R.Begin.isConstant() &&
                R.End.isConstant() &&
                (!R.Step || R.Step.isConstant())) {
              const std::int64_t B = R.Begin.constantValue();
              const std::int64_t En = R.End.constantValue();
              const std::int64_t St = R.Step ? R.Step.constantValue() : 1;
              if (B < En && St >= 1)
                Attained[ME->Params[I]] = {B, B + (En - 1 - B) / St * St};
            }
          }
      checkEdgeBounds(G, S, E, Env, Attained, NonShapeSyms, Res);
    }
  }
  return Res;
}

AnalysisResult analysis::checkInitialization(const sdfg::SDFG &G) {
  AnalysisResult Res;
  sdfg::State *Start = G.getStartState();
  if (!Start)
    return Res;
  // DefIn[S] = containers definitely written on *every* feasible path
  // reaching S, from the interstate flow pass (which prunes refutable
  // paths — a zero-trip-guarded loop's body counts as dominating the
  // code after the loop). Without a converged flow answer, fall back to
  // "nothing known written" (conservative: may warn spuriously, never
  // stays silent wrongly).
  FlowInfo Flow = computeFlow(G);
  const std::set<std::string> None;
  for (const auto &SP : G.states()) {
    const sdfg::State &S = *SP;
    if (Flow.Converged && !Flow.Reached.count(S.getId()) &&
        S.getId() != Start->getId())
      continue; // Unreachable states never execute.
    const std::set<std::string> *InP = &None;
    if (Flow.Converged) {
      auto DIt = Flow.DefIn.find(S.getId());
      if (DIt != Flow.DefIn.end())
        InP = &DIt->second;
    }
    const std::set<std::string> &In = *InP;
    std::vector<sdfg::Node *> Topo = S.topologicalOrder();
    std::set<std::string> Written = In;
    for (sdfg::Node *N : Topo) {
      auto *A = dyn_cast<sdfg::AccessNode>(N);
      if (!A)
        continue;
      const std::string &Data = A->getData();
      if (!G.hasData(Data))
        continue;
      const sdfg::DataDesc &D = G.desc(Data);
      const bool HasIn = !S.inEdges(A).empty();
      const bool HasOut = !S.outEdges(A).empty();
      if (D.Transient && D.K != sdfg::DataDesc::Kind::Stream && HasOut &&
          !HasIn && !Written.count(Data)) {
        Finding F;
        F.Sev = Severity::Warning;
        F.K = Kind::UninitializedRead;
        F.State = S.getName();
        F.Node = A->getId();
        F.Container = Data;
        F.Message = "transient '" + Data +
                    "' is read but not definitely written on every "
                    "feasible path reaching the read (backends "
                    "zero-initialize, so the unwritten path observes "
                    "zeros)";
        Res.Findings.push_back(F);
      }
      if (HasIn)
        Written.insert(Data);
    }
  }
  return Res;
}

void analysis::synthesizeGuards(const sdfg::SDFG &G, AnalysisResult &R) {
  const std::set<std::string> Unproven(R.UnprovenMaps.begin(),
                                       R.UnprovenMaps.end());
  for (const auto &SP : G.states()) {
    const sdfg::State &S = *SP;
    for (const auto &N : S.nodes())
      if (auto *E = dyn_cast<sdfg::MapEntry>(N.get())) {
        const std::string L = analysis::mapLabel(S, *E);
        if (!E->Speculative && !Unproven.count(L))
          continue;
        bool Have = false;
        for (const Guard &Gd : R.Guards)
          Have |= Gd.Map == L;
        if (!Have)
          synthesizeScopeGuard(G, S, *E, Unproven.count(L) != 0, R);
      }
  }
}

AnalysisResult analysis::analyze(const sdfg::SDFG &G) {
  AnalysisResult Res = checkRaces(G);
  Res.append(checkBounds(G));
  Res.append(checkInitialization(G));
  synthesizeGuards(G, Res);
  return Res;
}
