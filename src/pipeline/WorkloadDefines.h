//===- WorkloadDefines.h - workload #define scaling and overrides -------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Polybench workloads carry their problem sizes as object-like
/// integer `#define`s. The bench harness scales them (`--parallel-scale`)
/// and pins individual names to explicit values (`--define=NAME=VALUE`).
/// The two knobs compose with last-writer-wins semantics: an explicitly
/// overridden define is *pinned* — the scale factor never touches it, so
/// `--parallel-scale=8 --define=N=100` yields exactly N == 100, not
/// 100 * 8 (the double-scaling bug) and not the scaled original.
///
/// Lives outside bench/BenchCommon.h so the unit tests can cover the
/// rewrite logic without a google-benchmark dependency.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_PIPELINE_WORKLOADDEFINES_H
#define DCIR_PIPELINE_WORKLOADDEFINES_H

#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dcir {
namespace pipeline {

/// Ordered (name, value) overrides; applied in order, so the last writer
/// of a name wins — matching repeated `--define=` flags.
using WorkloadDefines = std::vector<std::pair<std::string, long long>>;

namespace detail {

/// Splits \p Line as `#define NAME <integer>` (nothing else on the
/// line). Returns false when it is not such a define.
inline bool parseIntDefine(const std::string &Line, std::string &Name,
                           long long &Value) {
  char Buf[128];
  long long V;
  int Consumed = 0;
  if (std::sscanf(Line.c_str(), "#define %127s %lld %n", Buf, &V,
                  &Consumed) != 2 ||
      Line.find_first_not_of(" \t\r", Consumed) != std::string::npos)
    return false;
  Name = Buf;
  Value = V;
  return true;
}

/// Applies \p Fn to every integer-define line of \p Source; Fn returns
/// the replacement value (or the input to keep the line unchanged).
template <typename FnT>
std::string mapIntDefines(const std::string &Source, FnT Fn) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Source.size();
    std::string Line = Source.substr(Pos, Eol - Pos);
    std::string Name;
    long long Value;
    if (parseIntDefine(Line, Name, Value))
      Line = std::string("#define ") + Name + " " +
             std::to_string(Fn(Name, Value));
    Out += Line;
    if (Eol < Source.size())
      Out += '\n';
    Pos = Eol + 1;
  }
  return Out;
}

} // namespace detail

/// Returns \p Source with every `#define NAME <integer>` value multiplied
/// by \p Factor, except names in \p Pinned (explicit command-line
/// overrides must win exactly once, so scaling them would double-scale).
inline std::string
scaleWorkloadDefines(const std::string &Source, int Factor,
                     const std::set<std::string> &Pinned = {}) {
  if (Factor <= 1)
    return Source;
  return detail::mapIntDefines(
      Source, [&](const std::string &Name, long long Value) {
        return Pinned.count(Name) ? Value : Value * Factor;
      });
}

/// Returns \p Source with `#define NAME <integer>` values replaced per
/// \p Overrides, applied in order (the last writer of a name wins).
/// Names with no matching define line are ignored.
inline std::string overrideWorkloadDefines(const std::string &Source,
                                           const WorkloadDefines &Overrides) {
  if (Overrides.empty())
    return Source;
  return detail::mapIntDefines(
      Source, [&](const std::string &Name, long long Value) {
        for (const auto &[K, V] : Overrides)
          if (K == Name)
            Value = V;
        return Value;
      });
}

/// The bench-harness composition: scale first with overridden names
/// pinned, then apply the overrides — so `--define=` is always the last
/// writer regardless of `--parallel-scale`.
inline std::string prepareWorkload(const std::string &Source, int Factor,
                                   const WorkloadDefines &Overrides) {
  std::set<std::string> Pinned;
  for (const auto &[Name, Value] : Overrides)
    Pinned.insert(Name);
  return overrideWorkloadDefines(scaleWorkloadDefines(Source, Factor, Pinned),
                                 Overrides);
}

} // namespace pipeline
} // namespace dcir

#endif // DCIR_PIPELINE_WORKLOADDEFINES_H
