//===- Pipeline.cpp - the compatibility shim over the api layer ---------------===//

#include "pipeline/Pipeline.h"

#include "api/Api.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dcir;
using namespace dcir::pipeline;

const char *dcir::pipeline::pipelineName(PipelineKind K) {
  switch (K) {
  case PipelineKind::GccLike:
    return "GCC";
  case PipelineKind::ClangLike:
    return "Clang";
  case PipelineKind::DaceLike:
    return "DaCe";
  case PipelineKind::MlirLike:
    return "MLIR";
  case PipelineKind::Dcir:
    return "DCIR";
  }
  return "?";
}

const char *dcir::pipeline::parallelismName(ParallelismMode M) {
  switch (M) {
  case ParallelismMode::Off:
    return "off";
  case ParallelismMode::Maps:
    return "maps";
  case ParallelismMode::Auto:
    return "auto";
  }
  return "?";
}

std::optional<ParallelismMode>
dcir::pipeline::parseParallelismName(const std::string &Name) {
  if (Name == "off")
    return ParallelismMode::Off;
  if (Name == "on" || Name == "maps")
    return ParallelismMode::Maps;
  if (Name == "auto")
    return ParallelismMode::Auto;
  return std::nullopt;
}

const char *dcir::pipeline::specializeModeName(SpecializeMode M) {
  switch (M) {
  case SpecializeMode::Off:
    return "off";
  case SpecializeMode::Lazy:
    return "lazy";
  case SpecializeMode::Eager:
    return "eager";
  }
  return "?";
}

std::optional<SpecializeMode>
dcir::pipeline::parseSpecializeModeName(const std::string &Name) {
  if (Name == "off")
    return SpecializeMode::Off;
  if (Name == "on" || Name == "lazy")
    return SpecializeMode::Lazy;
  if (Name == "eager")
    return SpecializeMode::Eager;
  return std::nullopt;
}

const char *dcir::pipeline::staticVerifyModeName(StaticVerifyMode M) {
  switch (M) {
  case StaticVerifyMode::Off:
    return "off";
  case StaticVerifyMode::Warn:
    return "warn";
  case StaticVerifyMode::Guard:
    return "guard";
  case StaticVerifyMode::Error:
    return "error";
  }
  return "?";
}

std::optional<StaticVerifyMode>
dcir::pipeline::parseStaticVerifyModeName(const std::string &Name) {
  if (Name == "off" || Name == "0")
    return StaticVerifyMode::Off;
  if (Name == "on" || Name == "warn" || Name == "1")
    return StaticVerifyMode::Warn;
  if (Name == "guard")
    return StaticVerifyMode::Guard;
  if (Name == "error")
    return StaticVerifyMode::Error;
  return std::nullopt;
}

std::optional<OptLevel>
dcir::pipeline::parseOptLevel(const std::string &Name) {
  std::string N = Name;
  if (!N.empty() && N[0] == '-')
    N = N.substr(1);
  if (!N.empty() && (N[0] == 'O' || N[0] == 'o'))
    N = N.substr(1);
  if (N == "0")
    return OptLevel::O0;
  if (N == "1")
    return OptLevel::O1;
  if (N == "2")
    return OptLevel::O2;
  return std::nullopt;
}

Compiled &Compiled::operator=(Compiled &&Other) noexcept {
  if (this == &Other)
    return *this;
  // Same ordering as ~Compiled: the program borrows Module/Graph, so it
  // must be released before the IR it references is erased.
  Prog.reset();
  if (Module)
    ir::Operation::eraseDetached(Module);
  Kind = Other.Kind;
  Engine = Other.Engine;
  Parallelism = Other.Parallelism;
  NumThreads = Other.NumThreads;
  ProfileMaps = Other.ProfileMaps;
  Entry = std::move(Other.Entry);
  Ctx = std::move(Other.Ctx);
  Module = Other.Module;
  Other.Module = nullptr; // The moved-from object no longer owns the IR.
  Graph = std::move(Other.Graph);
  Report = Other.Report;
  // The borrowed-artifact pointers inside the program stay valid across
  // the move (unique_ptr moves keep the pointee address). Single-threaded
  // by contract: moving an artifact races nothing.
  Prog = std::move(Other.Prog);
  return *this;
}

Compiled::~Compiled() {
  // The program borrows Module/Graph: drop it first.
  Prog.reset();
  if (Module)
    ir::Operation::eraseDetached(Module);
}

std::shared_ptr<const api::Program> Compiled::program() const {
  std::lock_guard<std::mutex> Lock(ProgMu);
  if (Prog)
    return Prog;
  if (!Module && !Graph)
    return nullptr;
  api::Program::Parts P;
  P.Kind = Kind;
  P.Opts.Engine = Engine;
  P.Opts.Parallelism = Parallelism;
  P.Opts.NumThreads = NumThreads;
  P.Opts.ProfileMaps = ProfileMaps;
  P.Entry = Entry;
  P.Ctx = Ctx;
  P.Module = Module;
  P.OwnsModule = false; // ~Compiled keeps releasing the IR.
  // Non-owning alias: this Compiled outlives the program it hands out.
  P.Graph = std::shared_ptr<const sdfg::SDFG>(std::shared_ptr<void>(),
                                              Graph.get());
  Prog = api::Program::create(std::move(P));
  return Prog;
}

Compiled dcir::pipeline::compile(const std::string &CSource,
                                 const std::string &Entry, PipelineKind Kind,
                                 DiagnosticEngine &Diags,
                                 exec::EngineKind Engine) {
  CompileOptions Opts;
  Opts.Engine = Engine;
  return compile(CSource, Entry, Kind, Diags, Opts);
}

Compiled dcir::pipeline::compile(const std::string &CSource,
                                 const std::string &Entry, PipelineKind Kind,
                                 DiagnosticEngine &Diags,
                                 const CompileOptions &Opts) {
  Compiled Out;
  Out.Kind = Kind;
  Out.Engine = Opts.Engine;
  Out.Parallelism = Opts.Parallelism;
  Out.NumThreads = Opts.NumThreads;
  Out.ProfileMaps = Opts.ProfileMaps;
  Out.Entry = Entry;
  api::detail::CompiledParts Parts =
      api::detail::compileParts(CSource, Entry, Kind, Diags, Opts);
  Out.Ctx = std::move(Parts.Ctx);
  Out.Module = Parts.Module;
  Out.Graph = std::move(Parts.Graph);
  Out.Report = Parts.Report;
  return Out;
}

RunResult dcir::pipeline::run(const Compiled &C, interp::MathMode Mode) {
  std::shared_ptr<const api::Program> P = C.program();
  if (!P)
    return RunResult();
  api::InvocationResult R = P->invoke(P->newInvocation()
                                          .setMathMode(Mode)
                                          .captureOutputs()); // Legacy
                                                              // snapshot
                                                              // contract.
  RunResult Out;
  Out.ReturnValue = R.ReturnValue;
  Out.Stats = R.Stats;
  Out.Seconds = R.Seconds;
  Out.CompileSeconds = R.CompileSeconds;
  Out.EngineUsed = R.EngineUsed;
  Out.Outputs = std::move(R.Outputs);
  return Out;
}

RunResult dcir::pipeline::compileAndRun(const std::string &CSource,
                                        const std::string &Entry,
                                        PipelineKind Kind,
                                        interp::MathMode Mode,
                                        exec::EngineKind Engine) {
  DiagnosticEngine Diags;
  Compiled C = compile(CSource, Entry, Kind, Diags, Engine);
  if (!C.Module && !C.Graph) {
    std::fprintf(stderr, "pipeline %s failed to compile '%s':\n%s\n",
                 pipelineName(Kind), Entry.c_str(), Diags.str().c_str());
    std::abort();
  }
  return run(C, Mode);
}

std::string dcir::pipeline::loadWorkload(const std::string &RelativePath) {
  std::string Path = std::string(DCIR_WORKLOADS_DIR) + "/" + RelativePath;
  std::string Text;
  if (!readFileToString(Path, Text)) {
    std::fprintf(stderr, "cannot read workload '%s'\n", Path.c_str());
    std::abort();
  }
  return Text;
}
