//===- Pipeline.cpp -------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "conversion/CToSdfgDirect.h"
#include "conversion/ConvertToSdfg.h"
#include "conversion/TranslateToSDFG.h"
#include "dialects/Dialects.h"
#include "exec/InterpEngine.h"
#include "frontend/CCodegen.h"
#include "frontend/CParser.h"
#include "ir/Verifier.h"
#include "passes/Pass.h"
#include "support/StringUtils.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace dcir;
using namespace dcir::pipeline;

const char *dcir::pipeline::pipelineName(PipelineKind K) {
  switch (K) {
  case PipelineKind::GccLike:
    return "GCC";
  case PipelineKind::ClangLike:
    return "Clang";
  case PipelineKind::DaceLike:
    return "DaCe";
  case PipelineKind::MlirLike:
    return "MLIR";
  case PipelineKind::Dcir:
    return "DCIR";
  }
  return "?";
}

const char *dcir::pipeline::parallelismName(ParallelismMode M) {
  switch (M) {
  case ParallelismMode::Off:
    return "off";
  case ParallelismMode::Maps:
    return "maps";
  case ParallelismMode::Auto:
    return "auto";
  }
  return "?";
}

std::optional<ParallelismMode>
dcir::pipeline::parseParallelismName(const std::string &Name) {
  if (Name == "off")
    return ParallelismMode::Off;
  if (Name == "on" || Name == "maps")
    return ParallelismMode::Maps;
  if (Name == "auto")
    return ParallelismMode::Auto;
  return std::nullopt;
}

std::optional<OptLevel>
dcir::pipeline::parseOptLevel(const std::string &Name) {
  std::string N = Name;
  if (!N.empty() && N[0] == '-')
    N = N.substr(1);
  if (!N.empty() && (N[0] == 'O' || N[0] == 'o'))
    N = N.substr(1);
  if (N == "0")
    return OptLevel::O0;
  if (N == "1")
    return OptLevel::O1;
  if (N == "2")
    return OptLevel::O2;
  return std::nullopt;
}

Compiled &Compiled::operator=(Compiled &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Module)
    ir::Operation::eraseDetached(Module);
  Kind = Other.Kind;
  Engine = Other.Engine;
  Parallelism = Other.Parallelism;
  NumThreads = Other.NumThreads;
  Entry = std::move(Other.Entry);
  Ctx = std::move(Other.Ctx);
  Module = Other.Module;
  Other.Module = nullptr; // The moved-from object no longer owns the IR.
  Graph = std::move(Other.Graph);
  Report = Other.Report;
  EngineImpl = std::move(Other.EngineImpl);
  return *this;
}

Compiled::~Compiled() {
  if (Module)
    ir::Operation::eraseDetached(Module);
}

namespace {

/// The strong general-purpose -O2 (GCC/Clang stand-ins).
void addStrongPasses(passes::PassManager &PM, bool ExtraRound) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  for (int I = 0; I < (ExtraRound ? 3 : 2); ++I) {
    PM.addPass(createCanonicalizePass());
    PM.addPass(createCSEPass());
    PM.addPass(createLICMPass());
    PM.addPass(createScalarReplacementPass());
    PM.addPass(createCSEPass());
    PM.addPass(createLoopFusionPass());
    PM.addPass(createDCEPass());
  }
}

/// The paper's control-centric set for the Polygeist+MLIR pipeline (§4):
/// LICM, CSE, DCE, inlining — no store forwarding, no fusion.
void addMlirPasses(passes::PassManager &PM) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  PM.addPass(createCanonicalizePass());
  PM.addPass(createCSEPass());
  PM.addPass(createLICMPass());
  PM.addPass(createDCEPass());
}

/// DCIR's MLIR-side passes (paper Fig. 4, blue): LICM, CSE & DCE &
/// inlining, scalar replacement, then lowering into the sdfg dialect.
void addDcirMlirPasses(passes::PassManager &PM) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  for (int I = 0; I < 2; ++I) {
    PM.addPass(createCanonicalizePass());
    PM.addPass(createCSEPass());
    PM.addPass(createLICMPass());
    PM.addPass(createScalarReplacementPass());
    PM.addPass(createCSEPass());
    PM.addPass(createDCEPass());
  }
}

/// Runs the configured data-centric pipeline (-O level or an explicit
/// --passes= spec) over a freshly translated graph. Returns false when
/// the spec is malformed or verify-after-each failed.
bool optimizeGraph(sdfg::SDFG &G, const CompileOptions &Opts,
                   sdfgopt::OptReport &Report, DiagnosticEngine &Diags) {
  sdfgopt::PipelineOptions POpts;
  POpts.Diags = &Diags;
  POpts.VerifyEachPass = Opts.VerifyEachPass;
  POpts.MaxFixpointRounds = Opts.MaxFixpointRounds;
  std::unique_ptr<opt::PipelineDriver<sdfg::SDFG>> P;
  if (!Opts.PassPipeline.empty()) {
    opt::PassRegistry<sdfg::SDFG> Reg = sdfgopt::passRegistry(
        &Report, Opts.Parallelism != ParallelismMode::Off);
    P = opt::parsePipelineSpec(Opts.PassPipeline, Reg, Diags);
    if (!P)
      return false;
  } else {
    switch (Opts.Opt) {
    case OptLevel::O0:
      return true;
    case OptLevel::O1:
      P = sdfgopt::buildSimplifyPipeline(&Report);
      break;
    case OptLevel::O2:
      P = sdfgopt::buildAutoOptimizePipeline(
          &Report, Opts.Parallelism != ParallelismMode::Off);
      break;
    }
  }
  return sdfgopt::runPipeline(G, *P, Report, POpts);
}

} // namespace

Compiled dcir::pipeline::compile(const std::string &CSource,
                                 const std::string &Entry, PipelineKind Kind,
                                 DiagnosticEngine &Diags,
                                 exec::EngineKind Engine) {
  CompileOptions Opts;
  Opts.Engine = Engine;
  return compile(CSource, Entry, Kind, Diags, Opts);
}

Compiled dcir::pipeline::compile(const std::string &CSource,
                                 const std::string &Entry, PipelineKind Kind,
                                 DiagnosticEngine &Diags,
                                 const CompileOptions &Opts) {
  Compiled Out;
  Out.Kind = Kind;
  Out.Engine = Opts.Engine;
  Out.Parallelism = Opts.Parallelism;
  Out.NumThreads = Opts.NumThreads;
  Out.Entry = Entry;
  if (Kind == PipelineKind::DaceLike) {
    auto TU = frontend::parseC(CSource, Diags);
    if (!TU)
      return Out;
    Out.Graph = conversion::translateCDirect(*TU, Entry, Diags);
    if (!Out.Graph)
      return Out;
    if (!optimizeGraph(*Out.Graph, Opts, Out.Report, Diags) ||
        !Out.Graph->validate(Diags))
      Out.Graph.reset();
    return Out;
  }

  Out.Ctx = std::make_shared<ir::IRContext>();
  registerAllDialects(*Out.Ctx);
  ir::Operation *Module =
      frontend::compileCToModule(CSource, *Out.Ctx, Diags);
  if (!Module)
    return Out;
  passes::PassManager PM(/*VerifyEach=*/false);
  switch (Kind) {
  case PipelineKind::GccLike:
    addStrongPasses(PM, /*ExtraRound=*/false);
    break;
  case PipelineKind::ClangLike:
    addStrongPasses(PM, /*ExtraRound=*/true);
    break;
  case PipelineKind::MlirLike:
    addMlirPasses(PM);
    break;
  case PipelineKind::Dcir:
    addDcirMlirPasses(PM);
    break;
  case PipelineKind::DaceLike:
    break;
  }
  if (!PM.run(Module, Diags) || !ir::verify(Module, Diags)) {
    ir::Operation::eraseDetached(Module);
    return Out;
  }

  if (Kind != PipelineKind::Dcir) {
    Out.Module = Module;
    return Out;
  }

  // DCIR: convert to the sdfg dialect, translate, run -O1/-O2.
  ir::Operation *SdfgModule =
      conversion::convertToSdfgDialect(Module, Diags);
  ir::Operation::eraseDetached(Module);
  if (!SdfgModule)
    return Out;
  if (!ir::verify(SdfgModule, Diags)) {
    ir::Operation::eraseDetached(SdfgModule);
    return Out;
  }
  Out.Graph = conversion::translateToSDFG(SdfgModule, Entry, Diags);
  ir::Operation::eraseDetached(SdfgModule);
  if (!Out.Graph)
    return Out;
  if (!optimizeGraph(*Out.Graph, Opts, Out.Report, Diags) ||
      !Out.Graph->validate(Diags))
    Out.Graph.reset();
  return Out;
}

namespace {

RunResult toRunResult(exec::EngineRun &&E) {
  RunResult R;
  R.ReturnValue = E.ReturnValue;
  R.Stats = E.Stats;
  R.Seconds = E.Seconds;
  R.CompileSeconds = E.CompileSeconds;
  R.Outputs = std::move(E.Outputs);
  return R;
}

} // namespace

RunResult dcir::pipeline::run(const Compiled &C, interp::MathMode Mode) {
  if (!C.EngineImpl) {
    C.EngineImpl = exec::createEngine(C.Engine);
    exec::EngineConfig Config;
    Config.ParallelMaps = C.Parallelism != ParallelismMode::Off;
    Config.NumThreads = C.NumThreads;
    C.EngineImpl->configure(Config);
  }
  exec::EngineKind Used = C.Engine;
  exec::EngineRun E;
  if (C.Module) {
    E = C.EngineImpl->runModule(C.Module, C.Entry, Mode);
    Used = exec::EngineKind::Interp; // Modules always interpret.
  } else if (C.Graph) {
    E = C.EngineImpl->runGraph(*C.Graph, Mode);
  } else {
    return RunResult();
  }
  if (!E.Ok && C.Engine != exec::EngineKind::Interp && C.Graph) {
    // A graph the native backend cannot lower (e.g. stream containers)
    // still runs on the interpreter; degrade rather than die. EngineUsed
    // records the downgrade so benches never label these rows native.
    std::fprintf(stderr,
                 "pipeline: %s engine failed for '%s', falling back to "
                 "interpreter:\n%s\n",
                 C.EngineImpl->name(), C.Entry.c_str(), E.Error.c_str());
    E = exec::InterpEngine().runGraph(*C.Graph, Mode);
    Used = exec::EngineKind::Interp;
  }
  RunResult R = toRunResult(std::move(E));
  R.EngineUsed = Used;
  return R;
}

RunResult dcir::pipeline::compileAndRun(const std::string &CSource,
                                        const std::string &Entry,
                                        PipelineKind Kind,
                                        interp::MathMode Mode,
                                        exec::EngineKind Engine) {
  DiagnosticEngine Diags;
  Compiled C = compile(CSource, Entry, Kind, Diags, Engine);
  if (!C.Module && !C.Graph) {
    std::fprintf(stderr, "pipeline %s failed to compile '%s':\n%s\n",
                 pipelineName(Kind), Entry.c_str(), Diags.str().c_str());
    std::abort();
  }
  return run(C, Mode);
}

std::string dcir::pipeline::loadWorkload(const std::string &RelativePath) {
  std::string Path = std::string(DCIR_WORKLOADS_DIR) + "/" + RelativePath;
  std::string Text;
  if (!readFileToString(Path, Text)) {
    std::fprintf(stderr, "cannot read workload '%s'\n", Path.c_str());
    std::abort();
  }
  return Text;
}
