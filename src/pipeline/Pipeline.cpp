//===- Pipeline.cpp -------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "conversion/CToSdfgDirect.h"
#include "conversion/ConvertToSdfg.h"
#include "conversion/TranslateToSDFG.h"
#include "dialects/Dialects.h"
#include "frontend/CCodegen.h"
#include "frontend/CParser.h"
#include "interp/MLIRInterp.h"
#include "interp/SDFGInterp.h"
#include "ir/Verifier.h"
#include "passes/Pass.h"
#include "support/StringUtils.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace dcir;
using namespace dcir::pipeline;

const char *dcir::pipeline::pipelineName(PipelineKind K) {
  switch (K) {
  case PipelineKind::GccLike:
    return "GCC";
  case PipelineKind::ClangLike:
    return "Clang";
  case PipelineKind::DaceLike:
    return "DaCe";
  case PipelineKind::MlirLike:
    return "MLIR";
  case PipelineKind::Dcir:
    return "DCIR";
  }
  return "?";
}

Compiled &Compiled::operator=(Compiled &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Module)
    ir::Operation::eraseDetached(Module);
  Kind = Other.Kind;
  Entry = std::move(Other.Entry);
  Ctx = std::move(Other.Ctx);
  Module = Other.Module;
  Other.Module = nullptr; // The moved-from object no longer owns the IR.
  Graph = std::move(Other.Graph);
  Report = Other.Report;
  return *this;
}

Compiled::~Compiled() {
  if (Module)
    ir::Operation::eraseDetached(Module);
}

namespace {

/// The strong general-purpose -O2 (GCC/Clang stand-ins).
void addStrongPasses(passes::PassManager &PM, bool ExtraRound) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  for (int I = 0; I < (ExtraRound ? 3 : 2); ++I) {
    PM.addPass(createCanonicalizePass());
    PM.addPass(createCSEPass());
    PM.addPass(createLICMPass());
    PM.addPass(createScalarReplacementPass());
    PM.addPass(createCSEPass());
    PM.addPass(createLoopFusionPass());
    PM.addPass(createDCEPass());
  }
}

/// The paper's control-centric set for the Polygeist+MLIR pipeline (§4):
/// LICM, CSE, DCE, inlining — no store forwarding, no fusion.
void addMlirPasses(passes::PassManager &PM) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  PM.addPass(createCanonicalizePass());
  PM.addPass(createCSEPass());
  PM.addPass(createLICMPass());
  PM.addPass(createDCEPass());
}

/// DCIR's MLIR-side passes (paper Fig. 4, blue): LICM, CSE & DCE &
/// inlining, scalar replacement, then lowering into the sdfg dialect.
void addDcirMlirPasses(passes::PassManager &PM) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  for (int I = 0; I < 2; ++I) {
    PM.addPass(createCanonicalizePass());
    PM.addPass(createCSEPass());
    PM.addPass(createLICMPass());
    PM.addPass(createScalarReplacementPass());
    PM.addPass(createCSEPass());
    PM.addPass(createDCEPass());
  }
}

} // namespace

Compiled dcir::pipeline::compile(const std::string &CSource,
                                 const std::string &Entry, PipelineKind Kind,
                                 DiagnosticEngine &Diags) {
  Compiled Out;
  Out.Kind = Kind;
  Out.Entry = Entry;

  if (Kind == PipelineKind::DaceLike) {
    auto TU = frontend::parseC(CSource, Diags);
    if (!TU)
      return Out;
    Out.Graph = conversion::translateCDirect(*TU, Entry, Diags);
    if (!Out.Graph)
      return Out;
    sdfgopt::runAutoOptimize(*Out.Graph, Out.Report);
    if (!Out.Graph->validate(Diags))
      Out.Graph.reset();
    return Out;
  }

  Out.Ctx = std::make_shared<ir::IRContext>();
  registerAllDialects(*Out.Ctx);
  ir::Operation *Module =
      frontend::compileCToModule(CSource, *Out.Ctx, Diags);
  if (!Module)
    return Out;
  passes::PassManager PM(/*VerifyEach=*/false);
  switch (Kind) {
  case PipelineKind::GccLike:
    addStrongPasses(PM, /*ExtraRound=*/false);
    break;
  case PipelineKind::ClangLike:
    addStrongPasses(PM, /*ExtraRound=*/true);
    break;
  case PipelineKind::MlirLike:
    addMlirPasses(PM);
    break;
  case PipelineKind::Dcir:
    addDcirMlirPasses(PM);
    break;
  case PipelineKind::DaceLike:
    break;
  }
  if (!PM.run(Module, Diags) || !ir::verify(Module, Diags)) {
    ir::Operation::eraseDetached(Module);
    return Out;
  }

  if (Kind != PipelineKind::Dcir) {
    Out.Module = Module;
    return Out;
  }

  // DCIR: convert to the sdfg dialect, translate, run -O1/-O2.
  ir::Operation *SdfgModule =
      conversion::convertToSdfgDialect(Module, Diags);
  ir::Operation::eraseDetached(Module);
  if (!SdfgModule)
    return Out;
  if (!ir::verify(SdfgModule, Diags)) {
    ir::Operation::eraseDetached(SdfgModule);
    return Out;
  }
  Out.Graph = conversion::translateToSDFG(SdfgModule, Entry, Diags);
  ir::Operation::eraseDetached(SdfgModule);
  if (!Out.Graph)
    return Out;
  sdfgopt::runAutoOptimize(*Out.Graph, Out.Report);
  if (!Out.Graph->validate(Diags))
    Out.Graph.reset();
  return Out;
}

RunResult dcir::pipeline::run(const Compiled &C, interp::MathMode Mode) {
  RunResult R;
  auto Start = std::chrono::steady_clock::now();
  if (C.Module) {
    interp::MLIRInterpreter Interp(C.Module, Mode);
    std::vector<interp::MValue> Results = Interp.call(C.Entry, {});
    if (!Results.empty())
      R.ReturnValue = Results[0].S.asF();
    R.Stats = Interp.stats();
  } else if (C.Graph) {
    interp::SDFGInterpreter Interp(*C.Graph, Mode);
    Interp.run();
    if (C.Graph->hasData("__return"))
      R.ReturnValue = Interp.readScalar("__return").asF();
    R.Stats = Interp.stats();
  }
  auto End = std::chrono::steady_clock::now();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  return R;
}

RunResult dcir::pipeline::compileAndRun(const std::string &CSource,
                                        const std::string &Entry,
                                        PipelineKind Kind,
                                        interp::MathMode Mode) {
  DiagnosticEngine Diags;
  Compiled C = compile(CSource, Entry, Kind, Diags);
  if (!C.Module && !C.Graph) {
    std::fprintf(stderr, "pipeline %s failed to compile '%s':\n%s\n",
                 pipelineName(Kind), Entry.c_str(), Diags.str().c_str());
    std::abort();
  }
  return run(C, Mode);
}

std::string dcir::pipeline::loadWorkload(const std::string &RelativePath) {
  std::string Path = std::string(DCIR_WORKLOADS_DIR) + "/" + RelativePath;
  std::string Text;
  if (!readFileToString(Path, Text)) {
    std::fprintf(stderr, "cannot read workload '%s'\n", Path.c_str());
    std::abort();
  }
  return Text;
}
