//===- IrregularRegistry.h - the speculative-parallelization corpus -----------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Irregular kernels whose parallelism the static race analysis cannot
/// prove — indirect scatters, symbolic strides, runtime offsets. They
/// exist to exercise guard synthesis (analysis::Guard): compiled with
/// --static-verify=guard + speculation, each map multi-versions behind a
/// runtime check instead of demoting to serial. Shared by the fig6
/// speculation section, the mutant-harness tests, and sdfg-verify's CI
/// sweep.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_PIPELINE_IRREGULARREGISTRY_H
#define DCIR_PIPELINE_IRREGULARREGISTRY_H

#include <vector>

namespace dcir {
namespace pipeline {

struct IrregularKernel {
  const char *Name;  // Display name.
  const char *File;  // Under workloads/irregular/.
  const char *Entry; // Entry function.
  const char *Why;   // Which proof failure the kernel manufactures.
};

inline const std::vector<IrregularKernel> &irregularKernels() {
  static const std::vector<IrregularKernel> Kernels = {
      {"scatter", "irregular/scatter.c", "scatter_update",
       "indirect-subscript"},
      {"gather", "irregular/gather.c", "gather_shift",
       "may-overlap-containers"},
      {"strided-scale", "irregular/strided_scale.c", "strided_scale",
       "symbolic-stride"},
      {"offset-update", "irregular/offset_update.c", "offset_update",
       "may-overlap-containers"},
      {"fw-relax", "irregular/fw_relax.c", "fw_relax",
       "indirect-subscript"},
  };
  return Kernels;
}

} // namespace pipeline
} // namespace dcir

#endif // DCIR_PIPELINE_IRREGULARREGISTRY_H
