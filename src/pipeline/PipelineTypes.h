//===- PipelineTypes.h - pipeline kinds and compile options -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The option vocabulary shared by the experiment driver (pipeline::) and
/// the embedding runtime (api::): which of the five compared pipelines to
/// run, the execution engine, the parallelization policy, and the
/// data-centric optimization level. Split from Pipeline.h so the api layer
/// can build on these types without pulling in the legacy Compiled/run
/// surface (which itself delegates to api::Program).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_PIPELINE_PIPELINETYPES_H
#define DCIR_PIPELINE_PIPELINETYPES_H

#include "exec/ExecutionEngine.h"

#include <optional>
#include <string>
#include <vector>

namespace dcir {
namespace pipeline {

enum class PipelineKind { GccLike, ClangLike, DaceLike, MlirLike, Dcir };

/// Display name ("GCC", "Clang", "DaCe", "MLIR", "DCIR").
const char *pipelineName(PipelineKind K);

/// Loop-to-map auto-parallelization policy (paper §6.3 / Table 1):
///   Off    no loop-to-map conversion, strictly serial native code — the
///          PR-1 behaviour, kept for ablations and serial baselines.
///   Maps   convert provably independent loops (and reductions) to maps;
///          the native engine emits OpenMP work-sharing pragmas for them.
///   Auto   Maps today; reserved for profitability heuristics (tile-size,
///          thread-count, NUMA) without another API change.
enum class ParallelismMode { Off, Maps, Auto };

/// Display name ("off", "maps", "auto").
const char *parallelismName(ParallelismMode M);

/// Parses "--parallel=" values: off|on|maps|auto (on == maps).
std::optional<ParallelismMode> parseParallelismName(const std::string &Name);

/// Data-centric optimization level for SDFG pipelines (DaCe/DCIR):
///   O0  translate only (no sdfgopt passes);
///   O1  the simplify fixpoint (inference + data movement reduction);
///   O2  the full auto-optimizer (simplify + memory scheduling +
///       loop-to-map conversion per ParallelismMode) — the default and
///       the paper's configuration.
enum class OptLevel { O0, O1, O2 };

/// Parses "0"/"O0"/"-O1"/... ; nullopt on unknown.
std::optional<OptLevel> parseOptLevel(const std::string &Name);

/// Shape-specialized re-JIT policy (the DaCeML move: re-run the
/// data-centric pipeline once shapes are known):
///   Off    one generic artifact, symbols stay runtime parameters.
///   Lazy   first invocation on a new shape serves the generic artifact
///          and kicks off a background re-JIT of the specialized variant;
///          later invocations on that shape dispatch to it once ready.
///   Eager  first invocation on a new shape blocks on the re-JIT, so
///          every invocation runs the specialized variant.
enum class SpecializeMode { Off, Lazy, Eager };

/// Display name ("off", "lazy", "eager").
const char *specializeModeName(SpecializeMode M);

/// Parses "--specialize=" values: off|lazy|on|eager (on == lazy).
std::optional<SpecializeMode> parseSpecializeModeName(const std::string &Name);

/// Post-optimization static soundness gate (src/analysis/, see DESIGN.md
/// "Static soundness analysis" / "Speculative parallelization"):
///   Off    the analyzer does not run.
///   Warn   findings are reported as diagnostics; compilation proceeds.
///   Guard  like Error, but unproven map scopes first get a synthesized
///          runtime guard (analysis::synthesizeGuards) selecting between
///          the parallel and serial emissions at runtime; only maps no
///          guard covers are demoted. Implies speculative loop-to-map
///          conversion (the `speculate-maps` pass).
///   Error  provable out-of-bounds findings fail the compile; map scopes
///          the race analysis cannot prove safe are demoted to a serial
///          schedule (counted by the `verify.demotions` metric).
enum class StaticVerifyMode { Off, Warn, Guard, Error };

/// Display name ("off", "warn", "guard", "error").
const char *staticVerifyModeName(StaticVerifyMode M);

/// Parses "--static-verify=" / $DCIR_STATIC_VERIFY values:
/// off|warn|guard|error (on == warn).
std::optional<StaticVerifyMode>
parseStaticVerifyModeName(const std::string &Name);

/// Per-compile options threaded from the drivers into the optimizer and
/// the execution engine. api::Compiler is a builder over exactly this
/// struct.
struct CompileOptions {
  exec::EngineKind Engine = exec::EngineKind::Interp;
  ParallelismMode Parallelism = ParallelismMode::Auto;
  /// Threads for parallel maps (0 = OpenMP runtime default; the native
  /// engine also honours $DCIR_NUM_THREADS when this stays 0).
  int NumThreads = 0;
  /// Data-centric optimization level (SDFG pipelines).
  OptLevel Opt = OptLevel::O2;
  /// Explicit textual pipeline spec (see opt::parsePipelineSpec and the
  /// sdfgopt::passRegistry names, e.g. "simplify,prealloc" or
  /// "fixpoint(fuse-chains,loops-to-maps)"). Overrides Opt when
  /// non-empty; compilation fails on malformed specs. The benches expose
  /// it as --passes=.
  std::string PassPipeline;
  /// Tile sizes for the `tile-maps` cache-blocking pass: dimension d of
  /// a map scope is strip-mined with TileSizes[min(d, size-1)] when its
  /// proven trip count covers at least two full tiles. Empty (the
  /// default) disables tiling — the pass stays a registered no-op. The
  /// benches expose it as --tile=.
  std::vector<unsigned> TileSizes;
  /// Run the SDFG structural verifier after every pass, failing the
  /// compile (naming the culprit pass) on the first violation.
  bool VerifyEachPass = false;
  /// Instrument every native map scope with runtime timing and trip
  /// counts (CodegenOptions::ProfileMaps; surfaced by
  /// api::Program::mapProfile()). Native engine only; forks the JIT
  /// cache key. The benches expose it as --profile-maps, and
  /// $DCIR_PROFILE_MAPS=1 enables it process-wide.
  bool ProfileMaps = false;
  /// Safety limit for pass-pipeline fixpoint groups; hitting it emits a
  /// warning diagnostic instead of silently stopping.
  unsigned MaxFixpointRounds = 64;
  /// Shape-specialized re-JIT policy for the resulting Program (native
  /// engine only; see SpecializeMode). The benches expose it as
  /// --specialize=.
  SpecializeMode Specialize = SpecializeMode::Off;
  /// Cap on live specialized variants per Program; the least recently
  /// used variant is evicted beyond it. The generic artifact is not a
  /// variant and is never evicted.
  unsigned MaxVariants = 8;
  /// Build a specialized variant on the Nth sighting of a shape instead
  /// of the first (default 1 keeps first-sighting builds). Earlier
  /// sightings serve the generic artifact; an explicit
  /// Program::specialize() warm-up always builds. The autotuner's
  /// measuring window counts through the same per-shape sighting counter.
  unsigned SpecializeAfter = 1;
  /// Measured-profitability autotuning (native engine only; see
  /// src/tune/): serve a profiled measuring artifact for the first
  /// TuneWindow invocations per (entry, shape), decide per-map schedules
  /// from the measured rows, A/B the tuned artifact against the generic
  /// one, promote only if it measures faster, and persist winners as JSON
  /// sidecars so warm processes skip measurement. The benches expose it
  /// as --autotune=.
  bool Autotune = false;
  /// Invocations per measuring / A/B phase (the tuner's K).
  unsigned TuneWindow = 3;
  /// Sidecar directory for persisted winners; empty derives
  /// `<jit-cache-root>/tune`.
  std::string TuneDir;
  /// Promotion threshold: the tuned variant is promoted when its measured
  /// time is < ratio * the generic baseline's. 1.0 (the default) demands
  /// strictly faster; tests pin 0.0 (always revert) / a large value
  /// (always promote) for determinism.
  double TunePromoteRatio = 1.0;
  /// Grain gates for the parallel-pragma decision, forwarded to
  /// CodegenOptions::{MinParallelWork,MinInLoopParallelWork}. 0 keeps the
  /// codegen defaults (256 / 1<<16). The benches expose them as --grain=.
  unsigned MinParallelWork = 0;
  unsigned MinInLoopParallelWork = 0;
  /// Post-optimization static soundness gate (see StaticVerifyMode).
  /// $DCIR_STATIC_VERIFY overrides when set; the benches expose it as
  /// --static-verify=.
  StaticVerifyMode StaticVerify = StaticVerifyMode::Off;
  /// Instrument every generated subscript with a range assert
  /// (CodegenOptions::CheckBounds): a violating access prints the
  /// container, index, and extent to stderr and aborts. Native engine
  /// only; forks the JIT cache key. $DCIR_CHECK_BOUNDS=1 enables it
  /// process-wide.
  bool CheckBounds = false;
  /// Speculative loop-to-map conversion (the `speculate-maps` pass):
  /// loops the proving converter refuses are still converted, marked
  /// MapEntry::Speculative, and run parallel only behind a runtime guard
  /// synthesized under StaticVerifyMode::Guard (which implies this flag;
  /// setting it with any other verify mode yields serial speculative
  /// scopes — the `--static-verify=error` serialized baseline). The
  /// benches expose it as --speculate.
  bool Speculate = false;
};

} // namespace pipeline
} // namespace dcir

#endif // DCIR_PIPELINE_PIPELINETYPES_H
