//===- PolybenchRegistry.h - the Fig. 6 kernel corpus -------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 29 Polybench/C kernels the paper evaluates in Fig. 6 (nussinov is
/// excluded there because Polygeist could not translate it; we exclude it
/// for fidelity). Shared by the correctness tests and the fig6 bench.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_PIPELINE_POLYBENCHREGISTRY_H
#define DCIR_PIPELINE_POLYBENCHREGISTRY_H

#include <vector>

namespace dcir {
namespace pipeline {

struct PolybenchKernel {
  const char *Name;  // Display name (paper spelling).
  const char *File;  // Under workloads/polybench/.
  const char *Entry; // Entry function.
};

inline const std::vector<PolybenchKernel> &polybenchKernels() {
  static const std::vector<PolybenchKernel> Kernels = {
      {"2mm", "polybench/2mm.c", "kernel_2mm"},
      {"3mm", "polybench/3mm.c", "kernel_3mm"},
      {"adi", "polybench/adi.c", "kernel_adi"},
      {"atax", "polybench/atax.c", "kernel_atax"},
      {"bicg", "polybench/bicg.c", "kernel_bicg"},
      {"cholesky", "polybench/cholesky.c", "kernel_cholesky"},
      {"correlation", "polybench/correlation.c", "kernel_correlation"},
      {"covariance", "polybench/covariance.c", "kernel_covariance"},
      {"deriche", "polybench/deriche.c", "kernel_deriche"},
      {"doitgen", "polybench/doitgen.c", "kernel_doitgen"},
      {"durbin", "polybench/durbin.c", "kernel_durbin"},
      {"fdtd-2d", "polybench/fdtd_2d.c", "kernel_fdtd_2d"},
      {"floyd-warshall", "polybench/floyd_warshall.c",
       "kernel_floyd_warshall"},
      {"gemm", "polybench/gemm.c", "kernel_gemm"},
      {"gemver", "polybench/gemver.c", "kernel_gemver"},
      {"gesummv", "polybench/gesummv.c", "kernel_gesummv"},
      {"gramschmidt", "polybench/gramschmidt.c", "kernel_gramschmidt"},
      {"heat-3d", "polybench/heat_3d.c", "kernel_heat_3d"},
      {"jacobi-1d", "polybench/jacobi_1d.c", "kernel_jacobi_1d"},
      {"jacobi-2d", "polybench/jacobi_2d.c", "kernel_jacobi_2d"},
      {"lu", "polybench/lu.c", "kernel_lu"},
      {"ludcmp", "polybench/ludcmp.c", "kernel_ludcmp"},
      {"mvt", "polybench/mvt.c", "kernel_mvt"},
      {"seidel-2d", "polybench/seidel_2d.c", "kernel_seidel_2d"},
      {"symm", "polybench/symm.c", "kernel_symm"},
      {"syr2k", "polybench/syr2k.c", "kernel_syr2k"},
      {"syrk", "polybench/syrk.c", "kernel_syrk"},
      {"trisolv", "polybench/trisolv.c", "kernel_trisolv"},
      {"trmm", "polybench/trmm.c", "kernel_trmm"},
  };
  return Kernels;
}

} // namespace pipeline
} // namespace dcir

#endif // DCIR_PIPELINE_POLYBENCHREGISTRY_H
