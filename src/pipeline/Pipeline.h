//===- Pipeline.h - the five compared compilation pipelines -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver: five pipelines mirroring the systems the paper
/// compares in every figure.
///
///   GccLike / ClangLike  C -> MLIR dialects -> strong control-centric -O2
///                        (inlining, folding, CSE, LICM, store forwarding,
///                        loop fusion, DCE) -> MLIR interpreter.
///   MlirLike             Polygeist+MLIR: C -> MLIR dialects -> the paper's
///                        control-centric set only (no store forwarding, no
///                        fusion) -> MLIR interpreter.
///   DaceLike             the DaCe C frontend: C -> SDFG with opaque
///                        statement tasklets -> data-centric passes ->
///                        SDFG interpreter.
///   Dcir                 the paper's bridge: C -> MLIR -> control passes ->
///                        sdfg dialect -> SDFG -> inference + data-centric
///                        passes (-O1/-O2) -> SDFG interpreter.
///
/// Artifacts execute on a pluggable engine (src/exec/): the interpreters
/// by default, or the native JIT backend (--engine=native in the benches),
/// which compiles SDFG artifacts to shared objects. See DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_PIPELINE_PIPELINE_H
#define DCIR_PIPELINE_PIPELINE_H

#include "exec/ExecutionEngine.h"
#include "interp/Stats.h"
#include "ir/IR.h"
#include "sdfg/SDFG.h"
#include "sdfgopt/Passes.h"
#include "interp/FastMath.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dcir {
namespace pipeline {

enum class PipelineKind { GccLike, ClangLike, DaceLike, MlirLike, Dcir };

/// Display name ("GCC", "Clang", "DaCe", "MLIR", "DCIR").
const char *pipelineName(PipelineKind K);

/// Loop-to-map auto-parallelization policy (paper §6.3 / Table 1):
///   Off    no loop-to-map conversion, strictly serial native code — the
///          PR-1 behaviour, kept for ablations and serial baselines.
///   Maps   convert provably independent loops (and reductions) to maps;
///          the native engine emits OpenMP work-sharing pragmas for them.
///   Auto   Maps today; reserved for profitability heuristics (tile-size,
///          thread-count, NUMA) without another API change.
enum class ParallelismMode { Off, Maps, Auto };

/// Display name ("off", "maps", "auto").
const char *parallelismName(ParallelismMode M);

/// Parses "--parallel=" values: off|on|maps|auto (on == maps).
std::optional<ParallelismMode> parseParallelismName(const std::string &Name);

/// Data-centric optimization level for SDFG pipelines (DaCe/DCIR):
///   O0  translate only (no sdfgopt passes);
///   O1  the simplify fixpoint (inference + data movement reduction);
///   O2  the full auto-optimizer (simplify + memory scheduling +
///       loop-to-map conversion per ParallelismMode) — the default and
///       the paper's configuration.
enum class OptLevel { O0, O1, O2 };

/// Parses "0"/"O0"/"-O1"/... ; nullopt on unknown.
std::optional<OptLevel> parseOptLevel(const std::string &Name);

/// Per-compile options threaded from the drivers into the optimizer and
/// the execution engine.
struct CompileOptions {
  exec::EngineKind Engine = exec::EngineKind::Interp;
  ParallelismMode Parallelism = ParallelismMode::Auto;
  /// Threads for parallel maps (0 = OpenMP runtime default; the native
  /// engine also honours $DCIR_NUM_THREADS when this stays 0).
  int NumThreads = 0;
  /// Data-centric optimization level (SDFG pipelines).
  OptLevel Opt = OptLevel::O2;
  /// Explicit textual pipeline spec (see opt::parsePipelineSpec and the
  /// sdfgopt::passRegistry names, e.g. "simplify,prealloc" or
  /// "fixpoint(fuse-chains,loops-to-maps)"). Overrides Opt when
  /// non-empty; compilation fails on malformed specs. The benches expose
  /// it as --passes=.
  std::string PassPipeline;
  /// Run the SDFG structural verifier after every pass, failing the
  /// compile (naming the culprit pass) on the first violation.
  bool VerifyEachPass = false;
  /// Safety limit for pass-pipeline fixpoint groups; hitting it emits a
  /// warning diagnostic instead of silently stopping.
  unsigned MaxFixpointRounds = 64;
};

/// Compilation artifacts: exactly one of Module/Graph is set. Engine
/// selects the execution backend run() dispatches to (module artifacts
/// always interpret; see exec::NativeJitEngine).
struct Compiled {
  PipelineKind Kind = PipelineKind::MlirLike;
  exec::EngineKind Engine = exec::EngineKind::Interp;
  ParallelismMode Parallelism = ParallelismMode::Auto;
  int NumThreads = 0;
  std::string Entry;
  std::shared_ptr<ir::IRContext> Ctx; // Keeps types alive for Module.
  ir::Operation *Module = nullptr;    // Owned; released in ~Compiled.
  std::unique_ptr<sdfg::SDFG> Graph;
  sdfgopt::OptReport Report;
  /// Lazily created by run() and reused across runs of this artifact, so
  /// the native engine's per-graph memo (emitted source, resolved entry)
  /// survives benchmark loops. Not thread-safe per artifact.
  mutable std::shared_ptr<exec::ExecutionEngine> EngineImpl;

  Compiled() = default;
  Compiled(Compiled &&Other) noexcept { *this = std::move(Other); }
  Compiled &operator=(Compiled &&Other) noexcept;
  ~Compiled();
};

/// Result of one execution.
struct RunResult {
  double ReturnValue = 0.0;
  interp::ExecutionStats Stats;
  double Seconds = 0.0;
  /// Native-engine JIT time (0 on warm cache / interpreter runs).
  double CompileSeconds = 0.0;
  /// The engine that actually executed — Interp when a native run fell
  /// back (module artifact or unlowerable graph), so reports never label
  /// interpreter numbers as native.
  exec::EngineKind EngineUsed = exec::EngineKind::Interp;
  /// Post-run contents of the non-transient containers (SDFG artifacts).
  std::map<std::string, std::vector<double>> Outputs;
};

/// Compiles \p CSource's function \p Entry through pipeline \p Kind.
/// \p Engine selects the execution backend used by run(). Returns an
/// empty Compiled (null Module and Graph) on failure.
Compiled compile(const std::string &CSource, const std::string &Entry,
                 PipelineKind Kind, DiagnosticEngine &Diags,
                 exec::EngineKind Engine = exec::EngineKind::Interp);

/// Full-options variant: parallelism mode and thread count reach both the
/// optimizer (loop-to-map conversion) and the native engine (pragma
/// emission, omp_set_num_threads).
Compiled compile(const std::string &CSource, const std::string &Entry,
                 PipelineKind Kind, DiagnosticEngine &Diags,
                 const CompileOptions &Opts);

/// Runs a compiled artifact (the entry takes no arguments and returns a
/// scalar checksum) on the engine selected at compile time. \p Mode
/// selects libm vs vector-math emulation (interpreter only).
RunResult run(const Compiled &C,
              interp::MathMode Mode = interp::MathMode::Precise);

/// Convenience: compile-or-abort + run; used by benches.
RunResult compileAndRun(const std::string &CSource, const std::string &Entry,
                        PipelineKind Kind,
                        interp::MathMode Mode = interp::MathMode::Precise,
                        exec::EngineKind Engine = exec::EngineKind::Interp);

/// Loads a workload file from the workloads/ corpus (DCIR_WORKLOADS_DIR).
std::string loadWorkload(const std::string &RelativePath);

} // namespace pipeline
} // namespace dcir

#endif // DCIR_PIPELINE_PIPELINE_H
