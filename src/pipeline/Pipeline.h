//===- Pipeline.h - the five compared compilation pipelines -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver: five pipelines mirroring the systems the paper
/// compares in every figure.
///
///   GccLike / ClangLike  C -> MLIR dialects -> strong control-centric -O2
///                        (inlining, folding, CSE, LICM, store forwarding,
///                        loop fusion, DCE) -> MLIR interpreter.
///   MlirLike             Polygeist+MLIR: C -> MLIR dialects -> the paper's
///                        control-centric set only (no store forwarding, no
///                        fusion) -> MLIR interpreter.
///   DaceLike             the DaCe C frontend: C -> SDFG with opaque
///                        statement tasklets -> data-centric passes ->
///                        SDFG interpreter.
///   Dcir                 the paper's bridge: C -> MLIR -> control passes ->
///                        sdfg dialect -> SDFG -> inference + data-centric
///                        passes (-O1/-O2) -> SDFG interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_PIPELINE_PIPELINE_H
#define DCIR_PIPELINE_PIPELINE_H

#include "interp/Stats.h"
#include "ir/IR.h"
#include "sdfg/SDFG.h"
#include "sdfgopt/Passes.h"
#include "interp/FastMath.h"

#include <memory>
#include <string>

namespace dcir {
namespace pipeline {

enum class PipelineKind { GccLike, ClangLike, DaceLike, MlirLike, Dcir };

/// Display name ("GCC", "Clang", "DaCe", "MLIR", "DCIR").
const char *pipelineName(PipelineKind K);

/// Compilation artifacts: exactly one of Module/Graph is set.
struct Compiled {
  PipelineKind Kind = PipelineKind::MlirLike;
  std::string Entry;
  std::shared_ptr<ir::IRContext> Ctx; // Keeps types alive for Module.
  ir::Operation *Module = nullptr;    // Owned; released in ~Compiled.
  std::unique_ptr<sdfg::SDFG> Graph;
  sdfgopt::OptReport Report;

  Compiled() = default;
  Compiled(Compiled &&Other) noexcept { *this = std::move(Other); }
  Compiled &operator=(Compiled &&Other) noexcept;
  ~Compiled();
};

/// Result of one execution.
struct RunResult {
  double ReturnValue = 0.0;
  interp::ExecutionStats Stats;
  double Seconds = 0.0;
};

/// Compiles \p CSource's function \p Entry through pipeline \p Kind.
/// Returns an empty Compiled (null Module and Graph) on failure.
Compiled compile(const std::string &CSource, const std::string &Entry,
                 PipelineKind Kind, DiagnosticEngine &Diags);

/// Runs a compiled artifact (the entry takes no arguments and returns a
/// scalar checksum). \p Mode selects libm vs vector-math emulation.
RunResult run(const Compiled &C,
              interp::MathMode Mode = interp::MathMode::Precise);

/// Convenience: compile-or-abort + run; used by benches.
RunResult compileAndRun(const std::string &CSource, const std::string &Entry,
                        PipelineKind Kind,
                        interp::MathMode Mode = interp::MathMode::Precise);

/// Loads a workload file from the workloads/ corpus (DCIR_WORKLOADS_DIR).
std::string loadWorkload(const std::string &RelativePath);

} // namespace pipeline
} // namespace dcir

#endif // DCIR_PIPELINE_PIPELINE_H
