//===- Pipeline.h - the five compared compilation pipelines -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver: five pipelines mirroring the systems the paper
/// compares in every figure.
///
///   GccLike / ClangLike  C -> MLIR dialects -> strong control-centric -O2
///                        (inlining, folding, CSE, LICM, store forwarding,
///                        loop fusion, DCE) -> MLIR interpreter.
///   MlirLike             Polygeist+MLIR: C -> MLIR dialects -> the paper's
///                        control-centric set only (no store forwarding, no
///                        fusion) -> MLIR interpreter.
///   DaceLike             the DaCe C frontend: C -> SDFG with opaque
///                        statement tasklets -> data-centric passes ->
///                        SDFG interpreter.
///   Dcir                 the paper's bridge: C -> MLIR -> control passes ->
///                        sdfg dialect -> SDFG -> inference + data-centric
///                        passes (-O1/-O2) -> SDFG interpreter.
///
/// This header is the *compatibility shim* over the embedding runtime API
/// (src/api/): compile() runs the same flow api::Compiler does, and run()
/// delegates to a lazily created api::Program. New code should embed
/// through api::Compiler/Program/Invocation directly (see DESIGN.md,
/// "Embedding API"); this surface stays for the benches' experiment shape
/// and out-of-tree callers.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_PIPELINE_PIPELINE_H
#define DCIR_PIPELINE_PIPELINE_H

#include "exec/ExecutionEngine.h"
#include "interp/FastMath.h"
#include "interp/Stats.h"
#include "ir/IR.h"
#include "pipeline/PipelineTypes.h"
#include "sdfg/SDFG.h"
#include "sdfgopt/Passes.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dcir {

namespace api {
class Program;
} // namespace api

namespace pipeline {

/// Compilation artifacts: exactly one of Module/Graph is set. Engine
/// selects the execution backend run() dispatches to (module artifacts
/// always interpret; see exec::NativeJitEngine).
struct Compiled {
  PipelineKind Kind = PipelineKind::MlirLike;
  exec::EngineKind Engine = exec::EngineKind::Interp;
  ParallelismMode Parallelism = ParallelismMode::Auto;
  int NumThreads = 0;
  bool ProfileMaps = false;
  std::string Entry;
  std::shared_ptr<ir::IRContext> Ctx; // Keeps types alive for Module.
  ir::Operation *Module = nullptr;    // Owned; released in ~Compiled.
  std::unique_ptr<sdfg::SDFG> Graph;
  sdfgopt::OptReport Report;

  Compiled() = default;
  Compiled(Compiled &&Other) noexcept { *this = std::move(Other); }
  Compiled &operator=(Compiled &&Other) noexcept;
  ~Compiled();

  /// The api::Program run() executes through — created on first use,
  /// under a lock, borrowing this artifact's Module/Graph (so it must
  /// not outlive this Compiled, and Graph must not be moved out after
  /// the first run()). Null when compilation failed.
  std::shared_ptr<const api::Program> program() const;

private:
  mutable std::mutex ProgMu;
  mutable std::shared_ptr<const api::Program> Prog;
};

/// Result of one execution.
struct RunResult {
  double ReturnValue = 0.0;
  interp::ExecutionStats Stats;
  double Seconds = 0.0;
  /// Native-engine JIT time (0 on warm cache / interpreter runs).
  double CompileSeconds = 0.0;
  /// The engine that actually executed — Interp when a native run fell
  /// back (module artifact or unlowerable graph), so reports never label
  /// interpreter numbers as native.
  exec::EngineKind EngineUsed = exec::EngineKind::Interp;
  /// Post-run contents of the non-transient containers (SDFG artifacts).
  std::map<std::string, std::vector<double>> Outputs;
};

/// Compiles \p CSource's function \p Entry through pipeline \p Kind.
/// \p Engine selects the execution backend used by run(). Returns an
/// empty Compiled (null Module and Graph) on failure.
Compiled compile(const std::string &CSource, const std::string &Entry,
                 PipelineKind Kind, DiagnosticEngine &Diags,
                 exec::EngineKind Engine = exec::EngineKind::Interp);

/// Full-options variant: parallelism mode and thread count reach both the
/// optimizer (loop-to-map conversion) and the native engine (pragma
/// emission, omp_set_num_threads).
Compiled compile(const std::string &CSource, const std::string &Entry,
                 PipelineKind Kind, DiagnosticEngine &Diags,
                 const CompileOptions &Opts);

/// Runs a compiled artifact (the entry takes no arguments and returns a
/// scalar checksum) on the engine selected at compile time. \p Mode
/// selects libm vs vector-math emulation (interpreter only). Thin wrapper
/// over api::Program::invoke with output capture on.
RunResult run(const Compiled &C,
              interp::MathMode Mode = interp::MathMode::Precise);

/// Convenience: compile-or-abort + run; used by benches.
RunResult compileAndRun(const std::string &CSource, const std::string &Entry,
                        PipelineKind Kind,
                        interp::MathMode Mode = interp::MathMode::Precise,
                        exec::EngineKind Engine = exec::EngineKind::Interp);

/// Loads a workload file from the workloads/ corpus (DCIR_WORKLOADS_DIR).
std::string loadWorkload(const std::string &RelativePath);

} // namespace pipeline
} // namespace dcir

#endif // DCIR_PIPELINE_PIPELINE_H
