//===- ConvertToSdfg.h - std dialects to sdfg dialect (paper §5.1) -----------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DCIR converter: rewrites a module in the func/scf/arith/math/memref
/// dialects into the sdfg dialect. Faithful to the paper's §5.1:
///
///  * every `?` memref dimension becomes a fresh symbol (`sym("s_0")`);
///  * every SSA scalar becomes a (rank-0) data container;
///  * every computational operator becomes its own tasklet, placed in its
///    own sdfg.state ("we first place every computation in its own state,
///    which may be subsequently fused in DaCe");
///  * scf constructs lower to state-machine subgraphs whose interstate edges
///    carry symbolic conditions and assignments;
///  * memory deallocation disappears — allocation is implicit in SDFGs and
///    managed by lifetime (what makes dead-memory elimination possible).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_CONVERSION_CONVERTTOSDFG_H
#define DCIR_CONVERSION_CONVERTTOSDFG_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

namespace dcir {
namespace conversion {

/// Converts every func.func in \p Module into an sdfg.sdfg inside a fresh
/// module. Returns null on failure. Functions must be fully inlined (run the
/// inliner first); remaining func.call ops are rejected.
ir::Operation *convertToSdfgDialect(ir::Operation *Module,
                                    DiagnosticEngine &Diags);

} // namespace conversion
} // namespace dcir

#endif // DCIR_CONVERSION_CONVERTTOSDFG_H
