//===- ConvertToSdfg.cpp -----------------------------------------------------------===//

#include "conversion/ConvertToSdfg.h"

#include "dialects/Arith.h"
#include "dialects/Func.h"
#include "dialects/MathDialect.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"
#include "dialects/Sdfg.h"
#include "support/StringUtils.h"

#include <map>

using namespace dcir;
using namespace dcir::conversion;
using namespace dcir::ir;
using sym::SymExpr;

namespace {

/// Converts one function into an sdfg.sdfg operation.
class FuncConverter {
public:
  FuncConverter(Operation *Func, Operation *NewModule,
                DiagnosticEngine &Diags)
      : Func(Func), Ctx(Func->getContext()), NewModule(NewModule),
        Diags(Diags), B(Ctx) {}

  bool run();

private:
  Operation *Func;
  IRContext &Ctx;
  Operation *NewModule;
  DiagnosticEngine &Diags;
  OpBuilder B;

  Operation *Sdfg = nullptr;
  Block *SdfgBody = nullptr;

  /// Where a converted value lives.
  struct Binding {
    enum class Kind { Container, ArrayArg, Symbol } K = Kind::Container;
    std::string Name;      // Container or symbol name.
    Value *ArrayValue = nullptr; // sdfg block arg or alloc result.
    SymExpr Expr;          // Symbol binding: the symbolic expression.
  };
  std::map<Value *, Binding> Bindings;
  unsigned NextSym = 0;
  unsigned NextContainer = 0;
  unsigned NextState = 0;

  /// State-machine chain under construction.
  std::string PrevState; // Empty before the first state.
  SymExpr PendingCondition;
  std::vector<std::pair<std::string, SymExpr>> PendingAssignments;

  //===------------------------------------------------------------------===//
  // Helpers
  //===------------------------------------------------------------------===//

  std::string freshSymbol() { return "s_" + std::to_string(NextSym++); }
  std::string freshContainer(const std::string &Hint) {
    return Hint + "_" + std::to_string(NextContainer++);
  }

  Type containerType(Type Scalar) {
    return Ctx.getSdfgArrayType(Scalar, {});
  }

  /// Converts a memref type to an sdfg.array type, materializing fresh
  /// symbols for `?` dimensions.
  Type convertMemRefType(const MemRefType *MT) {
    std::vector<SymExpr> Shape;
    for (std::int64_t D : MT->getShape()) {
      if (D == MemRefType::kDynamic)
        Shape.push_back(SymExpr::symbol(freshSymbol()));
      else
        Shape.push_back(SymExpr::constant(D));
    }
    return Ctx.getSdfgArrayType(MT->getElementType(), std::move(Shape));
  }

  /// Creates a container alloc at the top of the SDFG body.
  Value *createContainer(const std::string &Name, Type Ty, bool Transient) {
    OpBuilder TopB(Ctx);
    if (SdfgBody->empty())
      TopB.setInsertionPointToEnd(SdfgBody);
    else
      TopB.setInsertionPoint(SdfgBody->front());
    Operation::AttrMap Attrs;
    Attrs["name"] = Attribute::getString(Name);
    Attrs["transient"] = Attribute::getBool(Transient);
    Operation *Alloc = TopB.create(sdfg_dialect::kAllocOp, SourceLoc(), {},
                                   {Ty}, std::move(Attrs));
    return Alloc->getResult(0);
  }

  /// Returns the scalar container name bound to \p V, creating one if the
  /// value has no binding yet (should not happen for well-formed input).
  const Binding &bindingOf(Value *V) {
    auto It = Bindings.find(V);
    assert(It != Bindings.end() && "value converted before definition");
    return It->second;
  }

  /// Opens a new state appended to the chain and returns its body block.
  Block *beginState(const std::string &Hint) {
    std::string Name = Hint + "_" + std::to_string(NextState++);
    B.setInsertionPointToEnd(SdfgBody);
    Operation *State = sdfg_dialect::createState(B, Name);
    linkTo(Name);
    return &State->getRegion(0).front();
  }

  /// Adds the chain edge PrevState -> Name with any pending condition and
  /// assignments, then makes Name the chain head.
  void linkTo(const std::string &Name) {
    if (!PrevState.empty()) {
      B.setInsertionPointToEnd(SdfgBody);
      sdfg_dialect::createEdge(B, PrevState, Name, PendingCondition,
                               PendingAssignments);
    }
    PendingCondition = SymExpr();
    PendingAssignments.clear();
    PrevState = Name;
  }

  /// Creates an explicit (possibly empty) state usable as a join point.
  std::string makeEmptyState(const std::string &Hint) {
    std::string Name = Hint + "_" + std::to_string(NextState++);
    B.setInsertionPointToEnd(SdfgBody);
    sdfg_dialect::createState(B, Name);
    return Name;
  }

  /// Adds an arbitrary edge.
  void addEdge(const std::string &Src, const std::string &Dst, SymExpr Cond,
               std::vector<std::pair<std::string, SymExpr>> Assign = {}) {
    B.setInsertionPointToEnd(SdfgBody);
    sdfg_dialect::createEdge(B, Src, Dst, Cond, Assign);
  }

  /// The symbolic expression a value contributes when used as an index or
  /// size: constants fold, symbol bindings substitute, containers appear by
  /// name (resolved later by scalar-to-symbol promotion).
  SymExpr symbolicValue(Value *V) {
    if (Operation *Def = V->getDefiningOp()) {
      if (Def->getName() == arith::kConstantOp) {
        Attribute A = Def->getAttr("value");
        if (A.getKind() == AttrKind::Integer)
          return SymExpr::constant(A.asInt());
        if (A.getKind() == AttrKind::Bool)
          return SymExpr::constant(A.asBool() ? 1 : 0);
      }
    }
    const Binding &Bi = bindingOf(V);
    if (Bi.K == Binding::Kind::Symbol)
      return Bi.Expr;
    return SymExpr::symbol(Bi.Name);
  }

  //===------------------------------------------------------------------===//
  // Per-op emission inside states
  //===------------------------------------------------------------------===//

  /// Emits `%v = sdfg.load %container[]` for a scalar binding, or an
  /// sdfg.sym for symbol bindings, inside the current state body.
  Value *materializeScalar(Value *Orig, Block *StateBody) {
    OpBuilder SB(Ctx);
    SB.setInsertionPointToEnd(StateBody);
    const Binding &Bi = bindingOf(Orig);
    if (Bi.K == Binding::Kind::Symbol)
      return sdfg_dialect::createSymValue(SB, Bi.Expr, Orig->getType());
    assert(Bi.K == Binding::Kind::Container && "array used as scalar");
    const auto *AT = Bi.ArrayValue->getType().dyn<SdfgArrayType>();
    Operation *Load =
        SB.create(sdfg_dialect::kLoadOp, SourceLoc(), {Bi.ArrayValue},
                  {AT->getElementType()});
    return Load->getResult(0);
  }

  /// Binds \p Orig to a fresh rank-0 container and stores \p NewV into it.
  void storeResult(Value *Orig, Value *NewV, Block *StateBody,
                   const std::string &Hint) {
    std::string Name = freshContainer(Hint);
    Value *C = createContainer(Name, containerType(NewV->getType()),
                               /*Transient=*/true);
    OpBuilder SB(Ctx);
    SB.setInsertionPointToEnd(StateBody);
    SB.create(sdfg_dialect::kStoreOp, SourceLoc(), {NewV, C}, {});
    Bindings[Orig] = {Binding::Kind::Container, Name, C, SymExpr()};
  }

  bool convertBlockBody(Block &Body);
  bool convertOp(Operation *Op);
  bool convertComputeOp(Operation *Op);
  bool convertLoad(Operation *Op);
  bool convertStore(Operation *Op);
  bool convertAlloc(Operation *Op);
  bool convertFor(Operation *Op);
  bool convertIf(Operation *Op);
  bool convertWhile(Operation *Op);
  bool convertReturn(Operation *Op);
};

bool FuncConverter::run() {
  // Build the sdfg.sdfg op with converted argument types.
  const FunctionType *FT = func::getFunctionType(Func);
  Block &Entry = func::getFunctionBody(Func);
  std::vector<Type> ArgTypes;
  for (Type In : FT->getInputs()) {
    if (const auto *MT = In.dyn<MemRefType>())
      ArgTypes.push_back(convertMemRefType(MT));
    else
      ArgTypes.push_back(Ctx.getSdfgArrayType(In, {}));
  }
  B.setInsertionPointToEnd(&NewModule->getRegion(0).front());
  Sdfg = sdfg_dialect::createSdfg(B, func::getFunctionName(Func), ArgTypes);
  SdfgBody = &Sdfg->getRegion(0).front();

  // Bind arguments, preserving the source-level parameter names the
  // frontend recorded (the embedding API binds buffers by these names);
  // positional fallbacks cover funcs built without the attribute.
  Attribute FuncArgNames = Func->getAttr("arg_names");
  auto ArgName = [&](size_t I) -> std::string {
    if (FuncArgNames && I < FuncArgNames.asArray().size())
      return FuncArgNames.asArray()[I].asString();
    return "_arg" + std::to_string(I);
  };
  for (size_t I = 0; I < Entry.getNumArguments(); ++I) {
    Value *OrigArg = Entry.getArgument(I);
    Value *NewArg = SdfgBody->getArgument(I);
    Binding Bi;
    Bi.K = OrigArg->getType().isMemRef() ? Binding::Kind::ArrayArg
                                         : Binding::Kind::Container;
    Bi.Name = ArgName(I);
    Bi.ArrayValue = NewArg;
    Bindings[OrigArg] = Bi;
  }
  // Record argument names for the translator.
  {
    std::vector<Attribute> Names;
    for (size_t I = 0; I < Entry.getNumArguments(); ++I)
      Names.push_back(Attribute::getString(ArgName(I)));
    Sdfg->setAttr("arg_names", Attribute::getArray(std::move(Names)));
  }
  // Return container.
  if (!FT->getResults().empty()) {
    createContainer("__return",
                    Ctx.getSdfgArrayType(FT->getResults()[0], {}),
                    /*Transient=*/false);
  }

  // Initial empty state so the machine always has an entry.
  std::string Init = makeEmptyState("init");
  PrevState = Init;
  Sdfg->setAttr("entry", Attribute::getString(Init));

  if (!convertBlockBody(Entry))
    return false;
  return true;
}

bool FuncConverter::convertBlockBody(Block &Body) {
  for (auto &Op : Body) {
    if (!convertOp(Op.get()))
      return false;
  }
  return true;
}

bool FuncConverter::convertOp(Operation *Op) {
  const std::string &Name = Op->getName();
  if (Name == scf::kYieldOp || Name == memref::kDeallocOp)
    return true; // Deallocation is implicit in SDFGs (paper §3.2).
  if (Name == memref::kAllocOp || Name == memref::kAllocaOp)
    return convertAlloc(Op);
  if (Name == memref::kLoadOp)
    return convertLoad(Op);
  if (Name == memref::kStoreOp)
    return convertStore(Op);
  if (Name == memref::kCopyOp) {
    Block *State = beginState("copy");
    OpBuilder SB(Ctx);
    SB.setInsertionPointToEnd(State);
    SB.create(sdfg_dialect::kCopyOp, Op->getLoc(),
              {bindingOf(Op->getOperand(0)).ArrayValue,
               bindingOf(Op->getOperand(1)).ArrayValue},
              {});
    return true;
  }
  if (Name == memref::kDimOp) {
    // The dimension is symbolic; bind directly as a symbol expression.
    const Binding &Arr = bindingOf(Op->getOperand(0));
    const auto *AT = Arr.ArrayValue->getType().dyn<SdfgArrayType>();
    SymExpr DimIdx = symbolicValue(Op->getOperand(1));
    if (!DimIdx.isConstant()) {
      Diags.error(Op->getLoc(), "memref.dim requires a constant dimension");
      return false;
    }
    Binding Bi;
    Bi.K = Binding::Kind::Symbol;
    Bi.Expr = AT->getShape()[DimIdx.constantValue()];
    Bindings[Op->getResult(0)] = Bi;
    return true;
  }
  if (Name == arith::kIndexCastOp) {
    // Index casts are representation-only; forward the binding.
    Bindings[Op->getResult(0)] = bindingOf(Op->getOperand(0));
    return true;
  }
  if (Name == scf::kForOp)
    return convertFor(Op);
  if (Name == scf::kIfOp)
    return convertIf(Op);
  if (Name == scf::kWhileOp)
    return convertWhile(Op);
  if (Name == func::kReturnOp)
    return convertReturn(Op);
  if (Name == func::kCallOp) {
    Diags.error(Op->getLoc(),
                "func.call reached the SDFG converter; run the inliner "
                "first");
    return false;
  }
  if (arith::isArithOp(Op) || startsWith(Name, "math."))
    return convertComputeOp(Op);
  Diags.error(Op->getLoc(),
              "operation '" + Name + "' is not convertible to the sdfg "
                                     "dialect");
  return false;
}

bool FuncConverter::convertComputeOp(Operation *Op) {
  assert(Op->getNumResults() == 1 && "compute ops produce one value");
  // Constants with integer payloads become symbol bindings outright — the
  // dialect-level equivalent of constant propagation into symbolic space.
  if (Op->getName() == arith::kConstantOp) {
    Attribute A = Op->getAttr("value");
    if (A.getKind() == AttrKind::Integer || A.getKind() == AttrKind::Bool) {
      Binding Bi;
      Bi.K = Binding::Kind::Symbol;
      Bi.Expr = SymExpr::constant(
          A.getKind() == AttrKind::Integer ? A.asInt() : (A.asBool() ? 1 : 0));
      Bindings[Op->getResult(0)] = Bi;
      return true;
    }
  }
  std::string Hint = Op->getName().substr(Op->getName().find('.') + 1);
  Block *State = beginState(Hint);
  // Materialize inputs inside the state.
  std::vector<Value *> Inputs;
  for (size_t I = 0; I < Op->getNumOperands(); ++I)
    Inputs.push_back(materializeScalar(Op->getOperand(I), State));
  // The tasklet wraps a clone of the original operation (paper Fig. 5c).
  OpBuilder SB(Ctx);
  SB.setInsertionPointToEnd(State);
  Operation *Tasklet = sdfg_dialect::createTasklet(
      SB, Inputs, {Op->getResult(0)->getType()});
  Block &TB = Tasklet->getRegion(0).front();
  std::map<Value *, Value *> Mapping;
  for (size_t I = 0; I < Op->getNumOperands(); ++I)
    Mapping[Op->getOperand(I)] = TB.getArgument(I);
  Operation *Clone = Op->clone(Mapping);
  TB.push_back(Clone);
  OpBuilder TBB(Ctx);
  TBB.setInsertionPointToEnd(&TB);
  TBB.create(sdfg_dialect::kReturnOp, Op->getLoc(), {Clone->getResult(0)},
             {});
  storeResult(Op->getResult(0), Tasklet->getResult(0), State, Hint);
  return true;
}

bool FuncConverter::convertLoad(Operation *Op) {
  const Binding &Arr = bindingOf(Op->getOperand(0));
  Block *State = beginState("load");
  OpBuilder SB(Ctx);
  SB.setInsertionPointToEnd(State);
  std::vector<Value *> Operands = {Arr.ArrayValue};
  for (size_t I = 1; I < Op->getNumOperands(); ++I) {
    SB.setInsertionPointToEnd(State);
    Operands.push_back(
        sdfg_dialect::createSymValue(SB, symbolicValue(Op->getOperand(I))));
  }
  SB.setInsertionPointToEnd(State);
  Operation *Load = SB.create(sdfg_dialect::kLoadOp, Op->getLoc(), Operands,
                              {Op->getResult(0)->getType()});
  storeResult(Op->getResult(0), Load->getResult(0), State, "load");
  return true;
}

bool FuncConverter::convertStore(Operation *Op) {
  const Binding &Arr = bindingOf(Op->getOperand(1));
  Block *State = beginState("store");
  Value *V = materializeScalar(Op->getOperand(0), State);
  OpBuilder SB(Ctx);
  std::vector<Value *> Operands = {V, Arr.ArrayValue};
  for (size_t I = 2; I < Op->getNumOperands(); ++I) {
    SB.setInsertionPointToEnd(State);
    Operands.push_back(
        sdfg_dialect::createSymValue(SB, symbolicValue(Op->getOperand(I))));
  }
  SB.setInsertionPointToEnd(State);
  SB.create(sdfg_dialect::kStoreOp, Op->getLoc(), Operands, {});
  return true;
}

bool FuncConverter::convertAlloc(Operation *Op) {
  const auto *MT = Op->getResult(0)->getType().dyn<MemRefType>();
  std::vector<SymExpr> Shape;
  size_t DynIdx = 0;
  for (std::int64_t D : MT->getShape()) {
    if (D != MemRefType::kDynamic) {
      Shape.push_back(SymExpr::constant(D));
      continue;
    }
    SymExpr Size = symbolicValue(Op->getOperand(DynIdx++));
    if (Size.isConstant()) {
      Shape.push_back(Size);
      continue;
    }
    // Dynamic size: introduce a symbol assigned on the incoming edge (the
    // value is only known at run time).
    std::string Sym = freshSymbol();
    PendingAssignments.push_back({Sym, Size});
    std::string Join = makeEmptyState("allocsym");
    linkTo(Join);
    Shape.push_back(SymExpr::symbol(Sym));
  }
  std::string Name = freshContainer("v");
  Value *C = createContainer(
      Name, Ctx.getSdfgArrayType(MT->getElementType(), Shape),
      /*Transient=*/true);
  // Record the requested storage for the pre-allocation pass.
  Operation *AllocOp = C->getDefiningOp();
  AllocOp->setAttr("stack_hint",
                   Attribute::getBool(Op->getName() == memref::kAllocaOp));
  Bindings[Op->getResult(0)] = {Binding::Kind::ArrayArg, Name, C, SymExpr()};
  return true;
}

bool FuncConverter::convertFor(Operation *Op) {
  // Bounds become symbols; the loop is a guard/body/latch state subgraph.
  SymExpr Lb = symbolicValue(Op->getOperand(0));
  SymExpr Ub = symbolicValue(Op->getOperand(1));
  SymExpr Step = symbolicValue(Op->getOperand(2));
  std::string IvSym = "i_" + std::to_string(NextSym++);

  std::string Guard = makeEmptyState("guard");
  // Edge into the guard initializes the induction symbol.
  PendingAssignments.push_back({IvSym, Lb});
  linkTo(Guard);

  // Body chain.
  std::string BodyEntry = makeEmptyState("body");
  addEdge(Guard, BodyEntry, SymExpr::lt(SymExpr::symbol(IvSym), Ub));
  PrevState = BodyEntry;
  PendingCondition = SymExpr();
  PendingAssignments.clear();

  Block &Body = scf::getForBody(Op);
  Binding IvBinding;
  IvBinding.K = Binding::Kind::Symbol;
  IvBinding.Expr = SymExpr::symbol(IvSym);
  Bindings[Body.getArgument(0)] = IvBinding;
  if (!convertBlockBody(Body))
    return false;

  // Latch: increment and return to the guard.
  PendingAssignments.push_back(
      {IvSym, SymExpr::add(SymExpr::symbol(IvSym), Step)});
  linkTo(Guard);

  // Exit.
  std::string Exit = makeEmptyState("exit");
  addEdge(Guard, Exit,
          SymExpr::logicalNot(SymExpr::lt(SymExpr::symbol(IvSym), Ub)));
  PrevState = Exit;
  PendingCondition = SymExpr();
  PendingAssignments.clear();
  return true;
}

bool FuncConverter::convertIf(Operation *Op) {
  SymExpr Cond = symbolicValue(Op->getOperand(0));
  std::string Guard = makeEmptyState("ifguard");
  linkTo(Guard);
  std::string Merge = makeEmptyState("ifmerge");

  // Then branch.
  std::string ThenEntry = makeEmptyState("then");
  addEdge(Guard, ThenEntry, SymExpr::ne(Cond, SymExpr::constant(0)));
  PrevState = ThenEntry;
  if (!Op->getRegion(0).empty()) {
    if (!convertBlockBody(Op->getRegion(0).front()))
      return false;
  }
  linkTo(Merge);

  // Else branch.
  std::string ElseEntry = makeEmptyState("else");
  addEdge(Guard, ElseEntry, SymExpr::eq(Cond, SymExpr::constant(0)));
  PrevState = ElseEntry;
  if (Op->getNumRegions() > 1 && !Op->getRegion(1).empty()) {
    if (!convertBlockBody(Op->getRegion(1).front()))
      return false;
  }
  linkTo(Merge);

  PrevState = Merge;
  PendingCondition = SymExpr();
  PendingAssignments.clear();
  return true;
}

bool FuncConverter::convertWhile(Operation *Op) {
  // before-region states re-evaluate the condition every iteration.
  std::string CondEntry = makeEmptyState("whilecond");
  linkTo(CondEntry);
  PrevState = CondEntry;

  Block &Before = Op->getRegion(0).front();
  Operation *CondTerm = nullptr;
  for (auto &Nested : Before) {
    if (Nested->getName() == scf::kConditionOp) {
      CondTerm = Nested.get();
      break;
    }
    if (!convertOp(Nested.get()))
      return false;
  }
  if (!CondTerm) {
    Diags.error(Op->getLoc(), "scf.while before-region lacks scf.condition");
    return false;
  }
  SymExpr Cond = symbolicValue(CondTerm->getOperand(0));
  std::string CondDone = PrevState;

  // Body.
  std::string BodyEntry = makeEmptyState("whilebody");
  addEdge(CondDone, BodyEntry, SymExpr::ne(Cond, SymExpr::constant(0)));
  PrevState = BodyEntry;
  if (!convertBlockBody(Op->getRegion(1).front()))
    return false;
  linkTo(CondEntry); // Loop back: condition states re-execute.

  std::string Exit = makeEmptyState("whileexit");
  addEdge(CondDone, Exit, SymExpr::eq(Cond, SymExpr::constant(0)));
  PrevState = Exit;
  PendingCondition = SymExpr();
  PendingAssignments.clear();
  return true;
}

bool FuncConverter::convertReturn(Operation *Op) {
  if (Op->getNumOperands() == 0)
    return true;
  // Store the returned scalar into the __return container.
  Block *State = beginState("return");
  Value *V = materializeScalar(Op->getOperand(0), State);
  // Find the __return alloc.
  Value *RetC = nullptr;
  for (auto &Nested : *SdfgBody) {
    if (Nested->getName() == sdfg_dialect::kAllocOp &&
        Nested->getAttr("name").asString() == "__return") {
      RetC = Nested->getResult(0);
      break;
    }
  }
  assert(RetC && "missing __return container");
  OpBuilder SB(Ctx);
  SB.setInsertionPointToEnd(State);
  SB.create(sdfg_dialect::kStoreOp, Op->getLoc(), {V, RetC}, {});
  return true;
}

} // namespace

Operation *dcir::conversion::convertToSdfgDialect(Operation *Module,
                                                  DiagnosticEngine &Diags) {
  IRContext &Ctx = Module->getContext();
  Operation *NewModule = createModule(Ctx);
  for (auto &Op : Module->getRegion(0).front()) {
    if (Op->getName() != func::kFuncOp)
      continue;
    FuncConverter FC(Op.get(), NewModule, Diags);
    if (!FC.run()) {
      Operation::eraseDetached(NewModule);
      return nullptr;
    }
  }
  return NewModule;
}
