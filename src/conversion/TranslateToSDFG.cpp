//===- TranslateToSDFG.cpp ---------------------------------------------------------===//

#include "conversion/TranslateToSDFG.h"

#include "dialects/Arith.h"
#include "dialects/MathDialect.h"
#include "dialects/Sdfg.h"
#include "support/StringUtils.h"

#include <map>

using namespace dcir;
using namespace dcir::conversion;
using namespace dcir::ir;
using namespace dcir::sdfg;
using sym::SymExpr;

namespace {

DType dtypeOf(Type T) {
  if (T.isFloat())
    return T.dyn<FloatType>()->getWidth() == 32 ? DType::F32 : DType::F64;
  return DType::I64;
}

/// Raises the body of an sdfg.tasklet region to a TExpr per output.
/// Arguments are pre-seeded in \p ExprOf. Returns false on unraisable ops.
bool raiseTaskletBody(Block &Body, std::map<Value *, TExpr> &ExprOf,
                      std::vector<TExpr> &Outputs, DiagnosticEngine &Diags) {
  for (auto &Op : Body) {
    const std::string &Name = Op->getName();
    if (Name == sdfg_dialect::kReturnOp) {
      for (size_t I = 0; I < Op->getNumOperands(); ++I) {
        auto It = ExprOf.find(Op->getOperand(I));
        if (It == ExprOf.end()) {
          Diags.error(Op->getLoc(), "tasklet returns an unraised value");
          return false;
        }
        Outputs.push_back(It->second);
      }
      return true;
    }
    DType Ty = Op->getNumResults() > 0
                   ? dtypeOf(Op->getResult(0)->getType())
                   : DType::I64;
    auto child = [&](size_t I) -> TExpr {
      auto It = ExprOf.find(Op->getOperand(I));
      assert(It != ExprOf.end() && "operand not raised yet");
      return It->second;
    };
    TExpr Raised;
    bool Ok = true;
    if (Name == arith::kConstantOp) {
      Attribute A = Op->getAttr("value");
      if (A.getKind() == AttrKind::Integer)
        Raised = TExpr::constI(A.asInt());
      else if (A.getKind() == AttrKind::Bool)
        Raised = TExpr::constI(A.asBool() ? 1 : 0);
      else
        Raised = TExpr::constF(A.asFloat(), Ty);
    } else if (Name == arith::kAddIOp || Name == arith::kAddFOp) {
      Raised = TExpr::op("add", {child(0), child(1)}, Ty);
    } else if (Name == arith::kSubIOp || Name == arith::kSubFOp) {
      Raised = TExpr::op("sub", {child(0), child(1)}, Ty);
    } else if (Name == arith::kMulIOp || Name == arith::kMulFOp) {
      Raised = TExpr::op("mul", {child(0), child(1)}, Ty);
    } else if (Name == arith::kDivSIOp || Name == arith::kDivFOp) {
      Raised = TExpr::op("div", {child(0), child(1)}, Ty);
    } else if (Name == arith::kRemSIOp) {
      Raised = TExpr::op("rem", {child(0), child(1)}, Ty);
    } else if (Name == arith::kAndIOp) {
      Raised = TExpr::op("and", {child(0), child(1)}, Ty);
    } else if (Name == arith::kOrIOp) {
      Raised = TExpr::op("or", {child(0), child(1)}, Ty);
    } else if (Name == arith::kXorIOp) {
      Raised = TExpr::op("xor", {child(0), child(1)}, Ty);
    } else if (Name == arith::kShLIOp) {
      Raised = TExpr::op("shl", {child(0), child(1)}, Ty);
    } else if (Name == arith::kShRSIOp) {
      Raised = TExpr::op("shr", {child(0), child(1)}, Ty);
    } else if (Name == arith::kMaxSIOp || Name == arith::kMaxFOp) {
      Raised = TExpr::op("max", {child(0), child(1)}, Ty);
    } else if (Name == arith::kMinSIOp || Name == arith::kMinFOp) {
      Raised = TExpr::op("min", {child(0), child(1)}, Ty);
    } else if (Name == arith::kNegFOp) {
      Raised = TExpr::op("neg", {child(0)}, Ty);
    } else if (Name == arith::kSelectOp) {
      Raised = TExpr::op("select", {child(0), child(1), child(2)}, Ty);
    } else if (Name == arith::kIndexCastOp) {
      Raised = child(0);
    } else if (Name == arith::kSIToFPOp) {
      Raised = TExpr::op("sitofp", {child(0)}, Ty);
    } else if (Name == arith::kFPToSIOp) {
      Raised = TExpr::op("fptosi", {child(0)}, Ty);
    } else if (Name == arith::kExtFOp) {
      Raised = TExpr::op("extf", {child(0)}, DType::F64);
    } else if (Name == arith::kTruncFOp) {
      Raised = TExpr::op("truncf", {child(0)}, DType::F32);
    } else if (Name == arith::kCmpIOp || Name == arith::kCmpFOp) {
      const std::string &P = Op->getAttr("predicate").asString();
      std::string OpName = P == "eq" || P == "oeq"   ? "eq"
                           : P == "ne" || P == "one" ? "ne"
                           : P == "slt" || P == "olt" ? "lt"
                           : P == "sle" || P == "ole" ? "le"
                           : P == "sgt" || P == "ogt" ? "gt"
                                                      : "ge";
      Raised = TExpr::op(OpName, {child(0), child(1)}, DType::I64);
    } else if (startsWith(Name, "math.")) {
      std::vector<TExpr> Children;
      for (size_t I = 0; I < Op->getNumOperands(); ++I)
        Children.push_back(child(I));
      Raised = TExpr::op(Name.substr(5), std::move(Children), Ty);
    } else {
      Diags.error(Op->getLoc(),
                  "cannot raise '" + Name + "' inside an MLIR tasklet");
      Ok = false;
    }
    if (!Ok)
      return false;
    if (Op->getNumResults() > 0)
      ExprOf[Op->getResult(0)] = Raised;
  }
  Diags.error(SourceLoc(), "tasklet body lacks sdfg.return");
  return false;
}

class Translator {
public:
  Translator(Operation *SdfgOp, DiagnosticEngine &Diags)
      : SdfgOp(SdfgOp), Diags(Diags) {}

  std::unique_ptr<SDFG> run();

private:
  Operation *SdfgOp;
  DiagnosticEngine &Diags;
  std::unique_ptr<SDFG> G;
  /// Name of the container each SSA container value denotes.
  std::map<Value *, std::string> ContainerOf;

  bool collect();
  bool buildState(Operation *StateOp);
  bool buildEdges();

  /// Resolves an in-state index value to a symbolic expression.
  SymExpr indexExpr(Value *V) {
    Operation *Def = V->getDefiningOp();
    if (Def && Def->getName() == sdfg_dialect::kSymOp)
      return Def->getAttr("expr").asSymExpr();
    if (Def && Def->getName() == sdfg_dialect::kLoadOp &&
        Def->getNumOperands() == 1) {
      // Rank-0 scalar load: reference the container by name; the
      // scalar-to-symbol pass later promotes it to a real symbol.
      auto It = ContainerOf.find(Def->getOperand(0));
      if (It != ContainerOf.end())
        return SymExpr::symbol(It->second);
    }
    return SymExpr();
  }

  /// Registers the dependency edges a subset's scalar references induce.
  void addSubsetDeps(State *S, const sym::SymSubset &Subset, Node *Consumer,
                     std::map<std::string, AccessNode *> &ScalarReads);
};

std::unique_ptr<SDFG> Translator::run() {
  G = std::make_unique<SDFG>(SdfgOp->getAttr("sym_name").asString());
  if (!collect())
    return nullptr;
  // Build each state's dataflow.
  for (auto &Op : SdfgOp->getRegion(0).front()) {
    if (Op->getName() == sdfg_dialect::kStateOp)
      if (!buildState(Op.get()))
        return nullptr;
  }
  if (!buildEdges())
    return nullptr;
  return std::move(G);
}

bool Translator::collect() {
  Block &Body = SdfgOp->getRegion(0).front();
  // Arguments.
  Attribute ArgNames = SdfgOp->getAttr("arg_names");
  for (size_t I = 0; I < Body.getNumArguments(); ++I) {
    std::string Name = ArgNames
                           ? ArgNames.asArray()[I].asString()
                           : ("_arg" + std::to_string(I));
    const auto *AT = Body.getArgument(I)->getType().dyn<SdfgArrayType>();
    if (!AT) {
      Diags.error(SdfgOp->getLoc(), "sdfg argument is not an sdfg.array");
      return false;
    }
    if (AT->getRank() == 0)
      G->addScalar(Name, dtypeOf(AT->getElementType()), /*Transient=*/false);
    else
      G->addArray(Name, dtypeOf(AT->getElementType()), AT->getShape(),
                  /*Transient=*/false);
    for (const SymExpr &D : AT->getShape()) {
      std::set<std::string> Syms;
      D.collectSymbols(Syms);
      for (const std::string &Sym : Syms)
        G->addSymbol(Sym);
    }
    ContainerOf[Body.getArgument(I)] = Name;
  }
  // Containers and states.
  for (auto &Op : Body) {
    if (Op->getName() == sdfg_dialect::kAllocOp) {
      std::string Name = Op->getAttr("name").asString();
      bool Transient = Op->getAttr("transient")
                           ? Op->getAttr("transient").asBool()
                           : true;
      const auto *AT = Op->getResult(0)->getType().dyn<SdfgArrayType>();
      if (!AT) {
        Diags.error(Op->getLoc(), "sdfg.alloc must produce an sdfg.array");
        return false;
      }
      if (AT->getRank() == 0) {
        G->addScalar(Name, dtypeOf(AT->getElementType()), Transient);
      } else {
        DataDesc &D = G->addArray(Name, dtypeOf(AT->getElementType()),
                                  AT->getShape(), Transient);
        Attribute StackHint = Op->getAttr("stack_hint");
        if (StackHint && StackHint.asBool() && !D.Shape.empty()) {
          // The converter saw a C stack array; keep the hint (the memory
          // pre-allocation pass decides the final storage class).
          D.StorageKind = Storage::Heap;
        }
      }
      for (const SymExpr &Dim : AT->getShape()) {
        std::set<std::string> Syms;
        Dim.collectSymbols(Syms);
        for (const std::string &Sym : Syms)
          if (!G->hasData(Sym))
            G->addSymbol(Sym);
      }
      ContainerOf[Op->getResult(0)] = Name;
      continue;
    }
    if (Op->getName() == sdfg_dialect::kStateOp) {
      G->addState(Op->getAttr("sym_name").asString());
      continue;
    }
  }
  // Start state.
  Attribute Entry = SdfgOp->getAttr("entry");
  if (Entry) {
    if (State *S = G->findState(Entry.asString()))
      G->setStartState(S);
  }
  return true;
}

void Translator::addSubsetDeps(
    State *S, const sym::SymSubset &Subset, Node *Consumer,
    std::map<std::string, AccessNode *> &ScalarReads) {
  std::set<std::string> Refs;
  Subset.collectSymbols(Refs);
  for (const std::string &Name : Refs) {
    if (!G->hasData(Name))
      continue; // A real symbol; no dependency needed.
    AccessNode *&A = ScalarReads[Name];
    if (!A)
      A = S->addAccess(Name);
    // Pure ordering edge (empty memlet): the consumer must run after the
    // scalar's most recent write in a fused state.
    S->connect(A, "", Consumer, "", Memlet());
  }
}

bool Translator::buildState(Operation *StateOp) {
  State *S = G->findState(StateOp->getAttr("sym_name").asString());
  assert(S && "state collected in pass 1");
  if (StateOp->getRegion(0).empty())
    return true;
  Block &Body = StateOp->getRegion(0).front();

  // Per-state caches.
  std::map<std::string, AccessNode *> ScalarReads;
  // Maps a load result to its (container, subset) for forwarding.
  struct LoadInfo {
    std::string Data;
    sym::SymSubset Subset;
    AccessNode *Access = nullptr;
    bool Consumed = false;
  };
  std::map<Value *, LoadInfo> Loads;
  std::map<Value *, std::pair<Tasklet *, std::string>> TaskletResults;
  unsigned TaskletCount = 0;

  for (auto &Op : Body) {
    const std::string &Name = Op->getName();
    if (Name == sdfg_dialect::kSymOp)
      continue; // Folded into memlet subsets / tasklet expressions.
    if (Name == sdfg_dialect::kLoadOp) {
      auto It = ContainerOf.find(Op->getOperand(0));
      if (It == ContainerOf.end()) {
        Diags.error(Op->getLoc(), "load from an unknown container");
        return false;
      }
      LoadInfo LI;
      LI.Data = It->second;
      std::vector<SymExpr> Indices;
      for (size_t I = 1; I < Op->getNumOperands(); ++I) {
        SymExpr E = indexExpr(Op->getOperand(I));
        if (!E) {
          Diags.error(Op->getLoc(), "unresolvable load index");
          return false;
        }
        Indices.push_back(E);
      }
      LI.Subset = sym::SymSubset::element(Indices);
      Loads[Op->getResult(0)] = LI;
      continue;
    }
    if (Name == sdfg_dialect::kTaskletOp) {
      Tasklet *T = S->addTasklet("t" + std::to_string(TaskletCount++));
      // Inputs.
      std::map<Value *, TExpr> ExprOf;
      Block &TB = Op->getRegion(0).front();
      for (size_t I = 0; I < Op->getNumOperands(); ++I) {
        Value *In = Op->getOperand(I);
        std::string Conn = "_in" + std::to_string(I);
        Operation *Def = In->getDefiningOp();
        if (Def && Def->getName() == sdfg_dialect::kSymOp) {
          // Symbolic input: fold into the expression, no dataflow edge.
          ExprOf[TB.getArgument(I)] =
              TExpr::symbolic(Def->getAttr("expr").asSymExpr());
          continue;
        }
        auto LIt = Loads.find(In);
        if (LIt == Loads.end()) {
          Diags.error(Op->getLoc(), "tasklet input is neither a load nor a "
                                    "symbol");
          return false;
        }
        T->InConns.push_back(Conn);
        AccessNode *A = S->addAccess(LIt->second.Data);
        Memlet M;
        M.Data = LIt->second.Data;
        M.Subset = LIt->second.Subset;
        S->connect(A, "", T, Conn, M);
        addSubsetDeps(S, M.Subset, T, ScalarReads);
        ExprOf[TB.getArgument(I)] = TExpr::input(
            Conn, dtypeOf(TB.getArgument(I)->getType()));
      }
      // Raise the body.
      std::vector<TExpr> Outputs;
      if (!raiseTaskletBody(TB, ExprOf, Outputs, Diags))
        return false;
      for (size_t I = 0; I < Op->getNumResults(); ++I) {
        std::string Conn = "_out" + std::to_string(I);
        T->OutConns.push_back(Conn);
        T->Code[Conn] = Outputs[I];
        TaskletResults[Op->getResult(I)] = {T, Conn};
      }
      continue;
    }
    if (Name == sdfg_dialect::kStoreOp) {
      Value *Stored = Op->getOperand(0);
      auto CIt = ContainerOf.find(Op->getOperand(1));
      if (CIt == ContainerOf.end()) {
        Diags.error(Op->getLoc(), "store to an unknown container");
        return false;
      }
      std::vector<SymExpr> Indices;
      for (size_t I = 2; I < Op->getNumOperands(); ++I) {
        SymExpr E = indexExpr(Op->getOperand(I));
        if (!E) {
          Diags.error(Op->getLoc(), "unresolvable store index");
          return false;
        }
        Indices.push_back(E);
      }
      Memlet M;
      M.Data = CIt->second;
      M.Subset = sym::SymSubset::element(Indices);
      if (Attribute Wcr = Op->getAttr("wcr"))
        M.Wcr = Wcr.asString();
      AccessNode *Dst = S->addAccess(CIt->second);

      auto TIt = TaskletResults.find(Stored);
      if (TIt != TaskletResults.end()) {
        S->connect(TIt->second.first, TIt->second.second, Dst, "", M);
        addSubsetDeps(S, M.Subset, Dst, ScalarReads);
        continue;
      }
      // Stored value comes from a load or a symbol: identity tasklet
      // (copy); the memlet-consolidation and array-elimination passes
      // recognize and remove these.
      Tasklet *T = S->addTasklet("copy" + std::to_string(TaskletCount++));
      Operation *Def = Stored->getDefiningOp();
      if (Def && Def->getName() == sdfg_dialect::kSymOp) {
        T->OutConns.push_back("_out0");
        T->Code["_out0"] = TExpr::symbolic(Def->getAttr("expr").asSymExpr());
      } else {
        auto LIt = Loads.find(Stored);
        if (LIt == Loads.end()) {
          Diags.error(Op->getLoc(), "stored value has no producer");
          return false;
        }
        T->InConns.push_back("_in0");
        AccessNode *A = S->addAccess(LIt->second.Data);
        Memlet SrcM;
        SrcM.Data = LIt->second.Data;
        SrcM.Subset = LIt->second.Subset;
        S->connect(A, "", T, "_in0", SrcM);
        addSubsetDeps(S, SrcM.Subset, T, ScalarReads);
        T->OutConns.push_back("_out0");
        T->Code["_out0"] = TExpr::input(
            "_in0", G->desc(LIt->second.Data).Ty);
      }
      S->connect(T, "_out0", Dst, "", M);
      addSubsetDeps(S, M.Subset, Dst, ScalarReads);
      continue;
    }
    if (Name == sdfg_dialect::kCopyOp) {
      auto SIt = ContainerOf.find(Op->getOperand(0));
      auto DIt = ContainerOf.find(Op->getOperand(1));
      if (SIt == ContainerOf.end() || DIt == ContainerOf.end()) {
        Diags.error(Op->getLoc(), "copy references unknown containers");
        return false;
      }
      AccessNode *Src = S->addAccess(SIt->second);
      AccessNode *Dst = S->addAccess(DIt->second);
      Memlet M;
      M.Data = SIt->second;
      M.Subset = sym::SymSubset::full(G->desc(SIt->second).Shape);
      S->connect(Src, "", Dst, "", M);
      continue;
    }
    Diags.error(Op->getLoc(),
                "unsupported operation '" + Name + "' inside sdfg.state");
    return false;
  }
  return true;
}

bool Translator::buildEdges() {
  for (auto &Op : SdfgOp->getRegion(0).front()) {
    if (Op->getName() != sdfg_dialect::kEdgeOp)
      continue;
    State *Src = G->findState(Op->getAttr("src").asString());
    State *Dst = G->findState(Op->getAttr("dst").asString());
    if (!Src || !Dst) {
      Diags.error(Op->getLoc(), "sdfg.edge references unknown states");
      return false;
    }
    InterstateEdge E;
    E.Condition = sdfg_dialect::getEdgeCondition(Op.get());
    E.Assignments = sdfg_dialect::getEdgeAssignments(Op.get());
    // Symbols assigned on edges are SDFG symbols.
    for (const auto &[Name, Expr] : E.Assignments)
      if (!G->hasData(Name))
        G->addSymbol(Name);
    G->addInterstateEdge(Src, Dst, E);
  }
  return true;
}

} // namespace

std::unique_ptr<SDFG>
dcir::conversion::translateToSDFG(Operation *Module, const std::string &Name,
                                  DiagnosticEngine &Diags) {
  for (auto &Op : Module->getRegion(0).front()) {
    if (Op->getName() != sdfg_dialect::kSdfgOp)
      continue;
    if (!Name.empty() && Op->getAttr("sym_name").asString() != Name)
      continue;
    Translator T(Op.get(), Diags);
    return T.run();
  }
  Diags.error("no sdfg.sdfg operation found" +
              (Name.empty() ? std::string() : (" named '" + Name + "'")));
  return nullptr;
}
