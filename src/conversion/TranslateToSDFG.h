//===- TranslateToSDFG.h - sdfg dialect to SDFG IR (paper §5.2) --------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MLIR-to-SDFG translator: two passes (collect metadata, then build the
/// graph). Tasklet regions holding MLIR arithmetic are *raised* to the
/// analyzable tasklet expression language — the paper's "raising MLIR
/// tasklets to Python tasklets", which avoids the link-time-optimization
/// penalty and re-enables data-centric analyses (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_CONVERSION_TRANSLATETOSDFG_H
#define DCIR_CONVERSION_TRANSLATETOSDFG_H

#include "ir/IR.h"
#include "sdfg/SDFG.h"
#include "support/Diagnostics.h"

#include <memory>

namespace dcir {
namespace conversion {

/// Translates the first sdfg.sdfg named \p Name (or the only one when Name
/// is empty) inside \p Module to an SDFG. Returns null on failure.
std::unique_ptr<sdfg::SDFG> translateToSDFG(ir::Operation *Module,
                                            const std::string &Name,
                                            DiagnosticEngine &Diags);

} // namespace conversion
} // namespace dcir

#endif // DCIR_CONVERSION_TRANSLATETOSDFG_H
