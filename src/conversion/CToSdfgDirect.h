//===- CToSdfgDirect.h - the DaCe C frontend stand-in -------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct C-to-SDFG translation, modeling the DaCe C frontend (Calotoiu et
/// al., ICS'22) the paper compares against ("DaCe" bars in every figure):
/// loops lift into the symbolic state machine, but every statement becomes
/// ONE opaque tasklet — an indivisible unit of C code. No control-centric
/// optimization ever looks inside, which is exactly why this pipeline misses
/// the syrk hoisting opportunity in the paper's Fig. 7.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_CONVERSION_CTOSDFGDIRECT_H
#define DCIR_CONVERSION_CTOSDFGDIRECT_H

#include "frontend/AST.h"
#include "sdfg/SDFG.h"

#include <memory>

namespace dcir {
namespace conversion {

/// Translates function \p Name of \p TU straight to an SDFG with opaque
/// tasklets. Returns null on failure.
std::unique_ptr<sdfg::SDFG>
translateCDirect(const frontend::TranslationUnit &TU, const std::string &Name,
                 DiagnosticEngine &Diags);

} // namespace conversion
} // namespace dcir

#endif // DCIR_CONVERSION_CTOSDFGDIRECT_H
