//===- CToSdfgDirect.cpp -------------------------------------------------------------===//

#include "conversion/CToSdfgDirect.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::conversion;
using namespace dcir::frontend;
using namespace dcir::sdfg;
using sym::SymExpr;

namespace {

DType dtypeOfScalar(CScalarKind K) {
  switch (K) {
  case CScalarKind::Int:
    return DType::I64;
  case CScalarKind::Float:
    return DType::F32;
  default:
    return DType::F64;
  }
}

class DirectTranslator {
public:
  DirectTranslator(const TranslationUnit &TU, const FunctionDef &Fn,
                   DiagnosticEngine &Diags)
      : TU(TU), Fn(Fn), Diags(Diags) {}

  std::unique_ptr<SDFG> run() {
    G = std::make_unique<SDFG>(Fn.Name);
    if (!Fn.ReturnTy.isVoid())
      G->addScalar("__return", dtypeOfScalar(Fn.ReturnTy.Scalar),
                   /*Transient=*/false);
    for (const VarDecl &P : Fn.Params)
      declareVar(P.Name, P.Ty, /*Param=*/true);
    Prev = G->addState("init");
    G->setStartState(Prev);
    for (const auto &S : Fn.Body->Body)
      emitStmt(S.get());
    if (Diags.hasErrors())
      return nullptr;
    return std::move(G);
  }

private:
  const TranslationUnit &TU;
  const FunctionDef &Fn;
  DiagnosticEngine &Diags;
  std::unique_ptr<SDFG> G;

  /// Chain head and pending transition decoration.
  State *Prev = nullptr;
  SymExpr PendingCond;
  std::vector<std::pair<std::string, SymExpr>> PendingAssign;
  unsigned Counter = 0;

  /// Variable classification: integer scalars become symbols when their
  /// whole lifetime is symbolically expressible; everything else becomes a
  /// container.
  struct VarInfo {
    enum class Kind { Symbol, Scalar, Array } K;
    std::string Name; // Container or symbol name.
    CScalarKind Elem = CScalarKind::Int;
  };
  std::map<std::string, VarInfo> Vars;

  std::string fresh(const std::string &Hint) {
    return Hint + "_d" + std::to_string(Counter++);
  }

  State *newState(const std::string &Hint) {
    State *S = G->addState(Hint + "_" + std::to_string(Counter++));
    link(S);
    return S;
  }

  void link(State *Next) {
    InterstateEdge E;
    E.Condition = PendingCond;
    E.Assignments = PendingAssign;
    G->addInterstateEdge(Prev, Next, E);
    PendingCond = SymExpr();
    PendingAssign.clear();
    Prev = Next;
  }

  void declareVar(const std::string &Name, const CType &Ty, bool Param) {
    VarInfo Info;
    Info.Elem = Ty.Scalar;
    if (Ty.isScalar() && Ty.Scalar == CScalarKind::Int) {
      // Integer scalars live as symbols (DaCe's lifted C semantics).
      Info.K = VarInfo::Kind::Symbol;
      Info.Name = Param ? Name : fresh(Name);
      G->addSymbol(Info.Name);
    } else if (Ty.isScalar()) {
      Info.K = VarInfo::Kind::Scalar;
      Info.Name = Param ? Name : fresh(Name);
      if (!G->hasData(Info.Name))
        G->addScalar(Info.Name, dtypeOfScalar(Ty.Scalar), !Param);
    } else if (Ty.isArray()) {
      Info.K = VarInfo::Kind::Array;
      Info.Name = Param ? Name : fresh(Name);
      std::vector<SymExpr> Shape;
      for (std::int64_t D : Ty.Dims)
        Shape.push_back(SymExpr::constant(D));
      if (!G->hasData(Info.Name))
        G->addArray(Info.Name, dtypeOfScalar(Ty.Scalar), Shape, !Param);
    } else {
      // Pointer: array of (initially unknown) size; fixed at malloc.
      Info.K = VarInfo::Kind::Array;
      Info.Name = Param ? Name : fresh(Name);
      if (!G->hasData(Info.Name))
        G->addArray(Info.Name, dtypeOfScalar(Ty.Scalar),
                    {SymExpr::symbol(Info.Name + "_size")}, !Param);
      G->addSymbol(Info.Name + "_size");
    }
    Vars[Name] = Info;
  }

  //===------------------------------------------------------------------===//
  // Symbolic expression lifting (indices, bounds, conditions)
  //===------------------------------------------------------------------===//

  /// Lifts an integer expression to symbolic form; null when impossible.
  SymExpr liftSym(const Expr *E) {
    if (const auto *I = dyn_cast<IntLitExpr>(E))
      return SymExpr::constant(I->Value);
    if (const auto *Id = dyn_cast<IdentExpr>(E)) {
      auto It = Vars.find(Id->Name);
      if (It == Vars.end())
        return SymExpr();
      if (It->second.K == VarInfo::Kind::Symbol)
        return SymExpr::symbol(It->second.Name);
      if (It->second.K == VarInfo::Kind::Scalar &&
          It->second.Elem == CScalarKind::Int)
        return SymExpr::symbol(It->second.Name); // Scalar-fallback read.
      return SymExpr();
    }
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      if (U->Op == UnaryOpKind::Neg) {
        SymExpr Inner = liftSym(U->Operand.get());
        return Inner ? SymExpr::negate(Inner) : SymExpr();
      }
      if (U->Op == UnaryOpKind::LogicalNot) {
        SymExpr Inner = liftSym(U->Operand.get());
        return Inner ? SymExpr::logicalNot(Inner) : SymExpr();
      }
      return SymExpr();
    }
    if (const auto *B = dyn_cast<BinaryExpr>(E)) {
      SymExpr L = liftSym(B->Lhs.get());
      SymExpr R = liftSym(B->Rhs.get());
      if (!L || !R)
        return SymExpr();
      switch (B->Op) {
      case BinaryOpKind::Add:
        return SymExpr::add(L, R);
      case BinaryOpKind::Sub:
        return SymExpr::sub(L, R);
      case BinaryOpKind::Mul:
        return SymExpr::mul(L, R);
      // C truncation vs symbolic flooring: only convertible when provably
      // equivalent (see texprToSymExpr).
      case BinaryOpKind::Div:
        if (!L.proveNonNegative(sym::SymbolAssumption::NonNegative) ||
            !R.provePositive(sym::SymbolAssumption::NonNegative))
          return SymExpr();
        return SymExpr::floorDiv(L, R);
      case BinaryOpKind::Rem:
        if (!L.proveNonNegative(sym::SymbolAssumption::NonNegative) ||
            !R.provePositive(sym::SymbolAssumption::NonNegative))
          return SymExpr();
        return SymExpr::mod(L, R);
      case BinaryOpKind::Lt:
        return SymExpr::lt(L, R);
      case BinaryOpKind::Le:
        return SymExpr::le(L, R);
      case BinaryOpKind::Gt:
        return SymExpr::gt(L, R);
      case BinaryOpKind::Ge:
        return SymExpr::ge(L, R);
      case BinaryOpKind::Eq:
        return SymExpr::eq(L, R);
      case BinaryOpKind::Ne:
        return SymExpr::ne(L, R);
      case BinaryOpKind::LogicalAnd:
        return SymExpr::logicalAnd(L, R);
      case BinaryOpKind::LogicalOr:
        return SymExpr::logicalOr(L, R);
      default:
        return SymExpr();
      }
    }
    return SymExpr();
  }

  //===------------------------------------------------------------------===//
  // Opaque tasklet construction
  //===------------------------------------------------------------------===//

  struct TaskletBuild {
    Tasklet *T = nullptr;
    State *S = nullptr;
    std::map<std::string, std::string> MemletKeyToConn;
    unsigned NextIn = 0;
  };

  /// Adds (or reuses) an input connector reading Data[Subset].
  std::string addInput(TaskletBuild &TB, const std::string &Data,
                       const sym::SymSubset &Subset) {
    std::string Key = Data + "|" + Subset.str();
    auto It = TB.MemletKeyToConn.find(Key);
    if (It != TB.MemletKeyToConn.end())
      return It->second;
    std::string Conn = "_in" + std::to_string(TB.NextIn++);
    TB.T->InConns.push_back(Conn);
    AccessNode *A = TB.S->addAccess(Data);
    Memlet M;
    M.Data = Data;
    M.Subset = Subset;
    TB.S->connect(A, "", TB.T, Conn, M);
    TB.MemletKeyToConn[Key] = Conn;
    return Conn;
  }

  /// Builds the tasklet expression for a C expression; records array and
  /// scalar reads as connectors. Returns nullopt on unsupported constructs.
  std::optional<TExpr> buildExpr(const Expr *E, TaskletBuild &TB) {
    switch (E->getKind()) {
    case ExprKind::IntLit:
      return TExpr::constI(cast<IntLitExpr>(E)->Value);
    case ExprKind::FloatLit: {
      const auto *F = cast<FloatLitExpr>(E);
      return TExpr::constF(F->Value, F->IsSingle ? DType::F32 : DType::F64);
    }
    case ExprKind::Ident: {
      const auto *Id = cast<IdentExpr>(E);
      auto It = Vars.find(Id->Name);
      if (It == Vars.end()) {
        Diags.error(E->Loc, "use of undeclared '" + Id->Name + "'");
        return std::nullopt;
      }
      if (It->second.K == VarInfo::Kind::Symbol)
        return TExpr::symbolic(SymExpr::symbol(It->second.Name));
      if (It->second.K == VarInfo::Kind::Scalar) {
        std::string Conn =
            addInput(TB, It->second.Name, sym::SymSubset());
        return TExpr::input(Conn, dtypeOfScalar(It->second.Elem));
      }
      Diags.error(E->Loc, "array used as a scalar value");
      return std::nullopt;
    }
    case ExprKind::Index: {
      // Collect base + indices.
      std::vector<const Expr *> Idx;
      const Expr *Cur = E;
      while (const auto *IE = dyn_cast<IndexExpr>(Cur)) {
        Idx.push_back(IE->Idx.get());
        Cur = IE->Base.get();
      }
      std::reverse(Idx.begin(), Idx.end());
      const auto *Base = dyn_cast<IdentExpr>(Cur);
      if (!Base) {
        Diags.error(E->Loc, "unsupported subscript base");
        return std::nullopt;
      }
      auto It = Vars.find(Base->Name);
      if (It == Vars.end() || It->second.K != VarInfo::Kind::Array) {
        Diags.error(E->Loc, "subscript of a non-array");
        return std::nullopt;
      }
      std::vector<SymExpr> Indices;
      for (const Expr *I : Idx) {
        SymExpr S = liftSym(I);
        if (!S) {
          Diags.error(I->Loc, "index expression is not symbolically "
                              "representable");
          return std::nullopt;
        }
        Indices.push_back(S);
      }
      std::string Conn = addInput(TB, It->second.Name,
                                  sym::SymSubset::element(Indices));
      return TExpr::input(Conn, dtypeOfScalar(It->second.Elem));
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->Op == UnaryOpKind::Deref) {
        // *p == p[0]
        const auto *Base = dyn_cast<IdentExpr>(U->Operand.get());
        if (!Base) {
          Diags.error(E->Loc, "unsupported dereference");
          return std::nullopt;
        }
        auto It = Vars.find(Base->Name);
        if (It == Vars.end() || It->second.K != VarInfo::Kind::Array) {
          Diags.error(E->Loc, "dereference of a non-pointer");
          return std::nullopt;
        }
        std::string Conn = addInput(
            TB, It->second.Name,
            sym::SymSubset::element({SymExpr::constant(0)}));
        return TExpr::input(Conn, dtypeOfScalar(It->second.Elem));
      }
      auto Inner = buildExpr(U->Operand.get(), TB);
      if (!Inner)
        return std::nullopt;
      switch (U->Op) {
      case UnaryOpKind::Neg:
        return TExpr::op("neg", {*Inner}, Inner->Ty);
      case UnaryOpKind::LogicalNot:
        return TExpr::op("not", {*Inner}, DType::I64);
      default:
        Diags.error(E->Loc, "unsupported unary operator in expression");
        return std::nullopt;
      }
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      auto L = buildExpr(B->Lhs.get(), TB);
      auto R = buildExpr(B->Rhs.get(), TB);
      if (!L || !R)
        return std::nullopt;
      DType Ty =
          (L->Ty != DType::I64 || R->Ty != DType::I64)
              ? ((L->Ty == DType::F64 || R->Ty == DType::F64) ? DType::F64
                                                              : DType::F32)
              : DType::I64;
      auto promote = [&](const TExpr &X) {
        if (Ty != DType::I64 && X.Ty == DType::I64)
          return TExpr::op("sitofp", {X}, Ty);
        return X;
      };
      switch (B->Op) {
      case BinaryOpKind::Add:
        return TExpr::op("add", {promote(*L), promote(*R)}, Ty);
      case BinaryOpKind::Sub:
        return TExpr::op("sub", {promote(*L), promote(*R)}, Ty);
      case BinaryOpKind::Mul:
        return TExpr::op("mul", {promote(*L), promote(*R)}, Ty);
      case BinaryOpKind::Div:
        return TExpr::op("div", {promote(*L), promote(*R)}, Ty);
      case BinaryOpKind::Rem:
        return TExpr::op("rem", {*L, *R}, DType::I64);
      case BinaryOpKind::Lt:
        return TExpr::op("lt", {promote(*L), promote(*R)}, DType::I64);
      case BinaryOpKind::Le:
        return TExpr::op("le", {promote(*L), promote(*R)}, DType::I64);
      case BinaryOpKind::Gt:
        return TExpr::op("gt", {promote(*L), promote(*R)}, DType::I64);
      case BinaryOpKind::Ge:
        return TExpr::op("ge", {promote(*L), promote(*R)}, DType::I64);
      case BinaryOpKind::Eq:
        return TExpr::op("eq", {promote(*L), promote(*R)}, DType::I64);
      case BinaryOpKind::Ne:
        return TExpr::op("ne", {promote(*L), promote(*R)}, DType::I64);
      case BinaryOpKind::LogicalAnd:
        return TExpr::op("and", {*L, *R}, DType::I64);
      case BinaryOpKind::LogicalOr:
        return TExpr::op("or", {*L, *R}, DType::I64);
      default:
        Diags.error(E->Loc, "unsupported binary operator");
        return std::nullopt;
      }
    }
    case ExprKind::Cond: {
      const auto *C = cast<CondExpr>(E);
      auto Cnd = buildExpr(C->Cond.get(), TB);
      auto T = buildExpr(C->Then.get(), TB);
      auto F = buildExpr(C->Else.get(), TB);
      if (!Cnd || !T || !F)
        return std::nullopt;
      DType Ty = T->Ty != DType::I64 ? T->Ty : F->Ty;
      return TExpr::op("select", {*Cnd, *T, *F}, Ty);
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      static const std::set<std::string> Libm = {
          "sqrt", "exp", "log", "pow", "fabs", "sin", "cos", "tanh",
          "sqrtf", "expf", "logf", "powf", "fabsf"};
      std::string Name = C->Callee;
      if (C->Callee == "fmax" || C->Callee == "fmin")
        Name = C->Callee == "fmax" ? "max" : "min";
      else if (Libm.count(C->Callee)) {
        if (Name.back() == 'f')
          Name.pop_back();
      } else {
        Diags.error(E->Loc, "unsupported call '" + C->Callee +
                                "' in the direct frontend");
        return std::nullopt;
      }
      std::vector<TExpr> Args;
      for (const auto &A : C->Args) {
        auto X = buildExpr(A.get(), TB);
        if (!X)
          return std::nullopt;
        if (X->Ty == DType::I64)
          *X = TExpr::op("sitofp", {*X}, DType::F64);
        Args.push_back(*X);
      }
      return TExpr::op(Name, std::move(Args), DType::F64);
    }
    case ExprKind::Cast: {
      const auto *Cst = cast<CastExpr>(E);
      auto Inner = buildExpr(Cst->Operand.get(), TB);
      if (!Inner)
        return std::nullopt;
      DType To = dtypeOfScalar(Cst->Ty.Scalar);
      if (To == Inner->Ty)
        return Inner;
      if (To == DType::I64)
        return TExpr::op("fptosi", {*Inner}, To);
      if (Inner->Ty == DType::I64)
        return TExpr::op("sitofp", {*Inner}, To);
      return TExpr::op(To == DType::F64 ? "extf" : "truncf", {*Inner}, To);
    }
    default:
      Diags.error(E->Loc, "unsupported expression in the direct frontend");
      return std::nullopt;
    }
  }

  /// Emits one opaque tasklet computing \p ValueExpr and writing the given
  /// target; compound assignments read the target too (no WCR: the frontend
  /// treats statements as black boxes).
  void emitAssignment(const Expr *Target, AssignOpKind Op,
                      const Expr *ValueExpr, SourceLoc Loc) {
    State *S = newState("stmt");
    TaskletBuild TB;
    TB.S = S;
    TB.T = S->addTasklet("cstmt");
    TB.T->Opaque = true;

    // Resolve the write target.
    std::string Data;
    sym::SymSubset Subset;
    DType Ty = DType::F64;
    if (const auto *Id = dyn_cast<IdentExpr>(Target)) {
      auto It = Vars.find(Id->Name);
      if (It == Vars.end()) {
        Diags.error(Loc, "assignment to undeclared '" + Id->Name + "'");
        return;
      }
      if (It->second.K == VarInfo::Kind::Symbol) {
        // Symbol assignment: must be symbolically liftable.
        SymExpr Rhs = liftSym(ValueExpr);
        if (Rhs && Op == AssignOpKind::None) {
          S->setName(S->getName() + "_symassign");
          PendingAssign.push_back({It->second.Name, Rhs});
          return;
        }
        if (Rhs && Op == AssignOpKind::Add) {
          PendingAssign.push_back(
              {It->second.Name,
               SymExpr::add(SymExpr::symbol(It->second.Name), Rhs)});
          return;
        }
        Diags.error(Loc, "cannot lift assignment to loop/index variable '" +
                             Id->Name + "'");
        return;
      }
      if (It->second.K != VarInfo::Kind::Scalar) {
        Diags.error(Loc, "whole-array assignment is not supported");
        return;
      }
      Data = It->second.Name;
      Subset = sym::SymSubset();
      Ty = dtypeOfScalar(It->second.Elem);
    } else if (isa<IndexExpr>(Target) ||
               (isa<UnaryExpr>(Target) &&
                cast<UnaryExpr>(Target)->Op == UnaryOpKind::Deref)) {
      // Reuse buildExpr's resolution by building a read, then stealing the
      // memlet it created. Cleaner: resolve directly.
      const Expr *Cur = Target;
      std::vector<SymExpr> Indices;
      const IdentExpr *Base = nullptr;
      if (const auto *U = dyn_cast<UnaryExpr>(Target)) {
        Base = dyn_cast<IdentExpr>(U->Operand.get());
        Indices.push_back(SymExpr::constant(0));
      } else {
        std::vector<const Expr *> Idx;
        while (const auto *IE = dyn_cast<IndexExpr>(Cur)) {
          Idx.push_back(IE->Idx.get());
          Cur = IE->Base.get();
        }
        std::reverse(Idx.begin(), Idx.end());
        Base = dyn_cast<IdentExpr>(Cur);
        for (const Expr *I : Idx) {
          SymExpr Sx = liftSym(I);
          if (!Sx) {
            Diags.error(I->Loc, "store index is not symbolically "
                                "representable");
            return;
          }
          Indices.push_back(Sx);
        }
      }
      if (!Base || !Vars.count(Base->Name) ||
          Vars[Base->Name].K != VarInfo::Kind::Array) {
        Diags.error(Loc, "unsupported assignment target");
        return;
      }
      Data = Vars[Base->Name].Name;
      Subset = sym::SymSubset::element(Indices);
      Ty = dtypeOfScalar(Vars[Base->Name].Elem);
    } else {
      Diags.error(Loc, "unsupported assignment target");
      return;
    }

    auto Rhs = buildExpr(ValueExpr, TB);
    if (!Rhs)
      return;
    TExpr Code = *Rhs;
    if (Op != AssignOpKind::None) {
      std::string SelfConn = addInput(TB, Data, Subset);
      TExpr Self = TExpr::input(SelfConn, Ty);
      const char *OpName = Op == AssignOpKind::Add   ? "add"
                           : Op == AssignOpKind::Sub ? "sub"
                           : Op == AssignOpKind::Mul ? "mul"
                                                     : "div";
      Code = TExpr::op(OpName, {Self, Code}, Ty);
    }
    if (Code.Ty == DType::I64 && Ty != DType::I64)
      Code = TExpr::op("sitofp", {Code}, Ty);
    if (Code.Ty != DType::I64 && Ty == DType::I64)
      Code = TExpr::op("fptosi", {Code}, Ty);
    TB.T->OutConns.push_back("_out0");
    TB.T->Code["_out0"] = Code;
    AccessNode *Dst = S->addAccess(Data);
    Memlet M;
    M.Data = Data;
    M.Subset = Subset;
    S->connect(TB.T, "_out0", Dst, "", M);
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void emitStmt(const Stmt *S) {
    if (Diags.hasErrors())
      return;
    switch (S->getKind()) {
    case StmtKind::Decl: {
      for (const VarDecl &D : cast<DeclStmt>(S)->Decls) {
        // malloc-backed pointers fix their size symbol on declaration.
        if (D.Ty.isPointer() && D.Init) {
          declareVar(D.Name, D.Ty, /*Param=*/false);
          handleMallocInit(D);
          continue;
        }
        declareVar(D.Name, D.Ty, /*Param=*/false);
        if (D.Init) {
          if (Vars[D.Name].K == VarInfo::Kind::Symbol) {
            SymExpr Rhs = liftSym(D.Init.get());
            if (!Rhs) {
              // Data-dependent integer (e.g. `int res = B[0]`): demote the
              // variable to a scalar container, as the DaCe C frontend does
              // when lifting fails.
              VarInfo &Info = Vars[D.Name];
              Info.K = VarInfo::Kind::Scalar;
              if (!G->hasData(Info.Name))
                G->addScalar(Info.Name, DType::I64, /*Transient=*/true);
              IdentExpr Target(D.Name, D.Loc);
              emitAssignment(&Target, AssignOpKind::None, D.Init.get(),
                             D.Loc);
              continue;
            }
            PendingAssign.push_back({Vars[D.Name].Name, Rhs});
            newState("declassign");
          } else {
            IdentExpr Target(D.Name, D.Loc);
            emitAssignment(&Target, AssignOpKind::None, D.Init.get(),
                           D.Loc);
          }
        }
      }
      return;
    }
    case StmtKind::Expr:
      emitExprStmt(cast<ExprStmt>(S)->E.get());
      return;
    case StmtKind::Block:
      for (const auto &Sub : cast<BlockStmt>(S)->Body)
        emitStmt(Sub.get());
      return;
    case StmtKind::If:
      emitIf(cast<IfStmt>(S));
      return;
    case StmtKind::For:
      emitFor(cast<ForStmt>(S));
      return;
    case StmtKind::While:
      Diags.error(S->Loc, "while loops are not supported by the direct "
                          "frontend");
      return;
    case StmtKind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->Value) {
        IdentExpr Target("__ret_target", R->Loc);
        // Write into the __return scalar through a tasklet.
        Vars["__ret_target"] = {VarInfo::Kind::Scalar, "__return",
                                Fn.ReturnTy.Scalar};
        emitAssignment(&Target, AssignOpKind::None, R->Value.get(), R->Loc);
      }
      return;
    }
    case StmtKind::Empty:
      return;
    }
  }

  void handleMallocInit(const VarDecl &D) {
    const auto *Cst = dyn_cast<CastExpr>(D.Init.get());
    const CallExpr *Call =
        Cst ? dyn_cast<CallExpr>(Cst->Operand.get()) : nullptr;
    if (!Call || Call->Callee != "malloc" || Call->Args.size() != 1) {
      Diags.error(D.Loc, "pointer initializers must be (T*)malloc(...)");
      return;
    }
    // Extract `count * sizeof(T)`.
    SymExpr Count;
    if (const auto *Bin = dyn_cast<BinaryExpr>(Call->Args[0].get())) {
      if (Bin->Op == BinaryOpKind::Mul) {
        if (isa<SizeOfExpr>(Bin->Rhs.get()))
          Count = liftSym(Bin->Lhs.get());
        else if (isa<SizeOfExpr>(Bin->Lhs.get()))
          Count = liftSym(Bin->Rhs.get());
      }
    }
    if (!Count) {
      Diags.error(D.Loc, "malloc size must be `count * sizeof(type)` with a "
                         "symbolic count");
      return;
    }
    // Pin the size symbol via substitution in the descriptor.
    DataDesc &Desc = G->desc(Vars[D.Name].Name);
    Desc.Shape = {Count};
  }

  void emitExprStmt(const Expr *E) {
    if (const auto *A = dyn_cast<AssignExpr>(E)) {
      emitAssignment(A->Target.get(), A->Op, A->Value.get(), A->Loc);
      return;
    }
    if (const auto *U = dyn_cast<UnaryExpr>(E)) {
      // i++ / i-- as statements.
      if (U->Op == UnaryOpKind::PostInc || U->Op == UnaryOpKind::PreInc ||
          U->Op == UnaryOpKind::PostDec || U->Op == UnaryOpKind::PreDec) {
        bool Inc =
            U->Op == UnaryOpKind::PostInc || U->Op == UnaryOpKind::PreInc;
        IntLitExpr One(1, U->Loc);
        emitAssignment(U->Operand.get(),
                       Inc ? AssignOpKind::Add : AssignOpKind::Sub, &One,
                       U->Loc);
        return;
      }
    }
    if (const auto *C = dyn_cast<CallExpr>(E)) {
      if (C->Callee == "free")
        return; // Allocation is implicit.
    }
    Diags.error(E->Loc, "unsupported expression statement");
  }

  void emitIf(const IfStmt *S) {
    SymExpr Cond = liftSym(S->Cond.get());
    if (!Cond) {
      // Data-dependent condition: compute it into an int scalar first.
      std::string CondVar = fresh("cond");
      G->addScalar(CondVar, DType::I64, /*Transient=*/true);
      State *CS = newState("condeval");
      TaskletBuild TB;
      TB.S = CS;
      TB.T = CS->addTasklet("ccond");
      TB.T->Opaque = true;
      auto CondE = buildExpr(S->Cond.get(), TB);
      if (!CondE)
        return;
      TExpr Code = *CondE;
      if (Code.Ty != DType::I64)
        Code = TExpr::op("ne", {Code, TExpr::constF(0.0)}, DType::I64);
      TB.T->OutConns.push_back("_out0");
      TB.T->Code["_out0"] = Code;
      AccessNode *Dst = CS->addAccess(CondVar);
      Memlet M;
      M.Data = CondVar;
      CS->connect(TB.T, "_out0", Dst, "", M);
      Cond = SymExpr::ne(SymExpr::symbol(CondVar), SymExpr::constant(0));
    }
    State *Guard = newState("ifguard");
    State *Merge = G->addState("ifmerge_" + std::to_string(Counter++));
    // Then branch.
    PendingCond = Cond;
    State *Then = newState("then");
    (void)Then;
    emitStmt(S->Then.get());
    link(Merge);
    // Else branch.
    Prev = Guard;
    PendingCond = SymExpr::logicalNot(Cond);
    State *Else = newState("else");
    (void)Else;
    if (S->Else)
      emitStmt(S->Else.get());
    link(Merge);
    Prev = Merge;
  }

  void emitFor(const ForStmt *S) {
    // Canonical loops only: `for (int i = a; i < b; i += c)` and friends.
    std::string IvName;
    SymExpr Begin, End, StepE;
    bool Decreasing = false, Inclusive = false;
    // Init.
    if (const auto *DS = S->Init ? dyn_cast<DeclStmt>(S->Init.get())
                                 : nullptr) {
      if (DS->Decls.size() == 1 && DS->Decls[0].Ty.isInteger() &&
          DS->Decls[0].Init) {
        declareVar(DS->Decls[0].Name, DS->Decls[0].Ty, /*Param=*/false);
        IvName = DS->Decls[0].Name;
        Begin = liftSym(DS->Decls[0].Init.get());
      }
    } else if (S->Init) {
      if (const auto *ES = dyn_cast<ExprStmt>(S->Init.get()))
        if (const auto *AS = dyn_cast<AssignExpr>(ES->E.get()))
          if (const auto *Id = dyn_cast<IdentExpr>(AS->Target.get())) {
            IvName = Id->Name;
            Begin = liftSym(AS->Value.get());
          }
    }
    const auto *Cmp =
        S->Cond ? dyn_cast<BinaryExpr>(S->Cond.get()) : nullptr;
    if (!IvName.empty() && Cmp) {
      if (const auto *Id = dyn_cast<IdentExpr>(Cmp->Lhs.get()))
        if (Id->Name == IvName) {
          End = liftSym(Cmp->Rhs.get());
          if (Cmp->Op == BinaryOpKind::Le)
            Inclusive = true;
          else if (Cmp->Op == BinaryOpKind::Ge) {
            Inclusive = true;
            Decreasing = true;
          } else if (Cmp->Op == BinaryOpKind::Gt)
            Decreasing = true;
          else if (Cmp->Op != BinaryOpKind::Lt)
            End = SymExpr();
        }
    }
    std::int64_t Step = 1;
    bool IncOk = false;
    if (S->Inc) {
      if (const auto *U = dyn_cast<UnaryExpr>(S->Inc.get())) {
        const auto *Id = dyn_cast<IdentExpr>(U->Operand.get());
        if (Id && Id->Name == IvName) {
          IncOk = true;
          if (U->Op == UnaryOpKind::PostDec || U->Op == UnaryOpKind::PreDec)
            Step = -1;
        }
      } else if (const auto *A = dyn_cast<AssignExpr>(S->Inc.get())) {
        const auto *Id = dyn_cast<IdentExpr>(A->Target.get());
        const auto *Lit = dyn_cast<IntLitExpr>(A->Value.get());
        if (Id && Id->Name == IvName && Lit) {
          IncOk = true;
          Step = A->Op == AssignOpKind::Sub ? -Lit->Value : Lit->Value;
        }
      }
    }
    if (IvName.empty() || !Begin || !End || !IncOk ||
        !Vars.count(IvName) ||
        Vars[IvName].K != VarInfo::Kind::Symbol ||
        (Step < 0) != Decreasing) {
      Diags.error(S->Loc, "non-canonical for loop in the direct frontend");
      return;
    }
    std::string Iv = Vars[IvName].Name;
    // Unlike scf.for, the SDFG state machine represents decrement loops
    // natively — the semantic information Polygeist loses (paper §7.2).
    PendingAssign.push_back({Iv, Begin});
    State *Guard = newState("forguard");
    SymExpr IvS = SymExpr::symbol(Iv);
    SymExpr EnterCond;
    if (!Decreasing)
      EnterCond = Inclusive ? SymExpr::le(IvS, End) : SymExpr::lt(IvS, End);
    else
      EnterCond = Inclusive ? SymExpr::ge(IvS, End) : SymExpr::gt(IvS, End);
    PendingCond = EnterCond;
    State *Body = newState("forbody");
    (void)Body;
    emitStmt(S->Body.get());
    PendingAssign.push_back(
        {Iv, SymExpr::add(IvS, SymExpr::constant(Step))});
    link(Guard);
    PendingCond = SymExpr::logicalNot(EnterCond);
    State *Exit = newState("forexit");
    (void)Exit;
  }
};

} // namespace

std::unique_ptr<SDFG>
dcir::conversion::translateCDirect(const TranslationUnit &TU,
                                   const std::string &Name,
                                   DiagnosticEngine &Diags) {
  FunctionDef *Fn = TU.findFunction(Name);
  if (!Fn) {
    Diags.error("function '" + Name + "' not found");
    return nullptr;
  }
  DirectTranslator T(TU, *Fn, Diags);
  return T.run();
}
