//===- PassFramework.cpp - PipelineReport rendering ----------------------------===//

#include "opt/PassFramework.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace dcir;
using namespace dcir::opt;

PassStats &PipelineReport::statsFor(const std::string &Name) {
  for (PassStats &S : Passes)
    if (S.Name == Name)
      return S;
  Passes.push_back(PassStats{Name, 0, 0, 0.0});
  return Passes.back();
}

const PassStats *PipelineReport::find(const std::string &Name) const {
  for (const PassStats &S : Passes)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

unsigned PipelineReport::rewrites(const std::string &Name) const {
  const PassStats *S = find(Name);
  return S ? S->Rewrites : 0;
}

unsigned PipelineReport::totalRewrites() const {
  unsigned N = 0;
  for (const PassStats &S : Passes)
    N += S.Rewrites;
  return N;
}

double PipelineReport::totalSeconds() const {
  double T = 0.0;
  for (const PassStats &S : Passes)
    T += S.Seconds;
  return T;
}

void PipelineReport::merge(const PipelineReport &Other) {
  for (const PassStats &S : Other.Passes) {
    PassStats &Mine = statsFor(S.Name);
    Mine.Invocations += S.Invocations;
    Mine.Rewrites += S.Rewrites;
    Mine.Seconds += S.Seconds;
  }
  FixpointLimitHit |= Other.FixpointLimitHit;
}

std::string PipelineReport::str() const {
  size_t Width = 4;
  for (const PassStats &S : Passes)
    Width = std::max(Width, S.Name.size());
  std::ostringstream OS;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-*s %9s %6s %12s\n",
                static_cast<int>(Width), "pass", "rewrites", "runs",
                "wall");
  OS << Line;
  for (const PassStats &S : Passes) {
    std::snprintf(Line, sizeof(Line), "%-*s %9u %6u %9.3f ms\n",
                  static_cast<int>(Width), S.Name.c_str(), S.Rewrites,
                  S.Invocations, S.Seconds * 1e3);
    OS << Line;
  }
  std::snprintf(Line, sizeof(Line), "%-*s %9u %6s %9.3f ms\n",
                static_cast<int>(Width), "total", totalRewrites(), "",
                totalSeconds() * 1e3);
  OS << Line;
  if (FixpointLimitHit)
    OS << "(fixpoint round limit hit)\n";
  return OS.str();
}

std::string PipelineReport::json() const {
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const PassStats &S : Passes) {
    if (!First)
      OS << ", ";
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"pass\": \"%s\", \"rewrites\": %u, "
                  "\"invocations\": %u, \"seconds\": %.6f}",
                  S.Name.c_str(), S.Rewrites, S.Invocations, S.Seconds);
    OS << Buf;
    First = false;
  }
  OS << "]";
  return OS.str();
}
