//===- PassFramework.h - the unified instrumented pass framework --------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One homogenized pass infrastructure for both sides of the bridge (paper
/// Fig. 4): the control-centric MLIR passes (src/passes/) and the
/// data-centric SDFG passes (src/sdfgopt/) implement the same generic
/// `PassBase<UnitT>` interface and are sequenced by the same
/// `PipelineDriver<UnitT>`. The driver owns every cross-cutting concern the
/// two legacy schedulers duplicated:
///
///   * instrumentation — per-pass rewrite counters, invocation counts and
///     wall-time, aggregated into a PipelineReport;
///   * run-to-fixpoint policy — a driver marked Fixpoint re-runs its
///     children until a full round applies zero rewrites, with a
///     configurable safety limit that warns through Diagnostics instead of
///     silently stopping;
///   * verify-after-each — an optional structural verifier (ir::verify or
///     sdfg::SDFG::validate) run after every leaf pass, naming the culprit
///     pass on failure.
///
/// Drivers nest (a driver is itself a pass), so pipelines are declarative
/// trees: `-O1` is one fixpoint group, `-O2` composes it with memory
/// scheduling and auto-parallelization groups. Pipelines also have a
/// textual form (`parsePipelineSpec` / `PipelineDriver::spec`) used by
/// tests and the benches' `--passes=` flag:
///
///   pipeline := element (',' element)*
///   element  := pass-name | '(' pipeline ')' | 'fixpoint(' pipeline ')'
///
/// where pass-name resolves through a PassRegistry (which may also map
/// aliases like "simplify" to whole sub-pipelines).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_OPT_PASSFRAMEWORK_H
#define DCIR_OPT_PASSFRAMEWORK_H

#include "obs/Trace.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dcir {
namespace opt {

//===----------------------------------------------------------------------===//
// Instrumentation records
//===----------------------------------------------------------------------===//

/// Execution statistics of one (leaf) pass across a pipeline run.
struct PassStats {
  std::string Name;
  unsigned Invocations = 0; ///< Times the pass ran (fixpoint rounds count).
  unsigned Rewrites = 0;    ///< Total rewrites the pass reported.
  double Seconds = 0.0;     ///< Wall-clock across all invocations.
};

/// Aggregated per-pass statistics of a pipeline run. `OptReport`-style
/// legacy counters are derived from this by summing `rewrites(name)` —
/// the report is the single source of truth the benches serialize.
struct PipelineReport {
  /// One entry per leaf pass, in first-execution order.
  std::vector<PassStats> Passes;
  /// A fixpoint group hit its round limit while still applying rewrites.
  bool FixpointLimitHit = false;

  /// The (created-on-demand) entry for \p Name.
  PassStats &statsFor(const std::string &Name);
  /// The entry for \p Name, or null when the pass never ran.
  const PassStats *find(const std::string &Name) const;
  /// Total rewrites of pass \p Name (0 when it never ran).
  unsigned rewrites(const std::string &Name) const;
  unsigned totalRewrites() const;
  double totalSeconds() const;
  /// Folds \p Other into this report (entry-wise by pass name).
  void merge(const PipelineReport &Other);

  /// Human-readable aligned table (one line per pass).
  std::string str() const;
  /// JSON array: [{"pass": .., "rewrites": .., "invocations": ..,
  /// "seconds": ..}, ...] — embedded into BENCH_*.json rows.
  std::string json() const;
};

//===----------------------------------------------------------------------===//
// Pass interface
//===----------------------------------------------------------------------===//

/// Shared run-time context threaded through a pipeline tree.
template <typename UnitT> struct PipelineContext {
  /// Per-pass statistics, filled by the drivers.
  PipelineReport Report;
  /// Sink for fixpoint-limit warnings and verifier errors (optional).
  DiagnosticEngine *Diags = nullptr;
  /// Structural verifier run after each leaf pass (optional). For SDFG
  /// pipelines this is `SDFG::validate`; for MLIR modules `ir::verify`.
  std::function<bool(UnitT &, DiagnosticEngine &)> VerifyEach;
  /// Safety limit for fixpoint groups: a group still applying rewrites
  /// after this many rounds stops and warns instead of spinning.
  unsigned MaxFixpointRounds = 64;
  /// Set when VerifyEach failed; aborts the remaining pipeline.
  bool Failed = false;
};

/// A transformation over one IR unit (an SDFG, an MLIR module, ...).
/// Returns the number of rewrites applied so drivers can iterate to a
/// fixpoint and reports can attribute work to passes.
template <typename UnitT> class PassBase {
public:
  virtual ~PassBase() = default;

  virtual std::string name() const = 0;
  /// Mutates \p U in place; returns the number of rewrites applied.
  virtual unsigned run(UnitT &U, PipelineContext<UnitT> &Ctx) = 0;
  /// Composite passes (drivers) time/record their children themselves.
  virtual bool isComposite() const { return false; }
  /// Textual form for round-tripping pipeline definitions.
  virtual std::string spec() const { return name(); }
};

/// Adapts a free function (the native shape of every sdfgopt pass) into a
/// pass. The callable may capture auxiliary sinks (e.g. an OptReport for
/// sub-counters the single rewrite counter cannot express).
template <typename UnitT> class FunctionPass : public PassBase<UnitT> {
public:
  using FnT = std::function<unsigned(UnitT &)>;

  FunctionPass(std::string Name, FnT Fn)
      : Name(std::move(Name)), Fn(std::move(Fn)) {}

  std::string name() const override { return Name; }
  unsigned run(UnitT &U, PipelineContext<UnitT> &) override { return Fn(U); }

private:
  std::string Name;
  FnT Fn;
};

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

/// Runs a sequence of passes, once or to a fixpoint. A driver is itself a
/// pass, so groups nest into pipeline trees.
template <typename UnitT> class PipelineDriver : public PassBase<UnitT> {
public:
  explicit PipelineDriver(std::string Name, bool Fixpoint = false)
      : Name(std::move(Name)), Fixpoint(Fixpoint) {}

  PipelineDriver &add(std::unique_ptr<PassBase<UnitT>> P) {
    Children.push_back(std::move(P));
    return *this;
  }
  PipelineDriver &add(std::string PassName,
                      typename FunctionPass<UnitT>::FnT Fn) {
    return add(std::make_unique<FunctionPass<UnitT>>(std::move(PassName),
                                                     std::move(Fn)));
  }

  std::string name() const override { return Name; }
  bool isComposite() const override { return true; }
  bool isFixpoint() const { return Fixpoint; }
  size_t size() const { return Children.size(); }

  std::string spec() const override {
    std::string Body;
    for (const auto &P : Children) {
      if (!Body.empty())
        Body += ",";
      if (P->isComposite() && !static_cast<const PipelineDriver *>(P.get())
                                   ->Fixpoint)
        Body += "(" + P->spec() + ")";
      else
        Body += P->spec();
    }
    return Fixpoint ? "fixpoint(" + Body + ")" : Body;
  }

  unsigned run(UnitT &U, PipelineContext<UnitT> &Ctx) override {
    unsigned Total = 0;
    for (unsigned Round = 0;; ++Round) {
      if (Fixpoint && Round >= Ctx.MaxFixpointRounds) {
        Ctx.Report.FixpointLimitHit = true;
        if (Ctx.Diags)
          Ctx.Diags->warning(
              SourceLoc(),
              "pipeline '" + Name + "' stopped after " +
                  std::to_string(Ctx.MaxFixpointRounds) +
                  " rounds without reaching a fixpoint");
        break;
      }
      unsigned RoundChanges = 0;
      for (const auto &P : Children) {
        unsigned N;
        if (P->isComposite()) {
          N = P->run(U, Ctx);
        } else {
          obs::Span PassSpan(P->name(), "pass");
          auto T0 = std::chrono::steady_clock::now();
          N = P->run(U, Ctx);
          double Sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - T0)
                           .count();
          PassStats &S = Ctx.Report.statsFor(P->name());
          ++S.Invocations;
          S.Rewrites += N;
          S.Seconds += Sec;
          if (!Ctx.Failed && Ctx.VerifyEach && Ctx.Diags &&
              !Ctx.VerifyEach(U, *Ctx.Diags)) {
            Ctx.Diags->error("verification failed after pass '" +
                             P->name() + "'");
            Ctx.Failed = true;
          }
        }
        RoundChanges += N;
        if (Ctx.Failed)
          return Total + RoundChanges;
      }
      Total += RoundChanges;
      if (!Fixpoint || RoundChanges == 0)
        break;
    }
    return Total;
  }

private:
  std::string Name;
  bool Fixpoint;
  std::vector<std::unique_ptr<PassBase<UnitT>>> Children;
};

//===----------------------------------------------------------------------===//
// Registry and textual pipeline specs
//===----------------------------------------------------------------------===//

/// Name-to-factory registry the spec parser resolves pass names through.
/// A factory may return a composite (registering "simplify" as a whole
/// fixpoint group makes it usable as a spec alias).
template <typename UnitT> class PassRegistry {
public:
  using FactoryT = std::function<std::unique_ptr<PassBase<UnitT>>()>;

  void registerPass(const std::string &Name, FactoryT F) {
    if (Factories.emplace(Name, std::move(F)).second)
      Order.push_back(Name);
  }
  bool contains(const std::string &Name) const {
    return Factories.count(Name) > 0;
  }
  std::unique_ptr<PassBase<UnitT>> create(const std::string &Name) const {
    auto It = Factories.find(Name);
    return It == Factories.end() ? nullptr : It->second();
  }
  /// Registration order (stable for help text and tests).
  const std::vector<std::string> &names() const { return Order; }

private:
  std::map<std::string, FactoryT> Factories;
  std::vector<std::string> Order;
};

namespace detail {
inline bool isSpecNameChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '-' || C == '_' || C == '.';
}
} // namespace detail

/// Parses the textual pipeline grammar (see file comment) against
/// \p Registry. Returns null and reports through \p Diags on malformed
/// specs or unknown pass names.
template <typename UnitT>
std::unique_ptr<PipelineDriver<UnitT>>
parsePipelineSpec(const std::string &Spec, const PassRegistry<UnitT> &Registry,
                  DiagnosticEngine &Diags, const std::string &Name = "custom") {
  size_t Pos = 0;
  auto Skip = [&] {
    while (Pos < Spec.size() &&
           (Spec[Pos] == ' ' || Spec[Pos] == '\t' || Spec[Pos] == '\n'))
      ++Pos;
  };
  // Recursive descent; Parse returns a driver for one comma-list, stopping
  // at ')' or end of input.
  std::function<std::unique_ptr<PipelineDriver<UnitT>>(const std::string &,
                                                       bool)>
      ParseList = [&](const std::string &GroupName,
                      bool Fixpoint) -> std::unique_ptr<PipelineDriver<UnitT>> {
    auto Driver = std::make_unique<PipelineDriver<UnitT>>(GroupName, Fixpoint);
    for (;;) {
      Skip();
      if (Pos >= Spec.size() || Spec[Pos] == ')')
        break;
      if (Spec[Pos] == '(') {
        ++Pos;
        auto Sub = ParseList("group", /*Fixpoint=*/false);
        if (!Sub)
          return nullptr;
        Skip();
        if (Pos >= Spec.size() || Spec[Pos] != ')') {
          Diags.error("pipeline spec: missing ')' at offset " +
                      std::to_string(Pos));
          return nullptr;
        }
        ++Pos;
        if (Sub->size() == 0) {
          Diags.error("pipeline spec: empty group at offset " +
                      std::to_string(Pos));
          return nullptr;
        }
        Driver->add(std::move(Sub));
      } else {
        size_t Start = Pos;
        while (Pos < Spec.size() && detail::isSpecNameChar(Spec[Pos]))
          ++Pos;
        if (Pos == Start) {
          Diags.error("pipeline spec: unexpected character '" +
                      std::string(1, Spec[Pos]) + "' at offset " +
                      std::to_string(Pos));
          return nullptr;
        }
        std::string Tok = Spec.substr(Start, Pos - Start);
        Skip();
        if (Tok == "fixpoint" && Pos < Spec.size() && Spec[Pos] == '(') {
          ++Pos;
          auto Sub = ParseList("fixpoint", /*Fixpoint=*/true);
          if (!Sub)
            return nullptr;
          Skip();
          if (Pos >= Spec.size() || Spec[Pos] != ')') {
            Diags.error("pipeline spec: missing ')' at offset " +
                        std::to_string(Pos));
            return nullptr;
          }
          ++Pos;
          if (Sub->size() == 0) {
            Diags.error("pipeline spec: empty group at offset " +
                        std::to_string(Pos));
            return nullptr;
          }
          Driver->add(std::move(Sub));
        } else {
          auto P = Registry.create(Tok);
          if (!P) {
            Diags.error("pipeline spec: unknown pass '" + Tok + "'");
            return nullptr;
          }
          Driver->add(std::move(P));
        }
      }
      Skip();
      if (Pos < Spec.size() && Spec[Pos] == ',') {
        size_t CommaAt = Pos;
        ++Pos;
        Skip();
        // A separator must be followed by an element: a trailing comma
        // (or an empty slot before ')' / another ',') must abort naming
        // the offending token, not silently drop the stage.
        if (Pos >= Spec.size() || Spec[Pos] == ')' || Spec[Pos] == ',') {
          Diags.error("pipeline spec: empty element after ',' at offset " +
                      std::to_string(CommaAt) + " (near '" +
                      Spec.substr(Pos, 1) + "')");
          return nullptr;
        }
        continue;
      }
      break;
    }
    return Driver;
  };
  auto Driver = ParseList(Name, /*Fixpoint=*/false);
  if (!Driver)
    return nullptr;
  Skip();
  if (Pos != Spec.size()) {
    Diags.error("pipeline spec: trailing characters '" + Spec.substr(Pos) +
                "' at offset " + std::to_string(Pos));
    return nullptr;
  }
  if (Driver->size() == 0) {
    Diags.error("pipeline spec: empty pipeline");
    return nullptr;
  }
  return Driver;
}

} // namespace opt
} // namespace dcir

#endif // DCIR_OPT_PASSFRAMEWORK_H
