//===- Trace.h - structured tracing with Chrome trace-event export ------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifecycle tracing for the whole compile-and-serve path (see DESIGN.md,
/// "Observability"): RAII spans with nesting and thread ids, recorded into
/// per-thread buffers and exported as Chrome trace-event JSON (load the
/// file into chrome://tracing or Perfetto).
///
/// Span taxonomy (category / names):
///   compile   frontend.parse, passes.mlir, convert.sdfg-dialect,
///             translate.sdfg, optimize.sdfg, compile:<entry>
///   pass      one span per leaf optimizer pass (both the MLIR and the
///             SDFG pipelines — the live counterpart of PipelineReport)
///   jit       codegen.emit, jit.probe, jit.compile, jit.dlopen
///   serve     invoke:<entry>, queue-wait:<entry> (async pool)
///
/// Concurrency: each thread appends to its own buffer (registered once,
/// guarded by a per-buffer mutex that is uncontended except during
/// export), so concurrent invocation threads never serialize on a global
/// lock and never interleave half-written events. Disabled tracing costs
/// one relaxed atomic load per span.
///
/// Enabling: DCIR_TRACE=path.json at process start (flushed via atexit),
/// api::Compiler::traceFile(), or Tracer::enableToFile() directly. Tests
/// can also enable in-memory recording and read back json().
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_OBS_TRACE_H
#define DCIR_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dcir {
namespace obs {

/// Nanoseconds since the process trace epoch (monotonic clock).
std::int64_t nowNs();

/// One recorded trace event (Chrome trace-event "B"/"E" phases).
struct TraceEvent {
  std::string Name;
  const char *Cat = "";
  char Phase = 'B';       // 'B' begin / 'E' end.
  std::int64_t Ns = 0;    // Timestamp, ns since process trace epoch.
  unsigned Tid = 0;       // Process-local recording-thread id (1-based).
};

class Tracer {
public:
  /// The process-wide tracer. First use reads $DCIR_TRACE: when set and
  /// non-empty, tracing starts enabled and the buffer is written to that
  /// path at process exit.
  static Tracer &instance();

  /// One relaxed load — the only cost every span pays when tracing is
  /// off.
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Enables tracing and arranges for the buffer to be written to
  /// \p Path at process exit (and on flush()).
  void enableToFile(std::string Path);
  /// Enables/disables in-memory recording without an output file (tests).
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's buffer.
  void record(const std::string &Name, const char *Cat, char Phase,
              std::int64_t Ns);
  /// Records a finished interval with explicit timestamps — for spans
  /// whose begin happened on another thread (async queue wait).
  void completeSpan(const std::string &Name, const char *Cat,
                    std::int64_t BeginNs, std::int64_t EndNs);

  /// The whole buffer as a Chrome trace-event JSON document.
  std::string json() const;
  /// Writes json() to \p Path; false (with a stderr warning) on I/O
  /// failure.
  bool writeTo(const std::string &Path) const;
  /// Writes to the configured file, if any.
  void flush() const;
  /// Drops every recorded event (tests).
  void clear();
  /// Total recorded events across all thread buffers.
  std::size_t eventCount() const;

private:
  Tracer();

  struct ThreadBuffer {
    mutable std::mutex Mu;
    std::vector<TraceEvent> Events;
    unsigned Tid = 0;
  };
  ThreadBuffer &localBuffer();

  std::atomic<bool> Enabled{false};
  std::atomic<unsigned> NextTid{0};
  mutable std::mutex RegMu; // Guards Buffers and Path.
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  std::string Path;
};

/// RAII span: records a 'B' event at construction and the matching 'E' at
/// destruction on the same thread. When tracing is disabled construction
/// is one relaxed atomic load (the const char* overload allocates
/// nothing).
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "") {
    Tracer &T = Tracer::instance();
    if (!T.enabled())
      return;
    Active = true;
    N = Name;
    C = Cat;
    T.record(N, C, 'B', nowNs());
  }
  Span(std::string Name, const char *Cat = "") {
    Tracer &T = Tracer::instance();
    if (!T.enabled())
      return;
    Active = true;
    N = std::move(Name);
    C = Cat;
    T.record(N, C, 'B', nowNs());
  }
  ~Span() {
    if (Active)
      Tracer::instance().record(N, C, 'E', nowNs());
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  bool Active = false;
  std::string N;
  const char *C = "";
};

} // namespace obs
} // namespace dcir

#endif // DCIR_OBS_TRACE_H
