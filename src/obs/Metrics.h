//===- Metrics.h - serving counters and log2 latency histograms ---------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-metrics half of the observability layer (see DESIGN.md,
/// "Observability"): named monotonic counters and fixed-bucket log2
/// latency histograms behind a registry, exported as JSON.
///
/// Histogram layout: 64 buckets over nanoseconds; bucket 0 covers [0, 2)
/// and bucket i >= 1 covers [2^i, 2^(i+1)), so the dynamic range spans
/// 1 ns to ~292 years with a worst-case relative quantile error of one
/// bucket width (factor 2). Values at or above 2^63 saturate into the top
/// bucket, whose quantiles report the bucket's lower bound. Quantiles
/// (p50/p90/p99) interpolate linearly within the containing bucket.
/// Recording is a relaxed fetch_add — safe and cheap from any number of
/// serving threads.
///
/// Naming scheme (dot-separated, lowercase):
///   <object>.<event>              counters, e.g. jitcache.hits
///   invocations[.native|...]      per-Program invocation counts
///   latency.<engine>              per-Program latency histograms (ns)
///
/// Two scopes exist: each api::Program owns a registry (its serving
/// metrics die with it), and processRegistry() aggregates process-wide
/// components (the JitCache). snapshotJson() exports the latter.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_OBS_METRICS_H
#define DCIR_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dcir {
namespace obs {

/// A named monotonic counter (relaxed atomic increments).
class Counter {
public:
  void inc(std::uint64_t N = 1) {
    V.fetch_add(N, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> V{0};
};

/// Fixed-bucket log2 histogram over nanosecond values (see file comment).
class Histogram {
public:
  static constexpr unsigned kBuckets = 64;

  /// The bucket a value lands in: 0 for [0,2), else floor(log2(v))
  /// clamped to kBuckets-1.
  static unsigned bucketIndex(std::uint64_t V);
  /// Inclusive lower bound of bucket \p I (0 for bucket 0, else 2^I).
  static std::uint64_t bucketLo(unsigned I);
  /// Exclusive upper bound of bucket \p I; the top bucket reports its
  /// lower bound (saturation).
  static std::uint64_t bucketHi(unsigned I);

  void record(std::uint64_t ValueNs) {
    B[bucketIndex(ValueNs)].fetch_add(1, std::memory_order_relaxed);
    N.fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(ValueNs, std::memory_order_relaxed);
  }
  void recordSeconds(double S) {
    record(S > 0 ? static_cast<std::uint64_t>(S * 1e9) : 0);
  }

  std::uint64_t count() const { return N.load(std::memory_order_relaxed); }
  std::uint64_t sum() const {
    return Total.load(std::memory_order_relaxed);
  }
  std::uint64_t bucketCount(unsigned I) const {
    return I < kBuckets ? B[I].load(std::memory_order_relaxed) : 0;
  }

  /// The \p Q quantile (0..1) in nanoseconds, linearly interpolated
  /// within the containing bucket; 0 when empty. The top bucket has no
  /// upper bound and reports its lower bound.
  double quantile(double Q) const;

  /// {"count":..,"sum_ns":..,"p50_ns":..,"p90_ns":..,"p99_ns":..}
  std::string json() const;

private:
  std::atomic<std::uint64_t> B[kBuckets] = {};
  std::atomic<std::uint64_t> N{0};
  std::atomic<std::uint64_t> Total{0};
};

/// Named counters and histograms. Lookup takes a mutex; the returned
/// references are stable for the registry's lifetime, so callers on hot
/// paths resolve once and cache the pointer. Thread-safe.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Histogram &histogram(const std::string &Name);
  /// Read-only lookup; null when the name was never registered.
  const Counter *findCounter(const std::string &Name) const;
  const Histogram *findHistogram(const std::string &Name) const;

  /// {"counters":{...},"histograms":{...}} — names sorted (std::map).
  std::string json() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// The process-wide registry (JitCache and other singletons).
MetricsRegistry &processRegistry();

/// processRegistry().json() — the machine-readable process snapshot.
std::string snapshotJson();

} // namespace obs
} // namespace dcir

#endif // DCIR_OBS_METRICS_H
