//===- MapProfile.h - per-map runtime profile readback ------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-side view of the `<entry>__dcir_profile` ABI hook emitted by
/// CppCodegen when CodegenOptions::ProfileMaps is set (see DESIGN.md,
/// "Observability"). The generated artifact keeps a static table with one
/// atomic row per emitted map scope — entry count, accumulated
/// monotonic-clock nanoseconds, accumulated trip count — and exports
///
///   extern "C" long long <entry>__dcir_profile(void *out, long long cap);
///
/// A null \p out returns the row count; otherwise up to \p cap rows are
/// snapshot-copied into \p out as MapProfileABIEntry records and the total
/// row count is returned. The hook exists only in profiled artifacts: the
/// default emission contains none of this machinery (zero overhead when
/// off), and since the JIT cache key hashes the emitted source, profiled
/// and unprofiled artifacts can never collide.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_OBS_MAPPROFILE_H
#define DCIR_OBS_MAPPROFILE_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace dcir {
namespace obs {

/// The POD layout mirrored by the generated hook's output rows. `Name`
/// points into the artifact's static storage — valid as long as the
/// shared object stays loaded (the JIT cache never dlcloses).
struct MapProfileABIEntry {
  const char *Name = nullptr;
  long long Invocations = 0; // Times the scope was entered.
  long long Nanos = 0;       // Accumulated wall-clock inside the scope.
  long long Trips = 0;       // Accumulated iteration-space points.
};

/// One map scope's accumulated runtime profile, as surfaced by
/// api::Program::mapProfile(). `Name` identifies the scope as
/// "s<state-id>:<param,...>".
struct MapProfile {
  std::string Name;
  std::uint64_t Invocations = 0;
  double Seconds = 0.0;
  std::uint64_t Trips = 0;
};

/// JSON array: [{"map": .., "calls": .., "ns": .., "trips": ..}, ...].
inline std::string mapProfileJson(const std::vector<MapProfile> &Rows) {
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const MapProfile &R : Rows) {
    if (!First)
      OS << ", ";
    First = false;
    OS << "{\"map\": \"" << R.Name << "\", \"calls\": " << R.Invocations
       << ", \"ns\": " << static_cast<long long>(R.Seconds * 1e9)
       << ", \"trips\": " << R.Trips << "}";
  }
  OS << "]";
  return OS.str();
}

} // namespace obs
} // namespace dcir

#endif // DCIR_OBS_MAPPROFILE_H
