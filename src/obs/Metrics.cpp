//===- Metrics.cpp - histogram math and registry JSON -------------------------===//

#include "obs/Metrics.h"

#include <cstdio>
#include <sstream>

using namespace dcir;
using namespace dcir::obs;

unsigned Histogram::bucketIndex(std::uint64_t V) {
  if (V < 2)
    return 0;
  unsigned I = 63 - static_cast<unsigned>(__builtin_clzll(V));
  return I < kBuckets ? I : kBuckets - 1;
}

std::uint64_t Histogram::bucketLo(unsigned I) {
  return I == 0 ? 0 : (1ull << I);
}

std::uint64_t Histogram::bucketHi(unsigned I) {
  if (I == 0)
    return 2;
  if (I >= kBuckets - 1)
    return bucketLo(kBuckets - 1); // Saturated: no upper bound.
  return 1ull << (I + 1);
}

double Histogram::quantile(double Q) const {
  std::uint64_t Count = count();
  if (Count == 0)
    return 0.0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // 0-based fractional rank, interpolated within the containing bucket
  // under a uniform-within-bucket assumption.
  double Rank = Q * static_cast<double>(Count - 1);
  std::uint64_t Before = 0;
  for (unsigned I = 0; I < kBuckets; ++I) {
    std::uint64_t C = bucketCount(I);
    if (C == 0)
      continue;
    if (Rank < static_cast<double>(Before + C)) {
      double Lo = static_cast<double>(bucketLo(I));
      double Hi = static_cast<double>(bucketHi(I));
      if (Hi <= Lo)
        return Lo; // Top bucket: saturate at the lower bound.
      double Frac = (Rank - static_cast<double>(Before)) /
                    static_cast<double>(C);
      return Lo + (Hi - Lo) * Frac;
    }
    Before += C;
  }
  return static_cast<double>(bucketLo(kBuckets - 1));
}

std::string Histogram::json() const {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "{\"count\": %llu, \"sum_ns\": %llu, \"p50_ns\": %.1f, "
                "\"p90_ns\": %.1f, \"p99_ns\": %.1f}",
                static_cast<unsigned long long>(count()),
                static_cast<unsigned long long>(sum()), quantile(0.5),
                quantile(0.9), quantile(0.99));
  return Buf;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Counter> &C = Counters[Name];
  if (!C)
    C = std::make_unique<Counter>();
  return *C;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Histogram> &H = Histograms[Name];
  if (!H)
    H = std::make_unique<Histogram>();
  return *H;
}

const Counter *MetricsRegistry::findCounter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? nullptr : It->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : It->second.get();
}

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!First)
      OS << ", ";
    First = false;
    OS << "\"" << Name << "\": " << C->value();
  }
  OS << "}, \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      OS << ", ";
    First = false;
    OS << "\"" << Name << "\": " << H->json();
  }
  OS << "}}";
  return OS.str();
}

MetricsRegistry &dcir::obs::processRegistry() {
  static MetricsRegistry *R = new MetricsRegistry(); // Leaked: atexit-safe.
  return *R;
}

std::string dcir::obs::snapshotJson() { return processRegistry().json(); }
