//===- Trace.cpp - per-thread trace buffers, Chrome JSON export ---------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace dcir;
using namespace dcir::obs;

namespace {

std::chrono::steady_clock::time_point processEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

void flushAtExit() { Tracer::instance().flush(); }

/// Minimal JSON string escape (quotes, backslashes, control chars).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::int64_t dcir::obs::nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - processEpoch())
      .count();
}

Tracer::Tracer() {
  (void)processEpoch(); // Pin the epoch before any span.
  if (const char *P = std::getenv("DCIR_TRACE"); P && *P) {
    Path = P;
    Enabled.store(true, std::memory_order_relaxed);
    std::atexit(flushAtExit);
  }
}

Tracer &Tracer::instance() {
  static Tracer *T = new Tracer(); // Leaked: spans may run in atexit.
  return *T;
}

void Tracer::enableToFile(std::string P) {
  bool NeedAtExit = false;
  {
    std::lock_guard<std::mutex> Lock(RegMu);
    NeedAtExit = Path.empty() && !P.empty();
    Path = std::move(P);
  }
  Enabled.store(true, std::memory_order_relaxed);
  if (NeedAtExit)
    std::atexit(flushAtExit);
}

Tracer::ThreadBuffer &Tracer::localBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> TLB;
  if (!TLB) {
    TLB = std::make_shared<ThreadBuffer>();
    TLB->Tid = NextTid.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> Lock(RegMu);
    Buffers.push_back(TLB);
  }
  return *TLB;
}

void Tracer::record(const std::string &Name, const char *Cat, char Phase,
                    std::int64_t Ns) {
  ThreadBuffer &B = localBuffer();
  std::lock_guard<std::mutex> Lock(B.Mu);
  B.Events.push_back({Name, Cat, Phase, Ns, B.Tid});
}

void Tracer::completeSpan(const std::string &Name, const char *Cat,
                          std::int64_t BeginNs, std::int64_t EndNs) {
  ThreadBuffer &B = localBuffer();
  std::lock_guard<std::mutex> Lock(B.Mu);
  B.Events.push_back({Name, Cat, 'B', BeginNs, B.Tid});
  B.Events.push_back({Name, Cat, 'E', EndNs, B.Tid});
}

std::string Tracer::json() const {
  // Snapshot every buffer, then sort by timestamp: trace viewers require
  // each thread's B/E events in time order, and completeSpan can record
  // intervals that started before already-recorded events.
  std::vector<TraceEvent> All;
  {
    std::lock_guard<std::mutex> Lock(RegMu);
    for (const auto &B : Buffers) {
      std::lock_guard<std::mutex> BLock(B->Mu);
      All.insert(All.end(), B->Events.begin(), B->Events.end());
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.Ns != B.Ns)
                       return A.Ns < B.Ns;
                     // Equal timestamps: begins before ends keeps zero-
                     // length spans balanced for the viewer.
                     return A.Phase == 'B' && B.Phase == 'E';
                   });
  std::ostringstream OS;
  OS << "{\"traceEvents\":[";
  bool First = true;
  char Buf[64];
  for (const TraceEvent &E : All) {
    if (!First)
      OS << ",";
    First = false;
    // Chrome trace timestamps are microseconds (fractional ok).
    std::snprintf(Buf, sizeof(Buf), "%.3f",
                  static_cast<double>(E.Ns) / 1000.0);
    OS << "\n{\"name\":\"" << jsonEscape(E.Name) << "\",\"cat\":\""
       << jsonEscape(E.Cat ? E.Cat : "") << "\",\"ph\":\"" << E.Phase
       << "\",\"ts\":" << Buf << ",\"pid\":1,\"tid\":" << E.Tid << "}";
  }
  OS << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return OS.str();
}

bool Tracer::writeTo(const std::string &P) const {
  std::ofstream Out(P);
  if (!Out) {
    std::fprintf(stderr, "obs: cannot write trace file %s\n", P.c_str());
    return false;
  }
  Out << json();
  return Out.good();
}

void Tracer::flush() const {
  std::string P;
  {
    std::lock_guard<std::mutex> Lock(RegMu);
    P = Path;
  }
  if (!P.empty())
    writeTo(P);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(RegMu);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BLock(B->Mu);
    B->Events.clear();
  }
}

std::size_t Tracer::eventCount() const {
  std::size_t N = 0;
  std::lock_guard<std::mutex> Lock(RegMu);
  for (const auto &B : Buffers) {
    std::lock_guard<std::mutex> BLock(B->Mu);
    N += B->Events.size();
  }
  return N;
}
