//===- Autotuner.cpp - schedule decisions and sidecar persistence -------------===//

#include "tune/Autotuner.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace dcir;
using namespace dcir::tune;

namespace fs = std::filesystem;

codegen::MapSchedules
dcir::tune::decideSchedules(const std::vector<obs::MapProfile> &Rows,
                            const TunePolicy &Policy) {
  codegen::MapSchedules Out;
  unsigned H = Policy.Threads;
  if (H == 0)
    H = std::thread::hardware_concurrency();
  if (H == 0)
    H = 1;
  for (const obs::MapProfile &Row : Rows) {
    if (Row.Invocations == 0 || Row.Name.empty())
      continue; // Never entered: no evidence either way.
    const double PerCallNs =
        Row.Seconds * 1e9 / static_cast<double>(Row.Invocations);
    const double TripsPerCall = static_cast<double>(Row.Trips) /
                                static_cast<double>(Row.Invocations);
    codegen::MapSchedule S;
    // Ideal speedup against a constant fork/join toll per region entry —
    // deliberately optimistic about the parallel side, so serial only
    // wins where fork/join genuinely dominates (tiny maps, 1-core
    // hosts). H == 1 makes parallel strictly a toll: always serial.
    const double ParallelNs = PerCallNs / H + Policy.ForkJoinNs;
    if (H <= 1 || ParallelNs >= PerCallNs) {
      S.Policy = codegen::MapSchedulePolicy::Serial;
    } else {
      S.Policy = codegen::MapSchedulePolicy::Parallel;
      // Fine-grained trips leave scheduling overhead visible: coarsen
      // with the largest candidate the measured range supports.
      const double NsPerTrip =
          PerCallNs / (TripsPerCall > 1.0 ? TripsPerCall : 1.0);
      if (NsPerTrip <= Policy.CoarsenNsPerTrip) {
        for (unsigned T : Policy.TileCandidates) {
          if (T < 2)
            continue;
          if (TripsPerCall >=
              static_cast<double>(Policy.MinTilesPerRange) * T)
            S.Tile = std::max(S.Tile, T);
        }
      }
    }
    Out[Row.Name] = S;
  }
  return Out;
}

std::uint64_t dcir::tune::fnv64(const std::string &Data) {
  std::uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

std::string dcir::tune::fnv64Hex(const std::string &Data) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(fnv64(Data)));
  return Buf;
}

namespace {

/// Sidecar strings are entry names, hex hashes, shape keys
/// ("name=value,...") and map labels ("s0:i,j") — none need more than
/// the two JSON-mandatory escapes, but emit them correctly anyway.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

const char *policyName(codegen::MapSchedulePolicy P) {
  switch (P) {
  case codegen::MapSchedulePolicy::Auto:
    return "auto";
  case codegen::MapSchedulePolicy::Serial:
    return "serial";
  case codegen::MapSchedulePolicy::Parallel:
    return "parallel";
  }
  return "auto";
}

/// A minimal scanner for the sidecar documents this file writes: finds
/// `"key"` at the current nesting and returns the raw value text after
/// the colon. Not a general JSON parser — the tuner only ever reads its
/// own output, and malformed input just fails the load (re-measure).
struct Scanner {
  const std::string &S;
  size_t Pos = 0;

  explicit Scanner(const std::string &S) : S(S) {}

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool expect(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  bool readString(std::string &Out) {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\' && Pos + 1 < S.size())
        ++Pos;
      Out += S[Pos++];
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool readNumber(double &Out) {
    skipWs();
    size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '-' || S[Pos] == '+' || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E'))
      ++Pos;
    if (Pos == Start)
      return false;
    try {
      Out = std::stod(S.substr(Start, Pos - Start));
    } catch (...) {
      return false;
    }
    return true;
  }

  bool readBool(bool &Out) {
    skipWs();
    if (S.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Out = true;
      return true;
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Out = false;
      return true;
    }
    return false;
  }
};

} // namespace

std::string dcir::tune::tuneRecordJson(const TuneRecord &R) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"entry\": \"" << jsonEscape(R.Entry) << "\",\n"
     << "  \"source\": \"" << jsonEscape(R.SourceHash) << "\",\n"
     << "  \"shape\": \"" << jsonEscape(R.ShapeKey) << "\",\n"
     << "  \"tuned_wins\": " << (R.TunedWins ? "true" : "false") << ",\n"
     << "  \"baseline_ns\": " << R.BaselineNs << ",\n"
     << "  \"tuned_ns\": " << R.TunedNs << ",\n"
     << "  \"schedules\": [";
  bool First = true;
  for (const auto &[Name, S] : R.Schedules) {
    OS << (First ? "" : ",") << "\n    {\"map\": \"" << jsonEscape(Name)
       << "\", \"policy\": \"" << policyName(S.Policy)
       << "\", \"tile\": " << S.Tile << "}";
    First = false;
  }
  OS << (First ? "]" : "\n  ]") << "\n}\n";
  return OS.str();
}

bool dcir::tune::parseTuneRecord(const std::string &Json, TuneRecord &Out) {
  Scanner Sc(Json);
  if (!Sc.expect('{'))
    return false;
  bool SawSchedules = false;
  while (!Sc.peek('}')) {
    std::string Key;
    if (!Sc.readString(Key) || !Sc.expect(':'))
      return false;
    if (Key == "entry") {
      if (!Sc.readString(Out.Entry))
        return false;
    } else if (Key == "source") {
      if (!Sc.readString(Out.SourceHash))
        return false;
    } else if (Key == "shape") {
      if (!Sc.readString(Out.ShapeKey))
        return false;
    } else if (Key == "tuned_wins") {
      if (!Sc.readBool(Out.TunedWins))
        return false;
    } else if (Key == "baseline_ns") {
      if (!Sc.readNumber(Out.BaselineNs))
        return false;
    } else if (Key == "tuned_ns") {
      if (!Sc.readNumber(Out.TunedNs))
        return false;
    } else if (Key == "schedules") {
      if (!Sc.expect('['))
        return false;
      Out.Schedules.clear();
      while (!Sc.peek(']')) {
        if (!Sc.expect('{'))
          return false;
        std::string MapName, PolicyName;
        double Tile = 0.0;
        while (!Sc.peek('}')) {
          std::string F;
          if (!Sc.readString(F) || !Sc.expect(':'))
            return false;
          if (F == "map") {
            if (!Sc.readString(MapName))
              return false;
          } else if (F == "policy") {
            if (!Sc.readString(PolicyName))
              return false;
          } else if (F == "tile") {
            if (!Sc.readNumber(Tile))
              return false;
          } else {
            return false;
          }
          if (!Sc.peek('}') && !Sc.expect(','))
            return false;
        }
        Sc.expect('}');
        if (MapName.empty())
          return false;
        codegen::MapSchedule S;
        S.Policy = PolicyName == "serial"
                       ? codegen::MapSchedulePolicy::Serial
                   : PolicyName == "parallel"
                       ? codegen::MapSchedulePolicy::Parallel
                       : codegen::MapSchedulePolicy::Auto;
        S.Tile = static_cast<unsigned>(Tile);
        Out.Schedules[MapName] = S;
        if (!Sc.peek(']') && !Sc.expect(','))
          return false;
      }
      Sc.expect(']');
      SawSchedules = true;
    } else {
      return false; // Own-output-only format: unknown key = malformed.
    }
    if (!Sc.peek('}') && !Sc.expect(','))
      return false;
  }
  return SawSchedules && !Out.SourceHash.empty();
}

std::string dcir::tune::sidecarPath(const std::string &Dir,
                                    const std::string &SourceHash,
                                    const std::string &ShapeKey) {
  std::string Shape = ShapeKey.empty() ? "default" : fnv64Hex(ShapeKey);
  return Dir + "/" + SourceHash + "_" + Shape + ".json";
}

bool dcir::tune::saveTuneRecord(const std::string &Dir, const TuneRecord &R) {
  if (Dir.empty() || R.SourceHash.empty())
    return false;
  std::error_code EC;
  fs::create_directories(Dir, EC);
  const std::string Final = sidecarPath(Dir, R.SourceHash, R.ShapeKey);
  // Unique temp per writer: concurrent processes tuning the same key each
  // publish whole files; last rename wins, nobody reads a torn one.
  std::ostringstream Temp;
  Temp << Final << ".tmp." << ::getpid() << "."
       << std::hash<std::thread::id>()(std::this_thread::get_id());
  {
    std::ofstream OS(Temp.str(), std::ios::trunc);
    if (!OS)
      return false;
    OS << tuneRecordJson(R);
    if (!OS.flush())
      return false;
  }
  fs::rename(Temp.str(), Final, EC);
  if (EC) {
    fs::remove(Temp.str(), EC);
    return false;
  }
  return true;
}

bool dcir::tune::loadTuneRecord(const std::string &Dir,
                                const std::string &SourceHash,
                                const std::string &ShapeKey,
                                TuneRecord &Out) {
  if (Dir.empty() || SourceHash.empty())
    return false;
  std::ifstream IS(sidecarPath(Dir, SourceHash, ShapeKey));
  if (!IS)
    return false;
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return parseTuneRecord(Buf.str(), Out);
}
