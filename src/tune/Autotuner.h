//===- Autotuner.h - measured-profitability schedule tuning -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision core of the autotuner (DESIGN.md, "Autotuning"): turn the
/// per-map runtime profile a measuring artifact accumulated (obs::MapProfile
/// rows — {calls, ns, trips} per map scope, gathered through the
/// `__dcir_profile` hook) into per-map schedule decisions
/// (codegen::MapSchedules: force-serial / force-parallel / emission-time
/// tile), and persist A/B winners as JSON sidecars keyed by (source hash,
/// shape key) so warm processes skip measurement entirely.
///
/// This header is deliberately free of api:: and exec:: dependencies — the
/// decision function is pure (rows in, schedules out; unit-tested on
/// synthetic rows), and the sidecar IO is plain filesystem code. The
/// serving-side state machine (measure -> decide -> A/B -> promote/revert)
/// lives in api::Program, which owns the shape-keyed variant table the
/// tuned artifact slots into.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_TUNE_AUTOTUNER_H
#define DCIR_TUNE_AUTOTUNER_H

#include "codegen/CppCodegen.h"
#include "obs/MapProfile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dcir {
namespace tune {

/// The cost model's constants. Defaults reflect a GCC/libgomp fork/join on
/// commodity hardware; tests pin them to force either decision.
struct TunePolicy {
  /// Estimated cost of entering + leaving one OpenMP work-sharing region.
  double ForkJoinNs = 15000.0;
  /// Worker threads the parallel estimate divides by; 0 = the hardware
  /// concurrency of this host. On a 1-core host every map measures
  /// serial-wins, which is exactly the 0.76x-geomean fix.
  unsigned Threads = 0;
  /// A map whose measured per-trip cost is at or below this is
  /// fine-grained enough that work-sharing chunk overhead shows; tile it.
  double CoarsenNsPerTrip = 50.0;
  /// Emission-time tile candidates, smallest to largest (0 = untiled).
  std::vector<unsigned> TileCandidates = {0, 8, 32, 128};
  /// A tile is only eligible when the measured trips-per-call cover at
  /// least this many full tiles — fewer and the strip-mine just starves
  /// the worker threads.
  unsigned MinTilesPerRange = 4;
};

/// Folds measured per-map rows into schedule decisions. Per row:
/// serial cost = measured ns/call; parallel cost = ns/call divided by the
/// thread count plus the fork/join constant; the cheaper side wins. A
/// parallel winner with fine-grained trips additionally picks the largest
/// tile candidate its trip count supports. Rows with zero calls are
/// skipped (never measured -> no evidence -> Auto). The returned table
/// contains an entry for *every* measured map — forced-serial entries
/// matter as much as forced-parallel ones, they are what recovers the
/// 1-core geomean.
codegen::MapSchedules decideSchedules(const std::vector<obs::MapProfile> &Rows,
                                      const TunePolicy &Policy);

/// A persisted tuning outcome: what was decided for one (entry, source,
/// shape) and the A/B evidence behind it. TunedWins=false records a
/// measured revert — warm processes then skip both measurement *and* the
/// doomed tuned build.
struct TuneRecord {
  std::string Entry;
  std::string SourceHash; // api::Program's source key (fnv64 hex).
  std::string ShapeKey;   // Specialization env key; "" = shape-free.
  bool TunedWins = false;
  double BaselineNs = 0.0; // Median generic ns/invocation in the A/B.
  double TunedNs = 0.0;    // Median tuned ns/invocation in the A/B.
  codegen::MapSchedules Schedules;
};

/// FNV-1a 64-bit — the tuner's stable hash for source keys and sidecar
/// file names.
std::uint64_t fnv64(const std::string &Data);
/// fnv64 rendered as 16 lowercase hex digits.
std::string fnv64Hex(const std::string &Data);

/// Serializes \p R as the sidecar JSON document (stable key order).
std::string tuneRecordJson(const TuneRecord &R);
/// Parses a sidecar document; false on malformed input (\p Out partial).
bool parseTuneRecord(const std::string &Json, TuneRecord &Out);

/// `<Dir>/<SourceHash>_<fnv64hex(ShapeKey) | "default">.json`.
std::string sidecarPath(const std::string &Dir, const std::string &SourceHash,
                        const std::string &ShapeKey);

/// Writes \p R under \p Dir (created if missing) with a write-to-temp +
/// atomic-rename publication, so concurrent processes sharing a cache
/// root never read a torn sidecar. Returns false on IO failure — tuning
/// then simply re-measures next process, never an error.
bool saveTuneRecord(const std::string &Dir, const TuneRecord &R);

/// Loads the sidecar for (SourceHash, ShapeKey) from \p Dir. False when
/// absent or malformed.
bool loadTuneRecord(const std::string &Dir, const std::string &SourceHash,
                    const std::string &ShapeKey, TuneRecord &Out);

} // namespace tune
} // namespace dcir

#endif // DCIR_TUNE_AUTOTUNER_H
