//===- Program.h - the stable embedding runtime API ----------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once / invoke-many runtime API (see DESIGN.md, "Embedding
/// API"). Three types, mirroring how DaCe's production embedding serves
/// compiled SDFGs from long-lived processes:
///
///   Compiler     a builder over the compilation options; produces
///                Programs (see Compiler.h).
///   Program      the immutable compiled artifact — SDFG or dialect
///                module, pass report, and (for the native engine) the
///                resolved entry, prepared eagerly at creation. Shareable
///                and thread-safe: any number of threads invoke one
///                Program concurrently. Holds atomic serving counters
///                (invocations, engine fallbacks) behind stats().
///   Invocation   cheap per-call state: caller-owned typed buffers bound
///                by container name (BufferView — zero-copy in/out on the
///                native engine), symbol values, math mode, thread count.
///                Binding is validated against the SDFG's container table
///                at bind time with diagnostics that name the container.
///
/// Thread-safety contract: Program is immutable after creation; every
/// mutable serving counter is atomic; Invocation is a value type owned by
/// exactly one caller at a time. The one sharing rule callers must keep:
/// memory bound through a BufferView belongs to that invocation until
/// run() returns (or the invokeAsync future resolves).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_API_PROGRAM_H
#define DCIR_API_PROGRAM_H

#include "analysis/Analysis.h"
#include "exec/ExecutionEngine.h"
#include "exec/InterpEngine.h"
#include "obs/MapProfile.h"
#include "obs/Metrics.h"
#include "pipeline/PipelineTypes.h"
#include "sdfgopt/Passes.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dcir {
namespace ir {
class IRContext;
class Operation;
} // namespace ir

namespace api {

using exec::BufferView;

/// One row of Program::containers(): what a caller can (or cannot) bind.
struct ContainerInfo {
  std::string Name;
  sdfg::DType Type = sdfg::DType::F64;
  /// Transient containers are program-managed and not bindable.
  bool Transient = false;
  /// Element count with all free symbols at their default (0); exact for
  /// the concrete-shape kernels the corpus compiles.
  std::size_t Elements = 0;
};

/// Snapshot of a Program's serving counters (monotonic, process-local).
struct ProgramStats {
  std::uint64_t Invocations = 0;
  /// Invocations that executed on the native engine.
  std::uint64_t NativeInvocations = 0;
  /// Invocations that executed on an interpreter.
  std::uint64_t InterpInvocations = 0;
  /// Native invocations that degraded to the interpreter (unlowerable
  /// graph, failed JIT). Surfaced so serving dashboards and the bench
  /// JSON can never mislabel interpreter numbers as native.
  std::uint64_t EngineFallbacks = 0;
  /// Invocations dispatched through invokeAsync's worker pool.
  std::uint64_t AsyncInvocations = 0;
  /// Shape-specialization counters (zero unless the program was compiled
  /// with CompileOptions::Specialize != Off). Hits are invocations served
  /// by a constant-bound specialized variant; misses are first sightings
  /// of a shape (each starts a re-JIT); fallbacks are specialization
  /// attempts that degraded to the generic artifact (substitution found
  /// nothing, re-optimization or re-JIT failed); evictions count variants
  /// dropped by the LRU cap.
  std::uint64_t SpecializeHits = 0;
  std::uint64_t SpecializeMisses = 0;
  std::uint64_t SpecializeFallbacks = 0;
  std::uint64_t SpecializeEvictions = 0;
  /// Autotuning counters (zero unless compiled with
  /// CompileOptions::Autotune). Measuring counts invocations served by a
  /// profiled measuring artifact; promoted/reverted count per-shape A/B
  /// outcomes (a promoted shape serves the tuned variant steady-state, a
  /// reverted one keeps the generic artifact).
  std::uint64_t TuneMeasuring = 0;
  std::uint64_t TunePromoted = 0;
  std::uint64_t TuneReverted = 0;
  /// Static-verify gate outcome for this program (fixed at compile time;
  /// zero when compiled with StaticVerifyMode::Off). Findings counts
  /// analyzer findings; demotions counts map scopes the Error gate
  /// demoted to a serial schedule.
  std::uint64_t VerifyFindings = 0;
  std::uint64_t VerifyDemotions = 0;
  /// Speculation counters (zero unless the Guard gate synthesized runtime
  /// guards). Guarded is the number of multi-versioned map scopes (fixed
  /// at compile time); Pass/Fail accumulate guard outcomes across
  /// invocations of the native artifact — Pass entries ran the parallel
  /// emission, Fail entries fell back to the original serial order.
  std::uint64_t SpeculationGuarded = 0;
  std::uint64_t SpeculationPass = 0;
  std::uint64_t SpeculationFail = 0;
};

/// The outcome of one invocation.
struct InvocationResult {
  bool Ok = false;
  std::string Error; // Set when !Ok.
  /// Value of the `__return` scalar (0 when the artifact has none).
  double ReturnValue = 0.0;
  /// Interpreter counters; zero for native runs.
  interp::ExecutionStats Stats;
  /// Wall-clock of the execution itself.
  double Seconds = 0.0;
  /// JIT cost attributed to this invocation: non-zero exactly once per
  /// Program, on the first native invocation (the compile itself runs at
  /// Program creation).
  double CompileSeconds = 0.0;
  /// The engine that actually executed (Interp when a native program fell
  /// back).
  exec::EngineKind EngineUsed = exec::EngineKind::Interp;
  /// Output-map copies performed (see exec::EngineRun::OutputCopies): a
  /// native invocation with all outputs bound reports 0 — the zero-copy
  /// contract, asserted by tests.
  unsigned OutputCopies = 0;
  /// Snapshot of unbound non-transient containers, only when the
  /// invocation requested captureOutputs (the legacy benchmarking mode).
  std::map<std::string, std::vector<double>> Outputs;
};

class Program;

/// Cheap per-call state. Create via Program::newInvocation(), bind
/// caller-owned buffers, then run() (or Program::invokeAsync). A default-
/// constructed Invocation is inert and fails run() with a diagnostic.
class Invocation {
public:
  Invocation() = default;
  explicit Invocation(std::shared_ptr<const Program> P)
      : Prog(std::move(P)) {}

  /// Binds a caller-owned typed buffer to non-transient container
  /// \p Container. Validated immediately against the program's container
  /// table: unknown names, transients, type mismatches, and (for concrete
  /// shapes) size mismatches fail here, returning false with error()
  /// naming the container. Rebinding a name replaces the previous view.
  bool bind(const std::string &Container, const BufferView &View);
  bool bind(const std::string &Container, double *Ptr, std::size_t Len) {
    return bind(Container, BufferView::of(Ptr, Len));
  }
  bool bind(const std::string &Container, float *Ptr, std::size_t Len) {
    return bind(Container, BufferView::of(Ptr, Len));
  }
  bool bind(const std::string &Container, std::int64_t *Ptr,
            std::size_t Len) {
    return bind(Container, BufferView::of(Ptr, Len));
  }

  /// Sets a free symbol (size parameter) for this invocation.
  Invocation &setSymbol(const std::string &Name, std::int64_t Value) {
    Symbols[Name] = Value;
    return *this;
  }
  /// Per-invocation OpenMP worker count (0 = program/engine default).
  Invocation &setNumThreads(int N) {
    NumThreads = N;
    return *this;
  }
  /// Math mode (interpreter only; native code always uses libm).
  Invocation &setMathMode(interp::MathMode M) {
    Mode = M;
    return *this;
  }
  /// Legacy benchmarking mode: widen every unbound non-transient
  /// container into InvocationResult::Outputs (one copy per container).
  /// Off by default — the zero-copy path.
  Invocation &captureOutputs(bool Capture = true) {
    Capture_ = Capture;
    return *this;
  }
  /// Per-invocation opt-out from shape-specialized dispatch: with false,
  /// this invocation always runs the generic artifact (and never starts
  /// a re-JIT), regardless of the program's SpecializeMode.
  Invocation &setSpecialize(bool S) {
    Specialize_ = S;
    return *this;
  }

  /// First binding diagnostic, empty when all binds succeeded.
  const std::string &error() const { return BindError; }
  const std::map<std::string, BufferView> &bindings() const {
    return Bindings;
  }
  const std::map<std::string, std::int64_t> &symbols() const {
    return Symbols;
  }
  interp::MathMode mathMode() const { return Mode; }
  int numThreads() const { return NumThreads; }
  bool capturesOutputs() const { return Capture_; }
  bool specializes() const { return Specialize_; }
  const std::shared_ptr<const Program> &program() const { return Prog; }

  /// Executes on the program's engine. Equivalent to
  /// program()->invoke(*this).
  InvocationResult run() const;

private:
  friend class Program; // invokeAsync strips the back-reference.

  std::shared_ptr<const Program> Prog;
  std::map<std::string, BufferView> Bindings;
  std::map<std::string, std::int64_t> Symbols;
  interp::MathMode Mode = interp::MathMode::Precise;
  int NumThreads = 0;
  bool Capture_ = false;
  bool Specialize_ = true;
  std::string BindError;
};

/// The immutable compiled artifact. Create through api::Compiler (or the
/// pipeline::compile shim); share freely across threads.
class Program : public std::enable_shared_from_this<Program> {
public:
  /// Everything a Program is built from. The pipeline shim also uses this
  /// to wrap artifacts it owns (Graph may be a non-owning alias there;
  /// OwnsModule=false leaves module destruction to the wrapper).
  struct Parts {
    pipeline::PipelineKind Kind = pipeline::PipelineKind::Dcir;
    /// The full compile-time option set. The program keeps all of it —
    /// serving reads Engine/Parallelism/NumThreads/ProfileMaps, and the
    /// shape-specialization re-JIT re-runs the optimizer on a
    /// symbol-substituted clone under these same options.
    pipeline::CompileOptions Opts;
    std::string Entry;
    std::shared_ptr<ir::IRContext> Ctx; // Keeps types alive for Module.
    ir::Operation *Module = nullptr;
    bool OwnsModule = true;
    std::shared_ptr<const sdfg::SDFG> Graph;
    sdfgopt::OptReport Report;
    /// Stable identity of (source, entry, graph-affecting options) — the
    /// autotuner's persistence key (fnv64 hex; api::Compiler fills it).
    /// Empty disables sidecar persistence: the tuner still measures and
    /// A/Bs in-process, it just cannot recognize the program across
    /// processes.
    std::string SourceKey;
    /// Static-verify gate outcome (empty when the gate did not run).
    analysis::AnalysisResult Verify;
    /// Serial demotions the Error gate decided, applied to the engine
    /// before the artifact is prepared (and merged into every
    /// specialization / tuning re-JIT so a demotion can never be undone
    /// by a later re-optimization).
    codegen::MapSchedules VerifyDemotions;
    /// Runtime guards the Guard gate synthesized, registered with the
    /// engine before the artifact is prepared (and merged into tuning
    /// re-JITs alongside the demotions) so guarded scopes are emitted
    /// multi-versioned.
    codegen::SpeculativeMaps Speculation;
  };

  /// Builds a Program: instantiates the engine, and for native graph
  /// programs prepares the artifact eagerly (emit + JIT compile + resolve)
  /// so concurrent first invocations never race a compile. A native
  /// preparation failure is not fatal — the program serves from the
  /// interpreter and counts every invocation as a fallback.
  static std::shared_ptr<const Program> create(Parts P);

  ~Program();
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  //===--------------------------------------------------------------------===
  // Introspection
  //===--------------------------------------------------------------------===

  pipeline::PipelineKind pipelineKind() const { return P.Kind; }
  exec::EngineKind engine() const { return P.Opts.Engine; }
  const std::string &entry() const { return P.Entry; }
  const sdfgopt::OptReport &report() const { return P.Report; }
  /// The static-verify mode the compile actually ran under (the
  /// $DCIR_STATIC_VERIFY override is already folded in).
  pipeline::StaticVerifyMode staticVerifyMode() const {
    return P.Opts.StaticVerify;
  }
  /// Static-verify gate outcome (empty when compiled without the gate).
  const analysis::AnalysisResult &verifyResult() const { return P.Verify; }
  /// Serial demotions the Error gate applied (keyed by map scope label).
  const codegen::MapSchedules &verifyDemotions() const {
    return P.VerifyDemotions;
  }
  /// Runtime guards the Guard gate registered (keyed by map scope label).
  const codegen::SpeculativeMaps &speculation() const {
    return P.Speculation;
  }
  /// Live per-scope guard outcomes from the native artifact (empty for
  /// interpreter programs — the interpreter executes maps in sequential
  /// order, which is exactly every guard's serial fallback).
  std::vector<exec::SpeculationStat> speculationStats() const;
  /// The SDFG artifact (null for module artifacts).
  const sdfg::SDFG *graph() const { return P.Graph.get(); }
  /// The dialect-module artifact (null for SDFG artifacts).
  ir::Operation *module() const { return P.Module; }
  bool valid() const { return P.Graph || P.Module; }

  /// The container table: everything bindable (and the transients that
  /// are not). Empty for module artifacts.
  std::vector<ContainerInfo> containers() const;

  /// Why native preparation failed (empty when it succeeded or was never
  /// attempted).
  const std::string &nativePrepareError() const { return PrepareError; }
  /// Host-compiler time paid preparing the native artifact (0 on cache
  /// hits and interpreter programs).
  double nativeCompileSeconds() const { return NativeCompileSeconds; }

  /// Snapshot of the serving counters.
  ProgramStats stats() const;

  //===--------------------------------------------------------------------===
  // Shape specialization (CompileOptions::Specialize != Off)
  //===--------------------------------------------------------------------===

  /// The program's specialization policy (Off unless compiled with one).
  pipeline::SpecializeMode specializeMode() const { return P.Opts.Specialize; }
  /// Names whose invoke-time values key a specialized variant: the
  /// graph's free symbols plus its read-only non-transient integer
  /// scalars (runtime size parameters like gemm's `ni`). Empty when the
  /// program has nothing to specialize on — every shape then serves the
  /// generic artifact with zero dispatch overhead.
  const std::vector<std::string> &specializableNames() const {
    return SpecNames;
  }
  /// Synchronously materializes (or retrieves) the specialized variant
  /// for \p Values — the warm-up entry point, equivalent to what an
  /// Eager first invocation does. Returns true when a ready variant
  /// exists afterwards; false when the program does not specialize
  /// (mode Off, interpreter engine, nothing specializable, \p Values
  /// covers no specializable name) or the attempt degraded to generic.
  bool specialize(const std::map<std::string, std::int64_t> &Values) const;
  /// Live specialized variants (ready or in flight; excludes the
  /// negative-cached failures and the generic artifact).
  std::size_t variantCount() const;

  /// The program's serving-metrics registry: invocation counters
  /// (invocations, invocations.native/.interp/.fallback/.async) and
  /// per-engine latency histograms (latency.native/.interp). stats() is a
  /// typed view over the same counters.
  const obs::MetricsRegistry &metrics() const { return Metrics; }
  /// metrics().json() — the machine-readable serving snapshot.
  std::string metricsJson() const { return Metrics.json(); }

  //===--------------------------------------------------------------------===
  // Autotuning (CompileOptions::Autotune)
  //===--------------------------------------------------------------------===

  /// Where one shape stands in the tuner's lifecycle (see DESIGN.md,
  /// "Autotuning"): Off = the program does not tune (or the shape was
  /// never sighted); Measuring/Deciding = serving the profiled measuring
  /// artifact, then deciding + building the tuned variant; AbTuned /
  /// AbGeneric = the A/B arms; Tuned = promoted, the tuned variant serves
  /// steady-state; Generic = reverted (or nothing to tune), the generic
  /// artifact serves forever.
  enum class TunePhase {
    Off,
    Measuring,
    Deciding,
    AbTuned,
    AbGeneric,
    Tuned,
    Generic
  };
  /// True when the program was compiled with the autotuner on.
  bool autotune() const { return P.Opts.Autotune; }
  /// The tuner phase for the shape keyed by \p Values (the specializable
  /// values an invocation would carry). Test/introspection surface.
  TunePhase tunePhase(const std::map<std::string, std::int64_t> &Values =
                          {}) const;
  /// The schedule decisions the tuner measured for the shape keyed by
  /// \p Values (empty before the decision, or for untuned shapes).
  codegen::MapSchedules
  tunedSchedules(const std::map<std::string, std::int64_t> &Values = {}) const;

  /// Per-map runtime profile accumulated by the native artifact since
  /// preparation: one row per emitted map scope with call count, total
  /// nanoseconds, and trip count. Empty unless the program was compiled
  /// with CompileOptions::ProfileMaps (or $DCIR_PROFILE_MAPS=1) and serves
  /// natively.
  std::vector<obs::MapProfile> mapProfile() const;

  //===--------------------------------------------------------------------===
  // Invocation
  //===--------------------------------------------------------------------===

  /// A fresh invocation bound to this program.
  Invocation newInvocation() const {
    return Invocation(shared_from_this());
  }

  /// Executes \p I synchronously on the calling thread. Thread-safe.
  InvocationResult invoke(const Invocation &I) const;

  /// Convenience: invoke with no bindings (engine-allocated buffers).
  InvocationResult invoke() const { return invoke(Invocation()); }

  /// Enqueues \p I on the program's worker pool (created lazily, sized
  /// min(4, hardware_concurrency)) and returns a future — the batched
  /// serving path. Bound buffers must stay valid until the future
  /// resolves, and the program must be kept alive while futures are
  /// pending: destroying it cancels queued invocations (their futures
  /// throw std::future_error/broken_promise).
  std::future<InvocationResult> invokeAsync(Invocation I) const;

private:
  Program() = default;

  /// Validates cross-binding rules that individual bind() calls cannot
  /// see (partial binding, symbolic sizes). Returns empty on success.
  std::string validateBindings(const Invocation &I) const;

  Parts P;
  std::unique_ptr<exec::ExecutionEngine> Native; // Only for native programs.
  /// False when the generic artifact failed native preparation. The
  /// engine object is kept anyway — specialized variants may still
  /// prepare — so this flag, not `Native`, gates the generic native path.
  bool GenericPrepared = false;
  mutable exec::InterpEngine Interp;
  std::string PrepareError;
  double NativeCompileSeconds = 0.0;
  /// The first successful native invocation reports the JIT cost.
  mutable std::atomic<bool> CompileSecondsClaimed{false};

  //===--------------------------------------------------------------------===
  // Shape-specialization variant table
  //===--------------------------------------------------------------------===

  /// One shape's entry, keyed by the sorted "name=value,..." string of
  /// its specializable values. InFlight entries hold the re-JIT; Failed
  /// entries are a negative cache (the shape degrades to generic without
  /// retrying every invocation).
  struct Variant {
    enum class State { InFlight, Ready, Failed };
    State St = State::InFlight;
    /// The specialized clone; the engine memo keys on its address, so
    /// invocations pin it with a shared_ptr for the duration of a call
    /// (eviction can then never free a graph mid-invocation).
    std::shared_ptr<const sdfg::SDFG> Graph;
    std::uint64_t LastUse = 0; // LRU stamp (VarStamp ticks).
  };

  /// The set of invoke-time values that key a variant for invocation
  /// \p I: bound values for every specializable name. Empty when none
  /// are available (serve generic).
  std::map<std::string, std::int64_t>
  specializationEnv(const std::map<std::string, BufferView> &Bindings,
                    const std::map<std::string, std::int64_t> &Symbols) const;
  /// Resolves (or starts building) the variant for \p Env. Returns the
  /// pinned ready graph to invoke, or null to serve generic. With
  /// \p Blocking (Eager invocations and the specialize() warm-up) a miss
  /// builds on the calling thread and in-flight entries are waited out;
  /// without it (Lazy) a miss hands the build to a worker thread and
  /// returns null immediately. \p CompileSeconds receives the
  /// host-compiler time this call paid (blocking misses only).
  /// \p Sighting is the shape's invocation ordinal — a build only starts
  /// on the SpecializeAfter'th sighting (UINT_MAX, the specialize()
  /// warm-up, always builds).
  std::shared_ptr<const sdfg::SDFG>
  resolveVariant(const std::map<std::string, std::int64_t> &Env,
                 bool Blocking, double *CompileSeconds,
                 unsigned Sighting) const;
  /// The re-JIT itself: clone, substitute, re-optimize, validate,
  /// prepare; publishes Ready or Failed into the table and applies the
  /// LRU cap. Runs on the invoking thread (Eager) or a worker (Lazy).
  void buildVariant(const std::string &Key,
                    const std::map<std::string, std::int64_t> &Env,
                    double *CompileSeconds) const;

  /// Specializable names, computed once at create(): free symbols plus
  /// read-only non-transient I64 scalars. Immutable afterwards.
  std::vector<std::string> SpecNames;
  mutable std::mutex VarMu;
  mutable std::condition_variable VarCv;
  mutable std::map<std::string, Variant> Variants;
  mutable std::uint64_t VarStamp = 0;  // LRU clock.
  mutable unsigned VarCounter = 0;     // `<entry>__spec<n>` names.
  mutable std::vector<std::thread> SpecThreads; // Lazy workers; joined in dtor.
  /// Per-shape invocation ordinals, shared by the specializeAfter(N) gate
  /// and the tuner's measuring window. Guarded by VarMu.
  mutable std::map<std::string, unsigned> Sightings;

  //===--------------------------------------------------------------------===
  // Autotuner state machine (CompileOptions::Autotune; DESIGN.md,
  // "Autotuning")
  //===--------------------------------------------------------------------===

  /// One shape's tuning state. Guarded by VarMu; graph builds and sidecar
  /// IO run unlocked behind the Building flag (dispatches arriving
  /// meanwhile serve the generic artifact, uncounted).
  struct TuneState {
    TunePhase Ph = TunePhase::Off; // Off doubles as "not initialized".
    bool Building = false;     // A build/decide/IO step is running unlocked.
    unsigned Started = 0;      // Counted dispatches in the current phase.
    unsigned Done = 0;         // Counted completions in the current phase.
    std::vector<double> Samples; // Seconds per counted completion.
    double TunedNs = 0.0;        // Median of the AbTuned arm.
    std::shared_ptr<const sdfg::SDFG> MeasureGraph; // Profiled clone.
    std::shared_ptr<const sdfg::SDFG> TunedGraph;   // Scheduled clone.
    codegen::MapSchedules Schedules;                // The decision.
  };

  /// What tuneDispatch hands invoke(): which graph to run (null = the
  /// generic artifact) and the completion token tuneComplete needs.
  struct TuneDispatch {
    std::shared_ptr<const sdfg::SDFG> Graph;
    std::string Key;
    TunePhase Ph = TunePhase::Off; // Phase snapshot; Off = no tuning.
    bool Counted = false;          // Dispatch occupies a phase slot.
  };

  /// Advances the shape's state machine for one arriving invocation and
  /// picks the artifact to serve. First sighting of a shape consults the
  /// persisted sidecar (warm processes jump straight to Tuned/Generic,
  /// building the tuned artifact through the JIT cache — a disk hit, not
  /// a compile) and otherwise builds the profiled measuring clone,
  /// blocking like an Eager specialization miss.
  TuneDispatch tuneDispatch(const std::string &Key) const;
  /// Folds one completed invocation back into the machine; the completion
  /// that fills a phase window performs the transition (the measuring
  /// window's last completion reads the profile, decides schedules, and
  /// builds the tuned clone; the A/B's last completion promotes or
  /// reverts, persisting the outcome either way).
  void tuneComplete(const TuneDispatch &D, double Seconds) const;
  /// Clones the generic graph as `<entry><Suffix>`, registers \p GT with
  /// the engine, and prepares it. Null (with \p Why) on failure.
  std::shared_ptr<const sdfg::SDFG>
  buildTuneClone(const std::string &Suffix, const exec::GraphTuning &GT,
                 std::string *Why) const;
  /// `"__meas_"`/`"__tuned_"` + fnv64hex(Key) ("default" for the empty
  /// key) — deterministic, so warm processes regenerate byte-identical
  /// source and hit the JIT cache with zero compiler invocations.
  std::string tuneCloneSuffix(const char *Stem, const std::string &Key) const;
  /// Writes the shape's sidecar (no-op when persistence is disabled).
  void persistTuneRecord(const std::string &Key, bool TunedWins,
                         double BaselineNs, double TunedNs,
                         const codegen::MapSchedules &Schedules) const;

  mutable std::map<std::string, TuneState> TuneStates; // Guarded by VarMu.
  /// Resolved sidecar directory (Opts.TuneDir, else `<jit-cache-root>/
  /// tune`); empty when the program cannot persist.
  std::string TuneDir;

  /// Serving metrics. The hot-path counters/histograms are resolved once
  /// in create() and cached as raw pointers (registry entries are stable
  /// for its lifetime), so invoke() never pays a map lookup.
  mutable obs::MetricsRegistry Metrics;
  obs::Counter *CInvocations = nullptr;
  obs::Counter *CNative = nullptr;
  obs::Counter *CInterp = nullptr;
  obs::Counter *CFallbacks = nullptr;
  obs::Counter *CAsync = nullptr;
  obs::Counter *CSpecHits = nullptr;
  obs::Counter *CSpecMisses = nullptr;
  obs::Counter *CSpecFallbacks = nullptr;
  obs::Counter *CSpecEvictions = nullptr;
  obs::Counter *CTuneMeasuring = nullptr;
  obs::Counter *CTunePromoted = nullptr;
  obs::Counter *CTuneReverted = nullptr;
  obs::Histogram *HNative = nullptr;
  obs::Histogram *HInterp = nullptr;

  // invokeAsync's worker pool (lazily created; joined in the destructor).
  mutable std::mutex PoolMu;
  mutable std::condition_variable PoolCv;
  mutable std::deque<std::packaged_task<InvocationResult()>> PoolQueue;
  mutable std::vector<std::thread> PoolWorkers;
  mutable bool PoolStop = false;
};

} // namespace api
} // namespace dcir

#endif // DCIR_API_PROGRAM_H
