//===- Compiler.h - builder producing immutable Programs ----------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The entry point of the embedding API: a fluent builder over
/// pipeline::CompileOptions that owns the diagnostics policy and produces
/// immutable, shareable api::Programs.
///
///   auto Prog = api::Compiler()
///                   .engine(exec::EngineKind::Native)
///                   .compile(Source, "kernel_gemm");
///   if (!Prog) { log(compiler.diagnostics()); ... }
///
/// A Compiler instance is a plain value: cheap, reusable across compiles,
/// and intentionally *not* thread-safe (each thread builds its own — the
/// Programs it produces are the shareable objects).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_API_COMPILER_H
#define DCIR_API_COMPILER_H

#include "analysis/Analysis.h"
#include "api/Program.h"
#include "pipeline/PipelineTypes.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace dcir {
namespace api {

class Compiler {
public:
  //===--------------------------------------------------------------------===
  // Options (fluent; each returns *this)
  //===--------------------------------------------------------------------===

  /// Which of the five compared pipelines compiles the source (default:
  /// Dcir, the paper's bridge).
  Compiler &pipeline(pipeline::PipelineKind K) {
    Kind = K;
    return *this;
  }
  /// Execution backend programs created by this compiler will use.
  Compiler &engine(exec::EngineKind K) {
    Opts.Engine = K;
    return *this;
  }
  Compiler &parallelism(pipeline::ParallelismMode M) {
    Opts.Parallelism = M;
    return *this;
  }
  /// Worker threads for parallel maps (0 = OpenMP runtime default).
  Compiler &threads(int N) {
    Opts.NumThreads = N;
    return *this;
  }
  Compiler &optLevel(pipeline::OptLevel L) {
    Opts.Opt = L;
    return *this;
  }
  /// Tile sizes for the tile-maps cache-blocking pass (empty disables).
  Compiler &tileSizes(std::vector<unsigned> Sizes) {
    Opts.TileSizes = std::move(Sizes);
    return *this;
  }
  /// Explicit textual pass-pipeline spec (overrides optLevel).
  Compiler &passes(std::string Spec) {
    Opts.PassPipeline = std::move(Spec);
    return *this;
  }
  Compiler &verifyEachPass(bool V = true) {
    Opts.VerifyEachPass = V;
    return *this;
  }
  /// Per-map runtime profiling for native programs: wraps every emitted
  /// map scope with timing/trip-count instrumentation, read back via
  /// Program::mapProfile(). Forks the JIT cache key; zero overhead (and
  /// identical artifacts) when off.
  Compiler &profileMaps(bool P = true) {
    Opts.ProfileMaps = P;
    return *this;
  }
  /// Shape-specialized re-JIT policy for the produced Programs (native
  /// engine only). Off (default) serves the generic artifact always;
  /// Lazy re-JITs a constant-bound variant in the background on the
  /// first invocation of each new shape; Eager blocks that first
  /// invocation on the re-JIT. See DESIGN.md, "Shape specialization".
  Compiler &specialize(pipeline::SpecializeMode M) {
    Opts.Specialize = M;
    return *this;
  }
  /// Cap on live specialized variants per Program (least recently used
  /// beyond the cap is evicted; the generic artifact never is).
  Compiler &maxVariants(unsigned N) {
    Opts.MaxVariants = N;
    return *this;
  }
  /// Build the specialized variant on the Nth sighting of a shape rather
  /// than the first (N=1, the default, keeps today's first-sighting
  /// build). Earlier sightings serve the generic artifact. An explicit
  /// Program::specialize() warm-up builds regardless.
  Compiler &specializeAfter(unsigned N) {
    Opts.SpecializeAfter = N ? N : 1;
    return *this;
  }
  /// Measured-profitability autotuning for native programs (see
  /// DESIGN.md, "Autotuning"): measure per-map cost over the first
  /// tuneWindow() invocations per shape, re-JIT with per-map schedule
  /// decisions, A/B against the generic artifact, promote only winners,
  /// and persist them under tuneDir() for warm processes.
  Compiler &autotune(bool On = true) {
    Opts.Autotune = On;
    return *this;
  }
  /// Invocations per tuner phase (measure, then each A/B arm).
  Compiler &tuneWindow(unsigned K) {
    Opts.TuneWindow = K ? K : 1;
    return *this;
  }
  /// Sidecar directory for persisted tuning winners (empty derives
  /// `<jit-cache-root>/tune`).
  Compiler &tuneDir(std::string Dir) {
    Opts.TuneDir = std::move(Dir);
    return *this;
  }
  /// Promotion threshold: tuned wins when tuned < Ratio * generic
  /// (1.0 = strictly faster; tests pin extremes for determinism).
  Compiler &tunePromoteRatio(double Ratio) {
    Opts.TunePromoteRatio = Ratio;
    return *this;
  }
  /// Grain gates for the parallel-pragma decision (0 keeps the codegen
  /// defaults, 256 / 1<<16): the work a map must prove before it earns a
  /// work-sharing pragma, one-shot and in-loop respectively.
  Compiler &grain(unsigned MinWork, unsigned MinInLoopWork = 0) {
    Opts.MinParallelWork = MinWork;
    Opts.MinInLoopParallelWork = MinInLoopWork;
    return *this;
  }
  /// Post-optimization static soundness gate (src/analysis/): Warn
  /// reports findings as diagnostics; Error additionally demotes map
  /// scopes the race analysis cannot prove safe to a serial schedule and
  /// fails the compile on provable out-of-bounds accesses.
  /// $DCIR_STATIC_VERIFY (off|warn|error) overrides when set.
  Compiler &staticVerify(pipeline::StaticVerifyMode M) {
    Opts.StaticVerify = M;
    return *this;
  }
  /// Instrument every generated subscript with a runtime range assert
  /// (native engine; forks the JIT cache key). $DCIR_CHECK_BOUNDS=1
  /// enables it process-wide.
  Compiler &checkBounds(bool On = true) {
    Opts.CheckBounds = On;
    return *this;
  }
  /// Speculative loop-to-map conversion (the `speculate-maps` pass):
  /// loops the proving converter refuses are converted anyway, marked
  /// MapEntry::Speculative, and run parallel only behind a runtime guard
  /// synthesized under StaticVerifyMode::Guard (which implies this flag).
  /// The benches expose it as --speculate.
  Compiler &speculate(bool On = true) {
    Opts.Speculate = On;
    return *this;
  }
  /// Enables process-wide lifecycle tracing and writes the Chrome
  /// trace-event JSON to \p Path at process exit (equivalent to running
  /// with $DCIR_TRACE=Path). Affects the whole process, not just this
  /// Compiler — tracing is a global concern, like diagnostics to stderr.
  Compiler &traceFile(const std::string &Path);
  Compiler &maxFixpointRounds(unsigned N) {
    Opts.MaxFixpointRounds = N;
    return *this;
  }
  /// Bulk form: adopt a prebuilt options struct (the bench harness path).
  Compiler &options(const pipeline::CompileOptions &O) {
    Opts = O;
    return *this;
  }
  /// Diagnostics policy: also echo compile diagnostics to stderr as they
  /// are produced (default: collect only; read them via diagnostics()).
  Compiler &echoDiagnostics(bool Echo = true) {
    Echo_ = Echo;
    return *this;
  }

  const pipeline::CompileOptions &compileOptions() const { return Opts; }
  pipeline::PipelineKind pipelineKind() const { return Kind; }

  //===--------------------------------------------------------------------===
  // Compilation
  //===--------------------------------------------------------------------===

  /// Compiles \p CSource's function \p Entry into an immutable Program.
  /// Null on failure — diagnostics() explains. For native-engine
  /// programs the JIT preparation also happens here (compile once,
  /// invoke many), and a *preparation* failure is non-fatal: the program
  /// is returned, serves from the interpreter, and counts fallbacks.
  std::shared_ptr<const Program> compile(const std::string &CSource,
                                         const std::string &Entry);

  /// Diagnostics accumulated by the most recent compile() call.
  const std::string &diagnostics() const { return Diags; }

private:
  pipeline::PipelineKind Kind = pipeline::PipelineKind::Dcir;
  pipeline::CompileOptions Opts;
  bool Echo_ = false;
  std::string Diags;
};

namespace detail {

/// Raw compilation artifacts, before Program packaging. This is the one
/// implementation of the C -> MLIR -> (sdfg dialect) -> SDFG -> optimizer
/// flow; both api::Compiler and the pipeline::compile shim consume it.
struct CompiledParts {
  std::shared_ptr<ir::IRContext> Ctx;
  ir::Operation *Module = nullptr; // Owned by the receiver.
  std::unique_ptr<sdfg::SDFG> Graph;
  sdfgopt::OptReport Report;
  /// Static-verify gate outcome (empty when the gate did not run).
  analysis::AnalysisResult Verify;
  /// Serial demotions the Error gate decided (keyed by map scope label);
  /// Program::create registers them with the engine before preparation.
  codegen::MapSchedules VerifyDemotions;
  /// Runtime guards the Guard gate synthesized (keyed by map scope
  /// label); Program::create registers them alongside the demotions so
  /// the JIT multi-versions the guarded scopes.
  codegen::SpeculativeMaps Speculation;
};

/// Compiles \p CSource's \p Entry through pipeline \p Kind. On failure
/// both Module and Graph are null and \p Diags explains.
CompiledParts compileParts(const std::string &CSource,
                           const std::string &Entry,
                           pipeline::PipelineKind Kind,
                           DiagnosticEngine &Diags,
                           const pipeline::CompileOptions &Opts);

/// Runs the configured data-centric pass pipeline (the -O level or an
/// explicit --passes= spec) over \p G. This is the same optimizer
/// invocation compileParts applies to a freshly translated graph;
/// Program's shape-specialization re-JIT reuses it to re-optimize a
/// symbol-substituted clone under identical options. Returns false when
/// the pass spec is malformed or verify-after-each failed.
bool optimizeGraph(sdfg::SDFG &G, const pipeline::CompileOptions &Opts,
                   sdfgopt::OptReport &Report, DiagnosticEngine &Diags);

/// The gate mode actually in effect: Opts.StaticVerify unless
/// $DCIR_STATIC_VERIFY is set and parses, which overrides either way
/// (process-wide verification without touching call sites).
pipeline::StaticVerifyMode
effectiveStaticVerify(const pipeline::CompileOptions &Opts);

/// Runs the static soundness analyzer over the optimized \p G and applies
/// the gate policy for \p Mode (see StaticVerifyMode): fills \p Out with
/// the findings, reports them as diagnostics, and on Error fills
/// \p Demotions with serial schedules for every unproven map scope.
/// Under Guard, scopes whose synthesized guard covers every failure
/// reason land in \p Speculation (converted to codegen's guard
/// vocabulary) instead of \p Demotions — they keep their parallel
/// emission behind the runtime check. Returns false only when
/// compilation must fail (Error or Guard mode, provable out-of-bounds
/// access). Wraps the work in an obs span `verify:<entry>`.
bool applyStaticVerify(const sdfg::SDFG &G, const std::string &Entry,
                       pipeline::StaticVerifyMode Mode,
                       DiagnosticEngine &Diags, analysis::AnalysisResult &Out,
                       codegen::MapSchedules &Demotions,
                       codegen::SpeculativeMaps &Speculation);

} // namespace detail

} // namespace api
} // namespace dcir

#endif // DCIR_API_COMPILER_H
