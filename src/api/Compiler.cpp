//===- Compiler.cpp - the one compilation flow behind both APIs ---------------===//

#include "api/Compiler.h"

#include "analysis/Analysis.h"
#include "conversion/CToSdfgDirect.h"
#include "conversion/ConvertToSdfg.h"
#include "conversion/TranslateToSDFG.h"
#include "dialects/Dialects.h"
#include "frontend/CCodegen.h"
#include "frontend/CParser.h"
#include "ir/Verifier.h"
#include "obs/Trace.h"
#include "passes/Pass.h"
#include "tune/Autotuner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>

using namespace dcir;
using namespace dcir::api;
using pipeline::CompileOptions;
using pipeline::PipelineKind;

namespace {

/// The strong general-purpose -O2 (GCC/Clang stand-ins).
void addStrongPasses(passes::PassManager &PM, bool ExtraRound) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  for (int I = 0; I < (ExtraRound ? 3 : 2); ++I) {
    PM.addPass(createCanonicalizePass());
    PM.addPass(createCSEPass());
    PM.addPass(createLICMPass());
    PM.addPass(createScalarReplacementPass());
    PM.addPass(createCSEPass());
    PM.addPass(createLoopFusionPass());
    PM.addPass(createDCEPass());
  }
}

/// The paper's control-centric set for the Polygeist+MLIR pipeline (§4):
/// LICM, CSE, DCE, inlining — no store forwarding, no fusion.
void addMlirPasses(passes::PassManager &PM) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  PM.addPass(createCanonicalizePass());
  PM.addPass(createCSEPass());
  PM.addPass(createLICMPass());
  PM.addPass(createDCEPass());
}

/// DCIR's MLIR-side passes (paper Fig. 4, blue): LICM, CSE & DCE &
/// inlining, scalar replacement, then lowering into the sdfg dialect.
void addDcirMlirPasses(passes::PassManager &PM) {
  using namespace passes;
  PM.addPass(createInlinerPass());
  for (int I = 0; I < 2; ++I) {
    PM.addPass(createCanonicalizePass());
    PM.addPass(createCSEPass());
    PM.addPass(createLICMPass());
    PM.addPass(createScalarReplacementPass());
    PM.addPass(createCSEPass());
    PM.addPass(createDCEPass());
  }
}

} // namespace

bool dcir::api::detail::optimizeGraph(sdfg::SDFG &G,
                                      const CompileOptions &Opts,
                                      sdfgopt::OptReport &Report,
                                      DiagnosticEngine &Diags) {
  sdfgopt::PipelineOptions POpts;
  POpts.Diags = &Diags;
  POpts.VerifyEachPass = Opts.VerifyEachPass;
  POpts.MaxFixpointRounds = Opts.MaxFixpointRounds;
  sdfgopt::TilingOptions Tiling;
  Tiling.TileSizes = Opts.TileSizes;
  std::unique_ptr<opt::PipelineDriver<sdfg::SDFG>> P;
  if (!Opts.PassPipeline.empty()) {
    opt::PassRegistry<sdfg::SDFG> Reg = sdfgopt::passRegistry(
        &Report, Opts.Parallelism != pipeline::ParallelismMode::Off, Tiling);
    P = opt::parsePipelineSpec(Opts.PassPipeline, Reg, Diags);
    if (!P)
      return false;
  } else {
    switch (Opts.Opt) {
    case pipeline::OptLevel::O0:
      return true;
    case pipeline::OptLevel::O1:
      P = sdfgopt::buildSimplifyPipeline(&Report);
      break;
    case pipeline::OptLevel::O2:
      P = sdfgopt::buildAutoOptimizePipeline(
          &Report, Opts.Parallelism != pipeline::ParallelismMode::Off,
          Tiling);
      break;
    }
  }
  if (!sdfgopt::runPipeline(G, *P, Report, POpts))
    return false;
  // Speculative conversion runs *after* the proving pipeline: any loop
  // still sequential at this point is one the proving converter refused,
  // so converting it here (marked MapEntry::Speculative) adds exactly
  // the unproven scopes. They only run parallel behind a synthesized
  // guard — the Guard verify mode — or stay serial, so this is safe to
  // do whenever speculation is requested.
  if ((Opts.Speculate ||
       effectiveStaticVerify(Opts) == pipeline::StaticVerifyMode::Guard) &&
      Opts.Parallelism != pipeline::ParallelismMode::Off) {
    for (unsigned I = 0;
         I < 16 && sdfgopt::convertLoopsToMapsSpeculativeOnce(G, &Report);
         ++I)
      ;
  }
  return true;
}

pipeline::StaticVerifyMode
dcir::api::detail::effectiveStaticVerify(const CompileOptions &Opts) {
  if (const char *Env = std::getenv("DCIR_STATIC_VERIFY"))
    if (auto M = pipeline::parseStaticVerifyModeName(Env))
      return *M;
  return Opts.StaticVerify;
}

bool dcir::api::detail::applyStaticVerify(const sdfg::SDFG &G,
                                          const std::string &Entry,
                                          pipeline::StaticVerifyMode Mode,
                                          DiagnosticEngine &Diags,
                                          analysis::AnalysisResult &Out,
                                          codegen::MapSchedules &Demotions,
                                          codegen::SpeculativeMaps &Speculation) {
  if (Mode == pipeline::StaticVerifyMode::Off)
    return true;
  obs::Span S("verify:" + Entry, "compile");
  Out = analysis::analyze(G);
  for (const analysis::Finding &F : Out.Findings) {
    std::string Msg = std::string("[static-verify/") +
                      analysis::kindName(F.K) + "] " + F.Message;
    if (F.Sev == analysis::Severity::Error &&
        Mode == pipeline::StaticVerifyMode::Error)
      Diags.error(std::move(Msg));
    else
      Diags.warning(SourceLoc(), std::move(Msg));
  }
  if (Mode != pipeline::StaticVerifyMode::Error &&
      Mode != pipeline::StaticVerifyMode::Guard)
    return true;
  // A provable out-of-bounds access cannot be repaired by scheduling; the
  // only sound gate outcome is to refuse the artifact.
  if (Out.hasProvenOob())
    return false;
  if (Mode == pipeline::StaticVerifyMode::Error) {
    // Every map scope the race analysis could not prove safe loses its
    // parallel schedule: a serial map is the original loop nest, so the
    // demotion is always semantics-preserving. Speculative scopes are
    // unproven by construction (their guards are ignored under Error) —
    // this is the serialized baseline Guard mode is measured against.
    for (const std::string &Label : Out.UnprovenMaps)
      Demotions[Label] = codegen::MapSchedule{
          codegen::MapSchedulePolicy::Serial, /*Tile=*/0};
    for (const analysis::Guard &Gd : Out.Guards)
      if (Gd.Speculative)
        Demotions[Gd.Map] = codegen::MapSchedule{
            codegen::MapSchedulePolicy::Serial, /*Tile=*/0};
    return true;
  }
  // Guard mode: scopes whose synthesized guard covers every failure
  // reason keep their parallel emission behind the runtime guard; only
  // guard-less scopes are demoted. verify.demotions therefore shrinks to
  // exactly the unguardable set.
  obs::Span GS("guard:" + Entry, "compile");
  std::set<std::string> Guarded;
  for (const analysis::Guard &Gd : Out.Guards) {
    if (!Gd.Covered)
      continue;
    Guarded.insert(Gd.Map);
    // Convert to codegen's guard vocabulary (a 1:1 field mapping —
    // codegen mirrors the analysis types rather than including them, so
    // the emitter never links against its own checker).
    codegen::SpeculationGuard &SG = Speculation[Gd.Map];
    SG.Terms.clear();
    for (const analysis::GuardTerm &T : Gd.Terms) {
      codegen::SpecGuardTerm CT;
      switch (T.K) {
      case analysis::GuardTermKind::SymCond:
        CT.K = codegen::SpecGuardKind::SymCond;
        break;
      case analysis::GuardTermKind::PtrDisjoint:
        CT.K = codegen::SpecGuardKind::PtrDisjoint;
        break;
      case analysis::GuardTermKind::Inspector:
        CT.K = codegen::SpecGuardKind::Inspector;
        break;
      }
      CT.Cond = T.Cond;
      CT.A = T.A;
      CT.B = T.B;
      CT.Index = T.Index;
      CT.IndexExpr = T.IndexExpr;
      CT.Param = T.Param;
      CT.Target = T.Target;
      SG.Terms.push_back(std::move(CT));
    }
  }
  for (const std::string &Label : Out.UnprovenMaps)
    if (!Guarded.count(Label))
      Demotions[Label] = codegen::MapSchedule{
          codegen::MapSchedulePolicy::Serial, /*Tile=*/0};
  for (const analysis::Guard &Gd : Out.Guards)
    if (Gd.Speculative && !Gd.Covered)
      Demotions[Gd.Map] = codegen::MapSchedule{
          codegen::MapSchedulePolicy::Serial, /*Tile=*/0};
  return true;
}

namespace {

/// Runs the static-verify gate over a finished SDFG, recording its
/// wall-time (with the findings count as the "rewrites" column) as a
/// synthetic "static-verify" entry in the pipeline report — so
/// --pass-report-json captures verification cost alongside the optimizer
/// passes. Resets the graph when the Error gate refuses the artifact.
void gateGraph(api::detail::CompiledParts &Out, const std::string &Entry,
               const CompileOptions &Opts, DiagnosticEngine &Diags) {
  if (!Out.Graph)
    return;
  pipeline::StaticVerifyMode Mode = api::detail::effectiveStaticVerify(Opts);
  if (Mode == pipeline::StaticVerifyMode::Off)
    return;
  auto T0 = std::chrono::steady_clock::now();
  bool Ok =
      api::detail::applyStaticVerify(*Out.Graph, Entry, Mode, Diags,
                                     Out.Verify, Out.VerifyDemotions,
                                     Out.Speculation);
  opt::PassStats &VS = Out.Report.Passes.statsFor("static-verify");
  VS.Invocations += 1;
  VS.Rewrites += static_cast<unsigned>(Out.Verify.Findings.size());
  VS.Seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (!Ok)
    Out.Graph.reset();
}

} // namespace

detail::CompiledParts
dcir::api::detail::compileParts(const std::string &CSource,
                                const std::string &Entry, PipelineKind Kind,
                                DiagnosticEngine &Diags,
                                const CompileOptions &Opts) {
  CompiledParts Out;
  obs::Span CompileSpan("compile:" + Entry, "compile");
  if (Kind == PipelineKind::DaceLike) {
    std::unique_ptr<frontend::TranslationUnit> TU;
    {
      obs::Span S("frontend.parse", "compile");
      TU = frontend::parseC(CSource, Diags);
    }
    if (!TU)
      return Out;
    {
      obs::Span S("translate.sdfg", "compile");
      Out.Graph = conversion::translateCDirect(*TU, Entry, Diags);
    }
    if (!Out.Graph)
      return Out;
    {
      obs::Span S("optimize.sdfg", "compile");
      if (!optimizeGraph(*Out.Graph, Opts, Out.Report, Diags) ||
          !Out.Graph->validate(Diags))
        Out.Graph.reset();
    }
    if (Out.Graph &&
        !applyStaticVerify(*Out.Graph, Entry, effectiveStaticVerify(Opts),
                           Diags, Out.Verify, Out.VerifyDemotions,
                           Out.Speculation))
      Out.Graph.reset();
    return Out;
  }

  Out.Ctx = std::make_shared<ir::IRContext>();
  registerAllDialects(*Out.Ctx);
  ir::Operation *Module;
  {
    obs::Span S("frontend.parse", "compile");
    Module = frontend::compileCToModule(CSource, *Out.Ctx, Diags);
  }
  if (!Module)
    return Out;
  passes::PassManager PM(/*VerifyEach=*/false);
  switch (Kind) {
  case PipelineKind::GccLike:
    addStrongPasses(PM, /*ExtraRound=*/false);
    break;
  case PipelineKind::ClangLike:
    addStrongPasses(PM, /*ExtraRound=*/true);
    break;
  case PipelineKind::MlirLike:
    addMlirPasses(PM);
    break;
  case PipelineKind::Dcir:
    addDcirMlirPasses(PM);
    break;
  case PipelineKind::DaceLike:
    break;
  }
  {
    obs::Span S("passes.mlir", "compile");
    if (!PM.run(Module, Diags) || !ir::verify(Module, Diags)) {
      ir::Operation::eraseDetached(Module);
      return Out;
    }
  }

  if (Kind != PipelineKind::Dcir) {
    Out.Module = Module;
    return Out;
  }

  // DCIR: convert to the sdfg dialect, translate, run -O1/-O2.
  ir::Operation *SdfgModule;
  {
    obs::Span S("convert.sdfg-dialect", "compile");
    SdfgModule = conversion::convertToSdfgDialect(Module, Diags);
  }
  ir::Operation::eraseDetached(Module);
  if (!SdfgModule)
    return Out;
  if (!ir::verify(SdfgModule, Diags)) {
    ir::Operation::eraseDetached(SdfgModule);
    return Out;
  }
  {
    obs::Span S("translate.sdfg", "compile");
    Out.Graph = conversion::translateToSDFG(SdfgModule, Entry, Diags);
  }
  ir::Operation::eraseDetached(SdfgModule);
  if (!Out.Graph)
    return Out;
  {
    obs::Span S("optimize.sdfg", "compile");
    if (!optimizeGraph(*Out.Graph, Opts, Out.Report, Diags) ||
        !Out.Graph->validate(Diags))
      Out.Graph.reset();
  }
  gateGraph(Out, Entry, Opts, Diags);
  return Out;
}

Compiler &Compiler::traceFile(const std::string &Path) {
  obs::Tracer::instance().enableToFile(Path);
  return *this;
}

std::shared_ptr<const Program>
Compiler::compile(const std::string &CSource, const std::string &Entry) {
  DiagnosticEngine D;
  detail::CompiledParts Parts =
      detail::compileParts(CSource, Entry, Kind, D, Opts);
  Diags = D.str();
  if (Echo_ && !Diags.empty())
    std::fprintf(stderr, "%s", Diags.c_str());
  if (!Parts.Module && !Parts.Graph)
    return nullptr;

  Program::Parts P;
  P.Kind = Kind;
  P.Opts = Opts;
  // The program records the mode that actually gated it ($DCIR_STATIC_VERIFY
  // included), so introspection never disagrees with what ran.
  P.Opts.StaticVerify = detail::effectiveStaticVerify(Opts);
  P.Entry = Entry;
  P.Ctx = std::move(Parts.Ctx);
  P.Module = Parts.Module;
  P.OwnsModule = true;
  P.Graph = std::shared_ptr<const sdfg::SDFG>(std::move(Parts.Graph));
  P.Report = Parts.Report;
  P.Verify = std::move(Parts.Verify);
  P.VerifyDemotions = std::move(Parts.VerifyDemotions);
  P.Speculation = std::move(Parts.Speculation);
  // The autotuner's persistence key: the source text, the entry, and
  // every option that changes the optimized graph (pipeline, passes,
  // tiling, grain gates). Parallelism and thread count are serving-side
  // and excluded — a winner tuned at 8 threads still beats re-measuring
  // from scratch at 4.
  std::string Id = CSource + "\n#" + Entry + "\n#" +
                   std::to_string(static_cast<int>(Kind)) + ":" +
                   std::to_string(static_cast<int>(Opts.Opt)) + ":" +
                   Opts.PassPipeline + ":";
  for (unsigned T : Opts.TileSizes)
    Id += std::to_string(T) + ",";
  Id += ":" + std::to_string(Opts.MinParallelWork) + ":" +
        std::to_string(Opts.MinInLoopParallelWork) + ":" +
        std::to_string(static_cast<int>(detail::effectiveStaticVerify(Opts))) +
        ":" + std::to_string(Opts.CheckBounds ? 1 : 0) + ":" +
        std::to_string(Opts.Speculate ? 1 : 0);
  P.SourceKey = tune::fnv64Hex(Id);
  return Program::create(std::move(P));
}
