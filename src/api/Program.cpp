//===- Program.cpp - immutable programs, per-call invocations -----------------===//

#include "api/Program.h"

#include "ir/IR.h"
#include "obs/Trace.h"
#include "sdfg/TaskletExpr.h"

#include <algorithm>
#include <cstdio>

using namespace dcir;
using namespace dcir::api;

//===----------------------------------------------------------------------===//
// Invocation: bind-time validation
//===----------------------------------------------------------------------===//

namespace {

/// Expected element count of \p D under \p Symbols, or nullopt while any
/// dimension stays symbolic (checked again at run time, when the symbol
/// environment is final).
std::optional<std::size_t>
concreteElements(const sdfg::DataDesc &D,
                 const std::map<std::string, std::int64_t> &Symbols) {
  std::size_t N = 1;
  for (const sym::SymExpr &Dim : D.Shape) {
    auto V = Dim.evaluate(Symbols);
    if (!V)
      return std::nullopt;
    N *= static_cast<std::size_t>(std::max<std::int64_t>(*V, 0));
  }
  return N;
}

std::string bindableList(const sdfg::SDFG &G) {
  std::string Out;
  for (const std::string &Arg : G.args()) {
    if (!Out.empty())
      Out += ", ";
    Out += Arg;
  }
  return Out.empty() ? std::string("(none)") : Out;
}

InvocationResult failResult(std::string Error) {
  InvocationResult R;
  R.Error = std::move(Error);
  return R;
}

} // namespace

bool Invocation::bind(const std::string &Container, const BufferView &View) {
  auto Reject = [&](std::string Msg) {
    if (BindError.empty())
      BindError = std::move(Msg);
    return false;
  };
  if (!Prog)
    return Reject("cannot bind container '" + Container +
                  "': invocation is not attached to a program");
  const sdfg::SDFG *G = Prog->graph();
  if (!G)
    return Reject("cannot bind container '" + Container +
                  "': program '" + Prog->entry() +
                  "' is a dialect-module artifact with no bindable "
                  "containers");
  if (!G->hasData(Container))
    return Reject("no container named '" + Container + "' in program '" +
                  G->getName() +
                  "'; bindable containers: " + bindableList(*G));
  const sdfg::DataDesc &D = G->desc(Container);
  if (D.Transient)
    return Reject("container '" + Container +
                  "' is transient (program-managed); only the program's "
                  "inputs/outputs can be bound: " + bindableList(*G));
  if (!View.Ptr && View.Len > 0)
    return Reject("binding for container '" + Container +
                  "' is a null pointer with non-zero length");
  if (concreteElements(D, Symbols)) {
    // Shape fully known now: apply the engines' own type/size check.
    if (std::string Err =
            exec::detail::validateView(View, D, Container, Symbols);
        !Err.empty())
      return Reject(std::move(Err));
  } else if (View.Ty != D.Ty) {
    // Symbolic shape: the size is re-checked at run(); the type can't be.
    return Reject("binding for container '" + Container + "' has type " +
                  sdfg::dtypeName(View.Ty) + " but the container is " +
                  sdfg::dtypeName(D.Ty));
  }
  Bindings[Container] = View;
  return true;
}

InvocationResult Invocation::run() const {
  if (!Prog)
    return failResult(!BindError.empty()
                          ? BindError
                          : std::string("invocation is not attached to a "
                                        "program"));
  return Prog->invoke(*this);
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

std::shared_ptr<const Program> Program::create(Parts InParts) {
  std::shared_ptr<Program> Prog(new Program());
  Prog->P = std::move(InParts);
  // Hot-path metric handles, resolved once (registry entries are stable).
  Prog->CInvocations = &Prog->Metrics.counter("invocations");
  Prog->CNative = &Prog->Metrics.counter("invocations.native");
  Prog->CInterp = &Prog->Metrics.counter("invocations.interp");
  Prog->CFallbacks = &Prog->Metrics.counter("invocations.fallback");
  Prog->CAsync = &Prog->Metrics.counter("invocations.async");
  Prog->HNative = &Prog->Metrics.histogram("latency.native");
  Prog->HInterp = &Prog->Metrics.histogram("latency.interp");
  if (Prog->P.Graph && Prog->P.Engine == exec::EngineKind::Native) {
    std::unique_ptr<exec::ExecutionEngine> Native =
        exec::createEngine(exec::EngineKind::Native);
    exec::EngineConfig Config;
    Config.ParallelMaps =
        Prog->P.Parallelism != pipeline::ParallelismMode::Off;
    Config.NumThreads = Prog->P.NumThreads;
    Config.ProfileMaps = Prog->P.ProfileMaps;
    Native->configure(Config);
    std::string Error;
    double Seconds = 0.0;
    if (Native->prepareGraph(*Prog->P.Graph, Error, &Seconds)) {
      Prog->Native = std::move(Native);
      Prog->NativeCompileSeconds = Seconds;
    } else {
      // Non-fatal: the program serves from the interpreter, every
      // invocation counts as a fallback, and the reason is queryable.
      Prog->PrepareError = Error;
      std::fprintf(stderr,
                   "api: native preparation failed for '%s'; program "
                   "serves from the interpreter:\n%s\n",
                   Prog->P.Entry.c_str(), Error.c_str());
    }
  }
  return Prog;
}

Program::~Program() {
  {
    std::lock_guard<std::mutex> Lock(PoolMu);
    PoolStop = true;
  }
  PoolCv.notify_all();
  for (std::thread &W : PoolWorkers)
    W.join();
  if (P.Module && P.OwnsModule)
    ir::Operation::eraseDetached(P.Module);
}

std::vector<ContainerInfo> Program::containers() const {
  std::vector<ContainerInfo> Out;
  if (!P.Graph)
    return Out;
  for (const auto &[Name, D] : P.Graph->descs()) {
    ContainerInfo Info;
    Info.Name = Name;
    Info.Type = D.Ty;
    Info.Transient = D.Transient;
    Info.Elements = exec::detail::containerElements(D, {});
    Out.push_back(std::move(Info));
  }
  return Out;
}

ProgramStats Program::stats() const {
  ProgramStats S;
  S.Invocations = CInvocations->value();
  S.NativeInvocations = CNative->value();
  S.InterpInvocations = CInterp->value();
  S.EngineFallbacks = CFallbacks->value();
  S.AsyncInvocations = CAsync->value();
  return S;
}

std::vector<obs::MapProfile> Program::mapProfile() const {
  if (!Native || !P.Graph)
    return {};
  return Native->mapProfile(*P.Graph);
}

std::string Program::validateBindings(const Invocation &I) const {
  if (I.bindings().empty())
    return std::string();
  // Bind-all-or-nothing: a partially bound invocation is almost always a
  // bug (the unbound outputs would land in invisible scratch), so every
  // non-transient container must be bound. `__return` is exempt — the
  // result already carries it.
  for (const std::string &Arg : P.Graph->args()) {
    if (Arg == "__return" || I.bindings().count(Arg))
      continue;
    return "missing required binding for container '" + Arg +
           "': an invocation that binds any buffer must bind every "
           "non-transient container (bindable: " +
           bindableList(*P.Graph) + ")";
  }
  // Type/size once more, now under the final symbol environment (bind()
  // can only check shapes that were concrete at bind time) — the same
  // check the engines apply.
  for (const auto &[Name, View] : I.bindings())
    if (std::string Err = exec::detail::validateView(
            View, P.Graph->desc(Name), Name, I.symbols());
        !Err.empty())
      return Err;
  return std::string();
}

InvocationResult Program::invoke(const Invocation &I) const {
  if (!I.error().empty())
    return failResult(I.error());
  if (I.program() && I.program().get() != this)
    return failResult("invocation was created for program '" +
                      I.program()->entry() + "', not '" + P.Entry + "'");

  obs::Span InvokeSpan("invoke:" + P.Entry, "serve");
  InvocationResult R;
  if (P.Module) {
    if (!I.bindings().empty())
      return failResult("program '" + P.Entry +
                        "' is a dialect-module artifact with no bindable "
                        "containers");
    exec::EngineRun E = Interp.runModule(P.Module, P.Entry, I.mathMode());
    CInvocations->inc();
    CInterp->inc();
    if (E.Ok)
      HInterp->recordSeconds(E.Seconds);
    R.Ok = E.Ok;
    R.Error = std::move(E.Error);
    R.ReturnValue = E.ReturnValue;
    R.Stats = E.Stats;
    R.Seconds = E.Seconds;
    R.EngineUsed = exec::EngineKind::Interp;
    return R;
  }
  if (!P.Graph)
    return failResult("empty program (compilation failed?)");

  if (std::string Err = validateBindings(I); !Err.empty())
    return failResult(std::move(Err));

  exec::InvocationRequest Req;
  Req.Bindings = &I.bindings();
  Req.Symbols = I.symbols();
  Req.Mode = I.mathMode();
  Req.NumThreads = I.numThreads() > 0 ? I.numThreads() : P.NumThreads;
  Req.SnapshotOutputs = I.capturesOutputs();

  exec::EngineRun E;
  exec::EngineKind Used = exec::EngineKind::Interp;
  bool NativeFailed = false;
  if (Native) {
    E = Native->invokeGraph(*P.Graph, Req);
    if (E.Ok) {
      Used = exec::EngineKind::Native;
    } else {
      NativeFailed = true;
      std::fprintf(stderr,
                   "api: native invocation of '%s' failed, falling back "
                   "to the interpreter:\n%s\n",
                   P.Entry.c_str(), E.Error.c_str());
    }
  }
  if (Used != exec::EngineKind::Native) {
    if (P.Engine == exec::EngineKind::Native)
      CFallbacks->inc();
    (void)NativeFailed;
    E = Interp.invokeGraph(*P.Graph, Req);
  }

  CInvocations->inc();
  (Used == exec::EngineKind::Native ? CNative : CInterp)->inc();
  if (E.Ok)
    (Used == exec::EngineKind::Native ? HNative : HInterp)
        ->recordSeconds(E.Seconds);

  R.Ok = E.Ok;
  R.Error = std::move(E.Error);
  R.ReturnValue = E.ReturnValue;
  R.Stats = E.Stats;
  R.Seconds = E.Seconds;
  R.CompileSeconds = E.CompileSeconds;
  R.EngineUsed = Used;
  R.OutputCopies = E.OutputCopies;
  R.Outputs = std::move(E.Outputs);
  // The JIT cost is paid at Program creation; the first successful native
  // invocation reports it (the legacy warmup contract benches rely on).
  if (Used == exec::EngineKind::Native && R.Ok &&
      !CompileSecondsClaimed.exchange(true, std::memory_order_relaxed))
    R.CompileSeconds += NativeCompileSeconds;
  return R;
}

std::future<InvocationResult> Program::invokeAsync(Invocation I) const {
  // The stored invocation must not hold a reference back to this program:
  // a queued self-reference would keep the program alive through its own
  // queue, and the last release could then happen on a worker thread,
  // whose destructor would join itself. The caller keeps the program
  // alive instead (destroying it cancels queued invocations — their
  // futures report broken_promise).
  I.Prog.reset();
  std::packaged_task<InvocationResult()> Task(
      [this, Inv = std::move(I), Enq = obs::nowNs()]() {
        // The queue wait happened between enqueue (producer thread) and
        // now (worker thread) — record it as a complete interval.
        if (obs::Tracer::instance().enabled())
          obs::Tracer::instance().completeSpan("queue-wait:" + P.Entry,
                                               "serve", Enq, obs::nowNs());
        return invoke(Inv);
      });
  std::future<InvocationResult> Fut = Task.get_future();
  {
    std::lock_guard<std::mutex> Lock(PoolMu);
    if (PoolWorkers.empty()) {
      unsigned N = std::thread::hardware_concurrency();
      N = std::max(1u, std::min(N, 4u));
      for (unsigned W = 0; W < N; ++W)
        PoolWorkers.emplace_back([this] {
          for (;;) {
            std::packaged_task<InvocationResult()> Job;
            {
              std::unique_lock<std::mutex> WLock(PoolMu);
              PoolCv.wait(WLock,
                          [this] { return PoolStop || !PoolQueue.empty(); });
              // Stop wins over a non-empty queue: queued-but-unstarted
              // invocations are cancelled (their packaged_tasks die with
              // the deque, so the futures report broken_promise) — the
              // documented destruction contract.
              if (PoolStop)
                return;
              Job = std::move(PoolQueue.front());
              PoolQueue.pop_front();
            }
            Job();
          }
        });
    }
    PoolQueue.push_back(std::move(Task));
  }
  CAsync->inc();
  PoolCv.notify_one();
  return Fut;
}
