//===- Program.cpp - immutable programs, per-call invocations -----------------===//

#include "api/Program.h"

#include "api/Compiler.h"
#include "codegen/CppCodegen.h"
#include "ir/IR.h"
#include "obs/Trace.h"
#include "sdfg/TaskletExpr.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstdio>

using namespace dcir;
using namespace dcir::api;

//===----------------------------------------------------------------------===//
// Invocation: bind-time validation
//===----------------------------------------------------------------------===//

namespace {

/// Expected element count of \p D under \p Symbols, or nullopt while any
/// dimension stays symbolic (checked again at run time, when the symbol
/// environment is final).
std::optional<std::size_t>
concreteElements(const sdfg::DataDesc &D,
                 const std::map<std::string, std::int64_t> &Symbols) {
  std::size_t N = 1;
  for (const sym::SymExpr &Dim : D.Shape) {
    auto V = Dim.evaluate(Symbols);
    if (!V)
      return std::nullopt;
    N *= static_cast<std::size_t>(std::max<std::int64_t>(*V, 0));
  }
  return N;
}

std::string bindableList(const sdfg::SDFG &G) {
  std::string Out;
  for (const std::string &Arg : G.args()) {
    if (!Out.empty())
      Out += ", ";
    Out += Arg;
  }
  return Out.empty() ? std::string("(none)") : Out;
}

InvocationResult failResult(std::string Error) {
  InvocationResult R;
  R.Error = std::move(Error);
  return R;
}

/// True when any dataflow edge writes into container \p Name (its access
/// node appears as an edge destination). Written scalars cannot key a
/// specialized variant: the constant baked into the artifact could
/// diverge from the live value mid-run.
bool containerIsWritten(const sdfg::SDFG &G, const std::string &Name) {
  for (const auto &St : G.states())
    for (const sdfg::DataflowEdge &E : St->edges()) {
      if (const auto *A = dyn_cast<sdfg::AccessNode>(St->getNode(E.Dst)))
        if (A->getData() == Name)
          return true;
    }
  return false;
}

/// The canonical "name=value,..." variant key (Env is sorted already).
std::string variantKey(const std::map<std::string, std::int64_t> &Env) {
  std::string Key;
  for (const auto &[Name, Value] : Env) {
    if (!Key.empty())
      Key += ',';
    Key += Name + "=" + std::to_string(Value);
  }
  return Key;
}

} // namespace

bool Invocation::bind(const std::string &Container, const BufferView &View) {
  auto Reject = [&](std::string Msg) {
    if (BindError.empty())
      BindError = std::move(Msg);
    return false;
  };
  if (!Prog)
    return Reject("cannot bind container '" + Container +
                  "': invocation is not attached to a program");
  const sdfg::SDFG *G = Prog->graph();
  if (!G)
    return Reject("cannot bind container '" + Container +
                  "': program '" + Prog->entry() +
                  "' is a dialect-module artifact with no bindable "
                  "containers");
  if (!G->hasData(Container))
    return Reject("no container named '" + Container + "' in program '" +
                  G->getName() +
                  "'; bindable containers: " + bindableList(*G));
  const sdfg::DataDesc &D = G->desc(Container);
  if (D.Transient)
    return Reject("container '" + Container +
                  "' is transient (program-managed); only the program's "
                  "inputs/outputs can be bound: " + bindableList(*G));
  if (!View.Ptr && View.Len > 0)
    return Reject("binding for container '" + Container +
                  "' is a null pointer with non-zero length");
  if (concreteElements(D, Symbols)) {
    // Shape fully known now: apply the engines' own type/size check.
    if (std::string Err =
            exec::detail::validateView(View, D, Container, Symbols);
        !Err.empty())
      return Reject(std::move(Err));
  } else if (View.Ty != D.Ty) {
    // Symbolic shape: the size is re-checked at run(); the type can't be.
    return Reject("binding for container '" + Container + "' has type " +
                  sdfg::dtypeName(View.Ty) + " but the container is " +
                  sdfg::dtypeName(D.Ty));
  }
  Bindings[Container] = View;
  return true;
}

InvocationResult Invocation::run() const {
  if (!Prog)
    return failResult(!BindError.empty()
                          ? BindError
                          : std::string("invocation is not attached to a "
                                        "program"));
  return Prog->invoke(*this);
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

std::shared_ptr<const Program> Program::create(Parts InParts) {
  std::shared_ptr<Program> Prog(new Program());
  Prog->P = std::move(InParts);
  // Hot-path metric handles, resolved once (registry entries are stable).
  Prog->CInvocations = &Prog->Metrics.counter("invocations");
  Prog->CNative = &Prog->Metrics.counter("invocations.native");
  Prog->CInterp = &Prog->Metrics.counter("invocations.interp");
  Prog->CFallbacks = &Prog->Metrics.counter("invocations.fallback");
  Prog->CAsync = &Prog->Metrics.counter("invocations.async");
  Prog->CSpecHits = &Prog->Metrics.counter("specialize.hits");
  Prog->CSpecMisses = &Prog->Metrics.counter("specialize.misses");
  Prog->CSpecFallbacks = &Prog->Metrics.counter("specialize.fallbacks");
  Prog->CSpecEvictions = &Prog->Metrics.counter("specialize.evictions");
  Prog->HNative = &Prog->Metrics.histogram("latency.native");
  Prog->HInterp = &Prog->Metrics.histogram("latency.interp");
  if (Prog->P.Graph) {
    // What a specialized variant can key on: the graph's free symbols
    // plus its read-only non-transient I64 scalars (runtime size
    // parameters). Computed once; empty means specialization is inert.
    codegen::CallSignature Sig = codegen::callSignature(*Prog->P.Graph);
    Prog->SpecNames = Sig.FreeSymbols;
    for (const std::string &Arg : Sig.Args) {
      const sdfg::DataDesc &D = Prog->P.Graph->desc(Arg);
      if (D.K == sdfg::DataDesc::Kind::Scalar && D.Ty == sdfg::DType::I64 &&
          !containerIsWritten(*Prog->P.Graph, Arg))
        Prog->SpecNames.push_back(Arg);
    }
    std::sort(Prog->SpecNames.begin(), Prog->SpecNames.end());
  }
  if (Prog->P.Graph && Prog->P.Opts.Engine == exec::EngineKind::Native) {
    std::unique_ptr<exec::ExecutionEngine> Native =
        exec::createEngine(exec::EngineKind::Native);
    exec::EngineConfig Config;
    Config.ParallelMaps =
        Prog->P.Opts.Parallelism != pipeline::ParallelismMode::Off;
    Config.NumThreads = Prog->P.Opts.NumThreads;
    Config.ProfileMaps = Prog->P.Opts.ProfileMaps;
    Native->configure(Config);
    std::string Error;
    double Seconds = 0.0;
    // The engine is kept even when the generic prepare fails: a
    // specialized variant (constant bounds, no symbolic addressing) may
    // still compile where the generic artifact could not.
    Prog->Native = std::move(Native);
    if (Prog->Native->prepareGraph(*Prog->P.Graph, Error, &Seconds)) {
      Prog->GenericPrepared = true;
      Prog->NativeCompileSeconds = Seconds;
    } else {
      // Non-fatal: the program serves from the interpreter, every
      // invocation counts as a fallback, and the reason is queryable.
      Prog->PrepareError = Error;
      std::fprintf(stderr,
                   "api: native preparation failed for '%s'; program "
                   "serves from the interpreter:\n%s\n",
                   Prog->P.Entry.c_str(), Error.c_str());
    }
  }
  return Prog;
}

Program::~Program() {
  {
    std::lock_guard<std::mutex> Lock(PoolMu);
    PoolStop = true;
  }
  PoolCv.notify_all();
  for (std::thread &W : PoolWorkers)
    W.join();
  // After the pool: pool workers are the only other threads that can
  // still spawn lazy specialization builds.
  std::vector<std::thread> Builders;
  {
    std::lock_guard<std::mutex> Lock(VarMu);
    Builders.swap(SpecThreads);
  }
  for (std::thread &W : Builders)
    W.join();
  if (P.Module && P.OwnsModule)
    ir::Operation::eraseDetached(P.Module);
}

std::vector<ContainerInfo> Program::containers() const {
  std::vector<ContainerInfo> Out;
  if (!P.Graph)
    return Out;
  for (const auto &[Name, D] : P.Graph->descs()) {
    ContainerInfo Info;
    Info.Name = Name;
    Info.Type = D.Ty;
    Info.Transient = D.Transient;
    Info.Elements = exec::detail::containerElements(D, {});
    Out.push_back(std::move(Info));
  }
  return Out;
}

ProgramStats Program::stats() const {
  ProgramStats S;
  S.Invocations = CInvocations->value();
  S.NativeInvocations = CNative->value();
  S.InterpInvocations = CInterp->value();
  S.EngineFallbacks = CFallbacks->value();
  S.AsyncInvocations = CAsync->value();
  S.SpecializeHits = CSpecHits->value();
  S.SpecializeMisses = CSpecMisses->value();
  S.SpecializeFallbacks = CSpecFallbacks->value();
  S.SpecializeEvictions = CSpecEvictions->value();
  return S;
}

std::vector<obs::MapProfile> Program::mapProfile() const {
  if (!Native || !P.Graph)
    return {};
  return Native->mapProfile(*P.Graph);
}

std::string Program::validateBindings(const Invocation &I) const {
  if (I.bindings().empty())
    return std::string();
  // Bind-all-or-nothing: a partially bound invocation is almost always a
  // bug (the unbound outputs would land in invisible scratch), so every
  // non-transient container must be bound. `__return` is exempt — the
  // result already carries it.
  for (const std::string &Arg : P.Graph->args()) {
    if (Arg == "__return" || I.bindings().count(Arg))
      continue;
    return "missing required binding for container '" + Arg +
           "': an invocation that binds any buffer must bind every "
           "non-transient container (bindable: " +
           bindableList(*P.Graph) + ")";
  }
  // Type/size once more, now under the final symbol environment (bind()
  // can only check shapes that were concrete at bind time) — the same
  // check the engines apply.
  for (const auto &[Name, View] : I.bindings())
    if (std::string Err = exec::detail::validateView(
            View, P.Graph->desc(Name), Name, I.symbols());
        !Err.empty())
      return Err;
  return std::string();
}

InvocationResult Program::invoke(const Invocation &I) const {
  if (!I.error().empty())
    return failResult(I.error());
  if (I.program() && I.program().get() != this)
    return failResult("invocation was created for program '" +
                      I.program()->entry() + "', not '" + P.Entry + "'");

  obs::Span InvokeSpan("invoke:" + P.Entry, "serve");
  InvocationResult R;
  if (P.Module) {
    if (!I.bindings().empty())
      return failResult("program '" + P.Entry +
                        "' is a dialect-module artifact with no bindable "
                        "containers");
    exec::EngineRun E = Interp.runModule(P.Module, P.Entry, I.mathMode());
    CInvocations->inc();
    CInterp->inc();
    if (E.Ok)
      HInterp->recordSeconds(E.Seconds);
    R.Ok = E.Ok;
    R.Error = std::move(E.Error);
    R.ReturnValue = E.ReturnValue;
    R.Stats = E.Stats;
    R.Seconds = E.Seconds;
    R.EngineUsed = exec::EngineKind::Interp;
    return R;
  }
  if (!P.Graph)
    return failResult("empty program (compilation failed?)");

  if (std::string Err = validateBindings(I); !Err.empty())
    return failResult(std::move(Err));

  exec::InvocationRequest Req;
  Req.Bindings = &I.bindings();
  Req.Symbols = I.symbols();
  Req.Mode = I.mathMode();
  Req.NumThreads = I.numThreads() > 0 ? I.numThreads() : P.Opts.NumThreads;
  Req.SnapshotOutputs = I.capturesOutputs();

  // Shape-specialized dispatch: when this shape has a ready
  // constant-bound variant, invoke that artifact instead of the generic
  // one. The shared_ptr pins the variant graph across the call, so LRU
  // eviction can never free it mid-invocation.
  std::shared_ptr<const sdfg::SDFG> VariantG;
  double SpecCompileSeconds = 0.0;
  if (Native && P.Opts.Specialize != pipeline::SpecializeMode::Off &&
      I.specializes() && !SpecNames.empty()) {
    std::map<std::string, std::int64_t> Env =
        specializationEnv(I.bindings(), I.symbols());
    if (!Env.empty())
      VariantG = resolveVariant(
          Env, P.Opts.Specialize == pipeline::SpecializeMode::Eager,
          &SpecCompileSeconds);
  }

  exec::EngineRun E;
  exec::EngineKind Used = exec::EngineKind::Interp;
  bool NativeFailed = false;
  if (Native && (VariantG || GenericPrepared)) {
    const sdfg::SDFG &RunG = VariantG ? *VariantG : *P.Graph;
    E = Native->invokeGraph(RunG, Req);
    if (E.Ok) {
      Used = exec::EngineKind::Native;
    } else {
      NativeFailed = true;
      std::fprintf(stderr,
                   "api: native invocation of '%s' failed, falling back "
                   "to the interpreter:\n%s\n",
                   P.Entry.c_str(), E.Error.c_str());
    }
  }
  if (Used != exec::EngineKind::Native) {
    if (P.Opts.Engine == exec::EngineKind::Native)
      CFallbacks->inc();
    (void)NativeFailed;
    E = Interp.invokeGraph(*P.Graph, Req);
  }

  CInvocations->inc();
  (Used == exec::EngineKind::Native ? CNative : CInterp)->inc();
  if (E.Ok)
    (Used == exec::EngineKind::Native ? HNative : HInterp)
        ->recordSeconds(E.Seconds);

  R.Ok = E.Ok;
  R.Error = std::move(E.Error);
  R.ReturnValue = E.ReturnValue;
  R.Stats = E.Stats;
  R.Seconds = E.Seconds;
  R.CompileSeconds = E.CompileSeconds;
  R.EngineUsed = Used;
  R.OutputCopies = E.OutputCopies;
  R.Outputs = std::move(E.Outputs);
  // The JIT cost is paid at Program creation; the first successful native
  // invocation reports it (the legacy warmup contract benches rely on).
  if (Used == exec::EngineKind::Native && R.Ok &&
      !CompileSecondsClaimed.exchange(true, std::memory_order_relaxed))
    R.CompileSeconds += NativeCompileSeconds;
  // An Eager specialization miss pays its re-JIT on this invocation.
  R.CompileSeconds += SpecCompileSeconds;
  return R;
}

//===----------------------------------------------------------------------===//
// Shape specialization
//===----------------------------------------------------------------------===//

std::map<std::string, std::int64_t> Program::specializationEnv(
    const std::map<std::string, BufferView> &Bindings,
    const std::map<std::string, std::int64_t> &Symbols) const {
  std::map<std::string, std::int64_t> Env;
  for (const std::string &Name : SpecNames) {
    if (auto It = Symbols.find(Name); It != Symbols.end()) {
      Env[Name] = It->second;
      continue;
    }
    // Read-only I64 scalar containers carry their value in the caller's
    // bound buffer (the invocation owns it for the duration of the call).
    auto It = Bindings.find(Name);
    if (It != Bindings.end() && It->second.Ptr &&
        It->second.Ty == sdfg::DType::I64 && It->second.Len >= 1)
      Env[Name] = *static_cast<const std::int64_t *>(It->second.Ptr);
  }
  return Env;
}

std::shared_ptr<const sdfg::SDFG>
Program::resolveVariant(const std::map<std::string, std::int64_t> &Env,
                        bool Blocking, double *CompileSeconds) const {
  const std::string Key = variantKey(Env);
  std::unique_lock<std::mutex> Lock(VarMu);
  for (;;) {
    auto It = Variants.find(Key);
    if (It == Variants.end())
      break;
    Variant &V = It->second;
    if (V.St == Variant::State::Ready) {
      V.LastUse = ++VarStamp;
      CSpecHits->inc();
      return V.Graph;
    }
    if (V.St == Variant::State::Failed)
      return nullptr; // Negative cache: this shape degrades to generic.
    if (!Blocking)
      return nullptr; // Lazy: serve generic while the worker builds.
    VarCv.wait(Lock); // Eager: wait the in-flight build out, re-check.
  }
  // First sighting of this shape.
  CSpecMisses->inc();
  Variants[Key]; // Default-constructed: InFlight.
  if (Blocking) {
    Lock.unlock();
    buildVariant(Key, Env, CompileSeconds);
    Lock.lock();
    auto It = Variants.find(Key);
    if (It != Variants.end() && It->second.St == Variant::State::Ready) {
      It->second.LastUse = ++VarStamp;
      return It->second.Graph;
    }
    return nullptr;
  }
  SpecThreads.emplace_back(
      [this, Key, Env] { buildVariant(Key, Env, nullptr); });
  return nullptr;
}

void Program::buildVariant(const std::string &Key,
                           const std::map<std::string, std::int64_t> &Env,
                           double *CompileSeconds) const {
  obs::Span Span("specialize:" + P.Entry, "specialize");
  std::unique_ptr<sdfg::SDFG> Clone = P.Graph->clone();
  {
    std::lock_guard<std::mutex> Lock(VarMu);
    Clone->setName(P.Entry + "__spec" + std::to_string(VarCounter++));
  }
  // Substitute, re-optimize under the program's own options, re-JIT.
  // Any failure degrades this shape to the generic artifact — an
  // invocation never fails because specialization did.
  std::string Why;
  sdfgopt::SpecializationOptions SOpts;
  SOpts.SymbolValues = Env;
  bool Ok = sdfgopt::specializeSymbols(*Clone, SOpts) > 0;
  if (!Ok)
    Why = "substitution found no use of the bound values";
  if (Ok) {
    DiagnosticEngine D;
    sdfgopt::OptReport Rep;
    Ok = detail::optimizeGraph(*Clone, P.Opts, Rep, D) && Clone->validate(D);
    if (!Ok)
      Why = "re-optimization failed: " + D.str();
  }
  double Seconds = 0.0;
  if (Ok) {
    std::string Error;
    Ok = Native->prepareGraph(*Clone, Error, &Seconds);
    if (!Ok)
      Why = "native re-JIT failed: " + Error;
  }
  if (CompileSeconds)
    *CompileSeconds = Seconds;

  std::lock_guard<std::mutex> Lock(VarMu);
  Variant &V = Variants[Key];
  if (Ok) {
    V.St = Variant::State::Ready;
    V.Graph = std::move(Clone);
    V.LastUse = ++VarStamp;
    // LRU cap over live (non-failed) variants; the generic artifact is
    // not in the table and thus never evicted. Engine state goes first —
    // in-flight invocations still pin the graph via their shared_ptr.
    std::size_t Live = 0;
    for (const auto &[K, Var] : Variants)
      if (Var.St != Variant::State::Failed)
        ++Live;
    while (Live > std::max(1u, P.Opts.MaxVariants)) {
      auto Oldest = Variants.end();
      for (auto It = Variants.begin(); It != Variants.end(); ++It)
        if (It->second.St == Variant::State::Ready &&
            (Oldest == Variants.end() ||
             It->second.LastUse < Oldest->second.LastUse))
          Oldest = It;
      if (Oldest == Variants.end())
        break; // Everything else is in flight; cap applies next time.
      Native->releaseGraph(*Oldest->second.Graph);
      Variants.erase(Oldest);
      CSpecEvictions->inc();
      --Live;
    }
  } else {
    V.St = Variant::State::Failed;
    V.Graph.reset();
    CSpecFallbacks->inc();
    std::fprintf(stderr,
                 "api: shape specialization of '%s' for {%s} degraded to "
                 "the generic artifact: %s\n",
                 P.Entry.c_str(), Key.c_str(), Why.c_str());
  }
  VarCv.notify_all();
}

bool Program::specialize(
    const std::map<std::string, std::int64_t> &Values) const {
  if (!Native || !P.Graph || SpecNames.empty() ||
      P.Opts.Specialize == pipeline::SpecializeMode::Off)
    return false;
  std::map<std::string, std::int64_t> Env;
  for (const std::string &Name : SpecNames)
    if (auto It = Values.find(Name); It != Values.end())
      Env[Name] = It->second;
  if (Env.empty())
    return false;
  return resolveVariant(Env, /*Blocking=*/true, nullptr) != nullptr;
}

std::size_t Program::variantCount() const {
  std::lock_guard<std::mutex> Lock(VarMu);
  std::size_t N = 0;
  for (const auto &[Key, V] : Variants)
    if (V.St != Variant::State::Failed)
      ++N;
  return N;
}

std::future<InvocationResult> Program::invokeAsync(Invocation I) const {
  // The stored invocation must not hold a reference back to this program:
  // a queued self-reference would keep the program alive through its own
  // queue, and the last release could then happen on a worker thread,
  // whose destructor would join itself. The caller keeps the program
  // alive instead (destroying it cancels queued invocations — their
  // futures report broken_promise).
  I.Prog.reset();
  std::packaged_task<InvocationResult()> Task(
      [this, Inv = std::move(I), Enq = obs::nowNs()]() {
        // The queue wait happened between enqueue (producer thread) and
        // now (worker thread) — record it as a complete interval.
        if (obs::Tracer::instance().enabled())
          obs::Tracer::instance().completeSpan("queue-wait:" + P.Entry,
                                               "serve", Enq, obs::nowNs());
        return invoke(Inv);
      });
  std::future<InvocationResult> Fut = Task.get_future();
  {
    std::lock_guard<std::mutex> Lock(PoolMu);
    if (PoolWorkers.empty()) {
      unsigned N = std::thread::hardware_concurrency();
      N = std::max(1u, std::min(N, 4u));
      for (unsigned W = 0; W < N; ++W)
        PoolWorkers.emplace_back([this] {
          for (;;) {
            std::packaged_task<InvocationResult()> Job;
            {
              std::unique_lock<std::mutex> WLock(PoolMu);
              PoolCv.wait(WLock,
                          [this] { return PoolStop || !PoolQueue.empty(); });
              // Stop wins over a non-empty queue: queued-but-unstarted
              // invocations are cancelled (their packaged_tasks die with
              // the deque, so the futures report broken_promise) — the
              // documented destruction contract.
              if (PoolStop)
                return;
              Job = std::move(PoolQueue.front());
              PoolQueue.pop_front();
            }
            Job();
          }
        });
    }
    PoolQueue.push_back(std::move(Task));
  }
  CAsync->inc();
  PoolCv.notify_one();
  return Fut;
}
