//===- Program.cpp - immutable programs, per-call invocations -----------------===//

#include "api/Program.h"

#include "api/Compiler.h"
#include "codegen/CppCodegen.h"
#include "exec/JitCache.h"
#include "ir/IR.h"
#include "obs/Trace.h"
#include "sdfg/TaskletExpr.h"
#include "support/Casting.h"
#include "tune/Autotuner.h"

#include <algorithm>
#include <climits>
#include <cstdio>

using namespace dcir;
using namespace dcir::api;

//===----------------------------------------------------------------------===//
// Invocation: bind-time validation
//===----------------------------------------------------------------------===//

namespace {

/// Expected element count of \p D under \p Symbols, or nullopt while any
/// dimension stays symbolic (checked again at run time, when the symbol
/// environment is final).
std::optional<std::size_t>
concreteElements(const sdfg::DataDesc &D,
                 const std::map<std::string, std::int64_t> &Symbols) {
  std::size_t N = 1;
  for (const sym::SymExpr &Dim : D.Shape) {
    auto V = Dim.evaluate(Symbols);
    if (!V)
      return std::nullopt;
    N *= static_cast<std::size_t>(std::max<std::int64_t>(*V, 0));
  }
  return N;
}

std::string bindableList(const sdfg::SDFG &G) {
  std::string Out;
  for (const std::string &Arg : G.args()) {
    if (!Out.empty())
      Out += ", ";
    Out += Arg;
  }
  return Out.empty() ? std::string("(none)") : Out;
}

InvocationResult failResult(std::string Error) {
  InvocationResult R;
  R.Error = std::move(Error);
  return R;
}

/// True when any dataflow edge writes into container \p Name (its access
/// node appears as an edge destination). Written scalars cannot key a
/// specialized variant: the constant baked into the artifact could
/// diverge from the live value mid-run.
bool containerIsWritten(const sdfg::SDFG &G, const std::string &Name) {
  for (const auto &St : G.states())
    for (const sdfg::DataflowEdge &E : St->edges()) {
      if (const auto *A = dyn_cast<sdfg::AccessNode>(St->getNode(E.Dst)))
        if (A->getData() == Name)
          return true;
    }
  return false;
}

/// The canonical "name=value,..." variant key (Env is sorted already).
std::string variantKey(const std::map<std::string, std::int64_t> &Env) {
  std::string Key;
  for (const auto &[Name, Value] : Env) {
    if (!Key.empty())
      Key += ',';
    Key += Name + "=" + std::to_string(Value);
  }
  return Key;
}

} // namespace

bool Invocation::bind(const std::string &Container, const BufferView &View) {
  auto Reject = [&](std::string Msg) {
    if (BindError.empty())
      BindError = std::move(Msg);
    return false;
  };
  if (!Prog)
    return Reject("cannot bind container '" + Container +
                  "': invocation is not attached to a program");
  const sdfg::SDFG *G = Prog->graph();
  if (!G)
    return Reject("cannot bind container '" + Container +
                  "': program '" + Prog->entry() +
                  "' is a dialect-module artifact with no bindable "
                  "containers");
  if (!G->hasData(Container))
    return Reject("no container named '" + Container + "' in program '" +
                  G->getName() +
                  "'; bindable containers: " + bindableList(*G));
  const sdfg::DataDesc &D = G->desc(Container);
  if (D.Transient)
    return Reject("container '" + Container +
                  "' is transient (program-managed); only the program's "
                  "inputs/outputs can be bound: " + bindableList(*G));
  if (!View.Ptr && View.Len > 0)
    return Reject("binding for container '" + Container +
                  "' is a null pointer with non-zero length");
  if (concreteElements(D, Symbols)) {
    // Shape fully known now: apply the engines' own type/size check.
    if (std::string Err =
            exec::detail::validateView(View, D, Container, Symbols);
        !Err.empty())
      return Reject(std::move(Err));
  } else if (View.Ty != D.Ty) {
    // Symbolic shape: the size is re-checked at run(); the type can't be.
    return Reject("binding for container '" + Container + "' has type " +
                  sdfg::dtypeName(View.Ty) + " but the container is " +
                  sdfg::dtypeName(D.Ty));
  }
  Bindings[Container] = View;
  return true;
}

InvocationResult Invocation::run() const {
  if (!Prog)
    return failResult(!BindError.empty()
                          ? BindError
                          : std::string("invocation is not attached to a "
                                        "program"));
  return Prog->invoke(*this);
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

std::shared_ptr<const Program> Program::create(Parts InParts) {
  std::shared_ptr<Program> Prog(new Program());
  Prog->P = std::move(InParts);
  // Hot-path metric handles, resolved once (registry entries are stable).
  Prog->CInvocations = &Prog->Metrics.counter("invocations");
  Prog->CNative = &Prog->Metrics.counter("invocations.native");
  Prog->CInterp = &Prog->Metrics.counter("invocations.interp");
  Prog->CFallbacks = &Prog->Metrics.counter("invocations.fallback");
  Prog->CAsync = &Prog->Metrics.counter("invocations.async");
  Prog->CSpecHits = &Prog->Metrics.counter("specialize.hits");
  Prog->CSpecMisses = &Prog->Metrics.counter("specialize.misses");
  Prog->CSpecFallbacks = &Prog->Metrics.counter("specialize.fallbacks");
  Prog->CSpecEvictions = &Prog->Metrics.counter("specialize.evictions");
  Prog->CTuneMeasuring = &Prog->Metrics.counter("tune.measuring");
  Prog->CTunePromoted = &Prog->Metrics.counter("tune.promoted");
  Prog->CTuneReverted = &Prog->Metrics.counter("tune.reverted");
  Prog->HNative = &Prog->Metrics.histogram("latency.native");
  Prog->HInterp = &Prog->Metrics.histogram("latency.interp");
  // Static-verify gate outcome: fixed at compile time, surfaced as
  // counters so metricsJson()/stats() expose it uniformly.
  Prog->Metrics.counter("verify.findings")
      .inc(Prog->P.Verify.Findings.size());
  Prog->Metrics.counter("verify.demotions")
      .inc(Prog->P.VerifyDemotions.size());
  Prog->Metrics.counter("speculation.guarded").inc(Prog->P.Speculation.size());
  if (Prog->P.Graph) {
    // What a specialized variant can key on: the graph's free symbols
    // plus its read-only non-transient I64 scalars (runtime size
    // parameters). Computed once; empty means specialization is inert.
    codegen::CallSignature Sig = codegen::callSignature(*Prog->P.Graph);
    Prog->SpecNames = Sig.FreeSymbols;
    for (const std::string &Arg : Sig.Args) {
      const sdfg::DataDesc &D = Prog->P.Graph->desc(Arg);
      if (D.K == sdfg::DataDesc::Kind::Scalar && D.Ty == sdfg::DType::I64 &&
          !containerIsWritten(*Prog->P.Graph, Arg))
        Prog->SpecNames.push_back(Arg);
    }
    std::sort(Prog->SpecNames.begin(), Prog->SpecNames.end());
  }
  if (Prog->P.Graph && Prog->P.Opts.Engine == exec::EngineKind::Native) {
    std::unique_ptr<exec::ExecutionEngine> Native =
        exec::createEngine(exec::EngineKind::Native);
    exec::EngineConfig Config;
    Config.ParallelMaps =
        Prog->P.Opts.Parallelism != pipeline::ParallelismMode::Off;
    Config.NumThreads = Prog->P.Opts.NumThreads;
    Config.ProfileMaps = Prog->P.Opts.ProfileMaps;
    Config.MinParallelWork = Prog->P.Opts.MinParallelWork;
    Config.MinInLoopParallelWork = Prog->P.Opts.MinInLoopParallelWork;
    Config.CheckBounds = Prog->P.Opts.CheckBounds;
    Native->configure(Config);
    // Serial demotions from the static-verify Error gate and runtime
    // guards from the Guard gate must land before the artifact is
    // prepared; demotions override any Auto decision the codegen would
    // have made for those scopes, guards switch them to multi-versioned
    // emission.
    if (!Prog->P.VerifyDemotions.empty() || !Prog->P.Speculation.empty()) {
      exec::GraphTuning GT;
      GT.Schedules = Prog->P.VerifyDemotions;
      GT.Speculation = Prog->P.Speculation;
      Native->tuneGraph(*Prog->P.Graph, GT);
    }
    if (Prog->P.Opts.Autotune)
      Prog->TuneDir = !Prog->P.Opts.TuneDir.empty()
                          ? Prog->P.Opts.TuneDir
                          : exec::JitCache::shared().root() + "/tune";
    std::string Error;
    double Seconds = 0.0;
    // The engine is kept even when the generic prepare fails: a
    // specialized variant (constant bounds, no symbolic addressing) may
    // still compile where the generic artifact could not.
    Prog->Native = std::move(Native);
    if (Prog->Native->prepareGraph(*Prog->P.Graph, Error, &Seconds)) {
      Prog->GenericPrepared = true;
      Prog->NativeCompileSeconds = Seconds;
    } else {
      // Non-fatal: the program serves from the interpreter, every
      // invocation counts as a fallback, and the reason is queryable.
      Prog->PrepareError = Error;
      std::fprintf(stderr,
                   "api: native preparation failed for '%s'; program "
                   "serves from the interpreter:\n%s\n",
                   Prog->P.Entry.c_str(), Error.c_str());
    }
  }
  return Prog;
}

Program::~Program() {
  {
    std::lock_guard<std::mutex> Lock(PoolMu);
    PoolStop = true;
  }
  PoolCv.notify_all();
  for (std::thread &W : PoolWorkers)
    W.join();
  // After the pool: pool workers are the only other threads that can
  // still spawn lazy specialization builds.
  std::vector<std::thread> Builders;
  {
    std::lock_guard<std::mutex> Lock(VarMu);
    Builders.swap(SpecThreads);
  }
  for (std::thread &W : Builders)
    W.join();
  if (P.Module && P.OwnsModule)
    ir::Operation::eraseDetached(P.Module);
}

std::vector<ContainerInfo> Program::containers() const {
  std::vector<ContainerInfo> Out;
  if (!P.Graph)
    return Out;
  for (const auto &[Name, D] : P.Graph->descs()) {
    ContainerInfo Info;
    Info.Name = Name;
    Info.Type = D.Ty;
    Info.Transient = D.Transient;
    Info.Elements = exec::detail::containerElements(D, {});
    Out.push_back(std::move(Info));
  }
  return Out;
}

ProgramStats Program::stats() const {
  ProgramStats S;
  S.Invocations = CInvocations->value();
  S.NativeInvocations = CNative->value();
  S.InterpInvocations = CInterp->value();
  S.EngineFallbacks = CFallbacks->value();
  S.AsyncInvocations = CAsync->value();
  S.SpecializeHits = CSpecHits->value();
  S.SpecializeMisses = CSpecMisses->value();
  S.SpecializeFallbacks = CSpecFallbacks->value();
  S.SpecializeEvictions = CSpecEvictions->value();
  S.TuneMeasuring = CTuneMeasuring->value();
  S.TunePromoted = CTunePromoted->value();
  S.TuneReverted = CTuneReverted->value();
  S.VerifyFindings = P.Verify.Findings.size();
  S.VerifyDemotions = P.VerifyDemotions.size();
  S.SpeculationGuarded = P.Speculation.size();
  // Guard outcomes are read live from the artifact's counter table (the
  // metrics registry's counters are inc-only, so mirroring them there
  // would need delta bookkeeping for no consumer benefit).
  for (const exec::SpeculationStat &St : speculationStats()) {
    S.SpeculationPass += St.Pass;
    S.SpeculationFail += St.Fail;
  }
  return S;
}

std::vector<obs::MapProfile> Program::mapProfile() const {
  if (!Native || !P.Graph)
    return {};
  return Native->mapProfile(*P.Graph);
}

std::vector<exec::SpeculationStat> Program::speculationStats() const {
  if (!Native || !P.Graph)
    return {};
  return Native->speculationStats(*P.Graph);
}

std::string Program::validateBindings(const Invocation &I) const {
  if (I.bindings().empty())
    return std::string();
  // Bind-all-or-nothing: a partially bound invocation is almost always a
  // bug (the unbound outputs would land in invisible scratch), so every
  // non-transient container must be bound. `__return` is exempt — the
  // result already carries it.
  for (const std::string &Arg : P.Graph->args()) {
    if (Arg == "__return" || I.bindings().count(Arg))
      continue;
    return "missing required binding for container '" + Arg +
           "': an invocation that binds any buffer must bind every "
           "non-transient container (bindable: " +
           bindableList(*P.Graph) + ")";
  }
  // Type/size once more, now under the final symbol environment (bind()
  // can only check shapes that were concrete at bind time) — the same
  // check the engines apply.
  for (const auto &[Name, View] : I.bindings())
    if (std::string Err = exec::detail::validateView(
            View, P.Graph->desc(Name), Name, I.symbols());
        !Err.empty())
      return Err;
  return std::string();
}

InvocationResult Program::invoke(const Invocation &I) const {
  if (!I.error().empty())
    return failResult(I.error());
  if (I.program() && I.program().get() != this)
    return failResult("invocation was created for program '" +
                      I.program()->entry() + "', not '" + P.Entry + "'");

  obs::Span InvokeSpan("invoke:" + P.Entry, "serve");
  InvocationResult R;
  if (P.Module) {
    if (!I.bindings().empty())
      return failResult("program '" + P.Entry +
                        "' is a dialect-module artifact with no bindable "
                        "containers");
    exec::EngineRun E = Interp.runModule(P.Module, P.Entry, I.mathMode());
    CInvocations->inc();
    CInterp->inc();
    if (E.Ok)
      HInterp->recordSeconds(E.Seconds);
    R.Ok = E.Ok;
    R.Error = std::move(E.Error);
    R.ReturnValue = E.ReturnValue;
    R.Stats = E.Stats;
    R.Seconds = E.Seconds;
    R.EngineUsed = exec::EngineKind::Interp;
    return R;
  }
  if (!P.Graph)
    return failResult("empty program (compilation failed?)");

  if (std::string Err = validateBindings(I); !Err.empty())
    return failResult(std::move(Err));

  exec::InvocationRequest Req;
  Req.Bindings = &I.bindings();
  Req.Symbols = I.symbols();
  Req.Mode = I.mathMode();
  Req.NumThreads = I.numThreads() > 0 ? I.numThreads() : P.Opts.NumThreads;
  Req.SnapshotOutputs = I.capturesOutputs();

  // Shape-specialized dispatch: when this shape has a ready
  // constant-bound variant, invoke that artifact instead of the generic
  // one. The shared_ptr pins the variant graph across the call, so LRU
  // eviction can never free it mid-invocation. The shape's sighting
  // ordinal is shared between the specializeAfter(N) gate and the
  // tuner's measuring window.
  std::shared_ptr<const sdfg::SDFG> VariantG;
  double SpecCompileSeconds = 0.0;
  std::string ShapeKey;
  unsigned Sighting = 0;
  const bool WantsSpec = Native &&
                         P.Opts.Specialize != pipeline::SpecializeMode::Off &&
                         I.specializes() && !SpecNames.empty();
  const bool WantsTune =
      Native && P.Opts.Autotune && GenericPrepared && I.specializes();
  std::map<std::string, std::int64_t> Env;
  if (WantsSpec || WantsTune) {
    Env = specializationEnv(I.bindings(), I.symbols());
    ShapeKey = variantKey(Env);
    std::lock_guard<std::mutex> Lock(VarMu);
    Sighting = ++Sightings[ShapeKey];
  }
  if (WantsSpec && !Env.empty())
    VariantG = resolveVariant(
        Env, P.Opts.Specialize == pipeline::SpecializeMode::Eager,
        &SpecCompileSeconds, Sighting);
  // Autotuned dispatch: only when no specialized variant serves — a ready
  // variant already beat the generic artifact on this shape, and tuning
  // targets the generic schedule.
  TuneDispatch TD;
  if (WantsTune && !VariantG)
    TD = tuneDispatch(ShapeKey);

  exec::EngineRun E;
  exec::EngineKind Used = exec::EngineKind::Interp;
  bool NativeFailed = false;
  if (Native && (VariantG || TD.Graph || GenericPrepared)) {
    const sdfg::SDFG &RunG =
        VariantG ? *VariantG : TD.Graph ? *TD.Graph : *P.Graph;
    E = Native->invokeGraph(RunG, Req);
    if (E.Ok) {
      Used = exec::EngineKind::Native;
    } else {
      NativeFailed = true;
      std::fprintf(stderr,
                   "api: native invocation of '%s' failed, falling back "
                   "to the interpreter:\n%s\n",
                   P.Entry.c_str(), E.Error.c_str());
    }
  }
  if (Used != exec::EngineKind::Native) {
    if (P.Opts.Engine == exec::EngineKind::Native)
      CFallbacks->inc();
    (void)NativeFailed;
    E = Interp.invokeGraph(*P.Graph, Req);
  }
  // Failed completions still advance the tuner's window (a stuck phase
  // would otherwise never transition); they just contribute no sample.
  if (TD.Counted)
    tuneComplete(TD, Used == exec::EngineKind::Native && E.Ok ? E.Seconds
                                                              : -1.0);

  CInvocations->inc();
  (Used == exec::EngineKind::Native ? CNative : CInterp)->inc();
  if (E.Ok) {
    (Used == exec::EngineKind::Native ? HNative : HInterp)
        ->recordSeconds(E.Seconds);
    // Per-variant latency rows: which artifact served this shape, labeled
    // by variant key — the promote/revert evidence, readable through
    // metricsJson(). Only maintained for programs that specialize or
    // tune; plain programs keep their two-histogram registry.
    if (WantsSpec || WantsTune) {
      std::string Label =
          VariantG ? "spec:" + ShapeKey
          : TD.Graph && TD.Ph == TunePhase::Measuring ? "measuring"
          : TD.Graph ? (ShapeKey.empty() ? "tuned" : "tuned:" + ShapeKey)
                     : "generic";
      Metrics.histogram("latency.variant." + Label).recordSeconds(E.Seconds);
    }
  }

  R.Ok = E.Ok;
  R.Error = std::move(E.Error);
  R.ReturnValue = E.ReturnValue;
  R.Stats = E.Stats;
  R.Seconds = E.Seconds;
  R.CompileSeconds = E.CompileSeconds;
  R.EngineUsed = Used;
  R.OutputCopies = E.OutputCopies;
  R.Outputs = std::move(E.Outputs);
  // The JIT cost is paid at Program creation; the first successful native
  // invocation reports it (the legacy warmup contract benches rely on).
  if (Used == exec::EngineKind::Native && R.Ok &&
      !CompileSecondsClaimed.exchange(true, std::memory_order_relaxed))
    R.CompileSeconds += NativeCompileSeconds;
  // An Eager specialization miss pays its re-JIT on this invocation.
  R.CompileSeconds += SpecCompileSeconds;
  return R;
}

//===----------------------------------------------------------------------===//
// Shape specialization
//===----------------------------------------------------------------------===//

std::map<std::string, std::int64_t> Program::specializationEnv(
    const std::map<std::string, BufferView> &Bindings,
    const std::map<std::string, std::int64_t> &Symbols) const {
  std::map<std::string, std::int64_t> Env;
  for (const std::string &Name : SpecNames) {
    if (auto It = Symbols.find(Name); It != Symbols.end()) {
      Env[Name] = It->second;
      continue;
    }
    // Read-only I64 scalar containers carry their value in the caller's
    // bound buffer (the invocation owns it for the duration of the call).
    auto It = Bindings.find(Name);
    if (It != Bindings.end() && It->second.Ptr &&
        It->second.Ty == sdfg::DType::I64 && It->second.Len >= 1)
      Env[Name] = *static_cast<const std::int64_t *>(It->second.Ptr);
  }
  return Env;
}

std::shared_ptr<const sdfg::SDFG>
Program::resolveVariant(const std::map<std::string, std::int64_t> &Env,
                        bool Blocking, double *CompileSeconds,
                        unsigned Sighting) const {
  const std::string Key = variantKey(Env);
  std::unique_lock<std::mutex> Lock(VarMu);
  for (;;) {
    auto It = Variants.find(Key);
    if (It == Variants.end())
      break;
    Variant &V = It->second;
    if (V.St == Variant::State::Ready) {
      V.LastUse = ++VarStamp;
      CSpecHits->inc();
      return V.Graph;
    }
    if (V.St == Variant::State::Failed)
      return nullptr; // Negative cache: this shape degrades to generic.
    if (!Blocking)
      return nullptr; // Lazy: serve generic while the worker builds.
    VarCv.wait(Lock); // Eager: wait the in-flight build out, re-check.
  }
  // No table entry yet. The specializeAfter(N) gate: early sightings
  // serve the generic artifact without starting a build (a miss is
  // counted when the build actually starts). UINT_MAX is the explicit
  // specialize() warm-up, which always builds.
  if (Sighting < P.Opts.SpecializeAfter)
    return nullptr;
  CSpecMisses->inc();
  Variants[Key]; // Default-constructed: InFlight.
  if (Blocking) {
    Lock.unlock();
    buildVariant(Key, Env, CompileSeconds);
    Lock.lock();
    auto It = Variants.find(Key);
    if (It != Variants.end() && It->second.St == Variant::State::Ready) {
      It->second.LastUse = ++VarStamp;
      return It->second.Graph;
    }
    return nullptr;
  }
  SpecThreads.emplace_back(
      [this, Key, Env] { buildVariant(Key, Env, nullptr); });
  return nullptr;
}

void Program::buildVariant(const std::string &Key,
                           const std::map<std::string, std::int64_t> &Env,
                           double *CompileSeconds) const {
  obs::Span Span("specialize:" + P.Entry, "specialize");
  std::unique_ptr<sdfg::SDFG> Clone = P.Graph->clone();
  {
    std::lock_guard<std::mutex> Lock(VarMu);
    Clone->setName(P.Entry + "__spec" + std::to_string(VarCounter++));
  }
  // Substitute, re-optimize under the program's own options, re-JIT.
  // Any failure degrades this shape to the generic artifact — an
  // invocation never fails because specialization did.
  std::string Why;
  sdfgopt::SpecializationOptions SOpts;
  SOpts.SymbolValues = Env;
  bool Ok = sdfgopt::specializeSymbols(*Clone, SOpts) > 0;
  if (!Ok)
    Why = "substitution found no use of the bound values";
  if (Ok) {
    DiagnosticEngine D;
    sdfgopt::OptReport Rep;
    Ok = detail::optimizeGraph(*Clone, P.Opts, Rep, D) && Clone->validate(D);
    if (!Ok)
      Why = "re-optimization failed: " + D.str();
  }
  if (Ok) {
    // Re-run the static-verify gate over the re-optimized clone: its map
    // scopes (hence labels) may differ from the generic graph's, so the
    // demotion set is re-derived rather than copied.
    pipeline::StaticVerifyMode Mode = detail::effectiveStaticVerify(P.Opts);
    if (Mode != pipeline::StaticVerifyMode::Off) {
      DiagnosticEngine D;
      analysis::AnalysisResult VR;
      codegen::MapSchedules Demotions;
      codegen::SpeculativeMaps Speculation;
      Ok = detail::applyStaticVerify(*Clone, Clone->getName(), Mode, D, VR,
                                     Demotions, Speculation);
      if (!Ok)
        Why = "static verification failed: " + D.str();
      else if (!Demotions.empty() || !Speculation.empty()) {
        exec::GraphTuning GT;
        GT.Schedules = std::move(Demotions);
        GT.Speculation = std::move(Speculation);
        Native->tuneGraph(*Clone, GT);
      }
    }
  }
  double Seconds = 0.0;
  if (Ok) {
    std::string Error;
    Ok = Native->prepareGraph(*Clone, Error, &Seconds);
    if (!Ok)
      Why = "native re-JIT failed: " + Error;
  }
  if (CompileSeconds)
    *CompileSeconds = Seconds;

  std::lock_guard<std::mutex> Lock(VarMu);
  Variant &V = Variants[Key];
  if (Ok) {
    V.St = Variant::State::Ready;
    V.Graph = std::move(Clone);
    V.LastUse = ++VarStamp;
    // LRU cap over live (non-failed) variants; the generic artifact is
    // not in the table and thus never evicted. Engine state goes first —
    // in-flight invocations still pin the graph via their shared_ptr.
    std::size_t Live = 0;
    for (const auto &[K, Var] : Variants)
      if (Var.St != Variant::State::Failed)
        ++Live;
    while (Live > std::max(1u, P.Opts.MaxVariants)) {
      auto Oldest = Variants.end();
      for (auto It = Variants.begin(); It != Variants.end(); ++It)
        if (It->second.St == Variant::State::Ready &&
            (Oldest == Variants.end() ||
             It->second.LastUse < Oldest->second.LastUse))
          Oldest = It;
      if (Oldest == Variants.end())
        break; // Everything else is in flight; cap applies next time.
      Native->releaseGraph(*Oldest->second.Graph);
      Variants.erase(Oldest);
      CSpecEvictions->inc();
      --Live;
    }
  } else {
    V.St = Variant::State::Failed;
    V.Graph.reset();
    CSpecFallbacks->inc();
    std::fprintf(stderr,
                 "api: shape specialization of '%s' for {%s} degraded to "
                 "the generic artifact: %s\n",
                 P.Entry.c_str(), Key.c_str(), Why.c_str());
  }
  VarCv.notify_all();
}

bool Program::specialize(
    const std::map<std::string, std::int64_t> &Values) const {
  if (!Native || !P.Graph || SpecNames.empty() ||
      P.Opts.Specialize == pipeline::SpecializeMode::Off)
    return false;
  std::map<std::string, std::int64_t> Env;
  for (const std::string &Name : SpecNames)
    if (auto It = Values.find(Name); It != Values.end())
      Env[Name] = It->second;
  if (Env.empty())
    return false;
  return resolveVariant(Env, /*Blocking=*/true, nullptr, UINT_MAX) != nullptr;
}

std::size_t Program::variantCount() const {
  std::lock_guard<std::mutex> Lock(VarMu);
  std::size_t N = 0;
  for (const auto &[Key, V] : Variants)
    if (V.St != Variant::State::Failed)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Autotuning (DESIGN.md, "Autotuning")
//===----------------------------------------------------------------------===//

namespace {

/// Median of the phase's samples, in nanoseconds; 0 when every run in the
/// window failed (the tuner then takes the safe branch: revert).
double medianNs(std::vector<double> Samples) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2] * 1e9;
}

} // namespace

std::string Program::tuneCloneSuffix(const char *Stem,
                                     const std::string &Key) const {
  return std::string(Stem) +
         (Key.empty() ? std::string("default") : tune::fnv64Hex(Key));
}

std::shared_ptr<const sdfg::SDFG>
Program::buildTuneClone(const std::string &Suffix,
                        const exec::GraphTuning &GT, std::string *Why) const {
  // The clone is the already-optimized generic graph under a new
  // deterministic name — no re-optimization, only re-emission under the
  // registered overrides. Deterministic names mean warm processes emit
  // byte-identical source and hit the JIT cache: a disk read, not a
  // compiler invocation.
  std::unique_ptr<sdfg::SDFG> Clone = P.Graph->clone();
  Clone->setName(P.Entry + Suffix);
  std::shared_ptr<const sdfg::SDFG> G(std::move(Clone));
  // Static-verify serial demotions are structural safety decisions, not
  // performance preferences: they override whatever the tuner measured
  // for those scopes (the clone shares the generic graph's structure, so
  // its map labels match).
  exec::GraphTuning Merged = GT;
  for (const auto &[Label, Sched] : P.VerifyDemotions)
    Merged.Schedules[Label] = Sched;
  // Likewise the Guard gate's runtime guards: a tuned re-emission of a
  // guarded scope must stay multi-versioned, or the tuner would undo the
  // soundness check the gate installed.
  for (const auto &[Label, Guard] : P.Speculation)
    Merged.Speculation[Label] = Guard;
  Native->tuneGraph(*G, Merged);
  std::string Error;
  if (!Native->prepareGraph(*G, Error, nullptr)) {
    Native->releaseGraph(*G); // Drops the tuning registration too.
    if (Why)
      *Why = Error;
    return nullptr;
  }
  return G;
}

void Program::persistTuneRecord(const std::string &Key, bool TunedWins,
                                double BaselineNs, double TunedNs,
                                const codegen::MapSchedules &Schedules) const {
  if (TuneDir.empty() || P.SourceKey.empty())
    return;
  tune::TuneRecord Rec;
  Rec.Entry = P.Entry;
  Rec.SourceHash = P.SourceKey;
  Rec.ShapeKey = Key;
  Rec.TunedWins = TunedWins;
  Rec.BaselineNs = BaselineNs;
  Rec.TunedNs = TunedNs;
  Rec.Schedules = Schedules;
  tune::saveTuneRecord(TuneDir, Rec);
}

Program::TuneDispatch Program::tuneDispatch(const std::string &Key) const {
  TuneDispatch TD;
  TD.Key = Key;
  const unsigned K = std::max(1u, P.Opts.TuneWindow);
  std::unique_lock<std::mutex> Lock(VarMu);
  TuneState &T = TuneStates[Key];
  if (T.Ph == TunePhase::Off) {
    if (T.Building)
      return TD; // Another thread is initializing; serve generic.
    T.Building = true;
    Lock.unlock();
    // First sighting of this shape. A persisted sidecar lets a warm
    // process skip measurement entirely — its first invocation already
    // serves the recorded winner. Otherwise build the profiled measuring
    // clone, blocking this one invocation like an Eager specialization
    // miss. All unlocked: dispatches arriving meanwhile serve generic.
    obs::Span Span("tune:" + P.Entry, "tune");
    TunePhase Next = TunePhase::Measuring;
    std::shared_ptr<const sdfg::SDFG> Measure, Tuned;
    codegen::MapSchedules Schedules;
    tune::TuneRecord Rec;
    if (tune::loadTuneRecord(TuneDir, P.SourceKey, Key, Rec)) {
      Next = TunePhase::Generic; // Recorded revert: generic, no re-A/B.
      if (Rec.TunedWins && !Rec.Schedules.empty()) {
        exec::GraphTuning GT;
        GT.Schedules = Rec.Schedules;
        std::string Why;
        Tuned = buildTuneClone(tuneCloneSuffix("__tuned_", Key), GT, &Why);
        if (Tuned) {
          Next = TunePhase::Tuned;
          Schedules = Rec.Schedules;
        } else {
          std::fprintf(stderr,
                       "api: autotune: persisted winner for '%s' {%s} "
                       "failed to rebuild (%s); serving generic\n",
                       P.Entry.c_str(), Key.c_str(), Why.c_str());
        }
      }
    } else {
      exec::GraphTuning GT;
      GT.ProfileMaps = true;
      GT.ProfileTopOnly = true; // Nested timers would inflate outer maps.
      std::string Why;
      Measure = buildTuneClone(tuneCloneSuffix("__meas_", Key), GT, &Why);
      if (!Measure) {
        Next = TunePhase::Generic;
        std::fprintf(stderr,
                     "api: autotune: measuring build for '%s' {%s} failed "
                     "(%s); serving generic\n",
                     P.Entry.c_str(), Key.c_str(), Why.c_str());
      }
    }
    Lock.lock();
    T.Building = false;
    T.Ph = Next;
    T.MeasureGraph = std::move(Measure);
    T.TunedGraph = std::move(Tuned);
    T.Schedules = std::move(Schedules);
  }
  switch (T.Ph) {
  case TunePhase::Measuring:
    // Overflow dispatches (window full, completions pending) still serve
    // the measuring artifact — correct code, just uncounted.
    TD.Graph = T.MeasureGraph;
    TD.Ph = TunePhase::Measuring;
    if (T.Started < K) {
      ++T.Started;
      TD.Counted = true;
      CTuneMeasuring->inc();
    }
    break;
  case TunePhase::Deciding:
    break; // Serve generic, uncounted, while the decision/build runs.
  case TunePhase::AbTuned:
    TD.Graph = T.TunedGraph;
    TD.Ph = TunePhase::AbTuned;
    if (T.Started < K) {
      ++T.Started;
      TD.Counted = true;
    }
    break;
  case TunePhase::AbGeneric:
    TD.Ph = TunePhase::AbGeneric; // Graph stays null: the generic arm.
    if (T.Started < K) {
      ++T.Started;
      TD.Counted = true;
    }
    break;
  case TunePhase::Tuned:
    TD.Graph = T.TunedGraph;
    TD.Ph = TunePhase::Tuned;
    break;
  case TunePhase::Generic:
  case TunePhase::Off:
    break;
  }
  return TD;
}

void Program::tuneComplete(const TuneDispatch &D, double Seconds) const {
  const unsigned K = std::max(1u, P.Opts.TuneWindow);
  std::unique_lock<std::mutex> Lock(VarMu);
  auto It = TuneStates.find(D.Key);
  if (It == TuneStates.end())
    return;
  TuneState &T = It->second;
  if (T.Ph != D.Ph)
    return; // Stale completion from a phase that already transitioned.
  ++T.Done;
  if (Seconds >= 0.0)
    T.Samples.push_back(Seconds);
  if (T.Done < K)
    return;

  switch (T.Ph) {
  case TunePhase::Measuring: {
    // The window's last completion performs the transition: read the
    // accumulated per-map profile, decide schedules, build the tuned
    // clone. Decision and build run unlocked behind the Building flag.
    std::shared_ptr<const sdfg::SDFG> Measure = T.MeasureGraph;
    T.Ph = TunePhase::Deciding;
    T.Building = true;
    T.Started = T.Done = 0;
    T.Samples.clear();
    Lock.unlock();
    obs::Span Span("tune:" + P.Entry, "tune");
    tune::TunePolicy Policy;
    if (P.Opts.NumThreads > 0)
      Policy.Threads = static_cast<unsigned>(P.Opts.NumThreads);
    codegen::MapSchedules Schedules =
        Measure ? tune::decideSchedules(Native->mapProfile(*Measure), Policy)
                : codegen::MapSchedules();
    std::shared_ptr<const sdfg::SDFG> Tuned;
    std::string Why = "no measured map scopes";
    if (!Schedules.empty()) {
      exec::GraphTuning GT;
      GT.Schedules = Schedules;
      Tuned = buildTuneClone(tuneCloneSuffix("__tuned_", D.Key), GT, &Why);
    }
    Lock.lock();
    T.Building = false;
    // The measuring artifact is done serving either way; in-flight
    // invocations keep it alive through their own shared_ptr.
    if (T.MeasureGraph) {
      Native->releaseGraph(*T.MeasureGraph);
      T.MeasureGraph.reset();
    }
    if (Tuned) {
      T.TunedGraph = std::move(Tuned);
      T.Schedules = std::move(Schedules);
      T.Ph = TunePhase::AbTuned;
    } else {
      // Nothing to A/B — generic wins by default, recorded so warm
      // processes skip measuring this shape again.
      T.Ph = TunePhase::Generic;
      CTuneReverted->inc();
      std::fprintf(stderr,
                   "api: autotune: '%s' {%s} keeps the generic schedule "
                   "(%s)\n",
                   P.Entry.c_str(), D.Key.c_str(), Why.c_str());
      Lock.unlock();
      persistTuneRecord(D.Key, false, 0.0, 0.0, Schedules);
    }
    break;
  }
  case TunePhase::AbTuned: {
    T.TunedNs = medianNs(T.Samples);
    T.Started = T.Done = 0;
    T.Samples.clear();
    if (T.TunedNs > 0.0) {
      T.Ph = TunePhase::AbGeneric;
      break;
    }
    // Every tuned run in the window failed: revert without a baseline arm.
    T.Ph = TunePhase::Generic;
    CTuneReverted->inc();
    codegen::MapSchedules Schedules = T.Schedules;
    if (T.TunedGraph) {
      Native->releaseGraph(*T.TunedGraph);
      T.TunedGraph.reset();
    }
    Lock.unlock();
    persistTuneRecord(D.Key, false, 0.0, 0.0, Schedules);
    break;
  }
  case TunePhase::AbGeneric: {
    const double BaselineNs = medianNs(T.Samples);
    const double TunedNs = T.TunedNs;
    T.Started = T.Done = 0;
    T.Samples.clear();
    // Promote only a measured win; anything else (slower, equal, no
    // baseline samples) keeps the generic artifact — an autotuned
    // program can never serve slower steady-state than its baseline.
    const bool Promote = TunedNs > 0.0 && BaselineNs > 0.0 &&
                         TunedNs < P.Opts.TunePromoteRatio * BaselineNs;
    codegen::MapSchedules Schedules = T.Schedules;
    if (Promote) {
      T.Ph = TunePhase::Tuned;
      CTunePromoted->inc();
    } else {
      T.Ph = TunePhase::Generic;
      CTuneReverted->inc();
      if (T.TunedGraph) {
        Native->releaseGraph(*T.TunedGraph);
        T.TunedGraph.reset();
      }
    }
    Lock.unlock();
    persistTuneRecord(D.Key, Promote, BaselineNs, TunedNs, Schedules);
    break;
  }
  default:
    break;
  }
}

Program::TunePhase Program::tunePhase(
    const std::map<std::string, std::int64_t> &Values) const {
  std::map<std::string, std::int64_t> Env;
  for (const std::string &Name : SpecNames)
    if (auto It = Values.find(Name); It != Values.end())
      Env[Name] = It->second;
  std::lock_guard<std::mutex> Lock(VarMu);
  auto It = TuneStates.find(variantKey(Env));
  return It == TuneStates.end() ? TunePhase::Off : It->second.Ph;
}

codegen::MapSchedules Program::tunedSchedules(
    const std::map<std::string, std::int64_t> &Values) const {
  std::map<std::string, std::int64_t> Env;
  for (const std::string &Name : SpecNames)
    if (auto It = Values.find(Name); It != Values.end())
      Env[Name] = It->second;
  std::lock_guard<std::mutex> Lock(VarMu);
  auto It = TuneStates.find(variantKey(Env));
  return It == TuneStates.end() ? codegen::MapSchedules()
                                : It->second.Schedules;
}

std::future<InvocationResult> Program::invokeAsync(Invocation I) const {
  // The stored invocation must not hold a reference back to this program:
  // a queued self-reference would keep the program alive through its own
  // queue, and the last release could then happen on a worker thread,
  // whose destructor would join itself. The caller keeps the program
  // alive instead (destroying it cancels queued invocations — their
  // futures report broken_promise).
  I.Prog.reset();
  std::packaged_task<InvocationResult()> Task(
      [this, Inv = std::move(I), Enq = obs::nowNs()]() {
        // The queue wait happened between enqueue (producer thread) and
        // now (worker thread) — record it as a complete interval.
        if (obs::Tracer::instance().enabled())
          obs::Tracer::instance().completeSpan("queue-wait:" + P.Entry,
                                               "serve", Enq, obs::nowNs());
        return invoke(Inv);
      });
  std::future<InvocationResult> Fut = Task.get_future();
  {
    std::lock_guard<std::mutex> Lock(PoolMu);
    if (PoolWorkers.empty()) {
      unsigned N = std::thread::hardware_concurrency();
      N = std::max(1u, std::min(N, 4u));
      for (unsigned W = 0; W < N; ++W)
        PoolWorkers.emplace_back([this] {
          for (;;) {
            std::packaged_task<InvocationResult()> Job;
            {
              std::unique_lock<std::mutex> WLock(PoolMu);
              PoolCv.wait(WLock,
                          [this] { return PoolStop || !PoolQueue.empty(); });
              // Stop wins over a non-empty queue: queued-but-unstarted
              // invocations are cancelled (their packaged_tasks die with
              // the deque, so the futures report broken_promise) — the
              // documented destruction contract.
              if (PoolStop)
                return;
              Job = std::move(PoolQueue.front());
              PoolQueue.pop_front();
            }
            Job();
          }
        });
    }
    PoolQueue.push_back(std::move(Task));
  }
  CAsync->inc();
  PoolCv.notify_one();
  return Fut;
}
