//===- Api.h - umbrella header for the embedding runtime API ------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything an embedder needs: api::Compiler (build options, compile),
/// api::Program (immutable, thread-safe, invoke-many), api::Invocation
/// (per-call buffer binding). See examples/quickstart.cpp for the
/// canonical walkthrough and DESIGN.md ("Embedding API") for the
/// lifecycle and thread-safety contract.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_API_API_H
#define DCIR_API_API_H

#include "api/Compiler.h"
#include "api/Program.h"

#endif // DCIR_API_API_H
