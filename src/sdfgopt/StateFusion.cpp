//===- StateFusion.cpp - enlarging pure dataflow regions (§6.1) ---------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DaCe's simplification core: consecutive states connected by an
/// unconditional, assignment-free edge merge into one dataflow graph with
/// ordering edges preserving every RAW/WAR/WAW dependence. Afterwards,
/// single-state transient scalars are inlined into direct tasklet-to-tasklet
/// value edges — this is what turns DCIR's one-op-per-state chains back into
/// large analyzable dataflow regions.
///
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"
#include "sdfgopt/Utils.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;

namespace {

/// Per-container reader/writer nodes within a state part.
struct AccessSummary {
  std::map<std::string, std::set<int>> Readers; // data -> node ids
  std::map<std::string, std::set<int>> Writers;
};

AccessSummary summarize(const State &S, const SDFG &G) {
  AccessSummary Sum;
  for (const auto &E : S.edges()) {
    if (E.M.isEmpty())
      continue;
    const auto *SrcA = dyn_cast<AccessNode>(S.getNode(E.Src));
    const auto *DstA = dyn_cast<AccessNode>(S.getNode(E.Dst));
    if (SrcA) // Read of SrcA's container by E.Dst.
      Sum.Readers[SrcA->getData()].insert(E.Dst);
    if (DstA) // Write to DstA's container performed by E.Src.
      Sum.Writers[DstA->getData()].insert(E.Src);
    // Scalars referenced inside the subset are read by the moving node.
    std::set<std::string> Refs;
    E.M.Subset.collectSymbols(Refs);
    for (const std::string &R : Refs)
      if (G.hasData(R))
        Sum.Readers[R].insert(SrcA ? E.Dst : E.Src);
  }
  return Sum;
}

bool fuseOnce(SDFG &G) {
  for (const auto &E : G.interstateEdges()) {
    if (E.Condition && !E.Condition.isConstant())
      continue;
    if (E.Condition && E.Condition.constantValue() == 0)
      continue;
    if (!E.Assignments.empty())
      continue;
    State *S1 = G.getState(E.Src);
    State *S2 = G.getState(E.Dst);
    if (!S1 || !S2 || S1 == S2)
      continue;
    if (S2 == G.getStartState())
      continue;
    if (G.outEdges(S1).size() != 1 || G.inEdges(S2).size() != 1)
      continue;

    AccessSummary Sum1 = summarize(*S1, G);
    AccessSummary Sum2 = summarize(*S2, G);
    std::map<int, Node *> Map = S1->absorb(*S2);

    // Ordering edges (empty memlets): RAW, WAW, then WAR.
    auto link = [&](int A, Node *B) {
      // Skip duplicates cheaply; the graphs are small.
      for (const auto &Ex : S1->edges())
        if (Ex.Src == A && Ex.Dst == B->getId() && Ex.M.isEmpty() &&
            Ex.SrcConn.empty())
          return;
      S1->connect(S1->getNode(A), "", B, "", Memlet());
    };
    for (const auto &[Data, W1] : Sum1.Writers) {
      auto R2 = Sum2.Readers.find(Data);
      if (R2 != Sum2.Readers.end())
        for (int A : W1)
          for (int B : R2->second)
            link(A, Map[B]);
      auto W2 = Sum2.Writers.find(Data);
      if (W2 != Sum2.Writers.end())
        for (int A : W1)
          for (int B : W2->second)
            link(A, Map[B]);
    }
    for (const auto &[Data, R1] : Sum1.Readers) {
      auto W2 = Sum2.Writers.find(Data);
      if (W2 != Sum2.Writers.end())
        for (int A : R1)
          for (int B : W2->second)
            link(A, Map[B]);
    }

    // Rewire the state machine: S2's out-edges now leave S1.
    for (auto &IE : G.interstateEdges())
      if (IE.Src == S2->getId())
        IE.Src = S1->getId();
    G.eraseState(S2); // Also removes the fused edge.
    return true;
  }
  return false;
}

/// Inlines transient scalars whose every appearance is inside one state and
/// that are not referenced symbolically: the defining tasklet's value flows
/// directly to the consumers over value edges.
unsigned inlineIntraStateScalars(SDFG &G) {
  unsigned Inlined = 0;
  std::set<std::string> Referenced = collectReferencedNames(G);
  std::vector<std::string> Candidates;
  for (const auto &[Name, D] : G.descs())
    if (D.K == DataDesc::Kind::Scalar && D.Transient &&
        !Referenced.count(Name))
      Candidates.push_back(Name);

  for (const std::string &Name : Candidates) {
    // Locate the single state containing every access.
    State *Home = nullptr;
    bool Multiple = false;
    for (const auto &S : G.states()) {
      for (const auto &N : S->nodes()) {
        const auto *A = dyn_cast<AccessNode>(N.get());
        if (!A || A->getData() != Name)
          continue;
        if (Home && Home != S.get())
          Multiple = true;
        Home = S.get();
      }
    }
    if (!Home || Multiple)
      continue;
    // One write from a tasklet, WCR-free; reads feed tasklets.
    const DataflowEdge *Write = nullptr;
    std::vector<const DataflowEdge *> Reads;
    bool Complex = false;
    for (const auto &E : Home->edges()) {
      const auto *SrcA = dyn_cast<AccessNode>(Home->getNode(E.Src));
      const auto *DstA = dyn_cast<AccessNode>(Home->getNode(E.Dst));
      if (DstA && DstA->getData() == Name && !E.M.isEmpty()) {
        if (Write || !E.M.Wcr.empty() ||
            !isa<Tasklet>(Home->getNode(E.Src)))
          Complex = true;
        else
          Write = &E;
      }
      if (SrcA && SrcA->getData() == Name) {
        if (E.M.isEmpty() || !isa<Tasklet>(Home->getNode(E.Dst)))
          Complex = true;
        else
          Reads.push_back(&E);
      }
    }
    if (!Write || Complex)
      continue;
    int SrcTasklet = Write->Src;
    std::string SrcConn = Write->SrcConn;
    // Rewire each read to a direct value edge.
    std::vector<DataflowEdge> NewEdges;
    for (const DataflowEdge *R : Reads) {
      DataflowEdge VE;
      VE.Src = SrcTasklet;
      VE.SrcConn = SrcConn;
      VE.Dst = R->Dst;
      VE.DstConn = R->DstConn;
      NewEdges.push_back(VE);
    }
    // Drop the access nodes (removes the old edges), then add value edges.
    std::vector<Node *> Accesses;
    for (const auto &N : Home->nodes())
      if (const auto *A = dyn_cast<AccessNode>(N.get()))
        if (A->getData() == Name)
          Accesses.push_back(N.get());
    for (Node *N : Accesses)
      Home->eraseNode(N);
    for (const DataflowEdge &VE : NewEdges)
      Home->connect(Home->getNode(VE.Src), VE.SrcConn,
                    Home->getNode(VE.Dst), VE.DstConn, Memlet());
    G.removeData(Name);
    ++Inlined;
  }
  return Inlined;
}

} // namespace

unsigned dcir::sdfgopt::fuseStates(SDFG &G) {
  unsigned Fused = 0;
  while (fuseOnce(G))
    ++Fused;
  Fused += inlineIntraStateScalars(G);
  return Fused;
}
