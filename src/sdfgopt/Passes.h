//===- Passes.h - data-centric SDFG passes (paper §6) -------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-centric optimization suite DCIR adds to DaCe (paper §6). Each
/// pass mutates the SDFG in place and returns how many rewrites it applied,
/// so pipelines can iterate to a fixpoint and benches can report
/// elimination counts (e.g. the paper's "63 arrays and scalars eliminated").
///
///   Inference (§6.1):   promoteScalarsToSymbols, propagateSymbols,
///                       fuseStates (with dataflow simplification),
///                       detectUpdates (AugAssignToWCR)
///   -O1 (§6.2):         eliminateDeadStates, propagateConstantWrites,
///                       eliminateDeadDataflow, consolidateMemlets,
///                       eliminateEmptyLoops
///   -O2 (§6.3):         preAllocateMemory, fuseMemoryReducingLoops
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SDFGOPT_PASSES_H
#define DCIR_SDFGOPT_PASSES_H

#include "sdfg/SDFG.h"

namespace dcir {
namespace sdfgopt {

/// Aggregate counters filled in by runSimplify/runAutoOptimize.
struct OptReport {
  unsigned ScalarsPromoted = 0;
  unsigned SymbolsPropagated = 0;
  unsigned StatesFused = 0;
  unsigned UpdatesDetected = 0;
  unsigned DeadStates = 0;
  unsigned DeadDataflowNodes = 0;
  unsigned ArraysEliminated = 0;
  unsigned MemletsConsolidated = 0;
  unsigned StackPromotions = 0;
  unsigned LoopsFused = 0;
  unsigned ConstantsPropagated = 0;
  unsigned EmptyLoopsRemoved = 0;
  unsigned LoopsConvertedToMaps = 0;
  unsigned ReductionMaps = 0;

  /// Containers and scalars removed in total (paper §7.3 reports 63 across
  /// three snippets).
  unsigned containersEliminated() const {
    return ScalarsPromoted + ArraysEliminated;
  }
};

//===----------------------------------------------------------------------===//
// Inference (§6.1)
//===----------------------------------------------------------------------===//

/// Scalar-to-symbol promotion: integer scalars written by exactly one
/// symbolically-expressible tasklet become interstate symbols.
unsigned promoteScalarsToSymbols(sdfg::SDFG &G);

/// Symbol propagation: forwards symbols assigned once whose value is
/// constant over the whole execution; solves simple equations.
unsigned propagateSymbols(sdfg::SDFG &G);

/// State fusion: merges unconditional straight-line states and enlarges
/// pure dataflow regions; inlines single-use intra-state scalars.
unsigned fuseStates(sdfg::SDFG &G);

/// Update detection: read-modify-write of the same location through an
/// associative operator becomes a WCR memlet.
unsigned detectUpdates(sdfg::SDFG &G);

//===----------------------------------------------------------------------===//
// Data movement reduction (§6.2)
//===----------------------------------------------------------------------===//

/// Removes interstate edges with provably-false conditions and unreachable
/// states.
unsigned eliminateDeadStates(sdfg::SDFG &G);

/// If a container's only writes store one constant over its full extent,
/// replaces its reads by the constant (enables whole-loop elision, the
/// paper's Fig. 2 headline).
unsigned propagateConstantWrites(sdfg::SDFG &G);

/// Flow-sensitive dead dataflow elimination: computations whose results
/// only reach dead transients are removed; dead containers are dropped.
/// \p Report accumulates eliminated containers.
unsigned eliminateDeadDataflow(sdfg::SDFG &G, OptReport *Report = nullptr);

/// Unions duplicate access nodes and overlapping memlets within states.
unsigned consolidateMemlets(sdfg::SDFG &G);

/// Removes loop skeletons whose bodies became empty.
unsigned eliminateEmptyLoops(sdfg::SDFG &G);

//===----------------------------------------------------------------------===//
// Memory scheduling (§6.3)
//===----------------------------------------------------------------------===//

/// Storage-class assignment: small constant-size transients go on the
/// stack; scalars live in registers.
unsigned preAllocateMemory(sdfg::SDFG &G);

/// Memory-reducing loop fusion: merges consecutive loops over the same
/// range that communicate through an otherwise-unused element-wise
/// transient, shrinking the intermediate to a scalar.
unsigned fuseMemoryReducingLoops(sdfg::SDFG &G);

//===----------------------------------------------------------------------===//
// Auto-parallelization (§6.3, paper Table 1: sdfg.map)
//===----------------------------------------------------------------------===//

/// Loop-to-map conversion: rewrites sequential state-machine loops whose
/// iterations are provably independent into parametric-parallel
/// MapEntry/MapExit scopes; reduction loops matching an associative
/// read-modify-write pattern become maps with write-conflict-resolution
/// memlets. Nested conversions produce multi-parameter (collapsible) or
/// nested maps. \p Report accumulates LoopsConvertedToMaps/ReductionMaps.
/// Returns the number of loops converted.
unsigned convertLoopsToMaps(sdfg::SDFG &G, OptReport *Report = nullptr);

//===----------------------------------------------------------------------===//
// Drivers
//===----------------------------------------------------------------------===//

/// DaCe's sdfg.simplify() equivalent (-O1): inference + data movement
/// reduction to a fixpoint.
void runSimplify(sdfg::SDFG &G, OptReport &Report);

/// Auto-optimizer (-O2): simplify + memory scheduling + (unless
/// \p ParallelizeLoops is false) loop-to-map auto-parallelization.
void runAutoOptimize(sdfg::SDFG &G, OptReport &Report,
                     bool ParallelizeLoops = true);

} // namespace sdfgopt
} // namespace dcir

#endif // DCIR_SDFGOPT_PASSES_H
