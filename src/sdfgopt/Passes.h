//===- Passes.h - data-centric SDFG passes (paper §6) -------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-centric optimization suite DCIR adds to DaCe (paper §6). Each
/// pass mutates the SDFG in place and returns how many rewrites it applied,
/// so pipelines can iterate to a fixpoint and benches can report
/// elimination counts (e.g. the paper's "63 arrays and scalars eliminated").
///
///   Inference (§6.1):   promoteScalarsToSymbols, propagateSymbols,
///                       fuseStates (with dataflow simplification),
///                       detectUpdates (AugAssignToWCR)
///   -O1 (§6.2):         eliminateDeadStates, propagateConstantWrites,
///                       eliminateDeadDataflow, consolidateMemlets,
///                       eliminateEmptyLoops
///   -O2 (§6.3):         preAllocateMemory, fuseMemoryReducingLoops
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_SDFGOPT_PASSES_H
#define DCIR_SDFGOPT_PASSES_H

#include "opt/PassFramework.h"
#include "sdfg/SDFG.h"

namespace dcir {
namespace sdfgopt {

/// Aggregate counters over a pipeline run. The per-field totals are an
/// aggregation of the per-pass statistics in `Passes` (filled by
/// accumulate()); a handful of sub-counters the single per-pass rewrite
/// count cannot express (ArraysEliminated, ReductionMaps,
/// ScalarsPrivatized) are written directly by the passes.
struct OptReport {
  unsigned ScalarsPromoted = 0;
  unsigned SymbolsPropagated = 0;
  unsigned StatesFused = 0;
  unsigned UpdatesDetected = 0;
  unsigned DeadStates = 0;
  unsigned DeadDataflowNodes = 0;
  unsigned ArraysEliminated = 0;
  unsigned MemletsConsolidated = 0;
  unsigned StackPromotions = 0;
  unsigned LoopsFused = 0;
  unsigned ConstantsPropagated = 0;
  unsigned EmptyLoopsRemoved = 0;
  unsigned LoopsConvertedToMaps = 0;
  unsigned ReductionMaps = 0;
  /// In-chain state fusions performed to widen convertible loop bodies.
  unsigned ChainStatesFused = 0;
  /// Transient scalars made private to a map scope during conversion.
  unsigned ScalarsPrivatized = 0;
  /// Map scopes strip-mined into tile/intra-tile parameter pairs.
  unsigned MapsTiled = 0;
  /// Loops converted without an independence proof (speculate-maps);
  /// the resulting scopes carry MapEntry::Speculative and only run
  /// parallel behind a synthesized runtime guard.
  unsigned LoopsSpeculated = 0;
  /// Symbolic expressions constant-folded by specialize-symbols.
  unsigned SymbolsSpecialized = 0;

  /// Per-pass instrumentation (rewrites, invocations, wall-time) of every
  /// pipeline run folded into this report.
  opt::PipelineReport Passes;

  /// Folds \p R's per-pass rewrite counts into the legacy aggregate
  /// counters (the field <- pass-name mapping lives in Drivers.cpp) and
  /// merges it into `Passes`. Counters the conversion passes maintain
  /// directly through their aux sink (LoopsConvertedToMaps,
  /// ChainStatesFused, ReductionMaps, ScalarsPrivatized, ArraysEliminated)
  /// are left alone.
  void accumulate(const opt::PipelineReport &R);

  /// Containers and scalars removed in total (paper §7.3 reports 63 across
  /// three snippets).
  unsigned containersEliminated() const {
    return ScalarsPromoted + ArraysEliminated;
  }
};

//===----------------------------------------------------------------------===//
// Inference (§6.1)
//===----------------------------------------------------------------------===//

/// Scalar-to-symbol promotion: integer scalars written by exactly one
/// symbolically-expressible tasklet become interstate symbols.
unsigned promoteScalarsToSymbols(sdfg::SDFG &G);

/// Symbol propagation: forwards symbols assigned once whose value is
/// constant over the whole execution; solves simple equations.
unsigned propagateSymbols(sdfg::SDFG &G);

/// State fusion: merges unconditional straight-line states and enlarges
/// pure dataflow regions; inlines single-use intra-state scalars.
unsigned fuseStates(sdfg::SDFG &G);

/// Update detection: read-modify-write of the same location through an
/// associative operator becomes a WCR memlet.
unsigned detectUpdates(sdfg::SDFG &G);

//===----------------------------------------------------------------------===//
// Data movement reduction (§6.2)
//===----------------------------------------------------------------------===//

/// Removes interstate edges with provably-false conditions and unreachable
/// states.
unsigned eliminateDeadStates(sdfg::SDFG &G);

/// If a container's only writes store one constant over its full extent,
/// replaces its reads by the constant (enables whole-loop elision, the
/// paper's Fig. 2 headline).
unsigned propagateConstantWrites(sdfg::SDFG &G);

/// Flow-sensitive dead dataflow elimination: computations whose results
/// only reach dead transients are removed; dead containers are dropped.
/// \p Report accumulates eliminated containers.
unsigned eliminateDeadDataflow(sdfg::SDFG &G, OptReport *Report = nullptr);

/// Unions duplicate access nodes and overlapping memlets within states.
unsigned consolidateMemlets(sdfg::SDFG &G);

/// Removes loop skeletons whose bodies became empty.
unsigned eliminateEmptyLoops(sdfg::SDFG &G);

//===----------------------------------------------------------------------===//
// Memory scheduling (§6.3)
//===----------------------------------------------------------------------===//

/// Storage-class assignment: small constant-size transients go on the
/// stack; scalars live in registers.
unsigned preAllocateMemory(sdfg::SDFG &G);

/// Memory-reducing loop fusion: merges consecutive loops over the same
/// range that communicate through an otherwise-unused element-wise
/// transient, shrinking the intermediate to a scalar.
unsigned fuseMemoryReducingLoops(sdfg::SDFG &G);

//===----------------------------------------------------------------------===//
// Auto-parallelization (§6.3, paper Table 1: sdfg.map)
//===----------------------------------------------------------------------===//

/// In-chain state fusion: inside a converter-shaped loop body whose chain
/// holds more than one dataflow state, merges consecutive dataflow states
/// (linking top-level scopes with dependence ordering edges) when the
/// connecting edges carry only dead assignments — the shape the
/// loop-to-map converter leaves behind after converting an inner loop,
/// and what blocks gemm/syrk outer-nest conversion. \p Report (optional)
/// accumulates ChainStatesFused. Returns the number of fusions.
unsigned fuseStatesInChains(sdfg::SDFG &G, OptReport *Report = nullptr);

/// One sweep of loop-to-map conversion: rewrites sequential state-machine
/// loops whose iterations are provably independent into
/// parametric-parallel MapEntry/MapExit scopes; reduction loops matching
/// an associative read-modify-write pattern become maps with
/// write-conflict-resolution memlets; transient scalars written before
/// every read inside the body (LICM-hoisted temporaries) are privatized
/// into the map scope. Nested conversions produce multi-parameter
/// (collapsible) or nested maps. \p Report (optional) accumulates
/// LoopsConvertedToMaps and the ReductionMaps/ScalarsPrivatized
/// sub-counters. Returns the number of loops converted this sweep.
unsigned convertLoopsToMapsOnce(sdfg::SDFG &G, OptReport *Report = nullptr);

/// Fixpoint driver over {fuseStatesInChains, convertLoopsToMapsOnce}.
/// \p Report (optional) also accumulates LoopsConvertedToMaps and
/// ChainStatesFused. Returns the number of loops converted.
unsigned convertLoopsToMaps(sdfg::SDFG &G, OptReport *Report = nullptr);

/// One sweep of *speculative* loop-to-map conversion (the hybrid
/// analysis of ROADMAP's "speculative parallelization" item): rewrites
/// converter-shaped loops that the proving pass left behind — typically
/// because a subscript is indirect (`out[idx[i]]`), a stride is symbolic
/// (`A[s*i]`), or two accesses of one container may overlap
/// (`A[i] = A[i] + A[i+k]`) — into map scopes *without* an independence
/// proof, marking them MapEntry::Speculative. Serial execution of such a
/// map (the interpreter, and the native backend without a guard) is
/// in-order and therefore exactly the original loop; running one in
/// parallel is only legal behind a runtime guard synthesized by the
/// static analyzer (analysis::synthesizeGuards) and selected via
/// CodegenOptions::SpeculativeMaps. Index scalars the frontend
/// materializes for indirect subscripts are privatized under a relaxed
/// write-dominates-use rule; loops carrying a genuine cross-iteration
/// scalar dependence are refused (no guard could version them). Runs
/// after the proving fixpoint — registered as "speculate-maps", outside
/// the default groups. \p Report (optional) accumulates LoopsSpeculated
/// and ScalarsPrivatized. Returns the number of loops converted.
unsigned convertLoopsToMapsSpeculativeOnce(sdfg::SDFG &G,
                                           OptReport *Report = nullptr);

//===----------------------------------------------------------------------===//
// Map tiling for cache locality (the polyhedral-style blocking pass)
//===----------------------------------------------------------------------===//

/// Tile-size knob for tileMaps, threaded from pipeline::CompileOptions
/// (the benches' `--tile=`). Empty TileSizes disables the pass entirely
/// (the default), so pipelines registering "tile-maps" stay no-ops until
/// a caller opts in.
struct TilingOptions {
  /// Per-dimension tile sizes: dimension d of a map uses
  /// TileSizes[min(d, TileSizes.size()-1)]. Entries must be >= 2.
  std::vector<unsigned> TileSizes;

  bool enabled() const { return !TileSizes.empty(); }
  unsigned sizeFor(size_t Dim) const {
    return TileSizes.empty()
               ? 0
               : TileSizes[Dim < TileSizes.size() ? Dim
                                                  : TileSizes.size() - 1];
  }
};

/// Strip-mines rectangular dimensions of top-level map scopes into
/// tile/intra-tile parameter pairs (`i` becomes `i__tile` stepping by the
/// tile size plus an intra strip `[i__tile, min(i__tile + T, end))` that
/// keeps the original parameter name, so memlet subsets never change).
/// Legality/profitability rules (see DESIGN.md "Map tiling"):
///   * only dimensions with unit step and *proven constant* trip count
///     >= 2x the tile size are tiled (at least two full tiles);
///   * only dimensions no other dimension's range references (parameter
///     reordering must not break triangular bound dependences);
///   * states inside sequential state-machine loops are skipped — the
///     loop may still be converted or extended by loops-to-maps, and the
///     grain heuristic treats re-entered regions strictly.
/// Tiled parameters are ordered [tile dims, untiled dims, intra dims], so
/// the parallel backend keeps its work-sharing pragma and `collapse` on
/// the rectangular tile loops while intra-tile loops stay serial. The
/// pass is idempotent: tile dims (step > 1) and intra dims (parameter-
/// dependent bounds) are never re-tiled. \p Report (optional) accumulates
/// MapsTiled. Returns the number of maps tiled.
unsigned tileMaps(sdfg::SDFG &G, const TilingOptions &Opts,
                  OptReport *Report = nullptr);

//===----------------------------------------------------------------------===//
// Shape specialization (the re-JIT entry point)
//===----------------------------------------------------------------------===//

/// Concrete symbol values for specializeSymbols, threaded like
/// TilingOptions. Names may be SDFG symbols *or* integer scalar
/// containers — symbolic expressions reference both by name (interstate
/// conditions such as `i < n` where `n` is a runtime scalar argument).
/// Empty (the default) disables the pass entirely, so pipelines
/// registering "specialize-symbols" stay no-ops until a caller binds
/// values.
struct SpecializationOptions {
  std::map<std::string, std::int64_t> SymbolValues;

  bool enabled() const { return !SymbolValues.empty(); }
};

/// The specialize-symbols pass: substitutes the bound values into every
/// symbolic expression of the graph — container shapes, interstate
/// conditions and assignments, map ranges, memlet subsets, and symbolic
/// tasklet sub-expressions — and constant-folds the results. Symbols and
/// containers stay *declared* (the call signature, and with it
/// `__dcir_signature`, is unchanged; the substituted parameters are
/// simply dead), so a specialized clone remains ABI-compatible with the
/// generic artifact. Returns the number of expressions changed — zero
/// signals the bindings touched nothing and the caller should fall back
/// to the generic artifact. Re-running the -O2 pipeline afterwards lets
/// loops-to-maps, the grain heuristic, and tile-maps act on the
/// now-constant trip counts.
unsigned specializeSymbols(sdfg::SDFG &G, const SpecializationOptions &Opts);

//===----------------------------------------------------------------------===//
// Pipeline definitions (the declarative drivers)
//===----------------------------------------------------------------------===//

/// Options threaded into the shared pipeline driver.
struct PipelineOptions {
  /// Safety limit for fixpoint groups; hitting it warns through Diags.
  unsigned MaxFixpointRounds = 64;
  /// Run the SDFG structural verifier after every pass, naming the
  /// culprit pass on failure (requires Diags).
  bool VerifyEachPass = false;
  /// Warning/error sink (optional).
  DiagnosticEngine *Diags = nullptr;
};

/// The registry every sdfgopt pass (and the "simplify"/"autoopt" pipeline
/// aliases) is registered in, for `--passes=` specs and tests. Factories
/// route the sub-counters a plain rewrite count cannot express (and the
/// $DCIR_MAX_MAP_CONVERSIONS cumulative cap) into \p Aux; when \p Aux is
/// null they share a registry-owned fallback report instead.
/// \p ParallelizeLoops governs the "autoopt" alias, keeping
/// `--passes=autoopt --parallel=off` equivalent to `-O2 --parallel=off`.
/// Lifetime contract: \p Aux — and, in the fallback case, the registry
/// itself — must outlive every pass created from the registry.
/// \p Tiling parameterizes the "tile-maps" member of the parallelize
/// group and \p Spec the "specialize-symbols" pass (both disabled by
/// default).
opt::PassRegistry<sdfg::SDFG>
passRegistry(OptReport *Aux = nullptr, bool ParallelizeLoops = true,
             const TilingOptions &Tiling = TilingOptions(),
             const SpecializationOptions &Spec = SpecializationOptions());

/// DaCe's sdfg.simplify() (-O1): one fixpoint group over inference +
/// data-movement-reduction passes.
std::unique_ptr<opt::PipelineDriver<sdfg::SDFG>>
buildSimplifyPipeline(OptReport *Aux = nullptr);

/// The auto-optimizer (-O2): simplify, interleaved memory-reducing loop
/// fusion, memory pre-allocation, and (when \p ParallelizeLoops) the
/// fixpoint(fuse-chains, loops-to-maps, tile-maps) conversion group,
/// with \p Tiling parameterizing the tiling member. When \p Spec binds
/// symbol values, "specialize-symbols" runs first, so every downstream
/// pass sees the constant-folded graph.
std::unique_ptr<opt::PipelineDriver<sdfg::SDFG>> buildAutoOptimizePipeline(
    OptReport *Aux = nullptr, bool ParallelizeLoops = true,
    const TilingOptions &Tiling = TilingOptions(),
    const SpecializationOptions &Spec = SpecializationOptions());

/// Runs \p Pipeline over \p G, folding per-pass statistics (and the
/// legacy aggregate counters) into \p Report. Returns false when
/// verify-after-each failed.
bool runPipeline(sdfg::SDFG &G, opt::PassBase<sdfg::SDFG> &Pipeline,
                 OptReport &Report,
                 const PipelineOptions &Opts = PipelineOptions());

/// DaCe's sdfg.simplify() equivalent (-O1): inference + data movement
/// reduction to a fixpoint.
void runSimplify(sdfg::SDFG &G, OptReport &Report,
                 const PipelineOptions &Opts = PipelineOptions());

/// Auto-optimizer (-O2): simplify + memory scheduling + (unless
/// \p ParallelizeLoops is false) loop-to-map auto-parallelization.
void runAutoOptimize(sdfg::SDFG &G, OptReport &Report,
                     bool ParallelizeLoops = true,
                     const PipelineOptions &Opts = PipelineOptions());

} // namespace sdfgopt
} // namespace dcir

#endif // DCIR_SDFGOPT_PASSES_H
