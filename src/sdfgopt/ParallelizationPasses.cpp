//===- ParallelizationPasses.cpp - loop-to-map auto-parallelization ----------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline payoff (§1, Table 1): lowering control-centric loops
/// into data-centric `sdfg.map` scopes exposes parametric parallelism that a
/// serial compiler cannot recover. `convertLoopsToMapsOnce` — one sweep of
/// the fixpoint group the shared pipeline driver iterates together with
/// fuseStatesInChains — walks the state machine for converter-shaped loops
/// (sdfgopt::findLoops), proves iteration independence with a symbolic
/// subscript analysis over the body's memlets, and rewrites provably
/// independent loops into MapEntry/MapExit scopes. Reduction loops whose
/// body is a read-modify-write through an associative operator are first
/// rewritten into write-conflict-resolution (WCR) memlets — the map
/// equivalent of an OpenMP reduction — and then converted too.
///
/// Legality rules (see DESIGN.md "Parallel execution"):
///   * the loop body is a straight chain of states; exactly one carries
///     dataflow, the rest only interstate symbol assignments (which are
///     substituted into the body before analysis, in chain order) —
///     multi-dataflow-state bodies are fuseStatesInChains' territory;
///   * transient scalars written before every read (LICM-hoisted
///     temporaries; sdfgopt::privatizableScalars) are exempt from the
///     dependence test and become per-iteration private storage of the
///     new map scope (MapEntry::PrivateData);
///   * for every other written container, each (write, write) and
///     (write, read) subset pair — WCR writes counted as writes — must be
///     provably disjoint across distinct iterations: some dimension
///     indexes as `a*iv + b` on both sides with the same nonzero constant
///     `a` and identical, iteration-invariant `b`
///     (sdfgopt::subsetsDisjointAcrossParam);
///   * when that proof fails, all-WCR containers are still exempt
///     (conflicts resolve by definition) — so mixed WCR/plain access is
///     legal exactly when disjointness covers all pairs (gemm's outer
///     loop pins every access's row index to the outer iv);
///   * symbols assigned inside the loop must be dead outside it, and loop
///     bounds must be body-invariant and container-free.
///
/// Converting an inner loop leaves a single-state body behind, so the outer
/// loop becomes convertible on the next sweep. Its induction variable is
/// prepended to the existing map (a multi-parameter map the code generator
/// can `collapse`) — unless the inner map carries WCR writes that are
/// disjoint across the outer variable (e.g. `x[i] += A[i][j]*y[j]`), in
/// which case the state is wrapped in a fresh outer map instead, keeping
/// each reduction inside one outer iteration so the parallel backend needs
/// no atomics for it.
///
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"
#include "sdfgopt/Utils.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;
using sym::SymExpr;
using sym::SymRange;
using sym::SymSubset;

namespace {

//===----------------------------------------------------------------------===//
// Access collection
//===----------------------------------------------------------------------===//

struct Access {
  bool Write = false;
  SymSubset Subset;
  std::string Wcr; // Writes only.
};

/// Every (container, access) pair a state's memlets imply. Access-to-access
/// edges read the memlet's container and write the destination node's;
/// tasklet-to-MapExit edges are routed writes.
std::map<std::string, std::vector<Access>> collectAccesses(const State &S) {
  std::map<std::string, std::vector<Access>> Out;
  for (const auto &E : S.edges()) {
    if (E.M.isEmpty())
      continue;
    const Node *Src = S.getNode(E.Src);
    const Node *Dst = S.getNode(E.Dst);
    if (const auto *DstA = dyn_cast<AccessNode>(Dst)) {
      Out[DstA->getData()].push_back({true, E.M.Subset, E.M.Wcr});
      if (isa<AccessNode>(Src))
        Out[E.M.Data].push_back({false, E.M.Subset, ""});
    } else if (isa<AccessNode>(Src)) {
      Out[E.M.Data].push_back({false, E.M.Subset, ""});
    } else if (isa<MapExit>(Dst)) {
      Out[E.M.Data].push_back({true, E.M.Subset, E.M.Wcr});
    } else if (isa<MapEntry>(Src)) {
      Out[E.M.Data].push_back({false, E.M.Subset, ""});
    }
  }
  return Out;
}

bool isSupportedWcr(const std::string &Wcr) {
  return Wcr == "add" || Wcr == "mul" || Wcr == "min" || Wcr == "max";
}

/// Checks that every iteration of \p Iv touches provably independent data.
/// \p Varying holds symbols that change within one iteration (inner map
/// params). \p Private holds transient scalars proven privatizable (each
/// iteration writes before reading; see privatizableScalars), which are
/// exempt entirely. For other containers, either every (write, access)
/// pair — WCR writes counted as writes — is disjoint across distinct
/// iterations, or every access is a supported WCR write (conflicts then
/// resolve by definition). A container mixing WCR and plain accesses is
/// legal exactly when the disjointness proof covers all pairs (e.g. the
/// gemm outer loop: the beta-scale writes, their reads, and the k-loop's
/// WCR updates all pin the row index to the outer iv).
bool iterationsIndependent(
    const std::map<std::string, std::vector<Access>> &Accesses,
    const std::string &Iv, const std::set<std::string> &Varying,
    const std::set<std::string> &Private,
    const std::map<std::string, std::pair<std::int64_t, std::int64_t>>
        *VaryingBounds = nullptr) {
  for (const auto &[Data, List] : Accesses) {
    if (Private.count(Data))
      continue; // Per-iteration private storage carries no dependences.
    bool AnyWrite = false, AnyWcr = false;
    for (const Access &A : List) {
      AnyWrite |= A.Write;
      AnyWcr |= A.Write && !A.Wcr.empty();
    }
    if (!AnyWrite)
      continue; // Read-only containers never carry dependences.
    // Every (write, write) and (write, read) pair — including a write
    // against itself, whose subset must vary injectively with the iv —
    // must be disjoint across distinct iterations.
    bool AllDisjoint = true;
    for (size_t I = 0; I < List.size() && AllDisjoint; ++I) {
      if (!List[I].Write)
        continue;
      for (size_t J = 0; J < List.size(); ++J)
        if (!subsetsDisjointAcrossParam(List[I].Subset, List[J].Subset, Iv,
                                        Varying, VaryingBounds))
          AllDisjoint = false;
    }
    if (AllDisjoint)
      continue;
    if (AnyWcr) {
      // WCR resolves write conflicts by definition; but a plain read or a
      // plain write of the same container would observe partial updates.
      bool AllWcr = true;
      for (const Access &A : List)
        if (!A.Write || A.Wcr.empty() || !isSupportedWcr(A.Wcr))
          AllWcr = false;
      if (AllWcr)
        continue;
    }
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Reduction detection: read-modify-write chains to WCR memlets
//===----------------------------------------------------------------------===//

/// Inlines the expression tree a tasklet output computes, following value
/// edges through upstream (non-opaque) tasklets. Memlet reads become Input
/// leaves named after the feeding edge's index in the state's edge vector;
/// \p Leaves maps those names back to indices. \p Chain collects every
/// tasklet traversed. Returns nullopt when the chain is not analyzable.
std::optional<TExpr>
inlineTaskletExpr(const State &S, const Tasklet *T, const std::string &Conn,
                  std::map<std::string, size_t> &Leaves,
                  std::set<int> &Chain, int Depth = 0) {
  if (T->Opaque || Depth > 16)
    return std::nullopt;
  Chain.insert(T->getId());
  auto CodeIt = T->Code.find(Conn);
  if (CodeIt == T->Code.end())
    return std::nullopt;
  std::map<std::string, TExpr> Bind;
  std::set<std::string> Ins;
  CodeIt->second.collectInputs(Ins);
  for (const std::string &In : Ins) {
    // Locate the feeding edge by index (stable names survive mutation).
    size_t FeedIdx = S.edges().size();
    for (size_t I = 0; I < S.edges().size(); ++I)
      if (S.edges()[I].Dst == T->getId() && S.edges()[I].DstConn == In)
        FeedIdx = I;
    if (FeedIdx == S.edges().size())
      return std::nullopt;
    const DataflowEdge &Feed = S.edges()[FeedIdx];
    if (Feed.M.isEmpty()) {
      const auto *Up = dyn_cast<Tasklet>(S.getNode(Feed.Src));
      if (!Up || Feed.SrcConn.empty())
        return std::nullopt;
      auto Sub =
          inlineTaskletExpr(S, Up, Feed.SrcConn, Leaves, Chain, Depth + 1);
      if (!Sub)
        return std::nullopt;
      Bind[In] = *Sub;
    } else {
      std::string LeafName = "@e" + std::to_string(FeedIdx);
      Leaves[LeafName] = FeedIdx;
      Bind[In] = TExpr::input(LeafName, CodeIt->second.Ty);
    }
  }
  TExpr Out = CodeIt->second;
  for (const auto &[In, Repl] : Bind)
    Out = replaceInputWithExpr(Out, In, Repl);
  return Out;
}

bool usesInput(const TExpr &E, const std::string &Name) {
  std::set<std::string> Ins;
  E.collectInputs(Ins);
  return Ins.count(Name) > 0;
}

/// Removes nodes that became dead after a reduction rewrite: tasklets with
/// no out-edges and access nodes with no edges at all, to a fixpoint.
void collectDeadChain(State &S) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &N : S.nodes()) {
      if (const auto *T = dyn_cast<Tasklet>(N.get())) {
        if (S.outEdges(T).empty()) {
          S.eraseNode(N.get());
          Changed = true;
          break;
        }
      } else if (const auto *A = dyn_cast<AccessNode>(N.get())) {
        if (S.inEdges(A).empty() && S.outEdges(A).empty()) {
          S.eraseNode(N.get());
          Changed = true;
          break;
        }
      }
    }
  }
}

/// Rewrites `x = x op rest` chains in \p S into WCR memlets when the
/// location `x` is invariant in \p Iv (a reduction the plain disjointness
/// analysis must otherwise reject). Generalizes detectUpdates to chains of
/// tasklets connected by value edges (the translator's copy tasklets).
/// Each rewrite is semantics-preserving on its own, so a later refusal of
/// the surrounding loop leaves a still-correct graph.
unsigned rewriteReductions(State &S, const std::string &Iv) {
  unsigned Rewritten = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t WI = 0; WI < S.edges().size() && !Changed; ++WI) {
      const DataflowEdge &WE = S.edges()[WI];
      if (WE.M.isEmpty() || !WE.M.Wcr.empty())
        continue;
      const auto *T = dyn_cast<Tasklet>(S.getNode(WE.Src));
      const auto *Aout = dyn_cast<AccessNode>(S.getNode(WE.Dst));
      if (!T || !Aout || T->Opaque)
        continue;
      // Only iv-invariant targets need WCR; iv-varying writes are handled
      // by the disjointness analysis directly.
      {
        std::set<std::string> Syms;
        WE.M.Subset.collectSymbols(Syms);
        if (Syms.count(Iv))
          continue;
      }
      const std::string Data = Aout->getData();
      // The body must touch this container exactly twice: one read and
      // this write, at the same subset.
      size_t ReadIdx = S.edges().size();
      bool Clean = true;
      for (size_t I = 0; I < S.edges().size(); ++I) {
        const DataflowEdge &E2 = S.edges()[I];
        if (I == WI || E2.M.isEmpty())
          continue;
        // A copy edge writes the destination node's container even though
        // its memlet names the source, so check both.
        const auto *DstA2 = dyn_cast<AccessNode>(S.getNode(E2.Dst));
        if (E2.M.Data != Data && !(DstA2 && DstA2->getData() == Data))
          continue;
        const bool IsRead = E2.M.Data == Data &&
                            isa<AccessNode>(S.getNode(E2.Src));
        if (IsRead && ReadIdx == S.edges().size() &&
            E2.M.Subset.equals(WE.M.Subset) &&
            isa<Tasklet>(S.getNode(E2.Dst)))
          ReadIdx = I;
        else
          Clean = false;
      }
      if (ReadIdx == S.edges().size() || !Clean)
        continue;
      std::map<std::string, size_t> Leaves;
      std::set<int> Chain;
      auto Inlined = inlineTaskletExpr(S, T, WE.SrcConn, Leaves, Chain);
      if (!Inlined)
        continue;
      // Match op(self, rest) for an associative op, self = the read leaf.
      if (Inlined->K != TExpr::Kind::Op || Inlined->Children.size() != 2 ||
          !isSupportedWcr(Inlined->Name))
        continue;
      std::string SelfLeaf;
      for (const auto &[Name, Idx] : Leaves)
        if (Idx == ReadIdx)
          SelfLeaf = Name;
      if (SelfLeaf.empty())
        continue;
      const std::string Op = Inlined->Name;
      TExpr Rest;
      bool Matched = false;
      for (int Side = 0; Side < 2 && !Matched; ++Side) {
        const TExpr &Cand = Inlined->Children[Side];
        const TExpr &Other = Inlined->Children[1 - Side];
        if (Cand.K == TExpr::Kind::Input && Cand.Name == SelfLeaf &&
            !usesInput(Other, SelfLeaf)) {
          Rest = Other;
          Matched = true;
        }
      }
      if (!Matched)
        continue;
      // The dying chain must be self-contained: every chain tasklet's
      // out-edges stay within the chain or are the rewritten write, and no
      // leaf container is written elsewhere in the state (erasing the
      // chain drops its ordering edges, so anti-dependences must not rely
      // on them).
      bool SelfContained = true;
      for (int Id : Chain)
        for (const auto &E2 : S.edges())
          if (E2.Src == Id &&
              !(Chain.count(E2.Dst) || (&E2 - S.edges().data()) ==
                                           static_cast<std::ptrdiff_t>(WI)))
            SelfContained = false;
      // A chain-free path from a node to another proves their order
      // survives the rewrite (the dying chain's edges are gone).
      auto OrderedAvoidingChain = [&](int From, int To) {
        if (From == To)
          return true;
        std::set<int> Reach = {From};
        std::vector<int> Work = {From};
        while (!Work.empty()) {
          int Id = Work.back();
          Work.pop_back();
          for (const auto &E2 : S.edges()) {
            if (E2.Src != Id || Chain.count(E2.Dst))
              continue;
            if (E2.Dst == To)
              return true;
            if (Reach.insert(E2.Dst).second)
              Work.push_back(E2.Dst);
          }
        }
        return false;
      };
      for (const auto &[Name, Idx] : Leaves) {
        if (Idx == ReadIdx)
          continue;
        const std::string &LeafData = S.edges()[Idx].M.Data;
        const int LeafSrc = S.edges()[Idx].Src;
        for (const auto &E2 : S.edges())
          if (!E2.M.isEmpty() && !E2.SrcConn.empty() &&
              isa<Tasklet>(S.getNode(E2.Src)) &&
              isa<AccessNode>(S.getNode(E2.Dst)) &&
              cast<AccessNode>(S.getNode(E2.Dst))->getData() == LeafData) {
            // Another write to a leaf container: fine only when a
            // chain-free path keeps the writer ordered before the leaf
            // read (e.g. a privatized scalar defined outside the inner
            // map scope, ordered through the scope's entry).
            if (!Chain.count(E2.Src) &&
                OrderedAvoidingChain(E2.Src, LeafSrc))
              continue;
            SelfContained = false;
          }
      }
      if (!SelfContained)
        continue;

      // Snapshot everything the rewrite needs before mutating the edge
      // vector (connect() may reallocate it).
      DType Ty = Rest.Ty;
      if (auto CodeIt = T->Code.find(WE.SrcConn); CodeIt != T->Code.end())
        Ty = CodeIt->second.Ty;
      Memlet OutM = WE.M;
      OutM.Wcr = Op;
      const int AoutId = Aout->getId();
      struct LeafSnap {
        std::string Name;
        int SrcNode;
        Memlet M;
      };
      std::vector<LeafSnap> LeafInfo;
      for (const auto &[Name, Idx] : Leaves) {
        if (Idx == ReadIdx || !usesInput(Rest, Name))
          continue;
        LeafInfo.push_back({Name, S.edges()[Idx].Src, S.edges()[Idx].M});
      }

      Tasklet *NewT = S.addTasklet("wcr_" + Op);
      unsigned NextIn = 0;
      TExpr NewCode = Rest;
      for (const LeafSnap &L : LeafInfo) {
        std::string Conn = "_in" + std::to_string(NextIn++);
        NewT->InConns.push_back(Conn);
        S.connect(S.getNode(L.SrcNode), "", NewT, Conn, L.M);
        NewCode = NewCode.renameInput(L.Name, Conn);
      }
      NewT->OutConns = {"_out"};
      NewCode.Ty = Ty;
      NewT->Code["_out"] = NewCode;
      S.connect(NewT, "_out", S.getNode(AoutId), "", OutM);
      // Drop the old write and self-read edges (larger index first), then
      // let the now-unconsumed chain die.
      auto &Edges = S.edges();
      size_t A = std::max(WI, ReadIdx), B = std::min(WI, ReadIdx);
      Edges.erase(Edges.begin() + A);
      Edges.erase(Edges.begin() + B);
      collectDeadChain(S);
      ++Rewritten;
      Changed = true;
    }
  }
  return Rewritten;
}

//===----------------------------------------------------------------------===//
// Loop candidate analysis
//===----------------------------------------------------------------------===//

/// A convertible loop: a straight chain of body states with exactly one
/// carrying dataflow.
struct Candidate {
  const LoopRegion *L = nullptr;
  std::vector<int> Chain;    // Body states, entry to back-edge source.
  State *Dataflow = nullptr; // The one state with nodes.
  /// Symbols assigned along the chain (excluding the iv), with their
  /// per-iteration values composed in chain order for substitution.
  std::map<std::string, SymExpr> ChainSubs;
  /// All symbols assigned on loop-owned edges (iv + chain symbols).
  std::set<std::string> AssignedSyms;
};

/// True when every container \p E references is a non-transient scalar
/// nothing in the graph ever writes — a loop-invariant runtime parameter.
/// Substituting such an expression into a map-scope subset is sound (the
/// value cannot change across iterations), and both backends resolve
/// scalar containers referenced symbolically in subsets (codegen through
/// its shadow locals, the interpreter through evalSym's scalar fallback).
bool referencesOnlyReadOnlyScalars(const sym::SymExpr &E, const SDFG &G) {
  std::set<std::string> Syms;
  E.collectSymbols(Syms);
  for (const std::string &Sym : Syms) {
    if (!G.hasData(Sym))
      continue;
    const DataDesc &D = G.desc(Sym);
    if (D.K != DataDesc::Kind::Scalar || D.Transient)
      return false;
    for (const auto &S : G.states())
      for (const auto &DE : S->edges())
        if (!DE.M.isEmpty())
          if (const auto *A = dyn_cast<AccessNode>(S->getNode(DE.Dst)))
            if (A->getData() == Sym)
              return false; // Written somewhere: not invariant.
  }
  return true;
}

/// Builds the candidate for \p L, or nullopt when the loop shape is not
/// convertible (branches in the body, multiple dataflow states, container
/// reads in control expressions, mid-chain iv assignment, ...).
/// \p AllowScalarReads relaxes the no-container-reads rule for *chain
/// assignments* only (never loop bounds): an assignment whose value reads
/// read-only scalar parameters — the frontend's hoisted subscript
/// arithmetic, `muli = i*stride` — is substituted into the body like any
/// other chain symbol. The speculative conversion opts in; the proven
/// path keeps the strict shape.
std::optional<Candidate> analyzeLoop(SDFG &G, const LoopRegion &L,
                                     bool AllowScalarReads = false) {
  State *Guard = G.getState(L.GuardId);
  if (!Guard || !Guard->nodes().empty())
    return std::nullopt;
  if (!L.Begin || !L.End)
    return std::nullopt;
  if (referencesContainer(L.Begin, G) || referencesContainer(L.End, G) ||
      referencesContainer(L.Step, G))
    return std::nullopt;
  // The interpreter requires positive map steps; demand a known-positive
  // constant (absent means 1).
  if (L.Step && (!L.Step.isConstant() || L.Step.constantValue() <= 0))
    return std::nullopt;
  // The leave edge must carry no assignments (they would run after the
  // last iteration and have no place in the rewritten graph).
  for (const auto *E : G.outEdges(Guard))
    if (E->Dst == L.ExitId && !E->Assignments.empty())
      return std::nullopt;

  Candidate C;
  C.L = &L;
  // Walk the chain guard -> entry -> ... -> guard: single unconditional
  // out-edges, no side entries, collecting assignments in execution order.
  // Bodies with more than one dataflow state are fuseStatesInChains'
  // territory; this candidate shape requires exactly one.
  auto Chain = walkLoopChain(G, L);
  if (!Chain)
    return std::nullopt;
  C.Chain = Chain->States;
  for (int Id : C.Chain) {
    State *S = G.getState(Id);
    if (S->nodes().empty())
      continue;
    if (C.Dataflow)
      return std::nullopt; // Two compute states; chain fusion first.
    C.Dataflow = S;
  }
  const std::vector<const InterstateEdge *> &ChainEdges = Chain->Edges;
  if (!C.Dataflow)
    return std::nullopt;

  std::set<std::string> BodyParams = mapParamsIn(*C.Dataflow);
  for (const InterstateEdge *E : ChainEdges) {
    const bool IsBack = E->Dst == L.GuardId;
    for (const auto &[Name, V] : E->Assignments) {
      C.AssignedSyms.insert(Name);
      if (Name == L.Iv) {
        if (!IsBack)
          return std::nullopt; // iv mutated mid-body: not a counted loop.
        continue;
      }
      if (IsBack)
        return std::nullopt; // Next-iteration state: not substitutable.
      if (BodyParams.count(Name))
        continue; // Shadowed by an inner map parameter: dead store.
      if (referencesContainer(V, G) &&
          !(AllowScalarReads && referencesOnlyReadOnlyScalars(V, G)))
        return std::nullopt;
      C.ChainSubs[Name] = V.substitute(C.ChainSubs);
    }
  }
  // Loop bounds must be invariant: no bound symbol assigned in the body.
  std::set<std::string> BoundSyms;
  L.Begin.collectSymbols(BoundSyms);
  L.End.collectSymbols(BoundSyms);
  if (L.Step)
    L.Step.collectSymbols(BoundSyms);
  if (BoundSyms.count(L.Iv))
    return std::nullopt;
  for (const std::string &S : BoundSyms)
    if (C.AssignedSyms.count(S))
      return std::nullopt;
  return C;
}

/// True when \p Name is referenced anywhere outside the loop's own states
/// and edges (so deleting the loop's assignments would change meaning).
/// Loop-owned edges are those leaving the guard or a body state; the init
/// edges into the guard may assign \p Name but not read it.
bool symbolUsedOutsideLoop(const SDFG &G, const LoopRegion &L,
                           const std::string &Name) {
  auto InLoop = [&](int StateId) {
    return StateId == L.GuardId || L.BodyStates.count(StateId) > 0;
  };
  for (const auto &S : G.states()) {
    if (InLoop(S->getId()))
      continue;
    for (const auto &E : S->edges()) {
      if (E.M.isEmpty())
        continue;
      std::set<std::string> Syms;
      E.M.Subset.collectSymbols(Syms);
      if (Syms.count(Name))
        return true;
    }
    for (const auto &N : S->nodes()) {
      if (const auto *T = dyn_cast<Tasklet>(N.get())) {
        for (const auto &[Conn, Code] : T->Code) {
          std::set<std::string> Syms;
          std::vector<const TExpr *> Work = {&Code};
          while (!Work.empty()) {
            const TExpr *E = Work.back();
            Work.pop_back();
            if (E->K == TExpr::Kind::Sym && E->Sym)
              E->Sym.collectSymbols(Syms);
            for (const TExpr &Ch : E->Children)
              Work.push_back(&Ch);
          }
          if (Syms.count(Name))
            return true;
        }
      }
      if (const auto *ME = dyn_cast<MapEntry>(N.get())) {
        if (std::find(ME->Params.begin(), ME->Params.end(), Name) !=
            ME->Params.end())
          continue; // Shadowed inside that scope.
        for (const SymRange &R : ME->Ranges) {
          std::set<std::string> Syms;
          R.collectSymbols(Syms);
          if (Syms.count(Name))
            return true;
        }
      }
    }
  }
  for (const auto &E : G.interstateEdges()) {
    if (InLoop(E.Src))
      continue; // Loop-owned: enter, chain, back, and leave edges.
    std::set<std::string> Syms;
    if (E.Condition)
      E.Condition.collectSymbols(Syms);
    const bool IsInit = E.Dst == L.GuardId;
    for (const auto &[K, V] : E.Assignments) {
      if (K == Name && !IsInit)
        return true; // Another definition of the same name elsewhere.
      V.collectSymbols(Syms);
    }
    if (Syms.count(Name))
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// The rewrite
//===----------------------------------------------------------------------===//

/// The single top-level map scope of \p S, when the state consists of
/// exactly one map plus access nodes (the shape an inner conversion leaves
/// behind). Null when the state mixes a map with other compute.
MapEntry *soleMapScope(const State &S) {
  MapEntry *Entry = nullptr;
  for (const auto &N : S.nodes()) {
    if (auto *ME = dyn_cast<MapEntry>(N.get())) {
      if (Entry)
        return nullptr; // Two top-level maps.
      Entry = ME;
    }
  }
  if (!Entry)
    return nullptr;
  std::set<int> Scope = S.scopeNodes(*Entry);
  Scope.insert(Entry->getId());
  Scope.insert(Entry->ExitId);
  for (const auto &N : S.nodes())
    if (!Scope.count(N->getId()) && !isa<AccessNode>(N.get()))
      return nullptr; // Compute outside the scope: wrap instead of extend.
  return Entry;
}

/// Rotates a map parameter that *pins* every WCR write (each update's
/// target cell determines that parameter, so distinct values touch
/// distinct cells) to the front. The parallel backend partitions the
/// first parameter across threads, turning would-be atomic updates into
/// plain ones — e.g. `y[j] += A[i][j] * x[i]` iterates (i, j) after
/// extension, but parallelizing j needs no synchronization at all.
/// Map parameters are unordered semantically (WCR updates commute), so
/// rotation is legal whenever the promoted parameter's range is free of
/// the other parameters.
void reorderParamsForWcr(const State &D, MapEntry *ME) {
  std::vector<const DataflowEdge *> Wcr;
  for (const auto &E : D.edges())
    if (!E.M.isEmpty() && !E.M.Wcr.empty())
      Wcr.push_back(&E);
  if (Wcr.empty() || ME->Params.size() < 2)
    return;
  std::set<std::string> AllParams = mapParamsIn(D);
  const std::map<std::string, std::pair<std::int64_t, std::int64_t>> Bounds =
      mapParamBounds(D);
  auto Pins = [&](const std::string &P) {
    std::set<std::string> Others = AllParams;
    Others.erase(P);
    for (const DataflowEdge *E : Wcr)
      if (!subsetsDisjointAcrossParam(E->M.Subset, E->M.Subset, P, Others,
                                      &Bounds))
        return false;
    return true;
  };
  if (Pins(ME->Params[0]))
    return;
  for (size_t K = 1; K < ME->Params.size(); ++K) {
    std::set<std::string> RangeSyms;
    ME->Ranges[K].collectSymbols(RangeSyms);
    bool RangeUsesParam = false;
    for (const std::string &Sym : RangeSyms)
      if (AllParams.count(Sym))
        RangeUsesParam = true;
    if (RangeUsesParam || !Pins(ME->Params[K]))
      continue;
    std::string P = ME->Params[K];
    SymRange R = ME->Ranges[K];
    ME->Params.erase(ME->Params.begin() + K);
    ME->Ranges.erase(ME->Ranges.begin() + K);
    ME->Params.insert(ME->Params.begin(), std::move(P));
    ME->Ranges.insert(ME->Ranges.begin(), std::move(R));
    return;
  }
}

/// Wraps every existing node of \p S in a fresh map scope over \p Iv.
/// Entry feeds the dataflow roots, sinks feed the exit, so the standard
/// scope discovery collects exactly the pre-existing nodes. Returns the
/// new entry.
MapEntry *wrapStateInMap(State &S, const std::string &Iv,
                         const SymRange &Range) {
  std::vector<Node *> Existing;
  for (const auto &N : S.nodes())
    Existing.push_back(N.get());
  std::vector<Node *> Roots, Sinks;
  for (Node *N : Existing) {
    if (S.inEdges(N).empty())
      Roots.push_back(N);
    if (S.outEdges(N).empty())
      Sinks.push_back(N);
  }
  auto [Entry, Exit] = S.addMap({Iv}, {Range});
  for (Node *N : Roots)
    S.connect(Entry, "", N, "", Memlet());
  for (Node *N : Sinks)
    S.connect(N, "", Exit, "", Memlet());
  return Entry;
}

/// Deletes the loop skeleton, leaving the (now map-carrying) dataflow state
/// wired directly between the loop's predecessors and its exit state.
/// Symbols the SDFG still references but that just lost their only
/// assignments get a dead store on a redirected edge, so callSignature()
/// (free symbols = never-assigned symbols) cannot change.
void spliceLoopOut(SDFG &G, const Candidate &C) {
  const LoopRegion &L = *C.L;
  State *D = C.Dataflow;
  for (auto &E : G.interstateEdges()) {
    if (E.Dst == L.GuardId && !L.BodyStates.count(E.Src))
      E.Dst = D->getId(); // Init edges now enter the map state directly.
  }
  auto &Edges = G.interstateEdges();
  Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                             [&](const InterstateEdge &E) {
                               auto Owns = [&](int Id) {
                                 return Id == L.GuardId ||
                                        L.BodyStates.count(Id) > 0;
                               };
                               return Owns(E.Src) && Owns(E.Dst);
                             }),
              Edges.end());
  InterstateEdge ExitE;
  ExitE.Src = D->getId();
  ExitE.Dst = L.ExitId;
  Edges.push_back(ExitE);
  std::set<std::string> StillAssigned;
  for (const auto &E : Edges)
    for (const auto &[Name, V] : E.Assignments)
      StillAssigned.insert(Name);
  std::set<std::string> Referenced = collectReferencedNames(G);
  for (const std::string &Sym : C.AssignedSyms) {
    if (StillAssigned.count(Sym))
      continue;
    if (!Referenced.count(Sym)) {
      G.symbols().erase(Sym);
      continue;
    }
    // Still referenced (as a now-shadowed map parameter): dead store.
    for (auto &E : Edges)
      if (E.Dst == D->getId()) {
        E.Assignments.push_back({Sym, SymExpr::constant(0)});
        break;
      }
  }
  for (int Id : L.BodyStates)
    if (Id != D->getId())
      if (State *S = G.getState(Id))
        G.eraseState(S);
  if (State *Guard = G.getState(L.GuardId))
    G.eraseState(Guard);
  if (!G.getStartState())
    G.setStartState(D);
}

} // namespace

unsigned dcir::sdfgopt::convertLoopsToMapsOnce(SDFG &G, OptReport *Report) {
  unsigned Converted = 0;
  // Debugging aid: $DCIR_MAX_MAP_CONVERSIONS caps the number of loops
  // converted, so a miscompare can be bisected to a single conversion.
  // The running count lives in the report, surviving across the sweeps
  // the pipeline driver re-invokes.
  unsigned DebugLimit = ~0u;
  if (const char *L = std::getenv("DCIR_MAX_MAP_CONVERSIONS"))
    DebugLimit = std::atoi(L);
  std::vector<LoopRegion> Loops = findLoops(G);
  // Innermost first: a loop containing another loop's guard is not yet
  // convertible; converting the inner one unlocks it next sweep.
  std::set<int> GuardIds;
  for (const LoopRegion &L : Loops)
    GuardIds.insert(L.GuardId);
  // States a conversion this sweep touched; loops overlapping them wait
  // for the next sweep (their discovered shape may be stale).
  std::set<int> Touched;
  for (const LoopRegion &L : Loops) {
    if ((Report ? Report->LoopsConvertedToMaps : Converted) >= DebugLimit)
      break;
    bool Innermost = true;
    for (int Id : L.BodyStates)
      if (GuardIds.count(Id))
        Innermost = false;
    if (!Innermost)
      continue;
    bool Overlaps = Touched.count(L.GuardId) || Touched.count(L.ExitId);
    for (int Id : L.BodyStates)
      if (Touched.count(Id))
        Overlaps = true;
    if (Overlaps)
      continue;
    auto C = analyzeLoop(G, L);
    if (!C)
      continue;
    bool SymsLocal = true;
    for (const std::string &Sym : C->AssignedSyms)
      if (symbolUsedOutsideLoop(G, L, Sym))
        SymsLocal = false;
    if (!SymsLocal)
      continue;
    State *D = C->Dataflow;
    // Inline the chain's per-iteration symbols (semantics-preserving
    // even if conversion is later refused: the assignments remain and
    // the substituted expressions evaluate identically at this point).
    substituteInState(*D, C->ChainSubs);

    std::set<std::string> Varying = mapParamsIn(*D);
    // LICM-hoisted temporaries written before every read are exempt from
    // the dependence test: they become per-iteration private storage of
    // the new map scope.
    std::set<std::string> Private = privatizableScalars(G, *D);
    // Constant inner trip counts (a specialization dividend) let the
    // disjointness test bound linearized offsets like `N*iv + j`.
    std::map<std::string, std::pair<std::int64_t, std::int64_t>> Bounds =
        mapParamBounds(*D);
    auto Accesses = collectAccesses(*D);
    unsigned NewWcr = 0;
    if (!iterationsIndependent(Accesses, L.Iv, Varying, Private, &Bounds)) {
      // Second chance: rewrite loop-carried read-modify-write chains
      // into WCR updates (reductions), then re-test.
      NewWcr = rewriteReductions(*D, L.Iv);
      if (NewWcr == 0)
        continue;
      Accesses = collectAccesses(*D);
      Private = privatizableScalars(G, *D);
      if (!iterationsIndependent(Accesses, L.Iv, Varying, Private, &Bounds))
        continue;
    }

    SymRange Range(L.Begin, L.End,
                   L.Step ? L.Step : SymExpr::constant(1));
    MapEntry *Inner = soleMapScope(*D);
    bool NestInstead = false;
    if (Inner) {
      // An inner WCR that is disjoint across the outer variable (e.g.
      // `x[i] += A[i][j]*y[j]` under the i-loop) stays conflict-free
      // when each outer iteration runs on one thread: nest the scopes
      // so the backend needs no atomics. Extending instead would let
      // a collapsed schedule split one reduction across threads.
      for (const auto &E : D->edges())
        if (!E.M.isEmpty() && !E.M.Wcr.empty() &&
            subsetsDisjointAcrossParam(E.M.Subset, E.M.Subset, L.Iv,
                                       Varying, &Bounds))
          NestInstead = true;
    }
    MapEntry *Outer = nullptr;
    if (Inner && !NestInstead) {
      // Prepend the outer induction variable: the code generator
      // collapses the resulting rectangular nest.
      Inner->Params.insert(Inner->Params.begin(), L.Iv);
      Inner->Ranges.insert(Inner->Ranges.begin(), Range);
      reorderParamsForWcr(*D, Inner);
      Outer = Inner;
    } else {
      Outer = wrapStateInMap(*D, L.Iv, Range);
    }
    for (const std::string &P : Private)
      if (!Outer->isPrivate(P)) {
        Outer->PrivateData.push_back(P);
        if (Report)
          ++Report->ScalarsPrivatized;
      }
    spliceLoopOut(G, *C);
    ++Converted;
    if (Report) {
      ++Report->LoopsConvertedToMaps;
      if (NewWcr)
        ++Report->ReductionMaps;
    }
    Touched.insert(L.GuardId);
    Touched.insert(L.ExitId);
    Touched.insert(L.BodyStates.begin(), L.BodyStates.end());
  }
  return Converted;
}

//===----------------------------------------------------------------------===//
// Speculative conversion (runtime-guarded maps)
//===----------------------------------------------------------------------===//

namespace {

/// Transient scalars privatizable under a relaxed write-dominates-use
/// rule. privatizableScalars refuses any scalar the graph references
/// *symbolically* — but the frontend materializes indirect subscripts as
/// exactly that shape: `out[idx[i]]` loads `idx[i]` into a transient
/// scalar referenced by the write's subset (`out[load_3]`). Privatizing
/// such a scalar is still sound when it has exactly one plain write per
/// iteration and every use — a value read, a subset reference, a tasklet
/// code symbol, or an inner map range — executes at a node strictly
/// downstream of the writer: each iteration then observes only its own
/// value, so per-thread private storage preserves semantics.
std::set<std::string> speculativelyPrivatizable(const SDFG &G,
                                                const State &D) {
  std::set<std::string> Out;
  for (const auto &[Name, Desc] : G.descs()) {
    if (Desc.K != DataDesc::Kind::Scalar || !Desc.Transient)
      continue;
    // Dead outside D: no access node, memlet, subset, tasklet code,
    // map range, or interstate expression elsewhere may mention it.
    bool Elsewhere = false;
    for (const auto &S : G.states()) {
      if (S.get() == &D)
        continue;
      for (const auto &N : S->nodes()) {
        if (const auto *A = dyn_cast<AccessNode>(N.get()))
          if (A->getData() == Name)
            Elsewhere = true;
        if (const auto *ME = dyn_cast<MapEntry>(N.get()))
          for (const SymRange &R : ME->Ranges) {
            std::set<std::string> Syms;
            R.collectSymbols(Syms);
            if (Syms.count(Name))
              Elsewhere = true;
          }
      }
      for (const auto &E : S->edges()) {
        if (E.M.isEmpty())
          continue;
        std::set<std::string> Syms;
        E.M.Subset.collectSymbols(Syms);
        if (E.M.Data == Name || Syms.count(Name))
          Elsewhere = true;
      }
    }
    for (const auto &E : G.interstateEdges()) {
      std::set<std::string> Syms;
      if (E.Condition)
        E.Condition.collectSymbols(Syms);
      for (const auto &[K, V] : E.Assignments) {
        if (K == Name)
          Elsewhere = true;
        V.collectSymbols(Syms);
      }
      if (Syms.count(Name))
        Elsewhere = true;
    }
    if (Elsewhere)
      continue;

    // Exactly one WCR-free write in D; collect every use site with the
    // node at which it executes (stores at the producer, reads at the
    // consumer).
    const DataflowEdge *Write = nullptr;
    std::vector<int> UseSites;
    bool Complex = false;
    for (const auto &E : D.edges()) {
      if (E.M.isEmpty())
        continue;
      const auto *SrcA = dyn_cast<AccessNode>(D.getNode(E.Src));
      const auto *DstA = dyn_cast<AccessNode>(D.getNode(E.Dst));
      const bool IsWrite =
          (DstA && DstA->getData() == Name) ||
          (E.M.Data == Name && !SrcA && isa<MapExit>(D.getNode(E.Dst)));
      if (IsWrite) {
        if (Write || !E.M.Wcr.empty())
          Complex = true;
        else
          Write = &E;
        continue;
      }
      bool Reads = (SrcA && SrcA->getData() == Name) ||
                   (E.M.Data == Name && isa<MapEntry>(D.getNode(E.Src)));
      std::set<std::string> Syms;
      E.M.Subset.collectSymbols(Syms);
      if (Reads || Syms.count(Name)) {
        if (DstA && SrcA && Syms.count(Name)) {
          // Access-to-access copy with a subset reference: the copy's
          // execution point is ambiguous, demand both endpoints ordered.
          UseSites.push_back(E.Src);
          UseSites.push_back(E.Dst);
        } else {
          UseSites.push_back(DstA ? E.Src : E.Dst);
        }
      } else if (E.M.Data == Name) {
        Complex = true; // Routed into other compute: defies analysis.
      }
    }
    for (const auto &N : D.nodes()) {
      if (const auto *T = dyn_cast<Tasklet>(N.get())) {
        std::set<std::string> Syms;
        for (const auto &[Conn, Code] : T->Code) {
          std::vector<const TExpr *> Work = {&Code};
          while (!Work.empty()) {
            const TExpr *E = Work.back();
            Work.pop_back();
            if (E->K == TExpr::Kind::Sym && E->Sym)
              E->Sym.collectSymbols(Syms);
            for (const TExpr &Ch : E->Children)
              Work.push_back(&Ch);
          }
        }
        if (Syms.count(Name))
          UseSites.push_back(N->getId());
      }
      if (const auto *ME = dyn_cast<MapEntry>(N.get()))
        for (const SymRange &R : ME->Ranges) {
          std::set<std::string> Syms;
          R.collectSymbols(Syms);
          if (Syms.count(Name))
            UseSites.push_back(N->getId());
        }
    }
    if (!Write || Complex)
      continue;

    // Every use site strictly downstream of the writer. The writer node
    // itself is not a legal site: a symbolic use there would observe the
    // previous iteration's value.
    std::set<int> Reach;
    std::vector<int> Work = {Write->Src};
    while (!Work.empty()) {
      int Id = Work.back();
      Work.pop_back();
      for (const auto &E : D.edges())
        if (E.Src == Id && Reach.insert(E.Dst).second)
          Work.push_back(E.Dst);
    }
    bool AllDominated = true;
    for (int Site : UseSites)
      if (!Reach.count(Site))
        AllDominated = false;
    if (AllDominated)
      Out.insert(Name);
  }
  return Out;
}

} // namespace

unsigned dcir::sdfgopt::convertLoopsToMapsSpeculativeOnce(SDFG &G,
                                                          OptReport *Report) {
  unsigned Converted = 0;
  std::vector<LoopRegion> Loops = findLoops(G);
  std::set<int> GuardIds;
  for (const LoopRegion &L : Loops)
    GuardIds.insert(L.GuardId);
  std::set<int> Touched;
  for (const LoopRegion &L : Loops) {
    bool Innermost = true;
    for (int Id : L.BodyStates)
      if (GuardIds.count(Id))
        Innermost = false;
    if (!Innermost)
      continue;
    bool Overlaps = Touched.count(L.GuardId) || Touched.count(L.ExitId);
    for (int Id : L.BodyStates)
      if (Touched.count(Id))
        Overlaps = true;
    if (Overlaps)
      continue;
    auto C = analyzeLoop(G, L, /*AllowScalarReads=*/true);
    if (!C)
      continue;
    bool SymsLocal = true;
    for (const std::string &Sym : C->AssignedSyms)
      if (symbolUsedOutsideLoop(G, L, Sym))
        SymsLocal = false;
    if (!SymsLocal)
      continue;
    State *D = C->Dataflow;
    substituteInState(*D, C->ChainSubs);

    std::set<std::string> Private = privatizableScalars(G, *D);
    for (const std::string &P : speculativelyPrivatizable(G, *D))
      Private.insert(P);
    // No independence proof — that is the point — but the conversion
    // must still be refusable where no runtime guard could ever help:
    // a non-private scalar carrying a plain (non-reduction) write is a
    // genuine cross-iteration serial dependence, and a body touching no
    // array (and no reduction) has nothing to parallelize.
    auto Accesses = collectAccesses(*D);
    bool Profitable = false, ScalarDep = false;
    for (const auto &[Data, AccVec] : Accesses) {
      const DataDesc &Desc = G.desc(Data);
      if (Desc.K == DataDesc::Kind::Scalar) {
        if (Private.count(Data))
          continue;
        for (const Access &A : AccVec) {
          if (!A.Write)
            continue;
          if (A.Wcr.empty() || !isSupportedWcr(A.Wcr))
            ScalarDep = true;
          else
            Profitable = true; // A scalar reduction.
        }
      } else {
        Profitable = true;
      }
    }
    if (ScalarDep || !Profitable)
      continue;

    SymRange Range(L.Begin, L.End, L.Step ? L.Step : SymExpr::constant(1));
    // Always wrap (never extend an inner map): an inner scope that
    // earned its own proof stays intact — and schedulable — inside the
    // speculative outer scope.
    MapEntry *Outer = wrapStateInMap(*D, L.Iv, Range);
    Outer->Speculative = true;
    for (const std::string &P : Private)
      if (!Outer->isPrivate(P)) {
        Outer->PrivateData.push_back(P);
        if (Report)
          ++Report->ScalarsPrivatized;
      }
    spliceLoopOut(G, *C);
    ++Converted;
    if (Report)
      ++Report->LoopsSpeculated;
    Touched.insert(L.GuardId);
    Touched.insert(L.ExitId);
    Touched.insert(L.BodyStates.begin(), L.BodyStates.end());
  }
  return Converted;
}
