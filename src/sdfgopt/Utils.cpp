//===- Utils.cpp ---------------------------------------------------------------------===//

#include "sdfgopt/Utils.h"

#include <algorithm>
#include <cstdlib>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;
using sym::SymExpr;

std::optional<SymExpr> dcir::sdfgopt::texprToSymExpr(
    const TExpr &E, const std::map<std::string, std::string> &ConnToName) {
  switch (E.K) {
  case TExpr::Kind::ConstI:
    return SymExpr::constant(E.I);
  case TExpr::Kind::ConstF:
    return std::nullopt;
  case TExpr::Kind::Sym:
    return E.Sym;
  case TExpr::Kind::Input: {
    auto It = ConnToName.find(E.Name);
    if (It == ConnToName.end())
      return std::nullopt;
    return SymExpr::symbol(It->second);
  }
  case TExpr::Kind::Op:
    break;
  }
  auto child = [&](size_t I) { return texprToSymExpr(E.Children[I], ConnToName); };
  const std::string &Op = E.Name;
  if (Op == "select") {
    auto C = child(0), T = child(1), F = child(2);
    if (!C || !T || !F)
      return std::nullopt;
    // select(c, t, f) == c*t + (1-c)*f only for 0/1 conditions; represent
    // via min/max when t/f are 0/1? Keep conservative: unsupported.
    return std::nullopt;
  }
  if (E.Children.size() == 1) {
    auto A = child(0);
    if (!A)
      return std::nullopt;
    if (Op == "neg")
      return SymExpr::negate(*A);
    if (Op == "not")
      return SymExpr::logicalNot(*A);
    return std::nullopt;
  }
  if (E.Children.size() != 2)
    return std::nullopt;
  auto A = child(0), B = child(1);
  if (!A || !B)
    return std::nullopt;
  if (Op == "add")
    return SymExpr::add(*A, *B);
  if (Op == "sub")
    return SymExpr::sub(*A, *B);
  if (Op == "mul")
    return SymExpr::mul(*A, *B);
  // C's `/` and `%` truncate toward zero; the symbolic engine floors.
  // Tasklet inputs are arbitrary run-time scalars (possibly negative), so
  // the two cannot be proven equivalent here — leave such expressions as
  // tasklets rather than promote them unsoundly.
  if (Op == "div" || Op == "rem")
    return std::nullopt;
  if (Op == "min")
    return SymExpr::min(*A, *B);
  if (Op == "max")
    return SymExpr::max(*A, *B);
  if (Op == "lt")
    return SymExpr::lt(*A, *B);
  if (Op == "le")
    return SymExpr::le(*A, *B);
  if (Op == "gt")
    return SymExpr::gt(*A, *B);
  if (Op == "ge")
    return SymExpr::ge(*A, *B);
  if (Op == "eq")
    return SymExpr::eq(*A, *B);
  if (Op == "ne")
    return SymExpr::ne(*A, *B);
  if (Op == "and")
    return SymExpr::logicalAnd(*A, *B);
  if (Op == "or")
    return SymExpr::logicalOr(*A, *B);
  if (Op == "xor") {
    // i1 xor with true is logical negation (how the frontend lowers `!`).
    if (B->isConstantValue(1))
      return SymExpr::logicalNot(*A);
    if (A->isConstantValue(1))
      return SymExpr::logicalNot(*B);
    return std::nullopt;
  }
  return std::nullopt;
}

/// Applies substitution to one TExpr in place.
static void substituteTExpr(TExpr &E,
                            const std::map<std::string, SymExpr> &Map) {
  if (E.K == TExpr::Kind::Sym) {
    E.Sym = E.Sym.substitute(Map);
    return;
  }
  for (TExpr &C : E.Children)
    substituteTExpr(C, Map);
}

void dcir::sdfgopt::substituteEverywhere(
    SDFG &G, const std::map<std::string, SymExpr> &Map) {
  for (auto &[Name, D] : G.descs())
    for (SymExpr &Dim : D.Shape)
      Dim = Dim.substitute(Map);
  for (auto &E : G.interstateEdges()) {
    if (E.Condition)
      E.Condition = E.Condition.substitute(Map);
    for (auto &[K, V] : E.Assignments)
      V = V.substitute(Map);
  }
  for (const auto &S : G.states()) {
    for (auto &E : const_cast<State *>(S.get())->edges())
      if (!E.M.isEmpty())
        E.M.Subset = E.M.Subset.substitute(Map);
    for (const auto &N : S->nodes()) {
      if (auto *T = const_cast<Tasklet *>(dyn_cast<Tasklet>(N.get())))
        for (auto &[Conn, Code] : T->Code)
          substituteTExpr(Code, Map);
      if (auto *ME = const_cast<MapEntry *>(dyn_cast<MapEntry>(N.get())))
        for (sym::SymRange &R : ME->Ranges)
          R = R.substitute(Map);
    }
  }
}

/// Collects names from one TExpr.
static void collectTExprNames(const TExpr &E, std::set<std::string> &Out) {
  if (E.K == TExpr::Kind::Sym) {
    E.Sym.collectSymbols(Out);
    return;
  }
  for (const TExpr &C : E.Children)
    collectTExprNames(C, Out);
}

std::set<std::string>
dcir::sdfgopt::collectReferencedNames(const SDFG &G) {
  std::set<std::string> Out;
  for (const auto &[Name, D] : G.descs())
    for (const SymExpr &Dim : D.Shape)
      Dim.collectSymbols(Out);
  for (const auto &E : G.interstateEdges()) {
    if (E.Condition)
      E.Condition.collectSymbols(Out);
    for (const auto &[K, V] : E.Assignments)
      V.collectSymbols(Out);
  }
  for (const auto &S : G.states()) {
    for (const auto &E : S->edges())
      if (!E.M.isEmpty())
        E.M.Subset.collectSymbols(Out);
    for (const auto &N : S->nodes()) {
      if (const auto *T = dyn_cast<Tasklet>(N.get()))
        for (const auto &[Conn, Code] : T->Code)
          collectTExprNames(Code, Out);
      if (const auto *ME = dyn_cast<MapEntry>(N.get()))
        for (const sym::SymRange &R : ME->Ranges)
          R.collectSymbols(Out);
    }
  }
  return Out;
}

bool dcir::sdfgopt::hasAccessNodes(const SDFG &G, const std::string &Data) {
  for (const auto &S : G.states())
    for (const auto &N : S->nodes())
      if (const auto *A = dyn_cast<AccessNode>(N.get()))
        if (A->getData() == Data)
          return true;
  return false;
}

bool dcir::sdfgopt::referencesContainer(const SymExpr &E, const SDFG &G) {
  if (!E)
    return false;
  std::set<std::string> Syms;
  E.collectSymbols(Syms);
  for (const std::string &S : Syms)
    if (G.hasData(S))
      return true;
  return false;
}

std::set<std::string> dcir::sdfgopt::mapParamsIn(const State &S) {
  std::set<std::string> Out;
  for (const auto &N : S.nodes())
    if (const auto *ME = dyn_cast<MapEntry>(N.get()))
      Out.insert(ME->Params.begin(), ME->Params.end());
  return Out;
}

void dcir::sdfgopt::substituteInState(
    State &S, const std::map<std::string, SymExpr> &Subs) {
  if (Subs.empty())
    return;
  for (auto &E : S.edges())
    if (!E.M.isEmpty())
      E.M.Subset = E.M.Subset.substitute(Subs);
  for (const auto &N : S.nodes()) {
    if (auto *T = dyn_cast<Tasklet>(N.get()))
      for (auto &[Conn, Code] : T->Code)
        Code = substituteSymsInTExpr(Code, Subs);
    if (auto *ME = dyn_cast<MapEntry>(N.get()))
      for (sym::SymRange &R : ME->Ranges) {
        R.Begin = R.Begin ? R.Begin.substitute(Subs) : R.Begin;
        R.End = R.End ? R.End.substitute(Subs) : R.End;
        R.Step = R.Step ? R.Step.substitute(Subs) : R.Step;
      }
  }
}

std::map<std::string, std::pair<std::int64_t, std::int64_t>>
dcir::sdfgopt::mapParamBounds(const State &S) {
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> Out;
  std::set<std::string> Poisoned; // Bound somewhere without constant range.
  for (const auto &N : S.nodes()) {
    const auto *ME = dyn_cast<MapEntry>(N.get());
    if (!ME)
      continue;
    for (size_t D = 0; D < ME->Params.size(); ++D) {
      const std::string &P = ME->Params[D];
      const sym::SymRange &R = ME->Ranges[D];
      if (!R.Begin || !R.End || !R.Begin.isConstant() ||
          !R.End.isConstant() ||
          (R.Step && (!R.Step.isConstant() || R.Step.constantValue() <= 0))) {
        Poisoned.insert(P);
        continue;
      }
      std::int64_t Lo = R.Begin.constantValue();
      std::int64_t Hi = R.End.constantValue() - 1; // Half-open range.
      if (Hi < Lo)
        Hi = Lo; // Empty range never iterates; keep a degenerate point.
      auto It = Out.find(P);
      if (It == Out.end())
        Out[P] = {Lo, Hi};
      else // Same name under two maps: keep the conservative hull.
        It->second = {std::min(It->second.first, Lo),
                      std::max(It->second.second, Hi)};
    }
  }
  for (const std::string &P : Poisoned)
    Out.erase(P);
  return Out;
}

TExpr dcir::sdfgopt::replaceInputWithSym(const TExpr &E,
                                         const std::string &Conn,
                                         const SymExpr &Sym) {
  if (E.K == TExpr::Kind::Input && E.Name == Conn)
    return TExpr::symbolic(Sym);
  TExpr Out = E;
  for (TExpr &C : Out.Children)
    C = replaceInputWithSym(C, Conn, Sym);
  return Out;
}

TExpr dcir::sdfgopt::replaceInputWithExpr(const TExpr &E,
                                          const std::string &Conn,
                                          const TExpr &Repl) {
  if (E.K == TExpr::Kind::Input && E.Name == Conn)
    return Repl;
  TExpr Out = E;
  for (TExpr &C : Out.Children)
    C = replaceInputWithExpr(C, Conn, Repl);
  return Out;
}

TExpr dcir::sdfgopt::substituteSymsInTExpr(
    const TExpr &E, const std::map<std::string, SymExpr> &Map) {
  TExpr Out = E;
  if (Out.K == TExpr::Kind::Sym) {
    Out.Sym = Out.Sym.substitute(Map);
    return Out;
  }
  for (TExpr &C : Out.Children)
    C = substituteSymsInTExpr(C, Map);
  return Out;
}

std::vector<LoopRegion> dcir::sdfgopt::findLoops(const SDFG &G) {
  std::vector<LoopRegion> Loops;
  for (const auto &S : G.states()) {
    auto Out = G.outEdges(S.get());
    if (Out.size() != 2)
      continue;
    // One edge `iv < end`, the other its negation `end <= iv`.
    const InterstateEdge *Enter = nullptr, *Leave = nullptr;
    for (const auto *E : Out) {
      if (E->Condition && E->Condition.kind() == sym::ExprKind::Lt &&
          E->Condition.operands()[0].isSymbol())
        Enter = E;
    }
    if (!Enter)
      continue;
    SymExpr Negated = SymExpr::logicalNot(Enter->Condition);
    for (const auto *E : Out) {
      if (E == Enter)
        continue;
      if (E->Condition && E->Condition.equals(Negated))
        Leave = E;
    }
    if (!Leave)
      continue;
    std::string Iv = Enter->Condition.operands()[0].symbolName();
    // Guard in-edges: an init edge and a back edge, both assigning Iv.
    auto In = G.inEdges(S.get());
    const InterstateEdge *Init = nullptr, *Back = nullptr;
    for (const auto *E : In) {
      bool AssignsIv = false;
      SymExpr Rhs;
      for (const auto &[K, V] : E->Assignments)
        if (K == Iv) {
          AssignsIv = true;
          Rhs = V;
        }
      if (!AssignsIv)
        continue;
      SymExpr A, B;
      if (Rhs.linearIn(Iv, A, B) && A.isConstantValue(1) && B &&
          !B.usesSymbol(Iv) && Rhs.usesSymbol(Iv))
        Back = E;
      else if (!Rhs.usesSymbol(Iv))
        Init = E;
    }
    if (!Init || !Back)
      continue;
    LoopRegion L;
    L.GuardId = S->getId();
    L.BodyEntryId = Enter->Dst;
    L.ExitId = Leave->Dst;
    L.Iv = Iv;
    for (const auto &[K, V] : Init->Assignments)
      if (K == Iv)
        L.Begin = V;
    L.End = Enter->Condition.operands()[1];
    SymExpr A, B;
    for (const auto &[K, V] : Back->Assignments)
      if (K == Iv && V.linearIn(Iv, A, B))
        L.Step = B;
    // Body: states reachable from the entry without passing the guard.
    std::vector<int> Work = {L.BodyEntryId};
    while (!Work.empty()) {
      int Id = Work.back();
      Work.pop_back();
      if (Id == L.GuardId || L.BodyStates.count(Id))
        continue;
      L.BodyStates.insert(Id);
      for (const auto *E : G.outEdges(G.getState(Id)))
        Work.push_back(E->Dst);
    }
    // A well-formed loop body must not contain the exit state.
    if (L.BodyStates.count(L.ExitId))
      continue;
    Loops.push_back(std::move(L));
  }
  return Loops;
}

std::optional<LoopChain> dcir::sdfgopt::walkLoopChain(const SDFG &G,
                                                      const LoopRegion &L) {
  const State *Guard = G.getState(L.GuardId);
  if (!Guard)
    return std::nullopt;
  LoopChain C;
  for (const auto *E : G.outEdges(Guard))
    if (E->Dst == L.BodyEntryId)
      C.Edges.push_back(E); // The enter edge runs first.
  if (C.Edges.size() != 1)
    return std::nullopt;
  int Cur = L.BodyEntryId;
  std::set<int> Seen;
  while (Cur != L.GuardId) {
    if (!L.BodyStates.count(Cur) || !Seen.insert(Cur).second)
      return std::nullopt;
    State *S = G.getState(Cur);
    if (!S)
      return std::nullopt;
    for (const auto *E : G.inEdges(S))
      if (E->Src != L.GuardId && !L.BodyStates.count(E->Src))
        return std::nullopt; // Side entry into the body.
    C.States.push_back(Cur);
    auto Out = G.outEdges(S);
    if (Out.size() != 1 || Out[0]->Condition)
      return std::nullopt;
    C.Edges.push_back(Out[0]);
    Cur = Out[0]->Dst;
  }
  if (Seen.size() != L.BodyStates.size())
    return std::nullopt;
  return C;
}

std::vector<std::pair<MapEntry *, std::set<int>>>
dcir::sdfgopt::topLevelMapScopes(const State &S) {
  // Per-entry scope interior (State::scopeNodes), plus the exit itself.
  std::vector<std::pair<MapEntry *, std::set<int>>> All;
  for (const auto &N : S.nodes()) {
    auto *ME = const_cast<MapEntry *>(dyn_cast<MapEntry>(N.get()));
    if (!ME)
      continue;
    std::set<int> Scope = S.scopeNodes(*ME);
    Scope.insert(ME->ExitId);
    All.push_back({ME, std::move(Scope)});
  }
  std::vector<std::pair<MapEntry *, std::set<int>>> Top;
  for (auto &[ME, Scope] : All) {
    bool Nested = false;
    for (const auto &[Other, OtherScope] : All)
      if (Other != ME && OtherScope.count(ME->getId()))
        Nested = true;
    if (!Nested)
      Top.push_back({ME, Scope});
  }
  return Top;
}

std::set<std::string> dcir::sdfgopt::privatizableScalars(const SDFG &G,
                                                         const State &D) {
  std::set<std::string> Out;
  std::set<std::string> Referenced = collectReferencedNames(G);
  for (const auto &[Name, Desc] : G.descs()) {
    if (Desc.K != DataDesc::Kind::Scalar || !Desc.Transient ||
        Referenced.count(Name))
      continue;
    // Every access node must live in D (the value is dead elsewhere).
    bool Elsewhere = false;
    for (const auto &S : G.states()) {
      if (S.get() == &D)
        continue;
      for (const auto &N : S->nodes())
        if (const auto *A = dyn_cast<AccessNode>(N.get()))
          if (A->getData() == Name)
            Elsewhere = true;
    }
    if (Elsewhere)
      continue;
    // Exactly one WCR-free write; collect the nodes where reads happen
    // (copies read at the source access node, tasklets at the consumer).
    const DataflowEdge *Write = nullptr;
    std::vector<int> ReadSites;
    bool Complex = false;
    for (const auto &E : D.edges()) {
      if (E.M.isEmpty())
        continue;
      const auto *SrcA = dyn_cast<AccessNode>(D.getNode(E.Src));
      const auto *DstA = dyn_cast<AccessNode>(D.getNode(E.Dst));
      if (DstA && DstA->getData() == Name) {
        if (Write || !E.M.Wcr.empty())
          Complex = true;
        else
          Write = &E;
      }
      if (SrcA && SrcA->getData() == Name)
        ReadSites.push_back(DstA ? E.Src : E.Dst);
      else if (E.M.Data == Name && !SrcA) {
        // Routed reads (map entry to consumer) read at the consumer.
        if (isa<MapEntry>(D.getNode(E.Src)))
          ReadSites.push_back(E.Dst);
        else if (isa<MapExit>(D.getNode(E.Dst))) {
          // A write routed through a map exit (contrast summarizeReps in
          // Privatization.cpp): it counts like a direct write, so a
          // scalar escaping a scope alongside another write — or through
          // a WCR update — is refused rather than silently privatized.
          if (Write || !E.M.Wcr.empty())
            Complex = true;
          else
            Write = &E;
        } else if (!DstA)
          Complex = true; // Routed into other compute: defies analysis.
      }
    }
    if (!Write || Complex)
      continue;
    if (ReadSites.empty()) {
      Out.insert(Name); // Write-only: trivially private.
      continue;
    }
    // Write-dominates-read: every read site must be reachable from the
    // writing node, so each iteration observes only its own value.
    std::set<int> Reach = {Write->Src};
    std::vector<int> Work = {Write->Src};
    while (!Work.empty()) {
      int Id = Work.back();
      Work.pop_back();
      for (const auto &E : D.edges())
        if (E.Src == Id && Reach.insert(E.Dst).second)
          Work.push_back(E.Dst);
    }
    bool AllDominated = true;
    for (int Site : ReadSites)
      if (!Reach.count(Site))
        AllDominated = false;
    if (AllDominated)
      Out.insert(Name);
  }
  return Out;
}

std::map<size_t, IntraTileDim>
dcir::sdfgopt::intraTileDims(const MapEntry &ME) {
  std::map<size_t, IntraTileDim> Out;
  for (size_t K = 0; K < ME.Params.size() && K < ME.Ranges.size(); ++K) {
    const sym::SymRange &R = ME.Ranges[K];
    if (!R.Begin || !R.Begin.isSymbol())
      continue;
    if (R.Step && !R.Step.isConstantValue(1))
      continue;
    const std::string Q = R.Begin.symbolName();
    // The tile dimension: another dimension of this map whose parameter
    // is the strip's base, with a constant step (the tile size).
    size_t J = ME.Params.size();
    for (size_t I = 0; I < ME.Params.size(); ++I)
      if (I != K && ME.Params[I] == Q)
        J = I;
    if (J == ME.Params.size())
      continue;
    std::int64_t TileStep = 1;
    if (ME.Ranges[J].Step) {
      if (!ME.Ranges[J].Step.isConstant())
        continue;
      TileStep = ME.Ranges[J].Step.constantValue();
    }
    // End must be `Q + c` (c constant, 0 < c <= TileStep), possibly
    // clamped by min(..., e) terms free of Q.
    auto StripLength = [&](const SymExpr &End) -> std::optional<std::int64_t> {
      SymExpr A, B;
      if (End.linearIn(Q, A, B) && A.isConstantValue(1) && B.isConstant())
        return B.constantValue();
      if (End.kind() != sym::ExprKind::Min)
        return std::nullopt;
      std::optional<std::int64_t> C;
      for (const SymExpr &Op : End.operands()) {
        if (!Op.usesSymbol(Q))
          continue;
        if (!(Op.linearIn(Q, A, B) && A.isConstantValue(1) &&
              B.isConstant()))
          return std::nullopt;
        if (!C || B.constantValue() < *C)
          C = B.constantValue();
      }
      return C;
    };
    std::optional<std::int64_t> C = R.End ? StripLength(R.End) : std::nullopt;
    if (!C || *C <= 0 || *C > TileStep)
      continue;
    Out[K] = IntraTileDim{J, *C};
  }
  return Out;
}

std::set<std::string>
dcir::sdfgopt::threadPinnedParams(const MapEntry &ME) {
  std::set<std::string> Pinned;
  if (ME.Params.empty())
    return Pinned;
  Pinned.insert(ME.Params[0]);
  std::map<size_t, IntraTileDim> Intra = intraTileDims(ME);
  // Chase anchor chains to a fixpoint (an intra dim's tile dim may itself
  // be an intra dim of an earlier tiling round).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &[K, T] : Intra)
      if (Pinned.count(ME.Params[T.TileDim]) &&
          Pinned.insert(ME.Params[K]).second)
        Changed = true;
  }
  return Pinned;
}

namespace {

/// Decomposes \p O into `sum(c_j * v_j) + Residual` over the bounded
/// \p Varying symbols it references, returning the inclusive value
/// interval of the varying part. Fails when a coefficient is not
/// constant, a referenced varying symbol has no bounds, or the residual
/// still mentions a varying symbol (nonlinear use).
struct VaryingOffset {
  std::int64_t Lo = 0, Hi = 0;
  SymExpr Residual;
};

std::optional<VaryingOffset> peelVaryingOffset(
    const SymExpr &O, const std::set<std::string> &Varying,
    const std::map<std::string, std::pair<std::int64_t, std::int64_t>>
        &Bounds) {
  VaryingOffset P;
  SymExpr Rest = O;
  std::set<std::string> Syms;
  O.collectSymbols(Syms);
  for (const std::string &V : Syms) {
    if (!Varying.count(V))
      continue;
    auto B = Bounds.find(V);
    if (B == Bounds.end())
      return std::nullopt;
    SymExpr C, R;
    if (!Rest.linearIn(V, C, R) || !C || !R || !C.isConstant())
      return std::nullopt;
    const std::int64_t AtLo = C.constantValue() * B->second.first;
    const std::int64_t AtHi = C.constantValue() * B->second.second;
    P.Lo += std::min(AtLo, AtHi);
    P.Hi += std::max(AtLo, AtHi);
    Rest = R;
  }
  std::set<std::string> RestSyms;
  Rest.collectSymbols(RestSyms);
  for (const std::string &S : RestSyms)
    if (Varying.count(S))
      return std::nullopt;
  P.Residual = Rest;
  return P;
}

} // namespace

bool dcir::sdfgopt::subsetsDisjointAcrossParam(
    const sym::SymSubset &A, const sym::SymSubset &B,
    const std::string &Param, const std::set<std::string> &Varying,
    const std::map<std::string, std::pair<std::int64_t, std::int64_t>>
        *VaryingBounds) {
  if (A.rank() != B.rank())
    return false;
  for (size_t D = 0; D < A.rank(); ++D) {
    if (!A.dim(D).isSingleElement() || !B.dim(D).isSingleElement())
      continue;
    SymExpr CA, OA, CB, OB;
    if (!A.dim(D).Begin.linearIn(Param, CA, OA) ||
        !B.dim(D).Begin.linearIn(Param, CB, OB))
      continue;
    if (!CA || !CB || !OA || !OB)
      continue;
    if (!CA.isConstant() || CA.constantValue() == 0 || !CA.equals(CB))
      continue;
    std::set<std::string> Syms;
    OA.collectSymbols(Syms);
    OB.collectSymbols(Syms);
    if (Syms.count(Param))
      continue;
    bool UsesVarying = false;
    for (const std::string &S : Syms)
      if (Varying.count(S))
        UsesVarying = true;
    if (!UsesVarying) {
      if (!OA.equals(OB))
        continue;
      // a*Param + b is injective in Param: distinct values, distinct
      // cells.
      return true;
    }
    if (!VaryingBounds)
      continue;
    // Bounded varying offsets. The two accesses execute at independent
    // inner iteration points, so bound the interval of (OA - OB) with
    // each side's varying part evaluated independently; the fixed
    // residuals must cancel structurally. Strictly inside (-|a|, |a|)
    // means no nonzero k satisfies a*k = OB' - OA': distinct Param
    // values touch distinct cells.
    auto PA = peelVaryingOffset(OA, Varying, *VaryingBounds);
    auto PB = peelVaryingOffset(OB, Varying, *VaryingBounds);
    if (!PA || !PB)
      continue;
    if (!PA->Residual.equals(PB->Residual))
      continue;
    const std::int64_t Stride = std::llabs(CA.constantValue());
    const std::int64_t DiffLo = PA->Lo - PB->Hi;
    const std::int64_t DiffHi = PA->Hi - PB->Lo;
    if (std::max(std::llabs(DiffLo), std::llabs(DiffHi)) < Stride)
      return true;
  }
  return false;
}
