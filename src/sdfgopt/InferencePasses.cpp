//===- InferencePasses.cpp - §6.1: promotion, propagation, WCR ----------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"
#include "sdfgopt/Utils.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;
using sym::SymExpr;

namespace {

/// All edges writing into an access node of \p Data, as (state, edge index).
struct WriteSite {
  State *S = nullptr;
  size_t EdgeIdx = 0;
};

std::vector<WriteSite> findWrites(SDFG &G, const std::string &Data) {
  std::vector<WriteSite> Out;
  for (const auto &S : G.states()) {
    const auto &Edges = S->edges();
    for (size_t I = 0; I < Edges.size(); ++I) {
      if (Edges[I].M.isEmpty())
        continue;
      const auto *Dst = dyn_cast<AccessNode>(S->getNode(Edges[I].Dst));
      if (Dst && Dst->getData() == Data)
        Out.push_back({S.get(), I});
    }
  }
  return Out;
}

bool stateReads(const State &S, const std::string &Data) {
  for (const auto &E : S.edges()) {
    if (E.M.isEmpty())
      continue;
    const auto *Src = dyn_cast<AccessNode>(S.getNode(E.Src));
    if (Src && Src->getData() == Data)
      return true;
  }
  return false;
}

} // namespace

unsigned dcir::sdfgopt::promoteScalarsToSymbols(SDFG &G) {
  unsigned Promoted = 0;
  // Candidates: transient integer scalars.
  std::vector<std::string> Candidates;
  for (const auto &[Name, D] : G.descs())
    if (D.K == DataDesc::Kind::Scalar && D.Transient && D.Ty == DType::I64)
      Candidates.push_back(Name);

  for (const std::string &Name : Candidates) {
    std::vector<WriteSite> Writes = findWrites(G, Name);
    if (Writes.size() != 1)
      continue;
    State *S = Writes[0].S;
    const DataflowEdge WriteEdge = S->edges()[Writes[0].EdgeIdx];
    // A state both reading and writing the scalar cannot promote (the
    // assignment would be delayed to the state boundary).
    if (stateReads(*S, Name))
      continue;
    auto *Writer = dyn_cast<Tasklet>(S->getNode(WriteEdge.Src));
    if (!Writer || Writer->Opaque || !WriteEdge.M.Wcr.empty())
      continue;
    // Map the writer's inputs to scalar container names.
    std::map<std::string, std::string> ConnToName;
    bool InputsOk = true;
    for (const DataflowEdge *In : S->inEdges(Writer)) {
      if (In->M.isEmpty())
        continue;
      const DataDesc &SrcDesc = G.desc(In->M.Data);
      if (SrcDesc.K != DataDesc::Kind::Scalar ||
          SrcDesc.Ty != DType::I64) {
        InputsOk = false;
        break;
      }
      ConnToName[In->DstConn] = In->M.Data;
    }
    if (!InputsOk)
      continue;
    auto CodeIt = Writer->Code.find(WriteEdge.SrcConn);
    if (CodeIt == Writer->Code.end())
      continue;
    auto Sym = texprToSymExpr(CodeIt->second, ConnToName);
    if (!Sym)
      continue;
    // The value is assigned on every outgoing edge of the writing state.
    // Prepended: entries later on the same edge may read it (assignments
    // apply sequentially).
    bool HasOut = false;
    for (auto &E : G.interstateEdges()) {
      if (E.Src != S->getId())
        continue;
      E.Assignments.insert(E.Assignments.begin(), {Name, *Sym});
      HasOut = true;
    }
    if (!HasOut)
      continue; // Terminal state: value unobservable as a symbol.

    // Remove the writer and its access nodes.
    std::vector<Node *> ToErase;
    for (const DataflowEdge *In : S->inEdges(Writer)) {
      Node *SrcNode = S->getNode(In->Src);
      if (isa<AccessNode>(SrcNode))
        ToErase.push_back(SrcNode);
    }
    Node *WriteAccess = S->getNode(WriteEdge.Dst);
    S->eraseNode(Writer);
    for (Node *N : ToErase)
      if (S->outEdges(N).empty() && S->inEdges(N).empty())
        S->eraseNode(N);
    if (S->outEdges(WriteAccess).empty() && S->inEdges(WriteAccess).empty())
      S->eraseNode(WriteAccess);

    // Rewrite reads: tasklet inputs fed by this scalar become symbolic
    // leaves; pure dependency edges from the scalar disappear.
    for (const auto &StatePtr : G.states()) {
      State *RS = StatePtr.get();
      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (const DataflowEdge &E : RS->edges()) {
          const auto *Src = dyn_cast<AccessNode>(RS->getNode(E.Src));
          if (!Src || Src->getData() != Name)
            continue;
          Node *DstNode = RS->getNode(E.Dst);
          if (auto *T = dyn_cast<Tasklet>(DstNode)) {
            if (!E.M.isEmpty()) {
              // Replace the connector with a symbolic leaf.
              for (auto &[Conn, Code] : T->Code)
                Code = replaceInputWithSym(Code, E.DstConn,
                                           SymExpr::symbol(Name));
              T->InConns.erase(std::remove(T->InConns.begin(),
                                           T->InConns.end(), E.DstConn),
                               T->InConns.end());
            }
          }
          // Remove this edge (dependency edges just vanish: the symbol is
          // set on interstate edges, always ordered before the state runs).
          auto &Edges = RS->edges();
          for (size_t I = 0; I < Edges.size(); ++I) {
            if (&Edges[I] == &E) {
              Edges.erase(Edges.begin() + I);
              break;
            }
          }
          Changed = true;
          break;
        }
      }
      // Drop orphaned access nodes of the promoted scalar.
      std::vector<Node *> Orphans;
      for (const auto &N : RS->nodes())
        if (const auto *A = dyn_cast<AccessNode>(N.get()))
          if (A->getData() == Name && RS->inEdges(A).empty() &&
              RS->outEdges(A).empty())
            Orphans.push_back(N.get());
      for (Node *N : Orphans)
        RS->eraseNode(N);
    }

    G.removeData(Name);
    G.addSymbol(Name);
    ++Promoted;
  }
  return Promoted;
}

//===----------------------------------------------------------------------===//
// Symbol propagation (§6.1)
//===----------------------------------------------------------------------===//

unsigned dcir::sdfgopt::propagateSymbols(SDFG &G) {
  unsigned Propagated = 0;
  // Dead assignment elimination: interstate assignments to symbols nothing
  // references are dropped (their RHS may keep scalar containers alive).
  {
    std::set<std::string> Referenced = collectReferencedNames(G);
    for (auto &E : G.interstateEdges()) {
      auto &A = E.Assignments;
      size_t Before = A.size();
      A.erase(std::remove_if(A.begin(), A.end(),
                             [&](const auto &P) {
                               return !Referenced.count(P.first);
                             }),
              A.end());
      Propagated += static_cast<unsigned>(Before - A.size());
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Count assignments per symbol.
    std::map<std::string, unsigned> AssignCount;
    std::map<std::string, SymExpr> SingleRhs;
    for (const auto &E : G.interstateEdges()) {
      for (const auto &[Name, V] : E.Assignments) {
        ++AssignCount[Name];
        SingleRhs[Name] = V;
      }
    }
    for (const auto &[Name, Count] : AssignCount) {
      if (Count != 1)
        continue;
      const SymExpr &Rhs = SingleRhs[Name];
      // The RHS must be constant over the whole execution: every symbol it
      // references is itself never assigned, and no scalar containers.
      std::set<std::string> Free;
      Rhs.collectSymbols(Free);
      bool Safe = true;
      for (const std::string &Ref : Free) {
        if (G.hasData(Ref) || AssignCount.count(Ref)) {
          Safe = false;
          break;
        }
      }
      if (!Safe || Rhs.usesSymbol(Name))
        continue;
      // Substitute everywhere and drop the assignment.
      substituteEverywhere(G, {{Name, Rhs}});
      for (auto &E : G.interstateEdges()) {
        auto &A = E.Assignments;
        A.erase(std::remove_if(A.begin(), A.end(),
                               [&](const auto &P) { return P.first == Name; }),
                A.end());
      }
      G.symbols().erase(Name);
      ++Propagated;
      Changed = true;
      break; // Recompute counts.
    }
  }
  return Propagated;
}

//===----------------------------------------------------------------------===//
// Update detection — AugAssignToWCR (§6.1)
//===----------------------------------------------------------------------===//

/// Returns true and strips when Code == op(Input(Conn), Rest) for an
/// associative op.
static bool matchAugAssign(const TExpr &Code, const std::string &Conn,
                           std::string &WcrOut, TExpr &RestOut) {
  if (Code.K != TExpr::Kind::Op)
    return false;
  const std::string &Op = Code.Name;
  if (Op != "add" && Op != "mul" && Op != "min" && Op != "max")
    return false;
  if (Code.Children.size() != 2)
    return false;
  auto usesConn = [&](const TExpr &E) {
    std::set<std::string> Ins;
    E.collectInputs(Ins);
    return Ins.count(Conn) > 0;
  };
  for (int Side = 0; Side < 2; ++Side) {
    const TExpr &Candidate = Code.Children[Side];
    const TExpr &Rest = Code.Children[1 - Side];
    if (Candidate.K == TExpr::Kind::Input && Candidate.Name == Conn &&
        !usesConn(Rest)) {
      WcrOut = Op;
      RestOut = Rest;
      return true;
    }
  }
  return false;
}

unsigned dcir::sdfgopt::detectUpdates(SDFG &G) {
  unsigned Detected = 0;
  for (const auto &S : G.states()) {
    for (const auto &N : S->nodes()) {
      auto *T = dyn_cast<Tasklet>(N.get());
      if (!T || T->Opaque)
        continue;
      auto OutEdges = S->outEdges(T);
      // Exactly one data out-edge, WCR-free.
      const DataflowEdge *OutE = nullptr;
      unsigned DataOut = 0;
      for (const auto *E : OutEdges) {
        if (!E->M.isEmpty()) {
          ++DataOut;
          OutE = E;
        }
      }
      if (DataOut != 1 || !OutE->M.Wcr.empty())
        continue;
      const auto *OutAccess = dyn_cast<AccessNode>(S->getNode(OutE->Dst));
      if (!OutAccess)
        continue;
      // An input reading the same location.
      for (const auto *InE : S->inEdges(T)) {
        if (InE->M.isEmpty() || InE->M.Data != OutE->M.Data)
          continue;
        if (!InE->M.Subset.equals(OutE->M.Subset))
          continue;
        auto CodeIt = T->Code.find(OutE->SrcConn);
        if (CodeIt == T->Code.end())
          continue;
        std::string Wcr;
        TExpr Rest;
        if (!matchAugAssign(CodeIt->second, InE->DstConn, Wcr, Rest))
          continue;
        // Rewrite: strip the self-input, mark the write as an update.
        // (Copy what we need first: erasing invalidates edge pointers.)
        std::string Conn = InE->DstConn;
        std::string OutData = OutE->M.Data;
        int OutDstId = OutE->Dst;
        Node *InAccess = S->getNode(InE->Src);
        CodeIt->second = Rest;
        T->InConns.erase(
            std::remove(T->InConns.begin(), T->InConns.end(), Conn),
            T->InConns.end());
        // Erase the in-edge.
        auto &Edges = S->edges();
        for (size_t I = 0; I < Edges.size(); ++I) {
          if (&Edges[I] == InE) {
            Edges.erase(Edges.begin() + I);
            break;
          }
        }
        // Set WCR on the out edge (re-find: the vector shifted).
        for (auto &E : S->edges()) {
          if (E.Src == T->getId() && E.Dst == OutDstId &&
              !E.M.isEmpty() && E.M.Data == OutData) {
            E.M.Wcr = Wcr;
            break;
          }
        }
        if (S->inEdges(InAccess).empty() && S->outEdges(InAccess).empty())
          S->eraseNode(InAccess);
        ++Detected;
        break;
      }
    }
  }
  return Detected;
}
