//===- LoopPasses.cpp - loop-aware data-centric passes (§6.2/§6.3) -----------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"
#include "sdfgopt/Utils.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;
using sym::SymExpr;

namespace {

/// All write edges into access nodes of \p Data across the whole SDFG.
struct WriteSite {
  State *S;
  const DataflowEdge *E;
};

std::vector<WriteSite> allWrites(SDFG &G, const std::string &Data) {
  std::vector<WriteSite> Out;
  for (const auto &S : G.states())
    for (const auto &E : S->edges()) {
      if (E.M.isEmpty())
        continue;
      const auto *Dst = dyn_cast<AccessNode>(S->getNode(E.Dst));
      if (Dst && Dst->getData() == Data)
        Out.push_back({S.get(), &E});
    }
  return Out;
}

std::vector<WriteSite> allReads(SDFG &G, const std::string &Data) {
  std::vector<WriteSite> Out;
  for (const auto &S : G.states())
    for (const auto &E : S->edges()) {
      if (E.M.isEmpty())
        continue;
      const auto *Src = dyn_cast<AccessNode>(S->getNode(E.Src));
      if (Src && Src->getData() == Data)
        Out.push_back({S.get(), &E});
    }
  return Out;
}

/// The constant a tasklet's single output produces, if it is constant.
std::optional<TExpr> constantCode(const Tasklet *T, const std::string &Conn) {
  auto It = T->Code.find(Conn);
  if (It == T->Code.end())
    return std::nullopt;
  const TExpr &Code = It->second;
  if (Code.K == TExpr::Kind::ConstI || Code.K == TExpr::Kind::ConstF)
    return Code;
  if (Code.K == TExpr::Kind::Sym && Code.Sym.isConstant())
    return TExpr::constI(Code.Sym.constantValue());
  return std::nullopt;
}

} // namespace

//===----------------------------------------------------------------------===//
// Constant write propagation (enables the Fig. 2 loop elision)
//===----------------------------------------------------------------------===//

unsigned dcir::sdfgopt::propagateConstantWrites(SDFG &G) {
  unsigned Propagated = 0;
  std::vector<LoopRegion> Loops = findLoops(G);
  std::vector<std::string> Candidates;
  for (const auto &[Name, D] : G.descs())
    if (D.K == DataDesc::Kind::Array && D.Transient && D.Shape.size() == 1)
      Candidates.push_back(Name);

  for (const std::string &Name : Candidates) {
    std::vector<WriteSite> Writes = allWrites(G, Name);
    if (Writes.size() != 1 || !Writes[0].E->M.Wcr.empty())
      continue;
    const auto *Writer =
        dyn_cast<Tasklet>(Writes[0].S->getNode(Writes[0].E->Src));
    if (!Writer || Writer->Opaque)
      continue;
    auto Const = constantCode(Writer, Writes[0].E->SrcConn);
    if (!Const)
      continue;
    // The write must cover the whole container: subset [iv] inside a loop
    // iterating iv over exactly [0, shape).
    const LoopRegion *Cover = nullptr;
    for (const LoopRegion &L : Loops) {
      if (!L.BodyStates.count(Writes[0].S->getId()))
        continue;
      if (!Writes[0].E->M.Subset.isSingleElement())
        continue;
      SymExpr Idx = Writes[0].E->M.Subset.elementIndices()[0];
      if (!Idx.isSymbol() || Idx.symbolName() != L.Iv)
        continue;
      bool StepOne = !L.Step || L.Step.isConstantValue(1);
      if (L.Begin && L.Begin.isConstantValue(0) && StepOne && L.End &&
          L.End.equals(G.desc(Name).Shape[0])) {
        Cover = &L;
        break;
      }
    }
    if (!Cover)
      continue;
    // Replace every read with the constant.
    std::vector<WriteSite> Reads = allReads(G, Name);
    bool AllTaskletReads = true;
    for (const WriteSite &R : Reads)
      if (!isa<Tasklet>(R.S->getNode(R.E->Dst)))
        AllTaskletReads = false;
    if (!AllTaskletReads)
      continue;
    for (const WriteSite &R : Reads) {
      auto *T = cast<Tasklet>(R.S->getNode(R.E->Dst));
      for (auto &[Conn, Code] : T->Code)
        Code = replaceInputWithExpr(Code, R.E->DstConn, *Const);
      T->InConns.erase(
          std::remove(T->InConns.begin(), T->InConns.end(), R.E->DstConn),
          T->InConns.end());
      // Erase the edge.
      auto &Edges = R.S->edges();
      for (size_t I = 0; I < Edges.size(); ++I) {
        if (&Edges[I] == R.E) {
          Edges.erase(Edges.begin() + I);
          break;
        }
      }
      Node *SrcNode = R.S->getNode(R.E->Src);
      (void)SrcNode;
    }
    // Drop orphaned read access nodes.
    for (const auto &S : G.states()) {
      std::vector<Node *> Orphans;
      for (const auto &N : S->nodes())
        if (const auto *A = dyn_cast<AccessNode>(N.get()))
          if (A->getData() == Name && S->inEdges(A).empty() &&
              S->outEdges(A).empty())
            Orphans.push_back(N.get());
      for (Node *N : Orphans)
        S->eraseNode(N);
    }
    ++Propagated;
  }
  return Propagated;
}

//===----------------------------------------------------------------------===//
// Empty loop elimination
//===----------------------------------------------------------------------===//

unsigned dcir::sdfgopt::eliminateEmptyLoops(SDFG &G) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<LoopRegion> Loops = findLoops(G);
    for (const LoopRegion &L : Loops) {
      // Every body state must be empty; intra-body edges may only carry the
      // induction increment.
      bool Empty = true;
      for (int Id : L.BodyStates) {
        State *S = G.getState(Id);
        if (!S || !S->nodes().empty()) {
          Empty = false;
          break;
        }
      }
      if (!Empty)
        continue;
      for (const auto &E : G.interstateEdges()) {
        bool SrcInBody = L.BodyStates.count(E.Src) || E.Src == L.GuardId;
        if (!SrcInBody)
          continue;
        for (const auto &[Name, V] : E.Assignments) {
          if (Name != L.Iv) {
            Empty = false;
            break;
          }
        }
      }
      if (!Empty)
        continue;
      // Redirect: every edge into the guard (except the back edge) goes to
      // the exit state instead; drop the loop's states.
      State *Guard = G.getState(L.GuardId);
      if (!Guard)
        continue;
      for (auto &E : G.interstateEdges()) {
        if (E.Dst != L.GuardId || L.BodyStates.count(E.Src))
          continue;
        E.Dst = L.ExitId;
        // Keep the init assignment (the symbol may be read later with its
        // initial value semantics preserved only for zero-trip loops; the
        // slot container carries the C-level final value).
      }
      for (int Id : L.BodyStates)
        if (State *S = G.getState(Id))
          G.eraseState(S);
      G.eraseState(Guard);
      Removed += 1;
      Changed = true;
      break; // Loop structures changed; re-discover.
    }
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Memory pre-allocation (§6.3)
//===----------------------------------------------------------------------===//

unsigned dcir::sdfgopt::preAllocateMemory(SDFG &G) {
  unsigned Promoted = 0;
  constexpr std::int64_t StackThreshold = 4096; // Elements.
  for (auto &[Name, D] : G.descs()) {
    if (!D.Transient || D.K != DataDesc::Kind::Array)
      continue;
    if (D.StorageKind != Storage::Heap)
      continue;
    SymExpr Size = D.totalSize();
    if (Size.isConstant() && Size.constantValue() <= StackThreshold) {
      D.StorageKind = Storage::Stack;
      ++Promoted;
    }
  }
  return Promoted;
}

//===----------------------------------------------------------------------===//
// Memory-reducing loop fusion (§6.3)
//===----------------------------------------------------------------------===//

namespace {

/// Subset accesses of a state grouped per container (excluding empty
/// memlets), as (isWrite, subset).
std::vector<std::tuple<std::string, bool, sym::SymSubset>>
collectAccesses(const State &S) {
  std::vector<std::tuple<std::string, bool, sym::SymSubset>> Out;
  for (const auto &E : S.edges()) {
    if (E.M.isEmpty())
      continue;
    const auto *SrcA = dyn_cast<AccessNode>(S.getNode(E.Src));
    const auto *DstA = dyn_cast<AccessNode>(S.getNode(E.Dst));
    if (SrcA)
      Out.push_back({SrcA->getData(), false, E.M.Subset});
    if (DstA)
      Out.push_back({DstA->getData(), true, E.M.Subset});
  }
  return Out;
}

} // namespace

unsigned dcir::sdfgopt::fuseMemoryReducingLoops(SDFG &G) {
  unsigned Fused = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<LoopRegion> Loops = findLoops(G);
    for (const LoopRegion &L1 : Loops) {
      // L1.Exit must feed straight into another loop guard.
      State *Exit1 = G.getState(L1.ExitId);
      if (!Exit1 || !Exit1->nodes().empty())
        continue;
      auto ExitOut = G.outEdges(Exit1);
      if (ExitOut.size() != 1 || ExitOut[0]->Condition)
        continue;
      const LoopRegion *L2 = nullptr;
      for (const LoopRegion &Candidate : Loops)
        if (Candidate.GuardId == ExitOut[0]->Dst)
          L2 = &Candidate;
      if (!L2 || L2->GuardId == L1.GuardId)
        continue;
      // Single-state bodies.
      if (L1.BodyStates.size() != 1 || L2->BodyStates.size() != 1)
        continue;
      State *B1 = G.getState(*L1.BodyStates.begin());
      State *B2 = G.getState(*L2->BodyStates.begin());
      if (!B1 || !B2)
        continue;
      // Identical ranges.
      auto equalExpr = [](const SymExpr &A, const SymExpr &B2E) {
        if (!A && !B2E)
          return true;
        return A && B2E && A.equals(B2E);
      };
      SymExpr Step1 = L1.Step ? L1.Step : SymExpr::constant(1);
      SymExpr Step2 = L2->Step ? L2->Step : SymExpr::constant(1);
      if (!equalExpr(L1.Begin, L2->Begin) || !equalExpr(L1.End, L2->End) ||
          !Step1.equals(Step2))
        continue;
      // Legality: common containers with a write must be accessed at the
      // same (iv-renamed) subset everywhere.
      std::map<std::string, SymExpr> Rename = {
          {L2->Iv, SymExpr::symbol(L1.Iv)}};
      auto Acc1 = collectAccesses(*B1);
      auto Acc2 = collectAccesses(*B2);
      std::set<std::string> Written;
      for (const auto &[Data, IsWrite, Subset] : Acc1)
        if (IsWrite)
          Written.insert(Data);
      for (const auto &[Data, IsWrite, Subset] : Acc2)
        if (IsWrite)
          Written.insert(Data);
      bool Legal = true;
      std::string Intermediate;
      for (const std::string &W : Written) {
        // Gather all subsets for W across both bodies (renamed).
        std::vector<sym::SymSubset> Subsets;
        bool In1 = false, In2 = false;
        for (const auto &[Data, IsWrite, Subset] : Acc1)
          if (Data == W) {
            Subsets.push_back(Subset);
            In1 = true;
          }
        for (const auto &[Data, IsWrite, Subset] : Acc2)
          if (Data == W) {
            Subsets.push_back(Subset.substitute(Rename));
            In2 = true;
          }
        if (!(In1 && In2))
          continue; // Only touched on one side: order preserved.
        for (size_t I = 1; I < Subsets.size(); ++I)
          if (!Subsets[I].equals(Subsets[0]))
            Legal = false;
        // The common subset must vary with the iteration: a loop-invariant
        // cell (e.g. an accumulator tmp[i] inside a j-loop) is only fully
        // computed after the first loop *finishes* — fusing would read
        // partial values.
        std::set<std::string> SubsetSyms;
        if (!Subsets.empty())
          Subsets[0].collectSymbols(SubsetSyms);
        if (!SubsetSyms.count(L1.Iv))
          Legal = false;
        // Candidate intermediate: transient written in B1, read in B2,
        // untouched elsewhere.
        const DataDesc &D = G.desc(W);
        if (D.Transient && D.K == DataDesc::Kind::Array &&
            allWrites(G, W).size() == 1)
          Intermediate = W;
      }
      if (!Legal)
        continue;

      // Fuse: absorb B2 into B1, then rename L2's iv inside the merged
      // graph. The iv name is unique, so substituting over all of B1's
      // edges only affects the copied half.
      std::map<int, Node *> Map = B1->absorb(*B2);
      std::set<int> CopiedIds;
      for (const auto &[Old, New] : Map)
        CopiedIds.insert(New->getId());
      for (auto &E : B1->edges())
        if (!E.M.isEmpty())
          E.M.Subset = E.M.Subset.substitute(Rename);
      for (const auto &N : B1->nodes())
        if (auto *T = dyn_cast<Tasklet>(N.get()))
          for (auto &[Conn, Code] : T->Code)
            Code = substituteSymsInTExpr(Code, Rename);
      // Ordering: every original-half node writing a common container runs
      // before every copied-half node touching it. Subsets match
      // element-wise, so per-iteration order is preserved.
      for (const std::string &W : Written) {
        std::vector<Node *> Part1Writers, Part2Touch;
        for (const auto &E : B1->edges()) {
          if (E.M.isEmpty() || E.M.Data != W)
            continue;
          Node *Src = B1->getNode(E.Src);
          Node *Dst = B1->getNode(E.Dst);
          bool SrcCopied = CopiedIds.count(E.Src) > 0;
          bool DstCopied = CopiedIds.count(E.Dst) > 0;
          if (isa<AccessNode>(Dst) && !DstCopied)
            Part1Writers.push_back(Src); // Writer tasklet, original half.
          if (SrcCopied && isa<AccessNode>(Src))
            Part2Touch.push_back(Dst); // Reader in the copied half.
          if (DstCopied && isa<AccessNode>(Dst))
            Part2Touch.push_back(Src); // Writer in the copied half.
        }
        for (Node *A : Part1Writers)
          for (Node *B : Part2Touch)
            if (A != B)
              B1->connect(A, "", B, "", Memlet());
      }

      // Rewire the state machine: L1's guard false-edge jumps to L2's exit;
      // drop Exit1, L2 guard, and B2.
      for (auto &E : G.interstateEdges()) {
        if (E.Src == L1.GuardId && E.Dst == L1.ExitId)
          E.Dst = L2->ExitId;
      }
      State *Guard2 = G.getState(L2->GuardId);
      int B2Id = B2->getId();
      G.eraseState(Exit1);
      G.eraseState(Guard2);
      G.eraseState(G.getState(B2Id));

      // Shrink the intermediate to a scalar when every remaining access is
      // the same single element.
      if (!Intermediate.empty()) {
        bool Shrinkable = true;
        for (const auto &S : G.states())
          for (auto &E : S->edges())
            if (!E.M.isEmpty() && E.M.Data == Intermediate &&
                !E.M.Subset.isSingleElement())
              Shrinkable = false;
        if (Shrinkable) {
          DataDesc &D = G.desc(Intermediate);
          D.K = DataDesc::Kind::Scalar;
          D.Shape.clear();
          D.StorageKind = Storage::Register;
          for (const auto &S : G.states())
            for (auto &E : S->edges())
              if (!E.M.isEmpty() && E.M.Data == Intermediate)
                E.M.Subset = sym::SymSubset();
        }
      }
      ++Fused;
      Changed = true;
      break;
    }
  }
  return Fused;
}
