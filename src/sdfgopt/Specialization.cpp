//===- Specialization.cpp - shape specialization (the re-JIT pass) ------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialize-symbols pass: constant-folds bound symbol values into
/// every symbolic expression an SDFG carries. This is the compile-time
/// half of shape-specialized re-JIT (the DaCeML move, see DESIGN.md
/// "Shape specialization"): api::Program clones its graph, runs this pass
/// with the invocation's symbol tuple, re-runs the -O2 pipeline — where
/// loops-to-maps, the MinParallelWork grain heuristic, and tile-maps now
/// see *proven constant* trip counts instead of refusing or guessing —
/// and JITs the result as a per-shape variant.
///
/// Substitution deliberately leaves the symbol/container *declarations*
/// untouched: the generated call signature (and the `__dcir_signature`
/// descriptor embedded in the artifact) is derived from declarations, so
/// a specialized clone binds exactly like the generic artifact and the
/// engine can dispatch between them freely. The substituted parameters
/// simply become dead ([[maybe_unused]]) in the emitted source.
///
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;

unsigned dcir::sdfgopt::specializeSymbols(SDFG &G,
                                          const SpecializationOptions &Opts) {
  if (!Opts.enabled())
    return 0;
  const std::map<std::string, std::int64_t> &Env = Opts.SymbolValues;
  unsigned Changed = 0;

  auto Subst = [&](sym::SymExpr &E) {
    if (!E)
      return;
    sym::SymExpr S = E.substituteValues(Env);
    if (!S.equals(E)) {
      E = std::move(S);
      ++Changed;
    }
  };
  auto SubstRange = [&](sym::SymRange &R) {
    Subst(R.Begin);
    Subst(R.End);
    Subst(R.Step);
  };
  auto SubstSubset = [&](sym::SymSubset &S) {
    for (size_t D = 0; D < S.rank(); ++D)
      SubstRange(S.dim(D));
  };
  // Symbolic tasklet sub-expressions, recursively (Sym nodes may sit
  // under Op nodes).
  std::function<void(TExpr &)> SubstT = [&](TExpr &E) {
    if (E.K == TExpr::Kind::Sym)
      Subst(E.Sym);
    for (TExpr &C : E.Children)
      SubstT(C);
  };

  // Container shapes (transient allocation sizes, subset linearization).
  for (auto &[Name, D] : G.descs())
    for (sym::SymExpr &Dim : D.Shape)
      Subst(Dim);

  // Interstate edges: loop conditions and symbol assignments — where the
  // runtime bounds of sequential state-machine loops live.
  for (InterstateEdge &E : G.interstateEdges()) {
    Subst(E.Condition);
    for (auto &[Sym, V] : E.Assignments)
      Subst(V);
  }

  for (const auto &S : G.states()) {
    // Map ranges (trip counts for the grain heuristic and tile-maps).
    for (const auto &N : S->nodes())
      if (auto *ME = dyn_cast<MapEntry>(N.get()))
        for (sym::SymRange &R : ME->Ranges)
          SubstRange(R);
    // Memlet subsets and tasklet code.
    for (DataflowEdge &E : S->edges())
      if (!E.M.isEmpty())
        SubstSubset(E.M.Subset);
    for (const auto &N : S->nodes())
      if (auto *T = dyn_cast<Tasklet>(N.get()))
        for (auto &[Conn, Code] : T->Code)
          SubstT(Code);
  }

  return Changed;
}
