//===- Utils.h - shared helpers for data-centric passes -----------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef DCIR_SDFGOPT_UTILS_H
#define DCIR_SDFGOPT_UTILS_H

#include "sdfg/SDFG.h"

#include <map>
#include <optional>
#include <set>
#include <string>

namespace dcir {
namespace sdfgopt {

/// Converts an integer tasklet expression to a symbolic expression, mapping
/// input connectors through \p ConnToName (scalar container names). Returns
/// nullopt when the expression is not symbolically representable.
std::optional<sym::SymExpr>
texprToSymExpr(const sdfg::TExpr &E,
               const std::map<std::string, std::string> &ConnToName);

/// Substitutes symbols in every expression the SDFG holds: memlet subsets,
/// interstate conditions/assignments, container shapes, map ranges, and
/// tasklet Sym leaves.
void substituteEverywhere(sdfg::SDFG &G,
                          const std::map<std::string, sym::SymExpr> &Map);

/// Collects every name referenced symbolically anywhere in the SDFG
/// (subsets, conditions, assignments, shapes, tasklet Sym leaves).
std::set<std::string> collectReferencedNames(const sdfg::SDFG &G);

/// True if an access node of \p Data appears in any state.
bool hasAccessNodes(const sdfg::SDFG &G, const std::string &Data);

/// True when \p E references a container of \p G by name. Symbolic
/// expressions over containers read memory a state could have written, so
/// passes that reason about symbol stability must refuse them.
bool referencesContainer(const sym::SymExpr &E, const sdfg::SDFG &G);

/// The union of map parameters over every map entry of \p S.
std::set<std::string> mapParamsIn(const sdfg::State &S);

/// Applies \p Subs to every expression in \p S (memlet subsets, tasklet
/// symbolic leaves, and map ranges).
void substituteInState(sdfg::State &S,
                       const std::map<std::string, sym::SymExpr> &Subs);

/// Inclusive value bounds `[lo, hi]` of every map parameter of \p S whose
/// range has constant begin/end (half-open, positive constant step). The
/// raw material for the bounded-offset disjointness test: exact trip
/// counts turn "offset varies with an inner parameter" from a refusal
/// into an interval the analysis can compare against the outer stride.
std::map<std::string, std::pair<std::int64_t, std::int64_t>>
mapParamBounds(const sdfg::State &S);

/// Natural loop discovered in the state machine (converter-shaped:
/// guard with `iv < end` / `not(iv < end)` out-edges, init and back edges
/// assigning the induction symbol).
struct LoopRegion {
  int GuardId = -1;
  int BodyEntryId = -1;
  int ExitId = -1; // State after the loop.
  std::string Iv;
  sym::SymExpr Begin, End, Step;
  std::set<int> BodyStates; // Excluding the guard.
};

/// Finds converter-shaped loops. Nested loops are all reported.
std::vector<LoopRegion> findLoops(const sdfg::SDFG &G);

/// The body of a straight-chain loop, in execution order: `States` from
/// the body entry to the back-edge source, `Edges` the loop-owned
/// interstate edges in traversal order (enter edge first, back edge
/// last). Empty optional when the body branches, has side entries, or is
/// otherwise not a single chain.
struct LoopChain {
  std::vector<int> States;
  std::vector<const sdfg::InterstateEdge *> Edges;
};
std::optional<LoopChain> walkLoopChain(const sdfg::SDFG &G,
                                       const LoopRegion &L);

/// The top-level map scopes of \p S: each entry paired with its member
/// node ids (interior plus the exit, excluding the entry itself) using
/// the interpreter's discovery rule. Nested scopes are folded into their
/// outermost enclosing scope.
std::vector<std::pair<sdfg::MapEntry *, std::set<int>>>
topLevelMapScopes(const sdfg::State &S);

/// Transient scalars of \p D that can be made private to a map scope
/// wrapped around the whole state: accessed in no other state, never
/// referenced symbolically, written by exactly one WCR-free edge, and
/// with every read ordered after the write by a dataflow path — i.e.
/// each iteration reads only its own value (no loop-carried use), so
/// per-iteration rebinding preserves semantics. This is what re-enables
/// outer-loop conversion of bodies holding LICM-hoisted temporaries.
std::set<std::string> privatizableScalars(const sdfg::SDFG &G,
                                          const sdfg::State &D);

/// Returns a copy of \p E with the input connector \p Conn replaced by a
/// symbolic leaf.
sdfg::TExpr replaceInputWithSym(const sdfg::TExpr &E, const std::string &Conn,
                                const sym::SymExpr &Sym);

/// Returns a copy of \p E with the input connector \p Conn replaced by a
/// constant leaf.
sdfg::TExpr replaceInputWithExpr(const sdfg::TExpr &E,
                                 const std::string &Conn,
                                 const sdfg::TExpr &Repl);

/// Returns a copy of \p E with symbol substitution applied to every
/// symbolic leaf.
sdfg::TExpr
substituteSymsInTExpr(const sdfg::TExpr &E,
                      const std::map<std::string, sym::SymExpr> &Map);

/// One strip-mined map dimension: Params[Dim] iterates the strip
/// `[Params[TileDim], Params[TileDim] + Extent)` of its tile parameter,
/// so distinct tile-parameter values visit provably disjoint intra
/// ranges (Extent never exceeds the tile dimension's step).
struct IntraTileDim {
  size_t TileDim = 0;
  std::int64_t Extent = 1;
};

/// Structural tile-pair discovery over \p ME's dimensions: dimension K is
/// an intra-tile strip of dimension J when Ranges[K].Begin is exactly the
/// symbol Params[J], Ranges[K].Step is 1, and Ranges[K].End is
/// `Params[J] + c` or `min(Params[J] + c, e)` with a constant
/// `0 < c <= step(J)` and `e` free of Params[J]. Exactly the shape
/// tileMaps emits; shared by the parallel code generator's
/// thread-partition reasoning and its per-region work estimate.
std::map<size_t, IntraTileDim> intraTileDims(const sdfg::MapEntry &ME);

/// Map parameters of \p ME pinned to the first parameter's thread
/// partition under a collapse(1) work-sharing schedule: Params[0] itself,
/// plus every intra-tile parameter whose tile parameter is itself pinned
/// (its per-tile strips are disjoint, so equal values imply the same
/// first-parameter iteration and with it the same thread).
std::set<std::string> threadPinnedParams(const sdfg::MapEntry &ME);

/// True when subsets \p A and \p B provably never touch the same element
/// for two *distinct* values of \p Param: some dimension indexes a single
/// element `a*Param + b` on both sides with the same nonzero constant `a`
/// and offset `b` that is free of \p Param and of every symbol in
/// \p Varying (symbols that change while \p Param is fixed, e.g. inner
/// map parameters). The workhorse of the loop-to-map dependence analysis;
/// the parallel code generator reuses it to decide which WCR updates need
/// no synchronization.
///
/// With \p VaryingBounds (inclusive `[lo, hi]` value ranges, typically
/// from mapParamBounds), offsets *may* reference bounded varying symbols:
/// the linearized form `a*Param + sum(c_j * v_j) + r` is disjoint across
/// Param when the offset difference interval — both sides' varying parts
/// evaluated at independent iteration points — stays strictly inside
/// `(-|a|, |a|)`. This is what exact trip counts buy: `C[320*i + j]`
/// with `j in [0, 319]` is provably per-`i` disjoint, while the same
/// subset with symbolic extents is not.
bool subsetsDisjointAcrossParam(
    const sym::SymSubset &A, const sym::SymSubset &B,
    const std::string &Param, const std::set<std::string> &Varying,
    const std::map<std::string, std::pair<std::int64_t, std::int64_t>>
        *VaryingBounds = nullptr);

} // namespace sdfgopt
} // namespace dcir

#endif // DCIR_SDFGOPT_UTILS_H
