//===- TilingPasses.cpp - map tiling for cache locality -----------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `tile-maps` pass: polyhedral-style cache blocking (Pluto-style
/// tiling, DaCe's MapTiling transformation) over the map scopes the
/// loop-to-map converter produces. Converted maps stream over full
/// rows/columns; strip-mining each rectangular dimension `i in [b, e)`
/// into a tile parameter `i__tile in [b, e) step T` plus the intra-tile
/// strip `i in [i__tile, min(i__tile + T, e))` re-blocks the traversal
/// without touching a single memlet — the intra parameter keeps the
/// original name, so subsets, WCR updates, and privatized scalars are
/// untouched and every downstream analysis keeps working on the same
/// expressions.
///
/// Parameter order after tiling is [tile dims, untiled dims, intra dims]:
/// tile and untiled ranges are parameter-free (rectangular), so the
/// parallel backend keeps `#pragma omp parallel for collapse(...)` on
/// them, while the intra strips — whose bounds reference the tile
/// parameters — stay serial inner loops. Map parameters are semantically
/// unordered (the scope is parametric-parallel), so the reorder is legal;
/// the one hazard is a dimension whose *bounds* reference another
/// parameter (triangular ranges), which is why such dimensions — and any
/// dimension another range references — are never tiled.
///
/// Soundness with WCR: a "plain"-lowered WCR update is pinned to the
/// partition parameter; after tiling, pinning moves to the intra
/// parameter, whose per-tile strips are disjoint — the code generator's
/// threadPinnedParams (sdfgopt/Utils.cpp) recovers exactly this chain,
/// so gemm's outer nest keeps its pragma with no atomics.
///
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"
#include "sdfgopt/Utils.h"

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;
using sym::SymExpr;
using sym::SymRange;

namespace {

/// Strip-mines every eligible dimension of \p ME. Returns true when at
/// least one dimension was tiled.
bool tileOneMap(SDFG &G, MapEntry *ME, const TilingOptions &Opts) {
  const size_t Rank = ME->Params.size();
  if (Rank == 0 || ME->Ranges.size() != Rank)
    return false;
  // Which parameters other dimensions' ranges reference: tiling such a
  // dimension would reorder its parameter behind a bound that needs it.
  std::set<std::string> ReferencedByRanges;
  for (const SymRange &R : ME->Ranges)
    R.collectSymbols(ReferencedByRanges);

  struct TiledDim {
    size_t Dim;
    std::string TileParam;
    std::int64_t TileSize;
    std::int64_t Trip;
  };
  std::vector<TiledDim> Tiles;
  for (size_t D = 0; D < Rank; ++D) {
    const SymRange &R = ME->Ranges[D];
    std::int64_t T = Opts.sizeFor(D);
    if (T < 2)
      continue;
    // Unit step, proven constant trip count, rectangular bounds.
    if (R.Step && !R.Step.isConstantValue(1))
      continue;
    if (!R.Begin || !R.End || !R.Begin.isConstant() || !R.End.isConstant())
      continue;
    std::int64_t Trip = R.End.constantValue() - R.Begin.constantValue();
    if (Trip < 2 * T)
      continue; // Fewer than two full tiles: blocking buys nothing.
    // No other dimension's bounds may depend on this parameter.
    if (ReferencedByRanges.count(ME->Params[D]))
      continue;
    // Tile parameters are scope-local bindings (like map parameters
    // themselves), so sibling maps may share the name; only a container
    // or interstate symbol of the same name would actually collide.
    std::string TileParam = ME->Params[D] + "__tile";
    if (G.hasData(TileParam) || G.symbols().count(TileParam))
      continue;
    Tiles.push_back({D, std::move(TileParam), T, Trip});
  }
  if (Tiles.empty())
    return false;

  std::vector<std::string> NewParams;
  std::vector<SymRange> NewRanges;
  auto IsTiled = [&](size_t D) {
    for (const TiledDim &T : Tiles)
      if (T.Dim == D)
        return true;
    return false;
  };
  // Tile dims first (they carry the work-sharing pragma and collapse)...
  for (const TiledDim &T : Tiles) {
    const SymRange &R = ME->Ranges[T.Dim];
    NewParams.push_back(T.TileParam);
    NewRanges.push_back(
        SymRange(R.Begin, R.End, SymExpr::constant(T.TileSize)));
  }
  // ...then the untiled dims in their original relative order...
  for (size_t D = 0; D < Rank; ++D)
    if (!IsTiled(D)) {
      NewParams.push_back(ME->Params[D]);
      NewRanges.push_back(ME->Ranges[D]);
    }
  // ...then the intra-tile strips (original names: memlets unchanged).
  for (const TiledDim &T : Tiles) {
    const SymRange &R = ME->Ranges[T.Dim];
    SymExpr Base = SymExpr::symbol(T.TileParam);
    SymExpr StripEnd = SymExpr::add(Base, SymExpr::constant(T.TileSize));
    if (T.Trip % T.TileSize != 0)
      StripEnd = SymExpr::min(StripEnd, R.End); // Partial last tile.
    NewParams.push_back(ME->Params[T.Dim]);
    NewRanges.push_back(SymRange(Base, StripEnd, SymExpr::constant(1)));
  }
  ME->Params = std::move(NewParams);
  ME->Ranges = std::move(NewRanges);
  return true;
}

} // namespace

unsigned dcir::sdfgopt::tileMaps(SDFG &G, const TilingOptions &Opts,
                                 OptReport *Report) {
  if (!Opts.enabled())
    return 0;
  // States inside sequential state-machine loops are left alone: the
  // surrounding loop may still be converted (and the map extended) by
  // loops-to-maps in a later fixpoint round, and the parallel backend's
  // grain heuristic would refuse re-entered regions with symbolic
  // (intra-tile) extents anyway.
  std::set<int> LoopStates;
  for (const LoopRegion &L : findLoops(G)) {
    LoopStates.insert(L.GuardId);
    LoopStates.insert(L.BodyStates.begin(), L.BodyStates.end());
  }
  unsigned Tiled = 0;
  for (const auto &S : G.states()) {
    if (LoopStates.count(S->getId()))
      continue;
    // Top-level scopes only: nested maps run serially inside one outer
    // iteration, where strip-mining adds loop overhead without enabling
    // any work-sharing or changing the reuse pattern the outer blocking
    // already fixed.
    for (auto &[ME, Scope] : topLevelMapScopes(*S)) {
      (void)Scope;
      // Already-tiled scopes are skipped per dimension (tile dims have
      // step > 1, intra dims have parameter-dependent bounds), making
      // the pass idempotent — required by its fixpoint group.
      if (tileOneMap(G, ME, Opts))
        ++Tiled;
    }
  }
  if (Report)
    Report->MapsTiled += Tiled;
  return Tiled;
}
