//===- Privatization.cpp - in-chain state fusion for wider map scopes ---------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converting an inner loop to a map leaves its dataflow in one state of
/// the surrounding loop's body chain — but LICM on the MLIR side hoists
/// subexpressions (e.g. gemm's `alpha * A[i][k]`) into transient scalars
/// defined in a *separate* chain state, so the outer loop's body holds two
/// dataflow states and the converter refuses it. `fuseStatesInChains`
/// merges such consecutive dataflow states back into one:
///
///   * only inside converter-shaped loops (sdfgopt::findLoops) whose body
///     is a straight chain;
///   * the connecting interstate edges must be unconditional and carry
///     only *dead* assignments — symbols referenced nowhere except where
///     an enclosing map scope shadows them with a parameter (the init
///     assignments of already-converted inner loops). Dead assignments
///     are relocated to the loop's init edges (value forced to 0) so the
///     set of ever-assigned symbols — and with it callSignature() — never
///     changes;
///   * cross-state dependences (RAW/WAW/WAR per container) become
///     ordering edges between *top-level scope representatives*: a node
///     inside a map scope is represented by the scope's exit (as a
///     source) or entry (as a destination), so scope discovery in the
///     interpreter and the code generator stays intact.
///
/// The merged state is exactly the shape convertLoopsToMaps (with scalar
/// privatization, see Utils::privatizableScalars) converts at the outer
/// induction variable — the missing step for the gemm/syrk main nests.
///
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"
#include "sdfgopt/Utils.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;
using sym::SymExpr;

namespace {

/// True when every reference to symbol \p Name is shadowed by a map
/// parameter of an enclosing scope (and no interstate condition or
/// assignment value reads it): removing or moving an assignment of
/// \p Name cannot change meaning.
bool symbolShadowedEverywhere(const SDFG &G, const std::string &Name) {
  for (const auto &E : G.interstateEdges()) {
    std::set<std::string> Syms;
    if (E.Condition)
      E.Condition.collectSymbols(Syms);
    for (const auto &[K, V] : E.Assignments)
      V.collectSymbols(Syms);
    if (Syms.count(Name))
      return false;
  }
  for (const auto &[DName, D] : G.descs())
    for (const SymExpr &Dim : D.Shape) {
      std::set<std::string> Syms;
      Dim.collectSymbols(Syms);
      if (Syms.count(Name))
        return false;
    }
  for (const auto &S : G.states()) {
    // Params covering each node: the union over every scope (any nesting
    // depth) containing it. Entry and exit nodes count as inside their
    // own scope — memlets on their edges evaluate under the bindings.
    std::map<int, std::set<std::string>> Cover;
    for (const auto &N : S->nodes()) {
      const auto *ME = dyn_cast<MapEntry>(N.get());
      if (!ME)
        continue;
      std::set<int> Scope = S->scopeNodes(*ME);
      Scope.insert(ME->getId());
      Scope.insert(ME->ExitId);
      for (int Id : Scope)
        Cover[Id].insert(ME->Params.begin(), ME->Params.end());
    }
    auto Covered = [&](int Id) {
      auto It = Cover.find(Id);
      return It != Cover.end() && It->second.count(Name) > 0;
    };
    for (const auto &E : S->edges()) {
      if (E.M.isEmpty())
        continue;
      std::set<std::string> Syms;
      E.M.Subset.collectSymbols(Syms);
      if (Syms.count(Name) && !(Covered(E.Src) && Covered(E.Dst)))
        return false;
    }
    for (const auto &N : S->nodes()) {
      if (const auto *T = dyn_cast<Tasklet>(N.get())) {
        std::set<std::string> Syms;
        for (const auto &[Conn, Code] : T->Code) {
          std::vector<const TExpr *> Work = {&Code};
          while (!Work.empty()) {
            const TExpr *E = Work.back();
            Work.pop_back();
            if (E->K == TExpr::Kind::Sym && E->Sym)
              E->Sym.collectSymbols(Syms);
            for (const TExpr &Ch : E->Children)
              Work.push_back(&Ch);
          }
        }
        if (Syms.count(Name) && !Covered(T->getId()))
          return false;
      }
      if (const auto *ME = dyn_cast<MapEntry>(N.get())) {
        // A range may reference the entry's own earlier parameters (the
        // interpreter binds dimensions outside-in), so the entry's own
        // params also shadow.
        std::set<std::string> Syms;
        for (const sym::SymRange &R : ME->Ranges)
          R.collectSymbols(Syms);
        if (!Syms.count(Name))
          continue;
        if (Covered(ME->getId()))
          continue;
        if (std::find(ME->Params.begin(), ME->Params.end(), Name) ==
            ME->Params.end())
          return false;
      }
    }
  }
  return true;
}

/// Representative maps for scope-aware dependence linking: a node inside
/// a top-level scope is represented by the scope's exit (source role) or
/// entry (destination role); top-level nodes represent themselves.
struct ScopeReps {
  std::map<int, int> SrcRep, DstRep;

  explicit ScopeReps(const State &S) {
    for (const auto &[ME, Scope] : topLevelMapScopes(S)) {
      for (int Id : Scope) {
        SrcRep[Id] = ME->ExitId;
        DstRep[Id] = ME->getId();
      }
      SrcRep[ME->getId()] = ME->ExitId;
      DstRep[ME->getId()] = ME->getId();
    }
  }
  int src(int Id) const {
    auto It = SrcRep.find(Id);
    return It == SrcRep.end() ? Id : It->second;
  }
  int dst(int Id) const {
    auto It = DstRep.find(Id);
    return It == DstRep.end() ? Id : It->second;
  }
};

/// Reader/writer nodes per container (raw node ids; the linker lifts
/// them to scope representatives by role — a node can be the source of
/// one ordering edge and the destination of another).
struct RepSummary {
  std::map<std::string, std::set<int>> Readers, Writers;
};

RepSummary summarizeReps(const State &S, const SDFG &G) {
  RepSummary Sum;
  for (const auto &E : S.edges()) {
    if (E.M.isEmpty())
      continue;
    const auto *SrcA = dyn_cast<AccessNode>(S.getNode(E.Src));
    const auto *DstA = dyn_cast<AccessNode>(S.getNode(E.Dst));
    if (DstA)
      Sum.Writers[DstA->getData()].insert(E.Src);
    else if (isa<MapExit>(S.getNode(E.Dst)))
      Sum.Writers[E.M.Data].insert(E.Src);
    if (SrcA)
      Sum.Readers[SrcA->getData()].insert(E.Dst);
    else if (isa<MapEntry>(S.getNode(E.Src)))
      Sum.Readers[E.M.Data].insert(E.Dst);
    // Scalars referenced inside the subset are read by the moving node.
    std::set<std::string> Refs;
    E.M.Subset.collectSymbols(Refs);
    for (const std::string &R : Refs)
      if (G.hasData(R))
        Sum.Readers[R].insert(SrcA ? E.Dst : E.Src);
  }
  return Sum;
}

/// Fuses the first mergeable pair of consecutive dataflow states in the
/// loop's body chain. Returns true when a fusion happened.
bool fuseChainOnce(SDFG &G, const LoopRegion &L) {
  auto Chain = walkLoopChain(G, L);
  if (!Chain)
    return false;
  // Locate two dataflow states separated only by empty states.
  int AIdx = -1, BIdx = -1;
  for (size_t I = 0; I < Chain->States.size(); ++I) {
    State *S = G.getState(Chain->States[I]);
    if (!S || S->nodes().empty())
      continue;
    if (AIdx < 0) {
      AIdx = static_cast<int>(I);
      continue;
    }
    BIdx = static_cast<int>(I);
    break;
  }
  if (BIdx < 0)
    return false;
  State *Sa = G.getState(Chain->States[AIdx]);
  State *Sb = G.getState(Chain->States[BIdx]);
  // Assignments on the connecting edges (Edges[i] leads into States[i];
  // the edges from Sa to Sb are Edges[AIdx+1 .. BIdx]). Dead ones (every
  // read shadowed by a map parameter) are relocated as before; live ones
  // — derived index symbols like `off = N*i` between a load state and a
  // map state — are forward-substituted into Sb, the same treatment
  // analyzeLoop gives its chain assignments, and replayed on the fused
  // state's out edge in case anything downstream still reads them.
  // States never assign symbols, so moving a symbol assignment across Sb
  // cannot change any value it produces.
  std::set<std::string> Dead;
  std::vector<std::pair<std::string, SymExpr>> Live; // Execution order.
  std::map<std::string, SymExpr> Subs;
  const std::set<std::string> SbParams = mapParamsIn(*Sb);
  for (int I = AIdx + 1; I <= BIdx; ++I)
    for (const auto &[Name, V] : Chain->Edges[I]->Assignments) {
      if (Name == L.Iv)
        return false; // The induction value must stay on its edges.
      if (symbolShadowedEverywhere(G, Name)) {
        Dead.insert(Name);
        continue;
      }
      if (SbParams.count(Name))
        return false; // Shadowed inside Sb yet live elsewhere.
      if (referencesContainer(V, G))
        return false; // A state write could change the value mid-flight.
      Subs[Name] = V.substitute(Subs);
      Live.push_back({Name, V});
    }
  // Replaying live assignments needs the single unconditional out-edge
  // walkLoopChain guarantees; re-check before mutating anything.
  if (!Live.empty()) {
    unsigned SbOut = 0;
    for (const auto &E : G.interstateEdges())
      if (E.Src == Sb->getId()) {
        ++SbOut;
        if (E.Condition && !E.Condition.isConstant())
          return false;
      }
    if (SbOut != 1)
      return false;
  }
  substituteInState(*Sb, Subs);

  // Dependence links at scope granularity, computed before mutation. The
  // edge source is lifted to its top-level scope's *exit* (the scope has
  // finished), the destination to its scope's *entry* (the scope has not
  // started) — entries/exits stay the only scope-crossing endpoints, so
  // scope discovery in the interpreter and code generator is preserved.
  RepSummary SumA = summarizeReps(*Sa, G);
  RepSummary SumB = summarizeReps(*Sb, G);
  ScopeReps RepsA(*Sa), RepsB(*Sb);
  std::map<int, Node *> Map = Sa->absorb(*Sb);
  auto Link = [&](int A, int B) {
    Node *Src = Sa->getNode(RepsA.src(A));
    Node *Dst = Map[RepsB.dst(B)];
    if (Src->getId() == Dst->getId())
      return;
    for (const auto &Ex : Sa->edges())
      if (Ex.Src == Src->getId() && Ex.Dst == Dst->getId() &&
          Ex.M.isEmpty() && Ex.SrcConn.empty())
        return;
    Sa->connect(Src, "", Dst, "", Memlet());
  };
  for (const auto &[Data, W1] : SumA.Writers) {
    if (auto It = SumB.Readers.find(Data); It != SumB.Readers.end())
      for (int A : W1)
        for (int B : It->second)
          Link(A, B);
    if (auto It = SumB.Writers.find(Data); It != SumB.Writers.end())
      for (int A : W1)
        for (int B : It->second)
          Link(A, B);
  }
  for (const auto &[Data, R1] : SumA.Readers)
    if (auto It = SumB.Writers.find(Data); It != SumB.Writers.end())
      for (int A : R1)
        for (int B : It->second)
          Link(A, B);

  // Relocate the dead assignments onto the loop's init edges (dead value,
  // forced to 0) so every symbol keeps at least one assignment and the
  // call signature's free-symbol set cannot change.
  for (auto &E : G.interstateEdges()) {
    if (E.Dst != L.GuardId || L.BodyStates.count(E.Src))
      continue;
    for (const std::string &Name : Dead) {
      bool Already = false;
      for (const auto &[K, V] : E.Assignments)
        if (K == Name)
          Already = true;
      if (!Already)
        E.Assignments.push_back({Name, SymExpr::constant(0)});
    }
  }
  // Rewire: Sb's out-edges leave Sa; the intermediate empty states and Sb
  // disappear (eraseState also drops their incident edges).
  for (auto &E : G.interstateEdges())
    if (E.Src == Sb->getId())
      E.Src = Sa->getId();
  for (int I = AIdx + 1; I <= BIdx; ++I)
    if (State *S = G.getState(Chain->States[I]))
      G.eraseState(S);
  // Live assignments: substituted copies now cover every read inside the
  // fused state. A symbol nothing else reads is dropped (and, when it
  // just lost its only assignment, undeclared so callSignature's
  // free-symbol set cannot change); the rest replay on the out edge,
  // ahead of its existing assignments (e.g. the back edge's iv update).
  if (!Live.empty()) {
    std::set<std::string> StillAssigned;
    for (const auto &E : G.interstateEdges())
      for (const auto &[Name, V] : E.Assignments)
        StillAssigned.insert(Name);
    const std::set<std::string> Referenced = collectReferencedNames(G);
    std::vector<std::pair<std::string, SymExpr>> Replay;
    for (auto &[Name, V] : Live) {
      if (Referenced.count(Name)) {
        Replay.push_back({Name, std::move(V)});
        continue;
      }
      if (!StillAssigned.count(Name))
        G.symbols().erase(Name);
    }
    if (!Replay.empty())
      for (auto &E : G.interstateEdges())
        if (E.Src == Sa->getId()) {
          E.Assignments.insert(E.Assignments.begin(), Replay.begin(),
                               Replay.end());
          break;
        }
  }
  return true;
}

} // namespace

unsigned dcir::sdfgopt::fuseStatesInChains(SDFG &G, OptReport *Report) {
  unsigned Fused = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const LoopRegion &L : findLoops(G)) {
      if (fuseChainOnce(G, L)) {
        ++Fused;
        Changed = true;
        break; // The state machine changed: re-discover loops.
      }
    }
  }
  if (Report)
    Report->ChainStatesFused += Fused;
  return Fused;
}
