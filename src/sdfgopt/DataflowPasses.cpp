//===- DataflowPasses.cpp - §6.2: DCE, dead dataflow, consolidation -----------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"
#include "sdfgopt/Utils.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;
using sym::SymExpr;

//===----------------------------------------------------------------------===//
// Dead state elimination (§6.2)
//===----------------------------------------------------------------------===//

unsigned dcir::sdfgopt::eliminateDeadStates(SDFG &G) {
  unsigned Removed = 0;
  // Edges whose conditions are decidable via the propagated symbols.
  auto &Edges = G.interstateEdges();
  for (auto It = Edges.begin(); It != Edges.end();) {
    if (It->Condition) {
      auto Proof = It->Condition.tryProve(sym::SymbolAssumption::Unknown);
      if (Proof && !*Proof) {
        It = Edges.erase(It);
        ++Removed;
        continue;
      }
      if (Proof && *Proof) {
        It->Condition = SymExpr(); // Always taken.
      }
    }
    ++It;
  }
  // Unreachable states.
  std::set<int> Reachable;
  if (State *Start = G.getStartState()) {
    std::vector<int> Work = {Start->getId()};
    while (!Work.empty()) {
      int Id = Work.back();
      Work.pop_back();
      if (!Reachable.insert(Id).second)
        continue;
      for (const auto *E : G.outEdges(G.getState(Id)))
        Work.push_back(E->Dst);
    }
  }
  std::vector<State *> Dead;
  for (const auto &S : G.states())
    if (!Reachable.count(S->getId()))
      Dead.push_back(S.get());
  for (State *S : Dead) {
    G.eraseState(S);
    ++Removed;
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Dead dataflow elimination (§6.2)
//===----------------------------------------------------------------------===//

namespace {

/// Container-level dataflow dependencies: Edges[X] = containers whose
/// writes consume X (i.e. some tasklet/copy reads X and writes them).
std::map<std::string, std::set<std::string>>
buildFlowGraph(const SDFG &G) {
  std::map<std::string, std::set<std::string>> Flow;
  for (const auto &S : G.states()) {
    // Per-tasklet direct reads/writes. Value edges (tasklet-to-tasklet
    // scalar forwarding) chain arbitrarily deep, so a producer's reads
    // reach the *effective* writes of its whole downstream closure.
    std::map<int, std::set<std::string>> Reads, Writes;
    std::vector<std::pair<int, int>> ValueEdges;
    for (const auto &E : S->edges()) {
      if (E.M.isEmpty()) {
        if (!E.SrcConn.empty() && !E.DstConn.empty())
          ValueEdges.push_back({E.Src, E.Dst});
        continue;
      }
      const auto *SrcA = dyn_cast<AccessNode>(S->getNode(E.Src));
      const auto *DstA = dyn_cast<AccessNode>(S->getNode(E.Dst));
      if (SrcA && DstA) {
        Flow[SrcA->getData()].insert(DstA->getData());
        continue;
      }
      std::set<std::string> Refs;
      E.M.Subset.collectSymbols(Refs);
      if (SrcA) { // Read by node E.Dst.
        Reads[E.Dst].insert(SrcA->getData());
        for (const std::string &R : Refs)
          if (G.hasData(R))
            Reads[E.Dst].insert(R);
      }
      if (DstA) { // Written by node E.Src.
        Writes[E.Src].insert(DstA->getData());
        for (const std::string &R : Refs)
          if (G.hasData(R))
            Reads[E.Src].insert(R);
      }
    }
    // Effective writes: propagate consumer writes back along value edges.
    bool Grow = true;
    while (Grow) {
      Grow = false;
      for (const auto &[Src, Dst] : ValueEdges) {
        size_t Before = Writes[Src].size();
        Writes[Src].insert(Writes[Dst].begin(), Writes[Dst].end());
        if (Writes[Src].size() != Before)
          Grow = true;
      }
    }
    for (const auto &[NodeId, R] : Reads)
      for (const std::string &Rd : R)
        for (const std::string &W : Writes[NodeId])
          Flow[Rd].insert(W);
  }
  return Flow;
}

/// Roots of liveness: non-transients, and anything the state machine itself
/// reads (conditions, assignments, shapes).
std::set<std::string> livenessRoots(const SDFG &G) {
  std::set<std::string> Roots;
  for (const auto &[Name, D] : G.descs())
    if (!D.Transient)
      Roots.insert(Name);
  for (const auto &E : G.interstateEdges()) {
    std::set<std::string> Refs;
    if (E.Condition)
      E.Condition.collectSymbols(Refs);
    for (const auto &[K, V] : E.Assignments)
      V.collectSymbols(Refs);
    for (const std::string &R : Refs)
      if (G.hasData(R))
        Roots.insert(R);
  }
  for (const auto &[Name, D] : G.descs()) {
    std::set<std::string> Refs;
    for (const SymExpr &Dim : D.Shape)
      Dim.collectSymbols(Refs);
    for (const std::string &R : Refs)
      if (G.hasData(R))
        Roots.insert(R);
  }
  return Roots;
}

/// Cascading removal of computation that no longer produces live data.
unsigned cascadeCleanup(SDFG &G) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &S : G.states()) {
      // Tasklets with no remaining outputs (data or value).
      std::vector<Node *> DeadTasklets;
      for (const auto &N : S->nodes()) {
        const auto *T = dyn_cast<Tasklet>(N.get());
        if (!T)
          continue;
        bool HasOutput = false;
        for (const auto *E : S->outEdges(T))
          if (!E->M.isEmpty() || !E->SrcConn.empty())
            HasOutput = true;
        if (!HasOutput)
          DeadTasklets.push_back(N.get());
      }
      for (Node *N : DeadTasklets) {
        S->eraseNode(N);
        ++Removed;
        Changed = true;
      }
      // Orphaned access nodes.
      std::vector<Node *> Orphans;
      for (const auto &N : S->nodes())
        if (isa<AccessNode>(N.get()) && S->inEdges(N.get()).empty() &&
            S->outEdges(N.get()).empty())
          Orphans.push_back(N.get());
      for (Node *N : Orphans) {
        S->eraseNode(N);
        Changed = true;
      }
    }
  }
  return Removed;
}

} // namespace

unsigned dcir::sdfgopt::eliminateDeadDataflow(SDFG &G, OptReport *Report) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    auto Flow = buildFlowGraph(G);
    std::set<std::string> Live = livenessRoots(G);
    // Backward closure: X is live if it flows into a live container.
    bool Grow = true;
    while (Grow) {
      Grow = false;
      for (const auto &[Src, Dsts] : Flow) {
        if (Live.count(Src))
          continue;
        for (const std::string &D : Dsts) {
          if (Live.count(D)) {
            Live.insert(Src);
            Grow = true;
            break;
          }
        }
      }
    }
    // Remove every access to dead containers.
    std::vector<std::string> DeadContainers;
    for (const auto &[Name, D] : G.descs())
      if (D.Transient && !Live.count(Name))
        DeadContainers.push_back(Name);
    for (const std::string &Name : DeadContainers) {
      for (const auto &S : G.states()) {
        std::vector<Node *> Victims;
        for (const auto &N : S->nodes())
          if (const auto *A = dyn_cast<AccessNode>(N.get()))
            if (A->getData() == Name)
              Victims.push_back(N.get());
        for (Node *N : Victims) {
          S->eraseNode(N);
          ++Removed;
          Changed = true;
        }
      }
    }
    Removed += cascadeCleanup(G);
    // Containers with no remaining structural or symbolic presence vanish.
    std::set<std::string> Referenced = collectReferencedNames(G);
    std::vector<std::string> Removable;
    for (const auto &[Name, D] : G.descs())
      if (D.Transient && !Referenced.count(Name) && !hasAccessNodes(G, Name))
        Removable.push_back(Name);
    for (const std::string &Name : Removable) {
      G.removeData(Name);
      if (Report)
        ++Report->ArraysEliminated;
      Changed = true;
    }
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Memlet consolidation (§6.2)
//===----------------------------------------------------------------------===//

unsigned dcir::sdfgopt::consolidateMemlets(SDFG &G) {
  unsigned Merged = 0;
  for (const auto &S : G.states()) {
    // Merge read-only access nodes per container.
    std::map<std::string, Node *> Canonical;
    std::vector<Node *> Victims;
    for (const auto &N : S->nodes()) {
      const auto *A = dyn_cast<AccessNode>(N.get());
      if (!A)
        continue;
      bool ReadOnly = true;
      for (const auto *E : S->inEdges(A))
        if (!E->M.isEmpty())
          ReadOnly = false;
      if (!ReadOnly || !S->inEdges(A).empty())
        continue; // Keep nodes with dependency in-edges distinct.
      auto It = Canonical.find(A->getData());
      if (It == Canonical.end()) {
        Canonical[A->getData()] = N.get();
        continue;
      }
      // Rewire this node's out-edges to the canonical node.
      for (auto &E : S->edges())
        if (E.Src == N->getId())
          E.Src = It->second->getId();
      Victims.push_back(N.get());
      ++Merged;
    }
    for (Node *N : Victims)
      S->eraseNode(N);
    // Deduplicate identical edges.
    auto &Edges = S->edges();
    for (size_t I = 0; I < Edges.size(); ++I) {
      for (size_t J = Edges.size(); J-- > I + 1;) {
        const auto &A = Edges[I];
        const auto &B = Edges[J];
        if (A.Src == B.Src && A.Dst == B.Dst && A.SrcConn == B.SrcConn &&
            A.DstConn == B.DstConn && A.M.Data == B.M.Data &&
            A.M.Wcr == B.M.Wcr &&
            (A.M.isEmpty() || A.M.Subset.equals(B.M.Subset))) {
          Edges.erase(Edges.begin() + J);
          ++Merged;
        }
      }
    }
  }
  return Merged;
}
