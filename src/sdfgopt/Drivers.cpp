//===- Drivers.cpp - simplify (-O1) and auto-optimize (-O2) --------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;

void dcir::sdfgopt::runSimplify(SDFG &G, OptReport &Report) {
  // Idempotent fixpoint over inference + data-movement-reduction passes
  // (the paper's "SDFG simplification pass ... equivalent to -O1").
  for (int Round = 0; Round < 12; ++Round) {
    unsigned Changes = 0;
    unsigned N;
    N = promoteScalarsToSymbols(G);
    Report.ScalarsPromoted += N;
    Changes += N;
    N = propagateSymbols(G);
    Report.SymbolsPropagated += N;
    Changes += N;
    N = eliminateDeadStates(G);
    Report.DeadStates += N;
    Changes += N;
    N = fuseStates(G);
    Report.StatesFused += N;
    Changes += N;
    N = detectUpdates(G);
    Report.UpdatesDetected += N;
    Changes += N;
    N = propagateConstantWrites(G);
    Report.ConstantsPropagated += N;
    Changes += N;
    N = eliminateDeadDataflow(G, &Report);
    Report.DeadDataflowNodes += N;
    Changes += N;
    N = consolidateMemlets(G);
    Report.MemletsConsolidated += N;
    Changes += N;
    N = eliminateEmptyLoops(G);
    Report.EmptyLoopsRemoved += N;
    Changes += N;
    if (Changes == 0)
      break;
  }
}

void dcir::sdfgopt::runAutoOptimize(SDFG &G, OptReport &Report,
                                    bool ParallelizeLoops) {
  runSimplify(G, Report);
  // Memory-scheduling optimizations (-O2): loop fusion exposes more
  // simplification opportunities, so interleave.
  for (int Round = 0; Round < 6; ++Round) {
    unsigned Fused = fuseMemoryReducingLoops(G);
    Report.LoopsFused += Fused;
    if (Fused == 0)
      break;
    runSimplify(G, Report);
  }
  Report.StackPromotions += preAllocateMemory(G);
  // Loop-to-map conversion runs last: the earlier passes never see map
  // scopes, and the fused/simplified loops are the profitable ones.
  if (ParallelizeLoops)
    convertLoopsToMaps(G, &Report);
}
