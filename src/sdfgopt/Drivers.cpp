//===- Drivers.cpp - declarative -O1/-O2 pipeline definitions ------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-centric pipelines as declarative definitions over the shared
/// instrumented pass framework (opt::PipelineDriver). The hand-rolled
/// fixpoint loops and per-pass counter bookkeeping the legacy drivers
/// carried live in the driver now: every pass is registered once (name,
/// callable, aux sub-counter sink), pipelines are trees of fixpoint
/// groups, and OptReport's legacy aggregate counters are derived from the
/// per-pass PipelineReport by accumulate().
///
//===----------------------------------------------------------------------===//

#include "sdfgopt/Passes.h"

#include "analysis/Analysis.h"

#include <cstdio>

using namespace dcir;
using namespace dcir::sdfgopt;
using namespace dcir::sdfg;

using SdfgPipeline = opt::PipelineDriver<SDFG>;

//===----------------------------------------------------------------------===//
// Pass-name <-> OptReport field mapping
//===----------------------------------------------------------------------===//

void OptReport::accumulate(const opt::PipelineReport &R) {
  ScalarsPromoted += R.rewrites("promote-scalars");
  SymbolsPropagated += R.rewrites("propagate-symbols");
  DeadStates += R.rewrites("dead-states");
  StatesFused += R.rewrites("fuse-states");
  UpdatesDetected += R.rewrites("detect-updates");
  ConstantsPropagated += R.rewrites("propagate-constants");
  DeadDataflowNodes += R.rewrites("dead-dataflow");
  MemletsConsolidated += R.rewrites("consolidate-memlets");
  EmptyLoopsRemoved += R.rewrites("empty-loops");
  StackPromotions += R.rewrites("prealloc");
  LoopsFused += R.rewrites("fuse-loops");
  SymbolsSpecialized += R.rewrites("specialize-symbols");
  // fuse-chains / loops-to-maps maintain ChainStatesFused /
  // LoopsConvertedToMaps (and their sub-counters) through the aux sink.
  Passes.merge(R);
}

//===----------------------------------------------------------------------===//
// Registry and pipeline definitions
//===----------------------------------------------------------------------===//

namespace {

/// The single source of truth for pass names: one entry per sdfgopt pass,
/// shared by the spec registry, the -O pipeline builders, and (through
/// the registry) the ablation bench. Membership flags define the groups.
/// The TilingOptions / SpecializationOptions arguments parameterize
/// "tile-maps" / "specialize-symbols" (every other pass ignores them).
struct PassDef {
  const char *Name;
  std::function<unsigned(SDFG &, OptReport *, const TilingOptions &,
                         const SpecializationOptions &)>
      Fn;
  bool InSimplify;    ///< Member of the simplify fixpoint group (-O1).
  bool InParallelize; ///< Member of the loop-to-map conversion group.
};

const std::vector<PassDef> &passDefs() {
  using TO = TilingOptions;
  using SO = SpecializationOptions;
  static const std::vector<PassDef> Defs = {
      {"promote-scalars",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return promoteScalarsToSymbols(G);
       },
       true, false},
      {"propagate-symbols",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return propagateSymbols(G);
       },
       true, false},
      {"dead-states",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return eliminateDeadStates(G);
       },
       true, false},
      {"fuse-states",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return fuseStates(G);
       },
       true, false},
      {"detect-updates",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return detectUpdates(G);
       },
       true, false},
      {"propagate-constants",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return propagateConstantWrites(G);
       },
       true, false},
      {"dead-dataflow",
       [](SDFG &G, OptReport *R, const TO &, const SO &) {
         return eliminateDeadDataflow(G, R);
       },
       true, false},
      {"consolidate-memlets",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return consolidateMemlets(G);
       },
       true, false},
      {"empty-loops",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return eliminateEmptyLoops(G);
       },
       true, false},
      {"prealloc",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return preAllocateMemory(G);
       },
       false, false},
      {"fuse-loops",
       [](SDFG &G, OptReport *, const TO &, const SO &) {
         return fuseMemoryReducingLoops(G);
       },
       false, false},
      {"fuse-chains",
       [](SDFG &G, OptReport *R, const TO &, const SO &) {
         return fuseStatesInChains(G, R);
       },
       false, true},
      {"loops-to-maps",
       [](SDFG &G, OptReport *R, const TO &, const SO &) {
         return convertLoopsToMapsOnce(G, R);
       },
       false, true},
      // Cache blocking runs after conversion within the same fixpoint
      // group (it skips states still inside sequential loops, so it only
      // fires on finished scopes). A no-op unless TileSizes is set.
      {"tile-maps",
       [](SDFG &G, OptReport *R, const TO &T, const SO &) {
         return tileMaps(G, T, R);
       },
       false, true},
      // Speculative conversion: maps the proving pass left behind, marked
      // MapEntry::Speculative and parallel only behind a synthesized
      // runtime guard. Outside the default groups — the api layer appends
      // it after the -O2 pipeline when speculation is requested
      // (CompileOptions::Speculate or --static-verify=guard), and
      // --passes= specs can name it directly.
      {"speculate-maps",
       [](SDFG &G, OptReport *R, const TO &, const SO &) {
         return convertLoopsToMapsSpeculativeOnce(G, R);
       },
       false, false},
      // Shape specialization: constant-folds bound symbol values into the
      // graph's symbolic expressions. A no-op unless SymbolValues is set;
      // runs *first* in the autoopt pipeline when enabled, so everything
      // downstream sees proven-constant trip counts.
      {"specialize-symbols",
       [](SDFG &G, OptReport *, const TO &, const SO &Sp) {
         return specializeSymbols(G, Sp);
       },
       false, false},
      // The independent static soundness analyzer (src/analysis/), usable
      // anywhere in a --passes= spec. Read-only: both report 0 rewrites
      // (fixpoint groups see them as converged) and print findings to
      // stderr. The per-pass wall-time in --pass-report-json prices the
      // verification itself.
      {"verify-races",
       [](SDFG &G, OptReport *, const TO &, const SO &) -> unsigned {
         analysis::AnalysisResult R = analysis::checkRaces(G);
         if (!R.clean())
           std::fprintf(stderr, "%s", R.text().c_str());
         return 0;
       },
       false, false},
      {"verify-bounds",
       [](SDFG &G, OptReport *, const TO &, const SO &) -> unsigned {
         analysis::AnalysisResult R = analysis::checkBounds(G);
         if (!R.clean())
           std::fprintf(stderr, "%s", R.text().c_str());
         return 0;
       },
       false, false},
  };
  return Defs;
}

const PassDef &passDef(const std::string &Name) {
  for (const PassDef &D : passDefs())
    if (Name == D.Name)
      return D;
  std::abort(); // A group builder named a pass missing from the table.
}

void addDef(SdfgPipeline &P, const std::string &Name, OptReport *Aux,
            const TilingOptions &Tiling,
            const SpecializationOptions &Spec = SpecializationOptions()) {
  const PassDef &D = passDef(Name);
  auto Fn = D.Fn;
  P.add(Name, [Fn, Aux, Tiling, Spec](SDFG &G) {
    return Fn(G, Aux, Tiling, Spec);
  });
}

/// The simplify fixpoint group (paper §6.1/§6.2).
std::unique_ptr<SdfgPipeline> simplifyGroup(OptReport *Aux) {
  auto P = std::make_unique<SdfgPipeline>("simplify", /*Fixpoint=*/true);
  for (const PassDef &D : passDefs())
    if (D.InSimplify)
      addDef(*P, D.Name, Aux, TilingOptions());
  return P;
}

/// The loop-to-map conversion group: in-chain state fusion widens the
/// candidate bodies converting inner loops leaves behind, so the passes
/// iterate together; tile-maps blocks the finished scopes for locality.
std::unique_ptr<SdfgPipeline> parallelizeGroup(OptReport *Aux,
                                               const TilingOptions &Tiling) {
  auto P = std::make_unique<SdfgPipeline>("parallelize", /*Fixpoint=*/true);
  for (const PassDef &D : passDefs())
    if (D.InParallelize)
      addDef(*P, D.Name, Aux, Tiling);
  return P;
}

opt::PipelineContext<SDFG> makeContext(const PipelineOptions &Opts) {
  opt::PipelineContext<SDFG> Ctx;
  Ctx.Diags = Opts.Diags;
  Ctx.MaxFixpointRounds = Opts.MaxFixpointRounds;
  if (Opts.VerifyEachPass)
    Ctx.VerifyEach = [](SDFG &G, DiagnosticEngine &D) {
      return G.validate(D);
    };
  return Ctx;
}

} // namespace

opt::PassRegistry<SDFG> dcir::sdfgopt::passRegistry(
    OptReport *Aux, bool ParallelizeLoops, const TilingOptions &Tiling,
    const SpecializationOptions &Spec) {
  // Passes with sub-counters (and the $DCIR_MAX_MAP_CONVERSIONS cap,
  // which counts cumulatively through the report) always need a sink.
  // With a caller-provided report the factories hold a non-owning view
  // (the caller guarantees its lifetime); without one they share an
  // owned fallback, so passes created from this registry never dangle
  // and the conversion cap still counts across driver sweeps.
  std::shared_ptr<OptReport> Sink =
      Aux ? std::shared_ptr<OptReport>(std::shared_ptr<OptReport>(), Aux)
          : std::make_shared<OptReport>();
  opt::PassRegistry<SDFG> R;
  for (const PassDef &D : passDefs()) {
    std::string Name = D.Name;
    auto Fn = D.Fn;
    R.registerPass(Name, [Name, Fn, Sink, Tiling, Spec]() {
      return std::make_unique<opt::FunctionPass<SDFG>>(
          Name, [Fn, Sink, Tiling, Spec](SDFG &G) {
            return Fn(G, Sink.get(), Tiling, Spec);
          });
    });
  }
  // Whole-pipeline aliases, usable as spec elements. The group builders
  // take a raw pointer; the factory's captured Sink keeps it alive.
  R.registerPass("simplify",
                 [Sink]() { return simplifyGroup(Sink.get()); });
  R.registerPass("autoopt", [Sink, ParallelizeLoops, Tiling, Spec]() {
    return buildAutoOptimizePipeline(Sink.get(), ParallelizeLoops, Tiling,
                                     Spec);
  });
  return R;
}

std::unique_ptr<SdfgPipeline>
dcir::sdfgopt::buildSimplifyPipeline(OptReport *Aux) {
  return simplifyGroup(Aux);
}

std::unique_ptr<SdfgPipeline>
dcir::sdfgopt::buildAutoOptimizePipeline(OptReport *Aux,
                                         bool ParallelizeLoops,
                                         const TilingOptions &Tiling,
                                         const SpecializationOptions &Spec) {
  auto P = std::make_unique<SdfgPipeline>("autoopt");
  // Shape specialization first: with bound symbol values folded in,
  // simplify sees constant conditions, conversion sees constant trip
  // counts, and tiling sees proven extents.
  if (Spec.enabled())
    addDef(*P, "specialize-symbols", Aux, TilingOptions(), Spec);
  P->add(simplifyGroup(Aux));
  // Memory-scheduling (-O2): loop fusion exposes more simplification
  // opportunities, so the group interleaves it with simplify rounds.
  auto Sched = std::make_unique<SdfgPipeline>("schedule", /*Fixpoint=*/true);
  addDef(*Sched, "fuse-loops", Aux, TilingOptions());
  Sched->add(simplifyGroup(Aux));
  P->add(std::move(Sched));
  addDef(*P, "prealloc", Aux, TilingOptions());
  // Loop-to-map conversion runs last: the earlier passes never see map
  // scopes, and the fused/simplified loops are the profitable ones.
  if (ParallelizeLoops)
    P->add(parallelizeGroup(Aux, Tiling));
  return P;
}

bool dcir::sdfgopt::runPipeline(SDFG &G, opt::PassBase<SDFG> &Pipeline,
                                OptReport &Report,
                                const PipelineOptions &Opts) {
  opt::PipelineContext<SDFG> Ctx = makeContext(Opts);
  Pipeline.run(G, Ctx);
  Report.accumulate(Ctx.Report);
  return !Ctx.Failed;
}

void dcir::sdfgopt::runSimplify(SDFG &G, OptReport &Report,
                                const PipelineOptions &Opts) {
  auto P = buildSimplifyPipeline(&Report);
  runPipeline(G, *P, Report, Opts);
}

void dcir::sdfgopt::runAutoOptimize(SDFG &G, OptReport &Report,
                                    bool ParallelizeLoops,
                                    const PipelineOptions &Opts) {
  auto P = buildAutoOptimizePipeline(&Report, ParallelizeLoops);
  runPipeline(G, *P, Report, Opts);
}

unsigned dcir::sdfgopt::convertLoopsToMaps(SDFG &G, OptReport *Report) {
  OptReport Local;
  OptReport &Sink = Report ? *Report : Local;
  auto P = parallelizeGroup(&Sink, TilingOptions()); // Conversion only.
  opt::PipelineContext<SDFG> Ctx;
  P->run(G, Ctx);
  unsigned Converted = Ctx.Report.rewrites("loops-to-maps");
  Sink.accumulate(Ctx.Report);
  return Converted;
}
