//===- Arith.cpp ----------------------------------------------------------------===//

#include "dialects/Arith.h"

#include "support/StringUtils.h"

using namespace dcir;
using namespace dcir::ir;

static bool verifySameOperandAndResultType(Operation *Op,
                                           DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1) {
    Diags.error(Op->getLoc(),
                "'" + Op->getName() + "' expects two operands, one result");
    return false;
  }
  Type T = Op->getResult(0)->getType();
  if (Op->getOperand(0)->getType() != T ||
      Op->getOperand(1)->getType() != T) {
    Diags.error(Op->getLoc(),
                "'" + Op->getName() + "' requires matching operand/result "
                                      "types");
    return false;
  }
  return true;
}

static bool verifyCompare(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1) {
    Diags.error(Op->getLoc(), "comparison expects two operands, one result");
    return false;
  }
  Attribute Pred = Op->getAttr("predicate");
  if (!Pred || Pred.getKind() != AttrKind::String) {
    Diags.error(Op->getLoc(), "comparison requires a 'predicate' string");
    return false;
  }
  if (Op->getOperand(0)->getType() != Op->getOperand(1)->getType()) {
    Diags.error(Op->getLoc(), "comparison operand types must match");
    return false;
  }
  Type R = Op->getResult(0)->getType();
  const auto *IT = R.dyn<IntegerType>();
  if (!IT || IT->getWidth() != 1) {
    Diags.error(Op->getLoc(), "comparison result must be i1");
    return false;
  }
  return true;
}

static bool verifyConstant(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumResults() != 1 || Op->getNumOperands() != 0) {
    Diags.error(Op->getLoc(), "arith.constant has one result, no operands");
    return false;
  }
  Attribute V = Op->getAttr("value");
  if (!V) {
    Diags.error(Op->getLoc(), "arith.constant requires a 'value' attribute");
    return false;
  }
  Type T = Op->getResult(0)->getType();
  bool Ok = false;
  switch (V.getKind()) {
  case AttrKind::Integer:
    Ok = T.isInteger() || T.isIndex();
    break;
  case AttrKind::Float:
    Ok = T.isFloat();
    break;
  case AttrKind::Bool:
    Ok = T.isInteger();
    break;
  default:
    break;
  }
  if (!Ok) {
    Diags.error(Op->getLoc(),
                "arith.constant value kind does not match result type");
    return false;
  }
  return true;
}

void arith::registerDialect(IRContext &Ctx) {
  auto pureBinary = [&](const char *Name) {
    Ctx.registerOp({.Name = Name,
                    .IsPure = true,
                    .Verify = verifySameOperandAndResultType});
  };
  pureBinary(kAddIOp);
  pureBinary(kSubIOp);
  pureBinary(kMulIOp);
  pureBinary(kDivSIOp);
  pureBinary(kRemSIOp);
  pureBinary(kAndIOp);
  pureBinary(kOrIOp);
  pureBinary(kXorIOp);
  pureBinary(kShLIOp);
  pureBinary(kShRSIOp);
  pureBinary(kMaxSIOp);
  pureBinary(kMinSIOp);
  pureBinary(kAddFOp);
  pureBinary(kSubFOp);
  pureBinary(kMulFOp);
  pureBinary(kDivFOp);
  pureBinary(kMaxFOp);
  pureBinary(kMinFOp);
  Ctx.registerOp({.Name = kConstantOp, .IsPure = true,
                  .Verify = verifyConstant});
  Ctx.registerOp({.Name = kNegFOp, .IsPure = true});
  Ctx.registerOp({.Name = kCmpIOp, .IsPure = true, .Verify = verifyCompare});
  Ctx.registerOp({.Name = kCmpFOp, .IsPure = true, .Verify = verifyCompare});
  Ctx.registerOp({.Name = kSelectOp, .IsPure = true});
  Ctx.registerOp({.Name = kIndexCastOp, .IsPure = true});
  Ctx.registerOp({.Name = kSIToFPOp, .IsPure = true});
  Ctx.registerOp({.Name = kFPToSIOp, .IsPure = true});
  Ctx.registerOp({.Name = kExtFOp, .IsPure = true});
  Ctx.registerOp({.Name = kTruncFOp, .IsPure = true});
}

Value *arith::createIntConstant(OpBuilder &B, std::int64_t Value, Type Ty) {
  Operation::AttrMap Attrs;
  Attrs["value"] = Attribute::getInt(Value);
  Operation *Op = B.create(kConstantOp, SourceLoc(), {}, {Ty}, std::move(Attrs));
  return Op->getResult(0);
}

Value *arith::createFloatConstant(OpBuilder &B, double Value, Type Ty) {
  Operation::AttrMap Attrs;
  Attrs["value"] = Attribute::getFloat(Value);
  Operation *Op = B.create(kConstantOp, SourceLoc(), {}, {Ty}, std::move(Attrs));
  return Op->getResult(0);
}

Value *arith::createBinary(OpBuilder &B, const char *OpName, Value *L,
                           Value *R) {
  assert(L->getType() == R->getType() && "operand type mismatch");
  Operation *Op =
      B.create(OpName, SourceLoc(), {L, R}, {L->getType()});
  return Op->getResult(0);
}

Value *arith::createCompare(OpBuilder &B, const char *OpName, Value *L,
                            Value *R, const std::string &Predicate) {
  Operation::AttrMap Attrs;
  Attrs["predicate"] = Attribute::getString(Predicate);
  Operation *Op = B.create(OpName, SourceLoc(), {L, R},
                           {B.getContext().getI1Type()}, std::move(Attrs));
  return Op->getResult(0);
}

bool arith::isArithOp(const Operation *Op) {
  return startsWith(Op->getName(), "arith.");
}
