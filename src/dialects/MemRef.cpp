//===- MemRef.cpp ---------------------------------------------------------------===//

#include "dialects/MemRef.h"

using namespace dcir;
using namespace dcir::ir;

static size_t countDynamicDims(const MemRefType *MT) {
  size_t N = 0;
  for (std::int64_t D : MT->getShape())
    if (D == MemRefType::kDynamic)
      ++N;
  return N;
}

static bool verifyAlloc(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumResults() != 1 ||
      !Op->getResult(0)->getType().isMemRef()) {
    Diags.error(Op->getLoc(),
                "'" + Op->getName() + "' must produce one memref");
    return false;
  }
  const auto *MT = Op->getResult(0)->getType().dyn<MemRefType>();
  if (Op->getNumOperands() != countDynamicDims(MT)) {
    Diags.error(Op->getLoc(), "'" + Op->getName() +
                                  "' requires one size operand per dynamic "
                                  "dimension");
    return false;
  }
  return true;
}

static bool verifyLoad(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() < 1 || Op->getNumResults() != 1 ||
      !Op->getOperand(0)->getType().isMemRef()) {
    Diags.error(Op->getLoc(), "memref.load expects (memref, indices...)");
    return false;
  }
  const auto *MT = Op->getOperand(0)->getType().dyn<MemRefType>();
  if (Op->getNumOperands() - 1 != MT->getRank()) {
    Diags.error(Op->getLoc(), "memref.load index count does not match rank");
    return false;
  }
  if (Op->getResult(0)->getType() != MT->getElementType()) {
    Diags.error(Op->getLoc(),
                "memref.load result type must equal the element type");
    return false;
  }
  return true;
}

static bool verifyStore(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() < 2 ||
      !Op->getOperand(1)->getType().isMemRef()) {
    Diags.error(Op->getLoc(),
                "memref.store expects (value, memref, indices...)");
    return false;
  }
  const auto *MT = Op->getOperand(1)->getType().dyn<MemRefType>();
  if (Op->getNumOperands() - 2 != MT->getRank()) {
    Diags.error(Op->getLoc(), "memref.store index count does not match rank");
    return false;
  }
  if (Op->getOperand(0)->getType() != MT->getElementType()) {
    Diags.error(Op->getLoc(),
                "memref.store value type must equal the element type");
    return false;
  }
  return true;
}

static bool verifyCopy(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 2 ||
      !Op->getOperand(0)->getType().isMemRef() ||
      !Op->getOperand(1)->getType().isMemRef()) {
    Diags.error(Op->getLoc(), "memref.copy expects two memrefs");
    return false;
  }
  const auto *Src = Op->getOperand(0)->getType().dyn<MemRefType>();
  const auto *Dst = Op->getOperand(1)->getType().dyn<MemRefType>();
  if (Src->getElementType() != Dst->getElementType()) {
    Diags.error(Op->getLoc(), "memref.copy element types must match");
    return false;
  }
  // Static sizes must agree; `?` defeats checking (paper Fig. 3 motivates
  // the symbolic sdfg.array type precisely because of this blind spot).
  if (Src->getRank() == Dst->getRank() && !Src->hasDynamicDim() &&
      !Dst->hasDynamicDim() && Src->getShape() != Dst->getShape()) {
    Diags.error(Op->getLoc(), "memref.copy static shape mismatch");
    return false;
  }
  return true;
}

void memref::registerDialect(IRContext &Ctx) {
  Ctx.registerOp({.Name = kAllocOp, .Verify = verifyAlloc});
  Ctx.registerOp({.Name = kAllocaOp, .Verify = verifyAlloc});
  Ctx.registerOp({.Name = kDeallocOp});
  Ctx.registerOp({.Name = kLoadOp, .Verify = verifyLoad});
  Ctx.registerOp({.Name = kStoreOp, .Verify = verifyStore});
  Ctx.registerOp({.Name = kCopyOp, .Verify = verifyCopy});
  Ctx.registerOp({.Name = kDimOp, .IsPure = true});
}

Value *memref::createAlloc(OpBuilder &B, Type Ty,
                           std::vector<Value *> DynamicSizes, bool OnStack) {
  Operation *Op = B.create(OnStack ? kAllocaOp : kAllocOp, SourceLoc(),
                           std::move(DynamicSizes), {Ty});
  return Op->getResult(0);
}

Value *memref::createLoad(OpBuilder &B, Value *MemRef,
                          std::vector<Value *> Indices) {
  const auto *MT = MemRef->getType().dyn<MemRefType>();
  assert(MT && "load from non-memref");
  std::vector<Value *> Operands = {MemRef};
  Operands.insert(Operands.end(), Indices.begin(), Indices.end());
  Operation *Op = B.create(kLoadOp, SourceLoc(), std::move(Operands),
                           {MT->getElementType()});
  return Op->getResult(0);
}

void memref::createStore(OpBuilder &B, Value *Value, ir::Value *MemRef,
                         std::vector<ir::Value *> Indices) {
  std::vector<ir::Value *> Operands = {Value, MemRef};
  Operands.insert(Operands.end(), Indices.begin(), Indices.end());
  B.create(kStoreOp, SourceLoc(), std::move(Operands), {});
}
