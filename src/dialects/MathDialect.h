//===- MathDialect.h - math dialect --------------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transcendental math functions on floats (math.sqrt, math.exp, ...).
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_DIALECTS_MATHDIALECT_H
#define DCIR_DIALECTS_MATHDIALECT_H

#include "ir/IR.h"

namespace dcir {
namespace math {

inline constexpr const char *kSqrtOp = "math.sqrt";
inline constexpr const char *kExpOp = "math.exp";
inline constexpr const char *kLogOp = "math.log";
inline constexpr const char *kPowOp = "math.pow";
inline constexpr const char *kFAbsOp = "math.fabs";
inline constexpr const char *kSinOp = "math.sin";
inline constexpr const char *kCosOp = "math.cos";
inline constexpr const char *kTanhOp = "math.tanh";

/// Registers the dialect's operations in \p Ctx.
void registerDialect(ir::IRContext &Ctx);

/// Maps a C math-library function name ("sqrt", "exp", ...) to the op name,
/// or null when unsupported.
const char *opForLibmCall(const std::string &Callee);

} // namespace math
} // namespace dcir

#endif // DCIR_DIALECTS_MATHDIALECT_H
