//===- SCF.h - structured control flow dialect ----------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured control flow: scf.for (positive unit-default step, exclusive
/// upper bound), scf.if with optional else, and scf.while. The scf dialect's
/// strictly-positive-step limitation that the paper blames for the deriche
/// regression (§7.2, footnote 4) is preserved faithfully: decrement loops
/// must be normalized by frontends before reaching scf.for.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_DIALECTS_SCF_H
#define DCIR_DIALECTS_SCF_H

#include "ir/Builder.h"
#include "ir/IR.h"

namespace dcir {
namespace scf {

inline constexpr const char *kForOp = "scf.for";
inline constexpr const char *kIfOp = "scf.if";
inline constexpr const char *kWhileOp = "scf.while";
inline constexpr const char *kConditionOp = "scf.condition";
inline constexpr const char *kYieldOp = "scf.yield";

/// Registers the dialect's operations in \p Ctx.
void registerDialect(ir::IRContext &Ctx);

/// Creates `scf.for %iv = lb to ub step step` with an empty body ending in
/// scf.yield. Returns the op; the induction variable is the body block's
/// argument #0.
ir::Operation *createFor(ir::OpBuilder &B, ir::Value *Lb, ir::Value *Ub,
                         ir::Value *Step);

/// Creates `scf.if cond` with then/else bodies ending in scf.yield.
/// \p WithElse controls whether the else region gets a block.
ir::Operation *createIf(ir::OpBuilder &B, ir::Value *Cond, bool WithElse);

/// The body block of an scf.for.
ir::Block &getForBody(ir::Operation *ForOp);
/// The induction variable of an scf.for.
ir::BlockArgument *getForInductionVar(ir::Operation *ForOp);

} // namespace scf
} // namespace dcir

#endif // DCIR_DIALECTS_SCF_H
