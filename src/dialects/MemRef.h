//===- MemRef.h - memref dialect -----------------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory references: allocation (heap and stack), load/store, copy, dim.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_DIALECTS_MEMREF_H
#define DCIR_DIALECTS_MEMREF_H

#include "ir/Builder.h"
#include "ir/IR.h"

namespace dcir {
namespace memref {

inline constexpr const char *kAllocOp = "memref.alloc";
inline constexpr const char *kAllocaOp = "memref.alloca";
inline constexpr const char *kDeallocOp = "memref.dealloc";
inline constexpr const char *kLoadOp = "memref.load";
inline constexpr const char *kStoreOp = "memref.store";
inline constexpr const char *kCopyOp = "memref.copy";
inline constexpr const char *kDimOp = "memref.dim";

/// Registers the dialect's operations in \p Ctx.
void registerDialect(ir::IRContext &Ctx);

/// Creates a heap (alloc) or stack (alloca) allocation. \p DynamicSizes
/// provides one index value per dynamic dimension of \p Ty.
ir::Value *createAlloc(ir::OpBuilder &B, ir::Type Ty,
                       std::vector<ir::Value *> DynamicSizes,
                       bool OnStack = false);

/// Creates a load of MemRef[Indices].
ir::Value *createLoad(ir::OpBuilder &B, ir::Value *MemRef,
                      std::vector<ir::Value *> Indices);

/// Creates a store of Value into MemRef[Indices].
void createStore(ir::OpBuilder &B, ir::Value *Value, ir::Value *MemRef,
                 std::vector<ir::Value *> Indices);

} // namespace memref
} // namespace dcir

#endif // DCIR_DIALECTS_MEMREF_H
