//===- Func.cpp ----------------------------------------------------------------===//

#include "dialects/Func.h"

using namespace dcir;
using namespace dcir::ir;

static bool verifyFunc(Operation *Op, DiagnosticEngine &Diags) {
  Attribute SymName = Op->getAttr("sym_name");
  Attribute TypeAttr = Op->getAttr("function_type");
  if (!SymName || SymName.getKind() != AttrKind::String) {
    Diags.error(Op->getLoc(), "func.func requires a 'sym_name' string");
    return false;
  }
  if (!TypeAttr || TypeAttr.getKind() != AttrKind::TypeAttr ||
      !TypeAttr.asType().isFunction()) {
    Diags.error(Op->getLoc(), "func.func requires a 'function_type' type");
    return false;
  }
  const auto *FT = TypeAttr.asType().dyn<FunctionType>();
  if (Op->getRegion(0).empty()) {
    Diags.error(Op->getLoc(), "func.func requires a body block");
    return false;
  }
  Block &Entry = Op->getRegion(0).front();
  if (Entry.getNumArguments() != FT->getInputs().size()) {
    Diags.error(Op->getLoc(),
                "entry block argument count does not match function type");
    return false;
  }
  for (size_t I = 0; I < Entry.getNumArguments(); ++I) {
    if (Entry.getArgument(I)->getType() != FT->getInputs()[I]) {
      Diags.error(Op->getLoc(), "entry block argument #" + std::to_string(I) +
                                    " type does not match function type");
      return false;
    }
  }
  return true;
}

static bool verifyReturn(Operation *Op, DiagnosticEngine &Diags) {
  Operation *Func = Op->getParentOp();
  while (Func && Func->getName() != func::kFuncOp)
    Func = Func->getParentOp();
  if (!Func)
    return true; // Detached snippets are permitted in tests.
  const FunctionType *FT = func::getFunctionType(Func);
  if (Op->getNumOperands() != FT->getResults().size()) {
    Diags.error(Op->getLoc(),
                "func.return operand count does not match function type");
    return false;
  }
  return true;
}

void func::registerDialect(IRContext &Ctx) {
  Ctx.registerOp({.Name = kFuncOp,
                  .IsIsolatedFromAbove = true,
                  .NumRegions = 1,
                  .Verify = verifyFunc});
  Ctx.registerOp(
      {.Name = kReturnOp, .IsTerminator = true, .Verify = verifyReturn});
  Ctx.registerOp({.Name = kCallOp});
}

Operation *func::createFunction(OpBuilder &B, const std::string &Name,
                                const std::vector<Type> &Inputs,
                                const std::vector<Type> &Results) {
  Operation::AttrMap Attrs;
  Attrs["sym_name"] = Attribute::getString(Name);
  Attrs["function_type"] =
      Attribute::getType(B.getContext().getFunctionType(Inputs, Results));
  Operation *Func = B.create(kFuncOp, SourceLoc(), {}, {}, std::move(Attrs),
                             /*NumRegions=*/1);
  Block *Entry = Func->getRegion(0).addBlock();
  for (Type In : Inputs)
    Entry->addArgument(In);
  return Func;
}

Block &func::getFunctionBody(Operation *FuncOp) {
  assert(FuncOp->getName() == kFuncOp && "not a func.func");
  return FuncOp->getRegion(0).front();
}

const FunctionType *func::getFunctionType(Operation *FuncOp) {
  assert(FuncOp->getName() == kFuncOp && "not a func.func");
  return FuncOp->getAttr("function_type").asType().dyn<FunctionType>();
}

std::string func::getFunctionName(Operation *FuncOp) {
  assert(FuncOp->getName() == kFuncOp && "not a func.func");
  return FuncOp->getAttr("sym_name").asString();
}
