//===- Func.h - func dialect -----------------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The function dialect: func.func / func.return / func.call.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_DIALECTS_FUNC_H
#define DCIR_DIALECTS_FUNC_H

#include "ir/Builder.h"
#include "ir/IR.h"

namespace dcir {
namespace func {

inline constexpr const char *kFuncOp = "func.func";
inline constexpr const char *kReturnOp = "func.return";
inline constexpr const char *kCallOp = "func.call";

/// Registers the dialect's operations in \p Ctx.
void registerDialect(ir::IRContext &Ctx);

/// Creates a func.func with the given signature; the entry block receives
/// one argument per input type.
ir::Operation *createFunction(ir::OpBuilder &B, const std::string &Name,
                              const std::vector<ir::Type> &Inputs,
                              const std::vector<ir::Type> &Results);

/// The entry block of a function op.
ir::Block &getFunctionBody(ir::Operation *FuncOp);

/// The declared function type.
const ir::FunctionType *getFunctionType(ir::Operation *FuncOp);

/// The symbol name of a function op.
std::string getFunctionName(ir::Operation *FuncOp);

} // namespace func
} // namespace dcir

#endif // DCIR_DIALECTS_FUNC_H
