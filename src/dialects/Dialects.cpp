//===- Dialects.cpp -----------------------------------------------------------===//

#include "dialects/Dialects.h"

#include "dialects/Arith.h"
#include "dialects/Func.h"
#include "dialects/MathDialect.h"
#include "dialects/MemRef.h"
#include "dialects/SCF.h"
#include "dialects/Sdfg.h"

void dcir::registerAllDialects(ir::IRContext &Ctx) {
  func::registerDialect(Ctx);
  arith::registerDialect(Ctx);
  math::registerDialect(Ctx);
  memref::registerDialect(Ctx);
  scf::registerDialect(Ctx);
  sdfg_dialect::registerDialect(Ctx);
}
