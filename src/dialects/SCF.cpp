//===- SCF.cpp -------------------------------------------------------------------===//

#include "dialects/SCF.h"

using namespace dcir;
using namespace dcir::ir;

static bool verifyFor(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 3) {
    Diags.error(Op->getLoc(), "scf.for expects (lb, ub, step)");
    return false;
  }
  for (size_t I = 0; I < 3; ++I) {
    if (!Op->getOperand(I)->getType().isIndex()) {
      Diags.error(Op->getLoc(), "scf.for bounds must have index type");
      return false;
    }
  }
  if (Op->getRegion(0).empty() ||
      Op->getRegion(0).front().getNumArguments() != 1 ||
      !Op->getRegion(0).front().getArgument(0)->getType().isIndex()) {
    Diags.error(Op->getLoc(),
                "scf.for body must carry one index block argument");
    return false;
  }
  return true;
}

static bool verifyIf(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 1) {
    Diags.error(Op->getLoc(), "scf.if expects a condition operand");
    return false;
  }
  const auto *IT = Op->getOperand(0)->getType().dyn<IntegerType>();
  if (!IT || IT->getWidth() != 1) {
    Diags.error(Op->getLoc(), "scf.if condition must be i1");
    return false;
  }
  return true;
}

void scf::registerDialect(IRContext &Ctx) {
  Ctx.registerOp({.Name = kForOp, .NumRegions = 1, .Verify = verifyFor});
  Ctx.registerOp({.Name = kIfOp, .NumRegions = 2, .Verify = verifyIf});
  Ctx.registerOp({.Name = kWhileOp, .NumRegions = 2});
  Ctx.registerOp({.Name = kConditionOp, .IsTerminator = true});
  Ctx.registerOp({.Name = kYieldOp, .IsTerminator = true});
}

Operation *scf::createFor(OpBuilder &B, Value *Lb, Value *Ub, Value *Step) {
  Operation *For = B.create(kForOp, SourceLoc(), {Lb, Ub, Step}, {}, {},
                            /*NumRegions=*/1);
  Block *Body = For->getRegion(0).addBlock();
  Body->addArgument(B.getContext().getIndexType());
  // Body terminator.
  Operation *Yield =
      Operation::create(B.getContext(), kYieldOp, SourceLoc(), {}, {}, {}, 0);
  Body->push_back(Yield);
  return For;
}

Operation *scf::createIf(OpBuilder &B, Value *Cond, bool WithElse) {
  Operation *If = B.create(kIfOp, SourceLoc(), {Cond}, {}, {},
                           /*NumRegions=*/2);
  Block *Then = If->getRegion(0).addBlock();
  Then->push_back(
      Operation::create(B.getContext(), kYieldOp, SourceLoc(), {}, {}, {}, 0));
  if (WithElse) {
    Block *Else = If->getRegion(1).addBlock();
    Else->push_back(Operation::create(B.getContext(), kYieldOp, SourceLoc(),
                                      {}, {}, {}, 0));
  }
  return If;
}

Block &scf::getForBody(Operation *ForOp) {
  assert(ForOp->getName() == kForOp && "not an scf.for");
  return ForOp->getRegion(0).front();
}

BlockArgument *scf::getForInductionVar(Operation *ForOp) {
  return getForBody(ForOp).getArgument(0);
}
