//===- Sdfg.cpp -------------------------------------------------------------------===//

#include "dialects/Sdfg.h"

using namespace dcir;
using namespace dcir::ir;
using sym::SymExpr;

static bool isContainerType(Type T) {
  return T.isSdfgArray() || T.getKind() == TypeKind::SdfgStream;
}

static bool verifySdfg(Operation *Op, DiagnosticEngine &Diags) {
  Attribute SymName = Op->getAttr("sym_name");
  if (!SymName || SymName.getKind() != AttrKind::String) {
    Diags.error(Op->getLoc(), "sdfg.sdfg requires a 'sym_name' string");
    return false;
  }
  if (Op->getRegion(0).empty()) {
    Diags.error(Op->getLoc(), "sdfg.sdfg requires a body block");
    return false;
  }
  // Only states and edges (plus allocs and syms) may appear at SDFG level.
  for (auto &Nested : Op->getRegion(0).front()) {
    const std::string &Name = Nested->getName();
    if (Name != sdfg_dialect::kStateOp && Name != sdfg_dialect::kEdgeOp &&
        Name != sdfg_dialect::kAllocOp && Name != sdfg_dialect::kSymOp) {
      Diags.error(Nested->getLoc(),
                  "'" + Name + "' may not appear directly inside sdfg.sdfg");
      return false;
    }
  }
  return true;
}

static bool verifyState(Operation *Op, DiagnosticEngine &Diags) {
  Attribute SymName = Op->getAttr("sym_name");
  if (!SymName || SymName.getKind() != AttrKind::String) {
    Diags.error(Op->getLoc(), "sdfg.state requires a 'sym_name' string");
    return false;
  }
  return true;
}

static bool verifyEdge(Operation *Op, DiagnosticEngine &Diags) {
  Attribute Src = Op->getAttr("src");
  Attribute Dst = Op->getAttr("dst");
  if (!Src || Src.getKind() != AttrKind::String || !Dst ||
      Dst.getKind() != AttrKind::String) {
    Diags.error(Op->getLoc(), "sdfg.edge requires 'src' and 'dst' strings");
    return false;
  }
  return true;
}

static bool verifyAlloc(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumResults() != 1 ||
      !isContainerType(Op->getResult(0)->getType())) {
    Diags.error(Op->getLoc(),
                "sdfg.alloc must produce an sdfg.array or sdfg.stream");
    return false;
  }
  return true;
}

static bool verifyLoad(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() < 1 || Op->getNumResults() != 1 ||
      !Op->getOperand(0)->getType().isSdfgArray()) {
    Diags.error(Op->getLoc(), "sdfg.load expects (array, indices...)");
    return false;
  }
  const auto *AT = Op->getOperand(0)->getType().dyn<SdfgArrayType>();
  if (Op->getNumOperands() - 1 != AT->getRank()) {
    Diags.error(Op->getLoc(), "sdfg.load index count does not match rank");
    return false;
  }
  if (Op->getResult(0)->getType() != AT->getElementType()) {
    Diags.error(Op->getLoc(),
                "sdfg.load result type must equal the element type");
    return false;
  }
  return true;
}

static bool verifyStore(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() < 2 ||
      !Op->getOperand(1)->getType().isSdfgArray()) {
    Diags.error(Op->getLoc(), "sdfg.store expects (value, array, indices...)");
    return false;
  }
  const auto *AT = Op->getOperand(1)->getType().dyn<SdfgArrayType>();
  if (Op->getNumOperands() - 2 != AT->getRank()) {
    Diags.error(Op->getLoc(), "sdfg.store index count does not match rank");
    return false;
  }
  if (Op->getOperand(0)->getType() != AT->getElementType()) {
    Diags.error(Op->getLoc(),
                "sdfg.store value type must equal the element type");
    return false;
  }
  Attribute Wcr = Op->getAttr("wcr");
  if (Wcr && Wcr.getKind() != AttrKind::String) {
    Diags.error(Op->getLoc(), "sdfg.store 'wcr' must be a string");
    return false;
  }
  return true;
}

/// Fig. 3 of the paper: symbolic sizes make size mismatches detectable at
/// compile time, unlike memref's `?` dimensions.
static bool verifyCopy(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 2 ||
      !Op->getOperand(0)->getType().isSdfgArray() ||
      !Op->getOperand(1)->getType().isSdfgArray()) {
    Diags.error(Op->getLoc(), "sdfg.copy expects two sdfg.array operands");
    return false;
  }
  const auto *Src = Op->getOperand(0)->getType().dyn<SdfgArrayType>();
  const auto *Dst = Op->getOperand(1)->getType().dyn<SdfgArrayType>();
  if (Src->getElementType() != Dst->getElementType()) {
    Diags.error(Op->getLoc(), "sdfg.copy element types must match");
    return false;
  }
  SymExpr SrcElems = Src->getNumElements();
  SymExpr DstElems = Dst->getNumElements();
  auto Proven = SymExpr::eq(SrcElems, DstElems).tryProve();
  if (Proven && !*Proven) {
    Diags.error(Op->getLoc(), "sdfg.copy size mismatch: source has " +
                                  SrcElems.str() + " elements, destination " +
                                  DstElems.str());
    return false;
  }
  return true;
}

static bool verifyTasklet(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getRegion(0).empty()) {
    Diags.error(Op->getLoc(), "sdfg.tasklet requires a body block");
    return false;
  }
  Block &Entry = Op->getRegion(0).front();
  if (Entry.getNumArguments() != Op->getNumOperands()) {
    Diags.error(Op->getLoc(),
                "sdfg.tasklet block arguments must mirror its operands");
    return false;
  }
  for (size_t I = 0; I < Op->getNumOperands(); ++I) {
    if (Entry.getArgument(I)->getType() != Op->getOperand(I)->getType()) {
      Diags.error(Op->getLoc(), "sdfg.tasklet block argument #" +
                                    std::to_string(I) + " type mismatch");
      return false;
    }
  }
  Operation *Term = Entry.getTerminator();
  if (!Term || Term->getName() != sdfg_dialect::kReturnOp) {
    Diags.error(Op->getLoc(), "sdfg.tasklet must end with sdfg.return");
    return false;
  }
  if (Term->getNumOperands() != Op->getNumResults()) {
    Diags.error(Op->getLoc(),
                "sdfg.return operand count must match tasklet results");
    return false;
  }
  return true;
}

static bool verifyMap(Operation *Op, DiagnosticEngine &Diags) {
  Attribute Begins = Op->getAttr("begins");
  Attribute Ends = Op->getAttr("ends");
  Attribute Steps = Op->getAttr("steps");
  if (!Begins || !Ends || !Steps ||
      Begins.getKind() != AttrKind::Array ||
      Ends.getKind() != AttrKind::Array ||
      Steps.getKind() != AttrKind::Array) {
    Diags.error(Op->getLoc(),
                "sdfg.map requires 'begins'/'ends'/'steps' arrays");
    return false;
  }
  size_t N = Begins.asArray().size();
  if (Ends.asArray().size() != N || Steps.asArray().size() != N) {
    Diags.error(Op->getLoc(), "sdfg.map range arrays must share a length");
    return false;
  }
  if (Op->getRegion(0).empty() ||
      Op->getRegion(0).front().getNumArguments() != N) {
    Diags.error(Op->getLoc(),
                "sdfg.map body must carry one argument per dimension");
    return false;
  }
  return true;
}

void sdfg_dialect::registerDialect(IRContext &Ctx) {
  Ctx.registerOp({.Name = kSdfgOp,
                  .IsIsolatedFromAbove = true,
                  .NumRegions = 1,
                  .Verify = verifySdfg});
  Ctx.registerOp({.Name = kStateOp, .NumRegions = 1, .Verify = verifyState});
  Ctx.registerOp({.Name = kEdgeOp, .Verify = verifyEdge});
  Ctx.registerOp({.Name = kAllocOp, .Verify = verifyAlloc});
  Ctx.registerOp({.Name = kLoadOp, .Verify = verifyLoad});
  Ctx.registerOp({.Name = kStoreOp, .Verify = verifyStore});
  Ctx.registerOp({.Name = kCopyOp, .Verify = verifyCopy});
  Ctx.registerOp({.Name = kTaskletOp,
                  .IsIsolatedFromAbove = true,
                  .NumRegions = 1,
                  .Verify = verifyTasklet});
  Ctx.registerOp({.Name = kReturnOp, .IsTerminator = true});
  Ctx.registerOp({.Name = kMapOp, .NumRegions = 1, .Verify = verifyMap});
  Ctx.registerOp({.Name = kConsumeOp, .NumRegions = 1});
  Ctx.registerOp({.Name = kStreamPushOp});
  Ctx.registerOp({.Name = kStreamPopOp});
  Ctx.registerOp({.Name = kSymOp, .IsPure = true});
}

Operation *sdfg_dialect::createSdfg(OpBuilder &B, const std::string &Name,
                                    const std::vector<Type> &ArgTypes) {
  Operation::AttrMap Attrs;
  Attrs["sym_name"] = Attribute::getString(Name);
  Operation *Sdfg = B.create(kSdfgOp, SourceLoc(), {}, {}, std::move(Attrs),
                             /*NumRegions=*/1);
  Block *Entry = Sdfg->getRegion(0).addBlock();
  for (Type T : ArgTypes)
    Entry->addArgument(T);
  return Sdfg;
}

Operation *sdfg_dialect::createState(OpBuilder &B, const std::string &Name) {
  Operation::AttrMap Attrs;
  Attrs["sym_name"] = Attribute::getString(Name);
  Operation *State = B.create(kStateOp, SourceLoc(), {}, {}, std::move(Attrs),
                              /*NumRegions=*/1);
  State->getRegion(0).addBlock();
  return State;
}

Operation *sdfg_dialect::createEdge(
    OpBuilder &B, const std::string &Src, const std::string &Dst,
    SymExpr Condition,
    const std::vector<std::pair<std::string, SymExpr>> &Assignments) {
  Operation::AttrMap Attrs;
  Attrs["src"] = Attribute::getString(Src);
  Attrs["dst"] = Attribute::getString(Dst);
  if (Condition)
    Attrs["condition"] = Attribute::getSymExpr(Condition);
  if (!Assignments.empty()) {
    std::vector<Attribute> Pairs;
    for (const auto &[Key, Expr] : Assignments)
      Pairs.push_back(Attribute::getArray(
          {Attribute::getString(Key), Attribute::getSymExpr(Expr)}));
    Attrs["assign"] = Attribute::getArray(std::move(Pairs));
  }
  return B.create(kEdgeOp, SourceLoc(), {}, {}, std::move(Attrs));
}

Operation *sdfg_dialect::createTasklet(OpBuilder &B,
                                       const std::vector<Value *> &Inputs,
                                       const std::vector<Type> &ResultTypes) {
  Operation *Tasklet = B.create(kTaskletOp, SourceLoc(), Inputs, ResultTypes,
                                {}, /*NumRegions=*/1);
  Block *Entry = Tasklet->getRegion(0).addBlock();
  for (Value *In : Inputs)
    Entry->addArgument(In->getType());
  return Tasklet;
}

Value *sdfg_dialect::createSymValue(OpBuilder &B, SymExpr Expr, Type Ty) {
  Operation::AttrMap Attrs;
  Attrs["expr"] = Attribute::getSymExpr(std::move(Expr));
  if (!Ty)
    Ty = B.getContext().getIndexType();
  Operation *Op =
      B.create(kSymOp, SourceLoc(), {}, {Ty}, std::move(Attrs));
  return Op->getResult(0);
}

SymExpr sdfg_dialect::getEdgeCondition(Operation *EdgeOp) {
  Attribute Cond = EdgeOp->getAttr("condition");
  return Cond ? Cond.asSymExpr() : SymExpr();
}

std::vector<std::pair<std::string, SymExpr>>
sdfg_dialect::getEdgeAssignments(Operation *EdgeOp) {
  std::vector<std::pair<std::string, SymExpr>> Out;
  Attribute Assign = EdgeOp->getAttr("assign");
  if (!Assign)
    return Out;
  for (const Attribute &Pair : Assign.asArray()) {
    const auto &Elems = Pair.asArray();
    Out.emplace_back(Elems[0].asString(), Elems[1].asSymExpr());
  }
  return Out;
}
