//===- Sdfg.h - the data-centric sdfg dialect (paper §3) --------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sdfg MLIR dialect from the paper, Table 1:
///
///   sdfg.sdfg      The SDFG container (isolated; holds states and edges).
///   sdfg.state     Groups operations; the state machine orders execution.
///   sdfg.edge      State transition with symbolic condition/assignments.
///   sdfg.alloc     Data container allocation (array or stream), symbolic
///                  sizes allowed; `transient` marks SDFG-managed storage.
///   sdfg.load      Loads a value from an array.
///   sdfg.store     Stores a value to an array; optional `wcr` update
///                  function attribute (write-conflict resolution).
///   sdfg.copy      Whole-container copy; symbolic sizes are verified at
///                  compile time (paper Fig. 3).
///   sdfg.tasklet   IsolatedFromAbove unit of computation.
///   sdfg.return    Tasklet terminator carrying the outputs.
///   sdfg.map       Parametric-parallel scope over a symbolic range.
///   sdfg.consume   Stream-consumption scope (paper §3.2).
///   sdfg.stream_push / sdfg.stream_pop   FIFO operations.
///   sdfg.sym       Materializes a symbolic expression as an index value.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_DIALECTS_SDFG_H
#define DCIR_DIALECTS_SDFG_H

#include "ir/Builder.h"
#include "ir/IR.h"

namespace dcir {
namespace sdfg_dialect {

inline constexpr const char *kSdfgOp = "sdfg.sdfg";
inline constexpr const char *kStateOp = "sdfg.state";
inline constexpr const char *kEdgeOp = "sdfg.edge";
inline constexpr const char *kAllocOp = "sdfg.alloc";
inline constexpr const char *kLoadOp = "sdfg.load";
inline constexpr const char *kStoreOp = "sdfg.store";
inline constexpr const char *kCopyOp = "sdfg.copy";
inline constexpr const char *kTaskletOp = "sdfg.tasklet";
inline constexpr const char *kReturnOp = "sdfg.return";
inline constexpr const char *kMapOp = "sdfg.map";
inline constexpr const char *kConsumeOp = "sdfg.consume";
inline constexpr const char *kStreamPushOp = "sdfg.stream_push";
inline constexpr const char *kStreamPopOp = "sdfg.stream_pop";
inline constexpr const char *kSymOp = "sdfg.sym";

/// Registers the dialect's operations in \p Ctx.
void registerDialect(ir::IRContext &Ctx);

/// Creates an sdfg.sdfg container whose entry block carries one argument per
/// element of \p ArgTypes (the SDFG's non-transient containers).
ir::Operation *createSdfg(ir::OpBuilder &B, const std::string &Name,
                          const std::vector<ir::Type> &ArgTypes);

/// Creates a state with the given name inside the current insertion block.
ir::Operation *createState(ir::OpBuilder &B, const std::string &Name);

/// Creates an interstate edge. Null \p Condition means "always taken";
/// \p Assignments maps symbol names to expressions evaluated on transition.
ir::Operation *
createEdge(ir::OpBuilder &B, const std::string &Src, const std::string &Dst,
           sym::SymExpr Condition = sym::SymExpr(),
           const std::vector<std::pair<std::string, sym::SymExpr>>
               &Assignments = {});

/// Creates a tasklet with the given scalar inputs and result types; the
/// region's entry block receives one argument per input.
ir::Operation *createTasklet(ir::OpBuilder &B,
                             const std::vector<ir::Value *> &Inputs,
                             const std::vector<ir::Type> &ResultTypes);

/// Creates an sdfg.sym materializing \p Expr as a value of type \p Ty
/// (index when omitted).
ir::Value *createSymValue(ir::OpBuilder &B, sym::SymExpr Expr,
                          ir::Type Ty = ir::Type());

/// Reads an edge op's condition (null when absent).
sym::SymExpr getEdgeCondition(ir::Operation *EdgeOp);
/// Reads an edge op's assignments.
std::vector<std::pair<std::string, sym::SymExpr>>
getEdgeAssignments(ir::Operation *EdgeOp);

} // namespace sdfg_dialect
} // namespace dcir

#endif // DCIR_DIALECTS_SDFG_H
