//===- Dialects.h - aggregate dialect registration ---------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef DCIR_DIALECTS_DIALECTS_H
#define DCIR_DIALECTS_DIALECTS_H

#include "ir/IRContext.h"

namespace dcir {

/// Registers func, arith, math, memref, scf, and sdfg in \p Ctx.
void registerAllDialects(ir::IRContext &Ctx);

} // namespace dcir

#endif // DCIR_DIALECTS_DIALECTS_H
