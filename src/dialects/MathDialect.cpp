//===- MathDialect.cpp ---------------------------------------------------------===//

#include "dialects/MathDialect.h"

using namespace dcir;
using namespace dcir::ir;

static bool verifyUnaryFloat(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 1 || Op->getNumResults() != 1 ||
      !Op->getOperand(0)->getType().isFloat()) {
    Diags.error(Op->getLoc(),
                "'" + Op->getName() + "' expects one float operand");
    return false;
  }
  return true;
}

void math::registerDialect(IRContext &Ctx) {
  for (const char *Name :
       {kSqrtOp, kExpOp, kLogOp, kFAbsOp, kSinOp, kCosOp, kTanhOp})
    Ctx.registerOp({.Name = Name, .IsPure = true, .Verify = verifyUnaryFloat});
  Ctx.registerOp({.Name = kPowOp, .IsPure = true});
}

const char *math::opForLibmCall(const std::string &Callee) {
  if (Callee == "sqrt" || Callee == "sqrtf")
    return kSqrtOp;
  if (Callee == "exp" || Callee == "expf")
    return kExpOp;
  if (Callee == "log" || Callee == "logf")
    return kLogOp;
  if (Callee == "pow" || Callee == "powf")
    return kPowOp;
  if (Callee == "fabs" || Callee == "fabsf")
    return kFAbsOp;
  if (Callee == "sin" || Callee == "sinf")
    return kSinOp;
  if (Callee == "cos" || Callee == "cosf")
    return kCosOp;
  if (Callee == "tanh" || Callee == "tanhf")
    return kTanhOp;
  return nullptr;
}
