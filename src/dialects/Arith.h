//===- Arith.h - arith dialect -----------------------------------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer/float arithmetic, comparisons, constants, and casts — the dialect
/// Polygeist emits for all expression-level computation.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_DIALECTS_ARITH_H
#define DCIR_DIALECTS_ARITH_H

#include "ir/Builder.h"
#include "ir/IR.h"

namespace dcir {
namespace arith {

inline constexpr const char *kConstantOp = "arith.constant";
inline constexpr const char *kAddIOp = "arith.addi";
inline constexpr const char *kSubIOp = "arith.subi";
inline constexpr const char *kMulIOp = "arith.muli";
inline constexpr const char *kDivSIOp = "arith.divsi";
inline constexpr const char *kRemSIOp = "arith.remsi";
inline constexpr const char *kAndIOp = "arith.andi";
inline constexpr const char *kOrIOp = "arith.ori";
inline constexpr const char *kXorIOp = "arith.xori";
inline constexpr const char *kShLIOp = "arith.shli";
inline constexpr const char *kShRSIOp = "arith.shrsi";
inline constexpr const char *kMaxSIOp = "arith.maxsi";
inline constexpr const char *kMinSIOp = "arith.minsi";
inline constexpr const char *kAddFOp = "arith.addf";
inline constexpr const char *kSubFOp = "arith.subf";
inline constexpr const char *kMulFOp = "arith.mulf";
inline constexpr const char *kDivFOp = "arith.divf";
inline constexpr const char *kNegFOp = "arith.negf";
inline constexpr const char *kMaxFOp = "arith.maxf";
inline constexpr const char *kMinFOp = "arith.minf";
inline constexpr const char *kCmpIOp = "arith.cmpi";
inline constexpr const char *kCmpFOp = "arith.cmpf";
inline constexpr const char *kSelectOp = "arith.select";
inline constexpr const char *kIndexCastOp = "arith.index_cast";
inline constexpr const char *kSIToFPOp = "arith.sitofp";
inline constexpr const char *kFPToSIOp = "arith.fptosi";
inline constexpr const char *kExtFOp = "arith.extf";
inline constexpr const char *kTruncFOp = "arith.truncf";

/// Registers the dialect's operations in \p Ctx.
void registerDialect(ir::IRContext &Ctx);

/// Creates an integer (or index) constant.
ir::Value *createIntConstant(ir::OpBuilder &B, std::int64_t Value,
                             ir::Type Ty);
/// Creates a floating-point constant.
ir::Value *createFloatConstant(ir::OpBuilder &B, double Value, ir::Type Ty);
/// Creates a binary arithmetic op where both operands and the result share a
/// type.
ir::Value *createBinary(ir::OpBuilder &B, const char *OpName, ir::Value *L,
                        ir::Value *R);
/// Creates a comparison (result i1); \p Predicate follows MLIR spelling
/// ("eq", "ne", "slt", "sle", "sgt", "sge" / "oeq", "olt", ...).
ir::Value *createCompare(ir::OpBuilder &B, const char *OpName, ir::Value *L,
                         ir::Value *R, const std::string &Predicate);

/// Returns true if \p Op is any arith.* operation.
bool isArithOp(const ir::Operation *Op);

} // namespace arith
} // namespace dcir

#endif // DCIR_DIALECTS_ARITH_H
