//===- ExecutionEngine.cpp ----------------------------------------------------------===//

#include "exec/ExecutionEngine.h"

#include "exec/InterpEngine.h"
#include "exec/NativeJitEngine.h"

#include <algorithm>

using namespace dcir;
using namespace dcir::exec;

const char *dcir::exec::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::Interp:
    return "interp";
  case EngineKind::Native:
    return "native";
  }
  return "?";
}

std::optional<EngineKind>
dcir::exec::parseEngineName(const std::string &Name) {
  if (Name == "interp" || Name == "interpreter")
    return EngineKind::Interp;
  if (Name == "native" || Name == "jit")
    return EngineKind::Native;
  return std::nullopt;
}

std::unique_ptr<ExecutionEngine> dcir::exec::createEngine(EngineKind K) {
  switch (K) {
  case EngineKind::Interp:
    return std::make_unique<InterpEngine>();
  case EngineKind::Native:
    return std::make_unique<NativeJitEngine>();
  }
  return nullptr;
}

std::string dcir::exec::detail::validateView(
    const BufferView &V, const sdfg::DataDesc &D, const std::string &Name,
    const std::map<std::string, std::int64_t> &Symbols) {
  if (V.Ty != D.Ty)
    return "binding for container '" + Name + "' has type " +
           sdfg::dtypeName(V.Ty) + " but the container is " +
           sdfg::dtypeName(D.Ty);
  std::size_t N = containerElements(D, Symbols);
  if (V.Len != N)
    return "binding for container '" + Name + "' has " +
           std::to_string(V.Len) + " elements but the container needs " +
           std::to_string(N);
  return std::string();
}

std::size_t dcir::exec::detail::containerElements(
    const sdfg::DataDesc &D,
    const std::map<std::string, std::int64_t> &Symbols) {
  std::size_t N = 1;
  for (const sym::SymExpr &Dim : D.Shape)
    N *= static_cast<std::size_t>(
        std::max<std::int64_t>(evalDimOrZero(Dim, Symbols), 0));
  return N;
}

std::int64_t dcir::exec::detail::evalDimOrZero(
    const sym::SymExpr &E,
    const std::map<std::string, std::int64_t> &Symbols) {
  if (auto V = E.evaluate(Symbols))
    return *V;
  std::set<std::string> Free;
  E.collectSymbols(Free);
  std::map<std::string, std::int64_t> Extended = Symbols;
  for (const std::string &S : Free)
    Extended.emplace(S, 0);
  return E.evaluate(Extended).value_or(0);
}
