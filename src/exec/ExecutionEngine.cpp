//===- ExecutionEngine.cpp ----------------------------------------------------------===//

#include "exec/ExecutionEngine.h"

#include "exec/InterpEngine.h"
#include "exec/NativeJitEngine.h"

using namespace dcir;
using namespace dcir::exec;

const char *dcir::exec::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::Interp:
    return "interp";
  case EngineKind::Native:
    return "native";
  }
  return "?";
}

std::optional<EngineKind>
dcir::exec::parseEngineName(const std::string &Name) {
  if (Name == "interp" || Name == "interpreter")
    return EngineKind::Interp;
  if (Name == "native" || Name == "jit")
    return EngineKind::Native;
  return std::nullopt;
}

std::unique_ptr<ExecutionEngine> dcir::exec::createEngine(EngineKind K) {
  switch (K) {
  case EngineKind::Interp:
    return std::make_unique<InterpEngine>();
  case EngineKind::Native:
    return std::make_unique<NativeJitEngine>();
  }
  return nullptr;
}

std::int64_t dcir::exec::detail::evalDimOrZero(
    const sym::SymExpr &E,
    const std::map<std::string, std::int64_t> &Symbols) {
  if (auto V = E.evaluate(Symbols))
    return *V;
  std::set<std::string> Free;
  E.collectSymbols(Free);
  std::map<std::string, std::int64_t> Extended = Symbols;
  for (const std::string &S : Free)
    Extended.emplace(S, 0);
  return E.evaluate(Extended).value_or(0);
}
