//===- JitCache.h - content-addressed native artifact cache -------------------===//
//
// Part of the DCIR reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk shared-object cache behind NativeJitEngine. Artifacts are
/// content-addressed: the key is a 128-bit FNV-1a hash of the compiler
/// path, the compile flags, and the generated source, so a change to any
/// of them produces a new entry and identical kernels across runs reuse
/// the same `.so` without invoking the compiler.
///
/// Layout (root = $DCIR_CACHE_DIR, else $XDG_CACHE_HOME/dcir, else
/// ~/.cache/dcir):
///
///   <root>/<key>.cpp   the generated translation unit (debugging aid)
///   <root>/<key>.so    the compiled shared object
///   <root>/flag_tier   the memoized result of the compile-flag probe
///
/// Compile flags are tiered: at construction the cache probes the host
/// compiler with `-O3 -march=native -fopenmp` (one tiny translation unit;
/// result memoized in <root>/flag_tier) and falls back to serial `-O2`
/// when the probe fails. $DCIR_JIT_TIER=serial forces the fallback and
/// $DCIR_CXXFLAGS still appends. Flags are part of the content address,
/// so switching tiers can never serve a stale artifact.
///
/// Disk usage is capped at $DCIR_CACHE_MAX_MB (default 512): construction
/// evicts artifacts oldest-mtime-first until under the cap, and disk hits
/// refresh their artifact's mtime, making eviction LRU across processes.
///
/// Concurrency: in-process metadata accesses serialize on a mutex, but
/// the host-compiler invocation itself runs *unlocked* (a per-key
/// in-flight set + condition variable makes concurrent requests for the
/// same key wait while different keys — and stats reads — proceed), so a
/// background shape-specialization compile never stalls invocations being
/// served from already-resolved artifacts. On-disk publication is
/// write-to-temp + atomic rename, so concurrent processes sharing a root
/// never observe a half-written artifact (worst case two processes
/// compile the same key once each). dlopen handles are cached per key and
/// never dlclosed — native code may be referenced for the process
/// lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef DCIR_EXEC_JITCACHE_H
#define DCIR_EXEC_JITCACHE_H

#include "support/Diagnostics.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

namespace dcir {
namespace exec {

class JitCache {
public:
  /// Opens the default cache root (environment-driven, see file comment).
  JitCache();
  /// Opens an explicit root (tests use throwaway directories).
  /// \p MaxBytes caps the on-disk size (0 = use $DCIR_CACHE_MAX_MB, else
  /// 512 MiB); artifacts beyond the cap are evicted oldest-mtime-first at
  /// construction, and disk hits refresh their artifact's mtime (LRU).
  explicit JitCache(std::string Root, std::uint64_t MaxBytes = 0);

  JitCache(const JitCache &) = delete;
  JitCache &operator=(const JitCache &) = delete;

  /// The process-wide cache shared by default-constructed native engines.
  static JitCache &shared();

  struct Stats {
    std::uint64_t Hits = 0;   // Artifact found on disk or in memory.
    std::uint64_t Misses = 0; // Artifact had to be built.
    std::uint64_t CompilerInvocations = 0;
    std::uint64_t Evictions = 0; // Artifacts deleted by the LRU cap.
  };

  /// Returns a dlopen handle for the shared object corresponding to
  /// \p Source, compiling it first on a cache miss. Null on failure
  /// (diagnostics explain; the compiler's stderr is included).
  /// \p CompileSeconds, when non-null, receives the time spent in the
  /// host compiler — exactly 0 on cache hits.
  void *getOrCompile(const std::string &Source, DiagnosticEngine &Diags,
                     double *CompileSeconds = nullptr);

  /// Records a hit served from an engine-level memo (callers that cache
  /// the resolved function pointer still report accurate hit counts).
  void noteMemoHit();

  /// The cache key getOrCompile would use for \p Source.
  std::string keyFor(const std::string &Source) const;

  const std::string &root() const { return Root; }
  const std::string &compiler() const { return Cxx; }
  const std::string &flags() const { return Flags; }
  /// True when the compile-flag probe selected the OpenMP tier
  /// (-O3 -march=native -fopenmp); false on the serial -O2 fallback.
  bool openmp() const { return OpenMP; }
  std::uint64_t maxBytes() const { return MaxBytes; }
  Stats stats() const;

private:
  /// Probes the host compiler for the fast tier (memoized on disk as
  /// <root>/flag_tier) and returns the selected flags.
  std::string selectFlags();
  /// Deletes artifacts oldest-mtime-first until the root is under the cap.
  void evictOverCap();
  /// Runs the host compiler. Called WITHOUT Mu held (the compile is the
  /// long pole; \p TempSuffix was minted under the lock).
  std::string compileUnlocked(const std::string &Key,
                              const std::string &Source,
                              const std::string &TempSuffix,
                              DiagnosticEngine &Diags);

  mutable std::mutex Mu;
  /// Keys currently being compiled (Mu-protected); waiters block on the
  /// condition variable instead of duplicating the compile.
  std::set<std::string> InFlight;
  std::condition_variable InFlightCv;
  std::string Root;
  std::string Cxx;
  std::string Flags;
  bool OpenMP = false;
  std::uint64_t MaxBytes = 0;
  std::map<std::string, void *> Handles; // key -> dlopen handle
  Stats S;
  unsigned TempCounter = 0;
};

} // namespace exec
} // namespace dcir

#endif // DCIR_EXEC_JITCACHE_H
