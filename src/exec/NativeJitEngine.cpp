//===- NativeJitEngine.cpp ----------------------------------------------------------===//

#include "exec/NativeJitEngine.h"

#include "codegen/CppCodegen.h"
#include "exec/InterpEngine.h"

#include <chrono>
#include <cstdlib>
#include <dlfcn.h>

using namespace dcir;
using namespace dcir::exec;

namespace {

/// The uniform ABI emitted by CppCodegen::emitTrampoline.
using UniformFn = void (*)(void **, const long long *);

/// One engine-allocated argument buffer (zero-initialized, like the
/// interpreter's containers).
struct ArgBuffer {
  sdfg::DType Ty;
  std::vector<double> F64;
  std::vector<float> F32;
  std::vector<long long> I64;

  ArgBuffer(sdfg::DType Ty, size_t N) : Ty(Ty) {
    switch (Ty) {
    case sdfg::DType::F64:
      F64.assign(N, 0.0);
      break;
    case sdfg::DType::F32:
      F32.assign(N, 0.0f);
      break;
    case sdfg::DType::I64:
      I64.assign(N, 0);
      break;
    }
  }

  void *data() {
    switch (Ty) {
    case sdfg::DType::F64:
      return F64.data();
    case sdfg::DType::F32:
      return F32.data();
    case sdfg::DType::I64:
      return I64.data();
    }
    return nullptr;
  }

  std::vector<double> widened() const {
    switch (Ty) {
    case sdfg::DType::F64:
      return F64;
    case sdfg::DType::F32:
      return std::vector<double>(F32.begin(), F32.end());
    case sdfg::DType::I64:
      return std::vector<double>(I64.begin(), I64.end());
    }
    return {};
  }
};

EngineRun fail(std::string Error) {
  EngineRun R;
  R.Error = std::move(Error);
  return R;
}

} // namespace

NativeJitEngine::NativeJitEngine(JitCache *Cache)
    : Cache(Cache ? *Cache : JitCache::shared()) {
  if (const char *N = std::getenv("DCIR_NUM_THREADS"))
    Config.NumThreads = std::atoi(N);
}

EngineRun NativeJitEngine::runModule(ir::Operation *Module,
                                     const std::string &Entry,
                                     interp::MathMode Mode) {
  InterpEngine Fallback;
  return Fallback.runModule(Module, Entry, Mode);
}

const NativeJitEngine::Prepared *
NativeJitEngine::prepare(const sdfg::SDFG &G, std::string &Error) {
  auto It = Memo.find(&G);
  if (It != Memo.end() && It->second.Name == G.getName()) {
    It->second.CompileSeconds = 0.0; // Only the first run pays it.
    Cache.noteMemoHit();
    return &It->second;
  }

  DiagnosticEngine Diags;
  codegen::CodegenOptions Opts;
  // Parallel pragmas are pointless without an OpenMP-capable flag tier:
  // emitting them anyway would only fork the cache key.
  Opts.ParallelMaps = Config.ParallelMaps && Cache.openmp();
  codegen::CodegenInfo CgInfo;
  std::string Source = codegen::emitCpp(G, Diags, Opts, &CgInfo);
  if (Source.empty()) {
    Error = "native codegen failed for '" + G.getName() + "':\n" +
            Diags.str();
    return nullptr;
  }

  Prepared P;
  P.Name = G.getName();
  P.ParallelMapsEmitted = CgInfo.ParallelMapsEmitted;
  void *Handle = Cache.getOrCompile(Source, Diags, &P.CompileSeconds);
  if (!Handle) {
    Error = "native compilation failed for '" + G.getName() + "':\n" +
            Diags.str();
    return nullptr;
  }

  std::string SymName = G.getName() + "__dcir_call";
  P.Fn = reinterpret_cast<UniformFn>(dlsym(Handle, SymName.c_str()));
  if (!P.Fn) {
    const char *Err = dlerror();
    Error = "native entry '" + SymName +
            "' not found: " + (Err ? Err : "unknown dlsym error");
    return nullptr;
  }
  std::string ThreadsSym = G.getName() + "__dcir_set_threads";
  P.SetThreads = reinterpret_cast<void (*)(long long)>(
      dlsym(Handle, ThreadsSym.c_str()));
  return &(Memo[&G] = std::move(P));
}

EngineRun
NativeJitEngine::runGraph(const sdfg::SDFG &G, interp::MathMode Mode,
                          const std::map<std::string, std::int64_t> &Symbols) {
  // MathMode only affects the interpreter's vector-math emulation; native
  // code always uses libm (the paper's "precise" configuration).
  (void)Mode;

  std::string Error;
  const Prepared *P = prepare(G, Error);
  if (!P)
    return fail(std::move(Error));

  // Allocate caller-side buffers and symbol values in signature order.
  codegen::CallSignature Sig = codegen::callSignature(G);
  std::vector<ArgBuffer> Buffers;
  Buffers.reserve(Sig.Args.size());
  for (const std::string &Arg : Sig.Args) {
    const sdfg::DataDesc &D = G.desc(Arg);
    size_t N = 1;
    for (const sym::SymExpr &Dim : D.Shape)
      N *= static_cast<size_t>(std::max<std::int64_t>(
          detail::evalDimOrZero(Dim, Symbols), 0));
    Buffers.emplace_back(D.Ty, N);
  }
  std::vector<void *> Ptrs;
  for (ArgBuffer &B : Buffers)
    Ptrs.push_back(B.data());
  std::vector<long long> Syms;
  for (const std::string &S : Sig.FreeSymbols) {
    auto It = Symbols.find(S);
    Syms.push_back(It == Symbols.end() ? 0 : It->second);
  }

  EngineRun R;
  R.CompileSeconds = P->CompileSeconds;
  R.Stats.ParallelMapsEmitted = P->ParallelMapsEmitted;
  if (Config.NumThreads > 0 && P->SetThreads)
    P->SetThreads(Config.NumThreads);
  auto Start = std::chrono::steady_clock::now();
  P->Fn(Ptrs.data(), Syms.data());
  auto End = std::chrono::steady_clock::now();
  R.Seconds = std::chrono::duration<double>(End - Start).count();

  for (size_t I = 0; I < Sig.Args.size(); ++I) {
    std::vector<double> Out = Buffers[I].widened();
    if (Sig.Args[I] == "__return" && !Out.empty())
      R.ReturnValue = Out[0];
    R.Outputs[Sig.Args[I]] = std::move(Out);
  }
  R.Ok = true;
  return R;
}
