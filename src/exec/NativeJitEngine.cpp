//===- NativeJitEngine.cpp ----------------------------------------------------------===//

#include "exec/NativeJitEngine.h"

#include "exec/InterpEngine.h"
#include "obs/Trace.h"
#include "sdfg/TaskletExpr.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <dlfcn.h>

using namespace dcir;
using namespace dcir::exec;

namespace {

/// The uniform ABI emitted by CppCodegen::emitTrampoline.
using UniformFn = void (*)(void **, const long long *);

/// One engine-allocated scratch buffer for an unbound container
/// (zero-initialized, like the interpreter's containers).
struct ArgBuffer {
  sdfg::DType Ty;
  std::vector<double> F64;
  std::vector<float> F32;
  std::vector<long long> I64;

  ArgBuffer(sdfg::DType Ty, size_t N) : Ty(Ty) {
    switch (Ty) {
    case sdfg::DType::F64:
      F64.assign(N, 0.0);
      break;
    case sdfg::DType::F32:
      F32.assign(N, 0.0f);
      break;
    case sdfg::DType::I64:
      I64.assign(N, 0);
      break;
    }
  }

  void *data() {
    switch (Ty) {
    case sdfg::DType::F64:
      return F64.data();
    case sdfg::DType::F32:
      return F32.data();
    case sdfg::DType::I64:
      return I64.data();
    }
    return nullptr;
  }

  std::vector<double> widened() const {
    switch (Ty) {
    case sdfg::DType::F64:
      return F64;
    case sdfg::DType::F32:
      return std::vector<double>(F32.begin(), F32.end());
    case sdfg::DType::I64:
      return std::vector<double>(I64.begin(), I64.end());
    }
    return {};
  }
};

EngineRun fail(std::string Error) {
  EngineRun R;
  R.Error = std::move(Error);
  return R;
}

/// Reads the first element of a raw buffer as double.
double readScalar(const void *Ptr, sdfg::DType Ty) {
  switch (Ty) {
  case sdfg::DType::F64:
    return *static_cast<const double *>(Ptr);
  case sdfg::DType::F32:
    return static_cast<double>(*static_cast<const float *>(Ptr));
  case sdfg::DType::I64:
    return static_cast<double>(*static_cast<const long long *>(Ptr));
  }
  return 0.0;
}

} // namespace

NativeJitEngine::NativeJitEngine(JitCache *Cache)
    : Cache(Cache ? *Cache : JitCache::shared()) {
  if (const char *N = std::getenv("DCIR_NUM_THREADS"))
    Config.NumThreads = std::atoi(N);
  if (const char *P = std::getenv("DCIR_PROFILE_MAPS"))
    Config.ProfileMaps = std::atoi(P) != 0;
  if (const char *B = std::getenv("DCIR_CHECK_BOUNDS"))
    Config.CheckBounds = std::atoi(B) != 0;
}

EngineRun NativeJitEngine::runModule(ir::Operation *Module,
                                     const std::string &Entry,
                                     interp::MathMode Mode) {
  InterpEngine Fallback;
  return Fallback.runModule(Module, Entry, Mode);
}

std::shared_ptr<const NativeJitEngine::Prepared>
NativeJitEngine::prepare(const sdfg::SDFG &G, std::string &Error,
                         double &CompileSeconds) {
  CompileSeconds = 0.0;
  {
    std::unique_lock<std::mutex> Lock(MemoMu);
    for (;;) {
      auto It = Memo.find(&G);
      if (It != Memo.end() && It->second->Name == G.getName()) {
        Cache.noteMemoHit();
        return It->second;
      }
      if (!InFlight.count(&G))
        break;
      // Another thread is building this graph; wait for its publication
      // (or failure, in which case this thread retries the build).
      InFlightCv.wait(Lock);
    }
    InFlight.insert(&G);
  }
  // Build unlocked: host compilation is the long pole, and invocations of
  // already-prepared graphs must keep flowing while it runs.
  std::shared_ptr<const Prepared> P = buildArtifact(G, Error, CompileSeconds);
  {
    std::lock_guard<std::mutex> Lock(MemoMu);
    InFlight.erase(&G);
    if (P)
      Memo[&G] = P;
    InFlightCv.notify_all();
  }
  return P;
}

std::shared_ptr<const NativeJitEngine::Prepared>
NativeJitEngine::buildArtifact(const sdfg::SDFG &G, std::string &Error,
                               double &CompileSeconds) {
  obs::Span PrepSpan("native.prepare:" + G.getName(), "jit");
  DiagnosticEngine Diags;
  codegen::CodegenOptions Opts;
  // Parallel pragmas are pointless without an OpenMP-capable flag tier:
  // emitting them anyway would only fork the cache key.
  Opts.ParallelMaps = Config.ParallelMaps && Cache.openmp();
  Opts.ProfileMaps = Config.ProfileMaps;
  Opts.CheckBounds = Config.CheckBounds;
  if (Config.MinParallelWork)
    Opts.MinParallelWork = Config.MinParallelWork;
  if (Config.MinInLoopParallelWork)
    Opts.MinInLoopParallelWork = Config.MinInLoopParallelWork;
  // Per-graph tuning overrides (profiled measuring clones, tuned schedule
  // variants) fold in on top of the engine configuration.
  bool EffProfile = Config.ProfileMaps;
  bool EffSpeculate = false;
  {
    std::lock_guard<std::mutex> Lock(MemoMu);
    auto It = Tunings.find(&G);
    if (It != Tunings.end()) {
      if (It->second.ProfileMaps)
        Opts.ProfileMaps = *It->second.ProfileMaps;
      Opts.ProfileTopMapsOnly = It->second.ProfileTopOnly;
      Opts.Schedules = It->second.Schedules;
      Opts.Speculative = It->second.Speculation;
      EffProfile = Opts.ProfileMaps;
      EffSpeculate = !Opts.Speculative.empty();
    }
  }
  codegen::CodegenInfo CgInfo;
  std::string Source;
  {
    obs::Span EmitSpan("codegen.emit", "jit");
    Source = codegen::emitCpp(G, Diags, Opts, &CgInfo);
  }
  if (Source.empty()) {
    Error = "native codegen failed for '" + G.getName() + "':\n" +
            Diags.str();
    return nullptr;
  }

  auto P = std::make_shared<Prepared>();
  P->Name = G.getName();
  P->ParallelMapsEmitted = CgInfo.ParallelMapsEmitted;
  P->Sig = codegen::callSignature(G);
  void *Handle = Cache.getOrCompile(Source, Diags, &CompileSeconds);
  if (!Handle) {
    Error = "native compilation failed for '" + G.getName() + "':\n" +
            Diags.str();
    return nullptr;
  }

  std::string SymName = G.getName() + "__dcir_call";
  P->Fn = reinterpret_cast<UniformFn>(dlsym(Handle, SymName.c_str()));
  if (!P->Fn) {
    const char *Err = dlerror();
    Error = "native entry '" + SymName +
            "' not found: " + (Err ? Err : "unknown dlsym error");
    return nullptr;
  }
  std::string ThreadsSym = G.getName() + "__dcir_set_threads";
  P->SetThreads = reinterpret_cast<void (*)(long long)>(
      dlsym(Handle, ThreadsSym.c_str()));
  if (EffProfile) {
    std::string ProfSym = G.getName() + "__dcir_profile";
    P->Profile = reinterpret_cast<long long (*)(void *, long long)>(
        dlsym(Handle, ProfSym.c_str()));
  }
  if (EffSpeculate) {
    std::string SpecSym = G.getName() + "__dcir_speculation";
    P->Speculation = reinterpret_cast<long long (*)(void *, long long)>(
        dlsym(Handle, SpecSym.c_str()));
  }

  // ABI check: the artifact embeds its argument-binding signature; a
  // mismatch means the resolved shared object was built for a different
  // container table than the graph we are about to bind buffers for —
  // refuse rather than pass pointers into the wrong slots. Artifacts
  // predating the descriptor (no symbol) are accepted as-is.
  std::string SigSym = G.getName() + "__dcir_signature";
  if (auto SigFn = reinterpret_cast<const char *(*)()>(
          dlsym(Handle, SigSym.c_str()))) {
    std::string Expected = codegen::abiSignature(G);
    const char *Actual = SigFn();
    if (Expected != (Actual ? Actual : "")) {
      Error = "native artifact for '" + G.getName() +
              "' reports ABI signature\n  " + (Actual ? Actual : "(null)") +
              "\nbut the graph requires\n  " + Expected +
              "\n(stale or colliding cache entry; clear $DCIR_CACHE_DIR)";
      return nullptr;
    }
  }
  return P;
}

void NativeJitEngine::releaseGraph(const sdfg::SDFG &G) {
  std::unique_lock<std::mutex> Lock(MemoMu);
  // Never drop an entry mid-build: the builder would publish a stale
  // artifact for a graph the caller already discarded.
  while (InFlight.count(&G))
    InFlightCv.wait(Lock);
  Memo.erase(&G);
  Tunings.erase(&G);
}

void NativeJitEngine::tuneGraph(const sdfg::SDFG &G, GraphTuning T) {
  std::lock_guard<std::mutex> Lock(MemoMu);
  Tunings[&G] = std::move(T);
}

std::vector<obs::MapProfile>
NativeJitEngine::mapProfile(const sdfg::SDFG &G) {
  long long (*Hook)(void *, long long) = nullptr;
  {
    std::lock_guard<std::mutex> Lock(MemoMu);
    auto It = Memo.find(&G);
    if (It != Memo.end() && It->second->Name == G.getName())
      Hook = It->second->Profile;
  }
  if (!Hook)
    return {};
  long long N = Hook(nullptr, 0);
  if (N <= 0)
    return {};
  std::vector<obs::MapProfileABIEntry> Rows(static_cast<size_t>(N));
  long long Got = Hook(Rows.data(), N);
  Rows.resize(static_cast<size_t>(std::min(N, Got)));
  std::vector<obs::MapProfile> Out;
  Out.reserve(Rows.size());
  for (const obs::MapProfileABIEntry &R : Rows) {
    obs::MapProfile P;
    P.Name = R.Name ? R.Name : "";
    P.Invocations = static_cast<std::uint64_t>(R.Invocations);
    P.Seconds = static_cast<double>(R.Nanos) / 1e9;
    P.Trips = static_cast<std::uint64_t>(R.Trips);
    Out.push_back(std::move(P));
  }
  return Out;
}

std::vector<SpeculationStat>
NativeJitEngine::speculationStats(const sdfg::SDFG &G) {
  long long (*Hook)(void *, long long) = nullptr;
  {
    std::lock_guard<std::mutex> Lock(MemoMu);
    auto It = Memo.find(&G);
    if (It != Memo.end() && It->second->Name == G.getName())
      Hook = It->second->Speculation;
  }
  if (!Hook)
    return {};
  long long N = Hook(nullptr, 0);
  if (N <= 0)
    return {};
  std::vector<SpeculationABIEntry> Rows(static_cast<size_t>(N));
  long long Got = Hook(Rows.data(), N);
  Rows.resize(static_cast<size_t>(std::min(N, Got)));
  std::vector<SpeculationStat> Out;
  Out.reserve(Rows.size());
  for (const SpeculationABIEntry &R : Rows) {
    SpeculationStat S;
    S.Map = R.Name ? R.Name : "";
    S.Pass = static_cast<std::uint64_t>(R.Pass);
    S.Fail = static_cast<std::uint64_t>(R.Fail);
    Out.push_back(std::move(S));
  }
  return Out;
}

bool NativeJitEngine::prepareGraph(const sdfg::SDFG &G, std::string &Error,
                                   double *CompileSeconds) {
  double Seconds = 0.0;
  std::shared_ptr<const Prepared> P = prepare(G, Error, Seconds);
  if (CompileSeconds)
    *CompileSeconds = Seconds;
  return P != nullptr;
}

EngineRun NativeJitEngine::invokeGraph(const sdfg::SDFG &G,
                                       const InvocationRequest &Req) {
  // MathMode only affects the interpreter's vector-math emulation; native
  // code always uses libm (the paper's "precise" configuration).

  std::string Error;
  double CompileSeconds = 0.0;
  std::shared_ptr<const Prepared> P = prepare(G, Error, CompileSeconds);
  if (!P)
    return fail(std::move(Error));

  // Assemble the argument vector in signature order: caller-bound views
  // pass through untouched (zero-copy in and out); unbound containers get
  // per-invocation zeroed scratch, so concurrent invocations never share
  // engine-side memory.
  const std::map<std::string, BufferView> Empty;
  const std::map<std::string, BufferView> &Bindings =
      Req.Bindings ? *Req.Bindings : Empty;
  std::vector<ArgBuffer> Scratch;
  Scratch.reserve(P->Sig.Args.size());
  std::vector<void *> Ptrs(P->Sig.Args.size(), nullptr);
  std::vector<bool> Bound(P->Sig.Args.size(), false);
  for (size_t I = 0; I < P->Sig.Args.size(); ++I) {
    const std::string &Arg = P->Sig.Args[I];
    auto It = Bindings.find(Arg);
    if (It != Bindings.end()) {
      if (std::string Err = detail::validateView(It->second, G.desc(Arg),
                                                 Arg, Req.Symbols);
          !Err.empty())
        return fail(std::move(Err));
      Ptrs[I] = It->second.Ptr;
      Bound[I] = true;
    }
  }
  for (size_t I = 0; I < P->Sig.Args.size(); ++I) {
    if (Bound[I])
      continue;
    const sdfg::DataDesc &D = G.desc(P->Sig.Args[I]);
    Scratch.emplace_back(D.Ty, detail::containerElements(D, Req.Symbols));
    Ptrs[I] = Scratch.back().data();
  }
  std::vector<long long> Syms;
  for (const std::string &S : P->Sig.FreeSymbols) {
    auto It = Req.Symbols.find(S);
    Syms.push_back(It == Req.Symbols.end() ? 0 : It->second);
  }

  EngineRun R;
  R.CompileSeconds = CompileSeconds;
  R.Stats.ParallelMapsEmitted = P->ParallelMapsEmitted;
  // The thread hook sets the calling thread's OpenMP ICV, so concurrent
  // invocations with different counts do not interfere. Always called:
  // a non-positive count resets the ICV to the runtime default, so a
  // pinned count from an earlier invocation on this (possibly pooled)
  // thread cannot leak into a default-count one.
  int Threads = Req.NumThreads > 0 ? Req.NumThreads : Config.NumThreads;
  if (P->SetThreads)
    P->SetThreads(Threads);
  auto Start = std::chrono::steady_clock::now();
  P->Fn(Ptrs.data(), Syms.data());
  auto End = std::chrono::steady_clock::now();
  R.Seconds = std::chrono::duration<double>(End - Start).count();

  // Bound containers already hold their outputs in caller memory — the
  // zero-copy contract. Only unbound ones are snapshotted on request.
  size_t ScratchIdx = 0;
  for (size_t I = 0; I < P->Sig.Args.size(); ++I) {
    const std::string &Arg = P->Sig.Args[I];
    if (Arg == "__return")
      R.ReturnValue = Ptrs[I] ? readScalar(Ptrs[I], G.desc(Arg).Ty) : 0.0;
    if (Bound[I])
      continue;
    ArgBuffer &B = Scratch[ScratchIdx++];
    if (Req.SnapshotOutputs) {
      R.Outputs[Arg] = B.widened();
      ++R.OutputCopies;
    }
  }
  R.Ok = true;
  return R;
}
