//===- JitCache.cpp -----------------------------------------------------------------===//

#include "exec/JitCache.h"

#include "support/StringUtils.h"

#include <chrono>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace dcir;
using namespace dcir::exec;

namespace fs = std::filesystem;

#ifndef DCIR_HOST_CXX
#define DCIR_HOST_CXX "c++"
#endif

namespace {

std::string defaultRoot() {
  if (const char *Dir = std::getenv("DCIR_CACHE_DIR"))
    return Dir;
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"))
    return std::string(Xdg) + "/dcir";
  if (const char *Home = std::getenv("HOME"))
    return std::string(Home) + "/.cache/dcir";
  return fs::temp_directory_path().string() + "/dcir-cache";
}

std::string detectCompiler() {
  if (const char *C = std::getenv("DCIR_CXX"))
    return C;
  if (const char *C = std::getenv("CXX"))
    return C;
  return DCIR_HOST_CXX; // Configure-time CMAKE_CXX_COMPILER.
}

std::string detectFlags() {
  std::string Flags = "-std=c++17 -O2 -fPIC -shared -Wall -Wextra";
  if (const char *Extra = std::getenv("DCIR_CXXFLAGS")) {
    Flags += " ";
    Flags += Extra;
  }
  return Flags;
}

/// 128-bit content hash as two independent 64-bit FNV-1a streams.
std::string fnv128Hex(const std::string &Data) {
  std::uint64_t A = 1469598103934665603ull; // FNV offset basis.
  std::uint64_t B = 1099511628211ull * 31 + 0x9e3779b97f4a7c15ull;
  for (unsigned char C : Data) {
    A = (A ^ C) * 1099511628211ull;
    B = (B ^ (C + 0x9eu)) * 1099511628211ull;
  }
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(A),
                static_cast<unsigned long long>(B));
  return Buf;
}

std::string quoted(const std::string &Path) { return "\"" + Path + "\""; }

bool writeAtomically(const fs::path &Final, const std::string &Content,
                     const std::string &TempSuffix) {
  fs::path Temp = Final;
  Temp += TempSuffix;
  {
    std::ofstream Out(Temp, std::ios::binary);
    if (!Out)
      return false;
    Out << Content;
    if (!Out.good())
      return false;
  }
  std::error_code EC;
  fs::rename(Temp, Final, EC);
  return !EC;
}

} // namespace

JitCache::JitCache() : JitCache(defaultRoot()) {}

JitCache::JitCache(std::string RootDir)
    : Root(std::move(RootDir)), Cxx(detectCompiler()), Flags(detectFlags()) {
  std::error_code EC;
  fs::create_directories(Root, EC);
}

JitCache &JitCache::shared() {
  static JitCache *Instance = new JitCache(); // Never destroyed: handles
  return *Instance;                           // must outlive native code.
}

std::string JitCache::keyFor(const std::string &Source) const {
  return fnv128Hex(Cxx + "\x1f" + Flags + "\x1f" + Source);
}

JitCache::Stats JitCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void JitCache::noteMemoHit() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Hits;
}

void *JitCache::getOrCompile(const std::string &Source,
                             DiagnosticEngine &Diags,
                             double *CompileSeconds) {
  if (CompileSeconds)
    *CompileSeconds = 0.0;
  std::string Key = keyFor(Source);
  std::lock_guard<std::mutex> Lock(Mu);

  auto It = Handles.find(Key);
  if (It != Handles.end()) {
    ++S.Hits;
    return It->second;
  }

  fs::path So = fs::path(Root) / (Key + ".so");
  std::error_code EC;
  if (fs::exists(So, EC)) {
    ++S.Hits;
  } else {
    ++S.Misses;
    auto Start = std::chrono::steady_clock::now();
    std::string Path = compileLocked(Key, Source, Diags);
    if (CompileSeconds)
      *CompileSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - Start)
                            .count();
    if (Path.empty())
      return nullptr;
  }

  void *Handle = dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Err = dlerror();
    Diags.error("jit cache: dlopen failed for " + So.string() + ": " +
                (Err ? Err : "unknown error"));
    return nullptr;
  }
  Handles[Key] = Handle;
  return Handle;
}

std::string JitCache::compileLocked(const std::string &Key,
                                    const std::string &Source,
                                    DiagnosticEngine &Diags) {
  std::string TempSuffix = ".tmp." + std::to_string(::getpid()) + "." +
                           std::to_string(TempCounter++);
  fs::path Cpp = fs::path(Root) / (Key + ".cpp");
  fs::path So = fs::path(Root) / (Key + ".so");
  if (!writeAtomically(Cpp, Source, TempSuffix)) {
    Diags.error("jit cache: cannot write source " + Cpp.string());
    return std::string();
  }

  // Compile into a private temp and publish with an atomic rename so a
  // concurrent process sharing this root never loads a partial object.
  fs::path SoTemp = So;
  SoTemp += TempSuffix;
  fs::path Log = So;
  Log += TempSuffix + ".log";
  std::string Cmd = Cxx + " " + Flags + " -o " + quoted(SoTemp.string()) +
                    " " + quoted(Cpp.string()) + " 2> " +
                    quoted(Log.string());
  ++S.CompilerInvocations;
  int Rc = std::system(Cmd.c_str());
  std::string CompilerOutput;
  readFileToString(Log.string(), CompilerOutput);
  std::error_code EC;
  fs::remove(Log, EC);
  if (Rc != 0) {
    fs::remove(SoTemp, EC);
    Diags.error("jit cache: host compiler failed (command: " + Cmd +
                "):\n" + CompilerOutput);
    return std::string();
  }
  fs::rename(SoTemp, So, EC);
  if (EC) {
    Diags.error("jit cache: cannot publish artifact " + So.string() + ": " +
                EC.message());
    return std::string();
  }
  return So.string();
}
